#!/usr/bin/env python3
"""Concurrency-bench regression gate.

Reads a BENCH_concurrent.json report (as produced by
``bench_concurrent --json``) and fails when the headline speedups that
the epoch read path and the persistent scan pool exist for have
regressed:

  * ``<system>.scan.t2``   speedup_vs_1 must be >= 0.9
  * ``<system>.query.t4``  speedup_vs_1 must be >= 1.0
  * ``<system>.insert.t4`` speedup_vs_1 must be >= 1.5

The insert floor is the per-shard slab-arena claim: with each shard
bump-allocating from its own arena, parallel inserts share no
allocator state, so four threads must beat one by at least 1.5x.

The gate only means something with real parallelism: when the report's
``meta.hardware_concurrency`` is below 4 (or missing), the t2/t4
numbers measure scheduling overhead on an oversubscribed machine, so
the gate prints a notice and exits 0 rather than producing noise.

Usage:  check_bench_gate.py <report.json> [--baseline BENCH_concurrent.json]

With --baseline the gate additionally checks that neither headline
metric dropped more than 20% below the committed baseline captured on
a comparable machine (same hardware_concurrency class and shard
count); incomparable baselines are skipped with a notice.

stdlib only -- runs on a bare CI python3.
"""

import argparse
import json
import sys

SCAN_T2_FLOOR = 0.9
QUERY_T4_FLOOR = 1.0
INSERT_T4_FLOOR = 1.5
BASELINE_DROP = 0.8  # new must be >= 80% of baseline
MIN_HW_THREADS = 4


def load(path):
    with open(path) as f:
        return json.load(f)


def speedups(report):
    """{name: speedup_vs_1} for every result that has one."""
    out = {}
    for rec in report.get("results", []):
        if "speedup_vs_1" in rec:
            out[rec["name"]] = rec["speedup_vs_1"]
    return out


def gated_names(sp):
    """The (name, floor) pairs this gate enforces, present in sp."""
    pairs = []
    for name in sorted(sp):
        if name.endswith(".scan.t2"):
            pairs.append((name, SCAN_T2_FLOOR))
        elif name.endswith(".query.t4"):
            pairs.append((name, QUERY_T4_FLOOR))
        elif name.endswith(".insert.t4"):
            pairs.append((name, INSERT_T4_FLOOR))
    return pairs


def hw_threads(report):
    meta = report.get("meta", {})
    try:
        return int(meta.get("hardware_concurrency", 0))
    except (TypeError, ValueError):
        return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("report", help="bench_concurrent --json output to check")
    ap.add_argument("--baseline", help="committed baseline to compare against")
    args = ap.parse_args(argv)

    report = load(args.report)
    threads = hw_threads(report)
    if threads < MIN_HW_THREADS:
        print(
            "bench gate: skipped -- hardware_concurrency=%d < %d, "
            "speedups on this machine measure overhead, not scaling"
            % (threads, MIN_HW_THREADS)
        )
        return 0

    sp = speedups(report)
    pairs = gated_names(sp)
    if not pairs:
        print(
            "bench gate: FAIL -- report has no scan.t2/query.t4/insert.t4 results"
        )
        return 1

    failures = []
    for name, floor in pairs:
        val = sp[name]
        status = "ok" if val >= floor else "FAIL"
        print("bench gate: %-28s %.3f (floor %.2f) %s" % (name, val, floor, status))
        if val < floor:
            failures.append(name)

    if args.baseline:
        base = load(args.baseline)
        base_threads = hw_threads(base)
        base_shards = base.get("meta", {}).get("shards")
        shards = report.get("meta", {}).get("shards")
        if base_threads < MIN_HW_THREADS or base_shards != shards:
            print(
                "bench gate: baseline skipped -- captured on an "
                "incomparable machine (hw=%s shards=%s vs hw=%s shards=%s)"
                % (base_threads, base_shards, threads, shards)
            )
        else:
            base_sp = speedups(base)
            for name, _ in pairs:
                if name not in base_sp:
                    continue
                floor = base_sp[name] * BASELINE_DROP
                val = sp[name]
                status = "ok" if val >= floor else "FAIL"
                print(
                    "bench gate: %-28s %.3f vs baseline %.3f (floor %.3f) %s"
                    % (name, val, base_sp[name], floor, status)
                )
                if val < floor:
                    failures.append(name + " (vs baseline)")

    if failures:
        print("bench gate: FAIL -- " + ", ".join(failures))
        return 1
    print("bench gate: all headline speedups within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
