//===- tools/relserved/relserved.cpp - Relation server daemon -------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The relserved daemon: the account(owner, acct, balance) relation of
// examples/account_transfer.cpp (and of the golden account_tx.relc)
// served over the server/Wire.h protocol with group commit and a
// write-ahead log. Three modes, so one binary covers the CI crash
// smoke test end to end:
//
//   relserved [--port N] [--port-file P] [--wal P] [--shards N]
//             [--max-group N] [--checkpoint-every N]
//     Serve until SIGTERM/SIGINT (clean stop) — or SIGKILL, which is
//     the point: restart with the same --wal and recovery replays
//     every acknowledged commit.
//
//   relserved --workload --port N [--accounts N] [--transfers N]
//             [--threads N] [--seed-only] [--seed-batch N]
//             [--checkpoint-during]
//     Client mode: seed the accounts (idempotent: an already-seeded
//     account aborts the insert harmlessly; --seed-batch groups
//     seeding into N-insert transact batches so large account counts
//     seed in few round trips), then run random floor-guarded
//     transfers as two-`add` transact batches. Prints "acked <n>" —
//     every counted transfer holds a durable ack. With
//     --checkpoint-during, the main thread issues Checkpoint requests
//     while the transfer threads run and fails unless every
//     checkpoint succeeds AND transfer acks landed while checkpoints
//     were in flight — the off-committer snapshot claim (commits
//     don't stall behind checkpoint serialization) checked against
//     the real daemon.
//
//   relserved --verify --port N --accounts N
//     Client mode: asserts the conservation invariant — exactly
//     N accounts, total balance N * 1000 — and exits nonzero on any
//     violation. Run after a SIGKILL + restart to prove recovery.
//
//===----------------------------------------------------------------------===//

#include "decomp/Builder.h"
#include "server/Client.h"
#include "server/Server.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

using namespace relc;

namespace {

constexpr int64_t InitialBalance = 1000;

RelSpecRef accountSpec() {
  return RelSpec::make("account", {"owner", "acct", "balance"},
                       {{"owner, acct", "balance"}});
}

Decomposition accountDecomp(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId U = B.addNode("u", "owner, acct", B.unit("balance"));
  NodeId Y = B.addNode("y", "owner", B.map("acct", DsKind::HashTable, U));
  B.addNode("x", "", B.map("owner", DsKind::HashTable, Y));
  return B.build();
}

int64_t intArg(int argc, char **argv, const char *Flag, int64_t Default) {
  for (int I = 1; I + 1 < argc; ++I)
    if (std::strcmp(argv[I], Flag) == 0)
      return std::atoll(argv[I + 1]);
  return Default;
}

const char *strArg(int argc, char **argv, const char *Flag) {
  for (int I = 1; I + 1 < argc; ++I)
    if (std::strcmp(argv[I], Flag) == 0)
      return argv[I + 1];
  return nullptr;
}

bool boolArg(int argc, char **argv, const char *Flag) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], Flag) == 0)
      return true;
  return false;
}

volatile std::sig_atomic_t StopRequested = 0;
void onSignal(int) { StopRequested = 1; }

//===----------------------------------------------------------------------===//
// Serve mode
//===----------------------------------------------------------------------===//

int serveMain(int argc, char **argv) {
  ServerOptions Opts;
  Opts.Port = static_cast<uint16_t>(intArg(argc, argv, "--port", 0));
  if (const char *Wal = strArg(argc, argv, "--wal"))
    Opts.WalPath = Wal;
  Opts.Concurrent.NumShards =
      static_cast<unsigned>(intArg(argc, argv, "--shards", 8));
  Opts.MaxGroup = static_cast<size_t>(intArg(argc, argv, "--max-group", 64));
  Opts.CheckpointEvery =
      static_cast<uint64_t>(intArg(argc, argv, "--checkpoint-every", 0));

  RelSpecRef Spec = accountSpec();
  RelServer Server(accountDecomp(Spec), Opts);
  std::string Err;
  if (!Server.start(&Err)) {
    std::fprintf(stderr, "relserved: %s\n", Err.c_str());
    return 1;
  }
  std::fprintf(stderr, "relserved: serving account on 127.0.0.1:%u",
               Server.port());
  if (!Opts.WalPath.empty())
    std::fprintf(stderr, ", wal %s (%llu txns recovered)",
                 Opts.WalPath.c_str(),
                 static_cast<unsigned long long>(Server.recoveredTxns()));
  std::fprintf(stderr, "\n");

  if (const char *PortFile = strArg(argc, argv, "--port-file")) {
    // Write-then-rename so a polling reader never sees a half-written
    // port number.
    std::string Tmp = std::string(PortFile) + ".tmp";
    std::ofstream Out(Tmp);
    Out << Server.port() << "\n";
    Out.close();
    std::rename(Tmp.c_str(), PortFile);
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  while (!StopRequested)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Server.stop();
  return 0;
}

//===----------------------------------------------------------------------===//
// Workload mode (client)
//===----------------------------------------------------------------------===//

Tuple accountKey(const Catalog &Cat, int64_t A) {
  return TupleBuilder(Cat).set("owner", A / 4).set("acct", A % 4).build();
}

int workloadMain(int argc, char **argv) {
  uint16_t Port = static_cast<uint16_t>(intArg(argc, argv, "--port", 0));
  int64_t Accounts = intArg(argc, argv, "--accounts", 64);
  int64_t Transfers = intArg(argc, argv, "--transfers", 5000);
  int64_t Threads = intArg(argc, argv, "--threads", 4);
  bool SeedOnly = boolArg(argc, argv, "--seed-only");
  int64_t SeedBatch = intArg(argc, argv, "--seed-batch", 1);
  bool CkptDuring = boolArg(argc, argv, "--checkpoint-during");
  if (SeedBatch < 1)
    SeedBatch = 1;

  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  ColumnId ColBal = Cat.get("balance");

  {
    RelClient Seeder;
    std::string Err;
    if (!Seeder.connect(Port, &Err)) {
      std::fprintf(stderr, "workload: %s\n", Err.c_str());
      return 1;
    }
    for (int64_t A = 0; A != Accounts;) {
      // An abort means an account survived a previous run with some
      // other balance — exactly what recovery is supposed to produce.
      // (With --seed-batch the whole batch aborts; also harmless, the
      // batch's accounts all exist already.)
      std::vector<wire::WireTxOp> Batch;
      for (int64_t E = std::min(Accounts, A + SeedBatch); A != E; ++A)
        Batch.push_back(wire::WireTxOp::insert(TupleBuilder(Cat)
                                                   .set("owner", A / 4)
                                                   .set("acct", A % 4)
                                                   .set("balance",
                                                        InitialBalance)
                                                   .build()));
      RelClient::Reply R;
      if (!Seeder.transact(Batch, &R) || R.St == wire::Status::Error) {
        std::fprintf(stderr, "workload: seeding failed\n");
        return 1;
      }
    }
  }
  if (SeedOnly) {
    std::printf("seeded %lld\n", static_cast<long long>(Accounts));
    return 0;
  }

  std::atomic<uint64_t> Acked{0}, Aborted{0};
  std::atomic<int64_t> WorkersLive{Threads};
  std::vector<std::thread> Workers;
  for (int64_t W = 0; W != Threads; ++W)
    Workers.emplace_back([&, W] {
      struct Live {
        std::atomic<int64_t> &L;
        ~Live() { L.fetch_sub(1); }
      } Dec{WorkersLive};
      RelClient Cli;
      if (!Cli.connect(Port, nullptr))
        return;
      uint64_t State = 0x9E3779B97F4A7C15ull * (W + 1) + 1;
      auto Rnd = [&State](uint64_t Mod) {
        State = State * 6364136223846793005ull + 1442695040888963407ull;
        return (State >> 33) % Mod;
      };
      for (int64_t T = 0; T != Transfers; ++T) {
        int64_t From = static_cast<int64_t>(Rnd(Accounts));
        int64_t To = static_cast<int64_t>(Rnd(Accounts));
        if (From == To)
          continue;
        int64_t Amt = 1 + static_cast<int64_t>(Rnd(10));
        std::vector<wire::WireTxOp> Ops;
        Ops.push_back(
            wire::WireTxOp::add(accountKey(Cat, From), ColBal, -Amt, 0));
        Ops.push_back(wire::WireTxOp::add(accountKey(Cat, To), ColBal, Amt));
        RelClient::Reply R;
        if (!Cli.transact(Ops, &R))
          return; // server gone (the SIGKILL case): unacked, uncounted
        if (R.ok())
          Acked.fetch_add(1);
        else if (R.aborted())
          Aborted.fetch_add(1);
      }
    });
  // Checkpoint while the transfer threads hammer the server: bracket
  // each Checkpoint round trip with reads of the ack counter. The
  // snapshot barrier is O(shards) and serialization runs on the
  // dedicated checkpoint thread, so acks must keep landing while the
  // checkpoint is in flight — zero acks across every checkpoint means
  // commits stalled behind it, the exact regression this guards.
  uint64_t CkptRuns = 0, AckedDuring = 0;
  bool CkptFailed = false;
  if (CkptDuring) {
    RelClient Ck;
    std::string Err;
    if (!Ck.connect(Port, &Err)) {
      std::fprintf(stderr, "workload: checkpoint client: %s\n", Err.c_str());
      CkptFailed = true;
    } else {
      while (Acked.load() == 0 && WorkersLive.load() > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      while (WorkersLive.load() > 0) {
        uint64_t Before = Acked.load();
        RelClient::Reply R;
        if (!Ck.checkpoint(&R) || !R.ok()) {
          std::fprintf(stderr, "workload: checkpoint failed: %s\n",
                       R.Error.c_str());
          CkptFailed = true;
          break;
        }
        AckedDuring += Acked.load() - Before;
        ++CkptRuns;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
  }
  for (std::thread &T : Workers)
    T.join();
  std::printf("acked %llu\naborted %llu\n",
              static_cast<unsigned long long>(Acked.load()),
              static_cast<unsigned long long>(Aborted.load()));
  if (CkptDuring) {
    std::printf("checkpoints %llu acked-during %llu\n",
                static_cast<unsigned long long>(CkptRuns),
                static_cast<unsigned long long>(AckedDuring));
    if (CkptFailed || CkptRuns == 0 || AckedDuring == 0) {
      std::fprintf(stderr,
                   "workload: checkpoint-under-load FAILED (commits "
                   "stalled or checkpoint errored)\n");
      return 1;
    }
  }
  return 0;
}

int verifyMain(int argc, char **argv) {
  uint16_t Port = static_cast<uint16_t>(intArg(argc, argv, "--port", 0));
  int64_t Accounts = intArg(argc, argv, "--accounts", 64);

  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  RelClient Cli;
  std::string Err;
  if (!Cli.connect(Port, &Err)) {
    std::fprintf(stderr, "verify: %s\n", Err.c_str());
    return 1;
  }
  uint64_t N = 0;
  if (!Cli.size(N)) {
    std::fprintf(stderr, "verify: size failed\n");
    return 1;
  }
  std::vector<Tuple> Rows;
  if (!Cli.query(Tuple(), Spec->columns(), Rows)) {
    std::fprintf(stderr, "verify: query failed\n");
    return 1;
  }
  int64_t Total = 0;
  for (const Tuple &T : Rows)
    Total += T.get(Cat.get("balance")).asInt();
  int64_t WantTotal = Accounts * InitialBalance;
  std::printf("accounts %llu total %lld\n",
              static_cast<unsigned long long>(N),
              static_cast<long long>(Total));
  if (static_cast<int64_t>(N) != Accounts || Total != WantTotal ||
      Rows.size() != static_cast<size_t>(Accounts)) {
    std::fprintf(stderr,
                 "verify: INVARIANT VIOLATED (want %lld accounts, "
                 "total %lld)\n",
                 static_cast<long long>(Accounts),
                 static_cast<long long>(WantTotal));
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (boolArg(argc, argv, "--workload"))
    return workloadMain(argc, argv);
  if (boolArg(argc, argv, "--verify"))
    return verifyMain(argc, argv);
  return serveMain(argc, argv);
}
