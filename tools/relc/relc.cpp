//===- tools/relc/relc.cpp - The RELC command-line compiler -------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The paper's compiler as a tool: reads a relational specification, a
// decomposition (Fig. 3 let-language) and a method set from one input
// file and emits a standalone C++ class implementing the relational
// interface.
//
//   relc input.relc                emit the C++ header to stdout
//   relc -o out.h input.relc       emit to a file
//   relc --check input.relc        parse + adequacy check only
//   relc --print input.relc        echo the parsed decomposition
//   relc --dot input.relc          Graphviz rendering of the decomposition
//
//===----------------------------------------------------------------------===//

#include "codegen/CppEmitter.h"
#include "codegen/SpecFile.h"
#include "decomp/Adequacy.h"
#include "decomp/Printer.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace relc;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--check | --print | --dot] [-o FILE] INPUT\n",
               Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  const char *Input = nullptr;
  const char *Output = nullptr;
  enum { EmitCpp, CheckOnly, PrintDecomp, PrintDot } Mode = EmitCpp;

  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--check") == 0)
      Mode = CheckOnly;
    else if (std::strcmp(argv[I], "--print") == 0)
      Mode = PrintDecomp;
    else if (std::strcmp(argv[I], "--dot") == 0)
      Mode = PrintDot;
    else if (std::strcmp(argv[I], "-o") == 0 && I + 1 < argc)
      Output = argv[++I];
    else if (argv[I][0] == '-')
      return usage(argv[0]);
    else if (!Input)
      Input = argv[I];
    else
      return usage(argv[0]);
  }
  if (!Input)
    return usage(argv[0]);

  std::ifstream In(Input);
  if (!In) {
    std::fprintf(stderr, "relc: error: cannot open '%s'\n", Input);
    return 1;
  }
  std::stringstream Ss;
  Ss << In.rdbuf();

  SpecFileResult Parsed = parseSpecFile(Ss.str());
  if (!Parsed.ok()) {
    std::fprintf(stderr, "relc: %s: error: %s\n", Input,
                 Parsed.Error.c_str());
    return 1;
  }
  SpecFile &File = *Parsed.File;

  AdequacyResult Adequate = checkAdequacy(*File.Decomp);
  if (!Adequate.Ok) {
    std::fprintf(stderr,
                 "relc: %s: error: decomposition is not adequate for the "
                 "specification: %s\n",
                 Input, Adequate.Error.c_str());
    return 1;
  }

  std::string Text;
  switch (Mode) {
  case CheckOnly:
    std::fprintf(stderr, "%s: ok (%u nodes, %u edges, adequate)\n", Input,
                 File.Decomp->numNodes(), File.Decomp->numEdges());
    return 0;
  case PrintDecomp:
    Text = printDecomposition(*File.Decomp);
    break;
  case PrintDot:
    Text = printDecompositionDot(*File.Decomp);
    break;
  case EmitCpp:
    Text = emitCpp(*File.Decomp, File.Options);
    break;
  }

  if (!Output) {
    std::fputs(Text.c_str(), stdout);
    return 0;
  }
  std::ofstream OutFile(Output);
  if (!OutFile) {
    std::fprintf(stderr, "relc: error: cannot write '%s'\n", Output);
    return 1;
  }
  OutFile << Text;
  return 0;
}
