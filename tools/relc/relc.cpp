//===- tools/relc/relc.cpp - The RELC command-line compiler -------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The paper's compiler as a tool — a thin driver over the pipeline:
//
//   parse (SpecFile) -> lower (ir::Lowering) -> passes (ir::PassManager)
//     -> backend (codegen/backend)
//
//   relc input.relc                emit the C++ header to stdout
//   relc -o out.h input.relc       emit to a file
//   relc --check input.relc        parse + adequacy check only
//   relc --print input.relc        echo the parsed decomposition
//   relc --dot input.relc          Graphviz rendering of the decomposition
//   relc --dump-ir input.relc      print the post-pass IR instead of code
//   relc --no-opt input.relc       skip optimization passes (dead-index
//                                  elimination); canonicalization passes
//                                  (dedup, lock plans) always run
//   relc --backend NAME input.relc pick the emission backend (default cpp)
//   relc --shards N input.relc     also emit the sharded concurrent facade
//                                  (overrides the `concurrency` directive)
//   relc --shard-column COL ...    shard column for the facade
//
// The `transaction` directive (transact_by_* on the facade) requires a
// facade to attach to: a spec using it without a `concurrency`
// directive needs --shards N, and --shards 0 is rejected for it.
//
// Spec errors are reported as `relc: FILE:LINE:COL: error: ...`.
//
//===----------------------------------------------------------------------===//

#include "codegen/SpecFile.h"
#include "codegen/backend/Backend.h"
#include "codegen/ir/IrPrinter.h"
#include "codegen/ir/Lowering.h"
#include "codegen/ir/Passes.h"
#include "decomp/Adequacy.h"
#include "decomp/Printer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace relc;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--check | --print | --dot | --dump-ir] "
               "[--no-opt] [--backend NAME] [-o FILE] "
               "[--shards N] [--shard-column COL] INPUT\n",
               Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  const char *Input = nullptr;
  const char *Output = nullptr;
  const char *ShardColumn = nullptr;
  const char *BackendName = "cpp";
  int Shards = -1; // -1: follow the input file's `concurrency` directive
  bool RunOptimizations = true;
  enum { EmitCode, CheckOnly, PrintDecomp, PrintDot, DumpIr } Mode =
      EmitCode;

  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--check") == 0)
      Mode = CheckOnly;
    else if (std::strcmp(argv[I], "--print") == 0)
      Mode = PrintDecomp;
    else if (std::strcmp(argv[I], "--dot") == 0)
      Mode = PrintDot;
    else if (std::strcmp(argv[I], "--dump-ir") == 0)
      Mode = DumpIr;
    else if (std::strcmp(argv[I], "--no-opt") == 0)
      RunOptimizations = false;
    else if (std::strcmp(argv[I], "--backend") == 0 && I + 1 < argc)
      BackendName = argv[++I];
    else if (std::strcmp(argv[I], "-o") == 0 && I + 1 < argc)
      Output = argv[++I];
    else if (std::strcmp(argv[I], "--shards") == 0 && I + 1 < argc) {
      // 0 suppresses the facade (overriding a `concurrency`
      // directive); the upper bound is the directive's sanity cap —
      // the facade holds a by-value sub-instance and a padded lock
      // per shard. Parse strictly: "four" or "4x" must not silently
      // become a facade-stripping 0 (or a truncated 4).
      const char *Arg = argv[++I];
      char *End = nullptr;
      long V = std::strtol(Arg, &End, 10);
      if (End == Arg || *End != '\0' || V < 0 || V > 4096) {
        std::fprintf(stderr,
                     "relc: error: --shards must be an integer in "
                     "[0, 4096] (0 disables the facade)\n");
        return 2;
      }
      Shards = static_cast<int>(V);
    } else if (std::strcmp(argv[I], "--shard-column") == 0 && I + 1 < argc)
      ShardColumn = argv[++I];
    else if (argv[I][0] == '-')
      return usage(argv[0]);
    else if (!Input)
      Input = argv[I];
    else
      return usage(argv[0]);
  }
  if (!Input)
    return usage(argv[0]);

  std::ifstream In(Input);
  if (!In) {
    std::fprintf(stderr, "relc: error: cannot open '%s'\n", Input);
    return 1;
  }
  std::stringstream Ss;
  Ss << In.rdbuf();

  SpecFileResult Parsed = parseSpecFile(Ss.str());
  if (!Parsed.ok()) {
    // FILE:LINE:COL:, the format editors and CI annotators understand.
    if (Parsed.Line > 0)
      std::fprintf(stderr, "relc: %s:%u:%u: error: %s\n", Input,
                   Parsed.Line, Parsed.Col, Parsed.Error.c_str());
    else
      std::fprintf(stderr, "relc: %s: error: %s\n", Input,
                   Parsed.Error.c_str());
    return 1;
  }
  SpecFile &File = *Parsed.File;

  // CLI overrides for the concurrent facade (see docs/RELC_CLI.md).
  if (Shards >= 0)
    File.Options.ConcurrentShards = static_cast<unsigned>(Shards);
  if (ShardColumn) {
    std::optional<ColumnId> Id = File.Spec->catalog().find(ShardColumn);
    if (!Id) {
      std::fprintf(stderr,
                   "relc: %s: error: --shard-column '%s' is not a column "
                   "of the relation\n",
                   Input, ShardColumn);
      return 1;
    }
    // A shard column with no facade to shard is a silent no-op the
    // user will only discover when their client code fails to find
    // the concurrent class; reject it up front.
    if (File.Options.ConcurrentShards == 0) {
      std::fprintf(stderr,
                   "relc: %s: error: --shard-column requires a facade "
                   "(pass --shards N or add a `concurrency` directive)\n",
                   Input);
      return 1;
    }
    File.Options.ConcurrentShardColumn = *Id;
  }

  // transact_by_* lives on the concurrent facade: without one the
  // directive would silently vanish from the emitted header, so reject
  // the combination up front (after the overrides, so `--shards N` can
  // supply the facade and `--shards 0` is caught stripping it).
  if (!File.Options.Transactions.empty() &&
      File.Options.ConcurrentShards == 0) {
    std::fprintf(stderr,
                 "relc: %s: error: `transaction` requires a concurrent "
                 "facade (add a `concurrency sharded N` directive or "
                 "pass --shards N)\n",
                 Input);
    return 1;
  }

  AdequacyResult Adequate = checkAdequacy(*File.Decomp);
  if (!Adequate.Ok) {
    std::fprintf(stderr,
                 "relc: %s: error: decomposition is not adequate for the "
                 "specification: %s\n",
                 Input, Adequate.Error.c_str());
    return 1;
  }

  std::string Text;
  switch (Mode) {
  case CheckOnly:
    std::fprintf(stderr, "%s: ok (%u nodes, %u edges, adequate)\n", Input,
                 File.Decomp->numNodes(), File.Decomp->numEdges());
    return 0;
  case PrintDecomp:
    Text = printDecomposition(*File.Decomp);
    break;
  case PrintDot:
    Text = printDecompositionDot(*File.Decomp);
    break;
  case DumpIr:
  case EmitCode: {
    // The pipeline, stage by stage: lower, passes, then (for code
    // emission) the chosen backend over the canonical IR.
    std::unique_ptr<Backend> B = createBackend(BackendName);
    if (!B) {
      std::string Known;
      for (std::string_view N : backendNames())
        Known += (Known.empty() ? "" : ", ") + std::string(N);
      std::fprintf(stderr,
                   "relc: error: unknown backend '%s' (known: %s)\n",
                   BackendName, Known.c_str());
      return 2;
    }
    ir::Module M = lowerToIr(*File.Decomp, File.Options);
    ir::PassManager PM;
    ir::addDefaultPasses(PM);
    PM.run(M, RunOptimizations);
    Text = Mode == DumpIr ? ir::printModule(M) : B->emit(M);
    break;
  }
  }

  if (!Output) {
    std::fputs(Text.c_str(), stdout);
    return 0;
  }
  std::ofstream OutFile(Output);
  if (!OutFile) {
    std::fprintf(stderr, "relc: error: cannot write '%s'\n", Output);
    return 1;
  }
  OutFile << Text;
  return 0;
}
