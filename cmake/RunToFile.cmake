# Runs ${EXE} and captures its stdout into ${OUT}. Used to materialize
# RELC-generated headers at build time (shell-redirection-free so it
# works under any CMake generator).
execute_process(COMMAND "${EXE}" OUTPUT_FILE "${OUT}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  file(REMOVE "${OUT}")
  message(FATAL_ERROR "${EXE} failed with exit code ${rc}")
endif()
