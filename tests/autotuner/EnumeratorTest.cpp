//===- tests/autotuner/EnumeratorTest.cpp - Enumeration tests ----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the exhaustive decomposition enumerator behind the autotuner
/// (Section 5): every result is adequate, unique, within the edge
/// bound, and known shapes (Fig. 2, Fig. 12's 1/5/9) are found.
///
//===----------------------------------------------------------------------===//

#include "autotuner/Enumerator.h"

#include "decomp/Adequacy.h"
#include "decomp/Builder.h"

#include <gtest/gtest.h>

#include <set>

using namespace relc;

namespace {

RelSpecRef edgesSpec() {
  return RelSpec::make("edges", {"src", "dst", "weight"},
                       {{"src, dst", "weight"}});
}

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

TEST(EnumeratorTest, AllResultsAdequate) {
  auto Decomps = enumerateDecompositions(edgesSpec());
  ASSERT_FALSE(Decomps.empty());
  for (const Decomposition &D : Decomps) {
    AdequacyResult R = checkAdequacy(D);
    EXPECT_TRUE(R.Ok) << D.canonicalString() << ": " << R.Error;
  }
}

TEST(EnumeratorTest, AllResultsWithinEdgeBound) {
  EnumeratorOptions Opts;
  Opts.MaxEdges = 3;
  auto Decomps = enumerateDecompositions(edgesSpec(), Opts);
  for (const Decomposition &D : Decomps)
    EXPECT_LE(D.numEdges(), 3u);
}

TEST(EnumeratorTest, NoDuplicateStructures) {
  auto Decomps = enumerateDecompositions(edgesSpec());
  std::set<std::string> Seen;
  for (const Decomposition &D : Decomps)
    EXPECT_TRUE(Seen.insert(D.canonicalString(false)).second)
        << D.canonicalString(false);
}

TEST(EnumeratorTest, MoreEdgesMoreDecompositions) {
  EnumeratorOptions Small;
  Small.MaxEdges = 2;
  EnumeratorOptions Large;
  Large.MaxEdges = 4;
  auto Few = enumerateDecompositions(edgesSpec(), Small);
  auto Many = enumerateDecompositions(edgesSpec(), Large);
  EXPECT_LT(Few.size(), Many.size());
  EXPECT_FALSE(Few.empty());
}

TEST(EnumeratorTest, FindsForwardChain) {
  // Fig. 12 decomposition 1: x —src→ y —dst→ unit(weight).
  RelSpecRef Spec = edgesSpec();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "src, dst", B.unit("weight"));
  NodeId Y = B.addNode("y", "src", B.map("dst", DsKind::HashTable, W));
  B.addNode("x", "", B.map("src", DsKind::HashTable, Y));
  std::string Want = B.build().canonicalString(false);

  bool Found = false;
  for (const Decomposition &D : enumerateDecompositions(Spec))
    if (D.canonicalString(false) == Want)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(EnumeratorTest, FindsSharedBidirectional) {
  // Fig. 12 decomposition 5: both directions sharing one weight node.
  RelSpecRef Spec = edgesSpec();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "src, dst", B.unit("weight"));
  NodeId Y = B.addNode("y", "src", B.map("dst", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "dst", B.map("src", DsKind::HashTable, W));
  B.addNode("x", "", B.join(B.map("src", DsKind::HashTable, Y),
                            B.map("dst", DsKind::HashTable, Z)));
  std::string Want = B.build().canonicalString(false);

  bool Found = false;
  for (const Decomposition &D : enumerateDecompositions(Spec))
    if (D.canonicalString(false) == Want)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(EnumeratorTest, FindsUnsharedBidirectional) {
  // Fig. 12 decomposition 9: two separate weight leaves.
  RelSpecRef Spec = edgesSpec();
  DecompBuilder B(Spec);
  NodeId L = B.addNode("l", "src, dst", B.unit("weight"));
  NodeId R = B.addNode("r", "src, dst", B.unit("weight"));
  NodeId Y = B.addNode("y", "src", B.map("dst", DsKind::HashTable, L));
  NodeId Z = B.addNode("z", "dst", B.map("src", DsKind::HashTable, R));
  B.addNode("x", "", B.join(B.map("src", DsKind::HashTable, Y),
                            B.map("dst", DsKind::HashTable, Z)));
  std::string Want = B.build().canonicalString(false);

  bool Found = false;
  for (const Decomposition &D : enumerateDecompositions(Spec))
    if (D.canonicalString(false) == Want)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(EnumeratorTest, SharingCanBeDisabled) {
  EnumeratorOptions NoShare;
  NoShare.EnableSharing = false;
  auto Without = enumerateDecompositions(edgesSpec(), NoShare);
  auto With = enumerateDecompositions(edgesSpec());
  EXPECT_LT(Without.size(), With.size());
  // No node with ≥2 incoming edges may appear without sharing.
  for (const Decomposition &D : Without)
    for (NodeId Id = 0; Id != D.numNodes(); ++Id)
      EXPECT_LE(D.incoming(Id).size(), 1u);
}

TEST(EnumeratorTest, SchedulerEnumerationFindsFig2) {
  RelSpecRef Spec = schedulerSpec();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::HashTable, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::HashTable, Z)));
  std::string Want = B.build().canonicalString(false);

  bool Found = false;
  for (const Decomposition &D : enumerateDecompositions(Spec))
    if (D.canonicalString(false) == Want)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(EnumeratorTest, MaxResultsCapRespected) {
  EnumeratorOptions Opts;
  Opts.MaxResults = 10;
  auto Decomps = enumerateDecompositions(schedulerSpec(), Opts);
  EXPECT_LE(Decomps.size(), 10u);
}

TEST(EnumeratorTest, WithDataStructuresReassignsEdges) {
  RelSpecRef Spec = edgesSpec();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "src, dst", B.unit("weight"));
  NodeId Y = B.addNode("y", "src", B.map("dst", DsKind::HashTable, W));
  B.addNode("x", "", B.map("src", DsKind::HashTable, Y));
  Decomposition D = B.build();

  Decomposition D2 = withDataStructures(D, {DsKind::Btree, DsKind::DList});
  ASSERT_EQ(D2.numEdges(), 2u);
  EXPECT_EQ(D2.edge(0).Ds, DsKind::Btree);
  EXPECT_EQ(D2.edge(1).Ds, DsKind::DList);
  // Shape untouched.
  EXPECT_EQ(D.canonicalString(false), D2.canonicalString(false));
}

TEST(EnumeratorTest, EdgeSupportsDsVectorNeedsSingleIntColumn) {
  RelSpecRef Spec = edgesSpec();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "src, dst", B.unit("weight"));
  NodeId Y = B.addNode("y", "src", B.map("dst", DsKind::HashTable, W));
  B.addNode("x", "", B.map("src", DsKind::HashTable, Y));
  Decomposition D = B.build();

  // Single-column key: vector OK.
  EXPECT_TRUE(edgeSupportsDs(D.edge(0), DsKind::Vector));
  EXPECT_TRUE(edgeSupportsDs(D.edge(0), DsKind::HashTable));

  DecompBuilder B2(Spec);
  NodeId W2 = B2.addNode("w", "src, dst", B2.unit("weight"));
  B2.addNode("x", "", B2.map("src, dst", DsKind::HashTable, W2));
  Decomposition D2 = B2.build();
  EXPECT_FALSE(edgeSupportsDs(D2.edge(0), DsKind::Vector));
  EXPECT_TRUE(edgeSupportsDs(D2.edge(0), DsKind::Btree));
}

TEST(EnumeratorTest, SingleColumnSpec) {
  // nodes(id): the only shapes are chains of maps over id.
  RelSpecRef Spec = RelSpec::make("nodes", {"id"});
  auto Decomps = enumerateDecompositions(Spec);
  ASSERT_FALSE(Decomps.empty());
  for (const Decomposition &D : Decomps) {
    AdequacyResult R = checkAdequacy(D);
    EXPECT_TRUE(R.Ok) << R.Error;
  }
}

} // namespace
