//===- tests/autotuner/AutotunerTest.cpp - Autotuner tests -------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the benchmark-driven autotuner (Section 5) with synthetic cost
/// functions: ranking, timeout handling, and data structure palettes.
///
//===----------------------------------------------------------------------===//

#include "autotuner/Autotuner.h"

#include "query/Planner.h"
#include "runtime/SynthesizedRelation.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

RelSpecRef edgesSpec() {
  return RelSpec::make("edges", {"src", "dst", "weight"},
                       {{"src, dst", "weight"}});
}

TEST(AutotunerTest, RanksByIncreasingCost) {
  // Cost = number of edges: shallow decompositions must rank first.
  AutotunerOptions Opts;
  Opts.Enumerate.MaxEdges = 3;
  auto Results = autotune(
      edgesSpec(),
      [](const Decomposition &D) { return double(D.numEdges()); }, Opts);
  ASSERT_FALSE(Results.empty());
  for (size_t I = 1; I < Results.size(); ++I)
    EXPECT_LE(Results[I - 1].Cost, Results[I].Cost);
  EXPECT_FALSE(Results.front().TimedOut);
}

TEST(AutotunerTest, TimeoutsRankLastAndAreFlagged) {
  // Everything with more than one edge "times out".
  AutotunerOptions Opts;
  Opts.Enumerate.MaxEdges = 3;
  Opts.CostLimit = 1.5;
  auto Results = autotune(
      edgesSpec(),
      [](const Decomposition &D) { return double(D.numEdges()); }, Opts);
  ASSERT_FALSE(Results.empty());
  bool SeenTimeout = false;
  for (const TunedDecomposition &T : Results) {
    if (T.TimedOut)
      SeenTimeout = true;
    else
      EXPECT_FALSE(SeenTimeout) << "non-timeout ranked after a timeout";
  }
  EXPECT_TRUE(SeenTimeout);
}

TEST(AutotunerTest, InfiniteCostCountsAsTimeout) {
  AutotunerOptions Opts;
  Opts.Enumerate.MaxEdges = 2;
  auto Results = autotune(
      edgesSpec(),
      [](const Decomposition &) {
        return std::numeric_limits<double>::infinity();
      },
      Opts);
  for (const TunedDecomposition &T : Results)
    EXPECT_TRUE(T.TimedOut);
}

TEST(AutotunerTest, PalettePicksBestDataStructure) {
  // Cost function that charges for lists: the best assignment per
  // structure must avoid DList wherever the palette offers HashTable.
  AutotunerOptions Opts;
  Opts.Enumerate.MaxEdges = 2;
  Opts.DsPalette = {DsKind::DList, DsKind::HashTable};
  auto Results = autotune(
      edgesSpec(),
      [](const Decomposition &D) {
        double Cost = 1.0;
        for (const MapEdge &E : D.edges())
          if (E.Ds == DsKind::DList)
            Cost += 10.0;
        return Cost;
      },
      Opts);
  ASSERT_FALSE(Results.empty());
  for (const MapEdge &E : Results.front().Decomp.edges())
    EXPECT_EQ(E.Ds, DsKind::HashTable);
  EXPECT_DOUBLE_EQ(Results.front().Cost, 1.0);
}

TEST(AutotunerTest, BenchmarkReceivesRunnableDecompositions) {
  // The benchmark can actually instantiate and exercise each candidate
  // (this is how the real Fig. 11/13 benches use the autotuner).
  RelSpecRef Spec = edgesSpec();
  const Catalog &Cat = Spec->catalog();
  AutotunerOptions Opts;
  Opts.Enumerate.MaxEdges = 3;
  Opts.Enumerate.MaxResults = 40;
  size_t Ran = 0;
  auto Results = autotune(
      Spec,
      [&](const Decomposition &D) {
        SynthesizedRelation R{Decomposition(D)};
        for (int64_t I = 0; I < 6; ++I) {
          Tuple T = TupleBuilder(Cat)
                        .set("src", I % 3)
                        .set("dst", I)
                        .set("weight", I * 2)
                        .build();
          R.insert(T);
        }
        ++Ran;
        // Cost: estimated cost of a src-probe if plannable, else inf.
        auto P = R.planFor(Cat.parseSet("src"), Cat.parseSet("dst"));
        return P ? P->EstimatedCost
                 : std::numeric_limits<double>::infinity();
      },
      Opts);
  EXPECT_GT(Ran, 0u);
  ASSERT_FALSE(Results.empty());
  EXPECT_FALSE(Results.front().TimedOut);
}

} // namespace
