//===- tests/runtime/SynthesizedRelationTest.cpp - Facade tests --*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the public SynthesizedRelation facade: the five relational
/// operations of Section 2 against the paper's running example, plan
/// caching, profiling, and the streaming scan interface.
///
//===----------------------------------------------------------------------===//

#include "runtime/SynthesizedRelation.h"

#include "decomp/Builder.h"

#include <gtest/gtest.h>

#include <set>

using namespace relc;

namespace {

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

Decomposition fig2(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  return B.build();
}

class SynthesizedRelationTest : public ::testing::Test {
protected:
  SynthesizedRelationTest()
      : Spec(schedulerSpec()), Rel(fig2(Spec)), Cat(Spec->catalog()) {}

  Tuple proc(int64_t Ns, int64_t Pid, int64_t State, int64_t Cpu) {
    return TupleBuilder(Cat)
        .set("ns", Ns)
        .set("pid", Pid)
        .set("state", State)
        .set("cpu", Cpu)
        .build();
  }

  RelSpecRef Spec;
  SynthesizedRelation Rel;
  const Catalog &Cat;
};

TEST_F(SynthesizedRelationTest, StartsEmpty) {
  EXPECT_TRUE(Rel.empty());
  EXPECT_EQ(Rel.size(), 0u);
  EXPECT_TRUE(Rel.toRelation().empty());
  EXPECT_TRUE(Rel.checkWellFormed().Ok);
}

TEST_F(SynthesizedRelationTest, SectionTwoWalkthrough) {
  // The exact operation sequence of Section 2's worked example.
  EXPECT_TRUE(Rel.insert(proc(7, 42, 1, 0)));
  EXPECT_EQ(Rel.size(), 1u);

  // query r 〈state: R〉 {ns, pid}
  auto Running = Rel.query(TupleBuilder(Cat).set("state", 1).build(),
                           Cat.parseSet("ns, pid"));
  ASSERT_EQ(Running.size(), 1u);
  EXPECT_EQ(Running[0].get(Cat.get("ns")).asInt(), 7);
  EXPECT_EQ(Running[0].get(Cat.get("pid")).asInt(), 42);

  // query r 〈ns: 7, pid: 42〉 {state, cpu}
  auto Probe = Rel.query(TupleBuilder(Cat).set("ns", 7).set("pid", 42).build(),
                         Cat.parseSet("state, cpu"));
  ASSERT_EQ(Probe.size(), 1u);
  EXPECT_EQ(Probe[0].get(Cat.get("cpu")).asInt(), 0);

  // update r 〈ns: 7, pid: 42〉 〈state: S〉
  EXPECT_EQ(Rel.update(TupleBuilder(Cat).set("ns", 7).set("pid", 42).build(),
                       TupleBuilder(Cat).set("state", 0).build()),
            1u);
  EXPECT_TRUE(Rel.query(TupleBuilder(Cat).set("state", 1).build(),
                        Cat.parseSet("ns, pid"))
                  .empty());

  // remove r 〈ns: 7, pid: 42〉
  EXPECT_EQ(Rel.remove(TupleBuilder(Cat).set("ns", 7).set("pid", 42).build()),
            1u);
  EXPECT_TRUE(Rel.empty());
  EXPECT_TRUE(Rel.checkWellFormed().Ok);
}

TEST_F(SynthesizedRelationTest, DuplicateInsertReturnsFalse) {
  EXPECT_TRUE(Rel.insert(proc(1, 1, 0, 7)));
  EXPECT_FALSE(Rel.insert(proc(1, 1, 0, 7)));
  EXPECT_EQ(Rel.size(), 1u);
}

TEST_F(SynthesizedRelationTest, QueryDeduplicatesProjection) {
  Rel.insert(proc(1, 1, 0, 7));
  Rel.insert(proc(1, 2, 0, 7));
  // Projecting to {cpu} over two tuples with equal cpu: one row.
  auto Rows = Rel.query(Tuple(), Cat.parseSet("cpu"));
  EXPECT_EQ(Rows.size(), 1u);
}

TEST_F(SynthesizedRelationTest, ScanStreamsWithoutDedup) {
  Rel.insert(proc(1, 1, 0, 7));
  Rel.insert(proc(1, 2, 0, 7));
  int Count = 0;
  Rel.scan(Tuple(), Cat.parseSet("cpu"), [&](const Tuple &T) {
    EXPECT_TRUE(T.has(Cat.get("cpu")));
    ++Count;
    return true;
  });
  EXPECT_EQ(Count, 2);
}

TEST_F(SynthesizedRelationTest, ScanEarlyStop) {
  for (int64_t P = 0; P < 10; ++P)
    Rel.insert(proc(1, P, 0, P));
  int Count = 0;
  Rel.scan(Tuple(), Cat.parseSet("pid"), [&](const Tuple &) {
    ++Count;
    return false;
  });
  EXPECT_EQ(Count, 1);
}

TEST_F(SynthesizedRelationTest, Contains) {
  Rel.insert(proc(1, 1, 0, 7));
  EXPECT_TRUE(Rel.contains(TupleBuilder(Cat).set("ns", 1).build()));
  EXPECT_TRUE(
      Rel.contains(TupleBuilder(Cat).set("ns", 1).set("pid", 1).build()));
  EXPECT_FALSE(Rel.contains(TupleBuilder(Cat).set("ns", 2).build()));
  EXPECT_TRUE(Rel.contains(Tuple())); // nonempty relation
}

TEST_F(SynthesizedRelationTest, RemoveByPartialPattern) {
  for (int64_t P = 0; P < 6; ++P)
    Rel.insert(proc(P % 2, P, P % 2, P));
  EXPECT_EQ(Rel.remove(TupleBuilder(Cat).set("state", 1).build()), 3u);
  EXPECT_EQ(Rel.size(), 3u);
  EXPECT_TRUE(Rel.checkWellFormed().Ok);
}

TEST_F(SynthesizedRelationTest, UpsertInsertsWhenAbsent) {
  Tuple Key = TupleBuilder(Cat).set("ns", 1).set("pid", 2).build();
  bool Inserted = Rel.upsert(Key, [&](const BindingFrame *Cur, Tuple &V) {
    EXPECT_EQ(Cur, nullptr);
    V.set(Cat.get("state"), Value::ofInt(1));
    V.set(Cat.get("cpu"), Value::ofInt(7));
  });
  EXPECT_TRUE(Inserted);
  EXPECT_EQ(Rel.size(), 1u);
  EXPECT_TRUE(Rel.contains(proc(1, 2, 1, 7)));
}

TEST_F(SynthesizedRelationTest, UpsertReadModifyWritesWhenPresent) {
  Rel.insert(proc(1, 2, 1, 10));
  Tuple Key = TupleBuilder(Cat).set("ns", 1).set("pid", 2).build();
  ColumnId ColCpu = Cat.get("cpu");
  bool Inserted = Rel.upsert(Key, [&](const BindingFrame *Cur, Tuple &V) {
    ASSERT_NE(Cur, nullptr);
    EXPECT_EQ(Cur->get(Cat.get("state")).asInt(), 1);
    V.set(ColCpu, Value::ofInt(Cur->get(ColCpu).asInt() + 5));
  });
  EXPECT_FALSE(Inserted);
  EXPECT_EQ(Rel.size(), 1u);
  EXPECT_TRUE(Rel.contains(proc(1, 2, 1, 15)));
  EXPECT_FALSE(Rel.contains(proc(1, 2, 1, 10)));
}

TEST_F(SynthesizedRelationTest, UpsertEmptyValuesLeavesTupleAlone) {
  Rel.insert(proc(3, 4, 0, 9));
  Tuple Key = TupleBuilder(Cat).set("ns", 3).set("pid", 4).build();
  bool Inserted =
      Rel.upsert(Key, [&](const BindingFrame *, Tuple &) {});
  EXPECT_FALSE(Inserted);
  EXPECT_TRUE(Rel.contains(proc(3, 4, 0, 9)));
  EXPECT_EQ(Rel.size(), 1u);
}

TEST_F(SynthesizedRelationTest, UpsertAccumulatorLoop) {
  // The ipcap_daemon pattern: counters accumulated by key through
  // repeated upserts.
  Tuple Key = TupleBuilder(Cat).set("ns", 5).set("pid", 6).build();
  ColumnId ColCpu = Cat.get("cpu"), ColState = Cat.get("state");
  for (int64_t I = 1; I <= 10; ++I)
    Rel.upsert(Key, [&](const BindingFrame *Cur, Tuple &V) {
      int64_t Acc = Cur ? Cur->get(ColCpu).asInt() : 0;
      V.set(ColCpu, Value::ofInt(Acc + I));
      V.set(ColState, Value::ofInt(0));
    });
  EXPECT_EQ(Rel.size(), 1u);
  EXPECT_TRUE(Rel.contains(proc(5, 6, 0, 55)));
}

TEST_F(SynthesizedRelationTest, Clear) {
  for (int64_t P = 0; P < 5; ++P)
    Rel.insert(proc(1, P, 0, P));
  Rel.clear();
  EXPECT_TRUE(Rel.empty());
  EXPECT_EQ(Rel.liveInstances(), 1u);
  EXPECT_TRUE(Rel.insert(proc(1, 1, 0, 1)));
  EXPECT_EQ(Rel.size(), 1u);
}

TEST_F(SynthesizedRelationTest, PlanForCachesByShape) {
  Rel.insert(proc(1, 1, 0, 7));
  const QueryPlan *P1 =
      Rel.planFor(Cat.parseSet("ns, pid"), Cat.parseSet("cpu"));
  const QueryPlan *P2 =
      Rel.planFor(Cat.parseSet("ns, pid"), Cat.parseSet("cpu"));
  ASSERT_NE(P1, nullptr);
  EXPECT_EQ(P1, P2); // same cached object
  EXPECT_EQ(P1->str(), "qlr(qlookup(qlookup(qunit)), left)");
}

TEST_F(SynthesizedRelationTest, SizeTracksMutations) {
  EXPECT_EQ(Rel.size(), 0u);
  Rel.insert(proc(1, 1, 0, 7));
  Rel.insert(proc(1, 2, 1, 4));
  EXPECT_EQ(Rel.size(), 2u);
  Rel.remove(TupleBuilder(Cat).set("ns", 1).build());
  EXPECT_EQ(Rel.size(), 0u);
}

TEST_F(SynthesizedRelationTest, ProfileCostParamsReflectsFanout) {
  // 1 namespace with 32 pids: the profiled ns→y fanout is 1 and the
  // pid→w fanout is 32.
  for (int64_t P = 0; P < 32; ++P)
    Rel.insert(proc(1, P, 0, P));
  CostParams Profiled = Rel.profileCostParams();
  const Decomposition &D = Rel.decomp();
  EdgeId NsEdge = InvalidIndex, PidEdge = InvalidIndex;
  for (EdgeId E = 0; E != D.numEdges(); ++E) {
    if (D.edge(E).KeyCols == Cat.parseSet("ns") && D.edge(E).From == D.root())
      NsEdge = E;
    if (D.edge(E).KeyCols == Cat.parseSet("pid"))
      PidEdge = E;
  }
  ASSERT_NE(NsEdge, InvalidIndex);
  ASSERT_NE(PidEdge, InvalidIndex);
  EXPECT_NEAR(Profiled.fanout(NsEdge), 1.0, 0.01);
  EXPECT_NEAR(Profiled.fanout(PidEdge), 32.0, 0.01);
}

TEST_F(SynthesizedRelationTest, StringValuedColumns) {
  // Values are untyped: states as interned strings work end to end.
  // (The state edge must not be a vector — vectors require integer
  // keys — so rebuild Fig. 2 with a hash table there.)
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::HashTable, Z)));
  SynthesizedRelation R2(B.build());
  Tuple T = TupleBuilder(Cat)
                .set("ns", 1)
                .set("pid", 2)
                .set("state", "running")
                .set("cpu", 3)
                .build();
  EXPECT_TRUE(R2.insert(T));
  auto Rows = R2.query(TupleBuilder(Cat).set("state", "running").build(),
                       Cat.parseSet("pid"));
  ASSERT_EQ(Rows.size(), 1u);
  EXPECT_EQ(Rows[0].get(Cat.get("pid")).asInt(), 2);
}

TEST_F(SynthesizedRelationTest, ReoptimizeReplansUnderMeasuredFanout) {
  // Build a skewed relation: 1 namespace, many pids, 2 states. Under
  // default fanouts the planner guesses; after reoptimize() it must
  // plan `query 〈ns〉 {pid}` through the measured-cheaper side, and the
  // cached plan object must be replaced.
  for (int64_t P = 0; P < 64; ++P)
    Rel.insert(proc(1, P, P % 2, P));
  const QueryPlan *Before =
      Rel.planFor(Cat.parseSet("ns"), Cat.parseSet("pid"));
  ASSERT_NE(Before, nullptr);
  double CostBefore = Before->EstimatedCost;

  Rel.reoptimize();
  const QueryPlan *After =
      Rel.planFor(Cat.parseSet("ns"), Cat.parseSet("pid"));
  ASSERT_NE(After, nullptr);
  // The measured fanouts differ from the defaults, so the estimate
  // must reflect them (64 pids per namespace vs default 8). (Pointer
  // identity is not checked — the allocator may reuse the slot.)
  EXPECT_NE(After->EstimatedCost, CostBefore);

  // Queries still answer correctly after replanning.
  auto Rows = Rel.query(TupleBuilder(Cat).set("ns", 1).build(),
                        Cat.parseSet("pid"));
  EXPECT_EQ(Rows.size(), 64u);
  WfResult Wf = Rel.checkWellFormed();
  EXPECT_TRUE(Wf.Ok) << Wf.Error;
}

TEST_F(SynthesizedRelationTest, ReoptimizeWithExplicitParams) {
  Rel.insert(proc(1, 1, 0, 7));
  CostParams Params(123.0);
  Rel.reoptimize(Params);
  const QueryPlan *P = Rel.planFor(Cat.parseSet("ns, pid"),
                                   Cat.parseSet("cpu"));
  ASSERT_NE(P, nullptr);
  // Behaviour unchanged.
  EXPECT_TRUE(Rel.contains(TupleBuilder(Cat).set("ns", 1).build()));
}

TEST_F(SynthesizedRelationTest, InsertConflictsFdsDetectsKeyCollisions) {
  Rel.insert(proc(1, 2, 0, 7));
  // Same key, different non-key values: a conflict.
  EXPECT_TRUE(Rel.insertConflictsFds(proc(1, 2, 1, 7)));
  EXPECT_TRUE(Rel.insertConflictsFds(proc(1, 2, 0, 8)));
  // Exact duplicate: not a conflict (insert would no-op).
  EXPECT_FALSE(Rel.insertConflictsFds(proc(1, 2, 0, 7)));
  // Different key: no conflict.
  EXPECT_FALSE(Rel.insertConflictsFds(proc(1, 3, 1, 9)));
  // Excluding the matching tuple silences its conflict (the update
  // validation path).
  Tuple Old = proc(1, 2, 0, 7);
  EXPECT_FALSE(Rel.insertConflictsFds(proc(1, 2, 1, 7), &Old));
}

TEST_F(SynthesizedRelationTest, TransactAppliesBatchAtomically) {
  Rel.insert(proc(1, 1, 0, 10));
  ColumnId ColCpu = Cat.get("cpu"), ColState = Cat.get("state");
  std::vector<TxOp> Ops;
  Ops.push_back(TxOp::insert(proc(2, 2, 1, 5)));
  Ops.push_back(TxOp::update(
      TupleBuilder(Cat).set("ns", 1).set("pid", 1).build(),
      TupleBuilder(Cat).set("cpu", 11).build()));
  Ops.push_back(TxOp::upsert(
      TupleBuilder(Cat).set("ns", 3).set("pid", 3).build(),
      [&](const BindingFrame *Cur, Tuple &V) {
        EXPECT_EQ(Cur, nullptr);
        V.set(ColState, Value::ofInt(2));
        V.set(ColCpu, Value::ofInt(1));
      }));
  Ops.push_back(TxOp::remove(
      TupleBuilder(Cat).set("ns", 2).set("pid", 2).build()));

  TxResult R = Rel.transact(Ops);
  EXPECT_TRUE(R.Committed);
  EXPECT_EQ(Rel.size(), 2u);
  EXPECT_TRUE(Rel.contains(proc(1, 1, 0, 11)));
  EXPECT_TRUE(Rel.contains(proc(3, 3, 2, 1)));
  EXPECT_FALSE(Rel.contains(TupleBuilder(Cat).set("ns", 2).build()));
  EXPECT_TRUE(Rel.checkWellFormed().Ok);
}

TEST_F(SynthesizedRelationTest, TransactRollsBackOnMidBatchFdConflict) {
  Rel.insert(proc(1, 1, 0, 10));
  Rel.insert(proc(1, 2, 1, 20));
  Relation Before = Rel.toRelation();

  // Ops 0-2 succeed (insert + remove-with-victims + update), then op 3
  // collides with (1,2)'s key FD: everything must unwind.
  std::vector<TxOp> Ops;
  Ops.push_back(TxOp::insert(proc(4, 4, 0, 4)));
  Ops.push_back(TxOp::remove(TupleBuilder(Cat).set("state", 0).build()));
  Ops.push_back(TxOp::update(
      TupleBuilder(Cat).set("ns", 1).set("pid", 2).build(),
      TupleBuilder(Cat).set("cpu", 99).build()));
  Ops.push_back(TxOp::insert(proc(1, 2, 2, 0))); // FD conflict

  TxResult R = Rel.transact(Ops);
  EXPECT_FALSE(R.Committed);
  EXPECT_EQ(R.FailedOp, 3u);
  EXPECT_EQ(Rel.toRelation(), Before);
  EXPECT_EQ(Rel.size(), 2u);
  EXPECT_TRUE(Rel.checkWellFormed().Ok);
}

TEST_F(SynthesizedRelationTest, TransactRemoveUndoRestoresEveryVictim) {
  for (int64_t P = 0; P != 6; ++P)
    Rel.insert(proc(P % 2, P, P % 2, P));
  Relation Before = Rel.toRelation();

  // The fan-out remove deletes the three state-1 tuples; the trailing
  // conflict (against the surviving (0,0)) must resurrect all three.
  std::vector<TxOp> Ops;
  Ops.push_back(TxOp::remove(TupleBuilder(Cat).set("state", 1).build()));
  Ops.push_back(TxOp::insert(proc(0, 0, 1, 999))); // conflicts with (0,0)
  TxResult R = Rel.transact(Ops);
  EXPECT_FALSE(R.Committed);
  EXPECT_EQ(R.FailedOp, 1u);
  EXPECT_EQ(Rel.toRelation(), Before);
  EXPECT_EQ(Rel.size(), 6u);
}

TEST_F(SynthesizedRelationTest, TransactUpsertConditionalAbort) {
  // An upsert whose key matches nothing and whose callback binds
  // nothing is the defined "only if present" abort.
  Rel.insert(proc(1, 1, 0, 10));
  Relation Before = Rel.toRelation();
  ColumnId ColCpu = Cat.get("cpu");

  std::vector<TxOp> Ops;
  Ops.push_back(TxOp::update(
      TupleBuilder(Cat).set("ns", 1).set("pid", 1).build(),
      TupleBuilder(Cat).set("cpu", 77).build()));
  Ops.push_back(TxOp::upsert(
      TupleBuilder(Cat).set("ns", 9).set("pid", 9).build(),
      [&](const BindingFrame *Cur, Tuple &V) {
        if (!Cur)
          return; // absent: abort the batch
        V.set(ColCpu, Value::ofInt(Cur->get(ColCpu).asInt() + 1));
      }));
  TxResult R = Rel.transact(Ops);
  EXPECT_FALSE(R.Committed);
  EXPECT_EQ(R.FailedOp, 1u);
  EXPECT_EQ(Rel.toRelation(), Before);
}

TEST_F(SynthesizedRelationTest, TransactUpsertCheckedVetoRollsBackBatch) {
  // The guarded upsert (TxOp::upsertChecked): the callback returning
  // false vetoes the whole batch — the declarative overdraft guard the
  // server's wire `add` op compiles to.
  Rel.insert(proc(1, 1, 0, 100));
  Rel.insert(proc(1, 2, 0, 5));
  Relation Before = Rel.toRelation();
  ColumnId ColCpu = Cat.get("cpu");

  auto debit = [&](int64_t Pid, int64_t Amount) {
    return TxOp::upsertChecked(
        TupleBuilder(Cat).set("ns", 1).set("pid", Pid).build(),
        [&Cat = Cat, ColCpu, Amount](const BindingFrame *Cur, Tuple &V) {
          if (!Cur)
            return false; // absent key vetoes
          int64_t Next = Cur->get(ColCpu).asInt() - Amount;
          if (Next < 0)
            return false; // overdraft vetoes
          V.set(ColCpu, Value::ofInt(Next));
          return true;
        });
  };

  // First debit succeeds and applies; the second overdraws: the batch
  // aborts at op 1 and the FIRST debit is rolled back too.
  std::vector<TxOp> Ops;
  Ops.push_back(debit(1, 60));
  Ops.push_back(debit(2, 60));
  TxResult R = Rel.transact(Ops);
  EXPECT_FALSE(R.Committed);
  EXPECT_EQ(R.FailedOp, 1u);
  EXPECT_EQ(Rel.toRelation(), Before);

  // Within budget, both apply atomically.
  Ops.clear();
  Ops.push_back(debit(1, 60));
  Ops.push_back(debit(2, 5));
  R = Rel.transact(Ops);
  EXPECT_TRUE(R.Committed);
  EXPECT_TRUE(Rel.contains(proc(1, 1, 0, 40)));
  EXPECT_TRUE(Rel.contains(proc(1, 2, 0, 0)));
}

TEST_F(SynthesizedRelationTest, TransactUpsertCheckedAbsentKeyVeto) {
  Rel.insert(proc(1, 1, 0, 10));
  Relation Before = Rel.toRelation();
  // The guard refuses to create missing rows — unlike the plain
  // upsert, which would insert when the callback binds all values.
  TxResult R = Rel.transact([&](TxBatch &Tx) {
    Tx.upsertChecked(TupleBuilder(Cat).set("ns", 9).set("pid", 9).build(),
                     [](const BindingFrame *Cur, Tuple &) {
                       return Cur != nullptr;
                     });
  });
  EXPECT_FALSE(R.Committed);
  EXPECT_EQ(R.FailedOp, 0u);
  EXPECT_EQ(Rel.toRelation(), Before);
}

TEST_F(SynthesizedRelationTest, TransactUpsertCheckedCanInsertWhenAllowed) {
  // A checked upsert that accepts the absent case and binds every
  // non-key column behaves like a guarded insert.
  ColumnId ColCpu = Cat.get("cpu"), ColState = Cat.get("state");
  TxResult R = Rel.transact([&](TxBatch &Tx) {
    Tx.upsertChecked(TupleBuilder(Cat).set("ns", 2).set("pid", 3).build(),
                     [&](const BindingFrame *Cur, Tuple &V) {
                       if (Cur)
                         return false; // only-if-absent
                       V.set(ColState, Value::ofInt(1));
                       V.set(ColCpu, Value::ofInt(7));
                       return true;
                     });
  });
  EXPECT_TRUE(R.Committed);
  EXPECT_TRUE(Rel.contains(proc(2, 3, 1, 7)));
  // Running it again vetoes: the row now exists.
  R = Rel.transact([&](TxBatch &Tx) {
    Tx.upsertChecked(TupleBuilder(Cat).set("ns", 2).set("pid", 3).build(),
                     [&](const BindingFrame *Cur, Tuple &V) {
                       if (Cur)
                         return false;
                       V.set(ColState, Value::ofInt(1));
                       V.set(ColCpu, Value::ofInt(7));
                       return true;
                     });
  });
  EXPECT_FALSE(R.Committed);
  EXPECT_TRUE(Rel.contains(proc(2, 3, 1, 7)));
}

TEST_F(SynthesizedRelationTest, TransactBuilderFormAndNoOps) {
  ColumnId ColCpu = Cat.get("cpu"), ColState = Cat.get("state");
  TxResult R = Rel.transact([&](TxBatch &Tx) {
    Tx.upsert(TupleBuilder(Cat).set("ns", 1).set("pid", 1).build(),
              [&](const BindingFrame *, Tuple &V) {
                V.set(ColState, Value::ofInt(1));
                V.set(ColCpu, Value::ofInt(50));
              });
    Tx.upsert(TupleBuilder(Cat).set("ns", 1).set("pid", 2).build(),
              [&](const BindingFrame *, Tuple &V) {
                V.set(ColState, Value::ofInt(1));
                V.set(ColCpu, Value::ofInt(0));
              });
  });
  EXPECT_TRUE(R.Committed);
  EXPECT_EQ(Rel.size(), 2u);

  // The transfer: move 30 cpu from (1,1) to (1,2) as one unit.
  R = Rel.transact([&](TxBatch &Tx) {
    Tx.upsert(TupleBuilder(Cat).set("ns", 1).set("pid", 1).build(),
              [&](const BindingFrame *Cur, Tuple &V) {
                ASSERT_NE(Cur, nullptr);
                V.set(ColCpu, Value::ofInt(Cur->get(ColCpu).asInt() - 30));
              });
    Tx.upsert(TupleBuilder(Cat).set("ns", 1).set("pid", 2).build(),
              [&](const BindingFrame *Cur, Tuple &V) {
                ASSERT_NE(Cur, nullptr);
                V.set(ColCpu, Value::ofInt(Cur->get(ColCpu).asInt() + 30));
              });
  });
  EXPECT_TRUE(R.Committed);
  EXPECT_TRUE(Rel.contains(proc(1, 1, 1, 20)));
  EXPECT_TRUE(Rel.contains(proc(1, 2, 1, 30)));

  // Duplicate insert and no-match update/remove are committed no-ops.
  R = Rel.transact([&](TxBatch &Tx) {
    Tx.insert(proc(1, 1, 1, 20));
    Tx.update(TupleBuilder(Cat).set("ns", 8).set("pid", 8).build(),
              TupleBuilder(Cat).set("cpu", 1).build());
    Tx.remove(TupleBuilder(Cat).set("ns", 8).build());
  });
  EXPECT_TRUE(R.Committed);
  EXPECT_EQ(Rel.size(), 2u);

  // The empty batch commits trivially.
  EXPECT_TRUE(Rel.transact(std::vector<TxOp>()).Committed);
}

TEST_F(SynthesizedRelationTest, ToRelationMatchesOracleAfterChurn) {
  Relation Oracle;
  for (int64_t P = 0; P < 12; ++P) {
    Tuple T = proc(P % 3, P, P % 2, P * P);
    Rel.insert(T);
    Oracle.insert(T);
  }
  Tuple Pat = TupleBuilder(Cat).set("ns", 0).build();
  EXPECT_EQ(Rel.remove(Pat), Oracle.remove(Pat));
  EXPECT_EQ(Rel.toRelation(), Oracle);
}

} // namespace
