//===- tests/runtime/MutatorsTest.cpp - Mutation operation tests -*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests dinsert/dremove/dupdate (Sections 4.4-4.5) directly against
/// instance graphs, checking α and well-formedness after each step
/// (Lemma 4 dynamically), including the paper's Fig. 9 scenario.
///
//===----------------------------------------------------------------------===//

#include "runtime/Mutators.h"

#include "decomp/Builder.h"
#include "instance/Abstraction.h"
#include "instance/WellFormed.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

class MutatorsTest : public ::testing::Test {
protected:
  void SetUp() override { reset(DsKind::HashTable, DsKind::DList); }

  void reset(DsKind PidDs, DsKind NsPidDs) {
    Spec = RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                         {{"ns, pid", "state, cpu"}});
    DecompBuilder B(Spec);
    NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
    NodeId Y = B.addNode("y", "ns", B.map("pid", PidDs, W));
    NodeId Z = B.addNode("z", "state", B.map("ns, pid", NsPidDs, W));
    B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                              B.map("state", DsKind::Vector, Z)));
    D = std::make_shared<Decomposition>(B.build());
    G = std::make_unique<InstanceGraph>(D);
    Plans = std::make_unique<PlanCache>(D, CostParams());
  }

  Tuple proc(int64_t Ns, int64_t Pid, int64_t State, int64_t Cpu) {
    return TupleBuilder(Spec->catalog())
        .set("ns", Ns)
        .set("pid", Pid)
        .set("state", State)
        .set("cpu", Cpu)
        .build();
  }

  void expectWellFormed() {
    WfResult R = checkWellFormed(*G);
    ASSERT_TRUE(R.Ok) << R.Error;
  }

  RelSpecRef Spec;
  std::shared_ptr<const Decomposition> D;
  std::unique_ptr<InstanceGraph> G;
  std::unique_ptr<PlanCache> Plans;
};

TEST_F(MutatorsTest, Fig9InsertThenRemove) {
  // Fig. 9: inserting 〈ns:2, pid:1, state:S, cpu:5〉 into instance (a)
  // gives (b); removing it gives (a) back.
  Relation Ra;
  for (const Tuple &T : {proc(1, 1, 0, 7), proc(1, 2, 1, 4)}) {
    ASSERT_TRUE(dinsert(*G, T));
    Ra.insert(T);
  }
  expectWellFormed();
  size_t LiveA = G->liveInstances();
  EXPECT_EQ(abstractInstance(*G), Ra);

  Tuple T = proc(2, 1, 0, 5);
  ASSERT_TRUE(dinsert(*G, T));
  expectWellFormed();
  Relation Rb = Ra;
  Rb.insert(T);
  EXPECT_EQ(abstractInstance(*G), Rb);
  // (b) has two more instances than (a): y2 and w21.
  EXPECT_EQ(G->liveInstances(), LiveA + 2);

  Tuple Pat = TupleBuilder(Spec->catalog()).set("ns", 2).set("pid", 1).build();
  EXPECT_EQ(dremove(*G, Pat, *Plans), 1u);
  expectWellFormed();
  EXPECT_EQ(abstractInstance(*G), Ra);
  EXPECT_EQ(G->liveInstances(), LiveA);
}

TEST_F(MutatorsTest, RemoveByNamespaceRemovesAllItsProcesses) {
  for (int64_t P = 0; P < 6; ++P)
    dinsert(*G, proc(P % 2, P, P % 2, P * 10));
  Tuple Pat = TupleBuilder(Spec->catalog()).set("ns", 0).build();
  EXPECT_EQ(dremove(*G, Pat, *Plans), 3u);
  expectWellFormed();
  Relation R = abstractInstance(*G);
  EXPECT_EQ(R.size(), 3u);
  for (const Tuple &T : R.tuples())
    EXPECT_EQ(T.get(Spec->catalog().get("ns")).asInt(), 1);
}

TEST_F(MutatorsTest, RemoveByStateAcrossSharedNode) {
  for (int64_t P = 0; P < 6; ++P)
    dinsert(*G, proc(1, P, P % 2, P));
  Tuple Pat = TupleBuilder(Spec->catalog()).set("state", 0).build();
  EXPECT_EQ(dremove(*G, Pat, *Plans), 3u);
  expectWellFormed();
  EXPECT_EQ(abstractInstance(*G).size(), 3u);
}

TEST_F(MutatorsTest, RemoveEverythingViaEmptyPattern) {
  for (int64_t P = 0; P < 5; ++P)
    dinsert(*G, proc(1, P, 0, P));
  EXPECT_EQ(dremove(*G, Tuple(), *Plans), 5u);
  expectWellFormed();
  EXPECT_TRUE(abstractInstance(*G).empty());
  EXPECT_EQ(G->liveInstances(), 1u);
}

TEST_F(MutatorsTest, RemoveNonexistentIsNoop) {
  dinsert(*G, proc(1, 1, 0, 7));
  Tuple Pat = TupleBuilder(Spec->catalog()).set("ns", 9).build();
  EXPECT_EQ(dremove(*G, Pat, *Plans), 0u);
  expectWellFormed();
  EXPECT_EQ(abstractInstance(*G).size(), 1u);
}

TEST_F(MutatorsTest, RemoveCleansEmptyInteriorNodes) {
  // After removing the only process of ns=1, the y-instance for ns=1
  // must be deallocated ("devoid of children", Section 4.5).
  dinsert(*G, proc(1, 1, 0, 7));
  dinsert(*G, proc(2, 1, 0, 5));
  size_t Live = G->liveInstances(); // x + 2y + z + 2w = 6
  Tuple Pat = TupleBuilder(Spec->catalog()).set("ns", 1).set("pid", 1).build();
  EXPECT_EQ(dremove(*G, Pat, *Plans), 1u);
  expectWellFormed();
  // w11 and y1 both released.
  EXPECT_EQ(G->liveInstances(), Live - 2);
}

TEST_F(MutatorsTest, UpdatePaperExample) {
  // update r 〈ns:7, pid:42〉 〈state:S〉 — mark process sleeping.
  dinsert(*G, proc(7, 42, 1, 9));
  dinsert(*G, proc(7, 43, 1, 2));
  const Catalog &Cat = Spec->catalog();
  Tuple Pat = TupleBuilder(Cat).set("ns", 7).set("pid", 42).build();
  Tuple Chg = TupleBuilder(Cat).set("state", 0).build();
  EXPECT_EQ(dupdate(*G, Pat, Chg, *Plans), 1u);
  expectWellFormed();

  Relation Expected;
  Expected.insert(proc(7, 42, 0, 9));
  Expected.insert(proc(7, 43, 1, 2));
  EXPECT_EQ(abstractInstance(*G), Expected);
}

TEST_F(MutatorsTest, UpdateValueColumnInPlace) {
  // Changing cpu only: below-cut unit rewrite, no repositioning.
  dinsert(*G, proc(1, 1, 0, 7));
  const Catalog &Cat = Spec->catalog();
  size_t Live = G->liveInstances();
  Tuple Pat = TupleBuilder(Cat).set("ns", 1).set("pid", 1).build();
  Tuple Chg = TupleBuilder(Cat).set("cpu", 99).build();
  EXPECT_EQ(dupdate(*G, Pat, Chg, *Plans), 1u);
  expectWellFormed();
  EXPECT_EQ(G->liveInstances(), Live); // strictly in place
  Relation Expected;
  Expected.insert(proc(1, 1, 0, 99));
  EXPECT_EQ(abstractInstance(*G), Expected);
}

TEST_F(MutatorsTest, UpdateRepositionsAcrossStateLists) {
  // state changes move w between the two z instances; with multiple
  // processes per state the shared node must be repositioned, not
  // copied.
  for (int64_t P = 0; P < 4; ++P)
    dinsert(*G, proc(1, P, 0, P));
  const Catalog &Cat = Spec->catalog();
  size_t Live = G->liveInstances();
  Tuple Pat = TupleBuilder(Cat).set("ns", 1).set("pid", 2).build();
  Tuple Chg = TupleBuilder(Cat).set("state", 1).build();
  EXPECT_EQ(dupdate(*G, Pat, Chg, *Plans), 1u);
  expectWellFormed();
  // One new z-instance (state=1) appears; nothing else allocated.
  EXPECT_EQ(G->liveInstances(), Live + 1);
  Relation R = abstractInstance(*G);
  EXPECT_EQ(R.size(), 4u);
  Tuple Moved = proc(1, 2, 1, 2);
  EXPECT_TRUE(R.contains(Moved));
}

TEST_F(MutatorsTest, UpdateMissingTupleReturnsZero) {
  dinsert(*G, proc(1, 1, 0, 7));
  const Catalog &Cat = Spec->catalog();
  Tuple Pat = TupleBuilder(Cat).set("ns", 9).set("pid", 9).build();
  Tuple Chg = TupleBuilder(Cat).set("cpu", 1).build();
  EXPECT_EQ(dupdate(*G, Pat, Chg, *Plans), 0u);
  expectWellFormed();
}

TEST_F(MutatorsTest, UpdateNoopChangesAreIdempotent) {
  dinsert(*G, proc(1, 1, 0, 7));
  const Catalog &Cat = Spec->catalog();
  Tuple Pat = TupleBuilder(Cat).set("ns", 1).set("pid", 1).build();
  Tuple Chg = TupleBuilder(Cat).set("cpu", 7).build(); // same value
  EXPECT_EQ(dupdate(*G, Pat, Chg, *Plans), 1u);
  expectWellFormed();
  Relation Expected;
  Expected.insert(proc(1, 1, 0, 7));
  EXPECT_EQ(abstractInstance(*G), Expected);
}

TEST_F(MutatorsTest, IntrusiveVariantFullCycle) {
  // The same scenarios through intrusive containers (ITree + IList):
  // exercises eraseNode fast paths and hook bookkeeping.
  reset(DsKind::ITree, DsKind::IList);
  for (int64_t P = 0; P < 8; ++P)
    dinsert(*G, proc(P % 3, P, P % 2, P));
  expectWellFormed();
  EXPECT_EQ(abstractInstance(*G).size(), 8u);

  const Catalog &Cat = Spec->catalog();
  EXPECT_EQ(dremove(*G, TupleBuilder(Cat).set("state", 0).build(), *Plans),
            4u);
  expectWellFormed();
  EXPECT_EQ(abstractInstance(*G).size(), 4u);

  Tuple Pat = TupleBuilder(Cat).set("ns", 1).set("pid", 1).build();
  EXPECT_EQ(dupdate(*G, Pat, TupleBuilder(Cat).set("state", 0).build(),
                    *Plans),
            1u);
  expectWellFormed();
  EXPECT_EQ(dremove(*G, Tuple(), *Plans), 4u);
  EXPECT_TRUE(abstractInstance(*G).empty());
  expectWellFormed();
}

TEST_F(MutatorsTest, InterleavedChurn) {
  // Deterministic interleaving of all three mutations with α checked
  // against the oracle at every step.
  Relation Oracle;
  const Catalog &Cat = Spec->catalog();
  auto check = [&] {
    ASSERT_EQ(abstractInstance(*G), Oracle);
    WfResult R = checkWellFormed(*G);
    ASSERT_TRUE(R.Ok) << R.Error;
  };
  for (int Round = 0; Round < 3; ++Round) {
    for (int64_t P = 0; P < 10; ++P) {
      Tuple T = proc(P % 2, P, (P + Round) % 2, P * 7 + Round);
      if (Oracle.insertPreservesFds(T, Spec->fds())) {
        dinsert(*G, T);
        Oracle.insert(T);
        check();
      }
    }
    Tuple Pat = TupleBuilder(Cat).set("ns", Round % 2).build();
    size_t N = dremove(*G, Pat, *Plans);
    EXPECT_EQ(N, Oracle.remove(Pat));
    check();
  }
}

} // namespace
