//===- tests/runtime/RegressionTest.cpp - Pinned engine bugs -----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression tests for engine bugs found by the property suite during
/// development. Each test reconstructs the minimal failing scenario.
///
//===----------------------------------------------------------------------===//

#include "decomp/Builder.h"
#include "instance/Abstraction.h"
#include "instance/WellFormed.h"
#include "runtime/SynthesizedRelation.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

TEST(RegressionTest, RemoveByNsSharesCrossingEntryAcrossMatches) {
  // Bug 1: dremove broke crossing edges per matching tuple; the root's
  // ns-entry covers *all* matches of a remove-by-ns, so the second
  // match found the entry already gone and dereferenced null.
  RelSpecRef Spec = RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                                  {{"ns, pid", "state, cpu"}});
  const Catalog &Cat = Spec->catalog();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  SynthesizedRelation R{B.build()};

  // Several processes in namespace 0 (several matches share the root's
  // ns=0 entry), plus survivors in namespace 1.
  for (int64_t P = 0; P < 8; ++P)
    R.insert(TupleBuilder(Cat)
                 .set("ns", P % 2)
                 .set("pid", P)
                 .set("state", P % 2)
                 .set("cpu", P * 3)
                 .build());
  EXPECT_EQ(R.remove(TupleBuilder(Cat).set("ns", 0).build()), 4u);
  EXPECT_EQ(R.size(), 4u);
  WfResult Wf = R.checkWellFormed();
  EXPECT_TRUE(Wf.Ok) << Wf.Error;
}

TEST(RegressionTest, RemoveThroughChainKeyedByNonPatternColumn) {
  // Bug 2: in the chain root —weight→ n1 —src→ n2 —dst→ leaf, removing
  // by src can delete an interior X instance (n1 for one weight) while
  // a later match's path still runs through it; navigation asserted on
  // the missing instance. Two matched tuples share (weight, src) but
  // differ in dst — the exact shape the fuzzer found.
  RelSpecRef Spec = RelSpec::make("edges", {"src", "dst", "weight"},
                                  {{"src, dst", "weight"}});
  const Catalog &Cat = Spec->catalog();
  DecompBuilder B(Spec);
  NodeId N2 = B.addNode("n2", "src, dst, weight", B.unit(ColumnSet()));
  NodeId N1 = B.addNode("n1", "weight, src", B.map("dst", DsKind::HashTable,
                                                   N2));
  NodeId N0 = B.addNode("n0", "weight", B.map("src", DsKind::HashTable, N1));
  B.addNode("x", "", B.map("weight", DsKind::HashTable, N0));
  SynthesizedRelation R{B.build()};

  auto edge = [&](int64_t S, int64_t D, int64_t Wt) {
    return TupleBuilder(Cat)
        .set("src", S)
        .set("dst", D)
        .set("weight", Wt)
        .build();
  };
  // Two src=3 edges share weight 5; plus unrelated survivors.
  R.insert(edge(3, 1, 5));
  R.insert(edge(3, 2, 5));
  R.insert(edge(3, 9, 7));
  R.insert(edge(4, 1, 5));

  Relation Oracle = R.toRelation();
  Tuple Pat = TupleBuilder(Cat).set("src", 3).build();
  EXPECT_EQ(R.remove(Pat), Oracle.remove(Pat));
  EXPECT_EQ(R.toRelation(), Oracle);
  WfResult Wf = R.checkWellFormed();
  EXPECT_TRUE(Wf.Ok) << Wf.Error;
}

TEST(RegressionTest, StateReadByKeyDoesNotScanStateLists) {
  // Perf regression guard for the extended (QUNIT) rule: reading
  // {state, cpu} by the (ns, pid) key on Fig. 2 must plan as pure
  // lookups through the left path (w's bound valuation supplies state),
  // never as a scan of the intrusive state lists.
  RelSpecRef Spec = RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                                  {{"ns, pid", "state, cpu"}});
  const Catalog &Cat = Spec->catalog();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::IList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  SynthesizedRelation R{B.build()};

  const QueryPlan *P =
      R.planFor(Cat.parseSet("ns, pid"), Cat.parseSet("state, cpu"));
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->str(), "qlr(qlookup(qlookup(qunit)), left)") << P->str();

  // And it answers correctly.
  R.insert(TupleBuilder(Cat)
               .set("ns", 1)
               .set("pid", 2)
               .set("state", 1)
               .set("cpu", 9)
               .build());
  auto Rows = R.query(TupleBuilder(Cat).set("ns", 1).set("pid", 2).build(),
                      Cat.parseSet("state, cpu"));
  ASSERT_EQ(Rows.size(), 1u);
  EXPECT_EQ(Rows[0].get(Cat.get("state")).asInt(), 1);
}

TEST(RegressionTest, BoundEnrichedQueryFiltersOnBoundColumns) {
  // The bound-valuation read must also *filter*: probing (ns, pid,
  // state) with the wrong state through the left path must miss.
  RelSpecRef Spec = RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                                  {{"ns, pid", "state, cpu"}});
  const Catalog &Cat = Spec->catalog();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::IList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  SynthesizedRelation R{B.build()};
  R.insert(TupleBuilder(Cat)
               .set("ns", 1)
               .set("pid", 2)
               .set("state", 1)
               .set("cpu", 9)
               .build());
  EXPECT_TRUE(R.query(TupleBuilder(Cat)
                          .set("ns", 1)
                          .set("pid", 2)
                          .set("state", 0)
                          .build(),
                      Cat.parseSet("cpu"))
                  .empty());
  EXPECT_EQ(R.query(TupleBuilder(Cat)
                        .set("ns", 1)
                        .set("pid", 2)
                        .set("state", 1)
                        .build(),
                    Cat.parseSet("cpu"))
                .size(),
            1u);
}

} // namespace
