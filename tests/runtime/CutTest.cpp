//===- tests/runtime/CutTest.cpp - Decomposition cut tests -------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests cut computation (Section 4.5, Fig. 10): the X/Y partition for
/// a pattern's columns, the crossing-edge set, and the no-Y-to-X-edge
/// property adequacy guarantees.
///
//===----------------------------------------------------------------------===//

#include "runtime/Cut.h"

#include "decomp/Builder.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

Decomposition fig2(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  return B.build();
}

TEST(CutTest, Fig10aCutForNsPid) {
  // Fig. 10(a): pattern {ns, pid} — only w lies below the cut.
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  Cut C = computeCut(D, Cat.parseSet("ns, pid"));

  EXPECT_FALSE(C.inY(D.nodeByName("x")));
  EXPECT_FALSE(C.inY(D.nodeByName("y")));
  EXPECT_FALSE(C.inY(D.nodeByName("z")));
  EXPECT_TRUE(C.inY(D.nodeByName("w")));

  // Crossing edges: y→w and z→w.
  EXPECT_EQ(C.CrossingEdges.size(), 2u);
  for (EdgeId E : C.CrossingEdges)
    EXPECT_EQ(D.edge(E).To, D.nodeByName("w"));
}

TEST(CutTest, Fig10bCutForState) {
  // Fig. 10(b): pattern {state} — z and w lie below the cut.
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  Cut C = computeCut(D, Cat.parseSet("state"));

  EXPECT_FALSE(C.inY(D.nodeByName("x")));
  EXPECT_FALSE(C.inY(D.nodeByName("y")));
  EXPECT_TRUE(C.inY(D.nodeByName("z")));
  EXPECT_TRUE(C.inY(D.nodeByName("w")));

  // Crossing: x→z and y→w (z→w is internal to Y).
  EXPECT_EQ(C.CrossingEdges.size(), 2u);
  std::set<std::pair<NodeId, NodeId>> Crossings;
  for (EdgeId E : C.CrossingEdges)
    Crossings.insert({D.edge(E).From, D.edge(E).To});
  EXPECT_TRUE(Crossings.count({D.nodeByName("x"), D.nodeByName("z")}));
  EXPECT_TRUE(Crossings.count({D.nodeByName("y"), D.nodeByName("w")}));
}

TEST(CutTest, CutForNs) {
  // Pattern {ns}: y (bound {ns}) and w (bound determines ns) are in Y;
  // z (bound {state}) is not.
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  Cut C = computeCut(D, Cat.parseSet("ns"));
  EXPECT_TRUE(C.inY(D.nodeByName("y")));
  EXPECT_TRUE(C.inY(D.nodeByName("w")));
  EXPECT_FALSE(C.inY(D.nodeByName("z")));
  EXPECT_FALSE(C.inY(D.nodeByName("x")));
}

TEST(CutTest, EmptyPatternPutsOnlyRootInX) {
  // Pattern ∅: B → ∅ holds for every node, so everything (except the
  // root, whose instances must survive) is below the cut.
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  Cut C = computeCut(D, ColumnSet());
  for (NodeId Id = 0; Id != D.numNodes(); ++Id) {
    if (Id == D.root())
      continue;
    EXPECT_TRUE(C.inY(Id)) << D.node(Id).Name;
  }
}

TEST(CutTest, FullPatternCutsBelowEveryKey) {
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  Cut C = computeCut(D, Spec->columns());
  // Every non-root node's bound columns determine the full column set
  // here (w: key+state; y: ns alone does NOT determine all columns).
  EXPECT_FALSE(C.inY(D.nodeByName("y")));
  EXPECT_TRUE(C.inY(D.nodeByName("w")));
}

TEST(CutTest, NoEdgeFromYtoX) {
  // The structural property removal relies on, for several patterns.
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  for (const char *Pattern :
       {"ns", "pid", "state", "cpu", "ns, pid", "ns, state", "pid, state",
        "ns, pid, state", "ns, pid, state, cpu"}) {
    Cut C = computeCut(D, Cat.parseSet(Pattern));
    for (const MapEdge &E : D.edges())
      EXPECT_FALSE(C.inY(E.From) && !C.inY(E.To))
          << "Y→X edge for pattern {" << Pattern << "}";
  }
}

TEST(CutTest, CrossingMatchesInY) {
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  Cut C = computeCut(D, Cat.parseSet("state"));
  for (EdgeId E = 0; E != D.numEdges(); ++E) {
    bool Listed = std::find(C.CrossingEdges.begin(), C.CrossingEdges.end(),
                            E) != C.CrossingEdges.end();
    EXPECT_EQ(Listed, C.crossing(D.edge(E)));
  }
}

TEST(CutTest, DeterminedColumnsExtendY) {
  // Pattern {cpu} on a spec where cpu is determined by the key but
  // determines nothing: only nodes whose bound set implies cpu are in
  // Y. For fig2, no node's bound columns imply cpu (w's bound is the
  // key which *does* imply cpu via the FD).
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  Cut C = computeCut(D, Cat.parseSet("cpu"));
  EXPECT_TRUE(C.inY(D.nodeByName("w"))); // ns,pid,state → cpu
  EXPECT_FALSE(C.inY(D.nodeByName("y")));
  EXPECT_FALSE(C.inY(D.nodeByName("z")));
}

} // namespace
