//===- tests/support/ArenaTest.cpp - SlabArena unit tests --------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

using namespace relc;

namespace {

TEST(ArenaTest, FreshArenaHasNoSlabs) {
  SlabArena A;
  ArenaStats S = A.stats();
  EXPECT_EQ(S.Slabs, 0u);
  EXPECT_EQ(S.Bytes, 0u);
  EXPECT_EQ(S.Live, 0u);
  EXPECT_EQ(S.Recycled, 0u);
}

TEST(ArenaTest, RawBlocksAreCacheLineAligned) {
  SlabArena A;
  std::vector<void *> Blocks;
  for (size_t Size : {1u, 17u, 63u, 64u, 65u, 200u, 4096u}) {
    void *P = A.allocate(Size);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % SlabArena::BlockAlign, 0u)
        << "size " << Size;
    std::memset(P, 0xAB, Size); // the block must really be writable
    Blocks.push_back(P);
  }
  size_t I = 0;
  for (size_t Size : {1u, 17u, 63u, 64u, 65u, 200u, 4096u})
    A.deallocate(Blocks[I++], Size);
  EXPECT_EQ(A.stats().Live, 0u);
}

TEST(ArenaTest, SlabsGrowGeometricallyAndAreRetained) {
  SlabArena A;
  // Fill well past the first slab.
  std::vector<void *> Blocks;
  const size_t Block = 512;
  const size_t N = (SlabArena::FirstSlabBytes / Block) * 4;
  for (size_t I = 0; I != N; ++I)
    Blocks.push_back(A.allocate(Block));
  ArenaStats Grown = A.stats();
  EXPECT_GE(Grown.Slabs, 2u);
  EXPECT_EQ(Grown.Live, N);

  for (void *P : Blocks)
    A.deallocate(P, Block);
  A.reset();
  ArenaStats AfterReset = A.stats();
  // Slabs and bytes are retained warm; nothing is live.
  EXPECT_EQ(AfterReset.Slabs, Grown.Slabs);
  EXPECT_EQ(AfterReset.Bytes, Grown.Bytes);
  EXPECT_EQ(AfterReset.Live, 0u);

  // A refill of the same shape allocates no new slabs.
  for (size_t I = 0; I != N; ++I)
    A.allocate(Block);
  EXPECT_EQ(A.stats().Slabs, Grown.Slabs);
}

TEST(ArenaTest, FreeListReusesExactSizeClass) {
  SlabArena A;
  void *P = A.allocate(128);
  A.deallocate(P, 128);
  // Same size class: the freed block itself comes back.
  void *Q = A.allocate(100); // 100 rounds to the same 128-byte class
  EXPECT_EQ(P, Q);
  // A different class must not poach it.
  A.deallocate(Q, 100);
  void *R = A.allocate(256);
  EXPECT_NE(P, R);
  EXPECT_EQ(A.stats().Recycled, 2u);
}

TEST(ArenaTest, TrackedBlocksRunDestructorsOnReset) {
  int Destroyed = 0;
  struct Probe {
    int *Counter;
    explicit Probe(int *C) : Counter(C) {}
    ~Probe() { ++*Counter; }
  };
  SlabArena A;
  for (int I = 0; I != 10; ++I)
    A.create<Probe>(&Destroyed);
  EXPECT_EQ(A.stats().Live, 10u);
  A.reset();
  EXPECT_EQ(Destroyed, 10);
  EXPECT_EQ(A.stats().Live, 0u);
}

TEST(ArenaTest, DestroyRunsDestructorAndRecycles) {
  int Destroyed = 0;
  struct Probe {
    int *Counter;
    explicit Probe(int *C) : Counter(C) {}
    ~Probe() { ++*Counter; }
  };
  SlabArena A;
  Probe *P = A.create<Probe>(&Destroyed);
  Probe *Q = A.create<Probe>(&Destroyed);
  A.destroy(P);
  EXPECT_EQ(Destroyed, 1);
  EXPECT_EQ(A.stats().Live, 1u);
  EXPECT_EQ(A.stats().Recycled, 1u);
  A.destroy(Q);
  A.reset(); // nothing left to destroy
  EXPECT_EQ(Destroyed, 2);
}

TEST(ArenaTest, ResetThenReuseDoesNotDoubleDestroy) {
  int Destroyed = 0;
  struct Probe {
    int *Counter;
    explicit Probe(int *C) : Counter(C) {}
    ~Probe() { ++*Counter; }
  };
  SlabArena A;
  A.create<Probe>(&Destroyed);
  A.reset();
  EXPECT_EQ(Destroyed, 1);
  // Refill the same memory; the old header must not be revisited.
  A.create<Probe>(&Destroyed);
  A.reset();
  EXPECT_EQ(Destroyed, 2);
}

TEST(ArenaTest, OversizeBlocksTrackBytes) {
  SlabArena A;
  size_t Big = SlabArena::MaxSmallBytes * 4;
  void *P = A.allocate(Big);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % SlabArena::BlockAlign, 0u);
  std::memset(P, 0xCD, Big);
  ArenaStats S = A.stats();
  EXPECT_EQ(S.Slabs, 0u); // no slab carved for an oversize block
  EXPECT_GE(S.Bytes, Big);
  EXPECT_EQ(S.Live, 1u);
  A.deallocate(P, Big);
  S = A.stats();
  EXPECT_EQ(S.Bytes, 0u);
  EXPECT_EQ(S.Live, 0u);
}

TEST(ArenaTest, OversizeTrackedFreedByReset) {
  int Destroyed = 0;
  struct BigProbe {
    int *Counter;
    char Pad[SlabArena::MaxSmallBytes];
    ~BigProbe() { ++*Counter; }
  };
  SlabArena A;
  BigProbe *P = A.create<BigProbe>();
  P->Counter = &Destroyed;
  A.reset();
  EXPECT_EQ(Destroyed, 1);
  EXPECT_EQ(A.stats().Bytes, 0u);
}

TEST(ArenaTest, DeferredRecycleReturnsBlockToOwner) {
  int Destroyed = 0;
  struct Probe {
    int *Counter;
    explicit Probe(int *C) : Counter(C) {}
    ~Probe() { ++*Counter; }
  };
  SlabArena A;
  Probe *P = A.create<Probe>(&Destroyed);
  uint64_t Gen = A.resetGeneration();
  A.untrack(P);
  P->~Probe();
  EXPECT_EQ(A.stats().Live, 0u); // dead as soon as untracked
  A.recycleDeferred(P, Gen);
  EXPECT_EQ(A.stats().Recycled, 1u);
  // The next same-class tracked allocation drains the pending stack
  // and reuses the block.
  Probe *Q = A.create<Probe>(&Destroyed);
  EXPECT_EQ(static_cast<void *>(Q), static_cast<void *>(P));
  A.reset();
}

TEST(ArenaTest, StaleDeferredRecycleIsDropped) {
  SlabArena A;
  struct Probe {
    char C;
  };
  Probe *P = A.create<Probe>();
  uint64_t Gen = A.resetGeneration();
  A.untrack(P);
  P->~Probe();
  A.reset(); // reclaims the block's slab memory wholesale
  ArenaStats Before = A.stats();
  A.recycleDeferred(P, Gen); // stale: must be a no-op
  EXPECT_EQ(A.stats().Recycled, Before.Recycled);
  // The dropped block must not surface on a free list.
  void *Q = A.allocate(sizeof(Probe));
  std::memset(Q, 0, sizeof(Probe));
  A.deallocate(Q, sizeof(Probe));
}

TEST(ArenaTest, StatsLiveTracksMixedBlockKinds) {
  SlabArena A;
  struct Node {
    int64_t V;
  };
  std::vector<void *> Raw;
  std::vector<Node *> Tracked;
  for (int I = 0; I != 100; ++I) {
    Raw.push_back(A.allocate(48));
    Tracked.push_back(A.create<Node>());
  }
  EXPECT_EQ(A.stats().Live, 200u);
  for (int I = 0; I != 50; ++I) {
    A.deallocate(Raw[I], 48);
    A.destroy(Tracked[I]);
  }
  EXPECT_EQ(A.stats().Live, 100u);
  EXPECT_EQ(A.stats().Recycled, 100u);
  A.reset();
  EXPECT_EQ(A.stats().Live, 0u);
}

TEST(ArenaTest, ArenaRefFallsBackToGlobalHeap) {
  ArenaRef Unbound;
  EXPECT_FALSE(static_cast<bool>(Unbound));
  void *P = Unbound.allocate(64);
  ASSERT_NE(P, nullptr);
  Unbound.deallocate(P, 64);

  SlabArena A;
  ArenaRef Bound(&A);
  EXPECT_TRUE(static_cast<bool>(Bound));
  void *Q = Bound.allocate(64);
  EXPECT_EQ(A.stats().Live, 1u);
  Bound.deallocate(Q, 64);
  EXPECT_EQ(A.stats().Live, 0u);
}

TEST(ArenaTest, ManyDistinctSizeClasses) {
  SlabArena A;
  std::vector<std::pair<void *, size_t>> Blocks;
  for (size_t Units = 1; Units * SlabArena::BlockAlign <= SlabArena::MaxSmallBytes;
       ++Units) {
    size_t Size = Units * SlabArena::BlockAlign;
    Blocks.emplace_back(A.allocate(Size), Size);
  }
  // Blocks are distinct and non-overlapping at cache-line granularity.
  std::set<void *> Unique;
  for (auto &[P, Size] : Blocks)
    Unique.insert(P);
  EXPECT_EQ(Unique.size(), Blocks.size());
  for (auto &[P, Size] : Blocks)
    A.deallocate(P, Size);
  // Every class refill hits its free list: no new slabs.
  size_t SlabsBefore = A.stats().Slabs;
  for (auto &[P, Size] : Blocks)
    A.allocate(Size);
  EXPECT_EQ(A.stats().Slabs, SlabsBefore);
}

} // namespace
