//===- tests/support/SmallVectorTest.cpp - SmallVector tests -----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "support/SmallVector.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

using namespace relc;

namespace {

TEST(SmallVectorTest, StartsEmpty) {
  SmallVector<int, 4> V;
  EXPECT_TRUE(V.empty());
  EXPECT_EQ(V.size(), 0u);
}

TEST(SmallVectorTest, PushWithinInlineCapacity) {
  SmallVector<int, 4> V;
  for (int I = 0; I < 4; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 4u);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(V[I], I);
}

TEST(SmallVectorTest, GrowsPastInlineCapacity) {
  SmallVector<int, 2> V;
  for (int I = 0; I < 100; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 100u);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(V[I], I);
}

TEST(SmallVectorTest, InitializerList) {
  SmallVector<int, 4> V = {1, 2, 3};
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V.front(), 1);
  EXPECT_EQ(V.back(), 3);
}

TEST(SmallVectorTest, CopyPreservesElements) {
  SmallVector<std::string, 2> V = {"a", "b", "c"};
  SmallVector<std::string, 2> W(V);
  ASSERT_EQ(W.size(), 3u);
  EXPECT_EQ(W[0], "a");
  EXPECT_EQ(W[2], "c");
  // Deep copy: mutating the copy leaves the original intact.
  W[0] = "z";
  EXPECT_EQ(V[0], "a");
}

TEST(SmallVectorTest, CopyAssign) {
  SmallVector<int, 2> V = {1, 2, 3, 4};
  SmallVector<int, 2> W = {9};
  W = V;
  ASSERT_EQ(W.size(), 4u);
  EXPECT_EQ(W[3], 4);
}

TEST(SmallVectorTest, MoveTransfersElements) {
  SmallVector<std::string, 1> V = {"one", "two", "three"};
  SmallVector<std::string, 1> W(std::move(V));
  ASSERT_EQ(W.size(), 3u);
  EXPECT_EQ(W[1], "two");
}

TEST(SmallVectorTest, MoveAssign) {
  SmallVector<int, 2> V = {5, 6, 7};
  SmallVector<int, 2> W;
  W = std::move(V);
  ASSERT_EQ(W.size(), 3u);
  EXPECT_EQ(W[2], 7);
}

TEST(SmallVectorTest, PopBack) {
  SmallVector<int, 4> V = {1, 2, 3};
  V.pop_back();
  EXPECT_EQ(V.size(), 2u);
  EXPECT_EQ(V.back(), 2);
}

TEST(SmallVectorTest, Clear) {
  SmallVector<int, 2> V = {1, 2, 3, 4, 5};
  V.clear();
  EXPECT_TRUE(V.empty());
  V.push_back(42);
  EXPECT_EQ(V.back(), 42);
}

TEST(SmallVectorTest, Resize) {
  SmallVector<int, 2> V = {1, 2, 3};
  V.resize(1);
  EXPECT_EQ(V.size(), 1u);
  V.resize(4);
  EXPECT_EQ(V.size(), 4u);
  EXPECT_EQ(V[0], 1);
  EXPECT_EQ(V[3], 0);
}

TEST(SmallVectorTest, EmplaceBack) {
  SmallVector<std::pair<int, std::string>, 2> V;
  V.emplace_back(1, "one");
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0].second, "one");
}

TEST(SmallVectorTest, Iteration) {
  SmallVector<int, 4> V = {10, 20, 30};
  int Sum = 0;
  for (int X : V)
    Sum += X;
  EXPECT_EQ(Sum, 60);
}

TEST(SmallVectorTest, Equality) {
  SmallVector<int, 2> A = {1, 2, 3};
  SmallVector<int, 2> B = {1, 2, 3};
  SmallVector<int, 2> C = {1, 2};
  EXPECT_TRUE(A == B);
  EXPECT_FALSE(A == C);
}

TEST(SmallVectorTest, MoveOnlyElementType) {
  SmallVector<std::unique_ptr<int>, 2> V;
  V.push_back(std::make_unique<int>(1));
  V.push_back(std::make_unique<int>(2));
  V.push_back(std::make_unique<int>(3)); // forces a grow with moves
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(*V[2], 3);
}

TEST(SmallVectorTest, ManyGrowCyclesWithStrings) {
  SmallVector<std::string, 1> V;
  for (int I = 0; I < 200; ++I)
    V.push_back("s" + std::to_string(I));
  EXPECT_EQ(V.size(), 200u);
  EXPECT_EQ(V[199], "s199");
}

} // namespace
