//===- tests/support/ValueTest.cpp - Value cell tests ------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "support/Value.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

using namespace relc;

namespace {

TEST(ValueTest, DefaultIsIntZero) {
  Value V;
  EXPECT_TRUE(V.isInt());
  EXPECT_EQ(V.asInt(), 0);
}

TEST(ValueTest, IntRoundTrip) {
  EXPECT_EQ(Value::ofInt(42).asInt(), 42);
  EXPECT_EQ(Value::ofInt(-7).asInt(), -7);
  EXPECT_EQ(Value::ofInt(0).asInt(), 0);
  int64_t Big = int64_t(1) << 62;
  EXPECT_EQ(Value::ofInt(Big).asInt(), Big);
  EXPECT_EQ(Value::ofInt(-Big).asInt(), -Big);
}

TEST(ValueTest, StringRoundTrip) {
  Value V = Value::ofString("hello");
  EXPECT_TRUE(V.isStr());
  EXPECT_EQ(V.asStr(), "hello");
}

TEST(ValueTest, EmptyStringIsValid) {
  Value V = Value::ofString("");
  EXPECT_TRUE(V.isStr());
  EXPECT_EQ(V.asStr(), "");
}

TEST(ValueTest, InterningGivesEqualValues) {
  Value A = Value::ofString("interned");
  Value B = Value::ofString("interned");
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
}

TEST(ValueTest, DistinctStringsDiffer) {
  EXPECT_NE(Value::ofString("a"), Value::ofString("b"));
}

TEST(ValueTest, IntAndStringNeverEqual) {
  // Even if the interned id collides numerically with the int payload.
  Value S = Value::ofString("0");
  Value I = Value::ofInt(0);
  EXPECT_NE(S, I);
}

TEST(ValueTest, EqualityOnInts) {
  EXPECT_EQ(Value::ofInt(5), Value::ofInt(5));
  EXPECT_NE(Value::ofInt(5), Value::ofInt(6));
}

TEST(ValueTest, OrderingIntsNumeric) {
  EXPECT_LT(Value::ofInt(-2), Value::ofInt(3));
  EXPECT_LT(Value::ofInt(3), Value::ofInt(4));
  EXPECT_FALSE(Value::ofInt(4) < Value::ofInt(4));
}

TEST(ValueTest, OrderingIsStrictWeak) {
  std::set<Value> S;
  S.insert(Value::ofInt(1));
  S.insert(Value::ofInt(2));
  S.insert(Value::ofString("x"));
  S.insert(Value::ofString("y"));
  S.insert(Value::ofInt(1)); // duplicate
  EXPECT_EQ(S.size(), 4u);
}

TEST(ValueTest, HashUsableInUnorderedSet) {
  std::unordered_set<Value> S;
  for (int64_t I = 0; I < 100; ++I)
    S.insert(Value::ofInt(I));
  S.insert(Value::ofString("foo"));
  S.insert(Value::ofString("foo"));
  EXPECT_EQ(S.size(), 101u);
  EXPECT_TRUE(S.count(Value::ofInt(50)));
  EXPECT_TRUE(S.count(Value::ofString("foo")));
  EXPECT_FALSE(S.count(Value::ofString("bar")));
}

TEST(ValueTest, StrRendering) {
  EXPECT_EQ(Value::ofInt(42).str(), "42");
  EXPECT_EQ(Value::ofString("abc").str(), "\"abc\"");
}

TEST(ValueTest, HashDiffersForNearbyInts) {
  // Not a strict requirement, but catches identity hashing regressions
  // that would degrade the hash containers this library leans on.
  EXPECT_NE(Value::ofInt(1).hash(), Value::ofInt(2).hash());
}

} // namespace
