//===- tests/instance/AbstractionTest.cpp - α function tests -----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the abstraction function α (Section 3.2): the relation a live
/// instance graph represents, validated against the oracle across
/// decomposition shapes (map chains, joins, shared nodes).
///
//===----------------------------------------------------------------------===//

#include "instance/Abstraction.h"

#include "decomp/Builder.h"
#include "runtime/Mutators.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

std::shared_ptr<const Decomposition> fig2(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  return std::make_shared<Decomposition>(B.build());
}

Tuple proc(const Catalog &Cat, int64_t Ns, int64_t Pid, int64_t State,
           int64_t Cpu) {
  return TupleBuilder(Cat)
      .set("ns", Ns)
      .set("pid", Pid)
      .set("state", State)
      .set("cpu", Cpu)
      .build();
}

TEST(AbstractionTest, EmptyGraphIsEmptyRelation) {
  // Lemma 3: α(dempty d̂) = ∅.
  RelSpecRef Spec = schedulerSpec();
  InstanceGraph G(fig2(Spec));
  Relation R = abstractInstance(G);
  EXPECT_TRUE(R.empty());
}

TEST(AbstractionTest, PaperExampleRoundTrips) {
  // α of Fig. 2(b) is exactly relation rs (Equation 1).
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  InstanceGraph G(fig2(Spec));

  Relation Expected;
  for (const Tuple &T :
       {proc(Cat, 1, 1, 0, 7), proc(Cat, 1, 2, 1, 4), proc(Cat, 2, 1, 0, 5)}) {
    dinsert(G, T);
    Expected.insert(T);
  }
  EXPECT_EQ(abstractInstance(G), Expected);
}

TEST(AbstractionTest, JoinRecombinesWithoutSpuriousTuples) {
  // Two processes sharing a state but differing in ns/pid: the join at
  // the root must not manufacture cross-product tuples.
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  InstanceGraph G(fig2(Spec));
  Relation Expected;
  for (const Tuple &T : {proc(Cat, 1, 1, 0, 7), proc(Cat, 2, 9, 0, 5)}) {
    dinsert(G, T);
    Expected.insert(T);
  }
  Relation Got = abstractInstance(G);
  EXPECT_EQ(Got, Expected);
  EXPECT_EQ(Got.size(), 2u);
}

TEST(AbstractionTest, SingleChainDecomposition) {
  RelSpecRef Spec = RelSpec::make("edges", {"src", "dst", "weight"},
                                  {{"src, dst", "weight"}});
  const Catalog &Cat = Spec->catalog();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "src, dst", B.unit("weight"));
  NodeId Y = B.addNode("y", "src", B.map("dst", DsKind::Btree, W));
  B.addNode("x", "", B.map("src", DsKind::HashTable, Y));
  InstanceGraph G(std::make_shared<Decomposition>(B.build()));

  Relation Expected;
  for (int64_t S = 0; S < 4; ++S)
    for (int64_t D = 0; D < 3; ++D) {
      Tuple T = TupleBuilder(Cat)
                    .set("src", S)
                    .set("dst", D)
                    .set("weight", S * 10 + D)
                    .build();
      dinsert(G, T);
      Expected.insert(T);
    }
  EXPECT_EQ(abstractInstance(G), Expected);
}

TEST(AbstractionTest, AbstractNodeGivesSubRelation) {
  // α at an interior node yields the residual relation for that
  // instance (the {pid → cpu} sub-relation of one namespace).
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  InstanceGraph G(fig2(Spec));
  dinsert(G, proc(Cat, 1, 1, 0, 7));
  dinsert(G, proc(Cat, 1, 2, 1, 4));
  dinsert(G, proc(Cat, 2, 1, 0, 5));

  NodeInstance *Y1 =
      G.root()->edgeMap(0).lookup(TupleBuilder(Cat).set("ns", 1).build());
  ASSERT_NE(Y1, nullptr);
  Relation Sub = abstractNode(Y1);
  // y_(ns:1) represents {(pid:1, cpu:7), (pid:2, cpu:4)}.
  EXPECT_EQ(Sub.size(), 2u);
  EXPECT_EQ(Sub.columns(), Cat.parseSet("pid, cpu"));
}

TEST(AbstractionTest, EmptySetMembershipRelation) {
  RelSpecRef Spec = RelSpec::make("nodes", {"id"});
  const Catalog &Cat = Spec->catalog();
  DecompBuilder B(Spec);
  NodeId L = B.addNode("leaf", "id", B.unit(ColumnSet()));
  B.addNode("root", "", B.map("id", DsKind::HashTable, L));
  InstanceGraph G(std::make_shared<Decomposition>(B.build()));
  Relation Expected;
  for (int64_t I = 0; I < 5; ++I) {
    Tuple T = TupleBuilder(Cat).set("id", I).build();
    dinsert(G, T);
    Expected.insert(T);
  }
  EXPECT_EQ(abstractInstance(G), Expected);
}

} // namespace
