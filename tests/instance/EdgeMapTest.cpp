//===- tests/instance/EdgeMapTest.cpp - Type-erased EdgeMap tests -*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized tests of EdgeMap::create across every ψ: the uniform
/// associative-container contract the dynamic engine relies on,
/// independent of which template backs the edge.
///
//===----------------------------------------------------------------------===//

#include "instance/EdgeMap.h"

#include "decomp/Builder.h"
#include "instance/InstanceGraph.h"
#include "instance/NodeInstance.h"
#include "rel/BindingFrame.h"

#include <gtest/gtest.h>

#include <set>

using namespace relc;

namespace {

/// Builds a kv decomposition whose single edge uses the given ψ, and
/// returns everything needed to exercise that edge's container.
class EdgeMapTest : public ::testing::TestWithParam<DsKind> {
protected:
  void SetUp() override {
    Spec = RelSpec::make("kv", {"k", "v"}, {{"k", "v"}});
    DecompBuilder B(Spec);
    NodeId L = B.addNode("leaf", "k", B.unit("v"));
    B.addNode("root", "", B.map("k", GetParam(), L));
    D = std::make_shared<Decomposition>(B.build());
    G = std::make_unique<InstanceGraph>(D);
    Map = EdgeMap::create(D->edge(0));
  }

  void TearDown() override {
    // Unlink everything so intrusive hooks don't dangle, then release
    // the nodes through the graph.
    std::vector<NodeInstance *> Children;
    Map->forEach([&](const Tuple &, NodeInstance *N) {
      Children.push_back(N);
      return true;
    });
    for (NodeInstance *N : Children) {
      Map->eraseNode(N);
      N->releaseRef();
      G->release(N);
    }
    Map.reset();
  }

  Tuple key(int64_t K) {
    return TupleBuilder(Spec->catalog()).set("k", K).build();
  }

  /// Creates a leaf instance owned by the test (retained once for the
  /// map entry we are about to create).
  NodeInstance *leaf(int64_t K) {
    NodeInstance *N = G->create(0, key(K));
    N->retain(); // the map's reference
    N->retain(); // the test's handle (released in TearDown)
    return N;
  }

  RelSpecRef Spec;
  std::shared_ptr<const Decomposition> D;
  std::unique_ptr<InstanceGraph> G;
  std::unique_ptr<EdgeMap> Map;
};

TEST_P(EdgeMapTest, KindMatchesEdge) {
  EXPECT_EQ(Map->kind(), GetParam());
  EXPECT_TRUE(Map->empty());
  EXPECT_EQ(Map->size(), 0u);
}

TEST_P(EdgeMapTest, InsertLookupEraseByKey) {
  NodeInstance *A = leaf(1);
  NodeInstance *B = leaf(2);
  Map->insert(key(1), A);
  Map->insert(key(2), B);
  EXPECT_EQ(Map->size(), 2u);
  EXPECT_EQ(Map->lookup(key(1)), A);
  EXPECT_EQ(Map->lookup(key(2)), B);
  EXPECT_EQ(Map->lookup(key(3)), nullptr);

  EXPECT_EQ(Map->erase(key(1)), A);
  A->releaseRef(); // balance the map's dropped reference
  EXPECT_EQ(Map->lookup(key(1)), nullptr);
  EXPECT_EQ(Map->erase(key(1)), nullptr);
  EXPECT_EQ(Map->size(), 1u);
  G->release(A); // drop the test handle; A is not in the map for TearDown
}

TEST_P(EdgeMapTest, EraseNode) {
  NodeInstance *A = leaf(5);
  Map->insert(key(5), A);
  EXPECT_TRUE(Map->eraseNode(A));
  A->releaseRef();
  EXPECT_FALSE(Map->eraseNode(A));
  EXPECT_TRUE(Map->empty());
  G->release(A); // drop the test handle; A is not in the map for TearDown
}

TEST_P(EdgeMapTest, ForEachVisitsEveryEntry) {
  std::set<int64_t> Want;
  for (int64_t K = 0; K < 12; ++K) {
    Map->insert(key(K), leaf(K));
    Want.insert(K);
  }
  std::set<int64_t> Seen;
  EXPECT_TRUE(Map->forEach([&](const Tuple &K, NodeInstance *N) {
    EXPECT_NE(N, nullptr);
    Seen.insert(K.get(Spec->catalog().get("k")).asInt());
    return true;
  }));
  EXPECT_EQ(Seen, Want);
}

TEST_P(EdgeMapTest, HeterogeneousViewLookup) {
  NodeInstance *A = leaf(7);
  NodeInstance *B = leaf(9);
  Map->insert(key(7), A);
  Map->insert(key(9), B);

  // Probe with a borrowed view of a *wider* tuple (the mutator
  // pattern: a full relation tuple viewed through the edge's key
  // columns) — no projected key tuple is ever materialized.
  const Catalog &Cat = Spec->catalog();
  ColumnSet KeyCols = D->edge(0).KeyCols;
  Tuple Full7 = TupleBuilder(Cat).set("k", 7).set("v", 41).build();
  Tuple Full8 = TupleBuilder(Cat).set("k", 8).set("v", 42).build();
  EXPECT_EQ(Map->lookup(TupleView(Full7, KeyCols)), A);
  EXPECT_EQ(Map->lookup(TupleView(Full8, KeyCols)), nullptr);

  // Probe with a view borrowed from a BindingFrame's registers (the
  // query interpreter's lookup path).
  BindingFrame Frame(Cat.size());
  Frame.bind(Cat.get("k"), Value::ofInt(9));
  EXPECT_EQ(Map->lookup(Frame.view(KeyCols)), B);
  Frame.bind(Cat.get("k"), Value::ofInt(3));
  EXPECT_EQ(Map->lookup(Frame.view(KeyCols)), nullptr);
}

TEST_P(EdgeMapTest, HeterogeneousViewErase) {
  NodeInstance *A = leaf(4);
  NodeInstance *B = leaf(6);
  Map->insert(key(4), A);
  Map->insert(key(6), B);

  const Catalog &Cat = Spec->catalog();
  ColumnSet KeyCols = D->edge(0).KeyCols;
  Tuple Full4 = TupleBuilder(Cat).set("k", 4).set("v", 1).build();
  Tuple Full5 = TupleBuilder(Cat).set("k", 5).set("v", 1).build();
  EXPECT_EQ(Map->erase(TupleView(Full5, KeyCols)), nullptr);
  EXPECT_EQ(Map->erase(TupleView(Full4, KeyCols)), A);
  A->releaseRef(); // balance the map's dropped reference
  EXPECT_EQ(Map->size(), 1u);
  EXPECT_EQ(Map->lookup(key(4)), nullptr);
  EXPECT_EQ(Map->lookup(key(6)), B);
  G->release(A); // drop the test handle; A is not in the map for TearDown
}

TEST_P(EdgeMapTest, ForEachEarlyStop) {
  for (int64_t K = 0; K < 8; ++K)
    Map->insert(key(K), leaf(K));
  int Count = 0;
  EXPECT_FALSE(Map->forEach([&](const Tuple &, NodeInstance *) {
    return ++Count < 3;
  }));
  EXPECT_EQ(Count, 3);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EdgeMapTest,
                         ::testing::ValuesIn(AllDsKinds),
                         [](const auto &Info) {
                           return std::string(dsKindName(Info.param));
                         });

} // namespace
