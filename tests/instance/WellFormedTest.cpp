//===- tests/instance/WellFormedTest.cpp - Fig. 5 judgment tests -*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the dynamic well-formedness judgment (Fig. 5). Positive cases
/// come from legal mutation sequences; negative cases corrupt a live
/// instance graph directly (wrong key columns, dangling join sides,
/// non-canonical sharing) and expect the checker to object.
///
//===----------------------------------------------------------------------===//

#include "instance/WellFormed.h"

#include "decomp/Builder.h"
#include "instance/NodeInstance.h"
#include "runtime/Mutators.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

std::shared_ptr<const Decomposition> fig2(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  return std::make_shared<Decomposition>(B.build());
}

Tuple proc(const Catalog &Cat, int64_t Ns, int64_t Pid, int64_t State,
           int64_t Cpu) {
  return TupleBuilder(Cat)
      .set("ns", Ns)
      .set("pid", Pid)
      .set("state", State)
      .set("cpu", Cpu)
      .build();
}

TEST(WellFormedTest, EmptyGraphIsWellFormed) {
  InstanceGraph G(fig2(schedulerSpec()));
  WfResult R = checkWellFormed(G);
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(WellFormedTest, PopulatedGraphIsWellFormed) {
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  InstanceGraph G(fig2(Spec));
  dinsert(G, proc(Cat, 1, 1, 0, 7));
  dinsert(G, proc(Cat, 1, 2, 1, 4));
  dinsert(G, proc(Cat, 2, 1, 0, 5));
  WfResult R = checkWellFormed(G);
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(WellFormedTest, DanglingJoinSideRejected) {
  // (WFJOIN): manually link a y instance on the left side of the root's
  // join without a matching z entry on the right.
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  InstanceGraph G(fig2(Spec));

  // Build a ns-side path that represents one tuple, with no matching
  // entry on the state side of the root's join. (An *empty* y would be
  // well-formed — it represents ∅ and changes no α-image.)
  const Decomposition &D = G.decomp();
  NodeId YId = D.nodeByName("y");
  NodeId WId = D.nodeByName("w");
  NodeInstance *Y = G.create(YId, TupleBuilder(Cat).set("ns", 3).build());
  NodeInstance *W = G.create(
      WId,
      TupleBuilder(Cat).set("ns", 3).set("pid", 5).set("state", 0).build());
  W->setUnitValues(D.unitsOf(WId)[0], TupleBuilder(Cat).set("cpu", 9).build());
  Y->edgeMap(0).insert(TupleBuilder(Cat).set("pid", 5).build(), W);
  W->retain();
  G.root()->edgeMap(0).insert(TupleBuilder(Cat).set("ns", 3).build(), Y);
  Y->retain();

  WfResult R = checkWellFormed(G);
  EXPECT_FALSE(R.Ok);
}

TEST(WellFormedTest, WrongKeyColumnsRejected) {
  // (WFMAP): an entry keyed by the wrong columns.
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  InstanceGraph G(fig2(Spec));
  dinsert(G, proc(Cat, 1, 1, 0, 7));

  NodeInstance *Y =
      G.root()->edgeMap(0).lookup(TupleBuilder(Cat).set("ns", 1).build());
  ASSERT_NE(Y, nullptr);
  NodeInstance *W =
      Y->edgeMap(0).lookup(TupleBuilder(Cat).set("pid", 1).build());
  ASSERT_NE(W, nullptr);
  // Insert an extra entry into y's pid-map keyed by a cpu binding.
  Y->edgeMap(0).insert(TupleBuilder(Cat).set("cpu", 9).build(), W);
  W->retain();

  WfResult R = checkWellFormed(G);
  EXPECT_FALSE(R.Ok);
}

TEST(WellFormedTest, KeyChildMismatchRejected) {
  // (WFMAP): the key tuple must match every tuple of the child's
  // α-image. Link the existing pid=1 child under key pid=2 as well;
  // the child's bound valuation (pid=1) contradicts the new key, and
  // sharing stops being canonical.
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  InstanceGraph G(fig2(Spec));
  dinsert(G, proc(Cat, 1, 1, 0, 7));

  NodeInstance *Y =
      G.root()->edgeMap(0).lookup(TupleBuilder(Cat).set("ns", 1).build());
  NodeInstance *W =
      Y->edgeMap(0).lookup(TupleBuilder(Cat).set("pid", 1).build());
  Y->edgeMap(0).insert(TupleBuilder(Cat).set("pid", 2).build(), W);
  W->retain();

  WfResult R = checkWellFormed(G);
  EXPECT_FALSE(R.Ok);
}

TEST(WellFormedTest, RefcountDriftRejected) {
  // The physical invariant: refcount == number of incoming entries.
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  InstanceGraph G(fig2(Spec));
  dinsert(G, proc(Cat, 1, 1, 0, 7));
  NodeInstance *Y =
      G.root()->edgeMap(0).lookup(TupleBuilder(Cat).set("ns", 1).build());
  ASSERT_NE(Y, nullptr);
  Y->retain(); // spurious extra reference
  WfResult R = checkWellFormed(G);
  EXPECT_FALSE(R.Ok);
  Y->releaseRef(); // restore so teardown stays balanced
}

TEST(WellFormedTest, WellFormedAfterRemovals) {
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  auto D = fig2(Spec);
  InstanceGraph G(D);
  PlanCache Plans(D, CostParams());
  for (int64_t P = 0; P < 8; ++P)
    dinsert(G, proc(Cat, P % 2, P, P % 2, P * 3));
  dremove(G, TupleBuilder(Cat).set("ns", 0).build(), Plans);
  WfResult R = checkWellFormed(G);
  EXPECT_TRUE(R.Ok) << R.Error;
}

} // namespace
