//===- tests/instance/InstanceTest.cpp - Instance graph tests ----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests NodeInstance and InstanceGraph directly: creation, edge
/// containers, refcounted sharing, cascading destruction.
///
//===----------------------------------------------------------------------===//

#include "instance/InstanceGraph.h"

#include "decomp/Builder.h"
#include "instance/NodeInstance.h"
#include "runtime/Mutators.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

/// Fig. 2(a), intrusive variant so both sharing and hooks are exercised.
std::shared_ptr<const Decomposition> fig2(const RelSpecRef &Spec,
                                          bool Intrusive = false) {
  DecompBuilder B(Spec);
  DsKind Inner = Intrusive ? DsKind::IList : DsKind::DList;
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode(
      "y", "ns", B.map("pid", Intrusive ? DsKind::ITree : DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", Inner, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  return std::make_shared<Decomposition>(B.build());
}

Tuple proc(const Catalog &Cat, int64_t Ns, int64_t Pid, int64_t State,
           int64_t Cpu) {
  return TupleBuilder(Cat)
      .set("ns", Ns)
      .set("pid", Pid)
      .set("state", State)
      .set("cpu", Cpu)
      .build();
}

TEST(InstanceGraphTest, FreshGraphHasOnlyRoot) {
  RelSpecRef Spec = schedulerSpec();
  InstanceGraph G(fig2(Spec));
  ASSERT_NE(G.root(), nullptr);
  EXPECT_EQ(G.liveInstances(), 1u);
  EXPECT_EQ(G.root()->id(), G.decomp().root());
  EXPECT_TRUE(G.root()->bound().empty());
  // Root has one edge map per outgoing edge (the join's two maps).
  EXPECT_EQ(G.root()->numEdgeMaps(), 2u);
  EXPECT_TRUE(G.root()->edgeMap(0).empty());
  EXPECT_TRUE(G.root()->edgeMap(1).empty());
}

TEST(InstanceGraphTest, InsertCreatesFig2bShape) {
  // Inserting the three tuples of relation rs produces Fig. 2(b):
  // 1 root + 2 y + 2 z + 3 w = 8 instances.
  RelSpecRef Spec = schedulerSpec();
  InstanceGraph G(fig2(Spec));
  const Catalog &Cat = Spec->catalog();
  EXPECT_TRUE(dinsert(G, proc(Cat, 1, 1, 0, 7)));
  EXPECT_TRUE(dinsert(G, proc(Cat, 1, 2, 1, 4)));
  EXPECT_TRUE(dinsert(G, proc(Cat, 2, 1, 0, 5)));
  EXPECT_EQ(G.liveInstances(), 8u);

  // The root's ns-map has two entries (ns ∈ {1,2}); its state-map has
  // two entries (S, R).
  EXPECT_EQ(G.root()->edgeMap(0).size(), 2u);
  EXPECT_EQ(G.root()->edgeMap(1).size(), 2u);
}

TEST(InstanceGraphTest, DuplicateInsertIsNoChange) {
  RelSpecRef Spec = schedulerSpec();
  InstanceGraph G(fig2(Spec));
  const Catalog &Cat = Spec->catalog();
  EXPECT_TRUE(dinsert(G, proc(Cat, 1, 1, 0, 7)));
  size_t Live = G.liveInstances();
  EXPECT_FALSE(dinsert(G, proc(Cat, 1, 1, 0, 7)));
  EXPECT_EQ(G.liveInstances(), Live);
}

TEST(InstanceGraphTest, SharedNodeHasRefcountTwo) {
  RelSpecRef Spec = schedulerSpec();
  InstanceGraph G(fig2(Spec));
  const Catalog &Cat = Spec->catalog();
  dinsert(G, proc(Cat, 1, 1, 0, 7));

  // Navigate to w via the left path: root --ns--> y --pid--> w.
  Tuple NsKey = TupleBuilder(Cat).set("ns", 1).build();
  NodeInstance *Y = G.root()->edgeMap(0).lookup(NsKey);
  ASSERT_NE(Y, nullptr);
  Tuple PidKey = TupleBuilder(Cat).set("pid", 1).build();
  NodeInstance *W = Y->edgeMap(0).lookup(PidKey);
  ASSERT_NE(W, nullptr);
  // w is pointed at by both the y-map and the z-map.
  EXPECT_EQ(W->refCount(), 2u);

  // And via the right path we reach the *same* physical node.
  Tuple StateKey = TupleBuilder(Cat).set("state", 0).build();
  NodeInstance *Z = G.root()->edgeMap(1).lookup(StateKey);
  ASSERT_NE(Z, nullptr);
  Tuple NsPidKey = TupleBuilder(Cat).set("ns", 1).set("pid", 1).build();
  EXPECT_EQ(Z->edgeMap(0).lookup(NsPidKey), W);
}

TEST(InstanceGraphTest, UnitValuesStoredAtSharedNode) {
  RelSpecRef Spec = schedulerSpec();
  InstanceGraph G(fig2(Spec));
  const Catalog &Cat = Spec->catalog();
  dinsert(G, proc(Cat, 1, 1, 0, 7));
  Tuple NsKey = TupleBuilder(Cat).set("ns", 1).build();
  NodeInstance *Y = G.root()->edgeMap(0).lookup(NsKey);
  NodeInstance *W =
      Y->edgeMap(0).lookup(TupleBuilder(Cat).set("pid", 1).build());
  ASSERT_NE(W, nullptr);
  const Decomposition &D = G.decomp();
  ASSERT_EQ(D.unitsOf(W->id()).size(), 1u);
  PrimId U = D.unitsOf(W->id())[0];
  EXPECT_EQ(W->unitValues(U), TupleBuilder(Cat).set("cpu", 7).build());
}

TEST(InstanceGraphTest, ClearReleasesEverything) {
  RelSpecRef Spec = schedulerSpec();
  InstanceGraph G(fig2(Spec));
  const Catalog &Cat = Spec->catalog();
  for (int64_t P = 0; P < 10; ++P)
    dinsert(G, proc(Cat, 1, P, P % 2, P));
  EXPECT_GT(G.liveInstances(), 10u);
  G.clear();
  EXPECT_EQ(G.liveInstances(), 1u);
  EXPECT_TRUE(G.root()->edgeMap(0).empty());
}

TEST(InstanceGraphTest, IntrusiveVariantSameShape) {
  RelSpecRef Spec = schedulerSpec();
  InstanceGraph G(fig2(Spec, /*Intrusive=*/true));
  const Catalog &Cat = Spec->catalog();
  dinsert(G, proc(Cat, 1, 1, 0, 7));
  dinsert(G, proc(Cat, 1, 2, 1, 4));
  dinsert(G, proc(Cat, 2, 1, 0, 5));
  EXPECT_EQ(G.liveInstances(), 8u);
  // w embeds hooks for its two incoming intrusive edges.
  Tuple NsKey = TupleBuilder(Cat).set("ns", 1).build();
  NodeInstance *Y = G.root()->edgeMap(0).lookup(NsKey);
  NodeInstance *W =
      Y->edgeMap(0).lookup(TupleBuilder(Cat).set("pid", 1).build());
  ASSERT_NE(W, nullptr);
  EXPECT_EQ(G.decomp().node(W->id()).HookSlots, 2u);
}

TEST(InstanceGraphTest, RepresentsEmpty) {
  RelSpecRef Spec = schedulerSpec();
  InstanceGraph G(fig2(Spec));
  // A fresh root has edge maps, all empty: it represents ∅.
  EXPECT_TRUE(G.root()->representsEmpty());
  const Catalog &Cat = Spec->catalog();
  dinsert(G, proc(Cat, 1, 1, 0, 7));
  EXPECT_FALSE(G.root()->representsEmpty());
}

TEST(InstanceGraphTest, DestructorReleasesAllInstances) {
  // Covered implicitly everywhere, but pin the cascading destroy: no
  // asserts/leaks when a populated graph dies. (Run under sanitizers to
  // get the full benefit.)
  RelSpecRef Spec = schedulerSpec();
  {
    InstanceGraph G(fig2(Spec, /*Intrusive=*/true));
    const Catalog &Cat = Spec->catalog();
    for (int64_t P = 0; P < 50; ++P)
      dinsert(G, proc(Cat, P % 5, P, P % 2, P));
    EXPECT_GT(G.liveInstances(), 50u);
  }
  SUCCEED();
}

} // namespace
