//===- tests/workloads/WorkloadsTest.cpp - Workload generators ---*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the synthetic workload generators (the substitutions for the
/// paper's NW-USA road file and live traffic traces): determinism,
/// size, and the structural properties the benchmarks rely on.
///
//===----------------------------------------------------------------------===//

#include "workloads/LocCount.h"
#include "workloads/MmapTrace.h"
#include "workloads/PacketTrace.h"
#include "workloads/Rng.h"
#include "workloads/RoadNetwork.h"
#include "workloads/TileTrace.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace relc;

namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I) {
    uint64_t Va = A.next();
    EXPECT_EQ(Va, B.next());
    (void)C;
  }
  // Different seeds diverge (overwhelmingly likely).
  Rng A2(42), C2(43);
  bool Diverged = false;
  for (int I = 0; I < 10; ++I)
    if (A2.next() != C2.next())
      Diverged = true;
  EXPECT_TRUE(Diverged);
}

TEST(RngTest, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(RngTest, UnitInHalfOpenInterval) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double U = R.unit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RoadNetworkTest, DeterministicAndSized) {
  RoadNetworkOptions Opts;
  Opts.Width = 32;
  Opts.Height = 32;
  auto E1 = generateRoadNetwork(Opts);
  auto E2 = generateRoadNetwork(Opts);
  ASSERT_EQ(E1.size(), E2.size());
  for (size_t I = 0; I != E1.size(); ++I) {
    EXPECT_EQ(E1[I].Src, E2[I].Src);
    EXPECT_EQ(E1[I].Dst, E2[I].Dst);
    EXPECT_EQ(E1[I].Weight, E2[I].Weight);
  }
}

TEST(RoadNetworkTest, SparseLikeARoadNetwork) {
  // The NW-USA graph has ~2.35 edges per node; the generator must stay
  // in that regime (sparse, bounded out-degree).
  RoadNetworkOptions Opts;
  Opts.Width = 64;
  Opts.Height = 64;
  auto Edges = generateRoadNetwork(Opts);
  double PerNode = double(Edges.size()) / roadNetworkNodeCount(Opts);
  EXPECT_GT(PerNode, 1.0);
  EXPECT_LT(PerNode, 6.0);

  std::map<int64_t, unsigned> OutDeg;
  for (const RoadEdge &E : Edges)
    ++OutDeg[E.Src];
  for (const auto &[Node, Deg] : OutDeg)
    EXPECT_LE(Deg, 8u) << "node " << Node;
}

TEST(RoadNetworkTest, EdgesAreUniqueAndInRange) {
  RoadNetworkOptions Opts;
  Opts.Width = 16;
  Opts.Height = 16;
  auto Edges = generateRoadNetwork(Opts);
  std::set<std::pair<int64_t, int64_t>> Seen;
  int64_t MaxNode = roadNetworkNodeCount(Opts);
  for (const RoadEdge &E : Edges) {
    EXPECT_TRUE(Seen.insert({E.Src, E.Dst}).second)
        << E.Src << "->" << E.Dst;
    EXPECT_GE(E.Src, 0);
    EXPECT_LT(E.Src, MaxNode);
    EXPECT_GE(E.Dst, 0);
    EXPECT_LT(E.Dst, MaxNode);
    EXPECT_GT(E.Weight, 0);
    EXPECT_LE(E.Weight, Opts.MaxWeight);
    EXPECT_NE(E.Src, E.Dst);
  }
}

TEST(RoadNetworkTest, MostlyBidirectionalGridRoads) {
  RoadNetworkOptions Opts;
  Opts.Width = 32;
  Opts.Height = 32;
  Opts.DiagonalFraction = 0.0;
  auto Edges = generateRoadNetwork(Opts);
  std::set<std::pair<int64_t, int64_t>> Set;
  for (const RoadEdge &E : Edges)
    Set.insert({E.Src, E.Dst});
  size_t Paired = 0;
  for (const auto &[S, D] : Set)
    if (Set.count({D, S}))
      ++Paired;
  EXPECT_EQ(Paired, Set.size()); // grid roads go both ways
}

TEST(PacketTraceTest, DeterministicAndBounded) {
  PacketTraceOptions Opts;
  Opts.NumPackets = 1000;
  auto T1 = generatePacketTrace(Opts);
  auto T2 = generatePacketTrace(Opts);
  ASSERT_EQ(T1.size(), 1000u);
  for (size_t I = 0; I != T1.size(); ++I) {
    EXPECT_EQ(T1[I].LocalHost, T2[I].LocalHost);
    EXPECT_EQ(T1[I].RemoteHost, T2[I].RemoteHost);
    EXPECT_LT(T1[I].LocalHost, Opts.NumLocalHosts);
    EXPECT_LT(T1[I].RemoteHost, Opts.NumRemoteHosts);
    EXPECT_GT(T1[I].Bytes, 0);
  }
}

TEST(PacketTraceTest, UsesBothDirections) {
  PacketTraceOptions Opts;
  Opts.NumPackets = 500;
  bool In = false, Out = false;
  for (const Packet &P : generatePacketTrace(Opts))
    (P.Outgoing ? Out : In) = true;
  EXPECT_TRUE(In);
  EXPECT_TRUE(Out);
}

TEST(TileTraceTest, PanningGivesLocality) {
  // With high pan probability consecutive requests hit nearby tiles:
  // the number of distinct tiles is far below the request count.
  TileTraceOptions Opts;
  Opts.NumRequests = 5000;
  Opts.PanProbability = 0.95;
  auto Trace = generateTileTrace(Opts);
  ASSERT_EQ(Trace.size(), 5000u);
  std::set<int64_t> Distinct;
  for (const TileRequest &Q : Trace)
    Distinct.insert(Q.TileId);
  EXPECT_LT(Distinct.size(), Trace.size() / 2);
  for (const TileRequest &Q : Trace)
    EXPECT_GT(Q.Size, 0);
}

TEST(MmapTraceTest, ZipfSkewConcentratesOnHotFiles) {
  MmapTraceOptions Opts;
  Opts.NumRequests = 20000;
  Opts.NumFiles = 1000;
  Opts.ZipfSkew = 1.1;
  auto Trace = generateMmapTrace(Opts);
  ASSERT_EQ(Trace.size(), 20000u);
  std::map<int64_t, size_t> Freq;
  for (const MmapRequest &Q : Trace)
    ++Freq[Q.FileId];
  // The most popular file must dwarf the median file.
  size_t MaxFreq = 0;
  for (const auto &[File, N] : Freq)
    MaxFreq = std::max(MaxFreq, N);
  EXPECT_GT(MaxFreq, 20000u / 1000u * 5);
}

TEST(MmapTraceTest, TimestampsNondecreasing) {
  MmapTraceOptions Opts;
  Opts.NumRequests = 2000;
  auto Trace = generateMmapTrace(Opts);
  for (size_t I = 1; I < Trace.size(); ++I)
    EXPECT_LE(Trace[I - 1].Timestamp, Trace[I].Timestamp);
}

TEST(LocCountTest, CountsNonCommentLines) {
  EXPECT_EQ(countLoc("int x;\nint y;\n"), 2u);
  EXPECT_EQ(countLoc("// comment\nint x;\n"), 1u);
  EXPECT_EQ(countLoc("/* block\n comment */\nint x;\n"), 1u);
  EXPECT_EQ(countLoc("\n\n  \n"), 0u);
  EXPECT_EQ(countLoc("int x; // trailing\n"), 1u);
  EXPECT_EQ(countLoc(""), 0u);
}

TEST(LocCountTest, MixedBlockAndLine) {
  const char *Src = R"(#include <x>
/* a
   b */ int live;
// only a comment
int more; /* tail */
)";
  EXPECT_EQ(countLoc(Src), 3u);
}

} // namespace
