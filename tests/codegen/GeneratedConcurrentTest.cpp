//===- tests/codegen/GeneratedConcurrentTest.cpp - Emitted facade -*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end verification of the `concurrency` compilation target:
/// the build runs `relc` over tests/codegen/golden/sched_conc_{ns,
/// state}.relc and compiles the emitted headers into this test, which
/// drives the generated sharded facades through randomized operation
/// sequences in lockstep with the interpreted ConcurrentRelation, the
/// sequential dynamic engine, and the Relation oracle — all four must
/// stay α-equivalent. Multi-writer stress runs the same generated code
/// under real races (the CI TSan job includes this suite), and the
/// `*_parallel` queries must yield the sequential fan-out's multiset.
///
//===----------------------------------------------------------------------===//

#include "concurrent/ConcurrentRelation.h"

#include "decomp/Builder.h"
#include "workloads/Rng.h"

// Build-generated: relc-emitted headers (see tests/CMakeLists.txt).
#include "account_tx_gen.h"
#include "sched_conc_ns_gen.h"
#include "sched_conc_state_gen.h"
#include "settle_tri_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <thread>
#include <vector>

using namespace relc;

namespace {

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

/// The same Fig. 2 decomposition the golden .relc files declare.
Decomposition fig2(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  return B.build();
}

/// Harvests a generated facade's content through its fan-out `all`
/// query into the oracle representation.
template <typename GenT>
Relation harvest(const GenT &Gen, const Catalog &Cat) {
  Relation R(Cat.allColumns());
  Gen.all([&](int64_t Ns, int64_t Pid, int64_t State, int64_t Cpu) {
    R.insert(TupleBuilder(Cat)
                 .set("ns", Ns)
                 .set("pid", Pid)
                 .set("state", State)
                 .set("cpu", Cpu)
                 .build());
  });
  return R;
}

/// One randomized mixed sequence applied in lockstep to the generated
/// facade, the interpreted sharded facade, the sequential engine, and
/// the Relation oracle.
template <typename GenT>
void runAlphaEquivalence(ColumnId ShardCol, unsigned NumShards,
                         uint64_t Seed) {
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  ColumnId ColState = Cat.get("state"), ColCpu = Cat.get("cpu");

  GenT Gen;
  ConcurrentOptions Opts;
  Opts.NumShards = NumShards;
  Opts.ShardColumn = ShardCol;
  ConcurrentRelation Interp(fig2(Spec), Opts);
  SynthesizedRelation Seq{fig2(Spec)};
  Relation Oracle(Cat.allColumns());
  Rng R(Seed);

  for (int Step = 0; Step != 500; ++Step) {
    int64_t Ns = R.range(0, 7);
    int64_t Pid = R.range(0, 15);
    Tuple Key = TupleBuilder(Cat).set("ns", Ns).set("pid", Pid).build();
    switch (R.below(5)) {
    case 0:
    case 1: { // insert (FD-safe only: the oracle pre-checks)
      int64_t State = static_cast<int64_t>(R.below(3));
      int64_t Cpu = static_cast<int64_t>(R.below(100));
      Tuple T = TupleBuilder(Cat)
                    .set("ns", Ns)
                    .set("pid", Pid)
                    .set("state", State)
                    .set("cpu", Cpu)
                    .build();
      if (!Oracle.insertPreservesFds(T, Spec->fds()))
        break;
      Oracle.insert(T);
      bool Changed = Gen.insert(Ns, Pid, State, Cpu);
      EXPECT_EQ(Changed, Interp.insert(T));
      EXPECT_EQ(Changed, Seq.insert(T));
      break;
    }
    case 2: { // remove through the key
      size_t N = Oracle.remove(Key);
      EXPECT_EQ(Gen.remove_by_ns_pid(Ns, Pid), N == 1);
      EXPECT_EQ(Interp.remove(Key), N);
      EXPECT_EQ(Seq.remove(Key), N);
      break;
    }
    case 3: { // update every non-key column through the key (the
              // generated update_by rewrites state AND cpu — migration
              // when the shard column is state)
      int64_t State = R.range(0, 2), Cpu = R.range(0, 99);
      Tuple Changes = TupleBuilder(Cat)
                          .set("state", State)
                          .set("cpu", Cpu)
                          .build();
      size_t N = Oracle.update(Key, Changes);
      EXPECT_EQ(Gen.update_by_ns_pid(Ns, Pid, State, Cpu), N == 1);
      EXPECT_EQ(Interp.update(Key, Changes), N);
      EXPECT_EQ(Seq.update(Key, Changes), N);
      break;
    }
    case 4: { // upsert: the read-modify-write, same deterministic Fn
              // against every engine
      int64_t Delta = R.range(1, 49);
      bool GenInserted = Gen.upsert_by_ns_pid(
          Ns, Pid, [&](bool Found, int64_t &St, int64_t &Cpu) {
            Cpu = ((Found ? Cpu : 0) + Delta) % 100;
            St = Delta % 3;
          });
      auto Fn = [&](const BindingFrame *Cur, Tuple &Values) {
        int64_t Cpu = Cur ? Cur->get(ColCpu).asInt() : 0;
        Values.set(ColCpu, Value::ofInt((Cpu + Delta) % 100));
        Values.set(ColState, Value::ofInt(Delta % 3));
      };
      EXPECT_EQ(Interp.upsert(Key, Fn), GenInserted);
      EXPECT_EQ(Seq.upsert(Key, Fn), GenInserted);
      // Oracle: read-modify-write by hand.
      auto Cur = Oracle.query(Key, ColumnSet::single(ColCpu));
      int64_t Cpu = Cur.empty() ? 0 : Cur.front().get(ColCpu).asInt();
      EXPECT_EQ(Cur.empty(), GenInserted);
      Tuple Changes = TupleBuilder(Cat)
                          .set("cpu", (Cpu + Delta) % 100)
                          .set("state", Delta % 3)
                          .build();
      if (Cur.empty())
        Oracle.insert(Key.merge(Changes));
      else
        Oracle.update(Key, Changes);
      break;
    }
    }
    if (Step % 25 == 24) {
      Relation G = harvest(Gen, Cat);
      EXPECT_EQ(G, Oracle) << "step " << Step;
      EXPECT_EQ(G, Interp.toRelation()) << "step " << Step;
      EXPECT_EQ(G, Seq.toRelation()) << "step " << Step;
      EXPECT_EQ(Gen.size(), Oracle.size()) << "step " << Step;
    }
  }
  EXPECT_EQ(harvest(Gen, Cat), Oracle);
  EXPECT_EQ(Gen.size(), Oracle.size());
}

TEST(GeneratedConcurrentTest, AlphaEquivalenceShardedByNs) {
  runAlphaEquivalence<genconc::sched_ns_concurrent>(
      schedulerSpec()->catalog().get("ns"), 4, 0xfacade0);
}

TEST(GeneratedConcurrentTest, AlphaEquivalenceShardedByState) {
  // Non-key shard column: every keyed mutation takes the generated
  // all-writer-locks fan-out, and updates/upserts migrate shards.
  runAlphaEquivalence<genconc::sched_state_concurrent>(
      schedulerSpec()->catalog().get("state"), 3, 0xfacade1);
}

TEST(GeneratedConcurrentTest, ParallelQueryMatchesSequentialFanOut) {
  genconc::sched_ns_concurrent Gen;
  Rng R(0x9a7a11e1);
  for (int I = 0; I != 400; ++I)
    Gen.insert(R.range(0, 15), I, R.range(0, 2), R.range(0, 99));

  using Row = std::array<int64_t, 4>;
  std::vector<Row> Sequential, Parallel;
  Gen.all([&](int64_t A, int64_t B, int64_t C, int64_t D) {
    Sequential.push_back({A, B, C, D});
  });
  Gen.all_parallel([&](int64_t A, int64_t B, int64_t C, int64_t D) {
    Parallel.push_back({A, B, C, D});
  });
  std::sort(Sequential.begin(), Sequential.end());
  std::sort(Parallel.begin(), Parallel.end());
  EXPECT_EQ(Sequential, Parallel);
  EXPECT_EQ(Sequential.size(), 400u);

  using Pair = std::array<int64_t, 2>;
  std::vector<Pair> SeqState, ParState;
  Gen.by_state(1, [&](int64_t Ns, int64_t Pid) {
    SeqState.push_back({Ns, Pid});
  });
  Gen.by_state_parallel(1, [&](int64_t Ns, int64_t Pid) {
    ParState.push_back({Ns, Pid});
  });
  std::sort(SeqState.begin(), SeqState.end());
  std::sort(ParState.begin(), ParState.end());
  EXPECT_EQ(SeqState, ParState);
}

/// Harvests a generated facade snapshot through its scanRows into the
/// oracle representation.
template <typename SnapT>
Relation harvestSnapshot(const SnapT &Snap, const Catalog &Cat) {
  Relation R(Cat.allColumns());
  Snap.scanRows([&](int64_t Ns, int64_t Pid, int64_t State, int64_t Cpu) {
    R.insert(TupleBuilder(Cat)
                 .set("ns", Ns)
                 .set("pid", Pid)
                 .set("state", State)
                 .set("cpu", Cpu)
                 .build());
  });
  return R;
}

/// The generated facade's snapshot(): frozen under every mutation
/// class (writers COW around the pinned shards), scanRows α-equivalent
/// to the fan-out `all` query, and clear() replaces pinned shards
/// rather than resetting them in place.
TEST(GeneratedConcurrentTest, SnapshotIsImmutableUnderMutation) {
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  genconc::sched_ns_concurrent Gen;
  for (int64_t Ns = 0; Ns != 8; ++Ns)
    for (int64_t Pid = 0; Pid != 8; ++Pid)
      ASSERT_TRUE(Gen.insert(Ns, Pid, Pid % 3, Pid));
  Relation Before = harvest(Gen, Cat);

  auto Snap = Gen.snapshot();
  ASSERT_TRUE(Snap.valid());
  EXPECT_EQ(Snap.size(), 64u);
  EXPECT_EQ(harvestSnapshot(Snap, Cat), Before);

  // Every mutation class, while the handle is held.
  EXPECT_TRUE(Gen.insert(9, 9, 0, 0));
  EXPECT_TRUE(Gen.remove_by_ns_pid(0, 0));
  EXPECT_TRUE(Gen.update_by_ns_pid(1, 1, 2, 77));
  Gen.upsert_by_ns_pid(2, 2, [](bool, int64_t &St, int64_t &Cpu) {
    St = 1;
    Cpu = 55;
  });
  EXPECT_EQ(harvestSnapshot(Snap, Cat), Before);
  EXPECT_EQ(Snap.size(), 64u);
  EXPECT_NE(harvest(Gen, Cat), Before);

  // clear() must swap fresh shards in under the pinned handle.
  Gen.clear();
  EXPECT_EQ(Gen.size(), 0u);
  EXPECT_EQ(harvestSnapshot(Snap, Cat), Before);

  // A fresh handle sees the live (now empty) state.
  auto After = Gen.snapshot();
  EXPECT_TRUE(After.valid());
  EXPECT_TRUE(After.empty());
  EXPECT_EQ(harvestSnapshot(After, Cat), Relation(Cat.allColumns()));
}

/// Snapshots racing generated-facade writers (the CI TSan job runs
/// this): each pinned handle must yield the same rows however many
/// commits land after it, and writers must keep progressing while
/// handles stay alive.
TEST(GeneratedConcurrentTest, SnapshotsFrozenUnderWriterChurn) {
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  genconc::sched_ns_concurrent Gen;

  auto Epoch0 = Gen.snapshot(); // held across the whole run
  std::atomic<bool> Done{false};
  std::atomic<size_t> SnapsTaken{0};

  std::thread Snapshotter([&] {
    std::vector<decltype(Gen.snapshot())> Window;
    while (!Done.load(std::memory_order_acquire)) {
      auto Snap = Gen.snapshot();
      Relation First = harvestSnapshot(Snap, Cat);
      EXPECT_EQ(First.size(), Snap.size());
      std::this_thread::yield();
      EXPECT_EQ(harvestSnapshot(Snap, Cat), First)
          << "generated snapshot moved under churn";
      Window.push_back(std::move(Snap));
      if (Window.size() > 4)
        Window.erase(Window.begin());
      SnapsTaken.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const unsigned NumWriters = 4;
  std::vector<std::thread> Writers;
  for (unsigned T = 0; T != NumWriters; ++T)
    Writers.emplace_back([&, T] {
      Rng R(0x5a9 + T);
      for (int Step = 0; Step != 400; ++Step) {
        int64_t Ns = R.range(0, 7);
        int64_t Pid = static_cast<int64_t>(T) +
                      static_cast<int64_t>(NumWriters) * R.range(0, 15);
        int64_t Delta = R.range(1, 49);
        Gen.upsert_by_ns_pid(Ns, Pid,
                             [&](bool Found, int64_t &St, int64_t &Cpu) {
                               Cpu = ((Found ? Cpu : 0) + Delta) % 100;
                               St = Delta % 3;
                             });
        if (R.chance(0.2))
          Gen.remove_by_ns_pid(Ns, Pid);
      }
    });
  for (std::thread &T : Writers)
    T.join();
  Done.store(true, std::memory_order_release);
  Snapshotter.join();

  EXPECT_GT(SnapsTaken.load(), 0u);
  EXPECT_TRUE(Epoch0.empty());
  EXPECT_EQ(harvestSnapshot(Epoch0, Cat), Relation(Cat.allColumns()));
  // The final snapshot agrees with the live fan-out harvest.
  EXPECT_EQ(harvestSnapshot(Gen.snapshot(), Cat), harvest(Gen, Cat));
}

/// One logged mutation, replayable against the sequential engine.
struct LoggedOp {
  enum Kind { Insert, Remove, Update, Upsert } Op;
  int64_t Ns, Pid, State, Cpu; ///< Upsert: Cpu doubles as the delta.
};

/// Multi-writer/multi-reader stress over a generated facade (the CI
/// TSan job runs this suite). Writers mutate pairwise-disjoint pid
/// sets, so their logs replayed serially into the sequential engine
/// must reproduce the concurrent final state.
template <typename GenT> void runStress(unsigned NumWriters, int Ops) {
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  GenT Gen;

  std::vector<std::vector<LoggedOp>> Logs(NumWriters);
  std::atomic<bool> Done{false};

  std::vector<std::thread> Readers;
  for (unsigned T = 0; T != 2; ++T)
    Readers.emplace_back([&, T] {
      Rng R(0xeade0 + T);
      while (!Done.load(std::memory_order_acquire)) {
        // Every value a reader observes must lie in the writers'
        // domain — a facade emitting torn or stale rows fails here.
        Gen.by_state(R.range(0, 2), [&](int64_t Ns, int64_t Pid) {
          EXPECT_TRUE(Ns >= 0 && Ns <= 7);
          EXPECT_GE(Pid, 0);
        });
        Gen.all_parallel(
            [&](int64_t Ns, int64_t, int64_t State, int64_t Cpu) {
              EXPECT_TRUE(Ns >= 0 && Ns <= 7);
              EXPECT_TRUE(State >= 0 && State <= 2);
              EXPECT_TRUE(Cpu >= 0 && Cpu < 100);
            });
        (void)Gen.size();
      }
    });

  std::vector<std::thread> Writers;
  for (unsigned T = 0; T != NumWriters; ++T)
    Writers.emplace_back([&, T] {
      Rng R(0x517e55 + T);
      for (int Step = 0; Step != Ops; ++Step) {
        int64_t Ns = R.range(0, 7);
        int64_t Pid = static_cast<int64_t>(T) +
                      static_cast<int64_t>(NumWriters) * R.range(0, 15);
        switch (R.below(4)) {
        case 0: { // upsert: always FD-safe
          int64_t Delta = R.range(1, 49);
          Gen.upsert_by_ns_pid(Ns, Pid,
                               [&](bool Found, int64_t &St, int64_t &Cpu) {
                                 Cpu = ((Found ? Cpu : 0) + Delta) % 100;
                                 St = Delta % 3;
                               });
          Logs[T].push_back({LoggedOp::Upsert, Ns, Pid, 0, Delta});
          break;
        }
        case 1: { // update
          int64_t St = R.range(0, 2), Cpu = R.range(0, 99);
          Gen.update_by_ns_pid(Ns, Pid, St, Cpu);
          Logs[T].push_back({LoggedOp::Update, Ns, Pid, St, Cpu});
          break;
        }
        case 2: { // remove
          Gen.remove_by_ns_pid(Ns, Pid);
          Logs[T].push_back({LoggedOp::Remove, Ns, Pid, 0, 0});
          break;
        }
        case 3: { // insert-if-absent through upsert keeps FD safety
                  // without an oracle in the race (a plain insert of a
                  // random tuple could violate the key FD)
          int64_t Delta = R.range(50, 99);
          Gen.upsert_by_ns_pid(Ns, Pid,
                               [&](bool Found, int64_t &St, int64_t &Cpu) {
                                 if (Found)
                                   return;
                                 St = Delta % 3;
                                 Cpu = Delta;
                               });
          Logs[T].push_back({LoggedOp::Insert, Ns, Pid, 0, Delta});
          break;
        }
        }
      }
    });
  for (std::thread &T : Writers)
    T.join();
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();

  // Serial replay, thread by thread (disjoint key sets commute).
  SynthesizedRelation Replay{fig2(Spec)};
  ColumnId ColState = Cat.get("state"), ColCpu = Cat.get("cpu");
  for (const std::vector<LoggedOp> &Log : Logs)
    for (const LoggedOp &Op : Log) {
      Tuple Key = TupleBuilder(Cat)
                      .set("ns", Op.Ns)
                      .set("pid", Op.Pid)
                      .build();
      switch (Op.Op) {
      case LoggedOp::Insert:
        Replay.upsert(Key, [&](const BindingFrame *Cur, Tuple &Values) {
          if (Cur) {
            Values.set(ColState, Cur->get(ColState));
            Values.set(ColCpu, Cur->get(ColCpu));
            return;
          }
          Values.set(ColState, Value::ofInt(Op.Cpu % 3));
          Values.set(ColCpu, Value::ofInt(Op.Cpu));
        });
        break;
      case LoggedOp::Remove:
        Replay.remove(Key);
        break;
      case LoggedOp::Update:
        Replay.update(Key, TupleBuilder(Cat)
                               .set("state", Op.State)
                               .set("cpu", Op.Cpu)
                               .build());
        break;
      case LoggedOp::Upsert:
        Replay.upsert(Key, [&](const BindingFrame *Cur, Tuple &Values) {
          int64_t Cpu = Cur ? Cur->get(ColCpu).asInt() : 0;
          Values.set(ColCpu, Value::ofInt((Cpu + Op.Cpu) % 100));
          Values.set(ColState, Value::ofInt(Op.Cpu % 3));
        });
        break;
      }
    }
  EXPECT_EQ(harvest(Gen, Cat), Replay.toRelation());
  EXPECT_EQ(Gen.size(), Replay.size());
}

TEST(GeneratedConcurrentTest, MultiWriterStressShardedByNs) {
  runStress<genconc::sched_ns_concurrent>(/*NumWriters=*/4, /*Ops=*/400);
}

TEST(GeneratedConcurrentTest, MultiWriterStressShardedByState) {
  runStress<genconc::sched_state_concurrent>(/*NumWriters=*/4,
                                             /*Ops=*/250);
}

//===----------------------------------------------------------------------===
// The generated transact_by_* (the `transaction` directive).
//===----------------------------------------------------------------------===

/// Locksteps the generated two-key transact against the interpreted
/// ConcurrentRelation::transact, the sequential engine's transact, and
/// the Relation oracle. The generated method resolves both sides from
/// the pre-transaction state and writes back after one callback, which
/// for DISTINCT keys equals the sequential batch [upsert A, upsert B]
/// with the values the callback produced — the equivalence this
/// harness asserts.
template <typename GenT>
void runGeneratedTransactAlpha(ColumnId ShardCol, unsigned NumShards,
                               uint64_t Seed) {
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  ColumnId ColState = Cat.get("state"), ColCpu = Cat.get("cpu");

  GenT Gen;
  ConcurrentOptions Opts;
  Opts.NumShards = NumShards;
  Opts.ShardColumn = ShardCol;
  ConcurrentRelation Interp(fig2(Spec), Opts);
  SynthesizedRelation Seq{fig2(Spec)};
  Relation Oracle(Cat.allColumns());
  Rng R(Seed);

  for (int Step = 0; Step != 300; ++Step) {
    int64_t NsA = R.range(0, 7), PidA = R.range(0, 15);
    int64_t NsB = R.range(0, 7), PidB = R.range(0, 15);
    if (NsA == NsB && PidA == PidB)
      PidB = (PidB + 1) % 16; // distinct keys: see the doc above
    Tuple KeyA = TupleBuilder(Cat).set("ns", NsA).set("pid", PidA).build();
    Tuple KeyB = TupleBuilder(Cat).set("ns", NsB).set("pid", PidB).build();

    if (R.chance(0.15)) {
      // The abort arm: a false-returning callback writes nothing.
      Relation Before = harvest(Gen, Cat);
      size_t SizeBefore = Gen.size();
      bool Committed = Gen.transact_by_ns_pid(
          NsA, PidA, NsB, PidB,
          [&](bool, int64_t &, int64_t &, bool, int64_t &, int64_t &) {
            return false;
          });
      EXPECT_FALSE(Committed);
      EXPECT_EQ(harvest(Gen, Cat), Before) << "step " << Step;
      EXPECT_EQ(Gen.size(), SizeBefore);
      continue;
    }

    int64_t DA = R.range(1, 49), DB = R.range(1, 49);
    bool FA = false, FB = false;
    int64_t NewStA = 0, NewCpuA = 0, NewStB = 0, NewCpuB = 0;
    bool Committed = Gen.transact_by_ns_pid(
        NsA, PidA, NsB, PidB,
        [&](bool FoundA, int64_t &StA, int64_t &CpuA, bool FoundB,
            int64_t &StB, int64_t &CpuB) {
          CpuA = ((FoundA ? CpuA : 0) + DA) % 100;
          StA = DA % 3;
          CpuB = ((FoundB ? CpuB : 0) + DB) % 100;
          StB = DB % 3;
          FA = FoundA;
          FB = FoundB;
          NewStA = StA;
          NewCpuA = CpuA;
          NewStB = StB;
          NewCpuB = CpuB;
        });
    EXPECT_TRUE(Committed);
    // The generated lookups saw exactly the oracle's state.
    EXPECT_EQ(FA, !Oracle.query(KeyA, Cat.allColumns()).empty());
    EXPECT_EQ(FB, !Oracle.query(KeyB, Cat.allColumns()).empty());

    // The equivalent batch against the interpreted engines: two
    // upserts setting the values the generated callback produced.
    std::vector<TxOp> Ops;
    Ops.push_back(TxOp::upsert(
        KeyA, [=](const BindingFrame *, Tuple &V) {
          V.set(ColState, Value::ofInt(NewStA));
          V.set(ColCpu, Value::ofInt(NewCpuA));
        }));
    Ops.push_back(TxOp::upsert(
        KeyB, [=](const BindingFrame *, Tuple &V) {
          V.set(ColState, Value::ofInt(NewStB));
          V.set(ColCpu, Value::ofInt(NewCpuB));
        }));
    EXPECT_TRUE(Interp.transact(Ops).Committed);
    EXPECT_TRUE(Seq.transact(Ops).Committed);
    // Oracle: upsert = remove the key's tuple (if any) + insert.
    for (const auto &[Key, St, Cpu] :
         {std::make_tuple(KeyA, NewStA, NewCpuA),
          std::make_tuple(KeyB, NewStB, NewCpuB)}) {
      Oracle.remove(Key);
      Oracle.insert(Key.merge(TupleBuilder(Cat)
                                  .set("state", St)
                                  .set("cpu", Cpu)
                                  .build()));
    }

    if (Step % 25 == 24) {
      Relation G = harvest(Gen, Cat);
      EXPECT_EQ(G, Oracle) << "step " << Step;
      EXPECT_EQ(G, Interp.toRelation()) << "step " << Step;
      EXPECT_EQ(G, Seq.toRelation()) << "step " << Step;
      EXPECT_EQ(Gen.size(), Oracle.size()) << "step " << Step;
    }
  }
  EXPECT_EQ(harvest(Gen, Cat), Oracle);
}

TEST(GeneratedConcurrentTest, TransactAlphaShardedByNs) {
  // Routed: the generated transact locks one or two stripes.
  runGeneratedTransactAlpha<genconc::sched_ns_concurrent>(
      schedulerSpec()->catalog().get("ns"), 4, 0x7abcde0);
}

TEST(GeneratedConcurrentTest, TransactAlphaShardedByState) {
  // Non-key shard column: the generated transact fans out under every
  // writer stripe and its write-backs migrate tuples between shards.
  runGeneratedTransactAlpha<genconc::sched_state_concurrent>(
      schedulerSpec()->catalog().get("state"), 3, 0x7abcde1);
}

/// Harvests the generated account facade (3 columns).
Relation harvestAccounts(const genconc::account_concurrent &Accts,
                         const Catalog &Cat) {
  Relation R(Cat.allColumns());
  Accts.all([&](int64_t Owner, int64_t Acct, int64_t Balance) {
    R.insert(TupleBuilder(Cat)
                 .set("owner", Owner)
                 .set("acct", Acct)
                 .set("balance", Balance)
                 .build());
  });
  return R;
}

/// The flagship invariant: N writers hammering random transfers
/// between overlapping accounts through the generated two-key
/// transact must conserve the total balance exactly — any lost or
/// duplicated update, torn write, or non-atomic debit/credit pair
/// breaks the sum. Runs under the CI TSan job.
TEST(GeneratedConcurrentTest, AccountTransferConservesTotalBalance) {
  genconc::account_concurrent Accts;
  const int64_t NumOwners = 8, PerOwner = 4, Initial = 1000;
  for (int64_t O = 0; O != NumOwners; ++O)
    for (int64_t A = 0; A != PerOwner; ++A)
      ASSERT_TRUE(Accts.insert(O, A, Initial));
  const int64_t Total = NumOwners * PerOwner * Initial;

  const unsigned NumWriters = 4;
  const int Transfers = 1500;
  std::atomic<size_t> Committed{0}, Aborted{0};
  std::vector<std::thread> Writers;
  for (unsigned T = 0; T != NumWriters; ++T)
    Writers.emplace_back([&, T] {
      Rng R(0xacc7 + T);
      for (int I = 0; I != Transfers; ++I) {
        int64_t O1 = R.range(0, NumOwners - 1);
        int64_t A1 = R.range(0, PerOwner - 1);
        // Occasionally target a nonexistent account: the callback
        // aborts and the transfer must leave no trace.
        bool Bogus = R.chance(0.1);
        int64_t O2 = Bogus ? 99 : R.range(0, NumOwners - 1);
        int64_t A2 = R.range(0, PerOwner - 1);
        if (O1 == O2 && A1 == A2)
          A2 = (A2 + 1) % PerOwner; // self-transfers excluded
        int64_t Amount = R.range(1, 50);
        bool Ok = Accts.transact_by_owner_acct(
            O1, A1, O2, A2,
            [&](bool FoundA, int64_t &BalA, bool FoundB, int64_t &BalB) {
              if (!FoundA || !FoundB)
                return false; // missing account: abort
              int64_t Moved = Amount < BalA ? Amount : BalA;
              BalA -= Moved;
              BalB += Moved;
              return true;
            });
        (Ok ? Committed : Aborted).fetch_add(1,
                                             std::memory_order_relaxed);
      }
    });
  for (std::thread &T : Writers)
    T.join();

  EXPECT_GT(Committed.load(), 0u);
  EXPECT_GT(Aborted.load(), 0u);
  EXPECT_EQ(Accts.size(), static_cast<size_t>(NumOwners * PerOwner));
  int64_t Sum = 0;
  size_t Rows = 0;
  Accts.all([&](int64_t, int64_t, int64_t Balance) {
    Sum += Balance;
    ++Rows;
    EXPECT_GE(Balance, 0);
  });
  EXPECT_EQ(Rows, static_cast<size_t>(NumOwners * PerOwner));
  EXPECT_EQ(Sum, Total);
}

TEST(GeneratedConcurrentTest, AccountTransactSingleThreadSemantics) {
  RelSpecRef Spec = RelSpec::make("account", {"owner", "acct", "balance"},
                                  {{"owner, acct", "balance"}});
  const Catalog &Cat = Spec->catalog();
  genconc::account_concurrent Accts;
  ASSERT_TRUE(Accts.insert(1, 1, 100));
  ASSERT_TRUE(Accts.insert(2, 1, 50));

  // A committed transfer.
  EXPECT_TRUE(Accts.transact_by_owner_acct(
      1, 1, 2, 1, [](bool FA, int64_t &A, bool FB, int64_t &B) {
        EXPECT_TRUE(FA);
        EXPECT_TRUE(FB);
        A -= 30;
        B += 30;
        return true;
      }));
  Relation State = harvestAccounts(Accts, Cat);
  EXPECT_TRUE(State.contains(TupleBuilder(Cat)
                                 .set("owner", 1)
                                 .set("acct", 1)
                                 .set("balance", 70)
                                 .build()));
  EXPECT_TRUE(State.contains(TupleBuilder(Cat)
                                 .set("owner", 2)
                                 .set("acct", 1)
                                 .set("balance", 80)
                                 .build()));

  // An absent side seeds a fresh account when the callback commits
  // (upsert semantics: the values it leaves are inserted).
  EXPECT_TRUE(Accts.transact_by_owner_acct(
      1, 1, 3, 1, [](bool FA, int64_t &A, bool FB, int64_t &B) {
        EXPECT_TRUE(FA);
        EXPECT_FALSE(FB);
        A -= 10;
        B = 10;
        return true;
      }));
  EXPECT_EQ(Accts.size(), 3u);

  // A void callback always commits.
  Accts.transact_by_owner_acct(
      1, 1, 2, 1, [](bool, int64_t &A, bool, int64_t &B) {
        A += 1;
        B += 1;
      });
  int64_t Sum = 0;
  Accts.all([&](int64_t, int64_t, int64_t Balance) { Sum += Balance; });
  EXPECT_EQ(Sum, 100 + 50 + 2);
}

//===----------------------------------------------------------------------===
// The `wire` directive: account_tx.relc also emits genconc::account_wire,
// a constexpr opcode -> facade-method dispatch table matching the
// relserved protocol (src/server/Wire.h).
//===----------------------------------------------------------------------===

TEST(GeneratedConcurrentTest, WireDispatchTableMapsOpcodesToFacadeMethods) {
  using Wire = genconc::account_wire;
  // The table is constexpr: dispatch decisions can be made at compile
  // time by a server shim. (Exact row count depends on the pass
  // pipeline — DeadIndexElimination prunes unreachable facade support
  // ops — so only the requested methods' rows are asserted.)
  static_assert(Wire::NumEntries >= 4, "account_tx wire table size");
  static_assert(Wire::lookup(0x02) != nullptr, "insert row");
  static_assert(Wire::lookup(0x01) == nullptr, "ping has no method row");

  const Wire::Entry *Insert = Wire::lookup(0x02);
  ASSERT_NE(Insert, nullptr);
  EXPECT_STREQ(Insert->Method, "insert");
  EXPECT_EQ(Insert->Arity, 0u);

  // A remove row exists only when the pipeline kept the facade
  // remove_by support op; when present it must name the real method.
  if (const Wire::Entry *Remove = Wire::lookup(0x03))
    EXPECT_STREQ(Remove->Method, "remove_by_owner_acct");

  const Wire::Entry *Query = Wire::lookup(0x05);
  ASSERT_NE(Query, nullptr);
  EXPECT_STREQ(Query->Method, "all");

  const Wire::Entry *Transact = Wire::lookup(0x06);
  ASSERT_NE(Transact, nullptr);
  EXPECT_STREQ(Transact->Method, "transact_by_owner_acct");
  EXPECT_EQ(Transact->Arity, 2u);

  const Wire::Entry *Size = Wire::lookup(0x07);
  ASSERT_NE(Size, nullptr);
  EXPECT_STREQ(Size->Method, "size");

  // Unknown opcodes dispatch to nothing.
  EXPECT_EQ(Wire::lookup(0x7F), nullptr);
  EXPECT_EQ(Wire::lookup(0x00), nullptr);

  // Every named method really exists on the facade with the advertised
  // shape (compile-time check by taking the member pointers).
  [[maybe_unused]] auto InsertFn = &genconc::account_concurrent::insert;
  [[maybe_unused]] auto SizeFn = &genconc::account_concurrent::size;
}

//===----------------------------------------------------------------------===
// The N-key generalization: `transaction bank, acct x 3` compiles
// transact3_by_bank_acct on the ledger facade (settle_tri.relc).
//===----------------------------------------------------------------------===

TEST(GeneratedConcurrentTest, SettleTriSingleThreadSemantics) {
  genconc::ledger_concurrent Ledger;
  ASSERT_TRUE(Ledger.insert(1, 1, 100));
  ASSERT_TRUE(Ledger.insert(2, 1, 200));
  ASSERT_TRUE(Ledger.insert(3, 1, 300));

  // A committed three-way settlement: a pays b and c.
  EXPECT_TRUE(Ledger.transact3_by_bank_acct(
      1, 1, 2, 1, 3, 1,
      [](bool FA, int64_t &A, bool FB, int64_t &B, bool FC, int64_t &C) {
        EXPECT_TRUE(FA && FB && FC);
        A -= 50;
        B += 20;
        C += 30;
        return true;
      }));
  int64_t BalA = -1, BalB = -1, BalC = -1;
  Ledger.all([&](int64_t Bank, int64_t, int64_t Balance) {
    (Bank == 1 ? BalA : Bank == 2 ? BalB : BalC) = Balance;
  });
  EXPECT_EQ(BalA, 50);
  EXPECT_EQ(BalB, 220);
  EXPECT_EQ(BalC, 330);

  // Abort writes nothing.
  EXPECT_FALSE(Ledger.transact3_by_bank_acct(
      1, 1, 2, 1, 3, 1,
      [](bool, int64_t &A, bool, int64_t &B, bool, int64_t &C) {
        A = B = C = -999; // must never land
        return false;
      }));
  int64_t Sum = 0;
  Ledger.all([&](int64_t, int64_t, int64_t Balance) { Sum += Balance; });
  EXPECT_EQ(Sum, 600);

  // An absent side is inserted with whatever the callback leaves.
  EXPECT_TRUE(Ledger.transact3_by_bank_acct(
      1, 1, 2, 1, 4, 7,
      [](bool FA, int64_t &A, bool FB, int64_t &B, bool FC, int64_t &C) {
        EXPECT_TRUE(FA && FB);
        EXPECT_FALSE(FC);
        A -= 5;
        B -= 5;
        C = 10;
        return true;
      }));
  EXPECT_EQ(Ledger.size(), 4u);

  // Duplicate sides are legal: the last write-back wins, exactly like
  // two sequential upserts of the same key.
  EXPECT_TRUE(Ledger.transact3_by_bank_acct(
      1, 1, 1, 1, 2, 1,
      [](bool, int64_t &A, bool, int64_t &A2, bool, int64_t &) {
        A = 11;
        A2 = 17;
        return true;
      }));
  int64_t BalDup = -1;
  Ledger.all([&](int64_t Bank, int64_t Acct, int64_t Balance) {
    if (Bank == 1 && Acct == 1)
      BalDup = Balance;
  });
  EXPECT_EQ(BalDup, 17);
}

/// The serializability stress arm for the 3-key transact: writers race
/// three-way settlements over overlapping accounts; every committed
/// callback moves value between its three sides without creating or
/// destroying any, so the global sum is invariant — lost updates, torn
/// write-backs, or a non-atomic settle break it. Runs under the CI
/// TSan job like the rest of this suite.
TEST(GeneratedConcurrentTest, SettleTriConservesTotalBalance) {
  genconc::ledger_concurrent Ledger;
  const int64_t NumBanks = 8, PerBank = 4, Initial = 1000;
  for (int64_t B = 0; B != NumBanks; ++B)
    for (int64_t A = 0; A != PerBank; ++A)
      ASSERT_TRUE(Ledger.insert(B, A, Initial));
  const int64_t Total = NumBanks * PerBank * Initial;

  const unsigned NumWriters = 4;
  const int Settlements = 1200;
  std::atomic<size_t> Committed{0}, Aborted{0};
  std::vector<std::thread> Writers;
  for (unsigned T = 0; T != NumWriters; ++T)
    Writers.emplace_back([&, T] {
      Rng R(0x5e771e + T);
      for (int I = 0; I != Settlements; ++I) {
        // Three (bank, acct) sides; occasionally a bogus one to
        // exercise the abort path under contention.
        int64_t B1 = R.range(0, NumBanks - 1), A1 = R.range(0, PerBank - 1);
        int64_t B2 = R.range(0, NumBanks - 1), A2 = R.range(0, PerBank - 1);
        bool Bogus = R.chance(0.1);
        int64_t B3 = Bogus ? 99 : R.range(0, NumBanks - 1);
        int64_t A3 = R.range(0, PerBank - 1);
        // Distinct sides only: duplicate keys alias (the later
        // write-back wins, like two upserts of one key), which is
        // well-defined but does not conserve this harness's sum.
        if (B2 == B1 && A2 == A1)
          A2 = (A2 + 1) % PerBank;
        while ((B3 == B1 && A3 == A1) || (B3 == B2 && A3 == A2))
          A3 = (A3 + 1) % PerBank;
        int64_t Pay = R.range(1, 40);
        bool Ok = Ledger.transact3_by_bank_acct(
            B1, A1, B2, A2, B3, A3,
            [&](bool FA, int64_t &BalA, bool FB, int64_t &BalB, bool FC,
                int64_t &BalC) {
              if (!FA || !FB || !FC)
                return false;
              // a pays b and c, capped at a's balance.
              int64_t Moved = Pay < BalA ? Pay : BalA;
              BalA -= Moved;
              BalB += Moved / 2;
              BalC += Moved - Moved / 2;
              return true;
            });
        (Ok ? Committed : Aborted).fetch_add(1,
                                             std::memory_order_relaxed);
      }
    });
  for (std::thread &T : Writers)
    T.join();

  EXPECT_GT(Committed.load(), 0u);
  EXPECT_GT(Aborted.load(), 0u);
  EXPECT_EQ(Ledger.size(), static_cast<size_t>(NumBanks * PerBank));
  int64_t Sum = 0;
  Ledger.all([&](int64_t, int64_t, int64_t Balance) { Sum += Balance; });
  EXPECT_EQ(Sum, Total);
}

} // namespace
