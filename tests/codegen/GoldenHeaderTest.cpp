//===- tests/codegen/GoldenHeaderTest.cpp - golden-header regression -*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the emitted text of the golden specs against the committed
/// reference headers in tests/codegen/golden/expected/.
///
/// The references were captured from the emitter BEFORE the IR/pass
/// refactor (settle_tri, whose `x 3` syntax the old emitter had no
/// spelling for, is pinned to the first IR-pipeline output). The
/// contract:
///
///  - `relc --no-opt` reproduces every reference byte for byte — the
///    lowering + canonicalization passes + CppBackend path is exactly
///    the old emitter, restructured;
///  - the default (optimized) output may differ ONLY by dead-index
///    elimination dropping unreachable support methods, and each
///    intended divergence is asserted here by name;
///  - both variants compile standalone under -Wall -Wextra -Werror.
///
/// An unexplained diff is a regression, not a new baseline: fix the
/// pipeline or — for an intended change — regenerate expected/ with
/// `relc --no-opt` and document the diff in the commit message.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

#ifndef RELC_TOOL_PATH
#error "RELC_TOOL_PATH must be defined by the build"
#endif
#ifndef RELC_SOURCE_DIR
#error "RELC_SOURCE_DIR must be defined by the build"
#endif

const char *const GoldenSpecs[] = {"sched_conc_ns", "sched_conc_state",
                                   "account_tx", "settle_tri"};

std::string goldenDir() {
  return std::string(RELC_SOURCE_DIR) + "/tests/codegen/golden/";
}

std::string uniquePath(const std::string &Suffix) {
  const auto *Info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "relc_golden_" + Info->name() + "_" + Suffix;
}

std::pair<int, std::string> run(const std::string &Cmd) {
  std::string Tmp = uniquePath("out.txt");
  int Rc = std::system((Cmd + " > " + Tmp + " 2>&1").c_str());
  std::ifstream In(Tmp);
  std::stringstream Ss;
  Ss << In.rdbuf();
  return {Rc, Ss.str()};
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "missing " << Path;
  std::stringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

/// Emits `spec` with the given extra flags, returning the header text.
std::string emit(const std::string &Spec, const std::string &Flags) {
  std::string Header = uniquePath(Spec + "_gen.h");
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " " + Flags + " -o " +
                       Header + " " + goldenDir() + Spec + ".relc");
  EXPECT_EQ(Rc, 0) << Out;
  return slurp(Header);
}

size_t countOf(const std::string &Haystack, const std::string &Needle) {
  size_t N = 0;
  for (size_t Pos = Haystack.find(Needle); Pos != std::string::npos;
       Pos = Haystack.find(Needle, Pos + 1))
    ++N;
  return N;
}

/// Point the first divergence at a line, not a byte offset.
void expectTextEqual(const std::string &Expected, const std::string &Actual,
                     const std::string &Label) {
  if (Expected == Actual)
    return;
  std::istringstream E(Expected), A(Actual);
  std::string El, Al;
  unsigned Line = 0;
  while (true) {
    ++Line;
    bool Eok = static_cast<bool>(std::getline(E, El));
    bool Aok = static_cast<bool>(std::getline(A, Al));
    if (!Eok && !Aok)
      break;
    if (El != Al || Eok != Aok) {
      ADD_FAILURE() << Label << ": first divergence at line " << Line
                    << "\n  expected: " << (Eok ? El : "<eof>")
                    << "\n  actual:   " << (Aok ? Al : "<eof>");
      return;
    }
  }
  ADD_FAILURE() << Label << ": texts differ (whitespace only?)";
}

TEST(GoldenHeaderTest, NoOptReproducesPreRefactorHeadersByteForByte) {
  for (const char *Spec : GoldenSpecs) {
    std::string Expected = slurp(goldenDir() + "expected/" + Spec + "_gen.h");
    ASSERT_FALSE(Expected.empty()) << Spec;
    expectTextEqual(Expected, emit(Spec, "--no-opt"), Spec);
  }
}

TEST(GoldenHeaderTest, OptimizedHeadersCompileStandalone) {
  for (const char *Spec : GoldenSpecs) {
    std::string Header = uniquePath(std::string(Spec) + "_gen.h");
    auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " -o " + Header +
                         " " + goldenDir() + Spec + ".relc");
    ASSERT_EQ(Rc, 0) << Out;
    auto [CompileRc, CompileOut] =
        run("c++ -std=c++20 -fsyntax-only -Wall -Wextra -Werror -I " +
            std::string(RELC_SOURCE_DIR) + "/src -include " + Header +
            " -x c++ /dev/null");
    EXPECT_EQ(CompileRc, 0) << Spec << ":\n" << CompileOut;
  }
}

TEST(GoldenHeaderTest, DeadIndexEliminationShrinksAccountTx) {
  // account_tx requests upsert + transaction but no remove: the facade
  // remove_by_owner_acct wrapper exists only as support for the
  // sequential chain and nothing calls it. The optimizer must drop it
  // (the sequential remove_by stays — upsert/transact bodies call it).
  std::string NoOpt = emit("account_tx", "--no-opt");
  std::string Opt = emit("account_tx", "");
  EXPECT_LT(Opt.size(), NoOpt.size());
  EXPECT_EQ(countOf(NoOpt, "bool remove_by_owner_acct("), 2u);
  EXPECT_EQ(countOf(Opt, "bool remove_by_owner_acct("), 1u);
  // The survivor is the sequential one: the facade wrapper's routed
  // body is gone.
  EXPECT_NE(NoOpt.find("remove_by_owner_acct: routed"), std::string::npos);
  EXPECT_EQ(Opt.find("remove_by_owner_acct: routed"), std::string::npos);
}

TEST(GoldenHeaderTest, DeadIndexEliminationShrinksSettleTri) {
  // settle_tri requests ONLY the 3-key transaction: both the facade
  // remove_by and upsert_by wrappers are unreachable support.
  std::string NoOpt = emit("settle_tri", "--no-opt");
  std::string Opt = emit("settle_tri", "");
  EXPECT_LT(Opt.size(), NoOpt.size());
  EXPECT_EQ(countOf(NoOpt, "bool remove_by_bank_acct("), 2u);
  EXPECT_EQ(countOf(Opt, "bool remove_by_bank_acct("), 1u);
  EXPECT_EQ(countOf(NoOpt, "bool upsert_by_bank_acct("), 2u);
  EXPECT_EQ(countOf(Opt, "bool upsert_by_bank_acct("), 1u);
  // The transact itself and its whole sequential support chain stay.
  for (const char *Kept :
       {"transact3_by_bank_acct", "tx_apply3_by_bank_acct",
        "lookup_by_bank_acct", "insert"})
    EXPECT_NE(Opt.find(Kept), std::string::npos) << Kept;
}

TEST(GoldenHeaderTest, FullyRequestedSpecsAreUnchangedByOptimization) {
  // Every method of the sched_conc_* specs is requested or reachable:
  // the optimizer must be an exact no-op on them.
  for (const char *Spec : {"sched_conc_ns", "sched_conc_state"}) {
    std::string NoOpt = emit(Spec, "--no-opt");
    std::string Opt = emit(Spec, "");
    EXPECT_EQ(NoOpt, Opt) << Spec;
  }
}

} // namespace
