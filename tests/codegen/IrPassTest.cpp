//===- tests/codegen/IrPassTest.cpp - IR pass pipeline tests -----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IR-in/IR-out tests for each pass of the relc pipeline: lowering's
/// support closure, MethodDedup, DeadIndexElimination, and
/// LockPlanPrecompute, each observed directly on the ir::Module rather
/// than through emitted text.
///
//===----------------------------------------------------------------------===//

#include "codegen/ir/Lowering.h"
#include "codegen/ir/Passes.h"

#include "codegen/SpecFile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

using namespace relc;
using namespace relc::ir;

namespace {

constexpr const char *SchedulerBase = R"(
relation scheduler(ns, pid, state, cpu)
fd ns, pid -> state, cpu

let w : {ns, pid, state} = unit {cpu}
let y : {ns} = map({pid}, htable, w)
let z : {state} = map({ns, pid}, ilist, w)
let x : {} = join(map({ns}, htable, y), map({state}, vector, z))

class sched
namespace irtest
query all () -> (ns, pid, state, cpu)
query by_state (state) -> (ns, pid)
)";

/// Parses `SchedulerBase` + \p Extra and lowers it. The returned module
/// references the SpecFile, which the caller must keep alive.
SpecFile parseOrDie(const std::string &Extra) {
  SpecFileResult R = parseSpecFile(std::string(SchedulerBase) + Extra);
  EXPECT_TRUE(R.ok()) << R.message();
  return std::move(*R.File);
}

size_t countOps(const Module &M, OpKind K, Layer L) {
  size_t N = 0;
  for (const MethodOp &Op : M.Ops)
    N += Op.Kind == K && Op.Where == L;
  return N;
}

bool logContains(const Module &M, const std::string &Needle) {
  return std::any_of(M.PassLog.begin(), M.PassLog.end(),
                     [&](const std::string &Line) {
                       return Line.find(Needle) != std::string::npos;
                     });
}

//===--------------------------------------------------------------------===//
// Lowering: the support closure
//===--------------------------------------------------------------------===//

TEST(IrLoweringTest, TransactionOnlySpecMaterializesSupportClosure) {
  // `transaction` alone must pull in everything its body calls:
  // the sequential (lookup, upsert) pair, remove, and the facade
  // wrappers — all marked Support so the passes can prune what stays
  // unreachable.
  SpecFile F = parseOrDie("transaction ns, pid\n"
                          "concurrency sharded 4 on ns\n");
  Module M = lowerToIr(*F.Decomp, F.Options);
  ColumnSet Key = F.Spec->catalog().parseSet("ns, pid");

  const MethodOp *Tx = M.find(OpKind::TransactBy, Layer::Facade, Key);
  ASSERT_NE(Tx, nullptr);
  EXPECT_EQ(Tx->Provenance, Origin::Requested);
  EXPECT_EQ(Tx->Arity, 2u);
  EXPECT_EQ(Tx->Name, "transact_by_ns_pid");

  for (OpKind K :
       {OpKind::LookupBy, OpKind::UpsertBy, OpKind::RemoveBy}) {
    const MethodOp *Op = M.find(K, Layer::Sequential, Key);
    ASSERT_NE(Op, nullptr) << int(K);
    EXPECT_EQ(Op->Provenance, Origin::Support) << int(K);
  }
  const MethodOp *FacUpsert = M.find(OpKind::UpsertBy, Layer::Facade, Key);
  ASSERT_NE(FacUpsert, nullptr);
  EXPECT_EQ(FacUpsert->Provenance, Origin::Support);
}

TEST(IrLoweringTest, ArityThreeTransactionNamesAndArity) {
  SpecFile F = parseOrDie("transaction ns, pid x 3\n"
                          "concurrency sharded 4 on ns\n");
  Module M = lowerToIr(*F.Decomp, F.Options);
  ColumnSet Key = F.Spec->catalog().parseSet("ns, pid");
  const MethodOp *Tx = M.find(OpKind::TransactBy, Layer::Facade, Key, 3);
  ASSERT_NE(Tx, nullptr);
  EXPECT_EQ(Tx->Name, "transact3_by_ns_pid");
  EXPECT_EQ(Tx->Arity, 3u);
}

TEST(IrLoweringTest, QueriesCarryPlansAndScansNameTheirCallee) {
  SpecFile F = parseOrDie("concurrency sharded 4 on ns\n");
  Module M = lowerToIr(*F.Decomp, F.Options);
  const MethodOp *SeqQ = M.findByName(Layer::Sequential, "by_state");
  ASSERT_NE(SeqQ, nullptr);
  EXPECT_NE(SeqQ->Plan, nullptr);
  const MethodOp *Scan = M.findByName(Layer::Facade, "by_state_parallel");
  ASSERT_NE(Scan, nullptr);
  EXPECT_EQ(Scan->Kind, OpKind::ParallelScan);
  EXPECT_EQ(Scan->Callee, "by_state");
}

//===--------------------------------------------------------------------===//
// MethodDedup
//===--------------------------------------------------------------------===//

TEST(IrPassTest, MethodDedupMergesRepeatedDirectives) {
  // remove + update + upsert of the same key each lower a sequential
  // RemoveBy; dedup must keep exactly one, and the requested one (the
  // explicit `remove` lowers first) stays requested.
  SpecFile F = parseOrDie("remove ns, pid\nupdate ns, pid\nupsert ns, pid\n");
  Module M = lowerToIr(*F.Decomp, F.Options);
  ColumnSet Key = F.Spec->catalog().parseSet("ns, pid");
  ASSERT_GT(countOps(M, OpKind::RemoveBy, Layer::Sequential), 1u);

  createMethodDedupPass()->run(M);
  EXPECT_EQ(countOps(M, OpKind::RemoveBy, Layer::Sequential), 1u);
  EXPECT_EQ(M.find(OpKind::RemoveBy, Layer::Sequential, Key)->Provenance,
            Origin::Requested);
  EXPECT_TRUE(logContains(M, "method-dedup: merged duplicate"));
}

TEST(IrPassTest, MethodDedupUpgradesSupportSurvivorToRequested) {
  // Hand-built module: the support instance lowers first, then a
  // requested duplicate. The survivor keeps its slot but must become
  // requested — otherwise liveness would prune an explicitly asked-for
  // method.
  Module M;
  MethodOp A;
  A.Kind = OpKind::RemoveBy;
  A.Where = Layer::Sequential;
  A.Provenance = Origin::Support;
  A.Name = "remove_by_k";
  MethodOp B = A;
  B.Provenance = Origin::Requested;
  M.Ops = {A, B};

  EXPECT_TRUE(createMethodDedupPass()->run(M));
  ASSERT_EQ(M.Ops.size(), 1u);
  EXPECT_EQ(M.Ops[0].Provenance, Origin::Requested);
  EXPECT_TRUE(logContains(M, "upgrades survivor to requested"));
}

TEST(IrPassTest, MethodDedupKeepsDistinctAritiesApart) {
  // transact_by_k and transact3_by_k share a key but are different
  // methods; dedup must not merge them.
  SpecFile F = parseOrDie("transaction ns, pid\ntransaction ns, pid x 3\n"
                          "concurrency sharded 4 on ns\n");
  Module M = lowerToIr(*F.Decomp, F.Options);
  createMethodDedupPass()->run(M);
  EXPECT_EQ(countOps(M, OpKind::TransactBy, Layer::Facade), 2u);
}

//===--------------------------------------------------------------------===//
// DeadIndexElimination
//===--------------------------------------------------------------------===//

TEST(IrPassTest, DeadIndexElimPrunesUnreachableFacadeSupport) {
  // Transaction-only: the facade remove/upsert wrappers are support
  // nothing reaches (transact calls the *sequential* methods under its
  // own locks). The sequential chain stays — transact's body needs it.
  SpecFile F = parseOrDie("transaction ns, pid\n"
                          "concurrency sharded 4 on ns\n");
  Module M = lowerToIr(*F.Decomp, F.Options);
  ColumnSet Key = F.Spec->catalog().parseSet("ns, pid");
  createMethodDedupPass()->run(M);
  EXPECT_TRUE(createDeadIndexEliminationPass()->run(M));

  EXPECT_EQ(M.find(OpKind::RemoveBy, Layer::Facade, Key), nullptr);
  EXPECT_EQ(M.find(OpKind::UpsertBy, Layer::Facade, Key), nullptr);
  EXPECT_NE(M.find(OpKind::TransactBy, Layer::Facade, Key), nullptr);
  for (OpKind K : {OpKind::LookupBy, OpKind::UpsertBy, OpKind::RemoveBy})
    EXPECT_NE(M.find(K, Layer::Sequential, Key), nullptr) << int(K);
  EXPECT_TRUE(logContains(M, "dead-index-elim: removed facade"));
}

TEST(IrPassTest, DeadIndexElimKeepsRequestedWrappers) {
  // The same shape with every wrapper explicitly requested: nothing to
  // prune, the pass reports no change.
  SpecFile F = parseOrDie("remove ns, pid\nupsert ns, pid\n"
                          "transaction ns, pid\n"
                          "concurrency sharded 4 on ns\n");
  Module M = lowerToIr(*F.Decomp, F.Options);
  ColumnSet Key = F.Spec->catalog().parseSet("ns, pid");
  createMethodDedupPass()->run(M);
  EXPECT_FALSE(createDeadIndexEliminationPass()->run(M));
  EXPECT_NE(M.find(OpKind::RemoveBy, Layer::Facade, Key), nullptr);
  EXPECT_NE(M.find(OpKind::UpsertBy, Layer::Facade, Key), nullptr);
}

TEST(IrPassTest, NoOptSkipsDeadIndexElimButCanonicalizes) {
  SpecFile F = parseOrDie("transaction ns, pid\n"
                          "concurrency sharded 4 on ns\n");
  Module M = lowerToIr(*F.Decomp, F.Options);
  ColumnSet Key = F.Spec->catalog().parseSet("ns, pid");
  PassManager PM;
  addDefaultPasses(PM);
  PM.run(M, /*RunOptimizations=*/false);

  // Support wrappers survive (byte-compat with the historical
  // emitter), but every op still got deduped and lock-stamped.
  EXPECT_NE(M.find(OpKind::RemoveBy, Layer::Facade, Key), nullptr);
  EXPECT_TRUE(logContains(M, "pipeline: skipped dead-index-elim"));
  for (const MethodOp &Op : M.Ops)
    EXPECT_NE(Op.Lock.Mode, LockPlan::Unset) << Op.Name;
}

//===--------------------------------------------------------------------===//
// LockPlanPrecompute
//===--------------------------------------------------------------------===//

TEST(IrPassTest, LockPlanRoutesKeyedOpsWhenKeyBindsShardColumn) {
  SpecFile F = parseOrDie("remove ns, pid\nupsert ns, pid\n"
                          "concurrency sharded 4 on ns\n");
  Module M = lowerToIr(*F.Decomp, F.Options);
  ColumnSet Key = F.Spec->catalog().parseSet("ns, pid");
  createMethodDedupPass()->run(M);
  createLockPlanPrecomputePass()->run(M);

  const MethodOp *Rm = M.find(OpKind::RemoveBy, Layer::Facade, Key);
  ASSERT_NE(Rm, nullptr);
  EXPECT_EQ(Rm->Lock.Mode, LockPlan::ExclusiveOne);
  EXPECT_TRUE(Rm->Lock.Routed);
  EXPECT_EQ(Rm->Lock.MaxStripes, 1u);

  // Sequential ops carry no locks.
  const MethodOp *SeqRm = M.find(OpKind::RemoveBy, Layer::Sequential, Key);
  ASSERT_NE(SeqRm, nullptr);
  EXPECT_EQ(SeqRm->Lock.Mode, LockPlan::None);
}

TEST(IrPassTest, LockPlanDegradesToAllStripesOffTheShardColumn) {
  // Sharded on state: the {ns, pid} key misses the shard column, so
  // every keyed facade op fans out over all stripes, and the degrade
  // is logged for --dump-ir to surface.
  SpecFile F = parseOrDie("remove ns, pid\ntransaction ns, pid\n"
                          "concurrency sharded 4 on state\n");
  Module M = lowerToIr(*F.Decomp, F.Options);
  ColumnSet Key = F.Spec->catalog().parseSet("ns, pid");
  createMethodDedupPass()->run(M);
  createLockPlanPrecomputePass()->run(M);

  const MethodOp *Rm = M.find(OpKind::RemoveBy, Layer::Facade, Key);
  ASSERT_NE(Rm, nullptr);
  EXPECT_EQ(Rm->Lock.Mode, LockPlan::ExclusiveAll);
  EXPECT_FALSE(Rm->Lock.Routed);
  EXPECT_EQ(Rm->Lock.MaxStripes, 4u);

  const MethodOp *Tx = M.find(OpKind::TransactBy, Layer::Facade, Key);
  ASSERT_NE(Tx, nullptr);
  EXPECT_EQ(Tx->Lock.Mode, LockPlan::ExclusiveAll);
  EXPECT_TRUE(logContains(M, "degrades to all stripes"));
}

TEST(IrPassTest, LockPlanBoundsRoutedTransactByArity) {
  SpecFile F = parseOrDie("transaction ns, pid x 5\n"
                          "concurrency sharded 8 on ns\n");
  Module M = lowerToIr(*F.Decomp, F.Options);
  ColumnSet Key = F.Spec->catalog().parseSet("ns, pid");
  createMethodDedupPass()->run(M);
  createLockPlanPrecomputePass()->run(M);
  const MethodOp *Tx = M.find(OpKind::TransactBy, Layer::Facade, Key, 5);
  ASSERT_NE(Tx, nullptr);
  EXPECT_EQ(Tx->Lock.Mode, LockPlan::ExclusiveSet);
  EXPECT_TRUE(Tx->Lock.Routed);
  EXPECT_EQ(Tx->Lock.MaxStripes, 5u);
}

TEST(IrPassTest, LockPlanErasesParallelScanOverRoutedQuery) {
  // Sharded on state: by_state binds the shard column, so its scan
  // would fan out for a single-shard read — erased. The full-scan
  // query `all` keeps its parallel variant.
  SpecFile F = parseOrDie("concurrency sharded 4 on state\n");
  Module M = lowerToIr(*F.Decomp, F.Options);
  ASSERT_NE(M.findByName(Layer::Facade, "by_state_parallel"), nullptr);

  createLockPlanPrecomputePass()->run(M);
  EXPECT_EQ(M.findByName(Layer::Facade, "by_state_parallel"), nullptr);
  EXPECT_TRUE(logContains(M, "lock-plan: erased by_state_parallel"));

  const MethodOp *All = M.findByName(Layer::Facade, "all_parallel");
  ASSERT_NE(All, nullptr);
  EXPECT_EQ(All->Lock.Mode, LockPlan::SharedEach);
  EXPECT_EQ(All->Lock.MaxStripes, 4u);

  // The routed base query itself is a single-stripe read.
  const MethodOp *Q = M.findByName(Layer::Facade, "by_state");
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Q->Lock.Mode, LockPlan::SharedOne);
  EXPECT_TRUE(Q->Lock.Routed);
}

} // namespace
