//===- tests/codegen/RelcToolTest.cpp - relc CLI integration -----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the `relc` command-line compiler as a subprocess: check /
/// print / dot / emit modes, error reporting, and an end-to-end
/// compile of its output with the host compiler.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef RELC_TOOL_PATH
#error "RELC_TOOL_PATH must be defined by the build"
#endif
#ifndef RELC_SOURCE_DIR
#error "RELC_SOURCE_DIR must be defined by the build"
#endif

constexpr const char *SchedulerInput = R"(
relation scheduler(ns, pid, state, cpu)
fd ns, pid -> state, cpu

let w : {ns, pid, state} = unit {cpu}
let y : {ns} = map({pid}, htable, w)
let z : {state} = map({ns, pid}, ilist, w)
let x : {} = join(map({ns}, htable, y), map({state}, vector, z))

class sched
namespace toolgen
query by_state (state) -> (ns, pid)
remove ns, pid
update ns, pid
)";

/// A per-test unique file path (ctest runs these in parallel; fixed
/// names would collide).
std::string uniquePath(const std::string &Suffix) {
  const auto *Info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "relc_" + Info->name() + "_" + Suffix;
}

/// Runs a shell command, returning (exit code, combined output).
std::pair<int, std::string> run(const std::string &Cmd) {
  std::string Tmp = uniquePath("out.txt");
  int Rc = std::system((Cmd + " > " + Tmp + " 2>&1").c_str());
  std::ifstream In(Tmp);
  std::stringstream Ss;
  Ss << In.rdbuf();
  return {Rc, Ss.str()};
}

std::string writeInput(const char *Name, const std::string &Text) {
  std::string Path = uniquePath(Name);
  std::ofstream Out(Path);
  Out << Text;
  return Path;
}

TEST(RelcToolTest, CheckModeAcceptsValidInput) {
  std::string In = writeInput("sched.relc", SchedulerInput);
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " --check " + In);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("adequate"), std::string::npos) << Out;
}

TEST(RelcToolTest, PrintModeEchoesLetLanguage) {
  std::string In = writeInput("sched.relc", SchedulerInput);
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " --print " + In);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("let w : {ns, pid, state} = unit {cpu}"),
            std::string::npos)
      << Out;
}

TEST(RelcToolTest, DotModeEmitsGraphviz) {
  std::string In = writeInput("sched.relc", SchedulerInput);
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " --dot " + In);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("digraph"), std::string::npos);
}

TEST(RelcToolTest, EmittedHeaderCompiles) {
  std::string In = writeInput("sched.relc", SchedulerInput);
  std::string Header = uniquePath("sched_gen.h");
  auto [Rc, Out] =
      run(std::string(RELC_TOOL_PATH) + " -o " + Header + " " + In);
  ASSERT_EQ(Rc, 0) << Out;
  auto [CompileRc, CompileOut] =
      run("c++ -std=c++20 -fsyntax-only -I " +
          std::string(RELC_SOURCE_DIR) + "/src -include " + Header +
          " -x c++ /dev/null");
  EXPECT_EQ(CompileRc, 0) << CompileOut;
}

TEST(RelcToolTest, ConcurrencyDirectiveEmitsCompilableFacade) {
  // The golden concurrent spec (tests/codegen/golden/ holds the ones
  // the build compiles for GeneratedConcurrentTest): the directive
  // must produce the facade class and the whole header must compile.
  std::string Text = std::string(SchedulerInput) +
                     "upsert ns, pid\nconcurrency sharded 4 on ns\n";
  std::string In = writeInput("conc.relc", Text);
  std::string Header = uniquePath("conc_gen.h");
  auto [Rc, Out] =
      run(std::string(RELC_TOOL_PATH) + " -o " + Header + " " + In);
  ASSERT_EQ(Rc, 0) << Out;

  std::ifstream HeaderIn(Header);
  std::stringstream Ss;
  Ss << HeaderIn.rdbuf();
  std::string Code = Ss.str();
  EXPECT_NE(Code.find("class sched_concurrent"), std::string::npos);
  EXPECT_NE(Code.find("upsert_by_ns_pid"), std::string::npos);
  EXPECT_NE(Code.find("by_state_parallel"), std::string::npos);

  auto [CompileRc, CompileOut] =
      run("c++ -std=c++20 -fsyntax-only -I " +
          std::string(RELC_SOURCE_DIR) + "/src -include " + Header +
          " -x c++ /dev/null");
  EXPECT_EQ(CompileRc, 0) << CompileOut;
}

TEST(RelcToolTest, ShardsFlagOverridesDirective) {
  // --shards enables the facade without a directive in the file.
  std::string In = writeInput("sched.relc", SchedulerInput);
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) +
                       " --shards 2 --shard-column state " + In);
  ASSERT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("class sched_concurrent"), std::string::npos);
  EXPECT_NE(Out.find("NumShards = 2"), std::string::npos);

  auto [Rc2, Out2] = run(std::string(RELC_TOOL_PATH) + " " + In);
  ASSERT_EQ(Rc2, 0);
  EXPECT_EQ(Out2.find("sched_concurrent"), std::string::npos);
}

TEST(RelcToolTest, ShardsZeroSuppressesDirectiveFacade) {
  std::string Text =
      std::string(SchedulerInput) + "concurrency sharded 8\n";
  std::string In = writeInput("conc.relc", Text);
  auto [Rc, Out] =
      run(std::string(RELC_TOOL_PATH) + " --shards 0 " + In);
  ASSERT_EQ(Rc, 0) << Out;
  EXPECT_EQ(Out.find("sched_concurrent"), std::string::npos);
}

TEST(RelcToolTest, ShardsFlagRejectsNonNumericValues) {
  std::string In = writeInput("sched.relc", SchedulerInput);
  for (const char *Bad : {"four", "4x", "-1", "5000"}) {
    auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " --shards " +
                         Bad + " " + In);
    EXPECT_NE(Rc, 0) << Bad;
    EXPECT_NE(Out.find("--shards"), std::string::npos) << Out;
  }
}

TEST(RelcToolTest, ShardColumnFlagRejectsUnknownColumn) {
  std::string In = writeInput("sched.relc", SchedulerInput);
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) +
                       " --shards 2 --shard-column bogus " + In);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find("not a column"), std::string::npos) << Out;
}

TEST(RelcToolTest, ShardColumnWithoutFacadeIsAnError) {
  // Without --shards or a `concurrency` directive the flag would be a
  // silent no-op; it must be rejected instead.
  std::string In = writeInput("sched.relc", SchedulerInput);
  auto [Rc, Out] =
      run(std::string(RELC_TOOL_PATH) + " --shard-column ns " + In);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find("requires a facade"), std::string::npos) << Out;
}

TEST(RelcToolTest, TransactionDirectiveEmitsCompilableTransact) {
  std::string Text = std::string(SchedulerInput) +
                     "transaction ns, pid\nconcurrency sharded 4 on ns\n";
  std::string In = writeInput("tx.relc", Text);
  std::string Header = uniquePath("tx_gen.h");
  auto [Rc, Out] =
      run(std::string(RELC_TOOL_PATH) + " -o " + Header + " " + In);
  ASSERT_EQ(Rc, 0) << Out;

  std::ifstream HeaderIn(Header);
  std::stringstream Ss;
  Ss << HeaderIn.rdbuf();
  std::string Code = Ss.str();
  EXPECT_NE(Code.find("transact_by_ns_pid"), std::string::npos);
  EXPECT_NE(Code.find("tx_apply_by_ns_pid"), std::string::npos);

  auto [CompileRc, CompileOut] =
      run("c++ -std=c++20 -fsyntax-only -I " +
          std::string(RELC_SOURCE_DIR) + "/src -include " + Header +
          " -x c++ /dev/null");
  EXPECT_EQ(CompileRc, 0) << CompileOut;
}

TEST(RelcToolTest, TransactionOnlyKeyEmitsCompilableHeader) {
  // Regression: a key that appears ONLY in a `transaction` directive
  // (no upsert/update/remove for it) must still pull in its whole
  // supporting chain — transact_by_ calls upsert_by_ calls
  // remove_by_ — or the emitted header does not compile.
  const char *TxOnly = R"(
relation account(owner, acct, balance)
fd owner, acct -> balance

let u : {owner, acct} = unit {balance}
let y : {owner} = map({acct}, htable, u)
let x : {} = map({owner}, htable, y)

class acct
namespace toolgen
query all () -> (owner, acct, balance)
transaction owner, acct
concurrency sharded 4 on owner
)";
  std::string In = writeInput("txonly.relc", TxOnly);
  std::string Header = uniquePath("txonly_gen.h");
  auto [Rc, Out] =
      run(std::string(RELC_TOOL_PATH) + " -o " + Header + " " + In);
  ASSERT_EQ(Rc, 0) << Out;
  auto [CompileRc, CompileOut] =
      run("c++ -std=c++20 -fsyntax-only -I " +
          std::string(RELC_SOURCE_DIR) + "/src -include " + Header +
          " -x c++ /dev/null");
  EXPECT_EQ(CompileRc, 0) << CompileOut;
}

TEST(RelcToolTest, TransactionWithoutFacadeIsAnError) {
  // transact_by_* lives on the facade: a spec asking for transactions
  // without a `concurrency` directive (and no --shards) must be
  // rejected with a clear diagnostic, not silently dropped.
  std::string Text = std::string(SchedulerInput) + "transaction ns, pid\n";
  std::string In = writeInput("tx.relc", Text);
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " " + In);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find("requires a concurrent facade"), std::string::npos)
      << Out;

  // --shards N supplies the facade and un-blocks the same spec.
  auto [Rc2, Out2] =
      run(std::string(RELC_TOOL_PATH) + " --shards 2 " + In);
  EXPECT_EQ(Rc2, 0) << Out2;
  EXPECT_NE(Out2.find("transact_by_ns_pid"), std::string::npos);
}

TEST(RelcToolTest, ShardsZeroRejectedWhenTransactionsPresent) {
  // --shards 0 strips the facade the `transaction` directive needs:
  // an error, not a header that silently lost its transact method.
  std::string Text = std::string(SchedulerInput) +
                     "transaction ns, pid\nconcurrency sharded 4\n";
  std::string In = writeInput("tx.relc", Text);
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " --shards 0 " + In);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find("requires a concurrent facade"), std::string::npos)
      << Out;
}

TEST(RelcToolTest, RejectsInadequateDecomposition) {
  // Drop the FD: Fig. 2's shape is no longer adequate.
  std::string Bad = SchedulerInput;
  size_t FdPos = Bad.find("fd ns, pid -> state, cpu");
  ASSERT_NE(FdPos, std::string::npos);
  Bad.erase(FdPos, std::string("fd ns, pid -> state, cpu").size());
  // Without the key FD, `remove ns, pid` also stops being a key, so
  // strip the remove/update lines to isolate the adequacy error.
  auto strip = [&](const char *Line) {
    size_t P = Bad.find(Line);
    ASSERT_NE(P, std::string::npos);
    Bad.erase(P, std::string(Line).size());
  };
  strip("remove ns, pid");
  strip("update ns, pid");

  std::string In = writeInput("bad.relc", Bad);
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " --check " + In);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find("not adequate"), std::string::npos) << Out;
}

TEST(RelcToolTest, ReportsParseErrorsWithLineAndColumn) {
  // Diagnostics use the FILE:LINE:COL: shape editors and CI
  // annotators parse.
  std::string In = writeInput("broken.relc", "relation r(a)\nbogus line\n");
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " --check " + In);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find(In + ":2:1: error:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("bogus"), std::string::npos) << Out;
}

TEST(RelcToolTest, PositionlessErrorsOmitLineAndColumn) {
  std::string In = writeInput("norel.relc", "# only a comment\n");
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " --check " + In);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find(In + ": error:"), std::string::npos) << Out;
  EXPECT_EQ(Out.find(":0:"), std::string::npos) << Out;
}

TEST(RelcToolTest, MalformedTransactionDirectiveIsPositioned) {
  // The payload (not column 1) anchors the diagnostic; line 15 is the
  // appended directive (SchedulerInput opens with a newline and ends
  // with one).
  std::string Text = std::string(SchedulerInput) + "transaction ns, pid 3\n";
  std::string In = writeInput("badtx.relc", Text);
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " --check " + In);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find(In + ":15:13: error:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("transaction"), std::string::npos) << Out;
}

TEST(RelcToolTest, TransactionArityOutOfRangeIsRejected) {
  std::string Text =
      std::string(SchedulerInput) + "transaction ns, pid x 99\n";
  std::string In = writeInput("badarity.relc", Text);
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " --check " + In);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find("arity must be in [2, 8]"), std::string::npos) << Out;
}

TEST(RelcToolTest, MalformedConcurrencyDirectiveIsPositioned) {
  std::string Text =
      std::string(SchedulerInput) + "concurrency sharded 4 off ns\n";
  std::string In = writeInput("badconc.relc", Text);
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " --check " + In);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find(In + ":15:13: error:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("concurrency"), std::string::npos) << Out;
}

TEST(RelcToolTest, UnknownShardColumnIsPositionedAtTheName) {
  std::string Text =
      std::string(SchedulerInput) + "concurrency sharded 4 on bogus\n";
  std::string In = writeInput("badcol.relc", Text);
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " --check " + In);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find(In + ":15:26: error:"), std::string::npos) << Out;
  EXPECT_NE(Out.find("unknown shard column"), std::string::npos) << Out;
}

TEST(RelcToolTest, DumpIrPrintsModuleAndPassLog) {
  std::string Text = std::string(SchedulerInput) +
                     "transaction ns, pid\nconcurrency sharded 4 on ns\n";
  std::string In = writeInput("ir.relc", Text);
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " --dump-ir " + In);
  ASSERT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("module sched"), std::string::npos) << Out;
  EXPECT_NE(Out.find("shards: 4 on ns"), std::string::npos) << Out;
  EXPECT_NE(Out.find("fac transact transact_by_ns_pid"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("lock=exclusive(set)"), std::string::npos) << Out;
  EXPECT_NE(Out.find("passes:"), std::string::npos) << Out;
  // No C++ in an IR dump.
  EXPECT_EQ(Out.find("#include"), std::string::npos) << Out;
}

TEST(RelcToolTest, NoOptSkipsDeadIndexElimination) {
  std::string Text = std::string(SchedulerInput) +
                     "transaction ns, pid\nconcurrency sharded 4 on ns\n";
  std::string In = writeInput("noopt.relc", Text);
  auto [Rc, Out] =
      run(std::string(RELC_TOOL_PATH) + " --dump-ir --no-opt " + In);
  ASSERT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("skipped dead-index-elim (--no-opt)"),
            std::string::npos)
      << Out;
}

TEST(RelcToolTest, UnknownBackendIsRejected) {
  std::string In = writeInput("sched.relc", SchedulerInput);
  auto [Rc, Out] =
      run(std::string(RELC_TOOL_PATH) + " --backend fortran " + In);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find("unknown backend 'fortran'"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("cpp"), std::string::npos) << Out;
}

TEST(RelcToolTest, MissingFileFails) {
  auto [Rc, Out] =
      run(std::string(RELC_TOOL_PATH) + " /nonexistent/file.relc");
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find("cannot open"), std::string::npos) << Out;
}

TEST(RelcToolTest, UsageOnBadFlags) {
  auto [Rc, Out] = run(std::string(RELC_TOOL_PATH) + " --frobnicate x");
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find("usage"), std::string::npos) << Out;
}

} // namespace
