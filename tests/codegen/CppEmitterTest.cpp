//===- tests/codegen/CppEmitterTest.cpp - RELC codegen tests -----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the RELC code generator (Section 6): structural checks on the
/// emitted text, plus the end-to-end integration test the paper's
/// deliverable implies — the generated header is compiled with the host
/// C++ compiler against the ds/ container library, driven through a
/// scripted scenario, and its behaviour checked against expectations
/// computed with the dynamic engine.
///
//===----------------------------------------------------------------------===//

#include "codegen/Compiler.h"

#include "decomp/Builder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace relc;

namespace {

#ifndef RELC_SOURCE_DIR
#error "RELC_SOURCE_DIR must be defined by the build"
#endif

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

Decomposition fig2(const RelSpecRef &Spec, bool Intrusive) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode(
      "y", "ns",
      B.map("pid", Intrusive ? DsKind::ITree : DsKind::HashTable, W));
  NodeId Z = B.addNode(
      "z", "state",
      B.map("ns, pid", Intrusive ? DsKind::IList : DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  return B.build();
}

EmitterOptions schedulerOptions(const RelSpecRef &Spec) {
  const Catalog &Cat = Spec->catalog();
  EmitterOptions Opts;
  Opts.ClassName = "scheduler_relation";
  Opts.Queries = {
      {"query_by_ns_pid", Cat.parseSet("ns, pid"), Cat.parseSet("state, cpu")},
      {"query_cpu", Cat.parseSet("ns, pid"), Cat.parseSet("cpu")},
      {"query_by_state", Cat.parseSet("state"), Cat.parseSet("ns, pid")},
      {"query_by_ns", Cat.parseSet("ns"), Cat.parseSet("pid")},
      {"query_all", ColumnSet(), Cat.allColumns()},
  };
  Opts.RemoveKeys = {Cat.parseSet("ns, pid")};
  Opts.UpdateKeys = {Cat.parseSet("ns, pid")};
  return Opts;
}

TEST(CppEmitterTest, EmitsWellFormedHeaderText) {
  RelSpecRef Spec = schedulerSpec();
  std::string Code = emitCpp(fig2(Spec, false), schedulerOptions(Spec));

  // Class skeleton and the relational interface.
  EXPECT_NE(Code.find("class scheduler_relation"), std::string::npos);
  EXPECT_NE(Code.find("bool insert(int64_t v_ns, int64_t v_pid, "
                      "int64_t v_state, int64_t v_cpu)"),
            std::string::npos);
  EXPECT_NE(Code.find("query_by_ns_pid"), std::string::npos);
  EXPECT_NE(Code.find("remove_by_ns_pid"), std::string::npos);
  EXPECT_NE(Code.find("update_by_ns_pid"), std::string::npos);

  // One node struct per decomposition node.
  for (const char *N : {"Node_w", "Node_y", "Node_z", "Node_x"})
    EXPECT_NE(Code.find(std::string("struct ") + N), std::string::npos) << N;

  // The chosen containers appear.
  EXPECT_NE(Code.find("relc::HashMap<"), std::string::npos);
  EXPECT_NE(Code.find("relc::DListMap<"), std::string::npos);
  EXPECT_NE(Code.find("relc::VectorMap<"), std::string::npos);

  // The cpu-only key probe specializes to pure lookups (the paper's
  // q_cpu); the state-including probe legitimately scans the two-entry
  // state vector on the right of the join.
  size_t QPos = Code.find("query_cpu: plan ");
  ASSERT_NE(QPos, std::string::npos);
  std::string PlanLine = Code.substr(QPos, Code.find('\n', QPos) - QPos);
  EXPECT_EQ(PlanLine.find("qscan"), std::string::npos) << PlanLine;
}

TEST(CppEmitterTest, IntrusiveVariantEmitsHooks) {
  RelSpecRef Spec = schedulerSpec();
  std::string Code = emitCpp(fig2(Spec, true), schedulerOptions(Spec));
  EXPECT_NE(Code.find("relc::MapHook<Node_w"), std::string::npos);
  EXPECT_NE(Code.find("relc::IntrusiveAvl<"), std::string::npos);
  EXPECT_NE(Code.find("relc::IntrusiveList<"), std::string::npos);
  EXPECT_NE(Code.find(".eraseNode("), std::string::npos);
}

TEST(CppEmitterTest, HeaderGuardFromClassName) {
  RelSpecRef Spec = schedulerSpec();
  EmitterOptions Opts = schedulerOptions(Spec);
  Opts.ClassName = "my_rel";
  std::string Code = emitCpp(fig2(Spec, false), Opts);
  EXPECT_NE(Code.find("#ifndef RELCGEN_MY_REL_H"), std::string::npos);
}

/// The paper's scripted walkthrough (Section 2) plus churn, as a driver
/// program against the generated class. Prints one line per check;
/// exits non-zero on mismatch.
constexpr const char *DriverMain = R"cpp(
#include "generated_relation.h"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>

static int Failures = 0;
#define CHECK(Cond)                                                           \
  do {                                                                        \
    if (!(Cond)) {                                                            \
      std::fprintf(stderr, "FAILED: %s (line %d)\n", #Cond, __LINE__);        \
      ++Failures;                                                             \
    }                                                                         \
  } while (0)

int main() {
  relcgen::scheduler_relation R;
  CHECK(R.empty());

  // Section 2 walkthrough.
  CHECK(R.insert(7, 42, 1, 0));
  CHECK(!R.insert(7, 42, 1, 0)); // duplicate
  CHECK(R.size() == 1);

  std::set<std::pair<long long, long long>> Running;
  R.query_by_state(1, [&](int64_t Ns, int64_t Pid) {
    Running.insert({Ns, Pid});
  });
  CHECK(Running.size() == 1 && Running.count({7, 42}));

  int Hits = 0;
  R.query_by_ns_pid(7, 42, [&](int64_t State, int64_t Cpu) {
    CHECK(State == 1 && Cpu == 0);
    ++Hits;
  });
  CHECK(Hits == 1);

  CHECK(R.update_by_ns_pid(7, 42, /*state=*/0, /*cpu=*/5));
  Hits = 0;
  R.query_by_ns_pid(7, 42, [&](int64_t State, int64_t Cpu) {
    CHECK(State == 0 && Cpu == 5);
    ++Hits;
  });
  CHECK(Hits == 1);
  CHECK(!R.update_by_ns_pid(9, 9, 0, 0)); // absent key

  CHECK(R.remove_by_ns_pid(7, 42));
  CHECK(!R.remove_by_ns_pid(7, 42));
  CHECK(R.empty());

  // Churn: 60 processes over 3 namespaces, remove namespace 0's by key,
  // flip half the states, verify by enumeration.
  for (int64_t P = 0; P < 60; ++P)
    CHECK(R.insert(P % 3, P, P % 2, P * 10));
  CHECK(R.size() == 60);
  for (int64_t P = 0; P < 60; P += 3)
    CHECK(R.remove_by_ns_pid(0, P));
  CHECK(R.size() == 40);

  for (int64_t P = 1; P < 60; P += 3)
    CHECK(R.update_by_ns_pid(1, P, /*state=*/1, /*cpu=*/-P));

  size_t CountRunning = 0;
  R.query_by_state(1, [&](int64_t, int64_t) { ++CountRunning; });
  // Running now: all of namespace 1 (20) plus odd pids of namespace 2.
  size_t Want = 0;
  for (int64_t P = 0; P < 60; ++P) {
    if (P % 3 == 0)
      continue;
    bool RunningState = (P % 3 == 1) ? true : (P % 2 == 1);
    if (RunningState)
      ++Want;
  }
  CHECK(CountRunning == Want);

  // Namespace enumeration.
  size_t Ns2 = 0;
  R.query_by_ns(2, [&](int64_t) { ++Ns2; });
  CHECK(Ns2 == 20);

  // Full enumeration agrees with size().
  size_t All = 0;
  R.query_all([&](int64_t, int64_t, int64_t, int64_t) { ++All; });
  CHECK(All == R.size());

  // clear() resets.
  R.clear();
  CHECK(R.empty());
  CHECK(R.insert(1, 1, 0, 0));
  CHECK(R.size() == 1);

  if (Failures) {
    std::fprintf(stderr, "%d checks failed\n", Failures);
    return 1;
  }
  std::printf("all checks passed\n");
  return 0;
}
)cpp";

/// Compiles and runs the generated header with the host compiler.
void compileAndRun(const std::string &Code, const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "relc_codegen_" + Tag;
  ASSERT_EQ(std::system(("mkdir -p " + Dir).c_str()), 0);
  {
    std::ofstream Header(Dir + "/generated_relation.h");
    Header << Code;
    std::ofstream Main(Dir + "/main.cpp");
    Main << DriverMain;
  }
  std::string Binary = Dir + "/driver";
  std::string Compile = "c++ -std=c++20 -Wall -Wextra -Werror -I " +
                        std::string(RELC_SOURCE_DIR) + "/src -I " + Dir +
                        " " + Dir + "/main.cpp -o " + Binary + " 2> " + Dir +
                        "/compile.log";
  int CompileRc = std::system(Compile.c_str());
  if (CompileRc != 0) {
    std::ifstream Log(Dir + "/compile.log");
    std::stringstream Ss;
    Ss << Log.rdbuf();
    FAIL() << "generated code failed to compile:\n" << Ss.str();
  }
  int RunRc = std::system((Binary + " > " + Dir + "/run.log 2>&1").c_str());
  if (RunRc != 0) {
    std::ifstream Log(Dir + "/run.log");
    std::stringstream Ss;
    Ss << Log.rdbuf();
    FAIL() << "generated driver failed:\n" << Ss.str();
  }
}

TEST(CppEmitterIntegrationTest, NonIntrusiveFig2CompilesAndRuns) {
  RelSpecRef Spec = schedulerSpec();
  compileAndRun(emitCpp(fig2(Spec, false), schedulerOptions(Spec)),
                "fig2");
}

TEST(CppEmitterIntegrationTest, IntrusiveFig2CompilesAndRuns) {
  RelSpecRef Spec = schedulerSpec();
  compileAndRun(emitCpp(fig2(Spec, true), schedulerOptions(Spec)),
                "fig2i");
}

TEST(CppEmitterIntegrationTest, FlatBtreeCompilesAndRuns) {
  // A completely different decomposition behind the same interface: one
  // btree keyed by the full key.
  RelSpecRef Spec = schedulerSpec();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid", B.unit("state, cpu"));
  B.addNode("x", "", B.map("ns, pid", DsKind::Btree, W));
  compileAndRun(emitCpp(B.build(), schedulerOptions(Spec)), "flat");
}

} // namespace
