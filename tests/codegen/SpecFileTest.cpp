//===- tests/codegen/SpecFileTest.cpp - relc input file tests ----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "codegen/SpecFile.h"

#include "codegen/Compiler.h"
#include "decomp/Adequacy.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

constexpr const char *SchedulerFile = R"(
# The paper's scheduler.
relation scheduler(ns, pid, state, cpu)
fd ns, pid -> state, cpu

let w : {ns, pid, state} = unit {cpu}
let y : {ns} = map({pid}, htable, w)
let z : {state} = map({ns, pid}, ilist, w)
let x : {} = join(map({ns}, htable, y), map({state}, vector, z))

class scheduler_relation
namespace mygen
query query_by_state (state) -> (ns, pid)
query query_cpu (ns, pid) -> (cpu)
remove ns, pid
update ns, pid
)";

TEST(SpecFileTest, ParsesSchedulerFile) {
  SpecFileResult R = parseSpecFile(SchedulerFile);
  ASSERT_TRUE(R.ok()) << R.Error;
  const SpecFile &F = *R.File;

  EXPECT_EQ(F.Spec->name(), "scheduler");
  EXPECT_EQ(F.Spec->arity(), 4u);
  EXPECT_TRUE(F.Spec->fds().isKey(F.Spec->catalog().parseSet("ns, pid"),
                                  F.Spec->columns()));

  ASSERT_TRUE(F.Decomp.has_value());
  EXPECT_EQ(F.Decomp->numNodes(), 4u);
  EXPECT_TRUE(checkAdequacy(*F.Decomp).Ok);

  EXPECT_EQ(F.Options.ClassName, "scheduler_relation");
  EXPECT_EQ(F.Options.Namespace, "mygen");
  ASSERT_EQ(F.Options.Queries.size(), 2u);
  EXPECT_EQ(F.Options.Queries[0].Name, "query_by_state");
  EXPECT_EQ(F.Options.Queries[0].InputCols,
            F.Spec->catalog().parseSet("state"));
  EXPECT_EQ(F.Options.Queries[1].OutputCols,
            F.Spec->catalog().parseSet("cpu"));
  ASSERT_EQ(F.Options.RemoveKeys.size(), 1u);
  ASSERT_EQ(F.Options.UpdateKeys.size(), 1u);
}

TEST(SpecFileTest, ParsedFileFeedsEmitter) {
  SpecFileResult R = parseSpecFile(SchedulerFile);
  ASSERT_TRUE(R.ok()) << R.Error;
  std::string Code = emitCpp(*R.File->Decomp, R.File->Options);
  EXPECT_NE(Code.find("namespace mygen"), std::string::npos);
  EXPECT_NE(Code.find("class scheduler_relation"), std::string::npos);
  EXPECT_NE(Code.find("query_by_state"), std::string::npos);
}

TEST(SpecFileTest, QueryWithEmptyInputs) {
  std::string Text = std::string(SchedulerFile) +
                     "query query_all () -> (ns, pid, state, cpu)\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.File->Options.Queries.back().InputCols, ColumnSet());
  EXPECT_EQ(R.File->Options.Queries.back().OutputCols,
            R.File->Spec->columns());
}

TEST(SpecFileTest, ErrorMissingRelation) {
  SpecFileResult R = parseSpecFile("let x : {} = unit {}\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("relation"), std::string::npos);
}

TEST(SpecFileTest, ErrorMissingDecomposition) {
  SpecFileResult R = parseSpecFile("relation r(a, b)\nfd a -> b\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("let"), std::string::npos);
}

TEST(SpecFileTest, ErrorUnknownDirective) {
  SpecFileResult R = parseSpecFile("relation r(a)\nfrobnicate a\n");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Line, 2u);
  EXPECT_EQ(R.Col, 1u);
  EXPECT_NE(R.Error.find("frobnicate"), std::string::npos);
  // message() folds the position back in for callers that print one
  // string.
  EXPECT_NE(R.message().find("line 2, col 1"), std::string::npos);
}

TEST(SpecFileTest, ErrorBadFd) {
  SpecFileResult R = parseSpecFile("relation r(a, b)\n"
                                   "fd a b\n"
                                   "let l : {a} = unit {b}\n"
                                   "let x : {} = map({a}, htable, l)\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("->"), std::string::npos);
}

TEST(SpecFileTest, ErrorUnknownColumnInQuery) {
  std::string Text =
      std::string(SchedulerFile) + "query q (bogus) -> (cpu)\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unknown column"), std::string::npos);
}

TEST(SpecFileTest, ErrorNonKeyRemove) {
  std::string Text = std::string(SchedulerFile) + "remove ns\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("not a key"), std::string::npos);
}

TEST(SpecFileTest, ErrorDecompositionParseErrorsSurface) {
  SpecFileResult R = parseSpecFile("relation r(a, b)\n"
                                   "fd a -> b\n"
                                   "let l : {a} = unit {zzz}\n"
                                   "let x : {} = map({a}, htable, l)\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("decomposition"), std::string::npos);
}

TEST(SpecFileTest, ParsesUpsertAndConcurrencyDirectives) {
  std::string Text = std::string(SchedulerFile) +
                     "upsert ns, pid\nconcurrency sharded 8 on state\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.File->Options.UpsertKeys.size(), 1u);
  EXPECT_EQ(R.File->Options.UpsertKeys[0],
            R.File->Spec->catalog().parseSet("ns, pid"));
  EXPECT_EQ(R.File->Options.ConcurrentShards, 8u);
  ASSERT_TRUE(R.File->Options.ConcurrentShardColumn.has_value());
  EXPECT_EQ(*R.File->Options.ConcurrentShardColumn,
            R.File->Spec->catalog().get("state"));
}

TEST(SpecFileTest, ConcurrencyDefaultShardColumn) {
  std::string Text =
      std::string(SchedulerFile) + "concurrency sharded 4\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.File->Options.ConcurrentShards, 4u);
  EXPECT_FALSE(R.File->Options.ConcurrentShardColumn.has_value());
}

TEST(SpecFileTest, ConcurrencyDirectiveFeedsEmitter) {
  std::string Text = std::string(SchedulerFile) +
                     "upsert ns, pid\nconcurrency sharded 4 on ns\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  std::string Code = emitCpp(*R.File->Decomp, R.File->Options);
  EXPECT_NE(Code.find("class scheduler_relation_concurrent"),
            std::string::npos);
  EXPECT_NE(Code.find("NumShards = 4"), std::string::npos);
  EXPECT_NE(Code.find("upsert_by_ns_pid"), std::string::npos);
  EXPECT_NE(Code.find("lookup_by_ns_pid"), std::string::npos);
  // The fan-out query gets a parallel variant; the routed one (by cpu
  // inputs that bind ns) would not.
  EXPECT_NE(Code.find("query_by_state_parallel"), std::string::npos);
  EXPECT_EQ(Code.find("query_cpu_parallel"), std::string::npos);
}

TEST(SpecFileTest, RepeatedMethodDirectivesEmitOnce) {
  // Duplicate remove/update/upsert directives must not emit duplicate
  // (un-overloadable) member functions.
  std::string Text = std::string(SchedulerFile) +
                     "remove ns, pid\nupdate ns, pid\nupsert ns, pid\n"
                     "upsert ns, pid\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  std::string Code = emitCpp(*R.File->Decomp, R.File->Options);
  auto countOf = [&](const char *Needle) {
    size_t N = 0;
    for (size_t Pos = Code.find(Needle); Pos != std::string::npos;
         Pos = Code.find(Needle, Pos + 1))
      ++N;
    return N;
  };
  EXPECT_EQ(countOf("bool remove_by_ns_pid("), 1u);
  EXPECT_EQ(countOf("bool update_by_ns_pid("), 1u);
  EXPECT_EQ(countOf("bool upsert_by_ns_pid("), 1u);
}

TEST(SpecFileTest, LaterConcurrencyDirectiveWinsOutright) {
  // A bare re-declaration must not inherit the earlier `on` clause.
  std::string Text = std::string(SchedulerFile) +
                     "concurrency sharded 8 on state\n"
                     "concurrency sharded 4\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.File->Options.ConcurrentShards, 4u);
  EXPECT_FALSE(R.File->Options.ConcurrentShardColumn.has_value());
}

TEST(SpecFileTest, ErrorNonKeyUpsert) {
  std::string Text = std::string(SchedulerFile) + "upsert state\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("not a key"), std::string::npos);
}

TEST(SpecFileTest, ErrorMalformedConcurrency) {
  for (const char *Line :
       {"concurrency 4\n", "concurrency sharded\n",
        "concurrency sharded 4 off ns\n"}) {
    SpecFileResult R = parseSpecFile(std::string(SchedulerFile) + Line);
    EXPECT_FALSE(R.ok()) << Line;
  }
}

TEST(SpecFileTest, ErrorShardCountOutOfRangeNamesTheCap) {
  // Syntactically fine, semantically out of range: the diagnostic
  // must name the cap, not claim the grammar is wrong.
  for (const char *Line :
       {"concurrency sharded 8192\n", "concurrency sharded 0\n",
        "concurrency sharded 99999999999\n"}) {
    SpecFileResult R = parseSpecFile(std::string(SchedulerFile) + Line);
    ASSERT_FALSE(R.ok()) << Line;
    EXPECT_NE(R.Error.find("[1, 4096]"), std::string::npos) << R.Error;
  }
}

TEST(SpecFileTest, ErrorUnknownShardColumn) {
  std::string Text =
      std::string(SchedulerFile) + "concurrency sharded 4 on bogus\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("shard column"), std::string::npos);
}

TEST(SpecFileTest, ParsesWireDirective) {
  std::string Text = std::string(SchedulerFile) +
                     "concurrency sharded 4 on ns\nwire\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.File->Options.WireDispatch);
  // Directive order does not matter: wire before concurrency is fine.
  Text = std::string(SchedulerFile) + "wire\nconcurrency sharded 4\n";
  R = parseSpecFile(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.File->Options.WireDispatch);
}

TEST(SpecFileTest, WireDefaultsOff) {
  SpecFileResult R = parseSpecFile(SchedulerFile);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.File->Options.WireDispatch);
}

TEST(SpecFileTest, ErrorWireWithoutConcurrency) {
  std::string Text = std::string(SchedulerFile) + "wire\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("requires a concurrency facade"),
            std::string::npos)
      << R.Error;
}

TEST(SpecFileTest, ErrorWireTakesNoArguments) {
  std::string Text = std::string(SchedulerFile) +
                     "concurrency sharded 4\nwire dispatch\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("takes no arguments"), std::string::npos)
      << R.Error;
}

TEST(SpecFileTest, ParsesTransactionDirective) {
  std::string Text = std::string(SchedulerFile) +
                     "transaction ns, pid\nconcurrency sharded 4 on ns\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.File->Options.Transactions.size(), 1u);
  EXPECT_EQ(R.File->Options.Transactions[0].Key,
            R.File->Spec->catalog().parseSet("ns, pid"));
  // No `x N` suffix: the transfer shape.
  EXPECT_EQ(R.File->Options.Transactions[0].Arity, 2u);
}

TEST(SpecFileTest, ParsesTransactionArity) {
  std::string Text = std::string(SchedulerFile) +
                     "transaction ns, pid x 3\n"
                     "concurrency sharded 4 on ns\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.File->Options.Transactions.size(), 1u);
  EXPECT_EQ(R.File->Options.Transactions[0].Key,
            R.File->Spec->catalog().parseSet("ns, pid"));
  EXPECT_EQ(R.File->Options.Transactions[0].Arity, 3u);
}

TEST(SpecFileTest, ErrorTransactionArityOutOfRange) {
  for (const char *Line :
       {"transaction ns, pid x 1\n", "transaction ns, pid x 9\n",
        "transaction ns, pid x 99999999999\n"}) {
    SpecFileResult R = parseSpecFile(std::string(SchedulerFile) + Line);
    ASSERT_FALSE(R.ok()) << Line;
    EXPECT_NE(R.Error.find("[2, 8]"), std::string::npos) << R.Error;
  }
}

TEST(SpecFileTest, ErrorTransactionArityMalformed) {
  // A trailing number without the `x` separator is a malformed column
  // list, not a silent arity.
  SpecFileResult R =
      parseSpecFile(std::string(SchedulerFile) + "transaction ns, pid 3\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("transaction"), std::string::npos) << R.Error;
}

TEST(SpecFileTest, TransactionDirectiveFeedsEmitter) {
  std::string Text = std::string(SchedulerFile) +
                     "transaction ns, pid\nconcurrency sharded 4 on ns\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  std::string Code = emitCpp(*R.File->Decomp, R.File->Options);
  // The facade grows the two-key transact and its write-back helper,
  // and the supporting lookup/upsert pair is emitted even without an
  // explicit `upsert` directive.
  EXPECT_NE(Code.find("transact_by_ns_pid"), std::string::npos);
  EXPECT_NE(Code.find("tx_apply_by_ns_pid"), std::string::npos);
  EXPECT_NE(Code.find("lookup_by_ns_pid"), std::string::npos);
  EXPECT_NE(Code.find("upsert_by_ns_pid"), std::string::npos);
}

TEST(SpecFileTest, RepeatedTransactionDirectivesEmitOnce) {
  std::string Text = std::string(SchedulerFile) +
                     "upsert ns, pid\ntransaction ns, pid\n"
                     "transaction ns, pid\nconcurrency sharded 4 on ns\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  std::string Code = emitCpp(*R.File->Decomp, R.File->Options);
  auto countOf = [&](const char *Needle) {
    size_t N = 0;
    for (size_t Pos = Code.find(Needle); Pos != std::string::npos;
         Pos = Code.find(Needle, Pos + 1))
      ++N;
    return N;
  };
  EXPECT_EQ(countOf("bool transact_by_ns_pid("), 1u);
  EXPECT_EQ(countOf("void tx_apply_by_ns_pid("), 1u);
  // The transaction key joins the upsert key list without duplicating
  // the pair: exactly one sequential upsert_by plus one facade wrapper.
  EXPECT_EQ(countOf("bool upsert_by_ns_pid(int64_t q_ns"), 2u);
}

TEST(SpecFileTest, ErrorMalformedTransaction) {
  for (const char *Line : {"transaction\n", "transaction ,\n",
                           "transaction bogus\n"}) {
    SpecFileResult R = parseSpecFile(std::string(SchedulerFile) + Line);
    ASSERT_FALSE(R.ok()) << Line;
    EXPECT_NE(R.Error.find("transaction"), std::string::npos) << R.Error;
  }
}

TEST(SpecFileTest, ErrorNonKeyTransaction) {
  std::string Text = std::string(SchedulerFile) + "transaction state\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("not a key"), std::string::npos);
}

TEST(SpecFileTest, ErrorPositionsAnchorAtThePayload) {
  // SchedulerFile opens with a blank line and closes with a newline,
  // so an appended directive lands on line 17. The column anchors at
  // the payload (or the shard column name for `concurrency ... on`),
  // not column 1.
  struct Case {
    const char *Line;
    unsigned Col;
  };
  for (const Case &C : {Case{"remove ns\n", 8u},          // "ns"
                        Case{"transaction state\n", 13u}, // "state"
                        Case{"concurrency sharded 4 on bogus\n", 26u}}) {
    SpecFileResult R = parseSpecFile(std::string(SchedulerFile) + C.Line);
    ASSERT_FALSE(R.ok()) << C.Line;
    EXPECT_EQ(R.Line, 17u) << C.Line;
    EXPECT_EQ(R.Col, C.Col) << C.Line;
  }
}

TEST(SpecFileTest, ErrorWithoutAnchorHasNoPosition) {
  SpecFileResult R = parseSpecFile("relation r(a, b)\nfd a -> b\n");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Line, 0u);
  EXPECT_EQ(R.message(), R.Error);
}

TEST(SpecFileTest, DirectiveWordBoundary) {
  // "classic" must not parse as the "class" directive.
  SpecFileResult R = parseSpecFile("relation r(a)\nclassic foo\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("classic"), std::string::npos);
}

} // namespace
