//===- tests/codegen/SpecFileTest.cpp - relc input file tests ----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "codegen/SpecFile.h"

#include "decomp/Adequacy.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

constexpr const char *SchedulerFile = R"(
# The paper's scheduler.
relation scheduler(ns, pid, state, cpu)
fd ns, pid -> state, cpu

let w : {ns, pid, state} = unit {cpu}
let y : {ns} = map({pid}, htable, w)
let z : {state} = map({ns, pid}, ilist, w)
let x : {} = join(map({ns}, htable, y), map({state}, vector, z))

class scheduler_relation
namespace mygen
query query_by_state (state) -> (ns, pid)
query query_cpu (ns, pid) -> (cpu)
remove ns, pid
update ns, pid
)";

TEST(SpecFileTest, ParsesSchedulerFile) {
  SpecFileResult R = parseSpecFile(SchedulerFile);
  ASSERT_TRUE(R.ok()) << R.Error;
  const SpecFile &F = *R.File;

  EXPECT_EQ(F.Spec->name(), "scheduler");
  EXPECT_EQ(F.Spec->arity(), 4u);
  EXPECT_TRUE(F.Spec->fds().isKey(F.Spec->catalog().parseSet("ns, pid"),
                                  F.Spec->columns()));

  ASSERT_TRUE(F.Decomp.has_value());
  EXPECT_EQ(F.Decomp->numNodes(), 4u);
  EXPECT_TRUE(checkAdequacy(*F.Decomp).Ok);

  EXPECT_EQ(F.Options.ClassName, "scheduler_relation");
  EXPECT_EQ(F.Options.Namespace, "mygen");
  ASSERT_EQ(F.Options.Queries.size(), 2u);
  EXPECT_EQ(F.Options.Queries[0].Name, "query_by_state");
  EXPECT_EQ(F.Options.Queries[0].InputCols,
            F.Spec->catalog().parseSet("state"));
  EXPECT_EQ(F.Options.Queries[1].OutputCols,
            F.Spec->catalog().parseSet("cpu"));
  ASSERT_EQ(F.Options.RemoveKeys.size(), 1u);
  ASSERT_EQ(F.Options.UpdateKeys.size(), 1u);
}

TEST(SpecFileTest, ParsedFileFeedsEmitter) {
  SpecFileResult R = parseSpecFile(SchedulerFile);
  ASSERT_TRUE(R.ok()) << R.Error;
  std::string Code = emitCpp(*R.File->Decomp, R.File->Options);
  EXPECT_NE(Code.find("namespace mygen"), std::string::npos);
  EXPECT_NE(Code.find("class scheduler_relation"), std::string::npos);
  EXPECT_NE(Code.find("query_by_state"), std::string::npos);
}

TEST(SpecFileTest, QueryWithEmptyInputs) {
  std::string Text = std::string(SchedulerFile) +
                     "query query_all () -> (ns, pid, state, cpu)\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.File->Options.Queries.back().InputCols, ColumnSet());
  EXPECT_EQ(R.File->Options.Queries.back().OutputCols,
            R.File->Spec->columns());
}

TEST(SpecFileTest, ErrorMissingRelation) {
  SpecFileResult R = parseSpecFile("let x : {} = unit {}\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("relation"), std::string::npos);
}

TEST(SpecFileTest, ErrorMissingDecomposition) {
  SpecFileResult R = parseSpecFile("relation r(a, b)\nfd a -> b\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("let"), std::string::npos);
}

TEST(SpecFileTest, ErrorUnknownDirective) {
  SpecFileResult R = parseSpecFile("relation r(a)\nfrobnicate a\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("line 2"), std::string::npos);
  EXPECT_NE(R.Error.find("frobnicate"), std::string::npos);
}

TEST(SpecFileTest, ErrorBadFd) {
  SpecFileResult R = parseSpecFile("relation r(a, b)\n"
                                   "fd a b\n"
                                   "let l : {a} = unit {b}\n"
                                   "let x : {} = map({a}, htable, l)\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("->"), std::string::npos);
}

TEST(SpecFileTest, ErrorUnknownColumnInQuery) {
  std::string Text =
      std::string(SchedulerFile) + "query q (bogus) -> (cpu)\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unknown column"), std::string::npos);
}

TEST(SpecFileTest, ErrorNonKeyRemove) {
  std::string Text = std::string(SchedulerFile) + "remove ns\n";
  SpecFileResult R = parseSpecFile(Text);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("not a key"), std::string::npos);
}

TEST(SpecFileTest, ErrorDecompositionParseErrorsSurface) {
  SpecFileResult R = parseSpecFile("relation r(a, b)\n"
                                   "fd a -> b\n"
                                   "let l : {a} = unit {zzz}\n"
                                   "let x : {} = map({a}, htable, l)\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("decomposition"), std::string::npos);
}

TEST(SpecFileTest, DirectiveWordBoundary) {
  // "classic" must not parse as the "class" directive.
  SpecFileResult R = parseSpecFile("relation r(a)\nclassic foo\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("classic"), std::string::npos);
}

} // namespace
