//===- tests/server/WireTest.cpp - Wire protocol tests --------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The wire layer, attacked from both sides: property-style round-trips
// of every value/tuple/op encoding through ByteWriter/ByteReader, the
// decoder fed every truncation of valid bytes (it must fail cleanly,
// never crash), and a live RelServer fed malformed frames — oversized
// length prefixes, truncated bodies, unknown opcodes, zero-length
// batches, garbage payloads — which must produce a clean error reply
// or a clean close, never a crash or a hang, and must leave well-
// formed traffic on the same connection working.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/Server.h"

#include "decomp/Builder.h"
#include "workloads/Rng.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

using namespace relc;

namespace {

RelSpecRef accountSpec() {
  return RelSpec::make("account", {"owner", "acct", "balance"},
                       {{"owner, acct", "balance"}});
}

Decomposition accountDecomp(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId U = B.addNode("u", "owner, acct", B.unit("balance"));
  NodeId Y = B.addNode("y", "owner", B.map("acct", DsKind::HashTable, U));
  B.addNode("x", "", B.map("owner", DsKind::HashTable, Y));
  return B.build();
}

//===----------------------------------------------------------------------===//
// Codec round-trips
//===----------------------------------------------------------------------===//

TEST(WireCodec, ScalarRoundTrip) {
  wire::ByteWriter W;
  W.u8(0xAB);
  W.u32(0xDEADBEEF);
  W.u64(0x0123456789ABCDEFull);
  W.i64(-42);
  W.str("hello");
  wire::ByteReader R(W.data());
  uint8_t A;
  uint32_t B;
  uint64_t C;
  int64_t D;
  std::string S;
  ASSERT_TRUE(R.u8(A));
  ASSERT_TRUE(R.u32(B));
  ASSERT_TRUE(R.u64(C));
  ASSERT_TRUE(R.i64(D));
  ASSERT_TRUE(R.str(S));
  EXPECT_EQ(A, 0xAB);
  EXPECT_EQ(B, 0xDEADBEEFu);
  EXPECT_EQ(C, 0x0123456789ABCDEFull);
  EXPECT_EQ(D, -42);
  EXPECT_EQ(S, "hello");
  EXPECT_EQ(R.remaining(), 0u);
}

TEST(WireCodec, ValueAndTupleRoundTrip) {
  Rng Rand(7);
  for (int Iter = 0; Iter != 200; ++Iter) {
    Tuple T;
    for (ColumnId C = 0; C != 6; ++C) {
      switch (Rand.below(3)) {
      case 0:
        T.set(C, Value::ofInt(static_cast<int64_t>(Rand.next())));
        break;
      case 1:
        T.set(C, Value::ofString("s" + std::to_string(Rand.below(50))));
        break;
      default:
        break; // leave unbound: partial tuples must round-trip too
      }
    }
    wire::ByteWriter W;
    W.tuple(T);
    wire::ByteReader R(W.data());
    Tuple Back;
    ASSERT_TRUE(R.tuple(Back, 6));
    EXPECT_EQ(T, Back);
    EXPECT_EQ(R.remaining(), 0u);
  }
}

TEST(WireCodec, TxOpRoundTripAllKinds) {
  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  Tuple Key = TupleBuilder(Cat).set("owner", 3).set("acct", 1).build();
  Tuple Full =
      TupleBuilder(Cat).set("owner", 3).set("acct", 1).set("balance", 9).build();
  Tuple Changes = TupleBuilder(Cat).set("balance", -5).build();

  std::vector<wire::WireTxOp> Ops = {
      wire::WireTxOp::insert(Full),
      wire::WireTxOp::remove(Key),
      wire::WireTxOp::update(Key, Changes),
      wire::WireTxOp::add(Key, Cat.get("balance"), -17, 0),
      wire::WireTxOp::add(Key, Cat.get("balance"), 4),
  };
  wire::ByteWriter W;
  for (const wire::WireTxOp &Op : Ops)
    W.txOp(Op);
  wire::ByteReader R(W.data());
  for (const wire::WireTxOp &Op : Ops) {
    wire::WireTxOp Back;
    ASSERT_TRUE(R.txOp(Back, Cat.size()));
    EXPECT_EQ(Op, Back);
  }
  EXPECT_EQ(R.remaining(), 0u);
}

TEST(WireCodec, RedoRoundTrip) {
  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  std::vector<TxOp> Redo;
  Redo.push_back(TxOp::insert(TupleBuilder(Cat)
                                  .set("owner", 1)
                                  .set("acct", 2)
                                  .set("balance", 3)
                                  .build()));
  Redo.push_back(TxOp::remove(TupleBuilder(Cat).set("owner", 1).build()));
  Redo.push_back(
      TxOp::update(TupleBuilder(Cat).set("owner", 1).set("acct", 2).build(),
                   TupleBuilder(Cat).set("balance", 44).build()));
  std::vector<uint8_t> Bytes = wire::encodeRedo(Redo);
  std::vector<TxOp> Back;
  ASSERT_TRUE(wire::decodeRedo(Bytes.data(), Bytes.size(), Cat.size(), Back));
  ASSERT_EQ(Back.size(), Redo.size());
  for (size_t I = 0; I != Redo.size(); ++I) {
    EXPECT_EQ(Back[I].Op, Redo[I].Op);
    EXPECT_EQ(Back[I].A, Redo[I].A);
    EXPECT_EQ(Back[I].B, Redo[I].B);
  }
}

/// Every strict prefix of valid bytes must decode to a clean failure —
/// no crash, no OOB read, no partial output accepted as whole.
TEST(WireCodec, TruncationsFailCleanly) {
  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  wire::ByteWriter W;
  W.txOp(wire::WireTxOp::add(
      TupleBuilder(Cat).set("owner", 7).set("acct", 2).build(),
      Cat.get("balance"), -3, 0));
  W.tuple(
      TupleBuilder(Cat).set("owner", 1).set("balance", 2).build());
  const std::vector<uint8_t> &Bytes = W.data();
  for (size_t Cut = 0; Cut != Bytes.size(); ++Cut) {
    wire::ByteReader R(Bytes.data(), Cut);
    wire::WireTxOp Op;
    Tuple T;
    // Either the op is cut (fails) or it is whole and the tuple is cut.
    if (R.txOp(Op, Cat.size()))
      EXPECT_FALSE(R.tuple(T, Cat.size())) << "cut at " << Cut;
  }
}

TEST(WireCodec, ReaderRejectsJunk) {
  // Unknown value kind byte.
  std::vector<uint8_t> Junk = {0x01, 0, 0, 0, 0, 0, 0, 0, 2};
  {
    wire::ByteReader R(Junk);
    Tuple T;
    EXPECT_FALSE(R.tuple(T));
  }
  // Column mask past the declared arity.
  wire::ByteWriter W;
  Tuple Wide;
  Wide.set(5, Value::ofInt(1));
  W.tuple(Wide);
  {
    wire::ByteReader R(W.data());
    Tuple T;
    EXPECT_FALSE(R.tuple(T, 3));
  }
  // Unknown tx-op kind.
  std::vector<uint8_t> BadOp = {9};
  {
    wire::ByteReader R(BadOp);
    wire::WireTxOp Op;
    EXPECT_FALSE(R.txOp(Op));
  }
}

//===----------------------------------------------------------------------===//
// Live-server protocol tests
//===----------------------------------------------------------------------===//

class WireServerTest : public ::testing::Test {
protected:
  void SetUp() override {
    RelSpecRef Spec = accountSpec();
    Cat = &Spec->catalog();
    ServerOptions Opts; // volatile: no WAL needed for protocol tests
    Opts.Concurrent.NumShards = 4;
    Server = std::make_unique<RelServer>(accountDecomp(Spec), Opts);
    std::string Err;
    ASSERT_TRUE(Server->start(&Err)) << Err;
  }

  Tuple account(int64_t Owner, int64_t Acct, int64_t Balance) {
    return TupleBuilder(*Cat)
        .set("owner", Owner)
        .set("acct", Acct)
        .set("balance", Balance)
        .build();
  }
  Tuple key(int64_t Owner, int64_t Acct) {
    return TupleBuilder(*Cat).set("owner", Owner).set("acct", Acct).build();
  }

  const Catalog *Cat = nullptr;
  std::unique_ptr<RelServer> Server;
};

TEST_F(WireServerTest, BasicOpsRoundTrip) {
  RelClient Cli;
  std::string Err;
  ASSERT_TRUE(Cli.connect(Server->port(), &Err)) << Err;
  EXPECT_TRUE(Cli.ping());

  RelClient::Reply R;
  ASSERT_TRUE(Cli.insert(account(1, 1, 100), &R));
  EXPECT_TRUE(R.ok());
  EXPECT_GT(R.Ticket, 0u);
  ASSERT_TRUE(Cli.insert(account(1, 2, 50), &R));
  EXPECT_TRUE(R.ok());

  uint64_t N = 0;
  ASSERT_TRUE(Cli.size(N));
  EXPECT_EQ(N, 2u);

  std::vector<Tuple> Rows;
  ASSERT_TRUE(Cli.query(TupleBuilder(*Cat).set("owner", 1).build(),
                        Cat->allColumns(), Rows));
  EXPECT_EQ(Rows.size(), 2u);

  ASSERT_TRUE(Cli.update(key(1, 2),
                         TupleBuilder(*Cat).set("balance", 75).build(), &R));
  EXPECT_TRUE(R.ok());
  Rows.clear();
  ASSERT_TRUE(Cli.query(key(1, 2), Cat->allColumns(), Rows));
  ASSERT_EQ(Rows.size(), 1u);
  EXPECT_EQ(Rows[0].get(Cat->get("balance")).asInt(), 75);

  ASSERT_TRUE(Cli.remove(key(1, 1), &R));
  EXPECT_TRUE(R.ok());
  ASSERT_TRUE(Cli.size(N));
  EXPECT_EQ(N, 1u);
}

TEST_F(WireServerTest, StatsReportsCommitsAndArenaOccupancy) {
  RelClient Cli;
  std::string Err;
  ASSERT_TRUE(Cli.connect(Server->port(), &Err)) << Err;

  RelClient::ServerStats Empty;
  ASSERT_TRUE(Cli.stats(Empty));
  // Every shard arena holds at least its root node before any insert.
  EXPECT_GT(Empty.ArenaLive, 0u);
  EXPECT_GT(Empty.ArenaBytes, 0u);

  RelClient::Reply R;
  const int Rows = 64;
  for (int I = 0; I != Rows; ++I) {
    ASSERT_TRUE(Cli.insert(account(I % 8, I, 10 + I), &R));
    ASSERT_TRUE(R.ok());
  }

  RelClient::ServerStats Loaded;
  ASSERT_TRUE(Cli.stats(Loaded));
  EXPECT_GE(Loaded.Committed, uint64_t(Rows));
  EXPECT_GT(Loaded.Groups, 0u);
  // The inserted rows live in the shard arenas: at least one block
  // (the unit node) per row beyond the empty-relation baseline.
  EXPECT_GE(Loaded.ArenaLive, Empty.ArenaLive + Rows);
  EXPECT_GE(Loaded.ArenaBytes, Empty.ArenaBytes);
}

TEST_F(WireServerTest, TransferAndOverdraftAbort) {
  RelClient Cli;
  ASSERT_TRUE(Cli.connect(Server->port()));
  RelClient::Reply R;
  ASSERT_TRUE(Cli.insert(account(1, 1, 100), &R));
  ASSERT_TRUE(Cli.insert(account(2, 1, 100), &R));
  ColumnId Bal = Cat->get("balance");

  // A legal transfer commits and moves the money.
  std::vector<wire::WireTxOp> Ops = {
      wire::WireTxOp::add(key(1, 1), Bal, -30, 0),
      wire::WireTxOp::add(key(2, 1), Bal, 30),
  };
  ASSERT_TRUE(Cli.transact(Ops, &R));
  EXPECT_TRUE(R.ok());

  // Overdraft: the floor guard aborts the whole batch atomically.
  Ops = {wire::WireTxOp::add(key(1, 1), Bal, -1000, 0),
         wire::WireTxOp::add(key(2, 1), Bal, 1000)};
  ASSERT_TRUE(Cli.transact(Ops, &R));
  EXPECT_TRUE(R.aborted());
  EXPECT_EQ(R.FailedOp, 0u);

  // Absent key: aborts at the second op, first rolled back.
  Ops = {wire::WireTxOp::add(key(1, 1), Bal, -10, 0),
         wire::WireTxOp::add(key(9, 9), Bal, 10)};
  ASSERT_TRUE(Cli.transact(Ops, &R));
  EXPECT_TRUE(R.aborted());
  EXPECT_EQ(R.FailedOp, 1u);

  std::vector<Tuple> Rows;
  ASSERT_TRUE(Cli.query(Tuple(), Cat->allColumns(), Rows));
  int64_t Total = 0;
  for (const Tuple &T : Rows)
    Total += T.get(Bal).asInt();
  EXPECT_EQ(Total, 200);
}

TEST_F(WireServerTest, PipelinedTransactsAllAnswered) {
  RelClient Cli;
  ASSERT_TRUE(Cli.connect(Server->port()));
  RelClient::Reply R;
  ASSERT_TRUE(Cli.insert(account(1, 1, 1000), &R));
  ASSERT_TRUE(Cli.insert(account(2, 1, 1000), &R));
  ColumnId Bal = Cat->get("balance");

  std::vector<uint64_t> Ids;
  for (int I = 0; I != 32; ++I) {
    std::vector<wire::WireTxOp> Ops = {
        wire::WireTxOp::add(key(1, 1), Bal, -1, 0),
        wire::WireTxOp::add(key(2, 1), Bal, 1)};
    uint64_t Id = Cli.sendTransact(Ops);
    ASSERT_NE(Id, 0u);
    Ids.push_back(Id);
  }
  std::set<uint64_t> Seen;
  for (size_t I = 0; I != Ids.size(); ++I) {
    ASSERT_TRUE(Cli.recvReply(R));
    EXPECT_TRUE(R.ok());
    Seen.insert(R.ReqId);
  }
  EXPECT_EQ(Seen.size(), Ids.size());
  for (uint64_t Id : Ids)
    EXPECT_TRUE(Seen.count(Id));
}

TEST_F(WireServerTest, OversizedLengthPrefixClosesConnection) {
  RelClient Cli;
  ASSERT_TRUE(Cli.connect(Server->port()));
  uint32_t Huge = wire::MaxBody + 1;
  uint8_t Prefix[4];
  for (int I = 0; I != 4; ++I)
    Prefix[I] = static_cast<uint8_t>(Huge >> (8 * I));
  ASSERT_TRUE(wire::writeFull(Cli.fd(), Prefix, 4));
  std::vector<uint8_t> Body;
  EXPECT_FALSE(Cli.recvRaw(Body)); // server closed, no reply
  // And the server is still alive for fresh connections.
  RelClient Cli2;
  ASSERT_TRUE(Cli2.connect(Server->port()));
  EXPECT_TRUE(Cli2.ping());
}

TEST_F(WireServerTest, TruncatedHeaderClosesConnection) {
  RelClient Cli;
  ASSERT_TRUE(Cli.connect(Server->port()));
  // A 3-byte body cannot hold opcode + reqId: close.
  ASSERT_TRUE(Cli.sendRaw({0x01, 0x02, 0x03}));
  std::vector<uint8_t> Body;
  EXPECT_FALSE(Cli.recvRaw(Body));
}

TEST_F(WireServerTest, UnknownOpcodeGetsErrorReply) {
  RelClient Cli;
  ASSERT_TRUE(Cli.connect(Server->port()));
  wire::ByteWriter W;
  W.u8(0x7F); // no such opcode
  W.u64(42);
  ASSERT_TRUE(Cli.sendRaw(W.data()));
  RelClient::Reply R;
  ASSERT_TRUE(Cli.recvReply(R));
  EXPECT_EQ(R.St, wire::Status::Error);
  EXPECT_EQ(R.ReqId, 42u);
  EXPECT_TRUE(Cli.ping()); // connection stays usable
}

TEST_F(WireServerTest, ZeroLengthBatchGetsErrorReply) {
  RelClient Cli;
  ASSERT_TRUE(Cli.connect(Server->port()));
  RelClient::Reply R;
  ASSERT_TRUE(Cli.transact({}, &R));
  EXPECT_EQ(R.St, wire::Status::Error);
  EXPECT_TRUE(Cli.ping());
}

TEST_F(WireServerTest, MalformedPayloadsGetErrorReplies) {
  RelClient Cli;
  ASSERT_TRUE(Cli.connect(Server->port()));
  RelClient::Reply R;

  // Insert with a truncated tuple body.
  wire::ByteWriter W;
  W.u8(static_cast<uint8_t>(wire::Op::Insert));
  W.u64(1);
  W.u64(0x7); // mask promises three values; none follow
  ASSERT_TRUE(Cli.sendRaw(W.data()));
  ASSERT_TRUE(Cli.recvReply(R));
  EXPECT_EQ(R.St, wire::Status::Error);

  // Insert binding only part of the relation.
  ASSERT_TRUE(
      Cli.insert(TupleBuilder(*Cat).set("owner", 1).build(), &R));
  EXPECT_EQ(R.St, wire::Status::Error);

  // Update whose pattern is not a key.
  ASSERT_TRUE(Cli.update(TupleBuilder(*Cat).set("owner", 1).build(),
                         TupleBuilder(*Cat).set("balance", 1).build(), &R));
  EXPECT_EQ(R.St, wire::Status::Error);

  // Add on a key column.
  std::vector<wire::WireTxOp> Ops = {
      wire::WireTxOp::add(key(1, 1), Cat->get("owner"), 1)};
  ASSERT_TRUE(Cli.transact(Ops, &R));
  EXPECT_EQ(R.St, wire::Status::Error);

  // Transact with trailing garbage after a valid batch.
  W = wire::ByteWriter();
  W.u8(static_cast<uint8_t>(wire::Op::Transact));
  W.u64(9);
  W.u32(1);
  W.txOp(wire::WireTxOp::remove(key(1, 1)));
  W.u8(0xFF);
  ASSERT_TRUE(Cli.sendRaw(W.data()));
  ASSERT_TRUE(Cli.recvReply(R));
  EXPECT_EQ(R.St, wire::Status::Error);

  // Query for columns outside the relation.
  W = wire::ByteWriter();
  W.u8(static_cast<uint8_t>(wire::Op::Query));
  W.u64(10);
  W.tuple(Tuple());
  W.u64(~0ull);
  ASSERT_TRUE(Cli.sendRaw(W.data()));
  ASSERT_TRUE(Cli.recvReply(R));
  EXPECT_EQ(R.St, wire::Status::Error);

  // Checkpoint on a WAL-less server is a clean error.
  EXPECT_FALSE(Cli.checkpoint(&R));
  EXPECT_EQ(R.St, wire::Status::Error);

  // After all that abuse the connection still works.
  EXPECT_TRUE(Cli.ping());
  uint64_t N;
  EXPECT_TRUE(Cli.size(N));
}

/// The wire mask boundary: a relation at the full 64-column cap (the
/// widest a ColumnSet can address) must answer queries for any output
/// mask — validation runs at EVERY arity now, and the arity-64 path
/// must not shift a u64 by 64 on the way to deciding the mask is
/// fine. Narrower relations keep rejecting mask bits past their arity.
TEST(WireWideRelation, SixtyFourColumnQueriesValidateWithoutOverflow) {
  std::vector<std::string> Names;
  std::string Rest;
  for (int I = 0; I != 64; ++I) {
    Names.push_back("c" + std::to_string(I));
    if (I > 0)
      Rest += (I > 1 ? ", c" : "c") + std::to_string(I);
  }
  RelSpecRef Spec = RelSpec::make("wide", Names, {{"c0", Rest}});
  const Catalog &Cat = Spec->catalog();
  ASSERT_EQ(Cat.size(), 64u);
  DecompBuilder B(Spec);
  NodeId U = B.addNode("u", "c0", B.unit(Rest));
  B.addNode("x", "", B.map("c0", DsKind::HashTable, U));

  ServerOptions Opts;
  Opts.Concurrent.NumShards = 2;
  RelServer Server(B.build(), Opts);
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;
  RelClient Cli;
  ASSERT_TRUE(Cli.connect(Server.port()));

  TupleBuilder Row(Cat);
  for (int I = 0; I != 64; ++I)
    Row.set("c" + std::to_string(I), 100 + I);
  RelClient::Reply R;
  ASSERT_TRUE(Cli.insert(Row.build(), &R));
  ASSERT_TRUE(R.ok());

  // Full-width output mask: every bit addresses a real column.
  std::vector<Tuple> Rows;
  ASSERT_TRUE(Cli.query(TupleBuilder(Cat).set("c0", 100).build(),
                        ColumnSet::fromMask(~0ull), Rows));
  ASSERT_EQ(Rows.size(), 1u);
  for (int I = 0; I != 64; ++I)
    EXPECT_EQ(Rows[0].get(Cat.get("c" + std::to_string(I))).asInt(),
              100 + I);

  // The top bit alone — the one a 63-column relation must reject and
  // this one must serve.
  Rows.clear();
  ASSERT_TRUE(Cli.query(TupleBuilder(Cat).set("c0", 100).build(),
                        ColumnSet::single(63), Rows));
  ASSERT_EQ(Rows.size(), 1u);
  EXPECT_EQ(Rows[0].get(Cat.get("c63")).asInt(), 163);
  Server.stop();
}

/// Random garbage frames (bounded length) must never crash or hang the
/// server: every frame gets an error reply or a close, and a fresh
/// connection always works afterwards.
TEST_F(WireServerTest, GarbageFramesNeverWedgeTheServer) {
  Rng Rand(99);
  for (int Round = 0; Round != 40; ++Round) {
    RelClient Cli;
    ASSERT_TRUE(Cli.connect(Server->port()));
    std::vector<uint8_t> Body(9 + Rand.below(64));
    for (uint8_t &B : Body)
      B = static_cast<uint8_t>(Rand.next());
    if (!Cli.sendRaw(Body))
      continue;
    // Either an error/ok reply arrives or the server closed on us;
    // both are clean. (Reads block, so a reply always terminates.)
    std::vector<uint8_t> Reply;
    (void)Cli.recvRaw(Reply);
  }
  RelClient Probe;
  ASSERT_TRUE(Probe.connect(Server->port()));
  EXPECT_TRUE(Probe.ping());
}

} // namespace
