//===- tests/server/CrashRecoveryTest.cpp - WAL crash recovery ------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// Fault-injection tests for the durability pipeline: a Wal that fails
// or truncates after N bytes, torn final records, bit-flipped CRCs.
// The invariants proved here are the ones relserved's clients rely on:
//
//   * every committed-and-acked transaction survives recovery (acked
//     means the Done callback reported Durable, i.e. the covering
//     fsync returned before the "crash");
//   * torn tails are dropped silently — never an error, never a
//     partial transaction;
//   * the recovered state is α-equivalent to replaying the log's
//     transactions serially in ticket order from scratch.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/GroupCommit.h"
#include "server/Server.h"

#include "decomp/Builder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <functional>
#include <mutex>
#include <set>
#include <thread>
#include <unistd.h>

using namespace relc;

namespace {

RelSpecRef accountSpec() {
  return RelSpec::make("account", {"owner", "acct", "balance"},
                       {{"owner, acct", "balance"}});
}

Decomposition accountDecomp(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId U = B.addNode("u", "owner, acct", B.unit("balance"));
  NodeId Y = B.addNode("y", "owner", B.map("acct", DsKind::HashTable, U));
  B.addNode("x", "", B.map("owner", DsKind::HashTable, Y));
  return B.build();
}

ConcurrentOptions fourShards() {
  ConcurrentOptions O;
  O.NumShards = 4;
  return O;
}

/// Fresh per-test WAL path under gtest's temp dir.
std::string walPath(const char *Tag) {
  return ::testing::TempDir() + "crash_" + Tag + "_" +
         std::to_string(::getpid()) + ".wal";
}

void removeWal(const std::string &Path) {
  std::remove(Path.c_str());
  std::remove((Path + ".ckpt").c_str());
}

void copyFile(const std::string &From, const std::string &To) {
  std::ifstream In(From, std::ios::binary);
  std::ofstream Out(To, std::ios::binary | std::ios::trunc);
  Out << In.rdbuf();
  ASSERT_TRUE(In.good() || In.eof());
  ASSERT_TRUE(Out.good());
}

std::vector<Wal::Record> replayAll(const std::string &Path,
                                   size_t *ValidEnd = nullptr) {
  std::vector<Wal::Record> Records;
  std::string Err;
  EXPECT_TRUE(Wal::replay(
      Path, [&](const Wal::Record &R) { Records.push_back(R); }, &Err,
      ValidEnd))
      << Err;
  return Records;
}

/// Deterministic small PRNG (tests must not depend on wall clock).
struct Lcg {
  uint64_t S;
  explicit Lcg(uint64_t Seed) : S(Seed * 2654435769u + 1) {}
  uint64_t next() {
    S = S * 6364136223846793005ull + 1442695040888963407ull;
    return S >> 33;
  }
  uint64_t below(uint64_t N) { return next() % N; }
};

TxOp addOp(const Catalog &Cat, int64_t Owner, int64_t Acct, int64_t Delta,
           int64_t Floor) {
  ColumnId Bal = Cat.get("balance");
  return TxOp::upsertChecked(
      TupleBuilder(Cat).set("owner", Owner).set("acct", Acct).build(),
      [Bal, Delta, Floor](const BindingFrame *F, Tuple &V) {
        if (!F)
          return false;
        int64_t Next = F->get(Bal).asInt() + Delta;
        if (Next < Floor)
          return false;
        V.set(Bal, Value::ofInt(Next));
        return true;
      });
}

std::vector<TxOp> transfer(const Catalog &Cat, int64_t From, int64_t To,
                           int64_t Amt) {
  std::vector<TxOp> Ops;
  Ops.push_back(addOp(Cat, From / 4, From % 4, -Amt, 0));
  Ops.push_back(addOp(Cat, To / 4, To % 4, Amt, INT64_MIN));
  return Ops;
}

/// Serially replays \p Records (file order) into a fresh relation and
/// returns its abstraction. Every redo must decode and commit.
Relation serialReplay(const RelSpecRef &Spec,
                      const std::vector<Wal::Record> &Records) {
  ConcurrentRelation Rel(accountDecomp(Spec), fourShards());
  unsigned Arity = Spec->catalog().size();
  uint64_t PrevTicket = 0;
  for (const Wal::Record &R : Records) {
    EXPECT_GT(R.Ticket, PrevTicket)
        << "WAL records must be in strictly increasing ticket order";
    PrevTicket = R.Ticket;
    std::vector<TxOp> Ops;
    EXPECT_TRUE(wire::decodeRedo(R.Payload.data(), R.Payload.size(), Arity,
                                 Ops));
    TxResult Res = Rel.transact(Ops);
    EXPECT_TRUE(Res.Committed) << "redo replay can never abort";
  }
  return Rel.toRelation();
}

void expectSameRelation(const Relation &A, const Relation &B) {
  EXPECT_EQ(A.size(), B.size());
  for (const Tuple &T : A.tuples())
    EXPECT_TRUE(B.contains(T));
}

//===----------------------------------------------------------------------===//
// Pure Wal framing: torn tails, bit flips, damaged magic
//===----------------------------------------------------------------------===//

class WalFraming : public ::testing::Test {
protected:
  /// Writes K records with distinct payload sizes; returns each
  /// record's end offset (so tests can truncate on/off boundaries).
  std::vector<size_t> writeLog(const std::string &Path, size_t K) {
    Wal Log(Path);
    std::string Err;
    EXPECT_TRUE(Log.open(&Err)) << Err;
    std::vector<size_t> Ends;
    for (size_t I = 0; I != K; ++I) {
      std::vector<uint8_t> Payload(5 + 3 * I);
      for (size_t B = 0; B != Payload.size(); ++B)
        Payload[B] = static_cast<uint8_t>(I * 31 + B);
      EXPECT_TRUE(Log.append(I + 1, Payload.data(), Payload.size()));
      Ends.push_back(Log.writtenBytes());
    }
    EXPECT_TRUE(Log.sync());
    Log.close();
    return Ends;
  }
};

TEST_F(WalFraming, MissingFileIsAnEmptyLog) {
  std::string Path = walPath("missing");
  removeWal(Path);
  size_t ValidEnd = 123;
  EXPECT_TRUE(replayAll(Path, &ValidEnd).empty());
  EXPECT_EQ(ValidEnd, 0u);
}

TEST_F(WalFraming, TornFinalRecordIsDroppedAtEveryTruncationPoint) {
  std::string Path = walPath("torn");
  removeWal(Path);
  std::vector<size_t> Ends = writeLog(Path, 4);
  // Truncating anywhere strictly inside the last record must yield
  // exactly the first three records, silently.
  for (size_t Cut = Ends[2] + 1; Cut < Ends[3]; ++Cut) {
    std::string Copy = Path + ".cut";
    copyFile(Path, Copy);
    ASSERT_TRUE(Wal::truncateTo(Copy, Cut));
    size_t ValidEnd = 0;
    std::vector<Wal::Record> Records = replayAll(Copy, &ValidEnd);
    EXPECT_EQ(Records.size(), 3u) << "cut at byte " << Cut;
    EXPECT_EQ(ValidEnd, Ends[2]);
    std::remove(Copy.c_str());
  }
  // Truncating exactly on the boundary keeps all four.
  EXPECT_EQ(replayAll(Path).size(), 4u);
  removeWal(Path);
}

TEST_F(WalFraming, BitFlippedCrcDropsTheRecordAndEverythingAfter) {
  std::string Path = walPath("flip");
  removeWal(Path);
  std::vector<size_t> Ends = writeLog(Path, 5);
  // Flip one bit in record 2's payload: replay keeps records 0 and 1
  // only — a CRC mismatch ends the valid prefix even with intact
  // records after it (they are unreachable without trusting the
  // damaged length).
  size_t Offset = Ends[1] + Wal::HeaderLen + 2;
  ASSERT_TRUE(Wal::flipBitAt(Path, Offset, 3));
  size_t ValidEnd = 0;
  std::vector<Wal::Record> Records = replayAll(Path, &ValidEnd);
  EXPECT_EQ(Records.size(), 2u);
  EXPECT_EQ(ValidEnd, Ends[1]);
  EXPECT_EQ(Records[0].Ticket, 1u);
  EXPECT_EQ(Records[1].Ticket, 2u);
  // Flip it back: the full log replays again (the damage model is
  // exact).
  ASSERT_TRUE(Wal::flipBitAt(Path, Offset, 3));
  EXPECT_EQ(replayAll(Path).size(), 5u);
  removeWal(Path);
}

TEST_F(WalFraming, WrongMagicIsARealError) {
  std::string Path = walPath("magic");
  removeWal(Path);
  writeLog(Path, 1);
  ASSERT_TRUE(Wal::flipBitAt(Path, 0, 0));
  std::string Err;
  bool Ok = Wal::replay(Path, [](const Wal::Record &) {}, &Err);
  EXPECT_FALSE(Ok);
  EXPECT_FALSE(Err.empty());
  removeWal(Path);
}

TEST_F(WalFraming, ReopenAfterTruncationAppendsCleanly) {
  std::string Path = walPath("reopen");
  removeWal(Path);
  std::vector<size_t> Ends = writeLog(Path, 3);
  // Tear the last record, recover, truncate to the valid end (the
  // server's reopen procedure), then append more.
  ASSERT_TRUE(Wal::truncateTo(Path, Ends[2] - 2));
  size_t ValidEnd = 0;
  EXPECT_EQ(replayAll(Path, &ValidEnd).size(), 2u);
  ASSERT_TRUE(Wal::truncateTo(Path, ValidEnd));
  {
    Wal Log(Path);
    std::string Err;
    ASSERT_TRUE(Log.open(&Err)) << Err;
    uint8_t Byte = 0xAB;
    ASSERT_TRUE(Log.append(99, &Byte, 1));
    ASSERT_TRUE(Log.sync());
  }
  std::vector<Wal::Record> Records = replayAll(Path);
  ASSERT_EQ(Records.size(), 3u);
  EXPECT_EQ(Records[2].Ticket, 99u);
  EXPECT_EQ(Records[2].Payload, std::vector<uint8_t>{0xAB});
  removeWal(Path);
}

//===----------------------------------------------------------------------===//
// End-to-end: fault-injected group commit, then recovery
//===----------------------------------------------------------------------===//

/// The core acceptance invariant: run a contended transfer workload
/// against a Wal whose write budget runs out at a random point (a
/// crash mid-stream). Whatever the committer acked as durable MUST be
/// in the replayable prefix, and the recovered state must match a
/// serial ticket-order replay.
TEST(CrashRecovery, AckedCommitsSurviveARandomlyTornLog) {
  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  const int64_t Accounts = 8;
  const int64_t Initial = 1000;

  for (uint64_t Trial = 0; Trial != 4; ++Trial) {
    Lcg Rnd(0xC0FFEE + Trial);
    std::string Path = walPath(("acked" + std::to_string(Trial)).c_str());
    removeWal(Path);

    ConcurrentRelation Rel(accountDecomp(Spec), fourShards());
    Wal Log(Path);
    std::string Err;
    ASSERT_TRUE(Log.open(&Err)) << Err;
    Rel.setCommitHook([&](uint64_t Ticket, const std::vector<TxOp> &Redo) {
      std::vector<uint8_t> P = wire::encodeRedo(Redo);
      Log.append(Ticket, P.data(), P.size());
    });

    // Seed through logged transacts, then sync: the fault budget is
    // armed past the seeds so the baseline is always durable.
    for (int64_t A = 0; A != Accounts; ++A) {
      TxResult Res = Rel.transact(std::vector<TxOp>{TxOp::insert(TupleBuilder(Cat)
                                                    .set("owner", A / 4)
                                                    .set("acct", A % 4)
                                                    .set("balance", Initial)
                                                    .build())});
      ASSERT_TRUE(Res.Committed);
    }
    ASSERT_TRUE(Log.sync());
    size_t Base = Log.durableBytes();
    // Budget lands somewhere inside the upcoming transfer stream.
    Log.failAfterBytes(Base + Rnd.below(2000));

    GroupCommit GC(Rel, &Log);
    GC.start();
    std::mutex Mu;
    std::condition_variable Cv;
    size_t Done = 0;
    std::set<uint64_t> AckedTickets;
    const int Threads = 2, PerThread = 60;
    std::vector<std::thread> Workers;
    for (int W = 0; W != Threads; ++W)
      Workers.emplace_back([&, W] {
        Lcg R(Trial * 977 + W);
        for (int T = 0; T != PerThread; ++T) {
          int64_t From = static_cast<int64_t>(R.below(Accounts));
          int64_t To = (From + 1 + static_cast<int64_t>(
                                       R.below(Accounts - 1))) %
                       Accounts;
          int64_t Amt = 1 + static_cast<int64_t>(R.below(300));
          GC.submit(transfer(Cat, From, To, Amt),
                    [&](const TxResult &Res, bool Durable) {
                      std::lock_guard<std::mutex> Lock(Mu);
                      if (Res.Committed && Durable)
                        AckedTickets.insert(Res.Ticket);
                      ++Done;
                      Cv.notify_all();
                    });
        }
      });
    for (std::thread &T : Workers)
      T.join();
    {
      std::unique_lock<std::mutex> Lock(Mu);
      Cv.wait(Lock, [&] {
        return Done == static_cast<size_t>(Threads) * PerThread;
      });
    }
    GC.stop();
    Rel.setCommitHook(nullptr);
    Log.close(); // the "crash": whatever hit the disk is the evidence

    std::vector<Wal::Record> Records = replayAll(Path);
    std::set<uint64_t> OnDisk;
    for (const Wal::Record &R : Records)
      OnDisk.insert(R.Ticket);
    for (uint64_t T : AckedTickets)
      EXPECT_TRUE(OnDisk.count(T))
          << "trial " << Trial << ": acked ticket " << T
          << " missing after crash";

    // α-equivalence: serial file-order replay == a second independent
    // replay (the recovery path is deterministic), and the recovered
    // state conserves the seeded total because every record is a whole
    // transaction.
    Relation Recovered = serialReplay(Spec, Records);
    Relation Again = serialReplay(Spec, Records);
    expectSameRelation(Recovered, Again);
    if (Records.size() >= static_cast<size_t>(Accounts)) {
      ColumnId Bal = Cat.get("balance");
      int64_t Total = 0;
      for (const Tuple &T : Recovered.tuples())
        Total += T.get(Bal).asInt();
      EXPECT_EQ(Recovered.size(), static_cast<size_t>(Accounts));
      EXPECT_EQ(Total, Accounts * Initial)
          << "a torn record leaked a partial transfer";
    }
    removeWal(Path);
  }
}

/// Clean log, then arbitrary damage: any truncation point yields a
/// record-aligned prefix of the original history, and a random bit
/// flip confines the loss to the damaged record and its tail.
TEST(CrashRecovery, RandomDamageAlwaysYieldsAHistoryPrefix) {
  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  std::string Path = walPath("prefix");
  removeWal(Path);

  ConcurrentRelation Rel(accountDecomp(Spec), fourShards());
  Wal Log(Path);
  std::string Err;
  ASSERT_TRUE(Log.open(&Err)) << Err;
  Rel.setCommitHook([&](uint64_t Ticket, const std::vector<TxOp> &Redo) {
    std::vector<uint8_t> P = wire::encodeRedo(Redo);
    Log.append(Ticket, P.data(), P.size());
  });
  for (int64_t A = 0; A != 8; ++A)
    ASSERT_TRUE(Rel.transact(std::vector<TxOp>{TxOp::insert(TupleBuilder(Cat)
                                               .set("owner", A / 4)
                                               .set("acct", A % 4)
                                               .set("balance", 500)
                                               .build())})
                    .Committed);
  Lcg Seq(42);
  for (int T = 0; T != 40; ++T) {
    int64_t From = static_cast<int64_t>(Seq.below(8));
    int64_t To = (From + 1) % 8;
    Rel.transact(transfer(Cat, From, To, 1 + (T % 7)));
  }
  ASSERT_TRUE(Log.sync());
  Log.close();
  Rel.setCommitHook(nullptr);

  std::vector<Wal::Record> Full = replayAll(Path);
  ASSERT_GE(Full.size(), 40u);
  size_t Size = Wal::fileSize(Path);

  Lcg Rnd(7);
  for (int Trial = 0; Trial != 12; ++Trial) {
    std::string Copy = Path + ".dmg";
    copyFile(Path, Copy);
    bool Flip = Trial % 2 == 1;
    if (Flip) {
      size_t Offset = Wal::MagicLen +
                      Rnd.below(Size - Wal::MagicLen);
      ASSERT_TRUE(Wal::flipBitAt(Copy, Offset, Rnd.below(8)));
    } else {
      ASSERT_TRUE(
          Wal::truncateTo(Copy, Wal::MagicLen + Rnd.below(Size)));
    }
    std::vector<Wal::Record> Damaged = replayAll(Copy);
    ASSERT_LE(Damaged.size(), Full.size());
    for (size_t I = 0; I != Damaged.size(); ++I) {
      EXPECT_EQ(Damaged[I].Ticket, Full[I].Ticket);
      EXPECT_EQ(Damaged[I].Payload, Full[I].Payload);
    }
    // Replaying the damaged prefix equals replaying that many records
    // of the intact history: α-equivalence of partial recoveries.
    std::vector<Wal::Record> Head(Full.begin(),
                                  Full.begin() + Damaged.size());
    expectSameRelation(serialReplay(Spec, Damaged),
                       serialReplay(Spec, Head));
    std::remove(Copy.c_str());
  }
  removeWal(Path);
}

TEST(CrashRecovery, CheckpointCompactsAndRecoversAcrossIt) {
  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  std::string Path = walPath("ckpt");
  removeWal(Path);

  ConcurrentRelation Rel(accountDecomp(Spec), fourShards());
  Wal Log(Path);
  std::string Err;
  ASSERT_TRUE(Log.open(&Err)) << Err;
  Rel.setCommitHook([&](uint64_t Ticket, const std::vector<TxOp> &Redo) {
    std::vector<uint8_t> P = wire::encodeRedo(Redo);
    Log.append(Ticket, P.data(), P.size());
  });
  uint64_t LastTicket = 0;
  for (int64_t A = 0; A != 6; ++A) {
    TxResult Res = Rel.transact(std::vector<TxOp>{TxOp::insert(TupleBuilder(Cat)
                                                  .set("owner", A)
                                                  .set("acct", 0)
                                                  .set("balance", 100)
                                                  .build())});
    ASSERT_TRUE(Res.Committed);
    LastTicket = Res.Ticket;
  }
  ASSERT_TRUE(Log.sync());
  ASSERT_GT(Wal::fileSize(Path), Wal::MagicLen);

  ASSERT_TRUE(Log.checkpoint(
      LastTicket, RelServer::encodeSnapshot(Rel.toRelation()), &Err))
      << Err;
  EXPECT_EQ(Wal::fileSize(Path), Wal::MagicLen)
      << "checkpoint must truncate the log";

  // History continues after the checkpoint.
  ASSERT_TRUE(Rel.transact(transfer(Cat, 0 * 4, 1 * 4, 25)).Committed);
  ASSERT_TRUE(Log.sync());
  Log.close();
  Rel.setCommitHook(nullptr);

  // Recover the server way: snapshot first, then the residual log.
  uint64_t CkptTicket = 0;
  std::vector<uint8_t> Snap;
  ASSERT_TRUE(Wal::loadCheckpoint(Path, CkptTicket, Snap));
  EXPECT_EQ(CkptTicket, LastTicket);
  std::vector<Tuple> Tuples;
  ASSERT_TRUE(
      RelServer::decodeSnapshot(Snap, Cat.size(), Tuples));
  ConcurrentRelation Rec(accountDecomp(Spec), fourShards());
  for (const Tuple &T : Tuples)
    ASSERT_TRUE(Rec.insert(T));
  unsigned Arity = Cat.size();
  for (const Wal::Record &R : replayAll(Path)) {
    std::vector<TxOp> Ops;
    ASSERT_TRUE(
        wire::decodeRedo(R.Payload.data(), R.Payload.size(), Arity, Ops));
    ASSERT_TRUE(Rec.transact(Ops).Committed);
  }
  expectSameRelation(Rec.toRelation(), Rel.toRelation());
  removeWal(Path);
}

/// The checkpoint crash window: the snapshot rename has landed but the
/// log truncation never ran (crash, or the ftruncate failing after
/// rename). Disk holds snapshot + FULL log, so the log's prefix is
/// already inside the snapshot — recovery must skip every record at or
/// below the checkpoint ticket instead of double-applying history.
TEST(CrashRecovery, CheckpointPublishedButLogNotTruncated) {
  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  ColumnId Bal = Cat.get("balance");
  std::string Path = walPath("ckptwindow");
  removeWal(Path);

  Relation Final(Cat.allColumns());
  uint64_t CkptTicket = 0;
  std::vector<uint8_t> SnapBytes;
  {
    ConcurrentRelation Rel(accountDecomp(Spec), fourShards());
    Wal Log(Path);
    std::string Err;
    ASSERT_TRUE(Log.open(&Err)) << Err;
    Rel.setCommitHook([&](uint64_t Ticket, const std::vector<TxOp> &Redo) {
      std::vector<uint8_t> P = wire::encodeRedo(Redo);
      Log.append(Ticket, P.data(), P.size());
    });
    for (int64_t A = 0; A != 8; ++A) {
      TxResult Res = Rel.transact(std::vector<TxOp>{TxOp::insert(TupleBuilder(Cat)
                                                    .set("owner", A / 4)
                                                    .set("acct", A % 4)
                                                    .set("balance", 1000)
                                                    .build())});
      ASSERT_TRUE(Res.Committed);
      CkptTicket = Res.Ticket;
    }
    // The snapshot the checkpoint will publish: state at CkptTicket,
    // i.e. BEFORE the transfers below — those form the replay residue.
    SnapBytes = RelServer::encodeSnapshot(Rel.toRelation());
    for (int T = 0; T != 10; ++T) {
      int64_t From = T % 8;
      int64_t To = (From + 3) % 8;
      ASSERT_TRUE(Rel.transact(transfer(Cat, From, To, 10 + T)).Committed);
    }
    ASSERT_TRUE(Log.sync());
    Rel.setCommitHook(nullptr);
    Log.close();
    Final = Rel.toRelation();
  }

  // Recreate the window. Wal::checkpoint publishes AND truncates, so
  // save the full log, checkpoint, then put the full log back — the
  // exact on-disk state a crash between the two steps leaves.
  std::string Full = Path + ".full";
  copyFile(Path, Full);
  {
    Wal Log(Path);
    std::string Err;
    ASSERT_TRUE(Log.open(&Err)) << Err;
    ASSERT_TRUE(Log.checkpoint(CkptTicket, SnapBytes, &Err)) << Err;
  }
  copyFile(Full, Path);
  std::remove(Full.c_str());

  ServerOptions Opts;
  Opts.WalPath = Path;
  Opts.Concurrent.NumShards = 4;
  {
    RelServer Server(accountDecomp(Spec), Opts);
    std::string Err;
    ASSERT_TRUE(Server.start(&Err)) << Err;
    // Only the post-checkpoint residue replays — the 8 seed inserts
    // are in the snapshot and must not be re-applied on top of it.
    EXPECT_EQ(Server.recoveredTxns(), 10u);
    expectSameRelation(Server.relation().toRelation(), Final);
    RelClient Cli;
    ASSERT_TRUE(Cli.connect(Server.port()));
    std::vector<Tuple> Rows;
    ASSERT_TRUE(Cli.query(Tuple(), Cat.allColumns(), Rows));
    ASSERT_EQ(Rows.size(), 8u);
    int64_t Total = 0;
    for (const Tuple &T : Rows)
      Total += T.get(Bal).asInt();
    EXPECT_EQ(Total, 8 * 1000) << "double-applied history leaked a transfer";
    Server.stop();
  }
  removeWal(Path);
}

/// A crash during WAL creation can leave a file holding only a prefix
/// of the magic. Recovery must truncate it to empty so reopening
/// re-initializes the magic — otherwise the first restart appends
/// acked records after the garbage and the SECOND restart fails with
/// "bad WAL magic", losing them.
TEST(CrashRecovery, FileTornInsideTheMagicIsReinitialized) {
  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  std::string Path = walPath("tornmagic");
  removeWal(Path);
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Wal::Magic, 3);
  }
  ASSERT_EQ(Wal::fileSize(Path), 3u);

  ServerOptions Opts;
  Opts.WalPath = Path;
  Opts.Concurrent.NumShards = 4;
  {
    RelServer Server(accountDecomp(Spec), Opts);
    std::string Err;
    ASSERT_TRUE(Server.start(&Err)) << Err;
    EXPECT_EQ(Server.recoveredTxns(), 0u);
    RelClient Cli;
    ASSERT_TRUE(Cli.connect(Server.port()));
    RelClient::Reply R;
    ASSERT_TRUE(Cli.insert(TupleBuilder(Cat)
                               .set("owner", 1)
                               .set("acct", 2)
                               .set("balance", 42)
                               .build(),
                           &R));
    ASSERT_TRUE(R.ok());
    Server.stop();
  }
  {
    RelServer Server(accountDecomp(Spec), Opts);
    std::string Err;
    ASSERT_TRUE(Server.start(&Err)) << Err;
    EXPECT_EQ(Server.recoveredTxns(), 1u);
    RelClient Cli;
    ASSERT_TRUE(Cli.connect(Server.port()));
    std::vector<Tuple> Rows;
    ASSERT_TRUE(Cli.query(Tuple(), Cat.allColumns(), Rows));
    ASSERT_EQ(Rows.size(), 1u);
    EXPECT_EQ(Rows[0].get(Cat.get("balance")).asInt(), 42);
    Server.stop();
  }
  removeWal(Path);
}

/// Full server lifecycle: serve, mutate over the wire, stop, restart
/// on the same WAL, and find every acked mutation again — twice, so
/// the second generation proves post-recovery appends land after the
/// truncated valid prefix with monotone tickets.
TEST(CrashRecovery, ServerRestartRecoversAckedStateTwice) {
  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  ColumnId Bal = Cat.get("balance");
  std::string Path = walPath("server");
  removeWal(Path);

  ServerOptions Opts;
  Opts.WalPath = Path;
  Opts.Concurrent.NumShards = 4;

  std::vector<Tuple> Generation1;
  uint64_t MaxTicket1 = 0;
  {
    RelServer Server(accountDecomp(Spec), Opts);
    std::string Err;
    ASSERT_TRUE(Server.start(&Err)) << Err;
    EXPECT_EQ(Server.recoveredTxns(), 0u);
    RelClient Cli;
    ASSERT_TRUE(Cli.connect(Server.port()));
    for (int64_t A = 0; A != 8; ++A) {
      RelClient::Reply R;
      ASSERT_TRUE(Cli.insert(TupleBuilder(Cat)
                                 .set("owner", A / 4)
                                 .set("acct", A % 4)
                                 .set("balance", 1000)
                                 .build(),
                             &R));
      ASSERT_TRUE(R.ok());
    }
    int Acked = 0;
    for (int T = 0; T != 20; ++T) {
      std::vector<wire::WireTxOp> Ops = {
          wire::WireTxOp::add(TupleBuilder(Cat)
                                  .set("owner", T % 2)
                                  .set("acct", T % 4)
                                  .build(),
                              Bal, -50, 0),
          wire::WireTxOp::add(TupleBuilder(Cat)
                                  .set("owner", 1 - T % 2)
                                  .set("acct", 3 - T % 4)
                                  .build(),
                              Bal, 50)};
      RelClient::Reply R;
      ASSERT_TRUE(Cli.transact(Ops, &R));
      if (R.ok()) {
        ++Acked;
        MaxTicket1 = std::max(MaxTicket1, R.Ticket);
      }
    }
    EXPECT_GT(Acked, 0);
    ASSERT_TRUE(Cli.query(Tuple(), Cat.allColumns(), Generation1));
    Server.stop();
  }

  std::vector<Tuple> Generation2;
  {
    RelServer Server(accountDecomp(Spec), Opts);
    std::string Err;
    ASSERT_TRUE(Server.start(&Err)) << Err;
    EXPECT_GT(Server.recoveredTxns(), 0u);
    RelClient Cli;
    ASSERT_TRUE(Cli.connect(Server.port()));
    std::vector<Tuple> Rows;
    ASSERT_TRUE(Cli.query(Tuple(), Cat.allColumns(), Rows));
    ASSERT_EQ(Rows.size(), Generation1.size());
    Relation Snapshot(Cat.allColumns());
    for (const Tuple &T : Rows)
      Snapshot.insert(T);
    for (const Tuple &T : Generation1)
      EXPECT_TRUE(Snapshot.contains(T));
    // Second generation of mutations: tickets must continue past the
    // recovered history (seedTickets), and a second restart must see
    // both generations.
    RelClient::Reply R;
    ASSERT_TRUE(Cli.transact({wire::WireTxOp::add(TupleBuilder(Cat)
                                                      .set("owner", 0)
                                                      .set("acct", 0)
                                                      .build(),
                                                  Bal, -1, 0),
                              wire::WireTxOp::add(TupleBuilder(Cat)
                                                      .set("owner", 1)
                                                      .set("acct", 1)
                                                      .build(),
                                                  Bal, 1)},
                             &R));
    ASSERT_TRUE(R.ok());
    EXPECT_GT(R.Ticket, MaxTicket1);
    ASSERT_TRUE(Cli.query(Tuple(), Cat.allColumns(), Generation2));
    Server.stop();
  }

  {
    RelServer Server(accountDecomp(Spec), Opts);
    std::string Err;
    ASSERT_TRUE(Server.start(&Err)) << Err;
    RelClient Cli;
    ASSERT_TRUE(Cli.connect(Server.port()));
    std::vector<Tuple> Rows;
    ASSERT_TRUE(Cli.query(Tuple(), Cat.allColumns(), Rows));
    Relation Snapshot(Cat.allColumns());
    for (const Tuple &T : Rows)
      Snapshot.insert(T);
    EXPECT_EQ(Rows.size(), Generation2.size());
    for (const Tuple &T : Generation2)
      EXPECT_TRUE(Snapshot.contains(T));
    int64_t Total = 0;
    for (const Tuple &T : Rows)
      Total += T.get(Bal).asInt();
    EXPECT_EQ(Total, 8 * 1000);
    Server.stop();
  }
  removeWal(Path);
}

/// checkpointNow through the live server plus auto-checkpoint pacing:
/// after the checkpoint the log is compact and a restart still sees
/// everything, with recovery counting only post-checkpoint txns.
TEST(CrashRecovery, LiveCheckpointTruncatesAndRestartStillRecovers) {
  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  ColumnId Bal = Cat.get("balance");
  std::string Path = walPath("livecp");
  removeWal(Path);

  ServerOptions Opts;
  Opts.WalPath = Path;
  Opts.Concurrent.NumShards = 4;

  {
    RelServer Server(accountDecomp(Spec), Opts);
    std::string Err;
    ASSERT_TRUE(Server.start(&Err)) << Err;
    RelClient Cli;
    ASSERT_TRUE(Cli.connect(Server.port()));
    for (int64_t A = 0; A != 4; ++A) {
      RelClient::Reply R;
      ASSERT_TRUE(Cli.insert(TupleBuilder(Cat)
                                 .set("owner", A)
                                 .set("acct", 0)
                                 .set("balance", 10)
                                 .build(),
                             &R));
      ASSERT_TRUE(R.ok());
    }
    ASSERT_GT(Wal::fileSize(Path), Wal::MagicLen);
    RelClient::Reply R;
    ASSERT_TRUE(Cli.checkpoint(&R));
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(Wal::fileSize(Path), Wal::MagicLen);
    // One post-checkpoint mutation: the only txn a restart replays.
    ASSERT_TRUE(Cli.transact({wire::WireTxOp::add(TupleBuilder(Cat)
                                                      .set("owner", 0)
                                                      .set("acct", 0)
                                                      .build(),
                                                  Bal, 5)},
                             &R));
    ASSERT_TRUE(R.ok());
    Server.stop();
  }
  {
    RelServer Server(accountDecomp(Spec), Opts);
    std::string Err;
    ASSERT_TRUE(Server.start(&Err)) << Err;
    EXPECT_EQ(Server.recoveredTxns(), 1u)
        << "checkpointed history must not be replayed";
    RelClient Cli;
    ASSERT_TRUE(Cli.connect(Server.port()));
    std::vector<Tuple> Rows;
    ASSERT_TRUE(Cli.query(Tuple(), Cat.allColumns(), Rows));
    ASSERT_EQ(Rows.size(), 4u);
    int64_t Total = 0;
    for (const Tuple &T : Rows)
      Total += T.get(Bal).asInt();
    EXPECT_EQ(Total, 4 * 10 + 5);
    Server.stop();
  }
  removeWal(Path);
}

/// Spins (bounded) until \p Cond holds — checkpoint completions are
/// asynchronous (committer barrier, then the checkpoint thread).
bool waitUntil(const std::function<bool()> &Cond, int Millis = 5000) {
  for (int I = 0; I != Millis * 10; ++I) {
    if (Cond())
      return true;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return Cond();
}

/// Explicit checkpoint against an injected failure: the wire reply must
/// come back as an error (not silence, not Ok), the failure must be
/// counted, commits must keep flowing, and once the fault clears a
/// retry compacts the log and a restart recovers the exact state.
TEST(CrashRecovery, FailedCheckpointRepliesErrorAndServerKeepsCommitting) {
  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  std::string Path = walPath("ckptfail");
  removeWal(Path);

  ServerOptions Opts;
  Opts.WalPath = Path;
  Opts.Concurrent.NumShards = 4;
  {
    RelServer Server(accountDecomp(Spec), Opts);
    std::string Err;
    ASSERT_TRUE(Server.start(&Err)) << Err;
    RelClient Cli;
    ASSERT_TRUE(Cli.connect(Server.port()));
    for (int64_t A = 0; A != 4; ++A) {
      RelClient::Reply R;
      ASSERT_TRUE(Cli.insert(TupleBuilder(Cat)
                                 .set("owner", A)
                                 .set("acct", 0)
                                 .set("balance", 10)
                                 .build(),
                             &R));
      ASSERT_TRUE(R.ok());
    }
    size_t Before = Wal::fileSize(Path);
    ASSERT_GT(Before, Wal::MagicLen);

    Server.wal().failNextCheckpoints(1);
    RelClient::Reply R;
    EXPECT_FALSE(Cli.checkpoint(&R));
    EXPECT_EQ(R.St, wire::Status::Error);
    EXPECT_NE(R.Error.find("checkpoint failed"), std::string::npos)
        << R.Error;
    // The reply is sent after runCheckpoint finished, so the counter
    // is already final; the log must be untouched (no partial
    // compaction against a failed snapshot).
    EXPECT_EQ(Server.checkpointFailures(), 1u);
    EXPECT_EQ(Wal::fileSize(Path), Before);

    // The append path never stopped: fresh commits still ack durably.
    ASSERT_TRUE(Cli.insert(TupleBuilder(Cat)
                               .set("owner", 9)
                               .set("acct", 0)
                               .set("balance", 50)
                               .build(),
                           &R));
    ASSERT_TRUE(R.ok());

    // Fault exhausted: the retry compacts, with no new failures.
    ASSERT_TRUE(Cli.checkpoint(&R));
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(Wal::fileSize(Path), Wal::MagicLen);
    EXPECT_EQ(Server.checkpointFailures(), 1u);

    ColumnId Bal = Cat.get("balance");
    ASSERT_TRUE(Cli.transact({wire::WireTxOp::add(TupleBuilder(Cat)
                                                      .set("owner", 9)
                                                      .set("acct", 0)
                                                      .build(),
                                                  Bal, 5)},
                             &R));
    ASSERT_TRUE(R.ok());
    Server.stop();
  }
  {
    RelServer Server(accountDecomp(Spec), Opts);
    std::string Err;
    ASSERT_TRUE(Server.start(&Err)) << Err;
    EXPECT_EQ(Server.recoveredTxns(), 1u)
        << "only the post-checkpoint transfer replays";
    RelClient Cli;
    ASSERT_TRUE(Cli.connect(Server.port()));
    std::vector<Tuple> Rows;
    ASSERT_TRUE(Cli.query(Tuple(), Cat.allColumns(), Rows));
    ASSERT_EQ(Rows.size(), 5u);
    int64_t Total = 0;
    for (const Tuple &T : Rows)
      Total += T.get(Cat.get("balance")).asInt();
    EXPECT_EQ(Total, 4 * 10 + 50 + 5);
    Server.stop();
  }
  removeWal(Path);
}

/// Auto-checkpoint pacing under failure: a failing attempt is counted
/// once and then BACKED OFF — the next CheckpointEvery-1 commits must
/// not re-queue the failing checkpoint (no hot-retry storm); the
/// attempt after the interval refills succeeds and compacts.
TEST(CrashRecovery, AutoCheckpointFailureBacksOffForAFullInterval) {
  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  std::string Path = walPath("ckptbackoff");
  removeWal(Path);

  ServerOptions Opts;
  Opts.WalPath = Path;
  Opts.Concurrent.NumShards = 4;
  Opts.CheckpointEvery = 4;
  RelServer Server(accountDecomp(Spec), Opts);
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;
  Server.wal().failNextCheckpoints(1);

  RelClient Cli;
  ASSERT_TRUE(Cli.connect(Server.port()));
  auto insertRow = [&](int64_t A) {
    RelClient::Reply R;
    ASSERT_TRUE(Cli.insert(TupleBuilder(Cat)
                               .set("owner", A)
                               .set("acct", 0)
                               .set("balance", 7)
                               .build(),
                           &R));
    ASSERT_TRUE(R.ok());
  };

  // The 4th commit crosses the interval and queues the failing
  // attempt.
  for (int64_t A = 0; A != 4; ++A)
    insertRow(A);
  ASSERT_TRUE(waitUntil([&] { return Server.checkpointFailures() == 1; }));
  EXPECT_GT(Wal::fileSize(Path), Wal::MagicLen);

  // Backoff: three more commits stay inside the refilled interval — no
  // new attempt, so the failure count cannot move and the log keeps
  // growing. (Each insert's durable ack orders it after the commit
  // path's maybeAutoCheckpoint call for that commit.)
  size_t Grown = Wal::fileSize(Path);
  for (int64_t A = 4; A != 7; ++A)
    insertRow(A);
  EXPECT_EQ(Server.checkpointFailures(), 1u);
  EXPECT_GT(Wal::fileSize(Path), Grown);

  // The commit that refills the interval triggers the (now healthy)
  // attempt: the log compacts and no further failures are counted.
  insertRow(7);
  ASSERT_TRUE(
      waitUntil([&] { return Wal::fileSize(Path) == Wal::MagicLen; }));
  EXPECT_EQ(Server.checkpointFailures(), 1u);

  Server.stop();
  removeWal(Path);
}

/// A client that requests a checkpoint and vanishes before the
/// committer barrier even runs: the captured ConnPtr keeps the
/// connection object alive, the checkpoint completes against the
/// pinned snapshot, and the completion's reply fails harmlessly
/// against the dead fd — the server neither crashes nor leaks the job.
TEST(CrashRecovery, CheckpointSurvivesClientDisconnectBeforeCompletion) {
  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  std::string Path = walPath("ckptdeadconn");
  removeWal(Path);

  ServerOptions Opts;
  Opts.WalPath = Path;
  Opts.Concurrent.NumShards = 4;
  RelServer Server(accountDecomp(Spec), Opts);
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;

  RelClient Cli;
  ASSERT_TRUE(Cli.connect(Server.port()));
  for (int64_t A = 0; A != 4; ++A) {
    RelClient::Reply R;
    ASSERT_TRUE(Cli.insert(TupleBuilder(Cat)
                               .set("owner", A)
                               .set("acct", 0)
                               .set("balance", 3)
                               .build(),
                           &R));
    ASSERT_TRUE(R.ok());
  }
  ASSERT_GT(Wal::fileSize(Path), Wal::MagicLen);

  {
    RelClient Doomed;
    ASSERT_TRUE(Doomed.connect(Server.port()));
    wire::ByteWriter W;
    W.u8(static_cast<uint8_t>(wire::Op::Checkpoint));
    W.u64(77);
    ASSERT_TRUE(Doomed.sendRaw(W.data()));
    // Gone before the reply — likely before the barrier even ran.
    Doomed.close();
  }

  // The checkpoint still completes (the log compacts)...
  ASSERT_TRUE(
      waitUntil([&] { return Wal::fileSize(Path) == Wal::MagicLen; }));
  EXPECT_EQ(Server.checkpointFailures(), 0u);
  // ...and the server is unharmed: the surviving connection still
  // commits durably and a fresh one connects.
  RelClient::Reply R;
  ASSERT_TRUE(Cli.insert(TupleBuilder(Cat)
                             .set("owner", 8)
                             .set("acct", 0)
                             .set("balance", 3)
                             .build(),
                         &R));
  ASSERT_TRUE(R.ok());
  RelClient Fresh;
  ASSERT_TRUE(Fresh.connect(Server.port()));
  EXPECT_TRUE(Fresh.ping());
  Server.stop();
  removeWal(Path);
}

} // namespace
