//===- tests/server/GroupCommitTest.cpp - Group commit tests --------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// The group-commit queue under contention (run under TSan in CI):
// deterministic folding via pause()/resume() — a paused committer
// accumulates compatible transactions and must apply them as ONE group
// under one stripe acquisition and one sync — plus the satellite's
// contended-transfer workload: N threads hammering 2-key transfers
// over a small account pool, asserting total-balance conservation,
// a nonzero abort count (the overdraft guard firing), and group sizes
// greater than one.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/GroupCommit.h"
#include "server/Server.h"

#include "decomp/Builder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <mutex>
#include <thread>
#include <unistd.h>

using namespace relc;

namespace {

RelSpecRef accountSpec() {
  return RelSpec::make("account", {"owner", "acct", "balance"},
                       {{"owner, acct", "balance"}});
}

Decomposition accountDecomp(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId U = B.addNode("u", "owner, acct", B.unit("balance"));
  NodeId Y = B.addNode("y", "owner", B.map("acct", DsKind::HashTable, U));
  B.addNode("x", "", B.map("owner", DsKind::HashTable, Y));
  return B.build();
}

Tuple key(const Catalog &Cat, int64_t Owner, int64_t Acct) {
  return TupleBuilder(Cat).set("owner", Owner).set("acct", Acct).build();
}

/// The interpreted mirror of the wire `add` op: floor-guarded
/// balance arithmetic that aborts on absent keys and overdrafts.
TxOp addOp(const Catalog &Cat, int64_t Owner, int64_t Acct, int64_t Delta,
           int64_t Floor) {
  ColumnId Bal = Cat.get("balance");
  return TxOp::upsertChecked(
      key(Cat, Owner, Acct),
      [Bal, Delta, Floor](const BindingFrame *F, Tuple &V) {
        if (!F)
          return false;
        int64_t Next = F->get(Bal).asInt() + Delta;
        if (Next < Floor)
          return false;
        V.set(Bal, Value::ofInt(Next));
        return true;
      });
}

std::vector<TxOp> transfer(const Catalog &Cat, int64_t From, int64_t To,
                           int64_t Amt) {
  std::vector<TxOp> Ops;
  Ops.push_back(addOp(Cat, From / 4, From % 4, -Amt, 0));
  Ops.push_back(addOp(Cat, To / 4, To % 4, Amt, INT64_MIN));
  return Ops;
}

/// Counts completions and lets a test wait for the N-th one.
struct DoneLatch {
  std::mutex Mu;
  std::condition_variable Cv;
  size_t Done = 0;
  size_t Committed = 0;
  size_t Aborted = 0;
  size_t NotDurable = 0;

  GroupCommit::DoneFn fn() {
    return [this](const TxResult &R, bool Durable) {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Done;
      if (R.Committed)
        ++Committed;
      else
        ++Aborted;
      if (R.Committed && !Durable)
        ++NotDurable;
      Cv.notify_all();
    };
  }
  void waitFor(size_t N) {
    std::unique_lock<std::mutex> Lock(Mu);
    Cv.wait(Lock, [&] { return Done >= N; });
  }
};

class GroupCommitFixture : public ::testing::Test {
protected:
  GroupCommitFixture()
      : Spec(accountSpec()), Cat(Spec->catalog()),
        Rel(accountDecomp(Spec), shardOpts()) {}

  static ConcurrentOptions shardOpts() {
    ConcurrentOptions O;
    O.NumShards = 4;
    return O;
  }

  void seed(int64_t Accounts, int64_t Balance) {
    for (int64_t A = 0; A != Accounts; ++A)
      ASSERT_TRUE(Rel.insert(TupleBuilder(Cat)
                                 .set("owner", A / 4)
                                 .set("acct", A % 4)
                                 .set("balance", Balance)
                                 .build()));
  }

  int64_t totalBalance() {
    ColumnId Bal = Cat.get("balance");
    int64_t Total = 0;
    for (const Tuple &T : Rel.toRelation().tuples())
      Total += T.get(Bal).asInt();
    return Total;
  }

  RelSpecRef Spec;
  const Catalog &Cat;
  ConcurrentRelation Rel;
};

TEST_F(GroupCommitFixture, PausedSubmissionsFoldIntoOneGroup) {
  seed(8, 1000);
  GroupCommit GC(Rel, nullptr);
  GC.start();
  GC.pause();
  DoneLatch Latch;
  // Eight transfers over the same two owners: identical stripe sets,
  // all compatible, all queued while the committer sleeps.
  for (int I = 0; I != 8; ++I)
    GC.submit(transfer(Cat, 0, 4, 10), Latch.fn());
  GC.resume();
  Latch.waitFor(8);
  GC.stop();
  GroupCommitStats S = GC.stats();
  EXPECT_EQ(S.Submitted, 8u);
  EXPECT_EQ(S.Committed, 8u);
  EXPECT_EQ(S.Groups, 1u) << "all eight were queued: one group";
  EXPECT_EQ(S.MaxGroupSize, 8u);
  EXPECT_EQ(S.MultiTxGroups, 1u);
  EXPECT_EQ(totalBalance(), 8 * 1000);
}

TEST_F(GroupCommitFixture, DisjointStripesFoldPartialOverlapDoesNot) {
  seed(16, 1000);
  // Find three single-stripe transfer plans: A and B on different
  // stripes (disjoint -> fold), and C = A ∪ B's partner overlapping
  // only partially with the folded union when combined with a third
  // stripe (ends the group).
  auto planOf = [&](int64_t From, int64_t To) {
    return Rel.transactLockPlan(transfer(Cat, From, To, 1));
  };
  // Owners 0..3 hash somewhere across 4 stripes; find two transfers
  // with disjoint stripe sets.
  int64_t FromA = 0, ToA = 4; // owners 0 -> 1
  ConcurrentRelation::TxLockPlan PA = planOf(FromA, ToA);
  ASSERT_FALSE(PA.AllShards);
  int64_t FromB = -1, ToB = -1;
  for (int64_t F = 8; F != 16 && FromB < 0; F += 4)
    for (int64_t T = 12; T != 16; T += 4) {
      if (F == T)
        continue;
      ConcurrentRelation::TxLockPlan PB = planOf(F, T);
      bool Disjoint = true;
      for (unsigned S : PB.Stripes)
        for (unsigned SA : PA.Stripes)
          Disjoint &= S != SA;
      if (Disjoint) {
        FromB = F;
        ToB = T;
        break;
      }
    }
  if (FromB < 0)
    GTEST_SKIP() << "hash placed every owner on overlapping stripes";

  GroupCommit GC(Rel, nullptr);
  GC.start();
  GC.pause();
  DoneLatch Latch;
  GC.submit(transfer(Cat, FromA, ToA, 5), Latch.fn());
  GC.submit(transfer(Cat, FromB, ToB, 5), Latch.fn());
  GC.resume();
  Latch.waitFor(2);
  GC.stop();
  GroupCommitStats S = GC.stats();
  EXPECT_EQ(S.Groups, 1u) << "disjoint stripe sets commit as one group";
  EXPECT_EQ(S.MaxGroupSize, 2u);
  EXPECT_EQ(totalBalance(), 16 * 1000);
}

TEST_F(GroupCommitFixture, BarrierRunsAfterEverythingBeforeIt) {
  seed(8, 1000);
  GroupCommit GC(Rel, nullptr);
  GC.start();
  GC.pause();
  DoneLatch Latch;
  for (int I = 0; I != 5; ++I)
    GC.submit(transfer(Cat, 0, 4, 1), Latch.fn());
  std::promise<size_t> SeenAtBarrier;
  GC.barrier([&] {
    std::lock_guard<std::mutex> Lock(Latch.Mu);
    SeenAtBarrier.set_value(Latch.Done);
  });
  GC.submit(transfer(Cat, 0, 4, 1), Latch.fn());
  GC.resume();
  EXPECT_EQ(SeenAtBarrier.get_future().get(), 5u)
      << "barrier must run after the five earlier txns, before the sixth";
  Latch.waitFor(6);
  GC.stop();
}

TEST_F(GroupCommitFixture, OneSyncPerGroup) {
  seed(8, 1000);
  std::string Dir = ::testing::TempDir();
  std::string Path = Dir + "/group_sync_wal_" +
                     std::to_string(::getpid()) + ".log";
  std::remove(Path.c_str());
  Wal Log(Path);
  std::string Err;
  ASSERT_TRUE(Log.open(&Err)) << Err;
  Rel.setCommitHook([&](uint64_t Ticket, const std::vector<TxOp> &Redo) {
    std::vector<uint8_t> P = wire::encodeRedo(Redo);
    Log.append(Ticket, P.data(), P.size());
  });
  GroupCommit GC(Rel, &Log);
  GC.start();
  GC.pause();
  DoneLatch Latch;
  for (int I = 0; I != 10; ++I)
    GC.submit(transfer(Cat, 0, 4, 1), Latch.fn());
  GC.resume();
  Latch.waitFor(10);
  GC.stop();
  GroupCommitStats S = GC.stats();
  EXPECT_EQ(S.Committed, 10u);
  EXPECT_EQ(S.Groups, 1u);
  EXPECT_EQ(S.Syncs, 1u) << "one fsync amortized over the whole group";
  EXPECT_EQ(Latch.NotDurable, 0u);
  Rel.setCommitHook(nullptr);
  std::remove(Path.c_str());
}

/// The satellite workload: contended 2-key transfers from N threads.
/// Conservation must hold exactly, some overdrafts must abort, and
/// the committer must demonstrably batch (a paused stretch guarantees
/// a multi-tx group even on a single-core runner).
TEST_F(GroupCommitFixture, ContendedTransfersConserveAndBatch) {
  const int64_t Accounts = 8; // small pool = real contention
  const int64_t Initial = 100;
  const int Threads = 4;
  const int PerThread = 150;
  seed(Accounts, Initial);

  GroupCommit GC(Rel, nullptr);
  GC.start();
  DoneLatch Latch;
  std::atomic<bool> PauseWindow{false};
  std::vector<std::thread> Workers;
  for (int W = 0; W != Threads; ++W)
    Workers.emplace_back([&, W] {
      uint64_t State = 0x9E3779B97F4A7C15ull * (W + 1) + 1;
      auto Rnd = [&State](uint64_t Mod) {
        State = State * 6364136223846793005ull + 1442695040888963407ull;
        return (State >> 33) % Mod;
      };
      for (int T = 0; T != PerThread; ++T) {
        int64_t From = static_cast<int64_t>(Rnd(Accounts));
        int64_t To = static_cast<int64_t>(Rnd(Accounts));
        if (From == To)
          To = (To + 1) % Accounts;
        // Amounts beyond one account's funds force floor aborts.
        int64_t Amt = 1 + static_cast<int64_t>(Rnd(2 * Initial));
        GC.submit(transfer(Cat, From, To, Amt), Latch.fn());
      }
    });
  // Mid-workload, freeze the committer briefly so submissions pile up:
  // the resume must fold them into multi-transaction groups.
  GC.pause();
  PauseWindow.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  GC.resume();
  for (std::thread &T : Workers)
    T.join();
  Latch.waitFor(static_cast<size_t>(Threads) * PerThread);
  GC.stop();

  GroupCommitStats S = GC.stats();
  EXPECT_EQ(S.Submitted, static_cast<uint64_t>(Threads) * PerThread);
  EXPECT_EQ(S.Committed + S.Aborted, S.Submitted);
  EXPECT_GT(S.Aborted, 0u) << "overdraft guard never fired";
  EXPECT_GT(S.Committed, 0u);
  EXPECT_GT(S.MaxGroupSize, 1u) << "no multi-transaction group formed";
  EXPECT_GT(S.MultiTxGroups, 0u);
  EXPECT_EQ(totalBalance(), Accounts * Initial)
      << "conservation violated by " << S.Committed << " commits";
}

/// Same invariant through the full server stack: pipelined wire
/// transacts from several client threads, group sizes observed via
/// the Stats opcode.
TEST(GroupCommitServer, PipelinedWireTransfersBatchAndConserve) {
  RelSpecRef Spec = accountSpec();
  const Catalog &Cat = Spec->catalog();
  ColumnId Bal = Cat.get("balance");
  ServerOptions Opts; // volatile: batching logic is WAL-independent
  Opts.Concurrent.NumShards = 4;
  RelServer Server(accountDecomp(Spec), Opts);
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;

  const int64_t Accounts = 8;
  {
    RelClient Cli;
    ASSERT_TRUE(Cli.connect(Server.port()));
    for (int64_t A = 0; A != Accounts; ++A) {
      RelClient::Reply R;
      ASSERT_TRUE(Cli.insert(TupleBuilder(Cat)
                                 .set("owner", A / 4)
                                 .set("acct", A % 4)
                                 .set("balance", 100)
                                 .build(),
                             &R));
      ASSERT_TRUE(R.ok());
    }
  }

  // Pause the committer and pipeline a burst: the conn thread submits
  // them all, so the resume has a queue to fold.
  Server.committer().pause();
  RelClient Cli;
  ASSERT_TRUE(Cli.connect(Server.port()));
  const int Burst = 16;
  for (int I = 0; I != Burst; ++I) {
    std::vector<wire::WireTxOp> Ops = {
        wire::WireTxOp::add(key(Cat, 0, 0), Bal, -1, 0),
        wire::WireTxOp::add(key(Cat, 1, 0), Bal, 1)};
    ASSERT_NE(Cli.sendTransact(Ops), 0u);
  }
  // sendTransact returns once the frame is in the socket buffer; the
  // conn thread still has to read and submit it. Resuming before the
  // whole burst is queued lets the committer drain 1-by-1 groups, so
  // wait for every submission (8 seed inserts + the burst) first.
  while (Server.commitStats().Submitted <
         static_cast<uint64_t>(Accounts + Burst))
    std::this_thread::yield();
  Server.committer().resume();
  int Acked = 0, Aborted = 0;
  for (int I = 0; I != Burst; ++I) {
    RelClient::Reply R;
    ASSERT_TRUE(Cli.recvReply(R));
    (R.ok() ? Acked : Aborted) += 1;
  }
  EXPECT_EQ(Acked + Aborted, Burst);

  RelClient::ServerStats S;
  ASSERT_TRUE(Cli.stats(S));
  EXPECT_GT(S.MaxGroupSize, 1u);

  std::vector<Tuple> Rows;
  ASSERT_TRUE(Cli.query(Tuple(), Cat.allColumns(), Rows));
  int64_t Total = 0;
  for (const Tuple &T : Rows)
    Total += T.get(Bal).asInt();
  EXPECT_EQ(Total, Accounts * 100);
  Server.stop();
}

} // namespace
