//===- tests/property/SoundnessTest.cpp - Theorem 5, dynamically -*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central correctness property (Theorem 5): for every enumerated
/// adequate decomposition of several specs, a random FD-respecting
/// sequence of insert/remove/update/query operations driven through
/// both the synthesized representation and the specification oracle
/// yields identical relations (via α) and identical query answers, with
/// the instance graph well-formed throughout.
///
//===----------------------------------------------------------------------===//

#include "autotuner/Enumerator.h"
#include "decomp/Builder.h"
#include "runtime/SynthesizedRelation.h"
#include "workloads/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace relc;

namespace {

/// One random FD-respecting mutation/query mix, oracle vs synthesized.
void runScenario(const Decomposition &D, uint64_t Seed, unsigned NumOps,
                 int64_t ValueRange) {
  const RelSpecRef &Spec = D.spec();
  const Catalog &Cat = Spec->catalog();
  ColumnSet All = Spec->columns();
  SynthesizedRelation Synth{Decomposition(D)};
  Relation Oracle;
  Rng R(Seed);

  auto randomFullTuple = [&] {
    Tuple T;
    for (ColumnId C : All)
      T.set(C, Value::ofInt(R.range(0, ValueRange)));
    return T;
  };
  auto randomPattern = [&](bool AllowEmpty) {
    Tuple T;
    for (ColumnId C : All)
      if (R.chance(0.4))
        T.set(C, Value::ofInt(R.range(0, ValueRange)));
    if (!AllowEmpty && T.empty() && !Oracle.empty()) {
      // Bind one column from a live tuple so patterns often hit.
      Tuple Live = Oracle.tuples()[R.below(Oracle.size())];
      ColumnId C = All.first();
      T.set(C, Live.get(C));
    }
    return T;
  };

  for (unsigned Op = 0; Op != NumOps; ++Op) {
    switch (R.below(8)) {
    case 0:
    case 1:
    case 2: { // insert
      Tuple T = randomFullTuple();
      if (!Oracle.insertPreservesFds(T, Spec->fds()))
        break;
      bool Changed = !Oracle.contains(T);
      Oracle.insert(T);
      EXPECT_EQ(Synth.insert(T), Changed);
      break;
    }
    case 3: { // remove by random pattern
      Tuple Pat = randomPattern(/*AllowEmpty=*/false);
      EXPECT_EQ(Synth.remove(Pat), Oracle.remove(Pat));
      break;
    }
    case 4: { // keyed update of a live tuple
      if (Oracle.empty())
        break;
      Tuple Live = Oracle.tuples()[R.below(Oracle.size())];
      // Use the first declared FD's lhs as the key if it is one;
      // otherwise update by full tuple minus one column.
      ColumnSet Key;
      for (const FuncDep &Fd : Spec->fds().deps())
        if (Spec->fds().isKey(Fd.Lhs, All)) {
          Key = Fd.Lhs;
          break;
        }
      if (Key.empty())
        Key = All; // no proper key: degenerate update by full tuple
      Tuple Pat = Live.project(Key);
      Tuple Changes;
      for (ColumnId C : All.minus(Key))
        if (R.chance(0.6))
          Changes.set(C, Value::ofInt(R.range(0, ValueRange)));
      if (Changes.empty())
        break;
      // Lemma 4(c)'s precondition: the updated relation must still
      // satisfy ∆ (a non-key FD like d → e can be violated by an
      // unlucky change); skip updates outside the contract.
      Relation Post = Oracle;
      Post.update(Pat, Changes);
      if (!Post.satisfies(Spec->fds()) || Post.size() != Oracle.size())
        break;
      size_t N = Oracle.update(Pat, Changes);
      EXPECT_EQ(Synth.update(Pat, Changes), N);
      break;
    }
    case 5: { // query by pattern, random projection
      Tuple Pat = randomPattern(/*AllowEmpty=*/true);
      ColumnSet Out;
      for (ColumnId C : All)
        if (R.chance(0.5))
          Out.insert(C);
      if (Out.empty())
        Out = All;
      auto Got = Synth.query(Pat, Out);
      auto Want = Oracle.query(Pat, Out);
      std::sort(Got.begin(), Got.end());
      std::sort(Want.begin(), Want.end());
      EXPECT_EQ(Got, Want) << "query mismatch, pattern " << Pat.str(Cat);
      break;
    }
    case 6: { // contains
      Tuple Pat = randomPattern(true);
      EXPECT_EQ(Synth.contains(Pat),
                !Oracle.query(Pat, All).empty());
      break;
    }
    case 7: { // full α + well-formedness audit (amortized)
      if (Op % 16 != 0)
        break;
      EXPECT_EQ(Synth.toRelation(), Oracle);
      WfResult Wf = Synth.checkWellFormed();
      ASSERT_TRUE(Wf.Ok) << Wf.Error;
      break;
    }
    }
    ASSERT_EQ(Synth.size(), Oracle.size());
  }
  // Final audit.
  EXPECT_EQ(Synth.toRelation(), Oracle);
  WfResult Wf = Synth.checkWellFormed();
  EXPECT_TRUE(Wf.Ok) << Wf.Error;
}

struct SpecCase {
  const char *Name;
  RelSpecRef Spec;
  unsigned MaxEdges;
};

std::vector<SpecCase> specCases() {
  return {
      {"edges",
       RelSpec::make("edges", {"src", "dst", "weight"},
                     {{"src, dst", "weight"}}),
       3},
      {"scheduler",
       RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                     {{"ns, pid", "state, cpu"}}),
       3},
      {"kv", RelSpec::make("kv", {"k", "v"}, {{"k", "v"}}), 2},
      {"set", RelSpec::make("nodes", {"id"}, {}), 2},
  };
}

class SoundnessTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SoundnessTest, OracleParityAcrossAllDecompositions) {
  SpecCase C = specCases()[GetParam()];
  EnumeratorOptions Opts;
  Opts.MaxEdges = C.MaxEdges;
  Opts.MaxResults = 64; // keep runtime bounded; shapes beyond are akin
  std::vector<Decomposition> Decomps =
      enumerateDecompositions(C.Spec, Opts);
  ASSERT_FALSE(Decomps.empty());
  unsigned Index = 0;
  for (const Decomposition &D : Decomps) {
    SCOPED_TRACE(std::string(C.Name) + " decomposition #" +
                 std::to_string(Index) + ": " + D.canonicalString());
    runScenario(D, /*Seed=*/1000 + Index, /*NumOps=*/120,
                /*ValueRange=*/6);
    ++Index;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, SoundnessTest,
                         ::testing::Range<size_t>(0, 4),
                         [](const auto &Info) {
                           return specCases()[Info.param].Name;
                         });

TEST(SoundnessDsTest, ParityAcrossDataStructures) {
  // One fixed shape (Fig. 2 for the scheduler), every container kind on
  // every edge in rotation.
  RelSpecRef Spec = RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                                  {{"ns, pid", "state, cpu"}});
  EnumeratorOptions Opts;
  Opts.MaxEdges = 4;
  Opts.MaxResults = 8;
  std::vector<Decomposition> Shapes = enumerateDecompositions(Spec, Opts);
  ASSERT_FALSE(Shapes.empty());
  for (const Decomposition &Shape : Shapes) {
    for (DsKind K : AllDsKinds) {
      std::vector<DsKind> Kinds;
      bool Usable = true;
      for (EdgeId E = 0; E != Shape.numEdges(); ++E) {
        Kinds.push_back(edgeSupportsDs(Shape.edge(E), K) ? K
                                                         : DsKind::HashTable);
        Usable = true;
      }
      if (!Usable)
        continue;
      Decomposition D = withDataStructures(Shape, Kinds);
      SCOPED_TRACE(std::string(dsKindName(K)) + " on " + D.canonicalString());
      runScenario(D, /*Seed=*/77 + static_cast<uint64_t>(K), /*NumOps=*/90,
                  /*ValueRange=*/5);
    }
  }
}

TEST(SoundnessStressTest, LongRunDeepChain) {
  // A deeper relation exercising multi-level cuts and updates.
  RelSpecRef Spec = RelSpec::make(
      "r", {"a", "b", "c", "d", "e"},
      {{"a, b, c", "d, e"}, {"d", "e"}});
  DecompBuilder B(Spec);
  NodeId N3 = B.addNode("n3", "a, b, c, d", B.unit("e"));
  NodeId N2 = B.addNode("n2", "a, b, c", B.join(B.unit("d"),
                                                B.map("d", DsKind::Btree, N3)));
  NodeId N1 = B.addNode("n1", "a, b", B.map("c", DsKind::HashTable, N2));
  NodeId N0 = B.addNode("n0", "a", B.map("b", DsKind::Btree, N1));
  B.addNode("x", "", B.map("a", DsKind::HashTable, N0));
  Decomposition D = B.build();
  runScenario(D, /*Seed=*/5, /*NumOps=*/400, /*ValueRange=*/4);
}

} // namespace
