//===- tests/property/LemmaTest.cpp - Lemma 1 & 2, randomized ----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized checks of the paper's lemmas:
///  - Lemma 1 (adequacy soundness): every adequate decomposition can
///    represent every FD-respecting relation — built by inserting the
///    relation tuple by tuple, then α-compared and wf-checked.
///  - Lemma 2 (query soundness): every *valid* plan (not just the
///    cheapest) returns exactly π_B {t ∈ r | t ⊇ s}.
///  - Lemma 3 (initialization): dempty represents ∅.
///
//===----------------------------------------------------------------------===//

#include "autotuner/Enumerator.h"
#include "query/Exec.h"
#include "runtime/Mutators.h"
#include "query/Planner.h"
#include "query/Validity.h"
#include "runtime/SynthesizedRelation.h"
#include "workloads/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace relc;

namespace {

/// A random relation over \p Spec's columns satisfying its FDs, built
/// by rejection sampling.
Relation randomRelation(const RelSpecRef &Spec, Rng &R, size_t Target,
                        int64_t ValueRange) {
  Relation Rel;
  unsigned Attempts = 0;
  while (Rel.size() < Target && Attempts++ < Target * 20) {
    Tuple T;
    for (ColumnId C : Spec->columns())
      T.set(C, Value::ofInt(R.range(0, ValueRange)));
    if (Rel.insertPreservesFds(T, Spec->fds()))
      Rel.insert(T);
  }
  return Rel;
}

TEST(Lemma1Test, AdequateDecompositionsRepresentEveryRelation) {
  for (const auto &[Name, Spec] :
       {std::pair<const char *, RelSpecRef>{
            "edges", RelSpec::make("edges", {"src", "dst", "weight"},
                                   {{"src, dst", "weight"}})},
        {"scheduler", RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                                    {{"ns, pid", "state, cpu"}})}}) {
    EnumeratorOptions Opts;
    Opts.MaxEdges = 3;
    Opts.MaxResults = 48;
    Rng R(99);
    std::vector<Decomposition> Decomps = enumerateDecompositions(Spec, Opts);
    ASSERT_FALSE(Decomps.empty()) << Name;
    for (unsigned Trial = 0; Trial != 3; ++Trial) {
      Relation Rel = randomRelation(Spec, R, 12, 5);
      for (const Decomposition &D : Decomps) {
        SynthesizedRelation S{Decomposition(D)};
        for (const Tuple &T : Rel.tuples())
          S.insert(T);
        EXPECT_EQ(S.toRelation(), Rel)
            << Name << " " << D.canonicalString();
        WfResult Wf = S.checkWellFormed();
        ASSERT_TRUE(Wf.Ok) << Wf.Error;
      }
    }
  }
}

TEST(Lemma2Test, EveryParetoPlanMatchesOracle) {
  // Lemma 2: π_B(dqexec q d s) = π_B{t ∈ r | t ⊇ s} for every
  // Pareto-optimal valid plan q (not just the cheapest one the facade
  // caches), every input-column subset, and hit + miss patterns.
  RelSpecRef Spec = RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                                  {{"ns, pid", "state, cpu"}});
  EnumeratorOptions Opts;
  Opts.MaxEdges = 4;
  Opts.MaxResults = 8;
  Rng R(4242);
  for (const Decomposition &D : enumerateDecompositions(Spec, Opts)) {
    auto DRef = std::make_shared<Decomposition>(D);
    InstanceGraph G(DRef);
    Relation Rel = randomRelation(Spec, R, 15, 4);
    for (const Tuple &T : Rel.tuples())
      dinsert(G, T);

    for (uint64_t In = 0; In != 16; ++In) {
      ColumnSet InCols = ColumnSet::fromMask(In);
      std::vector<QueryPlan> Plans = enumeratePlans(D, InCols, CostParams());
      std::vector<Tuple> Patterns;
      if (!Rel.empty())
        Patterns.push_back(Rel.tuples()[R.below(Rel.size())].project(InCols));
      Tuple Miss;
      for (ColumnId C : InCols)
        Miss.set(C, Value::ofInt(1000));
      Patterns.push_back(Miss);

      for (const QueryPlan &P : Plans) {
        ValidityResult V = checkPlanValidity(D, P);
        ASSERT_TRUE(V.ok()) << P.str() << ": " << V.Error;
        ColumnSet OutCols = *V.OutputCols;
        // Lemma 2's implicit side condition (see Validity.h): execution
        // can only filter on pattern columns the plan actually binds —
        // A ⊆ B. Plans that skip pattern columns answer a *different*
        // query; the planner's callers enforce this containment.
        if (!InCols.subsetOf(OutCols))
          continue;
        for (const Tuple &Pattern : Patterns) {
          // π_B(dqexec q d s) must equal π_B{t ∈ r | t ⊇ s}.
          std::set<Tuple> Got;
          execPlan(P, G, Pattern, [&](const Tuple &T) {
            Got.insert(T.projectIfPresent(OutCols));
            return true;
          });
          std::set<Tuple> Want;
          for (const Tuple &T : Rel.tuples())
            if (T.extends(Pattern))
              Want.insert(T.projectIfPresent(OutCols));
          EXPECT_EQ(Got, Want)
              << "plan " << P.str() << " pattern "
              << Pattern.str(Spec->catalog()) << " on "
              << D.canonicalString();
        }
      }
    }
  }
}

TEST(Lemma3Test, EmptyInstanceRepresentsEmptyRelation) {
  RelSpecRef Spec = RelSpec::make("edges", {"src", "dst", "weight"},
                                  {{"src, dst", "weight"}});
  EnumeratorOptions Opts;
  Opts.MaxEdges = 3;
  Opts.MaxResults = 64;
  for (const Decomposition &D : enumerateDecompositions(Spec, Opts)) {
    SynthesizedRelation S{Decomposition(D)};
    EXPECT_TRUE(S.toRelation().empty());
    WfResult Wf = S.checkWellFormed();
    EXPECT_TRUE(Wf.Ok) << Wf.Error;
  }
}

} // namespace
