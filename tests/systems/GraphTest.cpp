//===- tests/systems/GraphTest.cpp - Graph system tests ----------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the graph benchmark system (Section 6.1) across the three
/// representative decompositions of Fig. 12, cross-checked against the
/// hand-coded adjacency baseline.
///
//===----------------------------------------------------------------------===//

#include "systems/GraphRelational.h"

#include "baselines/GraphBaseline.h"
#include "workloads/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace relc;

namespace {

enum class Shape { ForwardOnly, Shared, Unshared };

class GraphShapeTest : public ::testing::TestWithParam<Shape> {
protected:
  static Decomposition make(Shape S) {
    RelSpecRef Spec = GraphRelational::makeSpec();
    switch (S) {
    case Shape::ForwardOnly:
      return GraphRelational::makeForwardOnly(Spec);
    case Shape::Shared:
      return GraphRelational::makeSharedBidirectional(Spec);
    case Shape::Unshared:
      return GraphRelational::makeUnsharedBidirectional(Spec);
    }
    __builtin_unreachable();
  }
};

TEST_P(GraphShapeTest, AddLookupRemove) {
  GraphRelational G(make(GetParam()));
  EXPECT_TRUE(G.addEdge(1, 2, 10));
  EXPECT_TRUE(G.addEdge(2, 3, 20));
  EXPECT_FALSE(G.addEdge(1, 2, 10)); // duplicate
  EXPECT_EQ(G.numEdges(), 2u);
  EXPECT_EQ(G.weightOf(1, 2), 10);
  EXPECT_EQ(G.weightOf(2, 3), 20);
  EXPECT_TRUE(G.removeEdge(1, 2));
  EXPECT_FALSE(G.removeEdge(1, 2));
  EXPECT_EQ(G.numEdges(), 1u);
}

TEST_P(GraphShapeTest, SuccessorsEnumerate) {
  GraphRelational G(make(GetParam()));
  G.addEdge(1, 2, 0);
  G.addEdge(1, 3, 0);
  G.addEdge(2, 3, 0);
  std::vector<int64_t> Succ;
  G.forEachSuccessor(1, [&](int64_t Dst, int64_t) {
    Succ.push_back(Dst);
    return true;
  });
  std::sort(Succ.begin(), Succ.end());
  EXPECT_EQ(Succ, (std::vector<int64_t>{2, 3}));
}

TEST_P(GraphShapeTest, PredecessorsEnumerate) {
  GraphRelational G(make(GetParam()));
  G.addEdge(1, 3, 0);
  G.addEdge(2, 3, 0);
  G.addEdge(3, 1, 0);
  std::vector<int64_t> Pred;
  G.forEachPredecessor(3, [&](int64_t Src, int64_t) {
    Pred.push_back(Src);
    return true;
  });
  std::sort(Pred.begin(), Pred.end());
  EXPECT_EQ(Pred, (std::vector<int64_t>{1, 2}));
}

TEST_P(GraphShapeTest, DfsForwardAndBackward) {
  // 0 → 1 → 2 → 3 plus a side edge 1 → 3.
  GraphRelational G(make(GetParam()));
  G.addEdge(0, 1, 1);
  G.addEdge(1, 2, 1);
  G.addEdge(2, 3, 1);
  G.addEdge(1, 3, 1);
  EXPECT_EQ(G.depthFirstSearch(0, /*Backward=*/false), 4u);
  EXPECT_EQ(G.depthFirstSearch(3, /*Backward=*/true), 4u);
  EXPECT_EQ(G.depthFirstSearch(3, /*Backward=*/false), 1u);
}

TEST_P(GraphShapeTest, MatchesBaselineUnderChurn) {
  GraphRelational G(make(GetParam()));
  GraphBaseline B;
  Rng R(GetParam() == Shape::Shared ? 7 : 8);
  for (int Op = 0; Op < 1500; ++Op) {
    int64_t S = static_cast<int64_t>(R.below(30));
    int64_t D = static_cast<int64_t>(R.below(30));
    if (R.chance(0.7)) {
      int64_t W = static_cast<int64_t>(R.below(1000));
      EXPECT_EQ(G.addEdge(S, D, W), B.addEdge(S, D, W));
    } else {
      EXPECT_EQ(G.removeEdge(S, D), B.removeEdge(S, D));
    }
    ASSERT_EQ(G.numEdges(), B.numEdges());
  }
  for (int64_t N = 0; N < 30; ++N) {
    std::vector<int64_t> Gs, Bs;
    G.forEachSuccessor(N, [&](int64_t D, int64_t) {
      Gs.push_back(D);
      return true;
    });
    if (const auto *Succ = B.successors(N))
      for (auto [D, W] : *Succ) {
        Bs.push_back(D);
        EXPECT_EQ(G.weightOf(N, D), W);
      }
    std::sort(Gs.begin(), Gs.end());
    std::sort(Bs.begin(), Bs.end());
    EXPECT_EQ(Gs, Bs) << "successors of " << N;
  }
  WfResult Wf = G.relation().checkWellFormed();
  EXPECT_TRUE(Wf.Ok) << Wf.Error;
}

INSTANTIATE_TEST_SUITE_P(AllShapes, GraphShapeTest,
                         ::testing::Values(Shape::ForwardOnly, Shape::Shared,
                                           Shape::Unshared),
                         [](const auto &Info) {
                           switch (Info.param) {
                           case Shape::ForwardOnly:
                             return "ForwardOnly";
                           case Shape::Shared:
                             return "Shared";
                           case Shape::Unshared:
                             return "Unshared";
                           }
                           return "?";
                         });

TEST(GraphTest, WeightOfMissingEdge) {
  GraphRelational G(
      GraphRelational::makeForwardOnly(GraphRelational::makeSpec()));
  G.addEdge(1, 2, 10);
  EXPECT_EQ(G.weightOf(2, 1), -1); // sentinel for absent edges
}

TEST(GraphTest, PredecessorsOnForwardOnlyStillCorrect) {
  // Decomposition 1 answers backward queries too — quadratically, by
  // scanning — but the answers must be identical.
  GraphRelational G(
      GraphRelational::makeForwardOnly(GraphRelational::makeSpec()));
  G.addEdge(1, 3, 0);
  G.addEdge(2, 3, 0);
  std::vector<int64_t> Pred;
  G.forEachPredecessor(3, [&](int64_t Src, int64_t) {
    Pred.push_back(Src);
    return true;
  });
  std::sort(Pred.begin(), Pred.end());
  EXPECT_EQ(Pred, (std::vector<int64_t>{1, 2}));
}

TEST(GraphTest, SharedUsesFewerInstancesThanUnshared) {
  // Fig. 12's point: decomposition 5 shares the weight node, 9 copies
  // it. Same edges, strictly fewer live instances when shared.
  RelSpecRef Spec = GraphRelational::makeSpec();
  GraphRelational Shared(GraphRelational::makeSharedBidirectional(Spec));
  GraphRelational Unshared(GraphRelational::makeUnsharedBidirectional(Spec));
  for (int64_t I = 0; I < 20; ++I) {
    Shared.addEdge(I % 5, I, I);
    Unshared.addEdge(I % 5, I, I);
  }
  EXPECT_LT(Shared.relation().liveInstances(),
            Unshared.relation().liveInstances());
}

} // namespace
