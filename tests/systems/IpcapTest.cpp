//===- tests/systems/IpcapTest.cpp - IpCap system tests ----------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the network-flow accounting system (Section 6.2) in both its
/// default and transposed decompositions against the hand-coded
/// baseline.
///
//===----------------------------------------------------------------------===//

#include "systems/IpcapRelational.h"

#include "baselines/IpcapBaseline.h"
#include "workloads/PacketTrace.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace relc;

namespace {

TEST(IpcapTest, AccountCreatesAndUpdatesFlows) {
  IpcapRelational I;
  I.accountPacket(10, 20, 100, /*Outgoing=*/true);
  EXPECT_EQ(I.numFlows(), 1u);
  I.accountPacket(10, 20, 50, /*Outgoing=*/false);
  EXPECT_EQ(I.numFlows(), 1u);
  const FlowStats *S = I.flowOf(10, 20);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->BytesOut, 100);
  EXPECT_EQ(S->BytesIn, 50);
  EXPECT_EQ(S->Packets, 2);
}

TEST(IpcapTest, DistinctFlowsPerHostPair) {
  IpcapRelational I;
  I.accountPacket(10, 20, 1, true);
  I.accountPacket(10, 21, 1, true);
  I.accountPacket(11, 20, 1, true);
  EXPECT_EQ(I.numFlows(), 3u);
  EXPECT_EQ(I.flowOf(10, 21)->Packets, 1);
  EXPECT_EQ(I.flowOf(99, 99), nullptr);
}

TEST(IpcapTest, FlushDrainsAndClears) {
  IpcapRelational I;
  I.accountPacket(1, 2, 10, true);
  I.accountPacket(3, 4, 20, false);
  auto Records = I.flush();
  EXPECT_EQ(Records.size(), 2u);
  EXPECT_EQ(I.numFlows(), 0u);
  EXPECT_EQ(I.flowOf(1, 2), nullptr);
  // Accounting resumes cleanly after a flush.
  I.accountPacket(1, 2, 5, true);
  EXPECT_EQ(I.numFlows(), 1u);
  EXPECT_EQ(I.flowOf(1, 2)->BytesOut, 5);
}

TEST(IpcapTest, TransposedDecompositionSameBehaviour) {
  RelSpecRef Spec = IpcapRelational::makeSpec();
  IpcapRelational Default;
  IpcapRelational Transposed(
      IpcapRelational::makeTransposedDecomposition(Spec));
  PacketTraceOptions Opts;
  Opts.NumPackets = 3000;
  Opts.Seed = 99;
  for (const Packet &P : generatePacketTrace(Opts)) {
    Default.accountPacket(P.LocalHost, P.RemoteHost, P.Bytes, P.Outgoing);
    Transposed.accountPacket(P.LocalHost, P.RemoteHost, P.Bytes, P.Outgoing);
  }
  EXPECT_EQ(Default.numFlows(), Transposed.numFlows());

  auto Da = Default.flush();
  auto Tr = Transposed.flush();
  auto Key = [](const FlowRecord &R) {
    return std::pair<int64_t, int64_t>(R.LocalHost, R.RemoteHost);
  };
  auto ByKey = [&](const FlowRecord &A, const FlowRecord &B) {
    return Key(A) < Key(B);
  };
  std::sort(Da.begin(), Da.end(), ByKey);
  std::sort(Tr.begin(), Tr.end(), ByKey);
  ASSERT_EQ(Da.size(), Tr.size());
  for (size_t I = 0; I != Da.size(); ++I) {
    EXPECT_EQ(Key(Da[I]), Key(Tr[I]));
    EXPECT_EQ(Da[I].Stats.BytesIn, Tr[I].Stats.BytesIn);
    EXPECT_EQ(Da[I].Stats.BytesOut, Tr[I].Stats.BytesOut);
    EXPECT_EQ(Da[I].Stats.Packets, Tr[I].Stats.Packets);
  }
}

TEST(IpcapTest, MatchesBaselineOnTrace) {
  IpcapRelational I;
  IpcapBaseline B;
  PacketTraceOptions Opts;
  Opts.NumPackets = 5000;
  Opts.Seed = 7;
  std::vector<Packet> Trace = generatePacketTrace(Opts);
  for (const Packet &P : Trace) {
    I.accountPacket(P.LocalHost, P.RemoteHost, P.Bytes, P.Outgoing);
    B.accountPacket(P.LocalHost, P.RemoteHost, P.Bytes, P.Outgoing);
  }
  ASSERT_EQ(I.numFlows(), B.numFlows());
  for (const Packet &P : Trace) {
    const FlowStats *Si = I.flowOf(P.LocalHost, P.RemoteHost);
    const FlowStats *Sb = B.flowOf(P.LocalHost, P.RemoteHost);
    ASSERT_NE(Si, nullptr);
    ASSERT_NE(Sb, nullptr);
    EXPECT_EQ(Si->BytesIn, Sb->BytesIn);
    EXPECT_EQ(Si->BytesOut, Sb->BytesOut);
    EXPECT_EQ(Si->Packets, Sb->Packets);
  }
  WfResult Wf = I.relation().checkWellFormed();
  EXPECT_TRUE(Wf.Ok) << Wf.Error;
}

TEST(IpcapTest, PeriodicFlushMatchesBaseline) {
  // The daemon's real loop: account, periodically flush to "disk".
  IpcapRelational I;
  IpcapBaseline B;
  PacketTraceOptions Opts;
  Opts.NumPackets = 2000;
  Opts.Seed = 21;
  std::vector<Packet> Trace = generatePacketTrace(Opts);
  int64_t TotalI = 0, TotalB = 0;
  for (size_t N = 0; N != Trace.size(); ++N) {
    const Packet &P = Trace[N];
    I.accountPacket(P.LocalHost, P.RemoteHost, P.Bytes, P.Outgoing);
    B.accountPacket(P.LocalHost, P.RemoteHost, P.Bytes, P.Outgoing);
    if (N % 500 == 499) {
      for (const FlowRecord &R : I.flush())
        TotalI += R.Stats.BytesIn + R.Stats.BytesOut;
      for (const FlowRecord &R : B.flush())
        TotalB += R.Stats.BytesIn + R.Stats.BytesOut;
      EXPECT_EQ(TotalI, TotalB);
    }
  }
}

} // namespace
