//===- tests/systems/SchedulerTest.cpp - Scheduler system tests --*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the process-scheduler system (the paper's running example)
/// through its relational implementation, cross-checked against the
/// hand-coded baseline module on identical operation sequences.
///
//===----------------------------------------------------------------------===//

#include "systems/SchedulerRelational.h"

#include "baselines/SchedulerBaseline.h"
#include "decomp/Builder.h"
#include "workloads/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace relc;

namespace {

TEST(SchedulerTest, AddAndQueryByKey) {
  SchedulerRelational S;
  EXPECT_TRUE(S.addProcess(1, 1, ProcState::Sleeping, 7));
  EXPECT_TRUE(S.addProcess(1, 2, ProcState::Running, 4));
  EXPECT_TRUE(S.addProcess(2, 1, ProcState::Sleeping, 5));
  EXPECT_EQ(S.size(), 3u);
  EXPECT_EQ(S.cpuOf(1, 2), 4);
  EXPECT_EQ(S.cpuOf(2, 1), 5);
}

TEST(SchedulerTest, DuplicatePidInDifferentNamespaces) {
  // The virtualization scenario from the introduction: same pid, two
  // namespaces.
  SchedulerRelational S;
  EXPECT_TRUE(S.addProcess(1, 42, ProcState::Running, 0));
  EXPECT_TRUE(S.addProcess(2, 42, ProcState::Sleeping, 0));
  EXPECT_FALSE(S.addProcess(1, 42, ProcState::Running, 0)); // duplicate
  EXPECT_EQ(S.size(), 2u);
}

TEST(SchedulerTest, EnumerateByState) {
  SchedulerRelational S;
  S.addProcess(1, 1, ProcState::Sleeping, 7);
  S.addProcess(1, 2, ProcState::Running, 4);
  S.addProcess(2, 1, ProcState::Sleeping, 5);
  auto Sleeping = S.processesIn(ProcState::Sleeping);
  auto Running = S.processesIn(ProcState::Running);
  EXPECT_EQ(Sleeping.size(), 2u);
  ASSERT_EQ(Running.size(), 1u);
  EXPECT_EQ(Running[0], (std::pair<int64_t, int64_t>(1, 2)));
}

TEST(SchedulerTest, EnumerateByNamespace) {
  SchedulerRelational S;
  S.addProcess(1, 1, ProcState::Sleeping, 7);
  S.addProcess(1, 2, ProcState::Running, 4);
  S.addProcess(2, 1, ProcState::Sleeping, 5);
  auto Pids = S.pidsInNamespace(1);
  std::sort(Pids.begin(), Pids.end());
  EXPECT_EQ(Pids, (std::vector<int64_t>{1, 2}));
  EXPECT_TRUE(S.pidsInNamespace(99).empty());
}

TEST(SchedulerTest, SetStateMovesBetweenLists) {
  SchedulerRelational S;
  S.addProcess(1, 1, ProcState::Sleeping, 7);
  EXPECT_TRUE(S.setState(1, 1, ProcState::Running));
  EXPECT_EQ(S.processesIn(ProcState::Sleeping).size(), 0u);
  EXPECT_EQ(S.processesIn(ProcState::Running).size(), 1u);
  // The invariant from the introduction: the process appears in
  // *exactly one* of the two state lists — guaranteed by construction,
  // spot-checked here.
  EXPECT_FALSE(S.setState(9, 9, ProcState::Running)); // unknown process
}

TEST(SchedulerTest, ChargeCpuAccumulates) {
  SchedulerRelational S;
  S.addProcess(1, 1, ProcState::Running, 10);
  EXPECT_TRUE(S.chargeCpu(1, 1, 5));
  EXPECT_EQ(S.cpuOf(1, 1), 15);
  EXPECT_TRUE(S.chargeCpu(1, 1, 5));
  EXPECT_EQ(S.cpuOf(1, 1), 20);
  EXPECT_FALSE(S.chargeCpu(3, 3, 1));
}

TEST(SchedulerTest, RemoveProcess) {
  SchedulerRelational S;
  S.addProcess(1, 1, ProcState::Sleeping, 7);
  S.addProcess(1, 2, ProcState::Running, 4);
  EXPECT_TRUE(S.removeProcess(1, 1));
  EXPECT_FALSE(S.removeProcess(1, 1));
  EXPECT_EQ(S.size(), 1u);
  EXPECT_TRUE(S.processesIn(ProcState::Sleeping).empty());
}

TEST(SchedulerTest, LookupReturnsFullTuple) {
  SchedulerRelational S;
  S.addProcess(7, 42, ProcState::Running, 3);
  auto T = S.lookup(7, 42);
  ASSERT_TRUE(T.has_value());
  const Catalog &Cat = S.relation().catalog();
  EXPECT_EQ(T->get(Cat.get("cpu")).asInt(), 3);
  EXPECT_FALSE(S.lookup(7, 43).has_value());
}

TEST(SchedulerTest, MatchesBaselineUnderRandomOps) {
  // The parity check behind Table 1's "equivalent performance, same
  // behaviour" claim, on behaviour: identical op sequences through the
  // synthesized module and the hand-coded one.
  SchedulerRelational S;
  SchedulerBaseline B;
  Rng R(1234);
  for (int Op = 0; Op < 2000; ++Op) {
    int64_t Ns = static_cast<int64_t>(R.below(4));
    int64_t Pid = static_cast<int64_t>(R.below(50));
    switch (R.below(5)) {
    case 0:
    case 1: {
      ProcState St = R.chance(0.5) ? ProcState::Running : ProcState::Sleeping;
      int64_t Cpu = static_cast<int64_t>(R.below(100));
      EXPECT_EQ(S.addProcess(Ns, Pid, St, Cpu),
                B.addProcess(Ns, Pid, St, Cpu));
      break;
    }
    case 2:
      EXPECT_EQ(S.removeProcess(Ns, Pid), B.removeProcess(Ns, Pid));
      break;
    case 3: {
      ProcState St = R.chance(0.5) ? ProcState::Running : ProcState::Sleeping;
      EXPECT_EQ(S.setState(Ns, Pid, St), B.setState(Ns, Pid, St));
      break;
    }
    case 4:
      EXPECT_EQ(S.chargeCpu(Ns, Pid, 1), B.chargeCpu(Ns, Pid, 1));
      break;
    }
    ASSERT_EQ(S.size(), B.size());
  }
  // Final deep comparison.
  for (ProcState St : {ProcState::Sleeping, ProcState::Running}) {
    auto Sp = S.processesIn(St);
    auto Bp = B.processesIn(St);
    std::sort(Sp.begin(), Sp.end());
    std::sort(Bp.begin(), Bp.end());
    EXPECT_EQ(Sp, Bp);
  }
  for (int64_t Ns = 0; Ns < 4; ++Ns)
    for (int64_t Pid = 0; Pid < 50; ++Pid)
      EXPECT_EQ(S.cpuOf(Ns, Pid), B.cpuOf(Ns, Pid));
  WfResult Wf = S.relation().checkWellFormed();
  EXPECT_TRUE(Wf.Ok) << Wf.Error;
}

TEST(SchedulerTest, CustomDecompositionSameBehaviour) {
  // The point of synthesis: swapping the decomposition must not change
  // client-visible behaviour.
  RelSpecRef Spec = SchedulerRelational::makeSpec();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid", B.unit("state, cpu"));
  B.addNode("x", "", B.map("ns, pid", DsKind::Btree, W));
  SchedulerRelational Flat{B.build()};
  SchedulerRelational Default;
  for (int64_t P = 0; P < 20; ++P) {
    ProcState St = P % 2 ? ProcState::Running : ProcState::Sleeping;
    Flat.addProcess(P % 3, P, St, P);
    Default.addProcess(P % 3, P, St, P);
  }
  auto A = Flat.processesIn(ProcState::Running);
  auto Bv = Default.processesIn(ProcState::Running);
  std::sort(A.begin(), A.end());
  std::sort(Bv.begin(), Bv.end());
  EXPECT_EQ(A, Bv);
  EXPECT_EQ(Flat.cpuOf(1, 7), Default.cpuOf(1, 7));
}

} // namespace
