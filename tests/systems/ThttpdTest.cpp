//===- tests/systems/ThttpdTest.cpp - thttpd cache tests ---------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the thttpd mmap-cache system (Section 6.2): map/unmap
/// refcounting and TTL cleanup, relational vs. hand-coded baseline.
///
//===----------------------------------------------------------------------===//

#include "systems/ThttpdRelational.h"

#include "baselines/ThttpdBaseline.h"
#include "workloads/MmapTrace.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

TEST(ThttpdTest, MapReusesCachedMapping) {
  ThttpdRelational T;
  int64_t A1 = T.mapFile(/*FileId=*/1, /*Size=*/4096, /*Now=*/0);
  int64_t A2 = T.mapFile(1, 4096, 1);
  EXPECT_EQ(A1, A2); // cache hit: same mapping
  EXPECT_EQ(T.numMapped(), 1u);
  EXPECT_EQ(T.mappedBytes(), 4096);

  int64_t A3 = T.mapFile(2, 100, 2);
  EXPECT_NE(A3, A1);
  EXPECT_EQ(T.numMapped(), 2u);
  EXPECT_EQ(T.mappedBytes(), 4196);
}

TEST(ThttpdTest, CleanupEvictsOnlyIdleAndExpired) {
  ThttpdRelational T;
  T.mapFile(1, 10, 0);
  T.mapFile(2, 10, 0);
  T.unmapFile(1, 5); // file 1 idle since t=5
  // file 2 still referenced: never evicted.
  EXPECT_EQ(T.cleanup(/*Now=*/100, /*TtlSeconds=*/50), 1u);
  EXPECT_EQ(T.numMapped(), 1u);
  EXPECT_EQ(T.mappedBytes(), 10);
  // Not yet expired: kept.
  T.unmapFile(2, 100);
  EXPECT_EQ(T.cleanup(120, 50), 0u);
  EXPECT_EQ(T.cleanup(200, 50), 1u);
  EXPECT_EQ(T.numMapped(), 0u);
  EXPECT_EQ(T.mappedBytes(), 0);
}

TEST(ThttpdTest, RefcountAcrossConcurrentRequests) {
  ThttpdRelational T;
  T.mapFile(7, 64, 0);
  T.mapFile(7, 64, 1); // two requests share the mapping
  T.unmapFile(7, 2);
  // One reference remains: cleanup must not evict.
  EXPECT_EQ(T.cleanup(1000, 1), 0u);
  T.unmapFile(7, 1000);
  EXPECT_EQ(T.cleanup(2000, 1), 1u);
}

TEST(ThttpdTest, MatchesBaselineOnTrace) {
  ThttpdRelational T;
  ThttpdBaseline B;
  MmapTraceOptions Opts;
  Opts.NumRequests = 5000;
  Opts.NumFiles = 300;
  Opts.Seed = 3;
  std::vector<MmapRequest> Trace = generateMmapTrace(Opts);

  // Model: every request maps its file, holds it for a bit, and the
  // server periodically unmaps + cleans.
  std::vector<int64_t> HeldT, HeldB;
  for (size_t I = 0; I != Trace.size(); ++I) {
    const MmapRequest &Q = Trace[I];
    T.mapFile(Q.FileId, Q.Size, Q.Timestamp);
    B.mapFile(Q.FileId, Q.Size, Q.Timestamp);
    HeldT.push_back(Q.FileId);
    if (HeldT.size() > 16) {
      T.unmapFile(HeldT.front(), Q.Timestamp);
      B.unmapFile(HeldT.front(), Q.Timestamp);
      HeldT.erase(HeldT.begin());
    }
    if (I % 1000 == 999)
      EXPECT_EQ(T.cleanup(Q.Timestamp, 30), B.cleanup(Q.Timestamp, 30));
    ASSERT_EQ(T.numMapped(), B.numMapped());
    ASSERT_EQ(T.mappedBytes(), B.mappedBytes());
  }
  WfResult Wf = T.relation().checkWellFormed();
  EXPECT_TRUE(Wf.Ok) << Wf.Error;
}

} // namespace
