//===- tests/systems/ZtopoTest.cpp - ZTopo tile cache tests ------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the ZTopo tile-cache system (Section 6.2): per-state byte
/// accounting and LRU-style eviction, relational vs. baseline. The
/// paper notes the original code carried dynamic assertions keeping two
/// tile-state representations in sync — here the decomposition
/// maintains that invariant by construction.
///
//===----------------------------------------------------------------------===//

#include "systems/ZtopoRelational.h"

#include "baselines/ZtopoBaseline.h"
#include "workloads/TileTrace.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace relc;

namespace {

TEST(ZtopoTest, AddAndTouch) {
  ZtopoRelational Z;
  Z.addTile(tileId(3, 1, 2), TileState::InMemory, 1000);
  TileState S;
  EXPECT_TRUE(Z.touchTile(tileId(3, 1, 2), S));
  EXPECT_EQ(S, TileState::InMemory);
  EXPECT_FALSE(Z.touchTile(tileId(3, 9, 9), S));
  EXPECT_EQ(Z.numTiles(), 1u);
}

TEST(ZtopoTest, BytesPerStateTracked) {
  ZtopoRelational Z;
  Z.addTile(1, TileState::InMemory, 100);
  Z.addTile(2, TileState::InMemory, 200);
  Z.addTile(3, TileState::OnDisk, 400);
  EXPECT_EQ(Z.bytesIn(TileState::InMemory), 300);
  EXPECT_EQ(Z.bytesIn(TileState::OnDisk), 400);
  EXPECT_EQ(Z.bytesIn(TileState::Loading), 0);
}

TEST(ZtopoTest, SetStateMovesBytes) {
  ZtopoRelational Z;
  Z.addTile(1, TileState::Loading, 128);
  EXPECT_TRUE(Z.setState(1, TileState::InMemory));
  EXPECT_EQ(Z.bytesIn(TileState::Loading), 0);
  EXPECT_EQ(Z.bytesIn(TileState::InMemory), 128);
  EXPECT_FALSE(Z.setState(99, TileState::OnDisk));
}

TEST(ZtopoTest, EvictToBudgetDropsLeastRecentlyUsed) {
  ZtopoRelational Z;
  for (int64_t I = 0; I < 10; ++I)
    Z.addTile(I, TileState::InMemory, 100);
  // Touch tiles 5..9 so 0..4 are the LRU candidates.
  TileState S;
  for (int64_t I = 5; I < 10; ++I)
    Z.touchTile(I, S);
  auto Evicted = Z.evictToBudget(TileState::InMemory, 500);
  EXPECT_EQ(Z.bytesIn(TileState::InMemory), 500);
  EXPECT_EQ(Evicted.size(), 5u);
  for (int64_t Id : Evicted)
    EXPECT_LT(Id, 5); // the untouched half went first
  // Evicted tiles leave the cache entirely (the viewer re-fetches them
  // on demand); writing to disk is the client's move.
  EXPECT_EQ(Z.numTiles(), 5u);
  EXPECT_EQ(Z.bytesIn(TileState::OnDisk), 0);
}

TEST(ZtopoTest, EvictNoopWhenUnderBudget) {
  ZtopoRelational Z;
  Z.addTile(1, TileState::InMemory, 100);
  EXPECT_TRUE(Z.evictToBudget(TileState::InMemory, 1000).empty());
  EXPECT_EQ(Z.numTiles(), 1u);
}

TEST(ZtopoTest, MatchesBaselineOnTrace) {
  ZtopoRelational Z;
  ZtopoBaseline B;
  TileTraceOptions Opts;
  Opts.NumRequests = 4000;
  Opts.MapWidth = 64;
  Opts.Seed = 17;
  std::vector<TileRequest> Trace = generateTileTrace(Opts);

  constexpr int64_t MemBudget = 64 * 1024;
  for (const TileRequest &Q : Trace) {
    TileState Sz, Sb;
    bool Hz = Z.touchTile(Q.TileId, Sz);
    bool Hb = B.touchTile(Q.TileId, Sb);
    ASSERT_EQ(Hz, Hb);
    if (Hz) {
      ASSERT_EQ(Sz, Sb);
      if (Sz == TileState::OnDisk) {
        // Simulate reading from disk back into memory.
        Z.setState(Q.TileId, TileState::InMemory);
        B.setState(Q.TileId, TileState::InMemory);
      }
    } else {
      Z.addTile(Q.TileId, TileState::InMemory, Q.Size);
      B.addTile(Q.TileId, TileState::InMemory, Q.Size);
    }
    if (Z.bytesIn(TileState::InMemory) > MemBudget) {
      auto Ez = Z.evictToBudget(TileState::InMemory, MemBudget);
      auto Eb = B.evictToBudget(TileState::InMemory, MemBudget);
      std::sort(Ez.begin(), Ez.end());
      std::sort(Eb.begin(), Eb.end());
      ASSERT_EQ(Ez, Eb);
    }
    ASSERT_EQ(Z.numTiles(), B.numTiles());
    ASSERT_EQ(Z.bytesIn(TileState::InMemory), B.bytesIn(TileState::InMemory));
    ASSERT_EQ(Z.bytesIn(TileState::OnDisk), B.bytesIn(TileState::OnDisk));
  }
  WfResult Wf = Z.relation().checkWellFormed();
  EXPECT_TRUE(Wf.Ok) << Wf.Error;
}

} // namespace
