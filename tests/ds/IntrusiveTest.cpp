//===- tests/ds/IntrusiveTest.cpp - Intrusive container tests ----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests IntrusiveList and IntrusiveAvl: hooks embedded in nodes, O(1)
/// / O(log n) unlink-by-node, and — critically for decomposition
/// sharing (Fig. 12) — one node linked into several containers through
/// distinct hook slots at once.
///
//===----------------------------------------------------------------------===//

#include "ds/IntrusiveAvl.h"
#include "ds/IntrusiveList.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <set>
#include <vector>

using namespace relc;

namespace {

constexpr unsigned NumSlots = 3;

struct HookedNode {
  int64_t Tag;
  MapHook<HookedNode, int64_t> Hooks[NumSlots];
};

struct HookTraits {
  using KeyT = int64_t;
  using NodeT = HookedNode;
  static constexpr unsigned NumSlots = ::NumSlots;
  static MapHook<HookedNode, int64_t> &hook(HookedNode *N, unsigned Slot) {
    return N->Hooks[Slot];
  }
  static bool equal(int64_t A, int64_t B) { return A == B; }
  static bool less(int64_t A, int64_t B) { return A < B; }
};

template <typename MapT> class IntrusiveContainerTest : public ::testing::Test {
protected:
  IntrusiveContainerTest() : Map(0) {}

  // Pool is declared before Map so the container (whose destructor
  // walks its nodes' hooks) is destroyed while the nodes are alive.
  std::vector<std::unique_ptr<HookedNode>> Pool;
  MapT Map;

  HookedNode *node(int64_t Tag) {
    Pool.push_back(std::make_unique<HookedNode>());
    Pool.back()->Tag = Tag;
    return Pool.back().get();
  }
};

using IntrusiveMaps =
    ::testing::Types<IntrusiveList<HookTraits>, IntrusiveAvl<HookTraits>>;
TYPED_TEST_SUITE(IntrusiveContainerTest, IntrusiveMaps);

TYPED_TEST(IntrusiveContainerTest, StartsEmpty) {
  EXPECT_TRUE(this->Map.empty());
  EXPECT_EQ(this->Map.lookup(0), nullptr);
}

TYPED_TEST(IntrusiveContainerTest, InsertLookupErase) {
  HookedNode *N = this->node(5);
  this->Map.insert(5, N);
  EXPECT_EQ(this->Map.size(), 1u);
  EXPECT_EQ(this->Map.lookup(5), N);
  EXPECT_TRUE(N->Hooks[0].Linked);
  EXPECT_EQ(this->Map.erase(5), N);
  EXPECT_FALSE(N->Hooks[0].Linked);
  EXPECT_TRUE(this->Map.empty());
}

TYPED_TEST(IntrusiveContainerTest, EraseNodeWithoutKey) {
  HookedNode *A = this->node(1);
  HookedNode *B = this->node(2);
  HookedNode *C = this->node(3);
  this->Map.insert(1, A);
  this->Map.insert(2, B);
  this->Map.insert(3, C);
  // The intrusive selling point: unlink given only the node pointer.
  EXPECT_TRUE(this->Map.eraseNode(B));
  EXPECT_EQ(this->Map.size(), 2u);
  EXPECT_EQ(this->Map.lookup(2), nullptr);
  EXPECT_EQ(this->Map.lookup(1), A);
  EXPECT_EQ(this->Map.lookup(3), C);
  EXPECT_FALSE(this->Map.eraseNode(B));
}

TYPED_TEST(IntrusiveContainerTest, ForEachVisitsAll) {
  std::set<int64_t> Expect;
  for (int64_t K = 0; K < 15; ++K) {
    this->Map.insert(K, this->node(K));
    Expect.insert(K);
  }
  std::set<int64_t> Seen;
  EXPECT_TRUE(this->Map.forEach([&](int64_t K, HookedNode *N) {
    EXPECT_EQ(N->Tag, K);
    Seen.insert(K);
    return true;
  }));
  EXPECT_EQ(Seen, Expect);
}

TEST(IntrusiveListTest, ForEachMayUnlinkCurrentEntry) {
  // IntrusiveList reads the successor before invoking the callback, so
  // unlinking the entry just handed out is safe. (Tree-shaped maps do
  // not support mutation during iteration — rebalancing invalidates the
  // traversal — which is why the mutators collect matches before
  // erasing.)
  IntrusiveList<HookTraits> List(0);
  std::vector<std::unique_ptr<HookedNode>> Pool;
  for (int64_t K = 0; K < 10; ++K) {
    Pool.push_back(std::make_unique<HookedNode>());
    Pool.back()->Tag = K;
    List.insert(K, Pool.back().get());
  }
  List.forEach([&](int64_t, HookedNode *N) {
    List.eraseNode(N);
    return true;
  });
  EXPECT_TRUE(List.empty());
}

TYPED_TEST(IntrusiveContainerTest, HookClearedAfterErase) {
  HookedNode *N = this->node(1);
  this->Map.insert(1, N);
  this->Map.eraseNode(N);
  EXPECT_FALSE(N->Hooks[0].Linked);
  EXPECT_EQ(N->Hooks[0].A, nullptr);
  EXPECT_EQ(N->Hooks[0].B, nullptr);
  // Reinsertable after unlink.
  this->Map.insert(1, N);
  EXPECT_EQ(this->Map.lookup(1), N);
}

TYPED_TEST(IntrusiveContainerTest, RandomChurn) {
  std::mt19937_64 Rng(11);
  std::set<int64_t> Live;
  std::vector<HookedNode *> ByKey(200, nullptr);
  for (int Op = 0; Op < 3000; ++Op) {
    int64_t K = static_cast<int64_t>(Rng() % 200);
    if (Live.count(K)) {
      EXPECT_EQ(this->Map.erase(K), ByKey[K]);
      Live.erase(K);
    } else {
      HookedNode *N = this->node(K);
      ByKey[K] = N;
      this->Map.insert(K, N);
      Live.insert(K);
    }
    ASSERT_EQ(this->Map.size(), Live.size());
  }
  for (int64_t K : Live)
    EXPECT_EQ(this->Map.lookup(K), ByKey[K]);
}

//===----------------------------------------------------------------------===
// Sharing: one node in several containers through distinct hook slots.
//===----------------------------------------------------------------------===

TEST(IntrusiveSharingTest, NodeInListAndTreeSimultaneously) {
  // A node shared by two map edges (Fig. 2's node w): a list indexes it
  // by one key, a tree by another, each through its own hook slot.
  IntrusiveList<HookTraits> List(0);
  IntrusiveAvl<HookTraits> Tree(1);
  HookedNode N;
  N.Tag = 42;
  List.insert(7, &N);
  Tree.insert(99, &N);
  EXPECT_EQ(List.lookup(7), &N);
  EXPECT_EQ(Tree.lookup(99), &N);

  // Removing from one container leaves the other untouched.
  EXPECT_TRUE(List.eraseNode(&N));
  EXPECT_EQ(List.lookup(7), nullptr);
  EXPECT_EQ(Tree.lookup(99), &N);
  EXPECT_TRUE(Tree.eraseNode(&N));
}

TEST(IntrusiveSharingTest, ThreeListsThreeSlots) {
  // Pool first: nodes must outlive the containers whose destructors
  // walk their hooks.
  std::vector<std::unique_ptr<HookedNode>> Pool;
  IntrusiveList<HookTraits> L0(0), L1(1), L2(2);
  for (int64_t K = 0; K < 10; ++K) {
    Pool.push_back(std::make_unique<HookedNode>());
    Pool.back()->Tag = K;
    L0.insert(K, Pool.back().get());
    L1.insert(K * 10, Pool.back().get());
    L2.insert(K * 100, Pool.back().get());
  }
  EXPECT_EQ(L0.size(), 10u);
  EXPECT_EQ(L1.size(), 10u);
  EXPECT_EQ(L2.size(), 10u);
  // Unlink everything from L1 by node; L0/L2 keep all entries.
  for (auto &N : Pool)
    EXPECT_TRUE(L1.eraseNode(N.get()));
  EXPECT_TRUE(L1.empty());
  EXPECT_EQ(L0.size(), 10u);
  EXPECT_EQ(L2.size(), 10u);
}

TEST(IntrusiveSharingTest, HooksCacheDistinctKeys) {
  // The same node is keyed differently per container; each hook caches
  // its own key (this is what lets dremove reposition shared nodes).
  IntrusiveList<HookTraits> L0(0), L1(1);
  HookedNode N;
  N.Tag = 0;
  L0.insert(5, &N);
  L1.insert(50, &N);
  EXPECT_EQ(N.Hooks[0].Key, 5);
  EXPECT_EQ(N.Hooks[1].Key, 50);
}

TEST(IntrusiveAvlTest, OrderedIterationAndInvariants) {
  // Pool first: nodes must outlive the tree (its destructor clears
  // their hooks).
  std::vector<std::unique_ptr<HookedNode>> Pool;
  IntrusiveAvl<HookTraits> Tree(0);
  std::mt19937_64 Rng(3);
  std::set<int64_t> Keys;
  while (Keys.size() < 500) {
    int64_t K = static_cast<int64_t>(Rng() % 10000);
    if (!Keys.insert(K).second)
      continue;
    Pool.push_back(std::make_unique<HookedNode>());
    Pool.back()->Tag = K;
    Tree.insert(K, Pool.back().get());
  }
  EXPECT_TRUE(Tree.checkInvariants());
  std::vector<int64_t> Seen;
  Tree.forEach([&](int64_t K, HookedNode *) {
    Seen.push_back(K);
    return true;
  });
  EXPECT_TRUE(std::is_sorted(Seen.begin(), Seen.end()));
  EXPECT_EQ(Seen.size(), 500u);

  // Erase half by node, re-check balance.
  size_t I = 0;
  for (auto &N : Pool)
    if (I++ % 2 == 0)
      EXPECT_TRUE(Tree.eraseNode(N.get()));
  EXPECT_TRUE(Tree.checkInvariants());
  EXPECT_EQ(Tree.size(), 250u);
}

TEST(IntrusiveListTest, DestructorUnlinksSurvivors) {
  // Hooks must not dangle into a destroyed list.
  HookedNode N;
  N.Tag = 1;
  {
    IntrusiveList<HookTraits> List(0);
    List.insert(1, &N);
    EXPECT_TRUE(N.Hooks[0].Linked);
  }
  EXPECT_FALSE(N.Hooks[0].Linked);
}

} // namespace
