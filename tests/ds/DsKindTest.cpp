//===- tests/ds/DsKindTest.cpp - DsKind trait tests --------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "ds/DsKind.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

TEST(DsKindTest, NamesRoundTripThroughParse) {
  for (DsKind K : AllDsKinds) {
    auto Parsed = parseDsKind(dsKindName(K));
    ASSERT_TRUE(Parsed.has_value()) << dsKindName(K);
    EXPECT_EQ(*Parsed, K);
  }
}

TEST(DsKindTest, ParseRejectsUnknown) {
  EXPECT_FALSE(parseDsKind("btree2").has_value());
  EXPECT_FALSE(parseDsKind("").has_value());
  EXPECT_FALSE(parseDsKind("HashTable").has_value()); // names are exact
}

TEST(DsKindTest, PaperNamesExist) {
  // Fig. 3 names dlist, htable, vector as the example structures.
  EXPECT_TRUE(parseDsKind("dlist").has_value());
  EXPECT_TRUE(parseDsKind("htable").has_value());
  EXPECT_TRUE(parseDsKind("vector").has_value());
}

TEST(DsKindTest, LookupCostShapes) {
  // mψ(n): lists are linear, trees logarithmic, hashes/vectors constant
  // (Section 4.3's examples: m_btree(n)=log2 n, m_dlist(n)=n).
  double N = 1024;
  EXPECT_DOUBLE_EQ(dsLookupCost(DsKind::DList, N), N);
  EXPECT_DOUBLE_EQ(dsLookupCost(DsKind::IList, N), N);
  // Trees cost 1 + log2 n (the +1 keeps tiny trees costlier than a
  // direct vector/hash probe).
  EXPECT_NEAR(dsLookupCost(DsKind::Btree, N), 11.0, 1e-9);
  EXPECT_NEAR(dsLookupCost(DsKind::ITree, N), 11.0, 1e-9);
  EXPECT_LE(dsLookupCost(DsKind::HashTable, N), 4.0);
  EXPECT_LE(dsLookupCost(DsKind::Vector, N), 2.0);
}

TEST(DsKindTest, LookupCostMonotoneInN) {
  for (DsKind K : AllDsKinds)
    EXPECT_LE(dsLookupCost(K, 10), dsLookupCost(K, 10000)) << dsKindName(K);
}

TEST(DsKindTest, LookupCostDefinedAtZero) {
  // The cost model evaluates mψ at tiny fanouts; must stay finite and
  // positive.
  for (DsKind K : AllDsKinds) {
    double C = dsLookupCost(K, 0);
    EXPECT_GT(C, 0.0) << dsKindName(K);
    EXPECT_TRUE(std::isfinite(C)) << dsKindName(K);
  }
}

TEST(DsKindTest, IntrusiveKindsSupportEraseByNode) {
  EXPECT_TRUE(dsSupportsEraseByNode(DsKind::IList));
  EXPECT_TRUE(dsSupportsEraseByNode(DsKind::ITree));
  EXPECT_FALSE(dsSupportsEraseByNode(DsKind::HashTable));
  EXPECT_FALSE(dsSupportsEraseByNode(DsKind::DList));
  EXPECT_FALSE(dsSupportsEraseByNode(DsKind::Vector));
  EXPECT_FALSE(dsSupportsEraseByNode(DsKind::Btree));
}

TEST(DsKindTest, VectorRequiresDenseIntKey) {
  EXPECT_TRUE(dsRequiresDenseIntKey(DsKind::Vector));
  EXPECT_FALSE(dsRequiresDenseIntKey(DsKind::HashTable));
}

TEST(DsKindTest, OrderedScanKinds) {
  EXPECT_TRUE(dsOrderedScan(DsKind::Btree));
  EXPECT_TRUE(dsOrderedScan(DsKind::ITree));
  EXPECT_TRUE(dsOrderedScan(DsKind::Vector));
  EXPECT_FALSE(dsOrderedScan(DsKind::HashTable));
  EXPECT_FALSE(dsOrderedScan(DsKind::DList));
  EXPECT_FALSE(dsOrderedScan(DsKind::IList));
}

} // namespace
