//===- tests/ds/ContainerTest.cpp - Non-intrusive container tests -*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed and parameterized tests for the non-intrusive container
/// substrate (DListMap, HashMap, AvlMap, VectorMap): the associative-map
/// concept every map edge relies on, plus randomized cross-checks
/// against std::map.
///
//===----------------------------------------------------------------------===//

#include "ds/AvlMap.h"
#include "ds/DListMap.h"
#include "ds/HashMap.h"
#include "ds/VectorMap.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <vector>

using namespace relc;

namespace {

/// The payload nodes the containers point at.
struct TestNode {
  int64_t Tag;
};

struct IntTraits {
  using KeyT = int64_t;
  using NodeT = TestNode;
  static bool equal(int64_t A, int64_t B) { return A == B; }
  static bool less(int64_t A, int64_t B) { return A < B; }
  static size_t hash(int64_t K) { return std::hash<int64_t>()(K); }
};

/// Uniform fixture over the three keyed containers.
template <typename MapT> class KeyedContainerTest : public ::testing::Test {
protected:
  MapT Map;
  std::vector<std::unique_ptr<TestNode>> Pool;

  TestNode *node(int64_t Tag) {
    Pool.push_back(std::make_unique<TestNode>(TestNode{Tag}));
    return Pool.back().get();
  }
};

using KeyedMaps =
    ::testing::Types<DListMap<IntTraits>, HashMap<IntTraits>, AvlMap<IntTraits>>;
TYPED_TEST_SUITE(KeyedContainerTest, KeyedMaps);

TYPED_TEST(KeyedContainerTest, StartsEmpty) {
  EXPECT_TRUE(this->Map.empty());
  EXPECT_EQ(this->Map.size(), 0u);
  EXPECT_EQ(this->Map.lookup(1), nullptr);
}

TYPED_TEST(KeyedContainerTest, InsertThenLookup) {
  TestNode *N = this->node(10);
  this->Map.insert(1, N);
  EXPECT_EQ(this->Map.size(), 1u);
  EXPECT_EQ(this->Map.lookup(1), N);
  EXPECT_EQ(this->Map.lookup(2), nullptr);
}

TYPED_TEST(KeyedContainerTest, EraseReturnsChild) {
  TestNode *N = this->node(10);
  this->Map.insert(7, N);
  EXPECT_EQ(this->Map.erase(7), N);
  EXPECT_TRUE(this->Map.empty());
  EXPECT_EQ(this->Map.lookup(7), nullptr);
  EXPECT_EQ(this->Map.erase(7), nullptr);
}

TYPED_TEST(KeyedContainerTest, EraseNodeScansForChild) {
  TestNode *A = this->node(1);
  TestNode *B = this->node(2);
  this->Map.insert(1, A);
  this->Map.insert(2, B);
  EXPECT_TRUE(this->Map.eraseNode(A));
  EXPECT_EQ(this->Map.size(), 1u);
  EXPECT_EQ(this->Map.lookup(1), nullptr);
  EXPECT_EQ(this->Map.lookup(2), B);
  EXPECT_FALSE(this->Map.eraseNode(A));
}

TYPED_TEST(KeyedContainerTest, ForEachVisitsAll) {
  std::set<int64_t> Expect;
  for (int64_t K = 0; K < 20; ++K) {
    this->Map.insert(K, this->node(K));
    Expect.insert(K);
  }
  std::set<int64_t> Seen;
  bool Finished = this->Map.forEach([&](int64_t K, TestNode *N) {
    EXPECT_EQ(N->Tag, K);
    Seen.insert(K);
    return true;
  });
  EXPECT_TRUE(Finished);
  EXPECT_EQ(Seen, Expect);
}

TYPED_TEST(KeyedContainerTest, ForEachEarlyStop) {
  for (int64_t K = 0; K < 10; ++K)
    this->Map.insert(K, this->node(K));
  int Count = 0;
  bool Finished = this->Map.forEach([&](int64_t, TestNode *) {
    return ++Count < 3;
  });
  EXPECT_FALSE(Finished);
  EXPECT_EQ(Count, 3);
}

TYPED_TEST(KeyedContainerTest, ManyKeysStressAgainstStdMap) {
  std::mt19937_64 Rng(42);
  std::map<int64_t, TestNode *> Ref;
  for (int Op = 0; Op < 4000; ++Op) {
    int64_t K = static_cast<int64_t>(Rng() % 500);
    if (Rng() % 3 != 0) {
      if (!Ref.count(K)) {
        TestNode *N = this->node(K);
        this->Map.insert(K, N);
        Ref[K] = N;
      }
    } else if (Ref.count(K)) {
      EXPECT_EQ(this->Map.erase(K), Ref[K]);
      Ref.erase(K);
    } else {
      EXPECT_EQ(this->Map.erase(K), nullptr);
    }
    ASSERT_EQ(this->Map.size(), Ref.size());
  }
  for (const auto &[K, N] : Ref)
    EXPECT_EQ(this->Map.lookup(K), N);
}

TYPED_TEST(KeyedContainerTest, NegativeAndExtremeKeys) {
  TestNode *A = this->node(1);
  TestNode *B = this->node(2);
  TestNode *C = this->node(3);
  this->Map.insert(-5, A);
  this->Map.insert(INT64_MAX, B);
  this->Map.insert(INT64_MIN, C);
  EXPECT_EQ(this->Map.lookup(-5), A);
  EXPECT_EQ(this->Map.lookup(INT64_MAX), B);
  EXPECT_EQ(this->Map.lookup(INT64_MIN), C);
}

//===----------------------------------------------------------------------===
// AvlMap-specific: ordering and balance.
//===----------------------------------------------------------------------===

TEST(AvlMapTest, OrderedIteration) {
  AvlMap<IntTraits> Map;
  std::vector<std::unique_ptr<TestNode>> Pool;
  std::vector<int64_t> Keys = {5, 3, 8, 1, 4, 7, 9, 2, 6, 0};
  for (int64_t K : Keys) {
    Pool.push_back(std::make_unique<TestNode>(TestNode{K}));
    Map.insert(K, Pool.back().get());
  }
  std::vector<int64_t> Seen;
  Map.forEach([&](int64_t K, TestNode *) {
    Seen.push_back(K);
    return true;
  });
  std::vector<int64_t> Sorted = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(Seen, Sorted);
  EXPECT_TRUE(Map.checkInvariants());
}

TEST(AvlMapTest, InvariantsUnderAscendingInsert) {
  // Ascending insertion is the classic rotation stress for AVL trees.
  AvlMap<IntTraits> Map;
  std::vector<std::unique_ptr<TestNode>> Pool;
  for (int64_t K = 0; K < 1000; ++K) {
    Pool.push_back(std::make_unique<TestNode>(TestNode{K}));
    Map.insert(K, Pool.back().get());
    if (K % 97 == 0)
      ASSERT_TRUE(Map.checkInvariants()) << "after inserting " << K;
  }
  EXPECT_TRUE(Map.checkInvariants());
  EXPECT_EQ(Map.size(), 1000u);
  for (int64_t K = 0; K < 1000; K += 3)
    EXPECT_NE(Map.lookup(K), nullptr);
}

TEST(AvlMapTest, InvariantsUnderRandomChurn) {
  AvlMap<IntTraits> Map;
  std::vector<std::unique_ptr<TestNode>> Pool;
  std::mt19937_64 Rng(7);
  std::set<int64_t> Live;
  for (int Op = 0; Op < 3000; ++Op) {
    int64_t K = static_cast<int64_t>(Rng() % 300);
    if (Live.count(K)) {
      Map.erase(K);
      Live.erase(K);
    } else {
      Pool.push_back(std::make_unique<TestNode>(TestNode{K}));
      Map.insert(K, Pool.back().get());
      Live.insert(K);
    }
    if (Op % 251 == 0)
      ASSERT_TRUE(Map.checkInvariants()) << "op " << Op;
  }
  EXPECT_TRUE(Map.checkInvariants());
  EXPECT_EQ(Map.size(), Live.size());
}

//===----------------------------------------------------------------------===
// VectorMap-specific: dense size_t keys.
//===----------------------------------------------------------------------===

TEST(VectorMapTest, Basics) {
  VectorMap<TestNode> Map;
  TestNode A{1}, B{2};
  EXPECT_TRUE(Map.empty());
  Map.insert(0, &A);
  Map.insert(10, &B);
  EXPECT_EQ(Map.size(), 2u);
  EXPECT_EQ(Map.lookup(0), &A);
  EXPECT_EQ(Map.lookup(10), &B);
  EXPECT_EQ(Map.lookup(5), nullptr);
  EXPECT_EQ(Map.lookup(99), nullptr); // beyond the backing array
}

TEST(VectorMapTest, EraseLeavesHole) {
  VectorMap<TestNode> Map;
  TestNode A{1}, B{2};
  Map.insert(3, &A);
  Map.insert(4, &B);
  EXPECT_EQ(Map.erase(3), &A);
  EXPECT_EQ(Map.size(), 1u);
  EXPECT_EQ(Map.lookup(3), nullptr);
  EXPECT_EQ(Map.lookup(4), &B);
  EXPECT_EQ(Map.erase(3), nullptr);
  EXPECT_EQ(Map.erase(1000), nullptr);
}

TEST(VectorMapTest, EraseNode) {
  VectorMap<TestNode> Map;
  TestNode A{1};
  Map.insert(2, &A);
  EXPECT_TRUE(Map.eraseNode(&A));
  EXPECT_FALSE(Map.eraseNode(&A));
  EXPECT_TRUE(Map.empty());
}

TEST(VectorMapTest, ForEachSkipsHoles) {
  VectorMap<TestNode> Map;
  TestNode A{0}, B{5}, C{9};
  Map.insert(0, &A);
  Map.insert(5, &B);
  Map.insert(9, &C);
  Map.erase(5);
  std::vector<size_t> Keys;
  Map.forEach([&](size_t K, TestNode *) {
    Keys.push_back(K);
    return true;
  });
  EXPECT_EQ(Keys, (std::vector<size_t>{0, 9}));
}

TEST(VectorMapTest, SparseGrowth) {
  VectorMap<TestNode> Map;
  TestNode A{1};
  Map.insert(100000, &A);
  EXPECT_EQ(Map.size(), 1u);
  EXPECT_EQ(Map.lookup(100000), &A);
  EXPECT_EQ(Map.lookup(99999), nullptr);
}

} // namespace
