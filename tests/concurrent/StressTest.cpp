//===- tests/concurrent/StressTest.cpp - Multi-threaded stress ---*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-writer / multi-reader stress over ConcurrentRelation, built
/// to run ThreadSanitizer-clean (the CI TSan job runs exactly this
/// suite). Correctness is final-state α-equivalence: writer threads
/// log every mutation they perform; because the writers operate on
/// pairwise-disjoint key sets, their operations commute across
/// threads, so the concurrent execution must leave the relation in the
/// state produced by replaying the logs serially, thread by thread,
/// into the sequential engine — a serial order of the same operations.
///
//===----------------------------------------------------------------------===//

#include "concurrent/ConcurrentRelation.h"

#include "decomp/Builder.h"
#include "workloads/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

using namespace relc;

namespace {

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

Decomposition fig2(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  return B.build();
}

/// One logged mutation, replayable against any engine.
struct LoggedOp {
  enum Kind { Insert, Remove, Update, Upsert } Op;
  Tuple A; ///< Insert: the tuple. Remove/Update/Upsert: the pattern.
  Tuple B; ///< Update: the changes.
  int64_t Delta = 0; ///< Upsert: the deterministic Fn's increment.
};

/// The upsert stress Fn, deterministic in (current value, Delta) so a
/// serial replay reproduces it: cpu accumulates mod 100, state follows
/// the delta (exercising migration when sharded by state).
void applyUpsert(SynthesizedRelation &Rel, const Catalog &Cat,
                 const Tuple &Key, int64_t Delta) {
  ColumnId ColCpu = Cat.get("cpu"), ColState = Cat.get("state");
  Rel.upsert(Key, [&](const BindingFrame *Cur, Tuple &Values) {
    int64_t Cpu = Cur ? Cur->get(ColCpu).asInt() : 0;
    Values.set(ColCpu, Value::ofInt((Cpu + Delta) % 100));
    Values.set(ColState, Value::ofInt(Delta % 3));
  });
}

/// Writer loop: FD-safe random mutations confined to pid values
/// `Tid mod NumWriters` (namespaces are shared across threads, so
/// shards see real cross-thread contention while the key sets stay
/// disjoint). Every performed op is logged for the serial replay.
void writerLoop(ConcurrentRelation &Rel, const Catalog &Cat,
                const FuncDeps &Fds, unsigned Tid, unsigned NumWriters,
                int Ops, std::vector<LoggedOp> &Log) {
  Rng R(0x5eed0000 + Tid);
  Relation Mine(Cat.allColumns()); // this thread's slice, for FD checks
  for (int Step = 0; Step != Ops; ++Step) {
    int64_t Ns = R.range(0, 7);
    int64_t Pid = static_cast<int64_t>(Tid) +
                  static_cast<int64_t>(NumWriters) * R.range(0, 15);
    Tuple Key = TupleBuilder(Cat).set("ns", Ns).set("pid", Pid).build();
    switch (R.below(8)) {
    case 0:
    case 1:
    case 2: { // insert
      Tuple T = TupleBuilder(Cat)
                    .set("ns", Ns)
                    .set("pid", Pid)
                    .set("state", static_cast<int64_t>(R.below(3)))
                    .set("cpu", static_cast<int64_t>(R.below(100)))
                    .build();
      if (!Mine.insertPreservesFds(T, Fds))
        break;
      Mine.insert(T);
      Rel.insert(T);
      Log.push_back({LoggedOp::Insert, T, Tuple()});
      break;
    }
    case 3: { // remove by key (routed), or by own pid only (fan-out)
      Tuple Pattern =
          R.chance(0.25) ? TupleBuilder(Cat).set("pid", Pid).build() : Key;
      Mine.remove(Pattern);
      Rel.remove(Pattern);
      Log.push_back({LoggedOp::Remove, Pattern, Tuple()});
      break;
    }
    case 4: { // update cpu through the key
      Tuple Changes = TupleBuilder(Cat).set("cpu", R.range(0, 99)).build();
      Mine.update(Key, Changes);
      Rel.update(Key, Changes);
      Log.push_back({LoggedOp::Update, Key, Changes});
      break;
    }
    case 5: { // update state through the key (fan-out / migration
              // when the shard column is state)
      Tuple Changes = TupleBuilder(Cat).set("state", R.range(0, 2)).build();
      Mine.update(Key, Changes);
      Rel.update(Key, Changes);
      Log.push_back({LoggedOp::Update, Key, Changes});
      break;
    }
    case 6:
    case 7: { // upsert: atomic read-modify-write through the key
              // (routed under default sharding, fan-out + migration
              // when sharded by state); always FD-safe
      int64_t Delta = R.range(1, 49);
      ColumnId ColCpu = Cat.get("cpu"), ColState = Cat.get("state");
      Rel.upsert(Key, [&](const BindingFrame *Cur, Tuple &Values) {
        int64_t Cpu = Cur ? Cur->get(ColCpu).asInt() : 0;
        Values.set(ColCpu, Value::ofInt((Cpu + Delta) % 100));
        Values.set(ColState, Value::ofInt(Delta % 3));
      });
      // Mirror into this thread's slice for later FD pre-checks.
      auto Cur = Mine.query(Key, ColumnSet::single(ColCpu));
      int64_t Cpu = Cur.empty() ? 0 : Cur.front().get(ColCpu).asInt();
      Tuple Changes = TupleBuilder(Cat)
                          .set("cpu", (Cpu + Delta) % 100)
                          .set("state", Delta % 3)
                          .build();
      if (Cur.empty())
        Mine.insert(Key.merge(Changes));
      else
        Mine.update(Key, Changes);
      Log.push_back({LoggedOp::Upsert, Key, Tuple(), Delta});
      break;
    }
    }
  }
}

/// Reader loop: routed key probes, fan-out scans and size polls until
/// the writers finish. Results are only sanity-checked — the point is
/// racing the readers against every writer path under TSan.
void readerLoop(const ConcurrentRelation &Rel, const Catalog &Cat,
                unsigned Tid, const std::atomic<bool> &Done,
                std::atomic<size_t> &RowsSeen) {
  Rng R(0xbead0000 + Tid);
  ColumnId ColCpu = Cat.get("cpu");
  size_t Rows = 0;
  while (!Done.load(std::memory_order_acquire)) {
    Tuple Key = TupleBuilder(Cat)
                    .set("ns", R.range(0, 7))
                    .set("pid", R.range(0, 63))
                    .build();
    int64_t Sum = 0;
    Rel.scanFrames(Key, ColumnSet::single(ColCpu),
                   [&](const BindingFrame &F) {
                     Sum += F.get(ColCpu).asInt();
                     ++Rows;
                     return false;
                   });
    EXPECT_GE(Sum, 0);
    Rel.scan(TupleBuilder(Cat).set("state", R.range(0, 2)).build(),
             Cat.parseSet("ns, pid"), [&](const Tuple &T) {
               EXPECT_TRUE(T.has(Cat.get("ns")));
               EXPECT_TRUE(T.has(Cat.get("pid")));
               ++Rows;
               return true;
             });
    // Parallel fan-out scan racing the writers (one worker per shard
    // through the bounded merge queue), sometimes stopped early to
    // exercise close()-side shutdown against blocked producers.
    bool StopEarly = R.chance(0.3);
    size_t ParRows = 0;
    Rel.scanFramesParallel(Tuple(), Cat.parseSet("ns, cpu"),
                           [&](const BindingFrame &F) {
                             EXPECT_GE(F.get(ColCpu).asInt(), 0);
                             ++Rows;
                             return !StopEarly || ++ParRows < 5;
                           });
    (void)Rel.size();
    (void)Rel.contains(Key);
  }
  RowsSeen.fetch_add(Rows, std::memory_order_relaxed);
}

/// The full harness: writers + readers race, then the writer logs are
/// replayed serially and the final states must be α-equivalent.
void runStress(ConcurrentOptions Opts, unsigned NumWriters,
               unsigned NumReaders, int OpsPerWriter) {
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  ConcurrentRelation Rel(D, Opts);

  std::vector<std::vector<LoggedOp>> Logs(NumWriters);
  std::atomic<bool> Done{false};
  std::atomic<size_t> RowsSeen{0};

  std::vector<std::thread> Readers;
  for (unsigned I = 0; I != NumReaders; ++I)
    Readers.emplace_back(readerLoop, std::cref(Rel), std::cref(Cat), I,
                         std::cref(Done), std::ref(RowsSeen));
  std::vector<std::thread> Writers;
  for (unsigned I = 0; I != NumWriters; ++I)
    Writers.emplace_back([&, I] {
      writerLoop(Rel, Cat, Spec->fds(), I, NumWriters, OpsPerWriter,
                 Logs[I]);
    });
  for (std::thread &T : Writers)
    T.join();
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();

  // Serial replay, thread by thread: a legal serialization because
  // the writers' key sets are disjoint, so cross-thread ops commute.
  SynthesizedRelation Replay{Decomposition(D)};
  size_t TotalOps = 0;
  for (const std::vector<LoggedOp> &Log : Logs) {
    TotalOps += Log.size();
    for (const LoggedOp &Op : Log) {
      switch (Op.Op) {
      case LoggedOp::Insert:
        Replay.insert(Op.A);
        break;
      case LoggedOp::Remove:
        Replay.remove(Op.A);
        break;
      case LoggedOp::Update:
        Replay.update(Op.A, Op.B);
        break;
      case LoggedOp::Upsert:
        applyUpsert(Replay, Cat, Op.A, Op.Delta);
        break;
      }
    }
  }
  EXPECT_GT(TotalOps, 0u);
  EXPECT_EQ(Rel.toRelation(), Replay.toRelation());
  EXPECT_EQ(Rel.size(), Replay.size());
}

TEST(ConcurrentStressTest, MultiWriterMultiReaderDefaultSharding) {
  runStress({8, std::nullopt}, /*NumWriters=*/4, /*NumReaders=*/2,
            /*OpsPerWriter=*/600);
}

TEST(ConcurrentStressTest, MultiWriterShardedByNonKeyColumn) {
  // Sharding on state forces the fan-out update and cross-shard
  // migration paths under contention.
  RelSpecRef Spec = schedulerSpec();
  ConcurrentOptions Opts;
  Opts.NumShards = 4;
  Opts.ShardColumn = Spec->catalog().get("state");
  runStress(Opts, /*NumWriters=*/4, /*NumReaders=*/2, /*OpsPerWriter=*/300);
}

TEST(ConcurrentStressTest, SingleShardDegenerateStillSafe) {
  runStress({1, std::nullopt}, /*NumWriters=*/2, /*NumReaders=*/2,
            /*OpsPerWriter=*/300);
}

/// Arena accounting under multi-writer churn: after the race, the
/// per-shard arenas' live block counts must be a pure function of the
/// represented relation — clearing and replaying the same contents
/// single-threaded reproduces them exactly, and a clear leaves only
/// the shard roots live with every slab retained warm.
TEST(ConcurrentStressTest, ArenaAccountingSurvivesWriterChurn) {
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  ConcurrentRelation Rel(D, {4, std::nullopt});

  const unsigned NumWriters = 4;
  std::vector<std::vector<LoggedOp>> Logs(NumWriters);
  std::vector<std::thread> Writers;
  for (unsigned I = 0; I != NumWriters; ++I)
    Writers.emplace_back([&, I] {
      writerLoop(Rel, Cat, Spec->fds(), I, NumWriters, /*Ops=*/500, Logs[I]);
    });
  for (std::thread &T : Writers)
    T.join();

  Relation Final = Rel.toRelation();
  ArenaStats AfterChurn = Rel.arenaStats();
  // Churn recycles constantly; the free lists must be doing real work.
  EXPECT_GT(AfterChurn.Recycled, 0u);
  EXPECT_GE(AfterChurn.Live, Rel.numShards() + Rel.size());

  // Clear: O(slabs) reset on every shard, slabs retained.
  Rel.clear();
  ArenaStats Cleared = Rel.arenaStats();
  EXPECT_EQ(Cleared.Live, Rel.numShards());
  EXPECT_EQ(Cleared.Slabs, AfterChurn.Slabs);
  EXPECT_EQ(Cleared.Bytes, AfterChurn.Bytes);

  // Replay the final contents serially: α-equivalent, and the arenas
  // hold exactly the blocks the churned run held for the same
  // relation — live counts depend on contents, not history.
  for (const Tuple &T : Final.tuples())
    Rel.insert(T);
  EXPECT_EQ(Rel.toRelation(), Final);
  EXPECT_EQ(Rel.arenaStats().Live, AfterChurn.Live);
  EXPECT_EQ(Rel.arenaStats().Slabs, AfterChurn.Slabs);
}

//===----------------------------------------------------------------------===
// Serializability stress: racing multi-key transactions.
//===----------------------------------------------------------------------===

/// One op of a logged transaction, replayable against any engine.
struct LoggedTxOp {
  enum Kind { Insert, Remove, Update, Upsert } Op;
  Tuple A;           ///< Insert: tuple. Remove/Update/Upsert: the key.
  Tuple B;           ///< Update: the changes.
  int64_t Delta = 0; ///< Upsert: the deterministic Fn's increment.
};

/// A committed transaction: its commit ticket (drawn at the
/// linearization point, while every touched stripe was held) plus the
/// ops to replay.
struct LoggedTx {
  uint64_t Ticket = 0;
  std::vector<LoggedTxOp> Ops;
};

/// Rebuilds the executable TxOp for a logged op; the upsert callback
/// is the same deterministic (current, Delta) formula applyUpsert
/// replays, so any engine reproduces it.
TxOp toTxOp(const Catalog &Cat, const LoggedTxOp &Op) {
  switch (Op.Op) {
  case LoggedTxOp::Insert:
    return TxOp::insert(Op.A);
  case LoggedTxOp::Remove:
    return TxOp::remove(Op.A);
  case LoggedTxOp::Update:
    return TxOp::update(Op.A, Op.B);
  case LoggedTxOp::Upsert:
    break;
  }
  ColumnId ColCpu = Cat.get("cpu"), ColState = Cat.get("state");
  int64_t Delta = Op.Delta;
  return TxOp::upsert(Op.A, [ColCpu, ColState,
                             Delta](const BindingFrame *Cur, Tuple &V) {
    int64_t Cpu = Cur ? Cur->get(ColCpu).asInt() : 0;
    V.set(ColCpu, Value::ofInt((Cpu + Delta) % 100));
    V.set(ColState, Value::ofInt(Delta % 3));
  });
}

/// Transaction writer: random 2-4-op transactions over keys drawn
/// from ONE domain shared by every writer — unlike the single-op
/// stress, the key sets deliberately OVERLAP, so nothing commutes for
/// free and only two-phase locking keeps the histories serializable.
/// Committed transactions are logged under their commit tickets;
/// aborted ones (mid-batch FD conflicts from racing inserts, rolled
/// back under the held locks) are counted.
void txWriterLoop(ConcurrentRelation &Rel, const Catalog &Cat,
                  unsigned Tid, int Txns, std::vector<LoggedTx> &Log,
                  std::atomic<size_t> &Aborts) {
  Rng R(0x7c0000 + Tid);
  for (int T = 0; T != Txns; ++T) {
    std::vector<LoggedTxOp> Script;
    unsigned N = 2 + static_cast<unsigned>(R.below(3));
    for (unsigned J = 0; J != N; ++J) {
      Tuple Key = TupleBuilder(Cat)
                      .set("ns", R.range(0, 7))
                      .set("pid", R.range(0, 11))
                      .build();
      switch (R.below(8)) {
      case 0: { // insert: conflict-prone on purpose (shared keys)
        Tuple T2 = Key.merge(TupleBuilder(Cat)
                                 .set("state", R.range(0, 2))
                                 .set("cpu", R.range(0, 99))
                                 .build());
        Script.push_back({LoggedTxOp::Insert, T2, Tuple(), 0});
        break;
      }
      case 1: // remove through the key
        Script.push_back({LoggedTxOp::Remove, Key, Tuple(), 0});
        break;
      case 2: { // update cpu through the key
        Script.push_back(
            {LoggedTxOp::Update, Key,
             TupleBuilder(Cat).set("cpu", R.range(0, 99)).build(), 0});
        break;
      }
      case 3: { // update state through the key (migration when
                // sharded by state)
        Script.push_back(
            {LoggedTxOp::Update, Key,
             TupleBuilder(Cat).set("state", R.range(0, 2)).build(), 0});
        break;
      }
      default: // upsert: the transfer-style read-modify-write
        Script.push_back(
            {LoggedTxOp::Upsert, Key, Tuple(), R.range(1, 49)});
        break;
      }
    }
    std::vector<TxOp> Ops;
    Ops.reserve(Script.size());
    for (const LoggedTxOp &Op : Script)
      Ops.push_back(toTxOp(Cat, Op));
    TxResult Res = Rel.transact(Ops);
    if (Res.Committed)
      Log.push_back({Res.Ticket, std::move(Script)});
    else
      Aborts.fetch_add(1, std::memory_order_relaxed);
  }
}

/// The serializability harness: N transaction writers over overlapping
/// keys race M readers; afterwards every committed transaction is
/// replayed SERIALLY, in commit-ticket order, into the sequential
/// engine. Two-phase locking promises that ticket order is a legal
/// serialization: every replayed transaction must commit again, and
/// the final states must be α-equivalent.
void runTransactStress(ConcurrentOptions Opts, unsigned NumWriters,
                       unsigned NumReaders, int TxnsPerWriter) {
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  ConcurrentRelation Rel(D, Opts);

  std::vector<std::vector<LoggedTx>> Logs(NumWriters);
  std::atomic<size_t> Aborts{0};
  std::atomic<bool> Done{false};
  std::atomic<size_t> RowsSeen{0};

  std::vector<std::thread> Readers;
  for (unsigned I = 0; I != NumReaders; ++I)
    Readers.emplace_back(readerLoop, std::cref(Rel), std::cref(Cat), I,
                         std::cref(Done), std::ref(RowsSeen));
  std::vector<std::thread> Writers;
  for (unsigned I = 0; I != NumWriters; ++I)
    Writers.emplace_back([&, I] {
      txWriterLoop(Rel, Cat, I, TxnsPerWriter, Logs[I], Aborts);
    });
  for (std::thread &T : Writers)
    T.join();
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();

  // Merge the logs into one serial history ordered by commit ticket.
  std::vector<const LoggedTx *> History;
  for (const std::vector<LoggedTx> &Log : Logs)
    for (const LoggedTx &Tx : Log)
      History.push_back(&Tx);
  std::sort(History.begin(), History.end(),
            [](const LoggedTx *L, const LoggedTx *R2) {
              return L->Ticket < R2->Ticket;
            });
  // Tickets are unique commit stamps.
  for (size_t I = 1; I < History.size(); ++I)
    ASSERT_NE(History[I - 1]->Ticket, History[I]->Ticket);

  SynthesizedRelation Replay{Decomposition(D)};
  for (const LoggedTx *Tx : History) {
    std::vector<TxOp> Ops;
    Ops.reserve(Tx->Ops.size());
    for (const LoggedTxOp &Op : Tx->Ops)
      Ops.push_back(toTxOp(Cat, Op));
    TxResult Res = Replay.transact(Ops);
    // Serializability: what committed concurrently must commit in the
    // serial order the tickets define.
    ASSERT_TRUE(Res.Committed) << "ticket " << Tx->Ticket;
  }
  EXPECT_GT(History.size(), 0u);
  EXPECT_GT(Aborts.load(), 0u)
      << "overlapping inserts should produce some rolled-back batches";
  EXPECT_EQ(Rel.toRelation(), Replay.toRelation());
  EXPECT_EQ(Rel.size(), Replay.size());
}

TEST(ConcurrentStressTest, SerializableTransactionsDefaultSharding) {
  // Routed transactions: most batches lock 2-4 stripes (ShardSetGuard)
  // while rivals hold overlapping subsets.
  runTransactStress({8, std::nullopt}, /*NumWriters=*/4, /*NumReaders=*/2,
                    /*TxnsPerWriter=*/250);
}

TEST(ConcurrentStressTest, SerializableTransactionsShardedByNonKeyColumn) {
  // Sharded by state: every transaction degrades to the all-stripes
  // fan-out and updates migrate tuples between shards mid-batch.
  RelSpecRef Spec = schedulerSpec();
  ConcurrentOptions Opts;
  Opts.NumShards = 4;
  Opts.ShardColumn = Spec->catalog().get("state");
  runTransactStress(Opts, /*NumWriters=*/4, /*NumReaders=*/2,
                    /*TxnsPerWriter=*/150);
}

TEST(ConcurrentStressTest, TransactionsRaceSingleOpWriters) {
  // Transactions and plain single-op writers on DISJOINT key ranges
  // (transactions on pids 0-11, single-op writers above 64): the
  // single-op harness's commutativity argument still applies to the
  // combined final state, so replaying the single-op logs thread by
  // thread plus the transaction log in ticket order must reproduce it.
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  ConcurrentRelation Rel(D, {8, std::nullopt});

  const unsigned NumTxWriters = 2, NumOpWriters = 2;
  std::vector<std::vector<LoggedTx>> TxLogs(NumTxWriters);
  std::vector<std::vector<LoggedOp>> OpLogs(NumOpWriters);
  std::atomic<size_t> Aborts{0};

  std::vector<std::thread> Threads;
  for (unsigned I = 0; I != NumTxWriters; ++I)
    Threads.emplace_back([&, I] {
      txWriterLoop(Rel, Cat, I, 200, TxLogs[I], Aborts);
    });
  for (unsigned I = 0; I != NumOpWriters; ++I)
    Threads.emplace_back([&, I] {
      // Offset the pid domain: writerLoop keys are Tid + N*k; shift
      // Tid past the transaction domain.
      writerLoop(Rel, Cat, Spec->fds(), 64 + I, NumOpWriters, 300,
                 OpLogs[I]);
    });
  for (std::thread &T : Threads)
    T.join();

  SynthesizedRelation Replay{Decomposition(D)};
  // Single-op logs first (their keys are disjoint from every
  // transaction's, so they commute with the whole transaction
  // history), then transactions in ticket order.
  for (const std::vector<LoggedOp> &Log : OpLogs)
    for (const LoggedOp &Op : Log) {
      switch (Op.Op) {
      case LoggedOp::Insert:
        Replay.insert(Op.A);
        break;
      case LoggedOp::Remove:
        Replay.remove(Op.A);
        break;
      case LoggedOp::Update:
        Replay.update(Op.A, Op.B);
        break;
      case LoggedOp::Upsert:
        applyUpsert(Replay, Cat, Op.A, Op.Delta);
        break;
      }
    }
  std::vector<const LoggedTx *> History;
  for (const std::vector<LoggedTx> &Log : TxLogs)
    for (const LoggedTx &Tx : Log)
      History.push_back(&Tx);
  std::sort(History.begin(), History.end(),
            [](const LoggedTx *L, const LoggedTx *R2) {
              return L->Ticket < R2->Ticket;
            });
  for (const LoggedTx *Tx : History) {
    std::vector<TxOp> Ops;
    for (const LoggedTxOp &Op : Tx->Ops)
      Ops.push_back(toTxOp(Cat, Op));
    ASSERT_TRUE(Replay.transact(Ops).Committed);
  }
  EXPECT_EQ(Rel.toRelation(), Replay.toRelation());
  EXPECT_EQ(Rel.size(), Replay.size());
}

/// Snapshots racing writer churn: a snapshot thread pins handles
/// mid-stream and verifies each is frozen — two extractions from the
/// same handle, taken while writers keep committing between them, must
/// be identical — while a handle held across the whole run proves
/// writers make progress against pinned state (COW, not blocking).
/// Final-state α-equivalence then shows the churn itself stayed
/// correct under the extra clone/retire traffic. TSan-clean is the
/// other half of the point.
TEST(ConcurrentStressTest, SnapshotsUnderWriterChurn) {
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  ConcurrentRelation Rel(D, {4, std::nullopt});

  // Held for the entire run: every write after this pays/forces the
  // COW path at least once per shard generation.
  ConcurrentRelation::Snapshot Epoch0 = Rel.snapshot();
  ASSERT_TRUE(Epoch0.empty());

  const unsigned NumWriters = 4;
  std::vector<std::vector<LoggedOp>> Logs(NumWriters);
  std::atomic<bool> Done{false};
  std::atomic<size_t> SnapsTaken{0};

  std::thread Snapshotter([&] {
    // A small window of live handles keeps several frozen generations
    // pinned at once (the reclamation path must cope with overlap).
    std::vector<ConcurrentRelation::Snapshot> Window;
    while (!Done.load(std::memory_order_acquire)) {
      ConcurrentRelation::Snapshot Snap = Rel.snapshot();
      Relation First = Snap.toRelation();
      EXPECT_EQ(First.size(), Snap.size());
      std::this_thread::yield(); // let writers commit in between
      EXPECT_EQ(Snap.toRelation(), First) << "snapshot moved under churn";
      Window.push_back(std::move(Snap));
      if (Window.size() > 4)
        Window.erase(Window.begin());
      SnapsTaken.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> Writers;
  for (unsigned I = 0; I != NumWriters; ++I)
    Writers.emplace_back([&, I] {
      writerLoop(Rel, Cat, Spec->fds(), I, NumWriters, /*Ops=*/500,
                 Logs[I]);
    });
  for (std::thread &T : Writers)
    T.join();
  Done.store(true, std::memory_order_release);
  Snapshotter.join();

  EXPECT_GT(SnapsTaken.load(), 0u);
  // The run-long handle still reads the pre-churn (empty) state.
  EXPECT_TRUE(Epoch0.empty());
  EXPECT_EQ(Epoch0.toRelation(), Relation(Cat.allColumns()));

  // Writers progressed and stayed correct under pinned generations.
  SynthesizedRelation Replay{Decomposition(D)};
  size_t TotalOps = 0;
  for (const std::vector<LoggedOp> &Log : Logs) {
    TotalOps += Log.size();
    for (const LoggedOp &Op : Log) {
      switch (Op.Op) {
      case LoggedOp::Insert:
        Replay.insert(Op.A);
        break;
      case LoggedOp::Remove:
        Replay.remove(Op.A);
        break;
      case LoggedOp::Update:
        Replay.update(Op.A, Op.B);
        break;
      case LoggedOp::Upsert:
        applyUpsert(Replay, Cat, Op.A, Op.Delta);
        break;
      }
    }
  }
  EXPECT_GT(TotalOps, 0u);
  // A post-join snapshot and the direct extraction agree with the
  // serial replay.
  ConcurrentRelation::Snapshot Final = Rel.snapshot();
  EXPECT_EQ(Final.toRelation(), Replay.toRelation());
  EXPECT_EQ(Rel.toRelation(), Replay.toRelation());
  EXPECT_EQ(Final.size(), Replay.size());
}

TEST(ConcurrentStressTest, ConcurrentIdenticalInsertsConverge) {
  // Every thread races to insert the same tuple set in a different
  // order: each tuple must change the relation exactly once globally,
  // and the final state is exactly the set.
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  ConcurrentRelation Rel(D, {8, std::nullopt});

  const int NumTuples = 256;
  std::vector<Tuple> Tuples;
  for (int I = 0; I != NumTuples; ++I)
    Tuples.push_back(TupleBuilder(Cat)
                         .set("ns", I % 16)
                         .set("pid", I)
                         .set("state", I % 3)
                         .set("cpu", I)
                         .build());

  const unsigned NumThreads = 4;
  std::vector<size_t> Changed(NumThreads, 0);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Rng R(T);
      std::vector<Tuple> Order = Tuples;
      for (size_t I = Order.size(); I > 1; --I)
        std::swap(Order[I - 1], Order[R.below(I)]);
      for (const Tuple &Tp : Order)
        Changed[T] += Rel.insert(Tp);
    });
  for (std::thread &T : Threads)
    T.join();

  size_t TotalChanged = 0;
  for (size_t C : Changed)
    TotalChanged += C;
  EXPECT_EQ(TotalChanged, static_cast<size_t>(NumTuples));
  EXPECT_EQ(Rel.size(), static_cast<size_t>(NumTuples));

  Relation Expected(Cat.allColumns());
  for (const Tuple &T : Tuples)
    Expected.insert(T);
  EXPECT_EQ(Rel.toRelation(), Expected);
}

} // namespace
