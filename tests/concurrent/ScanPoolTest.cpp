//===- tests/concurrent/ScanPoolTest.cpp - Scan pool tests ------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent scan worker pool of concurrent/ScanPool.h: lazy
/// spawning (no threads until the first submit), TaskGroup completion
/// tracking, worker reuse across successive scans, and the cap. Runs
/// under ThreadSanitizer in CI via the `concurrent.` job regex.
///
//===----------------------------------------------------------------------===//

#include "concurrent/ScanPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

using namespace relc;

namespace {

TEST(ScanPoolTest, SpawnsNoThreadsUntilFirstSubmit) {
  ScanPool Pool(4);
  EXPECT_EQ(Pool.workerCount(), 0u);
  EXPECT_EQ(Pool.maxWorkers(), 4u);
}

TEST(ScanPoolTest, ZeroMaxUsesHardwareConcurrency) {
  ScanPool Pool(0);
  EXPECT_GE(Pool.maxWorkers(), 1u);
}

TEST(ScanPoolTest, TaskGroupWaitsForEveryTask) {
  ScanPool Pool(4);
  std::atomic<int> Ran{0};
  {
    ScanPool::TaskGroup Tasks(Pool);
    for (int I = 0; I != 32; ++I)
      Tasks.submit([&] { Ran.fetch_add(1, std::memory_order_relaxed); });
    Tasks.wait();
    EXPECT_EQ(Ran.load(), 32);
  }
  EXPECT_GE(Pool.workerCount(), 1u);
  EXPECT_LE(Pool.workerCount(), 4u);
}

TEST(ScanPoolTest, GroupDestructorWaits) {
  ScanPool Pool(2);
  std::atomic<int> Ran{0};
  {
    ScanPool::TaskGroup Tasks(Pool);
    for (int I = 0; I != 8; ++I)
      Tasks.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        Ran.fetch_add(1, std::memory_order_relaxed);
      });
    // No explicit wait: ~TaskGroup must block until all 8 ran.
  }
  EXPECT_EQ(Ran.load(), 8);
}

TEST(ScanPoolTest, WorkersPersistAcrossScans) {
  ScanPool Pool(4);
  std::atomic<int> Ran{0};
  for (int Scan = 0; Scan != 16; ++Scan) {
    ScanPool::TaskGroup Tasks(Pool);
    for (int I = 0; I != 4; ++I)
      Tasks.submit([&] { Ran.fetch_add(1, std::memory_order_relaxed); });
    Tasks.wait();
  }
  EXPECT_EQ(Ran.load(), 64);
  // The whole point: 16 scans of 4 tasks did not spawn 64 threads.
  EXPECT_LE(Pool.workerCount(), 4u);
}

TEST(ScanPoolTest, SpawnIsCappedUnderParallelLoad) {
  ScanPool Pool(2);
  std::mutex M;
  std::condition_variable Cv;
  int Held = 4;
  ScanPool::TaskGroup Tasks(Pool);
  // 4 tasks that all block until released: only 2 workers may exist,
  // so they drain the queue two at a time.
  for (int I = 0; I != 4; ++I)
    Tasks.submit([&] {
      std::unique_lock<std::mutex> L(M);
      --Held;
      Cv.notify_all();
    });
  {
    std::unique_lock<std::mutex> L(M);
    Cv.wait(L, [&] { return Held == 0; });
  }
  Tasks.wait();
  EXPECT_LE(Pool.workerCount(), 2u);
  EXPECT_GE(Pool.workerCount(), 1u);
}

TEST(ScanPoolTest, GlobalPoolIsOneInstance) {
  ScanPool &A = ScanPool::global();
  ScanPool &B = ScanPool::global();
  EXPECT_EQ(&A, &B);
  EXPECT_GE(A.maxWorkers(), 1u);
}

} // namespace
