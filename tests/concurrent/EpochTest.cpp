//===- tests/concurrent/EpochTest.cpp - Epoch reclamation tests -*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The epoch-based read-side protection of concurrent/Epoch.h: section
/// nesting, the writer fence's tag-selective drain, the central
/// reclamation guarantee (retired memory is freed only after every
/// overlapping read-side section has exited), deferred reclamation
/// through InstanceGraph, and a readers-vs-writers churn stress over
/// the wait-free ConcurrentRelation read path. The whole suite runs
/// under ThreadSanitizer in CI (the `concurrent.` job regex).
///
//===----------------------------------------------------------------------===//

#include "concurrent/Epoch.h"

#include "concurrent/ConcurrentRelation.h"
#include "decomp/Builder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace relc;

namespace {

void spinUntil(const std::atomic<int> &Flag, int Want) {
  while (Flag.load(std::memory_order_acquire) != Want)
    std::this_thread::yield();
}

TEST(EpochTest, SectionsNestAndUnwind) {
  EpochManager &M = EpochManager::global();
  EXPECT_FALSE(M.inSection());
  {
    EpochGuard Outer;
    EXPECT_TRUE(M.inSection());
    {
      EpochGuard Inner;
      EXPECT_TRUE(M.inSection());
    }
    EXPECT_TRUE(M.inSection());
  }
  EXPECT_FALSE(M.inSection());
}

TEST(EpochTest, ParticipantSlotsAreClaimed) {
  EpochManager &M = EpochManager::global();
  { EpochGuard G; }
  size_t After = M.participantHighWater();
  EXPECT_GE(After, 1u);
  // A second thread claims (or reuses) a slot without growing the
  // table past one slot per concurrently-live thread.
  std::thread T([&] { EpochGuard G; });
  T.join();
  EXPECT_GE(M.participantHighWater(), After);
  EXPECT_LE(M.participantHighWater(), After + 1);
}

/// The reclamation contract: an object retired while some thread is
/// inside a read-side section is NOT destroyed — however hard the
/// manager tries — until that section exits.
TEST(EpochTest, RetiredDestroyedOnlyAfterGuardsDrop) {
  EpochManager &M = EpochManager::global();
  M.flush(); // start from a clean retire state
  ASSERT_EQ(M.pendingRetired(), 0u);

  std::atomic<int> Destroyed{0};
  struct Obj {
    std::atomic<int> *Counter;
    ~Obj() { Counter->fetch_add(1, std::memory_order_relaxed); }
  };

  std::atomic<int> Stage{0};
  std::thread Reader([&] {
    EpochGuard G; // wildcard: overlaps any retire
    Stage.store(1, std::memory_order_release);
    spinUntil(Stage, 2);
  });
  spinUntil(Stage, 1);

  M.retireObject(new Obj{&Destroyed});
  EXPECT_GE(M.pendingRetired(), 1u);
  // flush() advances and reclaims as far as the active section allows:
  // with the reader pinned at the retire epoch, that is not at all.
  M.flush();
  EXPECT_EQ(Destroyed.load(), 0);

  Stage.store(2, std::memory_order_release);
  Reader.join();
  M.flush();
  EXPECT_EQ(Destroyed.load(), 1);
  EXPECT_EQ(M.pendingRetired(), 0u);
}

/// A writer fence over gate G waits for sections tagged &G (and for
/// wildcard sections), and ignores sections on unrelated gates.
TEST(EpochTest, FenceWaitsForMatchingTagOnly) {
  EpochManager &M = EpochManager::global();
  EpochGate Mine, Other;

  std::atomic<int> Stage{0};
  std::thread Reader([&] {
    M.enter(&Mine);
    Stage.store(1, std::memory_order_release);
    spinUntil(Stage, 2);
    M.exit();
  });
  spinUntil(Stage, 1);

  // Unrelated gate: completes immediately even though a section on
  // &Mine is live.
  {
    EpochWriterFence F(Other);
    EXPECT_TRUE(Other.writerActive());
  }
  EXPECT_FALSE(Other.writerActive());

  // Matching gate: must not complete until the reader exits.
  std::atomic<bool> FenceDone{false};
  std::thread Writer([&] {
    EpochWriterFence F(Mine);
    FenceDone.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(FenceDone.load(std::memory_order_acquire));
  EXPECT_TRUE(Mine.writerActive());

  Stage.store(2, std::memory_order_release);
  Reader.join();
  Writer.join();
  EXPECT_TRUE(FenceDone.load());
  EXPECT_FALSE(Mine.writerActive());
}

TEST(EpochTest, FenceWaitsForWildcardSection) {
  EpochManager &M = EpochManager::global();
  EpochGate G;

  std::atomic<int> Stage{0};
  std::thread Reader([&] {
    M.enter(nullptr); // wildcard
    Stage.store(1, std::memory_order_release);
    spinUntil(Stage, 2);
    M.exit();
  });
  spinUntil(Stage, 1);

  std::atomic<bool> FenceDone{false};
  std::thread Writer([&] {
    EpochWriterFence F(G);
    FenceDone.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(FenceDone.load(std::memory_order_acquire));

  Stage.store(2, std::memory_order_release);
  Reader.join();
  Writer.join();
  EXPECT_TRUE(FenceDone.load());
}

/// Nesting a section with a different tag widens the slot to the
/// wildcard: a fence over the INNER gate must now wait too.
TEST(EpochTest, MismatchedNestingWidensToWildcard) {
  EpochManager &M = EpochManager::global();
  EpochGate A, B;

  std::atomic<int> Stage{0};
  std::thread Reader([&] {
    M.enter(&A);
    M.enter(&B); // widens the slot's tag to wildcard
    Stage.store(1, std::memory_order_release);
    spinUntil(Stage, 2);
    M.exit();
    M.exit();
  });
  spinUntil(Stage, 1);

  std::atomic<bool> FenceDone{false};
  std::thread Writer([&] {
    EpochWriterFence F(B);
    FenceDone.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(FenceDone.load(std::memory_order_acquire));

  Stage.store(2, std::memory_order_release);
  Reader.join();
  Writer.join();
  EXPECT_TRUE(FenceDone.load());
}

//===----------------------------------------------------------------------===//
// Deferred reclamation through InstanceGraph / the relation stack.
//===----------------------------------------------------------------------===//

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

Decomposition fig2(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  return B.build();
}

Tuple proc(const Catalog &Cat, int64_t Ns, int64_t Pid, int64_t State,
           int64_t Cpu) {
  return TupleBuilder(Cat)
      .set("ns", Ns)
      .set("pid", Pid)
      .set("state", State)
      .set("cpu", Cpu)
      .build();
}

/// Node memory freed by a ConcurrentRelation mutation is parked on the
/// retire list while a reader section is live, and reclaimed after.
TEST(EpochTest, RelationNodesRetireUnderLiveSection) {
  EpochManager &M = EpochManager::global();
  M.flush();
  ASSERT_EQ(M.pendingRetired(), 0u);

  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  ConcurrentRelation Rel(fig2(Spec), {4, std::nullopt});
  for (int64_t I = 0; I != 64; ++I)
    ASSERT_TRUE(Rel.insert(proc(Cat, I % 8, I, I % 3, 0)));

  // The reader's section is tagged with an UNRELATED gate: the
  // relation's writer fences ignore it (tag mismatch), so the removes
  // below complete — but epoch advance is tag-blind, so the section
  // still pins every retired node. (A wildcard guard here would
  // instead block the fences themselves: that is the guard-discipline
  // rule of Epoch.h, exercised by FenceWaitsForWildcardSection.)
  EpochGate Unrelated;
  std::atomic<int> Stage{0};
  std::thread Reader([&] {
    EpochGuard G(&Unrelated);
    Stage.store(1, std::memory_order_release);
    spinUntil(Stage, 2);
  });
  spinUntil(Stage, 1);

  for (int64_t I = 0; I != 64; ++I)
    Rel.remove(TupleBuilder(Cat).set("ns", I % 8).set("pid", I).build());
  EXPECT_TRUE(Rel.empty());
  // The unlinked NodeInstances were destructed eagerly (liveInstances
  // already reflects the removes) but their memory is parked.
  EXPECT_GT(M.pendingRetired(), 0u);
  M.flush();
  EXPECT_GT(M.pendingRetired(), 0u); // still pinned by the reader

  Stage.store(2, std::memory_order_release);
  Reader.join();
  M.flush();
  EXPECT_EQ(M.pendingRetired(), 0u);
}

//===----------------------------------------------------------------------===//
// Readers-vs-writers churn over the wait-free read path. TSan-clean by
// construction of the Dekker handshake; this is the test that proves
// it.
//===----------------------------------------------------------------------===//

TEST(EpochTest, SnapshotReadersSurviveWriterChurn) {
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  ConcurrentRelation Rel(fig2(Spec), {4, std::nullopt});
  for (int64_t I = 0; I != 32; ++I)
    ASSERT_TRUE(Rel.insert(proc(Cat, I % 8, I, I % 3, 0)));

  constexpr int NumReaders = 3;
  constexpr int WriterRounds = 400;
  std::atomic<bool> Stop{false};
  std::atomic<size_t> RowsSeen{0};

  std::vector<std::thread> Readers;
  for (int R = 0; R != NumReaders; ++R) {
    Readers.emplace_back([&, R] {
      ColumnSet Out = Cat.parseSet("ns, pid, state, cpu");
      while (!Stop.load(std::memory_order_acquire)) {
        // Routed point read, fan-out scan, and whole-relation
        // snapshot, round-robin — all three read-path shapes.
        if (R == 0) {
          Tuple P = TupleBuilder(Cat).set("ns", 3).build();
          Rel.scanFrames(P, Out, [&](const BindingFrame &) {
            RowsSeen.fetch_add(1, std::memory_order_relaxed);
            return true;
          });
        } else if (R == 1) {
          Rel.scanFrames(Tuple(), Out, [&](const BindingFrame &) {
            RowsSeen.fetch_add(1, std::memory_order_relaxed);
            return true;
          });
        } else {
          Relation Snap = Rel.toRelation();
          RowsSeen.fetch_add(Snap.size(), std::memory_order_relaxed);
          // Size conservation: writers move tuples between states but
          // the churn loop below keeps the population at 32.
          EXPECT_LE(Snap.size(), 33u);
        }
      }
    });
  }

  std::thread Writer([&] {
    for (int Round = 0; Round != WriterRounds; ++Round) {
      int64_t I = Round % 32;
      Tuple Key =
          TupleBuilder(Cat).set("ns", I % 8).set("pid", I).build();
      switch (Round % 3) {
      case 0:
        Rel.update(Key,
                   TupleBuilder(Cat).set("state", Round % 5).build());
        break;
      case 1:
        Rel.remove(Key);
        ASSERT_TRUE(Rel.insert(proc(Cat, I % 8, I, Round % 3, 1)));
        break;
      default:
        Rel.upsert(Key, [&](const BindingFrame *, Tuple &V) {
          V = TupleBuilder(Cat)
                  .set("state", Round % 7)
                  .set("cpu", Round % 2)
                  .build();
        });
        break;
      }
    }
    Stop.store(true, std::memory_order_release);
  });

  Writer.join();
  for (std::thread &T : Readers)
    T.join();
  EXPECT_GT(RowsSeen.load(), 0u);
  EXPECT_EQ(Rel.size(), 32u);
  EXPECT_EQ(Rel.toRelation().size(), 32u);
  EpochManager::global().flush();
}

} // namespace
