//===- tests/concurrent/ConcurrentRelationTest.cpp - Facade tests -*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-threaded semantics of the sharded ConcurrentRelation facade:
/// routing, fan-out, shard-column migration, and α-equivalence with
/// both the sequential engine and the Relation oracle under a
/// randomized operation mix. (The multi-threaded interleavings are
/// tests/concurrent/StressTest.cpp.)
///
//===----------------------------------------------------------------------===//

#include "concurrent/ConcurrentRelation.h"

#include "decomp/Builder.h"
#include "systems/GraphRelational.h"
#include "systems/IpcapRelational.h"
#include "systems/SchedulerRelational.h"
#include "systems/ThttpdRelational.h"
#include "systems/ZtopoRelational.h"
#include "workloads/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace relc;

namespace {

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

Decomposition fig2(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  return B.build();
}

class ConcurrentRelationTest : public ::testing::Test {
protected:
  ConcurrentRelationTest()
      : Spec(schedulerSpec()), Decomp(fig2(Spec)), Cat(Spec->catalog()) {}

  Tuple proc(int64_t Ns, int64_t Pid, int64_t State, int64_t Cpu) {
    return TupleBuilder(Cat)
        .set("ns", Ns)
        .set("pid", Pid)
        .set("state", State)
        .set("cpu", Cpu)
        .build();
  }

  Tuple key(int64_t Ns, int64_t Pid) {
    return TupleBuilder(Cat).set("ns", Ns).set("pid", Pid).build();
  }

  RelSpecRef Spec;
  Decomposition Decomp;
  const Catalog &Cat;
};

TEST_F(ConcurrentRelationTest, DefaultShardColumnIsRootKeyHead) {
  // fig2's root joins map(ns, ...) with map(state, ...): the first
  // root edge is keyed on ns.
  EXPECT_EQ(ShardRouter::defaultShardColumn(Decomp), Cat.get("ns"));

  RelSpecRef IpcapSpec = IpcapRelational::makeSpec();
  Decomposition IpcapD = IpcapRelational::makeDefaultDecomposition(IpcapSpec);
  EXPECT_EQ(ShardRouter::defaultShardColumn(IpcapD),
            IpcapSpec->catalog().get("local"));
}

TEST_F(ConcurrentRelationTest, StartsEmpty) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  EXPECT_TRUE(Rel.empty());
  EXPECT_EQ(Rel.size(), 0u);
  EXPECT_EQ(Rel.numShards(), 4u);
  EXPECT_EQ(Rel.shardColumn(), Cat.get("ns"));
  EXPECT_TRUE(Rel.toRelation().empty());
}

TEST_F(ConcurrentRelationTest, InsertRoutesToOneShard) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  EXPECT_TRUE(Rel.insert(proc(7, 42, 1, 0)));
  EXPECT_FALSE(Rel.insert(proc(7, 42, 1, 0))); // duplicate
  EXPECT_EQ(Rel.size(), 1u);

  // Exactly one shard is non-empty, and it is the routed one.
  ShardRouter Router(Rel.shardColumn(), Rel.numShards());
  unsigned Owner = Router.shardOf(Value::ofInt(7));
  for (unsigned I = 0; I != Rel.numShards(); ++I)
    EXPECT_EQ(Rel.shard(I).size(), I == Owner ? 1u : 0u);
}

TEST_F(ConcurrentRelationTest, ShardsDisjointAndSizesSum) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  for (int64_t Ns = 0; Ns != 16; ++Ns)
    for (int64_t Pid = 0; Pid != 8; ++Pid)
      ASSERT_TRUE(Rel.insert(proc(Ns, Pid, Pid % 2, 0)));
  EXPECT_EQ(Rel.size(), 128u);

  size_t Sum = 0;
  unsigned NonEmpty = 0;
  for (unsigned I = 0; I != Rel.numShards(); ++I) {
    Sum += Rel.shard(I).size();
    NonEmpty += Rel.shard(I).size() > 0;
  }
  EXPECT_EQ(Sum, 128u);
  // 16 distinct ns values over 4 shards: overwhelmingly every shard
  // gets some (and the default router does spread these).
  EXPECT_GT(NonEmpty, 1u);
}

TEST_F(ConcurrentRelationTest, RoutedAndFanOutQueries) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  for (int64_t Ns = 0; Ns != 8; ++Ns)
    for (int64_t Pid = 0; Pid != 4; ++Pid)
      Rel.insert(proc(Ns, Pid, Pid % 2, 10 * Ns + Pid));

  // Routed: pattern binds ns.
  auto Pids = Rel.query(TupleBuilder(Cat).set("ns", 3).build(),
                        Cat.parseSet("pid"));
  EXPECT_EQ(Pids.size(), 4u);

  // Fan-out: pattern binds only state; results cross every shard.
  auto Running = Rel.query(TupleBuilder(Cat).set("state", 1).build(),
                           Cat.parseSet("ns, pid"));
  EXPECT_EQ(Running.size(), 16u);

  // Fan-out projection that drops the shard column must deduplicate
  // across shards: the distinct states are {0, 1}.
  auto States = Rel.query(Tuple(), Cat.parseSet("state"));
  EXPECT_EQ(States.size(), 2u);

  // contains: routed and fan-out.
  EXPECT_TRUE(Rel.contains(key(3, 2)));
  EXPECT_FALSE(Rel.contains(key(3, 9)));
  EXPECT_TRUE(Rel.contains(TupleBuilder(Cat).set("cpu", 31).build()));
  EXPECT_FALSE(Rel.contains(TupleBuilder(Cat).set("cpu", 999).build()));
}

TEST_F(ConcurrentRelationTest, ScanEarlyStopAcrossShards) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  for (int64_t Ns = 0; Ns != 8; ++Ns)
    Rel.insert(proc(Ns, 1, 1, 0));
  size_t Seen = 0;
  Rel.scan(TupleBuilder(Cat).set("state", 1).build(), Cat.parseSet("ns"),
           [&](const Tuple &) { return ++Seen < 3; });
  EXPECT_EQ(Seen, 3u);
}

TEST_F(ConcurrentRelationTest, RemoveRoutedAndFanOut) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  for (int64_t Ns = 0; Ns != 8; ++Ns)
    for (int64_t Pid = 0; Pid != 4; ++Pid)
      Rel.insert(proc(Ns, Pid, Pid % 2, 0));

  // Routed: the key binds ns.
  EXPECT_EQ(Rel.remove(key(5, 0)), 1u);
  EXPECT_EQ(Rel.size(), 31u);

  // Fan-out: remove everything in state 1 (pattern misses ns).
  EXPECT_EQ(Rel.remove(TupleBuilder(Cat).set("state", 1).build()), 16u);
  EXPECT_EQ(Rel.size(), 15u);
  EXPECT_FALSE(Rel.contains(TupleBuilder(Cat).set("state", 1).build()));
}

TEST_F(ConcurrentRelationTest, UpdateRoutedKeepsShard) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  Rel.insert(proc(7, 42, 1, 0));
  EXPECT_EQ(Rel.update(key(7, 42), TupleBuilder(Cat).set("cpu", 99).build()),
            1u);
  auto Row = Rel.query(key(7, 42), Cat.parseSet("cpu"));
  ASSERT_EQ(Row.size(), 1u);
  EXPECT_EQ(Row[0].get(Cat.get("cpu")).asInt(), 99);
  EXPECT_EQ(Rel.size(), 1u);
}

TEST_F(ConcurrentRelationTest, UpdateFansOutWhenKeyMissesShardColumn) {
  // Shard on state (not part of the key): a key-pattern update must
  // fan out to find its shard.
  ConcurrentOptions Opts;
  Opts.NumShards = 4;
  Opts.ShardColumn = Cat.get("state");
  ConcurrentRelation Rel(Decomp, Opts);
  Rel.insert(proc(7, 42, 1, 0));
  Rel.insert(proc(7, 43, 0, 5));

  EXPECT_EQ(Rel.update(key(7, 42), TupleBuilder(Cat).set("cpu", 31).build()),
            1u);
  EXPECT_EQ(Rel.update(key(1, 1), TupleBuilder(Cat).set("cpu", 31).build()),
            0u); // no match anywhere
  auto Row = Rel.query(key(7, 42), Cat.parseSet("cpu"));
  ASSERT_EQ(Row.size(), 1u);
  EXPECT_EQ(Row[0].get(Cat.get("cpu")).asInt(), 31);
}

TEST_F(ConcurrentRelationTest, UpdateRewritingShardColumnMigrates) {
  ConcurrentOptions Opts;
  Opts.NumShards = 4;
  Opts.ShardColumn = Cat.get("state");
  ConcurrentRelation Rel(Decomp, Opts);
  Rel.insert(proc(7, 42, 1, 0));

  ShardRouter Router(Rel.shardColumn(), Rel.numShards());
  unsigned Before = Router.shardOf(Value::ofInt(1));

  // Pick a new state whose hash lands on a different shard, so the
  // update genuinely migrates the tuple.
  int64_t NewState = -1;
  for (int64_t S = 0; S != 64 && NewState < 0; ++S)
    if (Router.shardOf(Value::ofInt(S)) != Before)
      NewState = S;
  ASSERT_GE(NewState, 0) << "no state value maps to another shard";
  unsigned After = Router.shardOf(Value::ofInt(NewState));

  EXPECT_EQ(
      Rel.update(key(7, 42), TupleBuilder(Cat).set("state", NewState).build()),
      1u);
  EXPECT_EQ(Rel.size(), 1u);
  EXPECT_EQ(Rel.shard(Before).size(), 0u);
  EXPECT_EQ(Rel.shard(After).size(), 1u);

  // The moved tuple is intact and queries see it under the new value.
  auto Row = Rel.query(TupleBuilder(Cat).set("state", NewState).build(),
                       Cat.parseSet("ns, pid, cpu"));
  ASSERT_EQ(Row.size(), 1u);
  EXPECT_EQ(Row[0].get(Cat.get("ns")).asInt(), 7);
  EXPECT_EQ(Row[0].get(Cat.get("pid")).asInt(), 42);

  // Updating a key with no match reports 0.
  EXPECT_EQ(Rel.update(key(9, 9), TupleBuilder(Cat).set("state", 2).build()),
            0u);
}

TEST_F(ConcurrentRelationTest, UpsertRoutedInsertAndReadModifyWrite) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  Tuple Key = key(7, 42);
  ColumnId ColState = Cat.get("state"), ColCpu = Cat.get("cpu");

  // Absent: Fn sees nullptr and supplies every non-key column.
  bool Inserted = Rel.upsert(Key, [&](const BindingFrame *Cur, Tuple &V) {
    EXPECT_EQ(Cur, nullptr);
    V.set(ColState, Value::ofInt(1));
    V.set(ColCpu, Value::ofInt(10));
  });
  EXPECT_TRUE(Inserted);
  EXPECT_EQ(Rel.size(), 1u);

  // Present: Fn reads the live frame and accumulates.
  Inserted = Rel.upsert(Key, [&](const BindingFrame *Cur, Tuple &V) {
    ASSERT_NE(Cur, nullptr);
    V.set(ColCpu, Value::ofInt(Cur->get(ColCpu).asInt() + 32));
  });
  EXPECT_FALSE(Inserted);
  EXPECT_EQ(Rel.size(), 1u);
  EXPECT_TRUE(Rel.contains(proc(7, 42, 1, 42)));

  // Routed: only the owning shard holds the tuple.
  ShardRouter Router(Rel.shardColumn(), Rel.numShards());
  unsigned Owner = Router.shardOf(Value::ofInt(7));
  for (unsigned I = 0; I != Rel.numShards(); ++I)
    EXPECT_EQ(Rel.shard(I).size(), I == Owner ? 1u : 0u);
}

TEST_F(ConcurrentRelationTest, UpsertFanOutMigratesAcrossShards) {
  // Sharded by state (non-key): the upsert key cannot route, and
  // rewriting state rehomes the tuple.
  ConcurrentOptions Opts;
  Opts.NumShards = 4;
  Opts.ShardColumn = Cat.get("state");
  ConcurrentRelation Rel(Decomp, Opts);
  ColumnId ColState = Cat.get("state"), ColCpu = Cat.get("cpu");

  ASSERT_TRUE(Rel.insert(proc(1, 2, 0, 5)));
  ShardRouter Router(Rel.shardColumn(), Rel.numShards());
  unsigned Before = Router.shardOf(Value::ofInt(0));
  ASSERT_EQ(Rel.shard(Before).size(), 1u);

  bool Inserted =
      Rel.upsert(key(1, 2), [&](const BindingFrame *Cur, Tuple &V) {
        ASSERT_NE(Cur, nullptr);
        EXPECT_EQ(Cur->get(ColCpu).asInt(), 5);
        V.set(ColState, Value::ofInt(2)); // rehomes the tuple
        V.set(ColCpu, Value::ofInt(6));
      });
  EXPECT_FALSE(Inserted);
  EXPECT_EQ(Rel.size(), 1u);
  EXPECT_TRUE(Rel.contains(proc(1, 2, 2, 6)));
  unsigned After = Router.shardOf(Value::ofInt(2));
  EXPECT_EQ(Rel.shard(After).size(), 1u);
  if (After != Before)
    EXPECT_EQ(Rel.shard(Before).size(), 0u);

  // Absent key through the fan-out path: inserts into the shard of
  // the new state value.
  Inserted = Rel.upsert(key(3, 4), [&](const BindingFrame *Cur, Tuple &V) {
    EXPECT_EQ(Cur, nullptr);
    V.set(ColState, Value::ofInt(1));
    V.set(ColCpu, Value::ofInt(9));
  });
  EXPECT_TRUE(Inserted);
  EXPECT_EQ(Rel.size(), 2u);
  EXPECT_TRUE(Rel.contains(proc(3, 4, 1, 9)));
}

TEST_F(ConcurrentRelationTest, ClearAndLeakFree) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  size_t EmptyLive = Rel.liveInstances(); // the per-shard roots
  for (int64_t Ns = 0; Ns != 8; ++Ns)
    Rel.insert(proc(Ns, 1, 0, 0));
  EXPECT_GT(Rel.liveInstances(), EmptyLive);
  Rel.clear();
  EXPECT_TRUE(Rel.empty());
  EXPECT_EQ(Rel.liveInstances(), EmptyLive);
  EXPECT_TRUE(Rel.toRelation().empty());
}

TEST_F(ConcurrentRelationTest, ArenaLiveTracksInsertAndRemove) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  // Baseline: one tracked block per shard root, no container cells.
  ArenaStats Empty = Rel.arenaStats();
  EXPECT_EQ(Empty.Live, Rel.numShards());

  for (int64_t Ns = 0; Ns != 8; ++Ns)
    for (int64_t Pid = 0; Pid != 16; ++Pid)
      Rel.insert(proc(Ns, Pid, Pid % 3, 0));
  ArenaStats Full = Rel.arenaStats();
  // Every tuple costs at least a w node plus its container cells.
  EXPECT_GE(Full.Live, Empty.Live + Rel.size());
  EXPECT_GT(Full.Bytes, 0u);

  // Removing everything returns every node and cell: back to the
  // per-shard roots, even though the memory hand-back of nodes rides
  // the epoch retire list (Live counts payload objects, not blocks
  // awaiting reuse).
  for (int64_t Ns = 0; Ns != 8; ++Ns)
    for (int64_t Pid = 0; Pid != 16; ++Pid)
      Rel.remove(key(Ns, Pid));
  EXPECT_EQ(Rel.size(), 0u);
  EXPECT_EQ(Rel.arenaStats().Live, Empty.Live);
}

TEST_F(ConcurrentRelationTest, ClearRetainsSlabsAndReplaysAlphaEquivalent) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  std::vector<Tuple> Rows;
  for (int64_t Ns = 0; Ns != 8; ++Ns)
    for (int64_t Pid = 0; Pid != 32; ++Pid)
      Rows.push_back(proc(Ns, Pid, (Ns + Pid) % 3, Pid % 100));
  for (const Tuple &T : Rows)
    Rel.insert(T);
  Relation Before = Rel.toRelation();
  ArenaStats Warm = Rel.arenaStats();

  Rel.clear();
  ArenaStats Cleared = Rel.arenaStats();
  // O(slabs) reset: slabs and bytes stay warm, only the roots live.
  EXPECT_EQ(Cleared.Slabs, Warm.Slabs);
  EXPECT_EQ(Cleared.Bytes, Warm.Bytes);
  EXPECT_EQ(Cleared.Live, Rel.numShards());
  EXPECT_TRUE(Rel.empty());

  // Replaying the same contents into the warmed arena grows nothing
  // and represents the same relation.
  for (const Tuple &T : Rows)
    Rel.insert(T);
  ArenaStats Refilled = Rel.arenaStats();
  EXPECT_EQ(Refilled.Slabs, Warm.Slabs);
  EXPECT_EQ(Refilled.Live, Warm.Live);
  EXPECT_EQ(Rel.toRelation(), Before);
}

//===----------------------------------------------------------------------===//
// Consistent snapshots (COW shard state + RCU reclamation)
//===----------------------------------------------------------------------===//

TEST_F(ConcurrentRelationTest, SnapshotIsImmutableUnderMutation) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  for (int64_t Ns = 0; Ns != 8; ++Ns)
    for (int64_t Pid = 0; Pid != 8; ++Pid)
      ASSERT_TRUE(Rel.insert(proc(Ns, Pid, Pid % 3, Pid)));
  Relation Before = Rel.toRelation();

  ConcurrentRelation::Snapshot Snap = Rel.snapshot();
  ASSERT_TRUE(Snap.valid());
  EXPECT_EQ(Snap.numShards(), Rel.numShards());
  EXPECT_EQ(Snap.size(), 64u);
  EXPECT_EQ(Snap.toRelation(), Before);

  // Every mutation class lands while the handle is held; the pinned
  // view must not move (writers copy-on-write around it).
  EXPECT_TRUE(Rel.insert(proc(9, 9, 0, 0)));
  EXPECT_EQ(Rel.remove(key(0, 0)), 1u);
  EXPECT_EQ(Rel.update(key(1, 1), TupleBuilder(Cat).set("cpu", 77).build()),
            1u);
  Rel.upsert(key(2, 2), [&](const BindingFrame *, Tuple &V) {
    V.set(Cat.get("cpu"), Value::ofInt(55));
  });
  TxResult R = Rel.transact([&](TxBatch &Tx) {
    Tx.update(key(3, 3), TupleBuilder(Cat).set("cpu", 12).build());
  });
  EXPECT_TRUE(R.Committed);

  EXPECT_EQ(Snap.toRelation(), Before);
  EXPECT_EQ(Snap.size(), 64u);
  EXPECT_NE(Rel.toRelation(), Before);
  EXPECT_EQ(Rel.size(), 64u); // one insert, one remove

  // clear() must replace the pinned shards, not reset them in place.
  Rel.clear();
  EXPECT_TRUE(Rel.empty());
  EXPECT_EQ(Snap.toRelation(), Before);
  EXPECT_EQ(Snap.size(), 64u);
}

TEST_F(ConcurrentRelationTest, SnapshotTicketCountsCommittedTransactions) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  EXPECT_EQ(Rel.snapshot().ticket(), 0u);
  ASSERT_TRUE(Rel.insert(proc(1, 1, 0, 10)));
  // Plain mutations draw no commit tickets; committed transacts do.
  EXPECT_EQ(Rel.snapshot().ticket(), 0u);
  TxResult R1 = Rel.transact([&](TxBatch &Tx) {
    Tx.update(key(1, 1), TupleBuilder(Cat).set("cpu", 11).build());
  });
  ASSERT_TRUE(R1.Committed);
  ConcurrentRelation::Snapshot Snap = Rel.snapshot();
  EXPECT_EQ(Snap.ticket(), R1.Ticket);
  // An aborted transaction publishes no commit the snapshot could see.
  std::vector<TxOp> Bad;
  Bad.push_back(TxOp::insert(proc(1, 1, 2, 0))); // FD conflict
  EXPECT_FALSE(Rel.transact(Bad).Committed);
  EXPECT_EQ(Rel.snapshot().ticket(), R1.Ticket);
}

TEST_F(ConcurrentRelationTest, SnapshotAlphaEquivalentToPrefix) {
  // A randomized op mix with snapshots pinned mid-stream: each handle
  // must stay α-equivalent to the oracle's state at its acquisition
  // point no matter what runs afterwards — the single-threaded
  // skeleton of the checkpoint-consistency argument (the threaded
  // interleavings are StressTest.cpp).
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  Relation Oracle(Cat.allColumns());
  Rng R(0xa11ce);
  std::vector<std::pair<ConcurrentRelation::Snapshot, Relation>> Pinned;

  for (int Step = 0; Step != 300; ++Step) {
    int64_t Ns = R.range(0, 7);
    int64_t Pid = R.range(0, 15);
    Tuple Key = key(Ns, Pid);
    switch (R.below(4)) {
    case 0:
    case 1: {
      Tuple T = proc(Ns, Pid, static_cast<int64_t>(R.below(3)),
                     static_cast<int64_t>(R.below(100)));
      if (!Oracle.insertPreservesFds(T, Spec->fds()))
        break;
      Oracle.insert(T);
      EXPECT_TRUE(Rel.insert(T));
      break;
    }
    case 2:
      EXPECT_EQ(Rel.remove(Key), Oracle.remove(Key));
      break;
    case 3: {
      Tuple Changes = TupleBuilder(Cat).set("cpu", R.range(0, 99)).build();
      EXPECT_EQ(Rel.update(Key, Changes), Oracle.update(Key, Changes));
      break;
    }
    }
    if (Step % 50 == 49)
      Pinned.emplace_back(Rel.snapshot(), Oracle);
  }

  for (size_t I = 0; I != Pinned.size(); ++I) {
    EXPECT_EQ(Pinned[I].first.toRelation(), Pinned[I].second)
        << "snapshot " << I;
    EXPECT_EQ(Pinned[I].first.size(), Pinned[I].second.size());
  }
  // Dropping every handle lets the epoch manager reclaim the frozen
  // generations (ASan/LSan verifies on teardown).
}

TEST_F(ConcurrentRelationTest, SnapshotOutlivesRelation) {
  ConcurrentRelation::Snapshot Snap;
  EXPECT_FALSE(Snap.valid());
  Relation Before(Cat.allColumns());
  {
    ConcurrentRelation Rel(Decomp, {4, std::nullopt});
    for (int64_t Ns = 0; Ns != 8; ++Ns)
      for (int64_t Pid = 0; Pid != 4; ++Pid)
        ASSERT_TRUE(Rel.insert(proc(Ns, Pid, 0, Pid)));
    Before = Rel.toRelation();
    Snap = Rel.snapshot();
  }
  // The handle pins the frozen shard state (and its arenas) past the
  // facade's death.
  ASSERT_TRUE(Snap.valid());
  EXPECT_EQ(Snap.size(), 32u);
  EXPECT_EQ(Snap.toRelation(), Before);
  size_t Rows = 0;
  Snap.scanFrames(Tuple(), Cat.allColumns(), [&](const BindingFrame &) {
    ++Rows;
    return true;
  });
  EXPECT_EQ(Rows, 32u);
}

/// Randomized α-equivalence: a mixed operation sequence applied to the
/// sharded facade, the sequential engine, and the Relation oracle must
/// leave all three representing the same relation.
void runAlphaEquivalence(const RelSpecRef &Spec, const Decomposition &D,
                         ConcurrentOptions Opts, uint64_t Seed) {
  const Catalog &Cat = Spec->catalog();
  ConcurrentRelation Sharded(D, Opts);
  SynthesizedRelation Sequential{Decomposition(D)};
  Relation Oracle(Cat.allColumns());
  Rng R(Seed);

  auto MakeProc = [&](int64_t Ns, int64_t Pid) {
    return TupleBuilder(Cat)
        .set("ns", Ns)
        .set("pid", Pid)
        .set("state", static_cast<int64_t>(R.below(3)))
        .set("cpu", static_cast<int64_t>(R.below(100)))
        .build();
  };

  ColumnId ColState = Cat.get("state"), ColCpu = Cat.get("cpu");
  for (int Step = 0; Step != 400; ++Step) {
    int64_t Ns = R.range(0, 7);
    int64_t Pid = R.range(0, 15);
    Tuple Key = TupleBuilder(Cat).set("ns", Ns).set("pid", Pid).build();
    switch (R.below(6)) {
    case 0:
    case 1: { // insert (FD-safe only: the oracle pre-checks)
      Tuple T = MakeProc(Ns, Pid);
      if (!Oracle.insertPreservesFds(T, Spec->fds()))
        break;
      Oracle.insert(T);
      EXPECT_EQ(Sharded.insert(T), Sequential.insert(T));
      break;
    }
    case 2: { // remove by key, or occasionally by state (fan-out)
      Tuple Pattern =
          R.chance(0.3)
              ? TupleBuilder(Cat).set("state", R.range(0, 2)).build()
              : Key;
      size_t N = Oracle.remove(Pattern);
      EXPECT_EQ(Sharded.remove(Pattern), N);
      EXPECT_EQ(Sequential.remove(Pattern), N);
      break;
    }
    case 3: { // update cpu through the key
      Tuple Changes = TupleBuilder(Cat).set("cpu", R.range(0, 99)).build();
      size_t N = Oracle.update(Key, Changes);
      EXPECT_EQ(Sharded.update(Key, Changes), N);
      EXPECT_EQ(Sequential.update(Key, Changes), N);
      break;
    }
    case 4: { // update state through the key (migrates when sharded
              // by state)
      Tuple Changes = TupleBuilder(Cat).set("state", R.range(0, 2)).build();
      size_t N = Oracle.update(Key, Changes);
      EXPECT_EQ(Sharded.update(Key, Changes), N);
      EXPECT_EQ(Sequential.update(Key, Changes), N);
      break;
    }
    case 5: { // upsert: read-modify-write (migrates when sharded by
              // state and the delta rewrites it)
      int64_t Delta = R.range(1, 49);
      auto Fn = [&](const BindingFrame *Cur, Tuple &Values) {
        int64_t Cpu = Cur ? Cur->get(ColCpu).asInt() : 0;
        Values.set(ColCpu, Value::ofInt((Cpu + Delta) % 100));
        Values.set(ColState, Value::ofInt(Delta % 3));
      };
      bool Inserted = Sharded.upsert(Key, Fn);
      EXPECT_EQ(Sequential.upsert(Key, Fn), Inserted);
      // Oracle: the read-modify-write by hand.
      auto Cur = Oracle.query(Key, ColumnSet::single(ColCpu));
      EXPECT_EQ(Cur.empty(), Inserted);
      int64_t Cpu = Cur.empty() ? 0 : Cur.front().get(ColCpu).asInt();
      Tuple Changes = TupleBuilder(Cat)
                          .set("cpu", (Cpu + Delta) % 100)
                          .set("state", Delta % 3)
                          .build();
      if (Cur.empty())
        Oracle.insert(Key.merge(Changes));
      else
        Oracle.update(Key, Changes);
      break;
    }
    }
    if (Step % 25 == 24) {
      EXPECT_EQ(Sharded.toRelation(), Oracle) << "step " << Step;
      EXPECT_EQ(Sharded.toRelation(), Sequential.toRelation())
          << "step " << Step;
      EXPECT_EQ(Sharded.size(), Oracle.size()) << "step " << Step;
    }
  }
  EXPECT_EQ(Sharded.toRelation(), Oracle);
}

TEST_F(ConcurrentRelationTest, AlphaEquivalenceDefaultShardColumn) {
  runAlphaEquivalence(Spec, Decomp, {4, std::nullopt}, 0xc0ffee);
}

TEST_F(ConcurrentRelationTest, AlphaEquivalenceSingleShard) {
  runAlphaEquivalence(Spec, Decomp, {1, std::nullopt}, 0xbeef);
}

TEST_F(ConcurrentRelationTest, AlphaEquivalenceShardedByNonKeyColumn) {
  ConcurrentOptions Opts;
  Opts.NumShards = 4;
  Opts.ShardColumn = Cat.get("state");
  runAlphaEquivalence(Spec, Decomp, Opts, 0xfeed);
}

/// Parallel fan-out scans must deliver exactly the sequential
/// fan-out's multiset of frames, on every example system.
void checkParallelScanParity(const RelSpecRef &Spec, Decomposition D,
                             uint64_t Seed) {
  const Catalog &Cat = Spec->catalog();
  ConcurrentOptions Opts;
  Opts.NumShards = 4;
  Opts.ScanQueueCapacity = 32; // small: force worker/consumer handoff
  ConcurrentRelation Rel(std::move(D), Opts);
  Rng R(Seed);

  // Unique first-column values keep every insert FD-safe (the first
  // column is part of — or is — every system's key).
  ColumnSet All = Cat.allColumns();
  for (int64_t I = 0; I != 300; ++I) {
    Tuple T;
    unsigned J = 0;
    for (ColumnId C : All) {
      T.set(C, Value::ofInt(J == 0 ? I : R.range(0, 96)));
      ++J;
    }
    ASSERT_TRUE(Rel.insert(T));
  }

  std::vector<Tuple> Sequential, Parallel;
  Rel.scanFrames(Tuple(), All, [&](const BindingFrame &F) {
    Sequential.push_back(F.toTuple(All));
    return true;
  });
  Rel.scanFramesParallel(Tuple(), All, [&](const BindingFrame &F) {
    Parallel.push_back(F.toTuple(All));
    return true;
  });
  std::sort(Sequential.begin(), Sequential.end());
  std::sort(Parallel.begin(), Parallel.end());
  EXPECT_EQ(Sequential.size(), 300u) << Spec->name();
  EXPECT_EQ(Sequential, Parallel) << Spec->name();

  // Early stop terminates cleanly (close() unblocks shard workers).
  size_t Seen = 0;
  Rel.scanFramesParallel(Tuple(), All, [&](const BindingFrame &) {
    return ++Seen < 10;
  });
  EXPECT_GE(Seen, 10u);

  // A routed pattern degrades to the sequential single-shard path.
  ColumnId First = All.first();
  std::vector<Tuple> RoutedSeq, RoutedPar;
  Tuple Pat = TupleBuilder(Cat).set(Cat.name(First), int64_t(5)).build();
  Rel.scanFrames(Pat, All, [&](const BindingFrame &F) {
    RoutedSeq.push_back(F.toTuple(All));
    return true;
  });
  Rel.scanFramesParallel(Pat, All, [&](const BindingFrame &F) {
    RoutedPar.push_back(F.toTuple(All));
    return true;
  });
  std::sort(RoutedSeq.begin(), RoutedSeq.end());
  std::sort(RoutedPar.begin(), RoutedPar.end());
  EXPECT_EQ(RoutedSeq, RoutedPar) << Spec->name();
}

TEST_F(ConcurrentRelationTest, ParallelScanZeroCapacityClampsToOne) {
  // Capacity 0 is clamped (not UB): the scan degenerates to a
  // one-slot handoff per row and must still deliver everything.
  ConcurrentOptions Opts;
  Opts.NumShards = 4;
  Opts.ScanQueueCapacity = 0;
  ConcurrentRelation Rel(Decomp, Opts);
  for (int64_t I = 0; I != 64; ++I)
    ASSERT_TRUE(Rel.insert(proc(I % 8, I, I % 3, I)));
  size_t Rows = 0;
  Rel.scanFramesParallel(Tuple(), Cat.allColumns(),
                         [&](const BindingFrame &) {
                           ++Rows;
                           return true;
                         });
  EXPECT_EQ(Rows, 64u);
}

TEST_F(ConcurrentRelationTest, ParallelScanParityScheduler) {
  RelSpecRef S = SchedulerRelational::makeSpec();
  checkParallelScanParity(
      S, SchedulerRelational::makeDefaultDecomposition(S), 0x5c4e1);
}

TEST_F(ConcurrentRelationTest, ParallelScanParityGraph) {
  RelSpecRef S = GraphRelational::makeSpec();
  checkParallelScanParity(S, GraphRelational::makeSharedBidirectional(S),
                          0x5c4e2);
}

TEST_F(ConcurrentRelationTest, ParallelScanParityThttpd) {
  RelSpecRef S = ThttpdRelational::makeSpec();
  checkParallelScanParity(
      S, ThttpdRelational::makeDefaultDecomposition(S), 0x5c4e3);
}

TEST_F(ConcurrentRelationTest, ParallelScanParityIpcap) {
  RelSpecRef S = IpcapRelational::makeSpec();
  checkParallelScanParity(S, IpcapRelational::makeDefaultDecomposition(S),
                          0x5c4e4);
}

TEST_F(ConcurrentRelationTest, ParallelScanParityZtopo) {
  RelSpecRef S = ZtopoRelational::makeSpec();
  checkParallelScanParity(S, ZtopoRelational::makeDefaultDecomposition(S),
                          0x5c4e5);
}

TEST_F(ConcurrentRelationTest, TransactLockPlanRoutedSetNeverAllShards) {
  ConcurrentRelation Rel(Decomp, {8, std::nullopt});
  ShardRouter Router(Rel.shardColumn(), Rel.numShards());

  // Two ns values owned by different shards.
  int64_t NsA = 0, NsB = -1;
  for (int64_t V = 1; V != 64 && NsB < 0; ++V)
    if (Router.shardOf(Value::ofInt(V)) != Router.shardOf(Value::ofInt(NsA)))
      NsB = V;
  ASSERT_GE(NsB, 0);

  auto Noop = [](const BindingFrame *, Tuple &) {};
  std::vector<TxOp> Transfer;
  Transfer.push_back(TxOp::upsert(key(NsA, 1), Noop));
  Transfer.push_back(TxOp::upsert(key(NsB, 2), Noop));

  // The acceptance shape: two routed keys, exactly their two stripes,
  // ascending, never all shards.
  ConcurrentRelation::TxLockPlan Plan = Rel.transactLockPlan(Transfer);
  EXPECT_FALSE(Plan.AllShards);
  std::vector<unsigned> Expected = {Router.shardOf(Value::ofInt(NsA)),
                                    Router.shardOf(Value::ofInt(NsB))};
  std::sort(Expected.begin(), Expected.end());
  EXPECT_EQ(Plan.Stripes, Expected);
  EXPECT_EQ(Plan.Stripes.size(), 2u);

  // Same shard twice: one stripe.
  std::vector<TxOp> SameShard;
  SameShard.push_back(TxOp::upsert(key(NsA, 1), Noop));
  SameShard.push_back(TxOp::upsert(key(NsA, 2), Noop));
  Plan = Rel.transactLockPlan(SameShard);
  EXPECT_FALSE(Plan.AllShards);
  EXPECT_EQ(Plan.Stripes.size(), 1u);

  // A routed insert and remove join the routed set too.
  std::vector<TxOp> Mixed;
  Mixed.push_back(TxOp::insert(proc(NsA, 3, 0, 0)));
  Mixed.push_back(TxOp::remove(key(NsB, 4)));
  Plan = Rel.transactLockPlan(Mixed);
  EXPECT_FALSE(Plan.AllShards);
  EXPECT_EQ(Plan.Stripes.size(), 2u);

  // An op that misses the shard column degrades the batch to all
  // shards...
  std::vector<TxOp> FanOut;
  FanOut.push_back(TxOp::upsert(key(NsA, 1), Noop));
  FanOut.push_back(
      TxOp::remove(TupleBuilder(Cat).set("state", 1).build()));
  Plan = Rel.transactLockPlan(FanOut);
  EXPECT_TRUE(Plan.AllShards);

  // ...as does an update that rewrites the shard column (migration).
  std::vector<TxOp> Rehome;
  Rehome.push_back(TxOp::update(
      TupleBuilder(Cat).set("pid", 1).set("state", 0).build(),
      TupleBuilder(Cat).set("ns", 5).build()));
  Plan = Rel.transactLockPlan(Rehome);
  EXPECT_TRUE(Plan.AllShards);
}

TEST_F(ConcurrentRelationTest, TransactLockPlanFansOutWhenFdProbesCannotRoute) {
  // Sharded by state: the key FD's left-hand side {ns, pid} misses the
  // shard column, so even a full-tuple insert cannot validate its FDs
  // against one shard — every insert-like op degrades to all stripes.
  ConcurrentOptions Opts;
  Opts.NumShards = 4;
  Opts.ShardColumn = Cat.get("state");
  ConcurrentRelation Rel(Decomp, Opts);

  std::vector<TxOp> Ops;
  Ops.push_back(TxOp::insert(proc(1, 1, 0, 0)));
  EXPECT_TRUE(Rel.transactLockPlan(Ops).AllShards);

  // Removal needs no FD probes: a state-bound remove still routes.
  std::vector<TxOp> Removes;
  Removes.push_back(
      TxOp::remove(TupleBuilder(Cat).set("state", 1).build()));
  ConcurrentRelation::TxLockPlan Plan = Rel.transactLockPlan(Removes);
  EXPECT_FALSE(Plan.AllShards);
  EXPECT_EQ(Plan.Stripes.size(), 1u);
}

TEST_F(ConcurrentRelationTest, TransactTransferMovesValueAtomically) {
  ConcurrentRelation Rel(Decomp, {8, std::nullopt});
  ASSERT_TRUE(Rel.insert(proc(1, 1, 0, 50)));
  ASSERT_TRUE(Rel.insert(proc(2, 2, 0, 10)));
  ColumnId ColCpu = Cat.get("cpu");

  // Debit one key, credit the other, as one serializable unit.
  TxResult R = Rel.transact([&](TxBatch &Tx) {
    Tx.upsert(key(1, 1), [&](const BindingFrame *Cur, Tuple &V) {
      ASSERT_NE(Cur, nullptr);
      V.set(ColCpu, Value::ofInt(Cur->get(ColCpu).asInt() - 30));
    });
    Tx.upsert(key(2, 2), [&](const BindingFrame *Cur, Tuple &V) {
      ASSERT_NE(Cur, nullptr);
      V.set(ColCpu, Value::ofInt(Cur->get(ColCpu).asInt() + 30));
    });
  });
  EXPECT_TRUE(R.Committed);
  EXPECT_GT(R.Ticket, 0u);
  EXPECT_TRUE(Rel.contains(proc(1, 1, 0, 20)));
  EXPECT_TRUE(Rel.contains(proc(2, 2, 0, 40)));
  EXPECT_EQ(Rel.size(), 2u);

  // Tickets are monotone commit stamps.
  TxResult R2 = Rel.transact([&](TxBatch &Tx) {
    Tx.update(key(1, 1), TupleBuilder(Cat).set("cpu", 21).build());
  });
  EXPECT_TRUE(R2.Committed);
  EXPECT_GT(R2.Ticket, R.Ticket);
}

TEST_F(ConcurrentRelationTest, TransactRollsBackAcrossShards) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  ASSERT_TRUE(Rel.insert(proc(1, 1, 0, 10)));
  ASSERT_TRUE(Rel.insert(proc(2, 2, 1, 20)));
  Relation Before = Rel.toRelation();

  // Mutations land on several shards before the conflict: the
  // cross-shard undo log must restore every one of them.
  std::vector<TxOp> Ops;
  Ops.push_back(TxOp::insert(proc(3, 3, 0, 3)));
  Ops.push_back(
      TxOp::update(key(1, 1), TupleBuilder(Cat).set("cpu", 99).build()));
  Ops.push_back(TxOp::remove(key(2, 2)));
  Ops.push_back(TxOp::insert(proc(1, 1, 2, 0))); // FD conflict

  TxResult R = Rel.transact(Ops);
  EXPECT_FALSE(R.Committed);
  EXPECT_EQ(R.FailedOp, 3u);
  EXPECT_EQ(R.Ticket, 0u);
  EXPECT_EQ(Rel.toRelation(), Before);
  EXPECT_EQ(Rel.size(), 2u);
}

TEST_F(ConcurrentRelationTest, TransactMigrationInsideBatch) {
  // Sharded by state: updates and upserts that rewrite it rehome
  // tuples between shards mid-batch, and a trailing conflict must
  // migrate them back.
  ConcurrentOptions Opts;
  Opts.NumShards = 4;
  Opts.ShardColumn = Cat.get("state");
  ConcurrentRelation Rel(Decomp, Opts);
  SynthesizedRelation Seq{Decomposition(Decomp)};
  ColumnId ColState = Cat.get("state"), ColCpu = Cat.get("cpu");

  for (int64_t P = 0; P != 6; ++P) {
    ASSERT_TRUE(Rel.insert(proc(1, P, P % 3, 10 * P)));
    ASSERT_TRUE(Seq.insert(proc(1, P, P % 3, 10 * P)));
  }

  std::vector<TxOp> Ops;
  Ops.push_back(
      TxOp::update(key(1, 0), TupleBuilder(Cat).set("state", 2).build()));
  Ops.push_back(TxOp::upsert(key(1, 1), [&](const BindingFrame *Cur,
                                            Tuple &V) {
    ASSERT_NE(Cur, nullptr);
    V.set(ColState, Value::ofInt((Cur->get(ColState).asInt() + 1) % 3));
    V.set(ColCpu, Value::ofInt(Cur->get(ColCpu).asInt() + 1));
  }));
  Ops.push_back(TxOp::insert(proc(1, 6, 1, 60)));
  EXPECT_TRUE(Rel.transactLockPlan(Ops).AllShards);

  TxResult RC = Rel.transact(Ops);
  TxResult RS = Seq.transact(Ops);
  EXPECT_TRUE(RC.Committed);
  EXPECT_TRUE(RS.Committed);
  EXPECT_EQ(Rel.toRelation(), Seq.toRelation());
  EXPECT_EQ(Rel.size(), Seq.size());

  // Same shape with a trailing conflict: the migrations must unwind.
  Relation Before = Rel.toRelation();
  Ops.push_back(TxOp::insert(proc(1, 6, 2, 0))); // conflicts with (1,6)
  TxResult RF = Rel.transact(Ops);
  EXPECT_FALSE(RF.Committed);
  EXPECT_EQ(RF.FailedOp, 3u);
  EXPECT_EQ(Rel.toRelation(), Before);
}

//===----------------------------------------------------------------------===
// Five-system transact α-equivalence.
//===----------------------------------------------------------------------===

/// One op of the oracle-side batch: TxOp plus the deterministic
/// upsert delta (the callback itself lives in the TxOp).
struct TxScript {
  std::vector<TxOp> Ops;
  std::vector<int64_t> Deltas; ///< per op; meaningful for upserts
};

/// Reference transact semantics over the Relation oracle: applied to a
/// copy, committed by swap — an executable specification independent
/// of both engines.
bool oracleTransact(Relation &R, const FuncDeps &Fds, ColumnSet All,
                    ColumnSet Rest, const TxScript &Script) {
  Relation Work = R;
  for (size_t I = 0; I != Script.Ops.size(); ++I) {
    const TxOp &Op = Script.Ops[I];
    switch (Op.Op) {
    case TxOp::Insert:
      if (Work.contains(Op.A))
        break; // duplicate no-op
      if (!Work.insertPreservesFds(Op.A, Fds))
        return false;
      Work.insert(Op.A);
      break;
    case TxOp::Remove:
      Work.remove(Op.A);
      break;
    case TxOp::Update: {
      auto Cur = Work.query(Op.A, All);
      if (Cur.empty())
        break;
      Tuple Merged = Cur.front().merge(Op.B);
      if (Merged == Cur.front())
        break;
      Work.remove(Cur.front());
      if (!Work.insertPreservesFds(Merged, Fds))
        return false;
      Work.insert(Merged);
      break;
    }
    case TxOp::Upsert: {
      // The same deterministic formula the TxOp's callback applies:
      // each non-key column becomes (current + delta + rank) mod 7.
      auto Cur = Work.query(Op.A, All);
      Tuple New = Op.A;
      unsigned Rank = 0;
      for (ColumnId C : Rest) {
        int64_t Base = Cur.empty() ? 0 : Cur.front().get(C).asInt();
        New.set(C, Value::ofInt((Base + Script.Deltas[I] + Rank) % 7));
        ++Rank;
      }
      if (New == (Cur.empty() ? New : Cur.front()) && !Cur.empty())
        break;
      if (!Cur.empty())
        Work.remove(Cur.front());
      if (!Work.insertPreservesFds(New, Fds))
        return false;
      Work.insert(New);
      break;
    }
    }
  }
  R = Work;
  return true;
}

/// Random 1-4-op batches applied in lockstep to the sharded facade,
/// the sequential engine, and the oracle semantics above: commit
/// verdicts, failing indices, and final relations must all agree —
/// on any example system, under any sharding.
void runTransactAlphaEquivalence(const RelSpecRef &Spec, Decomposition D,
                                 ConcurrentOptions Opts, uint64_t Seed) {
  const Catalog &Cat = Spec->catalog();
  ColumnSet All = Cat.allColumns();
  // The key pattern: the left-hand side of a declared key FD.
  ColumnSet Key;
  for (const FuncDep &Fd : Spec->fds().deps())
    if (Spec->fds().isKey(Fd.Lhs, All)) {
      Key = Fd.Lhs;
      break;
    }
  ASSERT_FALSE(Key.empty()) << Spec->name();
  ColumnSet Rest = All.minus(Key);

  ConcurrentRelation Sharded(D, Opts);
  SynthesizedRelation Sequential{Decomposition(D)};
  Relation Oracle(All);
  Rng R(Seed);

  auto RandKey = [&] {
    Tuple K;
    for (ColumnId C : Key)
      K.set(C, Value::ofInt(R.range(0, 9)));
    return K;
  };

  size_t Commits = 0, Aborts = 0;
  for (int Step = 0; Step != 200; ++Step) {
    TxScript Script;
    unsigned N = 1 + static_cast<unsigned>(R.below(4));
    for (unsigned J = 0; J != N; ++J) {
      int64_t Delta = R.range(0, 6);
      Script.Deltas.push_back(Delta);
      switch (R.below(8)) {
      case 0:
      case 1: { // insert (narrow value domain: conflicts do happen)
        Tuple T = RandKey();
        for (ColumnId C : Rest)
          T.set(C, Value::ofInt(R.range(0, 6)));
        Script.Ops.push_back(TxOp::insert(T));
        break;
      }
      case 2: // remove by key (routed under key sharding)
        Script.Ops.push_back(TxOp::remove(RandKey()));
        break;
      case 3: { // remove by one non-key column (fan-out)
        ColumnId C = Rest.first();
        Script.Ops.push_back(TxOp::remove(
            TupleBuilder(Cat)
                .set(Cat.name(C), static_cast<int64_t>(R.below(7)))
                .build()));
        break;
      }
      case 4: { // update a random non-empty subset of the non-key
                // columns (rewrites the shard column when it is
                // non-key: migration)
        Tuple Changes;
        for (ColumnId C : Rest)
          if (R.chance(0.5))
            Changes.set(C, Value::ofInt(R.range(0, 6)));
        if (Changes.empty())
          Changes.set(Rest.first(), Value::ofInt(R.range(0, 6)));
        Script.Ops.push_back(TxOp::update(RandKey(), Changes));
        break;
      }
      default: { // upsert: deterministic read-modify-write
        Script.Ops.push_back(TxOp::upsert(
            RandKey(), [Rest, Delta](const BindingFrame *Cur, Tuple &V) {
              unsigned Rank = 0;
              for (ColumnId C : Rest) {
                int64_t Base =
                    Cur && Cur->has(C) ? Cur->get(C).asInt() : 0;
                V.set(C, Value::ofInt((Base + Delta + Rank) % 7));
                ++Rank;
              }
            }));
        break;
      }
      }
    }

    TxResult RC = Sharded.transact(Script.Ops);
    TxResult RS = Sequential.transact(Script.Ops);
    bool RO = oracleTransact(Oracle, Spec->fds(), All, Rest, Script);
    ASSERT_EQ(RC.Committed, RS.Committed)
        << Spec->name() << " step " << Step;
    ASSERT_EQ(RC.Committed, RO) << Spec->name() << " step " << Step;
    if (!RC.Committed)
      EXPECT_EQ(RC.FailedOp, RS.FailedOp)
          << Spec->name() << " step " << Step;
    (RC.Committed ? Commits : Aborts) += 1;
    if (Step % 20 == 19) {
      EXPECT_EQ(Sharded.toRelation(), Oracle)
          << Spec->name() << " step " << Step;
      EXPECT_EQ(Sharded.toRelation(), Sequential.toRelation())
          << Spec->name() << " step " << Step;
      EXPECT_EQ(Sharded.size(), Oracle.size())
          << Spec->name() << " step " << Step;
    }
  }
  EXPECT_EQ(Sharded.toRelation(), Oracle) << Spec->name();
  // The mix must genuinely exercise both verdicts.
  EXPECT_GT(Commits, 0u) << Spec->name();
  EXPECT_GT(Aborts, 0u) << Spec->name();
}

TEST_F(ConcurrentRelationTest, TransactAlphaScheduler) {
  RelSpecRef S = SchedulerRelational::makeSpec();
  runTransactAlphaEquivalence(
      S, SchedulerRelational::makeDefaultDecomposition(S),
      {4, std::nullopt}, 0x7a0001);
}

TEST_F(ConcurrentRelationTest, TransactAlphaSchedulerShardedByNonKey) {
  // Sharded by state: every insert-like op fans out, updates and
  // upserts migrate tuples mid-batch.
  RelSpecRef S = SchedulerRelational::makeSpec();
  ConcurrentOptions Opts;
  Opts.NumShards = 4;
  Opts.ShardColumn = S->catalog().get("state");
  runTransactAlphaEquivalence(
      S, SchedulerRelational::makeDefaultDecomposition(S), Opts, 0x7a0002);
}

TEST_F(ConcurrentRelationTest, TransactAlphaGraph) {
  RelSpecRef S = GraphRelational::makeSpec();
  runTransactAlphaEquivalence(S, GraphRelational::makeSharedBidirectional(S),
                              {4, std::nullopt}, 0x7a0003);
}

TEST_F(ConcurrentRelationTest, TransactAlphaThttpd) {
  RelSpecRef S = ThttpdRelational::makeSpec();
  runTransactAlphaEquivalence(
      S, ThttpdRelational::makeDefaultDecomposition(S), {4, std::nullopt},
      0x7a0004);
}

TEST_F(ConcurrentRelationTest, TransactAlphaIpcap) {
  RelSpecRef S = IpcapRelational::makeSpec();
  runTransactAlphaEquivalence(
      S, IpcapRelational::makeDefaultDecomposition(S), {4, std::nullopt},
      0x7a0005);
}

TEST_F(ConcurrentRelationTest, TransactAlphaZtopo) {
  RelSpecRef S = ZtopoRelational::makeSpec();
  runTransactAlphaEquivalence(
      S, ZtopoRelational::makeDefaultDecomposition(S), {4, std::nullopt},
      0x7a0006);
}

TEST_F(ConcurrentRelationTest, TransactAlphaZtopoShardedByNonKey) {
  RelSpecRef S = ZtopoRelational::makeSpec();
  ConcurrentOptions Opts;
  Opts.NumShards = 4;
  Opts.ShardColumn = S->catalog().get("state");
  runTransactAlphaEquivalence(
      S, ZtopoRelational::makeDefaultDecomposition(S), Opts, 0x7a0007);
}

//===--------------------------------------------------------------------===//
// transactKeys: the interpreted mirror of the generated
// `transaction cols x N` form (transactN_by_<key>).
//===--------------------------------------------------------------------===//

TEST_F(ConcurrentRelationTest, TransactKeysTransfersAtomically) {
  ConcurrentRelation Rel(Decomp, {8, std::nullopt});
  ASSERT_TRUE(Rel.insert(proc(1, 1, 0, 50)));
  ASSERT_TRUE(Rel.insert(proc(2, 2, 0, 10)));
  ColumnId ColCpu = Cat.get("cpu");

  TxResult R = Rel.transactKeys(
      {key(1, 1), key(2, 2)},
      [&](std::vector<ConcurrentRelation::TxKeyView> &Views) {
        EXPECT_TRUE(Views[0].Found);
        EXPECT_TRUE(Views[1].Found);
        int64_t A = Views[0].Values.get(ColCpu).asInt();
        int64_t B = Views[1].Values.get(ColCpu).asInt();
        Views[0].Values.set(ColCpu, Value::ofInt(A - 30));
        Views[1].Values.set(ColCpu, Value::ofInt(B + 30));
        return true;
      });
  EXPECT_TRUE(R.Committed);
  EXPECT_GT(R.Ticket, 0u);
  EXPECT_TRUE(Rel.contains(proc(1, 1, 0, 20)));
  EXPECT_TRUE(Rel.contains(proc(2, 2, 0, 40)));
  EXPECT_EQ(Rel.size(), 2u);
}

TEST_F(ConcurrentRelationTest, TransactKeysInsertsAbsentSides) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  ASSERT_TRUE(Rel.insert(proc(1, 1, 0, 7)));

  // One found key, one absent: the absent side comes back fully bound
  // and is inserted; the found side is left untouched (no write).
  TxResult R = Rel.transactKeys(
      {key(1, 1), key(9, 9)},
      [&](std::vector<ConcurrentRelation::TxKeyView> &Views) {
        EXPECT_TRUE(Views[0].Found);
        EXPECT_FALSE(Views[1].Found);
        EXPECT_TRUE(Views[1].Values.columns().empty());
        Views[1].Values =
            TupleBuilder(Cat).set("state", 2).set("cpu", 1).build();
        return true;
      });
  EXPECT_TRUE(R.Committed);
  EXPECT_EQ(Rel.size(), 2u);
  EXPECT_TRUE(Rel.contains(proc(1, 1, 0, 7)));
  EXPECT_TRUE(Rel.contains(proc(9, 9, 2, 1)));
}

TEST_F(ConcurrentRelationTest, TransactKeysCallbackAbortAppliesNothing) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  ASSERT_TRUE(Rel.insert(proc(1, 1, 0, 10)));
  Relation Before = Rel.toRelation();

  TxResult R = Rel.transactKeys(
      {key(1, 1), key(2, 2)},
      [&](std::vector<ConcurrentRelation::TxKeyView> &Views) {
        Views[0].Values.set(Cat.get("cpu"), Value::ofInt(99));
        return false; // abort
      });
  EXPECT_FALSE(R.Committed);
  EXPECT_EQ(R.FailedOp, 2u); // callback abort reports Keys.size()
  EXPECT_EQ(R.Ticket, 0u);
  EXPECT_EQ(Rel.toRelation(), Before);
}

TEST_F(ConcurrentRelationTest, TransactKeysUnderboundInsertAborts) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  ASSERT_TRUE(Rel.insert(proc(1, 1, 0, 10)));
  Relation Before = Rel.toRelation();

  // The absent key's view binds only one of the two non-key columns:
  // conditional abort naming the offending key, nothing applied.
  TxResult R = Rel.transactKeys(
      {key(1, 1), key(5, 5)},
      [&](std::vector<ConcurrentRelation::TxKeyView> &Views) {
        Views[0].Values.set(Cat.get("cpu"), Value::ofInt(11));
        Views[1].Values = TupleBuilder(Cat).set("state", 1).build();
        return true;
      });
  EXPECT_FALSE(R.Committed);
  EXPECT_EQ(R.FailedOp, 1u);
  EXPECT_EQ(Rel.toRelation(), Before);
}

TEST_F(ConcurrentRelationTest, TransactKeysReadOnlyStillCommits) {
  ConcurrentRelation Rel(Decomp, {4, std::nullopt});
  ASSERT_TRUE(Rel.insert(proc(1, 1, 0, 10)));

  // A batch that touches nothing is a committed (serializable) unit
  // with its own ticket — the generated transactN methods behave the
  // same when Fn leaves every side unchanged.
  TxResult R = Rel.transactKeys(
      {key(1, 1)},
      [&](std::vector<ConcurrentRelation::TxKeyView> &Views) {
        EXPECT_TRUE(Views[0].Found);
        return true;
      });
  EXPECT_TRUE(R.Committed);
  EXPECT_GT(R.Ticket, 0u);
  EXPECT_EQ(Rel.size(), 1u);
}

TEST_F(ConcurrentRelationTest, TransactKeysFansOutWhenShardedByNonKey) {
  // Sharded by state (not part of the {ns, pid} key): the lock plan
  // degrades to all stripes and write-backs may migrate tuples
  // between shards.
  ConcurrentOptions Opts;
  Opts.NumShards = 4;
  Opts.ShardColumn = Cat.get("state");
  ConcurrentRelation Rel(fig2(Spec), Opts);
  ASSERT_TRUE(Rel.insert(proc(1, 1, 0, 10)));
  ASSERT_TRUE(Rel.insert(proc(2, 2, 1, 20)));

  ColumnId ColState = Cat.get("state");
  TxResult R = Rel.transactKeys(
      {key(1, 1), key(2, 2)},
      [&](std::vector<ConcurrentRelation::TxKeyView> &Views) {
        // Swap the two tuples' states: both migrate shards.
        Views[0].Values.set(ColState, Value::ofInt(1));
        Views[1].Values.set(ColState, Value::ofInt(0));
        return true;
      });
  EXPECT_TRUE(R.Committed);
  EXPECT_TRUE(Rel.contains(proc(1, 1, 1, 10)));
  EXPECT_TRUE(Rel.contains(proc(2, 2, 0, 20)));
  EXPECT_EQ(Rel.size(), 2u);

  size_t Sum = 0;
  for (unsigned I = 0; I != Rel.numShards(); ++I)
    Sum += Rel.shard(I).size();
  EXPECT_EQ(Sum, 2u);
}

TEST_F(ConcurrentRelationTest, IpcapDecompositionRoundTrip) {
  RelSpecRef IpcapSpec = IpcapRelational::makeSpec();
  Decomposition D = IpcapRelational::makeDefaultDecomposition(IpcapSpec);
  const Catalog &ICat = IpcapSpec->catalog();
  ConcurrentRelation Rel(D, {8, std::nullopt});
  for (int64_t L = 0; L != 16; ++L)
    for (int64_t R = 0; R != 4; ++R)
      ASSERT_TRUE(Rel.insert(TupleBuilder(ICat)
                                 .set("local", L)
                                 .set("remote", R)
                                 .set("bytes_in", L * R)
                                 .set("bytes_out", L + R)
                                 .set("packets", 1)
                                 .build()));
  EXPECT_EQ(Rel.size(), 64u);
  auto Flows = Rel.query(TupleBuilder(ICat).set("local", 3).build(),
                         ICat.parseSet("remote, packets"));
  EXPECT_EQ(Flows.size(), 4u);
  EXPECT_EQ(Rel.remove(TupleBuilder(ICat).set("local", 3).build()), 4u);
  EXPECT_EQ(Rel.size(), 60u);
}

} // namespace
