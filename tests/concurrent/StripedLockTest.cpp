//===- tests/concurrent/StripedLockTest.cpp - Lock-order tests ---*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The striped-lock discipline underneath ConcurrentRelation's
/// multi-key transactions: ShardSetGuard must hold exactly the
/// requested stripe subset, acquired in ascending index order whatever
/// order the caller names them in — the total order that makes
/// overlapping transactions (and the all-shards fan-out) deadlock-free.
/// The hammer tests run under the CI TSan job.
///
//===----------------------------------------------------------------------===//

#include "concurrent/StripedLock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace relc;

namespace {

TEST(StripedLockTest, ShardSetGuardSortsAndDeduplicates) {
  StripedLockSet Locks(8);
  // Arbitrary order, with duplicates: the held set is the sorted
  // unique subset — the ascending acquisition order is what makes any
  // two overlapping guards deadlock-free.
  ShardSetGuard Guard(Locks, {5, 2, 7, 2, 5});
  EXPECT_EQ(Guard.stripes(), (std::vector<unsigned>{2, 5, 7}));
}

TEST(StripedLockTest, ShardSetGuardHoldsExactlyItsStripes) {
  StripedLockSet Locks(6);
  {
    ShardSetGuard Guard(Locks, {4, 1});
    // Held stripes refuse a writer; the others are free.
    EXPECT_FALSE(Locks.stripe(1).try_lock());
    EXPECT_FALSE(Locks.stripe(4).try_lock());
    for (unsigned I : {0u, 2u, 3u, 5u}) {
      ASSERT_TRUE(Locks.stripe(I).try_lock()) << "stripe " << I;
      Locks.stripe(I).unlock();
    }
  }
  // Destruction releases everything.
  for (unsigned I = 0; I != 6; ++I) {
    ASSERT_TRUE(Locks.stripe(I).try_lock()) << "stripe " << I;
    Locks.stripe(I).unlock();
  }
}

TEST(StripedLockTest, SingletonAndFullSets) {
  StripedLockSet Locks(4);
  {
    ShardSetGuard One(Locks, {3});
    EXPECT_EQ(One.stripes(), std::vector<unsigned>{3});
  }
  ShardSetGuard All(Locks, {3, 1, 0, 2});
  EXPECT_EQ(All.stripes(), (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_FALSE(Locks.stripe(0).try_lock());
}

/// Two threads repeatedly acquiring OVERLAPPING subsets named in
/// opposite orders: without the internal sort this interleaving
/// deadlocks almost immediately (each thread would take its first
/// stripe and block on the other's). Completion is the assertion.
TEST(StripedLockTest, OverlappingSubsetsNeverDeadlock) {
  StripedLockSet Locks(8);
  std::atomic<int> Acquired{0};
  const int Rounds = 2000;
  std::thread A([&] {
    for (int I = 0; I != Rounds; ++I) {
      ShardSetGuard G(Locks, {6, 3, 1});
      Acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread B([&] {
    for (int I = 0; I != Rounds; ++I) {
      ShardSetGuard G(Locks, {1, 6, 4});
      Acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  A.join();
  B.join();
  EXPECT_EQ(Acquired.load(), 2 * Rounds);
}

/// Subset guards must also compose with the all-shards guard (fan-out
/// transactions) and with single-stripe operations: all three follow
/// the same ascending order.
TEST(StripedLockTest, SubsetAllShardsAndSingleStripeCompose) {
  StripedLockSet Locks(4);
  std::atomic<int> Acquired{0};
  const int Rounds = 1000;
  std::vector<std::thread> Threads;
  Threads.emplace_back([&] {
    for (int I = 0; I != Rounds; ++I) {
      ShardSetGuard G(Locks, {static_cast<unsigned>(I % 4),
                              static_cast<unsigned>((I + 2) % 4)});
      Acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  Threads.emplace_back([&] {
    for (int I = 0; I != Rounds; ++I) {
      AllShardsGuard G(Locks);
      Acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  Threads.emplace_back([&] {
    for (int I = 0; I != Rounds; ++I) {
      auto L = Locks.exclusive(static_cast<unsigned>(I % 4));
      Acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  Threads.emplace_back([&] {
    for (int I = 0; I != Rounds; ++I) {
      AllShardsGuard G(Locks, AllShardsGuard::Shared);
      Acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Acquired.load(), 4 * Rounds);
}

} // namespace
