//===- tests/concurrent/StripedLockTest.cpp - Lock-order tests ---*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The striped-lock discipline underneath ConcurrentRelation's
/// multi-key transactions: ShardSetGuard must hold exactly the
/// requested stripe subset, acquired in ascending index order whatever
/// order the caller names them in — the total order that makes
/// overlapping transactions (and the all-shards fan-out) deadlock-free.
/// The hammer tests run under the CI TSan job.
///
//===----------------------------------------------------------------------===//

#include "concurrent/StripedLock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace relc;

namespace {

TEST(StripedLockTest, ShardSetGuardSortsAndDeduplicates) {
  StripedLockSet Locks(8);
  // Arbitrary order, with duplicates: the held set is the sorted
  // unique subset — the ascending acquisition order is what makes any
  // two overlapping guards deadlock-free.
  ShardSetGuard Guard(Locks, {5, 2, 7, 2, 5});
  EXPECT_EQ(Guard.stripes(), (std::vector<unsigned>{2, 5, 7}));
}

TEST(StripedLockTest, ShardSetGuardHoldsExactlyItsStripes) {
  StripedLockSet Locks(6);
  {
    ShardSetGuard Guard(Locks, {4, 1});
    // Held stripes refuse a writer; the others are free.
    EXPECT_FALSE(Locks.stripe(1).try_lock());
    EXPECT_FALSE(Locks.stripe(4).try_lock());
    for (unsigned I : {0u, 2u, 3u, 5u}) {
      ASSERT_TRUE(Locks.stripe(I).try_lock()) << "stripe " << I;
      Locks.stripe(I).unlock();
    }
  }
  // Destruction releases everything.
  for (unsigned I = 0; I != 6; ++I) {
    ASSERT_TRUE(Locks.stripe(I).try_lock()) << "stripe " << I;
    Locks.stripe(I).unlock();
  }
}

TEST(StripedLockTest, SingletonAndFullSets) {
  StripedLockSet Locks(4);
  {
    ShardSetGuard One(Locks, {3});
    EXPECT_EQ(One.stripes(), std::vector<unsigned>{3});
  }
  ShardSetGuard All(Locks, {3, 1, 0, 2});
  EXPECT_EQ(All.stripes(), (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_FALSE(Locks.stripe(0).try_lock());
}

/// Two threads repeatedly acquiring OVERLAPPING subsets named in
/// opposite orders: without the internal sort this interleaving
/// deadlocks almost immediately (each thread would take its first
/// stripe and block on the other's). Completion is the assertion.
TEST(StripedLockTest, OverlappingSubsetsNeverDeadlock) {
  StripedLockSet Locks(8);
  std::atomic<int> Acquired{0};
  const int Rounds = 2000;
  std::thread A([&] {
    for (int I = 0; I != Rounds; ++I) {
      ShardSetGuard G(Locks, {6, 3, 1});
      Acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread B([&] {
    for (int I = 0; I != Rounds; ++I) {
      ShardSetGuard G(Locks, {1, 6, 4});
      Acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  A.join();
  B.join();
  EXPECT_EQ(Acquired.load(), 2 * Rounds);
}

/// Subset guards must also compose with the all-shards guard (fan-out
/// transactions) and with single-stripe operations: all three follow
/// the same ascending order.
TEST(StripedLockTest, SubsetAllShardsAndSingleStripeCompose) {
  StripedLockSet Locks(4);
  std::atomic<int> Acquired{0};
  const int Rounds = 1000;
  std::vector<std::thread> Threads;
  Threads.emplace_back([&] {
    for (int I = 0; I != Rounds; ++I) {
      ShardSetGuard G(Locks, {static_cast<unsigned>(I % 4),
                              static_cast<unsigned>((I + 2) % 4)});
      Acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  Threads.emplace_back([&] {
    for (int I = 0; I != Rounds; ++I) {
      AllShardsGuard G(Locks);
      Acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  Threads.emplace_back([&] {
    for (int I = 0; I != Rounds; ++I) {
      auto L = Locks.exclusive(static_cast<unsigned>(I % 4));
      Acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  Threads.emplace_back([&] {
    for (int I = 0; I != Rounds; ++I) {
      AllShardsGuard G(Locks, AllShardsGuard::Shared);
      Acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Acquired.load(), 4 * Rounds);
}

//===----------------------------------------------------------------------===//
// Seniority-ticket fairness (the wound-wait-flavored claim protocol)
//===----------------------------------------------------------------------===//

TEST(StripedLockFairness, ClaimSlotKeepsTheMostSeniorTicket) {
  StripedLockSet Locks(2);
  uint64_t T1 = Locks.drawTicket();
  uint64_t T2 = Locks.drawTicket();
  uint64_t T3 = Locks.drawTicket();
  ASSERT_LT(T1, T2);
  ASSERT_LT(T2, T3);
  EXPECT_EQ(Locks.claimOf(0), 0u);

  // A younger claim lands on an empty slot...
  Locks.claimStripe(0, T2);
  EXPECT_EQ(Locks.claimOf(0), T2);
  // ...an even younger one never displaces it...
  Locks.claimStripe(0, T3);
  EXPECT_EQ(Locks.claimOf(0), T2);
  // ...but a more senior one does.
  Locks.claimStripe(0, T1);
  EXPECT_EQ(Locks.claimOf(0), T1);

  // Clearing a displaced claim is a no-op; clearing the holder empties
  // the slot.
  Locks.clearClaim(0, T2);
  EXPECT_EQ(Locks.claimOf(0), T1);
  Locks.clearClaim(0, T1);
  EXPECT_EQ(Locks.claimOf(0), 0u);
}

TEST(StripedLockFairness, ExclusiveAcquisitionClearsItsClaim) {
  StripedLockSet Locks(2);
  {
    auto L = Locks.exclusive(1);
    // The claim was advertised during acquisition and cleared the
    // moment the mutex was won: a held stripe shows no claim.
    EXPECT_EQ(Locks.claimOf(1), 0u);
  }
  EXPECT_EQ(Locks.claimOf(1), 0u);
}

/// The deterministic ordering scenario from the header comment: a
/// fan-out acquisition parked mid-climb on a held stripe advertises
/// its claim there, and a routed writer arriving later must defer to
/// that older claim instead of stealing the stripe — so the fan-out
/// completes first.
TEST(StripedLockFairness, RoutedWriterDefersToParkedFanOut) {
  StripedLockSet Locks(4);
  // Park the fan-out: the test thread owns stripe 2.
  Locks.stripe(2).lock();

  std::atomic<int> Order{0};
  std::atomic<int> FanOutPlace{-1}, RoutedPlace{-1};
  std::thread FanOut([&] {
    AllShardsGuard G(Locks);
    FanOutPlace.store(Order.fetch_add(1));
  });
  // Wait until the fan-out is demonstrably parked on stripe 2 with a
  // live claim (it holds 0 and 1, wants 2).
  while (Locks.claimOf(2) == 0)
    std::this_thread::yield();

  std::thread Routed([&] {
    auto L = Locks.exclusive(2); // younger ticket: must wait its turn
    RoutedPlace.store(Order.fetch_add(1));
  });
  // Give the routed writer time to reach its deferral spin, then free
  // the stripe. Without the claim protocol the routed writer races the
  // fan-out for stripe 2 and can win; with it, seniority decides.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(RoutedPlace.load(), -1) << "routed writer jumped the claim";
  Locks.stripe(2).unlock();
  FanOut.join();
  Routed.join();
  EXPECT_EQ(FanOutPlace.load(), 0) << "fan-out must win: it is senior";
  EXPECT_EQ(RoutedPlace.load(), 1);
}

/// The mirror image: a stream of back-to-back fan-out sweeps must not
/// starve routed single-stripe writers (each new sweep draws a younger
/// ticket than the already-waiting routed writer, so it defers). The
/// assertions are termination and that every routed writer finishes
/// while the sweeps are still running — i.e. it got through the
/// contended window, not after it.
TEST(StripedLockFairness, BackToBackSweepsDoNotStarveRoutedWriters) {
  StripedLockSet Locks(4);
  std::atomic<bool> SweepsRunning{true};
  std::atomic<uint64_t> Sweeps{0};
  std::thread Sweeper([&] {
    // Sweep until every routed writer is done (flag flipped below),
    // with a generous safety cap so a fairness regression fails the
    // test instead of hanging it.
    for (uint64_t I = 0; I != 200000 && SweepsRunning.load(); ++I) {
      AllShardsGuard G(Locks);
      Sweeps.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const int Writers = 3, Rounds = 2000;
  std::vector<std::thread> Routed;
  std::atomic<int> Finished{0};
  std::atomic<uint64_t> SweepsWhenDone{0};
  for (int W = 0; W != Writers; ++W)
    Routed.emplace_back([&, W] {
      for (int I = 0; I != Rounds; ++I) {
        auto L = Locks.exclusive(static_cast<unsigned>((W + I) % 4));
      }
      Finished.fetch_add(1);
      SweepsWhenDone.store(Sweeps.load());
    });
  for (std::thread &T : Routed)
    T.join();
  SweepsRunning.store(false);
  Sweeper.join();
  EXPECT_EQ(Finished.load(), Writers);
  EXPECT_GT(Sweeps.load(), 0u);
}

/// And with subset guards in the mix: contended overlapping subsets,
/// fan-outs, routed writers, and readers all hammering a small lock
/// set. Termination under the claim protocol is the assertion (this is
/// the starvation stress the CI TSan job runs).
TEST(StripedLockFairness, MixedStarvationStressTerminates) {
  StripedLockSet Locks(4);
  std::atomic<int> Acquired{0};
  const int Rounds = 1500;
  std::vector<std::thread> Threads;
  Threads.emplace_back([&] {
    for (int I = 0; I != Rounds; ++I) {
      AllShardsGuard G(Locks);
      Acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  Threads.emplace_back([&] {
    for (int I = 0; I != Rounds; ++I) {
      ShardSetGuard G(Locks, {static_cast<unsigned>(I % 4),
                              static_cast<unsigned>((I + 1) % 4)});
      Acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  Threads.emplace_back([&] {
    for (int I = 0; I != Rounds; ++I) {
      auto L = Locks.exclusive(static_cast<unsigned>(I % 4));
      Acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  Threads.emplace_back([&] {
    for (int I = 0; I != Rounds; ++I) {
      auto L = Locks.shared(static_cast<unsigned>(I % 4));
      Acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Acquired.load(), 4 * Rounds);
}

} // namespace
