//===- tests/decomp/ParserTest.cpp - Decomposition parser tests --*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "decomp/Parser.h"

#include "decomp/Printer.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

constexpr const char *Fig2Text = R"(
let w : {ns, pid, state} = unit {cpu}
let y : {ns} = map({pid}, htable, w)
let z : {state} = map({ns, pid}, dlist, w)
let x : {} = join(map({ns}, htable, y), map({state}, vector, z))
)";

TEST(ParserTest, ParsesFig2) {
  RelSpecRef Spec = schedulerSpec();
  ParseResult R = parseDecomposition(Spec, Fig2Text);
  ASSERT_TRUE(R.ok()) << R.Error;
  const Decomposition &D = *R.Decomp;
  EXPECT_EQ(D.numNodes(), 4u);
  EXPECT_EQ(D.numEdges(), 4u);
  EXPECT_EQ(D.node(D.root()).Name, "x");
  NodeId W = D.nodeByName("w");
  EXPECT_EQ(D.incoming(W).size(), 2u);
  EXPECT_EQ(D.edge(D.outgoing(D.nodeByName("z"))[0]).Ds, DsKind::DList);
}

TEST(ParserTest, RoundTripsThroughPrinter) {
  RelSpecRef Spec = schedulerSpec();
  ParseResult R1 = parseDecomposition(Spec, Fig2Text);
  ASSERT_TRUE(R1.ok()) << R1.Error;
  std::string Printed = printDecomposition(*R1.Decomp);
  ParseResult R2 = parseDecomposition(Spec, Printed);
  ASSERT_TRUE(R2.ok()) << R2.Error << "\nprinted:\n" << Printed;
  EXPECT_EQ(R1.Decomp->canonicalString(), R2.Decomp->canonicalString());
}

TEST(ParserTest, SingleBinding) {
  RelSpecRef Spec = RelSpec::make("r", {"a"});
  ParseResult R = parseDecomposition(Spec, "let root : {} = map({a}, htable, "
                                           "leaf)");
  // 'leaf' is undefined — must fail, not crash.
  EXPECT_FALSE(R.ok());
}

TEST(ParserTest, AllDataStructureNames) {
  RelSpecRef Spec = RelSpec::make("kv", {"k", "v"}, {{"k", "v"}});
  for (const char *Ds : {"dlist", "htable", "btree", "vector", "ilist",
                         "itree"}) {
    std::string Text = "let leaf : {k} = unit {v}\n"
                       "let root : {} = map({k}, " +
                       std::string(Ds) + ", leaf)\n";
    ParseResult R = parseDecomposition(Spec, Text);
    EXPECT_TRUE(R.ok()) << Ds << ": " << R.Error;
  }
}

TEST(ParserTest, ErrorUnknownColumn) {
  RelSpecRef Spec = RelSpec::make("r", {"a"});
  ParseResult R =
      parseDecomposition(Spec, "let leaf : {bogus} = unit {}\n"
                               "let root : {} = map({a}, htable, leaf)");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("bogus"), std::string::npos);
}

TEST(ParserTest, ErrorUnknownDataStructure) {
  RelSpecRef Spec = RelSpec::make("kv", {"k", "v"}, {{"k", "v"}});
  ParseResult R =
      parseDecomposition(Spec, "let leaf : {k} = unit {v}\n"
                               "let root : {} = map({k}, skiplist, leaf)");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("skiplist"), std::string::npos);
}

TEST(ParserTest, ErrorDuplicateNodeName) {
  RelSpecRef Spec = RelSpec::make("kv", {"k", "v"}, {{"k", "v"}});
  ParseResult R =
      parseDecomposition(Spec, "let a : {k} = unit {v}\n"
                               "let a : {} = map({k}, htable, a)");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("duplicate"), std::string::npos);
}

TEST(ParserTest, ErrorForwardReference) {
  RelSpecRef Spec = RelSpec::make("kv", {"k", "v"}, {{"k", "v"}});
  // Let-bound nodes may only reference earlier bindings.
  ParseResult R =
      parseDecomposition(Spec, "let root : {} = map({k}, htable, leaf)\n"
                               "let leaf : {k} = unit {v}");
  EXPECT_FALSE(R.ok());
}

TEST(ParserTest, ErrorUnreferencedNode) {
  RelSpecRef Spec = RelSpec::make("kv", {"k", "v"}, {{"k", "v"}});
  ParseResult R =
      parseDecomposition(Spec, "let orphan : {k} = unit {v}\n"
                               "let leaf : {k} = unit {v}\n"
                               "let root : {} = map({k}, htable, leaf)");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("referenced"), std::string::npos);
}

TEST(ParserTest, ErrorEmptyInput) {
  RelSpecRef Spec = RelSpec::make("r", {"a"});
  EXPECT_FALSE(parseDecomposition(Spec, "").ok());
  EXPECT_FALSE(parseDecomposition(Spec, "   \n  ").ok());
}

TEST(ParserTest, ErrorGarbage) {
  RelSpecRef Spec = RelSpec::make("r", {"a"});
  EXPECT_FALSE(parseDecomposition(Spec, "lett x : {} = unit {}").ok());
  EXPECT_FALSE(parseDecomposition(Spec, "let x {} = unit {}").ok());
  EXPECT_FALSE(parseDecomposition(Spec, "let x : {} = frob({a})").ok());
}

TEST(ParserTest, ErrorMentionsLineNumber) {
  RelSpecRef Spec = RelSpec::make("kv", {"k", "v"}, {{"k", "v"}});
  ParseResult R =
      parseDecomposition(Spec, "let leaf : {k} = unit {v}\n"
                               "let root : {} = map({k}, htable,)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("line 2"), std::string::npos) << R.Error;
}

TEST(ParserTest, CommentsAndWhitespaceTolerated) {
  RelSpecRef Spec = RelSpec::make("kv", {"k", "v"}, {{"k", "v"}});
  ParseResult R = parseDecomposition(Spec,
                                     "# leaf holds the value\n"
                                     "let leaf : {k} = unit {v}\n"
                                     "\n"
                                     "  # the root indexes by key\n"
                                     "let root : {} = map({k}, htable, leaf)");
  EXPECT_TRUE(R.ok()) << R.Error;
}

} // namespace
