//===- tests/decomp/AdequacyTest.cpp - Adequacy judgment tests ---*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Positive and negative tests for the adequacy judgment of Fig. 6,
/// covering each rule: (AVAR) root coverage, (AUNIT) units not at the
/// root and determined by their context, (AMAP) the sharing conditions,
/// and (AJOIN) the symmetric-difference FD.
///
//===----------------------------------------------------------------------===//

#include "decomp/Adequacy.h"

#include "decomp/Builder.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

RelSpecRef edgesSpec() {
  return RelSpec::make("edges", {"src", "dst", "weight"},
                       {{"src, dst", "weight"}});
}

TEST(AdequacyTest, Fig2IsAdequate) {
  RelSpecRef Spec = schedulerSpec();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  AdequacyResult R = checkAdequacy(B.build());
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(AdequacyTest, SimpleKeyChainIsAdequate) {
  RelSpecRef Spec = edgesSpec();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "src, dst", B.unit("weight"));
  NodeId Y = B.addNode("y", "src", B.map("dst", DsKind::HashTable, W));
  B.addNode("x", "", B.map("src", DsKind::HashTable, Y));
  AdequacyResult R = checkAdequacy(B.build());
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(AdequacyTest, MissingColumnViolatesAVAR) {
  // The decomposition never represents `weight`: the root judgment
  // requires all relation columns to be covered.
  RelSpecRef Spec = edgesSpec();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "src, dst", B.unit(ColumnSet()));
  NodeId Y = B.addNode("y", "src", B.map("dst", DsKind::HashTable, W));
  B.addNode("x", "", B.map("src", DsKind::HashTable, Y));
  AdequacyResult R = checkAdequacy(B.build());
  EXPECT_FALSE(R.Ok);
}

TEST(AdequacyTest, UnitAtRootViolatesAUNIT) {
  // A unit at the root (A = ∅) cannot represent the empty relation.
  RelSpecRef Spec = RelSpec::make("r", {"a"}, {});
  DecompBuilder B(Spec);
  B.addNode("x", "", B.unit("a"));
  AdequacyResult R = checkAdequacy(B.build());
  EXPECT_FALSE(R.Ok);
}

TEST(AdequacyTest, UnitNotDeterminedByContextViolatesAUNIT) {
  // Fig. 2(a)'s counterexample r' (Section 3.4): without the FD
  // ns,pid → state,cpu a unit holding cpu under {ns, pid} context
  // cannot represent two different cpu values. Drop the FD and the
  // same decomposition must be rejected.
  RelSpecRef Spec =
      RelSpec::make("scheduler_nofd", {"ns", "pid", "state", "cpu"}, {});
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  AdequacyResult R = checkAdequacy(B.build());
  EXPECT_FALSE(R.Ok);
}

TEST(AdequacyTest, SharingRequiresContextFd) {
  // (AMAP): a node shared via two paths needs B∪C → A for each edge,
  // where A covers all paths' bound columns. Reaching w (bound
  // {src, dst}) from a path that binds only {src} fails A ⊇ B∪C.
  RelSpecRef Spec = edgesSpec();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "src, dst", B.unit("weight"));
  // Map keyed by src alone targeting a node bound by {src, dst}:
  // {src} cannot determine {src, dst} under the edges FDs.
  B.addNode("x", "", B.map("src", DsKind::HashTable, W));
  AdequacyResult R = checkAdequacy(B.build());
  EXPECT_FALSE(R.Ok);
}

TEST(AdequacyTest, SharedNodeWithBothKeysAdequate) {
  // Fig. 12 decomposition 5: edges indexed forward and backward with a
  // shared weight node.
  RelSpecRef Spec = edgesSpec();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "src, dst", B.unit("weight"));
  NodeId Y = B.addNode("y", "src", B.map("dst", DsKind::ITree, W));
  NodeId Z = B.addNode("z", "dst", B.map("src", DsKind::ITree, W));
  B.addNode("x", "", B.join(B.map("src", DsKind::HashTable, Y),
                            B.map("dst", DsKind::HashTable, Z)));
  AdequacyResult R = checkAdequacy(B.build());
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(AdequacyTest, UnsharedBidirectionalAdequate) {
  // Fig. 12 decomposition 9: same shape but two separate weight nodes.
  RelSpecRef Spec = edgesSpec();
  DecompBuilder B(Spec);
  NodeId L = B.addNode("l", "src, dst", B.unit("weight"));
  NodeId R_ = B.addNode("r", "src, dst", B.unit("weight"));
  NodeId Y = B.addNode("y", "src", B.map("dst", DsKind::Btree, L));
  NodeId Z = B.addNode("z", "dst", B.map("src", DsKind::Btree, R_));
  B.addNode("x", "", B.join(B.map("src", DsKind::HashTable, Y),
                            B.map("dst", DsKind::HashTable, Z)));
  AdequacyResult Res = checkAdequacy(B.build());
  EXPECT_TRUE(Res.Ok) << Res.Error;
}

TEST(AdequacyTest, JoinNeedsMatchingFd) {
  // (AJOIN): ∆ ⊢ A∪(B∩C) → B⊖C. Splitting {a,b} (no FDs) at the root
  // into two independent single-column sides fails: ∅ → {a,b} does not
  // hold, so tuples from the two sides cannot be matched unambiguously.
  RelSpecRef Spec = RelSpec::make("r", {"a", "b"}, {});
  DecompBuilder B(Spec);
  NodeId Na = B.addNode("na", "a", B.unit(ColumnSet()));
  NodeId Nb = B.addNode("nb", "b", B.unit(ColumnSet()));
  B.addNode("x", "", B.join(B.map("a", DsKind::HashTable, Na),
                            B.map("b", DsKind::HashTable, Nb)));
  AdequacyResult R = checkAdequacy(B.build());
  EXPECT_FALSE(R.Ok);
}

TEST(AdequacyTest, JoinFineWhenOneSideDeterminesOther) {
  // With a → b, the same split is adequate: the b-side is determined.
  RelSpecRef Spec = RelSpec::make("r", {"a", "b"}, {{"a", "b"}});
  DecompBuilder B(Spec);
  NodeId Na = B.addNode("na", "a", B.unit(ColumnSet()));
  NodeId Nb = B.addNode("nb", "a", B.unit("b"));
  B.addNode("x", "", B.join(B.map("a", DsKind::HashTable, Na),
                            B.map("a", DsKind::HashTable, Nb)));
  AdequacyResult R = checkAdequacy(B.build());
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(AdequacyTest, ErrorMessagePinpointsRule) {
  RelSpecRef Spec = RelSpec::make("r", {"a"}, {});
  DecompBuilder B(Spec);
  B.addNode("x", "", B.unit("a"));
  AdequacyResult R = checkAdequacy(B.build());
  ASSERT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}

TEST(AdequacyTest, VectorOnMultiColumnKeyStillJudgedOnColumns) {
  // Adequacy is about columns and FDs, not data structures; a vector on
  // a multi-column key may be a bad (or unsupported) physical choice,
  // but the judgment itself only inspects the column structure.
  RelSpecRef Spec = schedulerSpec();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid", B.unit("state, cpu"));
  B.addNode("x", "", B.map("ns, pid", DsKind::HashTable, W));
  AdequacyResult R = checkAdequacy(B.build());
  EXPECT_TRUE(R.Ok) << R.Error;
}

TEST(AdequacyTest, DeepChainAdequate) {
  // One nesting level per column: x —a→ n1 —b→ n2 —c→ leaf(d).
  RelSpecRef Spec =
      RelSpec::make("r", {"a", "b", "c", "d"}, {{"a, b, c", "d"}});
  DecompBuilder B(Spec);
  NodeId N2 = B.addNode("n2", "a, b, c", B.unit("d"));
  NodeId N1 = B.addNode("n1", "a, b", B.map("c", DsKind::Btree, N2));
  NodeId N0 = B.addNode("n0", "a", B.map("b", DsKind::Btree, N1));
  B.addNode("x", "", B.map("a", DsKind::Btree, N0));
  AdequacyResult R = checkAdequacy(B.build());
  EXPECT_TRUE(R.Ok) << R.Error;
}

} // namespace
