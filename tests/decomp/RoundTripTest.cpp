//===- tests/decomp/RoundTripTest.cpp - Print/parse round trips --*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property: for every enumerated adequate decomposition of several
/// specs, printing in the Fig. 3 let-language and re-parsing yields a
/// structurally identical decomposition (canonicalString fixpoint), and
/// canonicalString itself is invariant under data-structure reassignment
/// when asked to ignore ψ.
///
//===----------------------------------------------------------------------===//

#include "autotuner/Enumerator.h"
#include "decomp/Parser.h"
#include "decomp/Printer.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

struct SpecParam {
  const char *Name;
  RelSpecRef Spec;
};

std::vector<SpecParam> specs() {
  return {
      {"edges", RelSpec::make("edges", {"src", "dst", "weight"},
                              {{"src, dst", "weight"}})},
      {"scheduler", RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                                  {{"ns, pid", "state, cpu"}})},
      {"flows",
       RelSpec::make("flows", {"local", "remote", "bytes"},
                     {{"local, remote", "bytes"}})},
      {"set", RelSpec::make("nodes", {"id"}, {})},
  };
}

class RoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RoundTripTest, PrintParseIsIdentityOnCanonicalForm) {
  SpecParam S = specs()[GetParam()];
  EnumeratorOptions Opts;
  Opts.MaxEdges = 3;
  Opts.MaxResults = 80;
  unsigned Count = 0;
  for (const Decomposition &D : enumerateDecompositions(S.Spec, Opts)) {
    std::string Printed = printDecomposition(D);
    ParseResult Reparsed = parseDecomposition(S.Spec, Printed);
    ASSERT_TRUE(Reparsed.ok())
        << S.Name << ": " << Reparsed.Error << "\n" << Printed;
    EXPECT_EQ(D.canonicalString(true), Reparsed.Decomp->canonicalString(true))
        << Printed;
    ++Count;
  }
  EXPECT_GT(Count, 0u);
}

TEST_P(RoundTripTest, CanonicalShapeInvariantUnderDsReassignment) {
  SpecParam S = specs()[GetParam()];
  EnumeratorOptions Opts;
  Opts.MaxEdges = 3;
  Opts.MaxResults = 40;
  for (const Decomposition &D : enumerateDecompositions(S.Spec, Opts)) {
    std::vector<DsKind> Kinds;
    for (EdgeId E = 0; E != D.numEdges(); ++E)
      Kinds.push_back(edgeSupportsDs(D.edge(E), DsKind::Btree)
                          ? DsKind::Btree
                          : DsKind::HashTable);
    Decomposition D2 = withDataStructures(D, Kinds);
    EXPECT_EQ(D.canonicalString(false), D2.canonicalString(false));
    if (D.numEdges() > 0 && Kinds[0] != D.edge(0).Ds)
      EXPECT_NE(D.canonicalString(true), D2.canonicalString(true));
  }
}

TEST_P(RoundTripTest, DotRendersEveryNodeAndEdge) {
  SpecParam S = specs()[GetParam()];
  EnumeratorOptions Opts;
  Opts.MaxEdges = 2;
  Opts.MaxResults = 16;
  for (const Decomposition &D : enumerateDecompositions(S.Spec, Opts)) {
    std::string Dot = printDecompositionDot(D);
    size_t Arrows = 0;
    for (size_t Pos = Dot.find("->"); Pos != std::string::npos;
         Pos = Dot.find("->", Pos + 1))
      ++Arrows;
    EXPECT_EQ(Arrows, D.numEdges());
    for (NodeId Id = 0; Id != D.numNodes(); ++Id)
      EXPECT_NE(Dot.find("n" + std::to_string(Id) + " [label="),
                std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, RoundTripTest,
                         ::testing::Range<size_t>(0, 4),
                         [](const auto &Info) {
                           return specs()[Info.param].Name;
                         });

} // namespace
