//===- tests/decomp/PrinterTest.cpp - Printer/dot tests ----------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "decomp/Printer.h"

#include "decomp/Builder.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

Decomposition fig2() {
  RelSpecRef Spec = RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                                  {{"ns, pid", "state, cpu"}});
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  return B.build();
}

TEST(PrinterTest, LetNotation) {
  std::string Out = printDecomposition(fig2());
  // One "let" per node, in binding order.
  EXPECT_NE(Out.find("let w : {ns, pid, state} = unit {cpu}"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("let y : {ns} = map({pid}, htable, w)"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("join("), std::string::npos);
  // w is defined before y/z which are defined before x.
  EXPECT_LT(Out.find("let w"), Out.find("let y"));
  EXPECT_LT(Out.find("let y"), Out.find("let z"));
  EXPECT_LT(Out.find("let z"), Out.find("let x"));
}

TEST(PrinterTest, EmptyBoundSetPrintsAsBraces) {
  std::string Out = printDecomposition(fig2());
  EXPECT_NE(Out.find("let x : {} ="), std::string::npos) << Out;
}

TEST(PrinterTest, DotHasAllNodesAndEdges) {
  Decomposition D = fig2();
  std::string Dot = printDecompositionDot(D);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  // Four nodes n0..n3.
  for (int I = 0; I < 4; ++I)
    EXPECT_NE(Dot.find("n" + std::to_string(I) + " [label="),
              std::string::npos)
        << Dot;
  // Four edges ("->" occurrences).
  size_t Count = 0;
  for (size_t Pos = Dot.find("->"); Pos != std::string::npos;
       Pos = Dot.find("->", Pos + 1))
    ++Count;
  EXPECT_EQ(Count, 4u);
  EXPECT_NE(Dot.find('}'), std::string::npos);
}

TEST(PrinterTest, DotMentionsDataStructures) {
  std::string Dot = printDecompositionDot(fig2());
  EXPECT_NE(Dot.find("htable"), std::string::npos);
  EXPECT_NE(Dot.find("dlist"), std::string::npos);
  EXPECT_NE(Dot.find("vector"), std::string::npos);
}

} // namespace
