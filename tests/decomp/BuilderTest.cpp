//===- tests/decomp/BuilderTest.cpp - DecompBuilder tests --------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests programmatic construction of decompositions, anchored on the
/// paper's Fig. 2(a) scheduler decomposition (Equation 2).
///
//===----------------------------------------------------------------------===//

#include "decomp/Builder.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

/// Equation (2): the shared scheduler decomposition of Fig. 2(a).
Decomposition buildFig2(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  return B.build();
}

TEST(BuilderTest, Fig2NodeStructure) {
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = buildFig2(Spec);
  const Catalog &Cat = Spec->catalog();

  ASSERT_EQ(D.numNodes(), 4u);
  EXPECT_EQ(D.root(), 3u); // last binding is the root
  EXPECT_EQ(D.node(D.root()).Name, "x");
  EXPECT_TRUE(D.node(D.root()).Bound.empty());

  NodeId W = D.nodeByName("w");
  EXPECT_EQ(D.node(W).Bound, Cat.parseSet("ns, pid, state"));
  // w's subgraph defines only cpu.
  EXPECT_EQ(D.node(W).Defines, Cat.parseSet("cpu"));
  // The root's subgraph defines every column.
  EXPECT_EQ(D.node(D.root()).Defines, Cat.allColumns());
}

TEST(BuilderTest, Fig2Edges) {
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = buildFig2(Spec);
  const Catalog &Cat = Spec->catalog();

  ASSERT_EQ(D.numEdges(), 4u);
  NodeId W = D.nodeByName("w");
  NodeId Y = D.nodeByName("y");
  NodeId Z = D.nodeByName("z");
  NodeId X = D.nodeByName("x");

  // Two edges leave the root (the join), one each from y and z.
  EXPECT_EQ(D.outgoing(X).size(), 2u);
  EXPECT_EQ(D.outgoing(Y).size(), 1u);
  EXPECT_EQ(D.outgoing(Z).size(), 1u);
  EXPECT_TRUE(D.outgoing(W).empty());

  // w is shared: two incoming edges.
  EXPECT_EQ(D.incoming(W).size(), 2u);

  const MapEdge &YtoW = D.edge(D.outgoing(Y)[0]);
  EXPECT_EQ(YtoW.From, Y);
  EXPECT_EQ(YtoW.To, W);
  EXPECT_EQ(YtoW.KeyCols, Cat.parseSet("pid"));
  EXPECT_EQ(YtoW.Ds, DsKind::HashTable);

  const MapEdge &ZtoW = D.edge(D.outgoing(Z)[0]);
  EXPECT_EQ(ZtoW.KeyCols, Cat.parseSet("ns, pid"));
  EXPECT_EQ(ZtoW.Ds, DsKind::DList);
}

TEST(BuilderTest, HookSlotsOnlyForIntrusiveEdges) {
  RelSpecRef Spec = schedulerSpec();
  {
    Decomposition D = buildFig2(Spec);
    // dlist/htable/vector are non-intrusive: no hooks anywhere.
    for (NodeId Id = 0; Id != D.numNodes(); ++Id)
      EXPECT_EQ(D.node(Id).HookSlots, 0u);
  }
  {
    DecompBuilder B(Spec);
    NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
    NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::IList, W));
    NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::ITree, W));
    B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                              B.map("state", DsKind::Vector, Z)));
    Decomposition D = B.build();
    NodeId WId = D.nodeByName("w");
    EXPECT_EQ(D.node(WId).HookSlots, 2u);
    // Each intrusive edge gets a distinct slot.
    const MapEdge &E0 = D.edge(D.incoming(WId)[0]);
    const MapEdge &E1 = D.edge(D.incoming(WId)[1]);
    EXPECT_NE(E0.HookSlot, E1.HookSlot);
    EXPECT_LT(E0.HookSlot, 2u);
    EXPECT_LT(E1.HookSlot, 2u);
  }
}

TEST(BuilderTest, TopoOrderParentsFirst) {
  Decomposition D = buildFig2(schedulerSpec());
  std::vector<NodeId> Order = D.topoOrder();
  ASSERT_EQ(Order.size(), 4u);
  EXPECT_EQ(Order.front(), D.root());
  // Every edge's From must appear before its To.
  std::vector<unsigned> Pos(D.numNodes());
  for (unsigned I = 0; I != Order.size(); ++I)
    Pos[Order[I]] = I;
  for (const MapEdge &E : D.edges())
    EXPECT_LT(Pos[E.From], Pos[E.To]);
}

TEST(BuilderTest, SingleNodeChain) {
  RelSpecRef Spec = RelSpec::make("kv", {"k", "v"}, {{"k", "v"}});
  DecompBuilder B(Spec);
  NodeId V = B.addNode("v", "k", B.unit("v"));
  B.addNode("root", "", B.map("k", DsKind::Btree, V));
  Decomposition D = B.build();
  EXPECT_EQ(D.numNodes(), 2u);
  EXPECT_EQ(D.numEdges(), 1u);
  EXPECT_EQ(D.edge(0).Ds, DsKind::Btree);
}

TEST(BuilderTest, UnitMayBeEmptyForSetMembership) {
  // A set of single-column tuples: the leaf holds no residual columns.
  RelSpecRef Spec = RelSpec::make("nodes", {"id"});
  DecompBuilder B(Spec);
  NodeId L = B.addNode("leaf", "id", B.unit(ColumnSet()));
  B.addNode("root", "", B.map("id", DsKind::HashTable, L));
  Decomposition D = B.build();
  EXPECT_EQ(D.numNodes(), 2u);
  EXPECT_EQ(D.node(D.root()).Defines, Spec->catalog().allColumns());
}

TEST(BuilderTest, NestedJoins) {
  RelSpecRef Spec = RelSpec::make("r", {"a", "b", "c", "d"},
                                  {{"a", "b, c, d"}});
  DecompBuilder B(Spec);
  NodeId Nb = B.addNode("nb", "a", B.unit("b"));
  NodeId Nc = B.addNode("nc", "a", B.unit("c"));
  NodeId Nd = B.addNode("nd", "a", B.unit("d"));
  B.addNode("root", "",
            B.join(B.map("a", DsKind::HashTable, Nb),
                   B.join(B.map("a", DsKind::HashTable, Nc),
                          B.map("a", DsKind::HashTable, Nd))));
  Decomposition D = B.build();
  EXPECT_EQ(D.numEdges(), 3u);
  EXPECT_EQ(D.outgoing(D.root()).size(), 3u);
}

TEST(BuilderTest, CanonicalStringIgnoresNames) {
  RelSpecRef Spec = schedulerSpec();
  DecompBuilder B1(Spec);
  NodeId W1 = B1.addNode("w", "ns, pid", B1.unit("state, cpu"));
  B1.addNode("x", "", B1.map("ns, pid", DsKind::HashTable, W1));

  DecompBuilder B2(Spec);
  NodeId W2 = B2.addNode("other", "ns, pid", B2.unit("state, cpu"));
  B2.addNode("top", "", B2.map("ns, pid", DsKind::HashTable, W2));

  EXPECT_EQ(B1.build().canonicalString(), B2.build().canonicalString());
}

TEST(BuilderTest, CanonicalStringDistinguishesDs) {
  RelSpecRef Spec = schedulerSpec();
  auto Build = [&](DsKind K) {
    DecompBuilder B(Spec);
    NodeId W = B.addNode("w", "ns, pid", B.unit("state, cpu"));
    B.addNode("x", "", B.map("ns, pid", K, W));
    return B.build();
  };
  Decomposition DHash = Build(DsKind::HashTable);
  Decomposition DTree = Build(DsKind::Btree);
  EXPECT_NE(DHash.canonicalString(true), DTree.canonicalString(true));
  EXPECT_EQ(DHash.canonicalString(false), DTree.canonicalString(false));
}

TEST(BuilderDeathTest, NodeByNameUnknownAsserts) {
  // Unknown names are programmer errors: the contract is an assert, not
  // a sentinel return.
  Decomposition D = buildFig2(schedulerSpec());
  EXPECT_DEATH((void)D.nodeByName("nope"), "unknown decomposition node");
}

} // namespace
