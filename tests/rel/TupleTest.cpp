//===- tests/rel/TupleTest.cpp - Tuple tests ---------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "rel/Tuple.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace relc;

namespace {

/// Shared scheduler-style catalog: ns=0, pid=1, state=2, cpu=3.
class TupleTest : public ::testing::Test {
protected:
  void SetUp() override {
    Cat.add("ns");
    Cat.add("pid");
    Cat.add("state");
    Cat.add("cpu");
  }

  Tuple make(std::initializer_list<std::pair<const char *, int64_t>> Binds) {
    TupleBuilder B(Cat);
    for (const auto &[Name, V] : Binds)
      B.set(Name, V);
    return B.build();
  }

  Catalog Cat;
};

TEST_F(TupleTest, EmptyTuple) {
  Tuple T;
  EXPECT_TRUE(T.empty());
  EXPECT_EQ(T.size(), 0u);
  EXPECT_TRUE(T.columns().empty());
}

TEST_F(TupleTest, SetAndGet) {
  Tuple T = make({{"ns", 1}, {"pid", 2}});
  EXPECT_EQ(T.size(), 2u);
  EXPECT_TRUE(T.has(Cat.get("ns")));
  EXPECT_EQ(T.get(Cat.get("ns")).asInt(), 1);
  EXPECT_EQ(T.get(Cat.get("pid")).asInt(), 2);
  EXPECT_FALSE(T.has(Cat.get("cpu")));
}

TEST_F(TupleTest, SetOverwrites) {
  Tuple T = make({{"ns", 1}});
  T.set(Cat.get("ns"), Value::ofInt(9));
  EXPECT_EQ(T.get(Cat.get("ns")).asInt(), 9);
  EXPECT_EQ(T.size(), 1u);
}

TEST_F(TupleTest, SetOutOfOrderStoresDense) {
  // Values are stored in increasing ColumnId order regardless of the
  // order in which columns are bound.
  Tuple T;
  T.set(Cat.get("cpu"), Value::ofInt(30));
  T.set(Cat.get("ns"), Value::ofInt(10));
  T.set(Cat.get("state"), Value::ofInt(20));
  EXPECT_EQ(T.get(Cat.get("ns")).asInt(), 10);
  EXPECT_EQ(T.get(Cat.get("state")).asInt(), 20);
  EXPECT_EQ(T.get(Cat.get("cpu")).asInt(), 30);
}

TEST_F(TupleTest, Unset) {
  Tuple T = make({{"ns", 1}, {"pid", 2}, {"cpu", 3}});
  T.unset(Cat.get("pid"));
  EXPECT_FALSE(T.has(Cat.get("pid")));
  EXPECT_EQ(T.get(Cat.get("ns")).asInt(), 1);
  EXPECT_EQ(T.get(Cat.get("cpu")).asInt(), 3);
  T.unset(Cat.get("pid")); // absent: no-op
  EXPECT_EQ(T.size(), 2u);
}

TEST_F(TupleTest, ExtendsPartialPattern) {
  Tuple Full = make({{"ns", 1}, {"pid", 2}, {"state", 0}, {"cpu", 7}});
  EXPECT_TRUE(Full.extends(make({{"ns", 1}})));
  EXPECT_TRUE(Full.extends(make({{"ns", 1}, {"cpu", 7}})));
  EXPECT_TRUE(Full.extends(Tuple()));
  EXPECT_FALSE(Full.extends(make({{"ns", 2}})));
}

TEST_F(TupleTest, ExtendsRequiresAllPatternColumns) {
  Tuple Partial = make({{"ns", 1}});
  EXPECT_FALSE(Partial.extends(make({{"ns", 1}, {"pid", 2}})));
}

TEST_F(TupleTest, MatchesOnCommonColumns) {
  Tuple A = make({{"ns", 1}, {"pid", 2}});
  Tuple B = make({{"pid", 2}, {"cpu", 9}});
  Tuple C = make({{"pid", 3}});
  EXPECT_TRUE(A.matches(B));
  EXPECT_TRUE(B.matches(A));
  EXPECT_FALSE(A.matches(C));
  // No common columns: vacuously matches.
  EXPECT_TRUE(A.matches(make({{"cpu", 1}, {"state", 1}})));
  EXPECT_TRUE(A.matches(Tuple()));
}

TEST_F(TupleTest, Project) {
  Tuple T = make({{"ns", 1}, {"pid", 2}, {"cpu", 3}});
  Tuple P = T.project(Cat.makeSet({"ns", "cpu"}));
  EXPECT_EQ(P.size(), 2u);
  EXPECT_EQ(P.get(Cat.get("ns")).asInt(), 1);
  EXPECT_EQ(P.get(Cat.get("cpu")).asInt(), 3);
  EXPECT_FALSE(P.has(Cat.get("pid")));
}

TEST_F(TupleTest, ProjectIfPresentIgnoresUnbound) {
  Tuple T = make({{"ns", 1}});
  Tuple P = T.projectIfPresent(Cat.makeSet({"ns", "cpu"}));
  EXPECT_EQ(P.columns(), Cat.makeSet({"ns"}));
}

TEST_F(TupleTest, MergePrefersRight) {
  Tuple S = make({{"ns", 1}, {"cpu", 5}});
  Tuple U = make({{"cpu", 9}, {"state", 1}});
  Tuple M = S.merge(U);
  EXPECT_EQ(M.get(Cat.get("ns")).asInt(), 1);
  EXPECT_EQ(M.get(Cat.get("cpu")).asInt(), 9); // U wins
  EXPECT_EQ(M.get(Cat.get("state")).asInt(), 1);
}

TEST_F(TupleTest, MergeWithEmpty) {
  Tuple T = make({{"ns", 1}});
  EXPECT_EQ(T.merge(Tuple()), T);
  EXPECT_EQ(Tuple().merge(T), T);
}

TEST_F(TupleTest, EqualityAndHash) {
  Tuple A = make({{"ns", 1}, {"pid", 2}});
  Tuple B = make({{"pid", 2}, {"ns", 1}});
  Tuple C = make({{"ns", 1}, {"pid", 3}});
  Tuple D = make({{"ns", 1}, {"cpu", 2}});
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  EXPECT_NE(A, C);
  EXPECT_NE(A, D); // same values, different columns

  std::unordered_set<Tuple> S;
  S.insert(A);
  S.insert(B);
  S.insert(C);
  EXPECT_EQ(S.size(), 2u);
}

TEST_F(TupleTest, TotalOrderColumnsFirst) {
  Tuple A = make({{"ns", 5}});
  Tuple B = make({{"pid", 0}});
  // ns has a smaller column mask than pid.
  EXPECT_TRUE(A < B || B < A);
  EXPECT_FALSE(A < A);
}

TEST_F(TupleTest, StringValues) {
  TupleBuilder B(Cat);
  B.set("ns", 1).set("state", "running");
  Tuple T = B.build();
  EXPECT_EQ(T.get(Cat.get("state")).asStr(), "running");
}

TEST_F(TupleTest, StrRendering) {
  Tuple T = make({{"ns", 1}, {"pid", 2}});
  std::string S = T.str(Cat);
  EXPECT_NE(S.find("ns"), std::string::npos);
  EXPECT_NE(S.find("pid"), std::string::npos);
  EXPECT_NE(S.find('1'), std::string::npos);
}

TEST_F(TupleTest, HighColumnIds) {
  // Exercise the rank() popcount path with a wide catalog.
  Catalog Wide;
  for (int I = 0; I < 64; ++I)
    Wide.add("c" + std::to_string(I));
  Tuple T;
  T.set(63, Value::ofInt(630));
  T.set(0, Value::ofInt(0));
  T.set(32, Value::ofInt(320));
  EXPECT_EQ(T.get(63).asInt(), 630);
  EXPECT_EQ(T.get(32).asInt(), 320);
  EXPECT_EQ(T.get(0).asInt(), 0);
}

} // namespace
