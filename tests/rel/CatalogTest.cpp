//===- tests/rel/CatalogTest.cpp - Catalog tests -----------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "rel/Catalog.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

TEST(CatalogTest, AddAssignsDenseIds) {
  Catalog Cat;
  EXPECT_EQ(Cat.add("ns"), 0u);
  EXPECT_EQ(Cat.add("pid"), 1u);
  EXPECT_EQ(Cat.add("state"), 2u);
  EXPECT_EQ(Cat.size(), 3u);
}

TEST(CatalogTest, FindKnownAndUnknown) {
  Catalog Cat;
  Cat.add("src");
  Cat.add("dst");
  ASSERT_TRUE(Cat.find("dst").has_value());
  EXPECT_EQ(*Cat.find("dst"), 1u);
  EXPECT_FALSE(Cat.find("weight").has_value());
}

TEST(CatalogTest, GetRoundTripsWithName) {
  Catalog Cat;
  Cat.add("a");
  Cat.add("b");
  EXPECT_EQ(Cat.name(Cat.get("a")), "a");
  EXPECT_EQ(Cat.name(Cat.get("b")), "b");
}

TEST(CatalogTest, AllColumns) {
  Catalog Cat;
  Cat.add("x");
  Cat.add("y");
  ColumnSet All = Cat.allColumns();
  EXPECT_EQ(All.size(), 2u);
  EXPECT_TRUE(All.contains(0));
  EXPECT_TRUE(All.contains(1));
  EXPECT_FALSE(All.contains(2));
}

TEST(CatalogTest, MakeSet) {
  Catalog Cat;
  Cat.add("ns");
  Cat.add("pid");
  Cat.add("cpu");
  ColumnSet S = Cat.makeSet({"ns", "cpu"});
  EXPECT_TRUE(S.contains(Cat.get("ns")));
  EXPECT_FALSE(S.contains(Cat.get("pid")));
  EXPECT_TRUE(S.contains(Cat.get("cpu")));
}

TEST(CatalogTest, ParseSetBasic) {
  Catalog Cat;
  Cat.add("ns");
  Cat.add("pid");
  ColumnSet S = Cat.parseSet("ns, pid");
  EXPECT_EQ(S, Cat.allColumns());
}

TEST(CatalogTest, ParseSetWhitespaceTolerant) {
  Catalog Cat;
  Cat.add("a");
  Cat.add("b");
  EXPECT_EQ(Cat.parseSet("  a ,b  "), Cat.makeSet({"a", "b"}));
  EXPECT_EQ(Cat.parseSet("a"), ColumnSet::single(0));
}

TEST(CatalogTest, ParseSetEmpty) {
  Catalog Cat;
  Cat.add("a");
  EXPECT_TRUE(Cat.parseSet("").empty());
  EXPECT_TRUE(Cat.parseSet("   ").empty());
}

TEST(CatalogTest, SetToString) {
  Catalog Cat;
  Cat.add("ns");
  Cat.add("pid");
  EXPECT_EQ(Cat.setToString(Cat.parseSet("ns, pid")), "{ns, pid}");
  EXPECT_EQ(Cat.setToString(ColumnSet()), "{}");
}

TEST(CatalogTest, SixtyFourColumns) {
  Catalog Cat;
  for (int I = 0; I < 64; ++I)
    Cat.add("c" + std::to_string(I));
  EXPECT_EQ(Cat.size(), 64u);
  EXPECT_EQ(Cat.allColumns().size(), 64u);
  EXPECT_EQ(Cat.get("c63"), 63u);
}

} // namespace
