//===- tests/rel/TuplePropertyTest.cpp - Tuple algebra laws ------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style sweeps over random tuples: the algebraic laws of
/// Section 2's tuple operations (merge/project/extends/matches) that
/// the engine's soundness proofs quietly rely on.
///
//===----------------------------------------------------------------------===//

#include "rel/Tuple.h"

#include "workloads/Rng.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

constexpr unsigned NumColumns = 8;

Tuple randomTuple(Rng &R, double BindProbability, int64_t ValueRange) {
  Tuple T;
  for (ColumnId C = 0; C != NumColumns; ++C)
    if (R.chance(BindProbability))
      T.set(C, Value::ofInt(R.range(0, ValueRange)));
  return T;
}

ColumnSet randomCols(Rng &R) {
  ColumnSet S;
  for (ColumnId C = 0; C != NumColumns; ++C)
    if (R.chance(0.5))
      S.insert(C);
  return S;
}

class TuplePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TuplePropertyTest, MergeIsAssociative) {
  Rng R(GetParam());
  for (int Trial = 0; Trial != 200; ++Trial) {
    Tuple A = randomTuple(R, 0.5, 4);
    Tuple B = randomTuple(R, 0.5, 4);
    Tuple C = randomTuple(R, 0.5, 4);
    EXPECT_EQ(A.merge(B).merge(C), A.merge(B.merge(C)));
  }
}

TEST_P(TuplePropertyTest, MergeRightBiasAndIdentity) {
  Rng R(GetParam() + 1);
  for (int Trial = 0; Trial != 200; ++Trial) {
    Tuple A = randomTuple(R, 0.5, 4);
    Tuple B = randomTuple(R, 0.5, 4);
    Tuple M = A.merge(B);
    // Every column of B wins; every A-only column survives.
    for (ColumnId C : B.columns())
      EXPECT_EQ(M.get(C), B.get(C));
    for (ColumnId C : A.columns().minus(B.columns()))
      EXPECT_EQ(M.get(C), A.get(C));
    EXPECT_EQ(M.columns(), A.columns().unionWith(B.columns()));
    // Identity.
    EXPECT_EQ(A.merge(Tuple()), A);
    EXPECT_EQ(Tuple().merge(A), A);
    // Idempotence.
    EXPECT_EQ(A.merge(A), A);
  }
}

TEST_P(TuplePropertyTest, ProjectComposesViaIntersection) {
  Rng R(GetParam() + 2);
  for (int Trial = 0; Trial != 200; ++Trial) {
    Tuple T = randomTuple(R, 0.7, 4);
    ColumnSet C1 = randomCols(R);
    ColumnSet C2 = randomCols(R);
    EXPECT_EQ(T.projectIfPresent(C1).projectIfPresent(C2),
              T.projectIfPresent(C1.intersect(C2)));
  }
}

TEST_P(TuplePropertyTest, ExtendsIsPartialOrder) {
  Rng R(GetParam() + 3);
  for (int Trial = 0; Trial != 200; ++Trial) {
    Tuple T = randomTuple(R, 0.7, 4);
    ColumnSet C = randomCols(R);
    Tuple S = T.projectIfPresent(C);
    // Reflexive; every projection is extended by its source.
    EXPECT_TRUE(T.extends(T));
    EXPECT_TRUE(T.extends(S));
    // Antisymmetric on equal-column tuples.
    if (S.extends(T))
      EXPECT_EQ(S, T);
    // Transitive through a second projection.
    Tuple S2 = S.projectIfPresent(randomCols(R));
    EXPECT_TRUE(T.extends(S2));
  }
}

TEST_P(TuplePropertyTest, ExtendsImpliesMatches) {
  Rng R(GetParam() + 4);
  for (int Trial = 0; Trial != 200; ++Trial) {
    Tuple T = randomTuple(R, 0.7, 4);
    Tuple S = randomTuple(R, 0.4, 4);
    if (T.extends(S))
      EXPECT_TRUE(T.matches(S));
    // matches is symmetric.
    EXPECT_EQ(T.matches(S), S.matches(T));
    // merge of matching tuples extends both... only where they agree:
    if (T.matches(S)) {
      Tuple M = T.merge(S);
      EXPECT_TRUE(M.extends(T));
      EXPECT_TRUE(M.extends(S));
    }
  }
}

TEST_P(TuplePropertyTest, HashConsistentWithEquality) {
  Rng R(GetParam() + 5);
  for (int Trial = 0; Trial != 200; ++Trial) {
    Tuple A = randomTuple(R, 0.5, 2); // small range: collisions likely
    Tuple B = randomTuple(R, 0.5, 2);
    if (A == B)
      EXPECT_EQ(A.hash(), B.hash());
    // Rebuilding in shuffled column order preserves identity.
    Tuple C;
    for (ColumnId Col = NumColumns; Col-- > 0;)
      if (A.has(Col))
        C.set(Col, A.get(Col));
    EXPECT_EQ(A, C);
    EXPECT_EQ(A.hash(), C.hash());
  }
}

TEST_P(TuplePropertyTest, OrderIsStrictAndTotal) {
  Rng R(GetParam() + 6);
  for (int Trial = 0; Trial != 200; ++Trial) {
    Tuple A = randomTuple(R, 0.5, 3);
    Tuple B = randomTuple(R, 0.5, 3);
    // Exactly one of <, >, == holds.
    int Count = (A < B) + (B < A) + (A == B);
    EXPECT_EQ(Count, 1) << A.valuesStr() << " vs " << B.valuesStr();
    EXPECT_FALSE(A < A);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TuplePropertyTest,
                         ::testing::Values(11u, 223u, 3001u, 48611u));

} // namespace
