//===- tests/rel/TupleViewTest.cpp - Borrowed key view tests -----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the borrowed key views used on the probe hot paths: hash and
/// order compatibility with materialized projections, equality in both
/// directions, and heterogeneous lookup/erase against the four
/// non-intrusive map templates directly (the intrusive kinds and the
/// type-erased EdgeMap layer are covered by EdgeMapTest).
///
//===----------------------------------------------------------------------===//

#include "rel/TupleView.h"

#include "ds/AvlMap.h"
#include "ds/DListMap.h"
#include "ds/HashMap.h"
#include "ds/VectorMap.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

Catalog testCatalog() {
  Catalog Cat;
  Cat.add("a");
  Cat.add("b");
  Cat.add("c");
  Cat.add("d");
  return Cat;
}

TEST(TupleViewTest, ViewReadsThroughSource) {
  Catalog Cat = testCatalog();
  Tuple T =
      TupleBuilder(Cat).set("a", 1).set("b", 2).set("d", 4).build();
  TupleView V(T, Cat.parseSet("a, d"));
  EXPECT_EQ(V.columns(), Cat.parseSet("a, d"));
  EXPECT_EQ(V.size(), 2u);
  EXPECT_TRUE(V.has(Cat.get("a")));
  EXPECT_FALSE(V.has(Cat.get("b")));
  EXPECT_EQ(V.get(Cat.get("a")).asInt(), 1);
  EXPECT_EQ(V.get(Cat.get("d")).asInt(), 4);
}

TEST(TupleViewTest, MaterializeEqualsProjection) {
  Catalog Cat = testCatalog();
  Tuple T = TupleBuilder(Cat)
                .set("a", 1)
                .set("b", 2)
                .set("c", 3)
                .set("d", 4)
                .build();
  for (uint64_t Mask = 0; Mask != 16; ++Mask) {
    ColumnSet C = ColumnSet::fromMask(Mask);
    TupleView V(T, C);
    Tuple P = T.project(C);
    EXPECT_EQ(V.materialize(), P);
    EXPECT_EQ(V.hash(), P.hash()) << "hash mismatch for mask " << Mask;
    EXPECT_TRUE(V == P);
    EXPECT_TRUE(P == V);
  }
}

TEST(TupleViewTest, EqualityRequiresSameColumnsAndValues) {
  Catalog Cat = testCatalog();
  Tuple T = TupleBuilder(Cat).set("a", 1).set("b", 2).build();
  TupleView Va(T, Cat.parseSet("a"));
  EXPECT_FALSE(Va == T);                          // different columns
  EXPECT_TRUE(Va == T.project(Cat.parseSet("a"))); // same columns+values
  Tuple Other = TupleBuilder(Cat).set("a", 9).build();
  EXPECT_FALSE(Va == Other); // same columns, different value

  TupleView Vb(T, Cat.parseSet("b"));
  EXPECT_FALSE(Va.equals(Vb));
  EXPECT_TRUE(Va.equals(TupleView(T, Cat.parseSet("a"))));
}

TEST(TupleViewTest, OrderingMatchesTupleOrder) {
  Catalog Cat = testCatalog();
  // A grid of tuples over (a, b); view-vs-tuple order must agree with
  // tuple-vs-tuple order in every direction.
  std::vector<Tuple> Tuples;
  for (int64_t A = 0; A != 3; ++A)
    for (int64_t B = 0; B != 3; ++B)
      Tuples.push_back(TupleBuilder(Cat).set("a", A).set("b", B).build());
  ColumnSet AB = Cat.parseSet("a, b");
  for (const Tuple &X : Tuples)
    for (const Tuple &Y : Tuples) {
      TupleView Vx(X, AB);
      EXPECT_EQ(Vx < Y, X < Y);
      EXPECT_EQ(Y < Vx, Y < X);
    }
  // Mask-first ordering: a view with different columns compares by
  // column mask exactly like Tuple::operator<.
  Tuple Wide = TupleBuilder(Cat).set("a", 0).set("c", 0).build();
  TupleView Narrow(Wide, Cat.parseSet("a"));
  EXPECT_EQ(Narrow < Tuples[0], Tuple(Wide.project(Cat.parseSet("a"))) <
                                    Tuples[0]);
}

//===----------------------------------------------------------------------===//
// Heterogeneous probes against the raw map templates.
//===----------------------------------------------------------------------===//

/// Traits mirroring the dynamic engine's InterpTraits, minus the
/// NodeInstance dependency: values are plain ints.
struct IntNode {
  int Id;
};

struct ViewTraits {
  using KeyT = Tuple;
  using NodeT = IntNode;
  static bool less(const Tuple &A, const Tuple &B) { return A < B; }
  static bool less(const Tuple &A, const TupleView &B) { return A < B; }
  static bool less(const TupleView &A, const Tuple &B) { return A < B; }
  static bool equal(const Tuple &A, const Tuple &B) { return A == B; }
  static bool equal(const Tuple &A, const TupleView &B) { return A == B; }
  static size_t hash(const Tuple &K) { return K.hash(); }
  static size_t hash(const TupleView &K) { return K.hash(); }
};

/// Exercises lookup/erase through views of a wider tuple against one
/// container instance.
template <typename MapT> void probeMap(MapT &Map, const Catalog &Cat) {
  ColumnSet KeyCols = Cat.parseSet("a, b");
  IntNode Nodes[4] = {{0}, {1}, {2}, {3}};
  std::vector<Tuple> Full;
  for (int64_t I = 0; I != 4; ++I)
    Full.push_back(TupleBuilder(Cat)
                       .set("a", I % 2)
                       .set("b", I)
                       .set("c", I * 10)
                       .build());
  for (int64_t I = 0; I != 4; ++I)
    Map.insert(Full[I].project(KeyCols), &Nodes[I]);

  for (int64_t I = 0; I != 4; ++I)
    EXPECT_EQ(Map.lookup(TupleView(Full[I], KeyCols)), &Nodes[I]);

  Tuple Missing =
      TupleBuilder(Cat).set("a", 5).set("b", 5).set("c", 0).build();
  EXPECT_EQ(Map.lookup(TupleView(Missing, KeyCols)), nullptr);

  EXPECT_EQ(Map.erase(TupleView(Full[2], KeyCols)), &Nodes[2]);
  EXPECT_EQ(Map.lookup(TupleView(Full[2], KeyCols)), nullptr);
  EXPECT_EQ(Map.erase(TupleView(Full[2], KeyCols)), nullptr);
  EXPECT_EQ(Map.size(), 3u);
  EXPECT_EQ(Map.lookup(TupleView(Full[3], KeyCols)), &Nodes[3]);
}

TEST(TupleViewTest, HeterogeneousProbeHashMap) {
  Catalog Cat = testCatalog();
  HashMap<ViewTraits> Map;
  probeMap(Map, Cat);
}

TEST(TupleViewTest, HeterogeneousProbeAvlMap) {
  Catalog Cat = testCatalog();
  AvlMap<ViewTraits> Map;
  probeMap(Map, Cat);
  EXPECT_TRUE(Map.checkInvariants());
}

TEST(TupleViewTest, HeterogeneousProbeDListMap) {
  Catalog Cat = testCatalog();
  DListMap<ViewTraits> Map;
  probeMap(Map, Cat);
}

TEST(TupleViewTest, HeterogeneousProbeVectorMap) {
  // VectorMap keys are raw indices; the instance layer converts view
  // keys via the same toIndex path as tuples — here we only check that
  // a single-column view round-trips to the right index semantics.
  Catalog Cat = testCatalog();
  VectorMap<IntNode> Map;
  IntNode N7{7};
  Tuple Full = TupleBuilder(Cat).set("a", 7).set("b", 1).build();
  TupleView V(Full, Cat.parseSet("a"));
  Map.insert(static_cast<size_t>(V.get(Cat.get("a")).asInt()), &N7);
  EXPECT_EQ(Map.lookup(7), &N7);
  EXPECT_EQ(Map.erase(static_cast<size_t>(V.get(Cat.get("a")).asInt())),
            &N7);
  EXPECT_TRUE(Map.empty());
}

} // namespace
