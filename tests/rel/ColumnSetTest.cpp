//===- tests/rel/ColumnSetTest.cpp - ColumnSet tests -------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "rel/ColumnSet.h"

#include <gtest/gtest.h>

#include <vector>

using namespace relc;

namespace {

TEST(ColumnSetTest, EmptyByDefault) {
  ColumnSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.size(), 0u);
  EXPECT_EQ(S.mask(), 0u);
}

TEST(ColumnSetTest, InsertEraseContains) {
  ColumnSet S;
  S.insert(3);
  S.insert(7);
  EXPECT_TRUE(S.contains(3));
  EXPECT_TRUE(S.contains(7));
  EXPECT_FALSE(S.contains(4));
  EXPECT_EQ(S.size(), 2u);
  S.erase(3);
  EXPECT_FALSE(S.contains(3));
  EXPECT_EQ(S.size(), 1u);
  S.erase(3); // erasing an absent id is a no-op
  EXPECT_EQ(S.size(), 1u);
}

TEST(ColumnSetTest, InitializerListAndSingle) {
  ColumnSet S = {1, 4, 9};
  EXPECT_EQ(S.size(), 3u);
  EXPECT_EQ(ColumnSet::single(4), ColumnSet({4}));
}

TEST(ColumnSetTest, AllOf) {
  EXPECT_TRUE(ColumnSet::allOf(0).empty());
  EXPECT_EQ(ColumnSet::allOf(3).mask(), 0b111u);
  EXPECT_EQ(ColumnSet::allOf(64).size(), 64u);
}

TEST(ColumnSetTest, SetAlgebra) {
  ColumnSet A = {0, 1, 2};
  ColumnSet B = {2, 3};
  EXPECT_EQ(A.unionWith(B), ColumnSet({0, 1, 2, 3}));
  EXPECT_EQ(A.intersect(B), ColumnSet({2}));
  EXPECT_EQ(A.minus(B), ColumnSet({0, 1}));
  EXPECT_EQ(A.symmetricDifference(B), ColumnSet({0, 1, 3}));
}

TEST(ColumnSetTest, SubsetAndIntersects) {
  ColumnSet A = {1, 2};
  ColumnSet B = {1, 2, 3};
  EXPECT_TRUE(A.subsetOf(B));
  EXPECT_FALSE(B.subsetOf(A));
  EXPECT_TRUE(A.subsetOf(A));
  EXPECT_TRUE(ColumnSet().subsetOf(A));
  EXPECT_TRUE(A.intersects(B));
  EXPECT_FALSE(A.intersects(ColumnSet({0, 5})));
  EXPECT_FALSE(A.intersects(ColumnSet()));
}

TEST(ColumnSetTest, FirstIsSmallest) {
  ColumnSet S = {9, 2, 40};
  EXPECT_EQ(S.first(), 2u);
}

TEST(ColumnSetTest, IterationAscending) {
  ColumnSet S = {5, 0, 63, 17};
  std::vector<ColumnId> Got;
  for (ColumnId Id : S)
    Got.push_back(Id);
  EXPECT_EQ(Got, (std::vector<ColumnId>{0, 5, 17, 63}));
}

TEST(ColumnSetTest, IterationOfEmptySet) {
  ColumnSet S;
  for (ColumnId Id : S) {
    (void)Id;
    FAIL() << "empty set should not iterate";
  }
}

TEST(ColumnSetTest, ComparisonOperators) {
  ColumnSet A = {1};
  ColumnSet B = {1};
  ColumnSet C = {2};
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_LT(A, C); // mask 0b10 < 0b100
}

TEST(ColumnSetTest, FromMaskRoundTrip) {
  uint64_t M = 0xdeadbeefULL;
  EXPECT_EQ(ColumnSet::fromMask(M).mask(), M);
}

TEST(ColumnSetTest, HashIsMaskBased) {
  std::hash<ColumnSet> H;
  EXPECT_EQ(H(ColumnSet({1, 2})), H(ColumnSet::fromMask(0b110)));
}

} // namespace
