//===- tests/rel/RelationTest.cpp - Spec-oracle relation tests ---*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the executable specification of Section 2: the five relational
/// operations and the relational algebra, including the paper's running
/// scheduler example (relation rs, Equation 1).
///
//===----------------------------------------------------------------------===//

#include "rel/Relation.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace relc;

namespace {

class RelationTest : public ::testing::Test {
protected:
  void SetUp() override {
    Cat.add("ns");
    Cat.add("pid");
    Cat.add("state");
    Cat.add("cpu");
    // The paper's FD: ns, pid → state, cpu.
    Fd.add(Cat.parseSet("ns, pid"), Cat.parseSet("state, cpu"));
  }

  Tuple proc(int64_t Ns, int64_t Pid, int64_t State, int64_t Cpu) {
    return TupleBuilder(Cat)
        .set("ns", Ns)
        .set("pid", Pid)
        .set("state", State)
        .set("cpu", Cpu)
        .build();
  }

  /// The relation rs of Equation (1); S=0, R=1.
  Relation paperExample() {
    Relation R;
    R.insert(proc(1, 1, 0, 7));
    R.insert(proc(1, 2, 1, 4));
    R.insert(proc(2, 1, 0, 5));
    return R;
  }

  Catalog Cat;
  FuncDeps Fd;
};

TEST_F(RelationTest, EmptyRelation) {
  Relation R;
  EXPECT_TRUE(R.empty());
  EXPECT_EQ(R.size(), 0u);
}

TEST_F(RelationTest, InsertIsSetUnion) {
  Relation R;
  R.insert(proc(1, 1, 0, 7));
  R.insert(proc(1, 1, 0, 7)); // duplicate collapses
  EXPECT_EQ(R.size(), 1u);
  EXPECT_TRUE(R.contains(proc(1, 1, 0, 7)));
}

TEST_F(RelationTest, QueryByState) {
  // query rs 〈state: R〉 {ns, pid} — the running processes.
  Relation R = paperExample();
  Tuple Pat = TupleBuilder(Cat).set("state", 1).build();
  auto Rows = R.query(Pat, Cat.parseSet("ns, pid"));
  ASSERT_EQ(Rows.size(), 1u);
  EXPECT_EQ(Rows[0].get(Cat.get("ns")).asInt(), 1);
  EXPECT_EQ(Rows[0].get(Cat.get("pid")).asInt(), 2);
}

TEST_F(RelationTest, QueryByKey) {
  // query rs 〈ns: 2, pid: 1〉 {state, cpu}.
  Relation R = paperExample();
  Tuple Pat = TupleBuilder(Cat).set("ns", 2).set("pid", 1).build();
  auto Rows = R.query(Pat, Cat.parseSet("state, cpu"));
  ASSERT_EQ(Rows.size(), 1u);
  EXPECT_EQ(Rows[0].get(Cat.get("cpu")).asInt(), 5);
}

TEST_F(RelationTest, QueryEmptyPatternReturnsAll) {
  Relation R = paperExample();
  auto Rows = R.query(Tuple(), Cat.allColumns());
  EXPECT_EQ(Rows.size(), 3u);
}

TEST_F(RelationTest, QueryProjectionDeduplicates) {
  // Two sleeping processes project onto state={S} as one row.
  Relation R = paperExample();
  auto Rows = R.query(Tuple(), Cat.parseSet("state"));
  EXPECT_EQ(Rows.size(), 2u); // states {S, R}
}

TEST_F(RelationTest, QueryNoMatch) {
  Relation R = paperExample();
  Tuple Pat = TupleBuilder(Cat).set("ns", 99).build();
  EXPECT_TRUE(R.query(Pat, Cat.parseSet("pid")).empty());
}

TEST_F(RelationTest, RemoveByPartialPattern) {
  // remove r 〈ns: 1〉 removes both namespace-1 processes.
  Relation R = paperExample();
  Tuple Pat = TupleBuilder(Cat).set("ns", 1).build();
  EXPECT_EQ(R.remove(Pat), 2u);
  EXPECT_EQ(R.size(), 1u);
  EXPECT_TRUE(R.contains(proc(2, 1, 0, 5)));
}

TEST_F(RelationTest, RemoveByKey) {
  Relation R = paperExample();
  Tuple Pat = TupleBuilder(Cat).set("ns", 1).set("pid", 2).build();
  EXPECT_EQ(R.remove(Pat), 1u);
  EXPECT_EQ(R.size(), 2u);
}

TEST_F(RelationTest, RemoveEmptyPatternClearsAll) {
  Relation R = paperExample();
  EXPECT_EQ(R.remove(Tuple()), 3u);
  EXPECT_TRUE(R.empty());
}

TEST_F(RelationTest, RemoveNoMatch) {
  Relation R = paperExample();
  Tuple Pat = TupleBuilder(Cat).set("ns", 42).build();
  EXPECT_EQ(R.remove(Pat), 0u);
  EXPECT_EQ(R.size(), 3u);
}

TEST_F(RelationTest, UpdateMarksProcessSleeping) {
  // update r 〈ns: 1, pid: 2〉 〈state: S〉 — the paper's example.
  Relation R = paperExample();
  Tuple Pat = TupleBuilder(Cat).set("ns", 1).set("pid", 2).build();
  Tuple Chg = TupleBuilder(Cat).set("state", 0).build();
  EXPECT_EQ(R.update(Pat, Chg), 1u);
  EXPECT_TRUE(R.contains(proc(1, 2, 0, 4)));
  EXPECT_FALSE(R.contains(proc(1, 2, 1, 4)));
  EXPECT_EQ(R.size(), 3u);
}

TEST_F(RelationTest, UpdateNonKeyPatternTouchesAllMatches) {
  Relation R = paperExample();
  Tuple Pat = TupleBuilder(Cat).set("state", 0).build();
  Tuple Chg = TupleBuilder(Cat).set("cpu", 0).build();
  EXPECT_EQ(R.update(Pat, Chg), 2u);
  EXPECT_TRUE(R.contains(proc(1, 1, 0, 0)));
  EXPECT_TRUE(R.contains(proc(2, 1, 0, 0)));
}

TEST_F(RelationTest, UpdateMergingTuplesShrinksRelation) {
  // Updating a non-key pattern can merge tuples (update semantics are a
  // set comprehension — the spec allows it even though decompositions
  // restrict it).
  Relation R;
  R.insert(proc(1, 1, 0, 7));
  R.insert(proc(1, 2, 0, 7));
  Tuple Pat = TupleBuilder(Cat).set("state", 0).build();
  Tuple Chg = TupleBuilder(Cat).set("pid", 9).build();
  R.update(Pat, Chg);
  EXPECT_EQ(R.size(), 1u);
  EXPECT_TRUE(R.contains(proc(1, 9, 0, 7)));
}

TEST_F(RelationTest, SatisfiesFds) {
  Relation R = paperExample();
  EXPECT_TRUE(R.satisfies(Fd));

  // The paper's r' counterexample (Section 3.4) violates ns,pid → state.
  Relation Bad;
  Bad.insert(proc(1, 2, 0, 42));
  Bad.insert(proc(1, 2, 1, 34));
  EXPECT_FALSE(Bad.satisfies(Fd));
}

TEST_F(RelationTest, InsertPreservesFdsCheck) {
  Relation R = paperExample();
  EXPECT_TRUE(R.insertPreservesFds(proc(3, 1, 1, 0), Fd));
  // Same key, different cpu: would violate the FD.
  EXPECT_FALSE(R.insertPreservesFds(proc(1, 1, 0, 999), Fd));
  // Exact duplicate: fine.
  EXPECT_TRUE(R.insertPreservesFds(proc(1, 1, 0, 7), Fd));
}

TEST_F(RelationTest, ProjectAlgebra) {
  Relation R = paperExample();
  Relation P = R.project(Cat.parseSet("ns"));
  EXPECT_EQ(P.size(), 2u); // ns ∈ {1, 2}
  EXPECT_EQ(P.columns(), Cat.parseSet("ns"));
}

TEST_F(RelationTest, NaturalJoinRecombines) {
  // π_{ns,pid,state} r ⋈ π_{ns,pid,cpu} r = r when ns,pid is a key.
  Relation R = paperExample();
  Relation L = R.project(Cat.parseSet("ns, pid, state"));
  Relation Rt = R.project(Cat.parseSet("ns, pid, cpu"));
  EXPECT_EQ(Relation::join(L, Rt), R);
}

TEST_F(RelationTest, JoinDisjointColumnsIsCrossProduct) {
  Catalog C2;
  C2.add("a");
  C2.add("b");
  Relation L(ColumnSet({0}));
  Relation Rr(ColumnSet({1}));
  for (int I = 0; I < 3; ++I) {
    Tuple T;
    T.set(0, Value::ofInt(I));
    L.insert(T);
  }
  for (int I = 0; I < 2; ++I) {
    Tuple T;
    T.set(1, Value::ofInt(I));
    Rr.insert(T);
  }
  EXPECT_EQ(Relation::join(L, Rr).size(), 6u);
}

TEST_F(RelationTest, JoinWithEmptyIsEmpty) {
  Relation R = paperExample();
  Relation Empty(R.columns());
  EXPECT_TRUE(Relation::join(R, Empty).empty());
}

TEST_F(RelationTest, UnionWith) {
  Relation A;
  A.insert(proc(1, 1, 0, 7));
  Relation B;
  B.insert(proc(1, 1, 0, 7));
  B.insert(proc(2, 2, 1, 3));
  Relation U = Relation::unionWith(A, B);
  EXPECT_EQ(U.size(), 2u);
}

TEST_F(RelationTest, EqualityIsSetEquality) {
  Relation A = paperExample();
  Relation B;
  // Insert in a different order.
  B.insert(proc(2, 1, 0, 5));
  B.insert(proc(1, 2, 1, 4));
  B.insert(proc(1, 1, 0, 7));
  EXPECT_EQ(A, B);
  B.remove(TupleBuilder(Cat).set("ns", 2).build());
  EXPECT_NE(A, B);
}

TEST_F(RelationTest, TuplesReturnsAllRows) {
  Relation R = paperExample();
  auto All = R.tuples();
  EXPECT_EQ(All.size(), 3u);
  EXPECT_NE(std::find(All.begin(), All.end(), proc(1, 2, 1, 4)), All.end());
}

} // namespace
