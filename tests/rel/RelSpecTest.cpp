//===- tests/rel/RelSpecTest.cpp - RelSpec tests -----------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "rel/RelSpec.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

TEST(RelSpecTest, MakeSchedulerSpec) {
  RelSpecRef Spec = RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                                  {{"ns, pid", "state, cpu"}});
  ASSERT_TRUE(Spec);
  EXPECT_EQ(Spec->name(), "scheduler");
  EXPECT_EQ(Spec->arity(), 4u);
  EXPECT_EQ(Spec->columns().size(), 4u);
  EXPECT_EQ(Spec->catalog().get("cpu"), 3u);
}

TEST(RelSpecTest, FdsAreParsed) {
  RelSpecRef Spec = RelSpec::make("edges", {"src", "dst", "weight"},
                                  {{"src, dst", "weight"}});
  const Catalog &Cat = Spec->catalog();
  EXPECT_TRUE(
      Spec->fds().implies(Cat.parseSet("src, dst"), Cat.parseSet("weight")));
  EXPECT_FALSE(
      Spec->fds().implies(Cat.parseSet("src"), Cat.parseSet("weight")));
}

TEST(RelSpecTest, NoFds) {
  RelSpecRef Spec = RelSpec::make("nodes", {"id"});
  EXPECT_TRUE(Spec->fds().empty());
  EXPECT_EQ(Spec->arity(), 1u);
}

TEST(RelSpecTest, MultipleFds) {
  RelSpecRef Spec =
      RelSpec::make("r", {"a", "b", "c"}, {{"a", "b"}, {"b", "c"}});
  const Catalog &Cat = Spec->catalog();
  // Transitivity through the closure.
  EXPECT_TRUE(Spec->fds().implies(Cat.parseSet("a"), Cat.parseSet("c")));
}

TEST(RelSpecTest, StrMentionsNameAndColumns) {
  RelSpecRef Spec =
      RelSpec::make("edges", {"src", "dst", "weight"}, {{"src, dst", "weight"}});
  std::string S = Spec->str();
  EXPECT_NE(S.find("edges"), std::string::npos);
  EXPECT_NE(S.find("src"), std::string::npos);
  EXPECT_NE(S.find("weight"), std::string::npos);
}

} // namespace
