//===- tests/rel/FunctionalDepsTest.cpp - FD engine tests --------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the entailment judgment ∆ ⊢fd C1 → C2 (Section 2) via the
/// attribute-closure algorithm, including Armstrong's axioms as derived
/// properties.
///
//===----------------------------------------------------------------------===//

#include "rel/FunctionalDeps.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

// Columns a=0, b=1, c=2, d=3, e=4.
constexpr ColumnId A = 0, B = 1, C = 2, D = 3, E = 4;

TEST(FuncDepsTest, EmptyDeltaClosureIsReflexive) {
  FuncDeps Fd;
  ColumnSet S = {A, C};
  EXPECT_EQ(Fd.closure(S), S);
}

TEST(FuncDepsTest, DirectDependency) {
  FuncDeps Fd;
  Fd.add({ColumnSet({A}), ColumnSet({B})});
  EXPECT_TRUE(Fd.implies({A}, {B}));
  EXPECT_FALSE(Fd.implies({B}, {A}));
}

TEST(FuncDepsTest, Reflexivity) {
  // Armstrong: X ⊇ Y implies X → Y, even with no declared deps.
  FuncDeps Fd;
  EXPECT_TRUE(Fd.implies({A, B}, {A}));
  EXPECT_TRUE(Fd.implies({A}, {A}));
  EXPECT_TRUE(Fd.implies({A}, ColumnSet()));
}

TEST(FuncDepsTest, Augmentation) {
  // A → B entails A,C → B,C.
  FuncDeps Fd;
  Fd.add(ColumnSet({A}), ColumnSet({B}));
  EXPECT_TRUE(Fd.implies({A, C}, {B, C}));
}

TEST(FuncDepsTest, Transitivity) {
  FuncDeps Fd;
  Fd.add(ColumnSet({A}), ColumnSet({B}));
  Fd.add(ColumnSet({B}), ColumnSet({C}));
  EXPECT_TRUE(Fd.implies({A}, {C}));
  EXPECT_FALSE(Fd.implies({C}, {A}));
}

TEST(FuncDepsTest, ChainClosure) {
  FuncDeps Fd;
  Fd.add(ColumnSet({A}), ColumnSet({B}));
  Fd.add(ColumnSet({B}), ColumnSet({C}));
  Fd.add(ColumnSet({C}), ColumnSet({D}));
  Fd.add(ColumnSet({D}), ColumnSet({E}));
  EXPECT_EQ(Fd.closure({A}), ColumnSet({A, B, C, D, E}));
  EXPECT_EQ(Fd.closure({C}), ColumnSet({C, D, E}));
}

TEST(FuncDepsTest, CompositeLhsNeedsAllColumns) {
  FuncDeps Fd;
  Fd.add(ColumnSet({A, B}), ColumnSet({C}));
  EXPECT_TRUE(Fd.implies({A, B}, {C}));
  EXPECT_FALSE(Fd.implies({A}, {C}));
  EXPECT_FALSE(Fd.implies({B}, {C}));
}

TEST(FuncDepsTest, PseudoTransitivity) {
  // A → B and B,C → D entail A,C → D.
  FuncDeps Fd;
  Fd.add(ColumnSet({A}), ColumnSet({B}));
  Fd.add(ColumnSet({B, C}), ColumnSet({D}));
  EXPECT_TRUE(Fd.implies({A, C}, {D}));
  EXPECT_FALSE(Fd.implies({A}, {D}));
}

TEST(FuncDepsTest, UnionRule) {
  // A → B and A → C entail A → B,C.
  FuncDeps Fd;
  Fd.add(ColumnSet({A}), ColumnSet({B}));
  Fd.add(ColumnSet({A}), ColumnSet({C}));
  EXPECT_TRUE(Fd.implies({A}, {B, C}));
}

TEST(FuncDepsTest, SchedulerSpec) {
  // ns,pid → state,cpu: the paper's scheduler FD (ns=A, pid=B,
  // state=C, cpu=D).
  FuncDeps Fd;
  Fd.add(ColumnSet({A, B}), ColumnSet({C, D}));
  EXPECT_TRUE(Fd.isKey({A, B}, ColumnSet({A, B, C, D})));
  EXPECT_FALSE(Fd.isKey({A}, ColumnSet({A, B, C, D})));
  EXPECT_FALSE(Fd.isKey({C, D}, ColumnSet({A, B, C, D})));
}

TEST(FuncDepsTest, CyclicDepsTerminate) {
  FuncDeps Fd;
  Fd.add(ColumnSet({A}), ColumnSet({B}));
  Fd.add(ColumnSet({B}), ColumnSet({A}));
  EXPECT_EQ(Fd.closure({A}), ColumnSet({A, B}));
  EXPECT_EQ(Fd.closure({B}), ColumnSet({A, B}));
}

TEST(FuncDepsTest, EmptyLhsDependency) {
  // ∅ → A means A is constant; every set then determines A.
  FuncDeps Fd;
  Fd.add(ColumnSet(), ColumnSet({A}));
  EXPECT_TRUE(Fd.implies(ColumnSet(), {A}));
  EXPECT_TRUE(Fd.implies({B}, {A}));
  EXPECT_EQ(Fd.closure(ColumnSet()), ColumnSet({A}));
}

TEST(FuncDepsTest, IsKeyEquivalentToImpliesAll) {
  FuncDeps Fd;
  Fd.add(ColumnSet({A}), ColumnSet({B, C}));
  ColumnSet All = {A, B, C};
  EXPECT_TRUE(Fd.isKey({A}, All));
  EXPECT_TRUE(Fd.isKey({A, B}, All));
  EXPECT_FALSE(Fd.isKey({B, C}, All));
}

TEST(FuncDepsTest, StrRendersArrows) {
  Catalog Cat;
  Cat.add("x");
  Cat.add("y");
  FuncDeps Fd;
  Fd.add(Cat.makeSet({"x"}), Cat.makeSet({"y"}));
  std::string S = Fd.str(Cat);
  EXPECT_NE(S.find('x'), std::string::npos);
  EXPECT_NE(S.find('y'), std::string::npos);
}

} // namespace
