//===- tests/rel/BindingFrameTest.cpp - Binding frame tests ------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the execution-time binding register file: O(1) bind/unbind,
/// mask save/restore semantics (including stale registers), the
/// filter-and-extend step the interpreter uses, and frame → tuple
/// round trips.
///
//===----------------------------------------------------------------------===//

#include "rel/BindingFrame.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

Catalog testCatalog() {
  Catalog Cat;
  Cat.add("a");
  Cat.add("b");
  Cat.add("c");
  Cat.add("d");
  return Cat;
}

TEST(BindingFrameTest, StartsUnbound) {
  BindingFrame F(4);
  EXPECT_EQ(F.numColumns(), 4u);
  EXPECT_TRUE(F.bound().empty());
  for (ColumnId Id = 0; Id != 4; ++Id)
    EXPECT_FALSE(F.has(Id));
}

TEST(BindingFrameTest, BindGetUnbind) {
  BindingFrame F(4);
  F.bind(2, Value::ofInt(42));
  EXPECT_TRUE(F.has(2));
  EXPECT_FALSE(F.has(0));
  EXPECT_EQ(F.get(2).asInt(), 42);
  EXPECT_EQ(F.bound(), ColumnSet({2}));

  F.bind(2, Value::ofInt(43)); // overwrite in place
  EXPECT_EQ(F.get(2).asInt(), 43);

  F.unbind(2);
  EXPECT_FALSE(F.has(2));
  EXPECT_TRUE(F.bound().empty());
}

TEST(BindingFrameTest, BindTupleBindsEveryColumn) {
  Catalog Cat = testCatalog();
  BindingFrame F(Cat.size());
  Tuple T = TupleBuilder(Cat).set("a", 1).set("c", 3).build();
  F.bind(T);
  EXPECT_EQ(F.bound(), T.columns());
  EXPECT_EQ(F.get(Cat.get("a")).asInt(), 1);
  EXPECT_EQ(F.get(Cat.get("c")).asInt(), 3);
}

TEST(BindingFrameTest, SaveRestoreDropsLaterBindings) {
  BindingFrame F(4);
  F.bind(0, Value::ofInt(10));
  ColumnSet Saved = F.save();

  F.bind(1, Value::ofInt(11));
  F.bind(3, Value::ofInt(13));
  EXPECT_EQ(F.bound().size(), 3u);

  F.restore(Saved);
  EXPECT_EQ(F.bound(), ColumnSet({0}));
  EXPECT_TRUE(F.has(0));
  EXPECT_FALSE(F.has(1));
  EXPECT_FALSE(F.has(3));
  EXPECT_EQ(F.get(0).asInt(), 10);

  // A stale register is unreachable until rebound; rebinding installs
  // the new value.
  F.bind(1, Value::ofInt(99));
  EXPECT_EQ(F.get(1).asInt(), 99);
}

TEST(BindingFrameTest, MatchesAgreesOnCommonColumns) {
  Catalog Cat = testCatalog();
  BindingFrame F(Cat.size());
  F.bind(Cat.get("a"), Value::ofInt(1));
  F.bind(Cat.get("b"), Value::ofInt(2));

  EXPECT_TRUE(F.matches(TupleBuilder(Cat).set("a", 1).build()));
  EXPECT_TRUE(F.matches(TupleBuilder(Cat).set("a", 1).set("c", 9).build()));
  EXPECT_TRUE(F.matches(TupleBuilder(Cat).set("c", 7).set("d", 8).build()));
  EXPECT_FALSE(F.matches(TupleBuilder(Cat).set("b", 5).build()));
}

TEST(BindingFrameTest, MatchAndBindFiltersAndExtends) {
  Catalog Cat = testCatalog();
  BindingFrame F(Cat.size());
  F.bind(Cat.get("a"), Value::ofInt(1));
  ColumnSet Saved = F.save();

  // Agreeing tuple: extends the frame with its unbound columns.
  Tuple Ok = TupleBuilder(Cat).set("a", 1).set("b", 2).build();
  EXPECT_TRUE(F.matchAndBind(Ok));
  EXPECT_EQ(F.get(Cat.get("b")).asInt(), 2);

  // Mismatching tuple: rejected; the caller's restore undoes any
  // partial binds.
  Tuple Bad = TupleBuilder(Cat).set("a", 9).set("c", 3).build();
  F.restore(Saved);
  EXPECT_FALSE(F.matchAndBind(Bad));
  F.restore(Saved);
  EXPECT_EQ(F.bound(), ColumnSet({Cat.get("a")}));
  EXPECT_EQ(F.get(Cat.get("a")).asInt(), 1);
}

TEST(BindingFrameTest, ToTupleRoundTrip) {
  Catalog Cat = testCatalog();
  Tuple T =
      TupleBuilder(Cat).set("a", 1).set("b", 2).set("d", 4).build();
  BindingFrame F(Cat.size());
  F.bind(T);
  EXPECT_EQ(F.toTuple(T.columns()), T);

  // Partial projection.
  ColumnSet AB = Cat.parseSet("a, b");
  EXPECT_EQ(F.toTuple(AB), T.project(AB));

  // The borrowed view agrees with the materialized projection.
  TupleView V = F.view(AB);
  EXPECT_TRUE(V.equals(T.project(AB)));
  EXPECT_EQ(V.hash(), T.project(AB).hash());
  EXPECT_EQ(V.materialize(), T.project(AB));
}

TEST(BindingFrameTest, ResetClearsAndResizes) {
  BindingFrame F(2);
  F.bind(1, Value::ofInt(5));
  F.reset(4);
  EXPECT_EQ(F.numColumns(), 4u);
  EXPECT_TRUE(F.bound().empty());
  F.bind(3, Value::ofInt(7));
  EXPECT_EQ(F.get(3).asInt(), 7);
}

} // namespace
