//===- tests/query/ExecTest.cpp - dqexec tests -------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests plan execution (dqexec, Section 4.1) over live instance
/// graphs: results match the relational specification (Lemma 2 on
/// concrete cases; the property suite randomizes this), early
/// termination, and join filtering.
///
//===----------------------------------------------------------------------===//

#include "query/Exec.h"

#include "decomp/Builder.h"
#include "query/Planner.h"
#include "runtime/Mutators.h"

#include <gtest/gtest.h>

#include <set>

using namespace relc;

namespace {

class ExecTest : public ::testing::Test {
protected:
  void SetUp() override {
    Spec = RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                         {{"ns, pid", "state, cpu"}});
    DecompBuilder B(Spec);
    NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
    NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
    NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
    B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                              B.map("state", DsKind::Vector, Z)));
    D = std::make_shared<Decomposition>(B.build());
    G = std::make_unique<InstanceGraph>(D);

    // Relation rs of Equation (1) plus a few more rows.
    insert(1, 1, 0, 7);
    insert(1, 2, 1, 4);
    insert(2, 1, 0, 5);
    insert(7, 42, 1, 0);
    insert(7, 43, 1, 3);
  }

  void insert(int64_t Ns, int64_t Pid, int64_t State, int64_t Cpu) {
    dinsert(*G, TupleBuilder(Spec->catalog())
                    .set("ns", Ns)
                    .set("pid", Pid)
                    .set("state", State)
                    .set("cpu", Cpu)
                    .build());
  }

  /// Runs the best plan for (pattern, out) and collects projections.
  std::multiset<std::string> run(const Tuple &Pattern, ColumnSet Out) {
    auto P = planQuery(*D, Pattern.columns(), Out, CostParams());
    EXPECT_TRUE(P.has_value());
    std::multiset<std::string> Rows;
    execPlan(*P, *G, Pattern, [&](const Tuple &T) {
      Rows.insert(T.project(Out.intersect(T.columns()))
                      .merge(Pattern)
                      .project(Out.unionWith(Pattern.columns()))
                      .valuesStr());
      return true;
    });
    return Rows;
  }

  RelSpecRef Spec;
  std::shared_ptr<const Decomposition> D;
  std::unique_ptr<InstanceGraph> G;
};

TEST_F(ExecTest, KeyProbeFindsSingleTuple) {
  const Catalog &Cat = Spec->catalog();
  Tuple Pat = TupleBuilder(Cat).set("ns", 2).set("pid", 1).build();
  auto P = planQuery(*D, Pat.columns(), Cat.parseSet("state, cpu"),
                     CostParams());
  ASSERT_TRUE(P.has_value());
  int Count = 0;
  execPlan(*P, *G, Pat, [&](const Tuple &T) {
    EXPECT_EQ(T.get(Cat.get("cpu")).asInt(), 5);
    EXPECT_EQ(T.get(Cat.get("state")).asInt(), 0);
    ++Count;
    return true;
  });
  EXPECT_EQ(Count, 1);
}

TEST_F(ExecTest, KeyProbeMissingTupleEmitsNothing) {
  const Catalog &Cat = Spec->catalog();
  Tuple Pat = TupleBuilder(Cat).set("ns", 2).set("pid", 99).build();
  auto P = planQuery(*D, Pat.columns(), Cat.parseSet("cpu"), CostParams());
  ASSERT_TRUE(P.has_value());
  int Count = 0;
  execPlan(*P, *G, Pat, [&](const Tuple &) {
    ++Count;
    return true;
  });
  EXPECT_EQ(Count, 0);
}

TEST_F(ExecTest, StateQueryEnumeratesRunning) {
  const Catalog &Cat = Spec->catalog();
  // Running (state=1): (1,2), (7,42), (7,43).
  Tuple Pat = TupleBuilder(Cat).set("state", 1).build();
  auto Rows = run(Pat, Cat.parseSet("ns, pid"));
  EXPECT_EQ(Rows.size(), 3u);
}

TEST_F(ExecTest, MotivatingQueryNsAndState) {
  const Catalog &Cat = Spec->catalog();
  // Section 4.1: running processes in namespace 7 → pids {42, 43}.
  Tuple Pat = TupleBuilder(Cat).set("ns", 7).set("state", 1).build();
  auto P = planQuery(*D, Pat.columns(), Cat.parseSet("pid"), CostParams());
  ASSERT_TRUE(P.has_value());
  std::set<int64_t> Pids;
  execPlan(*P, *G, Pat, [&](const Tuple &T) {
    Pids.insert(T.get(Cat.get("pid")).asInt());
    return true;
  });
  EXPECT_EQ(Pids, (std::set<int64_t>{42, 43}));
}

TEST_F(ExecTest, JoinFiltersNonMatchingSide) {
  const Catalog &Cat = Spec->catalog();
  // Sleeping in namespace 7: none (both ns-7 processes run).
  Tuple Pat = TupleBuilder(Cat).set("ns", 7).set("state", 0).build();
  auto P = planQuery(*D, Pat.columns(), Cat.parseSet("pid"), CostParams());
  ASSERT_TRUE(P.has_value());
  int Count = 0;
  execPlan(*P, *G, Pat, [&](const Tuple &) {
    ++Count;
    return true;
  });
  EXPECT_EQ(Count, 0);
}

TEST_F(ExecTest, EmptyPatternFullEnumeration) {
  const Catalog &Cat = Spec->catalog();
  auto Rows = run(Tuple(), Cat.allColumns());
  EXPECT_EQ(Rows.size(), 5u);
}

TEST_F(ExecTest, EarlyStopHaltsIteration) {
  const Catalog &Cat = Spec->catalog();
  auto P = planQuery(*D, ColumnSet(), Cat.allColumns(), CostParams());
  ASSERT_TRUE(P.has_value());
  int Count = 0;
  execPlan(*P, *G, Tuple(), [&](const Tuple &) {
    ++Count;
    return Count < 2;
  });
  EXPECT_EQ(Count, 2);
}

TEST_F(ExecTest, EmitSeesPatternAndOutputColumns) {
  const Catalog &Cat = Spec->catalog();
  Tuple Pat = TupleBuilder(Cat).set("state", 0).build();
  auto P = planQuery(*D, Pat.columns(), Cat.parseSet("ns, pid"),
                     CostParams());
  ASSERT_TRUE(P.has_value());
  execPlan(*P, *G, Pat, [&](const Tuple &T) {
    EXPECT_TRUE(T.has(Cat.get("ns")));
    EXPECT_TRUE(T.has(Cat.get("pid")));
    return true;
  });
}

TEST_F(ExecTest, ScanOverEmptyRelation) {
  InstanceGraph Fresh(D);
  const Catalog &Cat = Spec->catalog();
  auto P = planQuery(*D, ColumnSet(), Cat.allColumns(), CostParams());
  ASSERT_TRUE(P.has_value());
  int Count = 0;
  execPlan(*P, Fresh, Tuple(), [&](const Tuple &) {
    ++Count;
    return true;
  });
  EXPECT_EQ(Count, 0);
}

TEST_F(ExecTest, ResultsReflectRemovals) {
  const Catalog &Cat = Spec->catalog();
  PlanCache Plans(D, CostParams());
  dremove(*G, TupleBuilder(Cat).set("ns", 7).build(), Plans);
  auto Rows = run(Tuple(), Cat.allColumns());
  EXPECT_EQ(Rows.size(), 3u);
  Tuple Pat = TupleBuilder(Cat).set("state", 1).build();
  auto Running = run(Pat, Cat.parseSet("ns, pid"));
  EXPECT_EQ(Running.size(), 1u);
}

} // namespace
