//===- tests/query/CostModelTest.cpp - Cost estimator tests ------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the Section 4.3 cost estimator E: per-operator formulas
/// (qscan multiplies by fanout, qlookup by mψ, qjoin adds) and the
/// CostParams fanout table.
///
//===----------------------------------------------------------------------===//

#include "query/CostModel.h"

#include "decomp/Builder.h"
#include "query/Planner.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

Decomposition fig2(const RelSpecRef &Spec, DsKind PidDs = DsKind::HashTable) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", PidDs, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  return B.build();
}

TEST(CostParamsTest, DefaultAndPerEdgeFanout) {
  CostParams P(16.0);
  EXPECT_DOUBLE_EQ(P.fanout(0), 16.0);
  P.setFanout(0, 100.0);
  EXPECT_DOUBLE_EQ(P.fanout(0), 100.0);
  EXPECT_DOUBLE_EQ(P.fanout(1), 16.0);
  P.setDefaultFanout(2.0);
  EXPECT_DOUBLE_EQ(P.fanout(1), 2.0);
  EXPECT_DOUBLE_EQ(P.fanout(0), 100.0);
}

TEST(CostModelTest, LookupCheaperThanScanOnHash) {
  // For the same shape, a keyed probe must cost less than iterating.
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  CostParams Params(64.0);

  auto Probe = planQuery(D, Cat.parseSet("ns, pid"), Cat.parseSet("cpu"),
                         Params);
  auto Iterate = planQuery(D, ColumnSet(), Cat.allColumns(), Params);
  ASSERT_TRUE(Probe && Iterate);
  EXPECT_LT(Probe->EstimatedCost, Iterate->EstimatedCost);
}

TEST(CostModelTest, ScanCostScalesWithFanout) {
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();

  auto CostAt = [&](double Fanout) {
    CostParams Params(Fanout);
    auto P = planQuery(D, ColumnSet(), Cat.allColumns(), Params);
    return P ? P->EstimatedCost : -1.0;
  };
  double C8 = CostAt(8.0);
  double C64 = CostAt(64.0);
  ASSERT_GT(C8, 0.0);
  // Full enumeration visits every entry: cost strictly increases with
  // fanout, superlinearly (nested scans multiply).
  EXPECT_GT(C64, C8 * 8.0 / 2.0);
}

TEST(CostModelTest, DlistLookupDearerThanHash) {
  // Same decomposition shape, pid edge as dlist vs hash: the probe
  // through the list must be costlier at realistic fanouts.
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  CostParams Params(64.0);

  auto HashPlan = planQuery(fig2(Spec, DsKind::HashTable),
                            Cat.parseSet("ns, pid"), Cat.parseSet("cpu"),
                            Params);
  auto ListPlan = planQuery(fig2(Spec, DsKind::DList),
                            Cat.parseSet("ns, pid"), Cat.parseSet("cpu"),
                            Params);
  ASSERT_TRUE(HashPlan && ListPlan);
  EXPECT_LT(HashPlan->EstimatedCost, ListPlan->EstimatedCost);
}

TEST(CostModelTest, EstimateMatchesPlannerReportedCost) {
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  CostParams Params(10.0);
  auto P = planQuery(D, Cat.parseSet("state"), Cat.parseSet("ns, pid"),
                     Params);
  ASSERT_TRUE(P.has_value());
  EXPECT_DOUBLE_EQ(P->EstimatedCost, estimatePlanCost(D, *P, Params));
}

TEST(CostModelTest, PerEdgeFanoutShiftsPlanChoice) {
  // query 〈ns: n, state: s〉 {pid}: the planner may scan the ns side's
  // pids and probe the state side (a join), or iterate the state side
  // only (qlr right). Make one side's fanout huge and the other tiny;
  // the chosen plan must flip. The z→w edge is a hash table here so a
  // keyed probe actually beats scanning it.
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::HashTable, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  Decomposition D = B.build();

  // Edge ids: find the pid edge (y→w) and the nspid edge (z→w).
  EdgeId PidEdge = InvalidIndex, NsPidEdge = InvalidIndex;
  for (EdgeId E = 0; E != D.numEdges(); ++E) {
    if (D.edge(E).KeyCols == Cat.parseSet("pid"))
      PidEdge = E;
    if (D.edge(E).KeyCols == Cat.parseSet("ns, pid"))
      NsPidEdge = E;
  }
  ASSERT_NE(PidEdge, InvalidIndex);
  ASSERT_NE(NsPidEdge, InvalidIndex);

  CostParams FewPids(8.0);
  FewPids.setFanout(PidEdge, 2.0);
  FewPids.setFanout(NsPidEdge, 100000.0);
  auto P1 = planQuery(D, Cat.parseSet("ns, state"), Cat.parseSet("pid"),
                      FewPids);

  CostParams ManyPids(8.0);
  ManyPids.setFanout(PidEdge, 100000.0);
  ManyPids.setFanout(NsPidEdge, 2.0);
  auto P2 = planQuery(D, Cat.parseSet("ns, state"), Cat.parseSet("pid"),
                      ManyPids);

  ASSERT_TRUE(P1 && P2);
  EXPECT_NE(P1->str(), P2->str());
}

TEST(CostModelTest, UnitCostIsOne) {
  // A plan that is just the unit behind one lookup: cost =
  // mψ(fanout) * 1; with vector the multiplier is small and flat.
  RelSpecRef Spec = RelSpec::make("kv", {"k", "v"}, {{"k", "v"}});
  const Catalog &Cat = Spec->catalog();
  DecompBuilder B(Spec);
  NodeId L = B.addNode("leaf", "k", B.unit("v"));
  B.addNode("root", "", B.map("k", DsKind::Vector, L));
  Decomposition D = B.build();
  CostParams Params(1000.0);
  auto P = planQuery(D, Cat.parseSet("k"), Cat.parseSet("v"), Params);
  ASSERT_TRUE(P.has_value());
  EXPECT_DOUBLE_EQ(P->EstimatedCost,
                   dsLookupCost(DsKind::Vector, 1000.0) * 1.0);
}

} // namespace
