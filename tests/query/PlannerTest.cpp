//===- tests/query/PlannerTest.cpp - Query planner tests ---------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the cost-based planner of Section 4.3: every emitted plan is
/// valid (checked against the independent Fig. 8 checker), the cheapest
/// plan wins, and unplannable shapes return nothing.
///
//===----------------------------------------------------------------------===//

#include "query/Planner.h"

#include "decomp/Builder.h"
#include "query/Validity.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

Decomposition fig2(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  return B.build();
}

/// All (input, output) shapes a scheduler client uses.
const std::pair<const char *, const char *> SchedulerShapes[] = {
    {"ns, pid", "cpu"},          {"ns, pid", "state, cpu"},
    {"state", "ns, pid"},        {"ns", "pid"},
    {"ns, state", "pid"},        {"", "ns, pid, state, cpu"},
    {"ns, pid, state, cpu", ""}, {"pid", "ns"},
};

TEST(PlannerTest, AllSchedulerShapesPlannableAndValid) {
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  for (const auto &[In, Out] : SchedulerShapes) {
    auto P = planQuery(D, Cat.parseSet(In), Cat.parseSet(Out), CostParams());
    ASSERT_TRUE(P.has_value()) << "shape (" << In << ") -> (" << Out << ")";
    ValidityResult R = checkPlanValidity(D, *P);
    ASSERT_TRUE(R.ok()) << P->str() << ": " << R.Error;
    // The outputs plus inputs must cover the requested columns.
    EXPECT_TRUE(Cat.parseSet(Out).subsetOf(
        R.OutputCols->unionWith(Cat.parseSet(In))))
        << P->str();
  }
}

TEST(PlannerTest, KeyProbeUsesLookupsNotScans) {
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  auto P = planQuery(D, Cat.parseSet("ns, pid"), Cat.parseSet("cpu"),
                     CostParams());
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->str().find("qscan"), std::string::npos) << P->str();
}

TEST(PlannerTest, FullEnumerationUsesOneSideOnly) {
  // Enumerating everything should traverse one side of the join (qlr),
  // not pay for both sides (qjoin). With the extended (QUNIT) rule
  // either side binds all four columns (w's bound valuation includes
  // state), so the planner is free to pick whichever is cheaper —
  // but it must not emit a qjoin.
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  auto P = planQuery(D, ColumnSet(), Cat.allColumns(), CostParams());
  ASSERT_TRUE(P.has_value());
  EXPECT_NE(P->str().find("qlr"), std::string::npos) << P->str();
  EXPECT_EQ(P->str().find("qjoin"), std::string::npos) << P->str();
}

TEST(PlannerTest, UnreachableOutputColumnsUnplannable) {
  // A decomposition that does not represent `state` cannot answer
  // queries asking for it. (Such a decomposition is inadequate for the
  // scheduler spec, but the planner is independent of adequacy.)
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid", B.unit("cpu"));
  B.addNode("x", "", B.map("ns, pid", DsKind::HashTable, W));
  Decomposition D = B.build();
  auto P = planQuery(D, Cat.parseSet("ns, pid"), Cat.parseSet("state"),
                     CostParams());
  EXPECT_FALSE(P.has_value());
}

TEST(PlannerTest, InputColumnsNotInDecompositionUnplannable) {
  // The pattern binds `state` but no path checks it: execution could
  // not filter on it, so planning must fail (the A ⊆ B side condition).
  RelSpecRef Spec = schedulerSpec();
  const Catalog &Cat = Spec->catalog();
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid", B.unit("cpu"));
  B.addNode("x", "", B.map("ns, pid", DsKind::HashTable, W));
  Decomposition D = B.build();
  auto P = planQuery(D, Cat.parseSet("state"), Cat.parseSet("ns"),
                     CostParams());
  EXPECT_FALSE(P.has_value());
}

TEST(PlannerTest, CheapestPlanWinsAcrossSides) {
  // query 〈ns〉{pid}: via the left side it is lookup+scan over ~fanout
  // pids; via the right it is scan states × scan ns,pid pairs. Left
  // must win under uniform fanout.
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  auto P = planQuery(D, Cat.parseSet("ns"), Cat.parseSet("pid"),
                     CostParams(64.0));
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->str(), "qlr(qlookup(qscan(qunit)), left)");
}

TEST(PlannerTest, EnumeratePlansSortedAndValid) {
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  CostParams Params;
  std::vector<QueryPlan> Plans =
      enumeratePlans(D, Cat.parseSet("ns, state"), Params);
  ASSERT_FALSE(Plans.empty());
  for (size_t I = 0; I != Plans.size(); ++I) {
    ValidityResult R = checkPlanValidity(D, Plans[I]);
    EXPECT_TRUE(R.ok()) << Plans[I].str() << ": " << R.Error;
    EXPECT_DOUBLE_EQ(Plans[I].EstimatedCost,
                     estimatePlanCost(D, Plans[I], Params));
    if (I > 0)
      EXPECT_GE(Plans[I].EstimatedCost, Plans[I - 1].EstimatedCost);
  }
}

TEST(PlannerTest, LrDominatesJoinWhenOneSideBindsEverything) {
  // In Fig. 2 the state side alone binds every column, so for input
  // {ns, state} the paper's join plan q1 is valid but never Pareto-
  // optimal: qlr(right) = q2 reaches the same outputs for E(q2) ≤
  // E(qjoin(·, q2', ·)). The enumerated front must therefore be all-qlr.
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  std::vector<QueryPlan> Plans =
      enumeratePlans(D, Cat.parseSet("ns, state"), CostParams());
  ASSERT_FALSE(Plans.empty());
  for (const QueryPlan &P : Plans)
    EXPECT_NE(P.str().find("qlr"), std::string::npos) << P.str();
}

TEST(PlannerTest, JoinRequiredWhenNeitherSideSuffices) {
  // r(a, b, c) with a → b,c decomposed as join(a ↦ unit b, a ↦ unit c):
  // answering `query 〈a〉 {b, c}` needs columns from *both* sides, so
  // the planner must produce a qjoin.
  RelSpecRef Spec = RelSpec::make("r", {"a", "b", "c"}, {{"a", "b, c"}});
  const Catalog &Cat = Spec->catalog();
  DecompBuilder B(Spec);
  NodeId Nb = B.addNode("nb", "a", B.unit("b"));
  NodeId Nc = B.addNode("nc", "a", B.unit("c"));
  B.addNode("x", "", B.join(B.map("a", DsKind::HashTable, Nb),
                            B.map("a", DsKind::HashTable, Nc)));
  Decomposition D = B.build();

  auto P = planQuery(D, Cat.parseSet("a"), Cat.parseSet("b, c"),
                     CostParams());
  ASSERT_TRUE(P.has_value());
  EXPECT_NE(P->str().find("qjoin"), std::string::npos) << P->str();
  ValidityResult R = checkPlanValidity(D, *P);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(Cat.parseSet("b, c").subsetOf(*R.OutputCols));
}

TEST(PlannerTest, DeepChainPlans) {
  RelSpecRef Spec =
      RelSpec::make("r", {"a", "b", "c", "d"}, {{"a, b, c", "d"}});
  const Catalog &Cat = Spec->catalog();
  DecompBuilder B(Spec);
  NodeId N2 = B.addNode("n2", "a, b, c", B.unit("d"));
  NodeId N1 = B.addNode("n1", "a, b", B.map("c", DsKind::Btree, N2));
  NodeId N0 = B.addNode("n0", "a", B.map("b", DsKind::Btree, N1));
  B.addNode("x", "", B.map("a", DsKind::Btree, N0));
  Decomposition D = B.build();

  auto Full = planQuery(D, Cat.parseSet("a, b, c"), Cat.parseSet("d"),
                        CostParams());
  ASSERT_TRUE(Full.has_value());
  EXPECT_EQ(Full->str(), "qlookup(qlookup(qlookup(qunit)))");

  auto Mid = planQuery(D, Cat.parseSet("a"), Cat.parseSet("b, c, d"),
                       CostParams());
  ASSERT_TRUE(Mid.has_value());
  EXPECT_EQ(Mid->str(), "qlookup(qscan(qscan(qunit)))");
}

} // namespace
