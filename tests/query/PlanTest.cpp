//===- tests/query/PlanTest.cpp - Query plan structure tests -----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "query/Plan.h"

#include "decomp/Builder.h"
#include "query/Planner.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

Decomposition fig2(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
  B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                            B.map("state", DsKind::Vector, Z)));
  return B.build();
}

TEST(PlanTest, InvalidPlanRenders) {
  QueryPlan P;
  EXPECT_FALSE(P.valid());
  EXPECT_EQ(P.str(), "<no plan>");
}

TEST(PlanTest, PaperQcpuNotation) {
  // The paper's q_cpu = qlr(qlookup(qlookup(qunit)), left) arises when
  // planning `query r 〈ns, pid〉 {cpu}` on Fig. 2 — the left path
  // through y is two hash lookups; the planner must prefer it.
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  auto P = planQuery(D, Cat.parseSet("ns, pid"), Cat.parseSet("cpu"),
                     CostParams());
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->str(), "qlr(qlookup(qlookup(qunit)), left)");
}

TEST(PlanTest, StrNestingMatchesTree) {
  // query 〈state〉 {ns, pid}: iterate one state's processes — the
  // right side of the join, lookup then scan.
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  auto P = planQuery(D, Cat.parseSet("state"), Cat.parseSet("ns, pid"),
                     CostParams());
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->str(), "qlr(qlookup(qscan(qunit)), right)");
}

TEST(PlanTest, PlanRecordsShapeColumns) {
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  ColumnSet In = Cat.parseSet("ns, pid");
  auto P = planQuery(D, In, Cat.parseSet("cpu"), CostParams());
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->InputCols, In);
  // The plan's outputs must cover the requested columns.
  EXPECT_TRUE(Cat.parseSet("cpu").subsetOf(P->OutputCols.unionWith(In)));
  EXPECT_GT(P->EstimatedCost, 0.0);
}

TEST(PlanTest, StepsFormATree) {
  RelSpecRef Spec = schedulerSpec();
  Decomposition D = fig2(Spec);
  const Catalog &Cat = Spec->catalog();
  auto P = planQuery(D, Cat.parseSet("ns, state"), Cat.parseSet("pid"),
                     CostParams());
  ASSERT_TRUE(P.has_value());
  ASSERT_LT(P->Root, P->Steps.size());
  // Every child index points inside the pool; each step is referenced
  // at most once (tree, not DAG).
  std::vector<unsigned> Refs(P->Steps.size(), 0);
  for (const PlanStep &S : P->Steps) {
    if (S.Child0 != InvalidIndex) {
      ASSERT_LT(S.Child0, P->Steps.size());
      ++Refs[S.Child0];
    }
    if (S.Child1 != InvalidIndex) {
      ASSERT_LT(S.Child1, P->Steps.size());
      ++Refs[S.Child1];
    }
  }
  for (unsigned I = 0; I != Refs.size(); ++I)
    EXPECT_LE(Refs[I], I == P->Root ? 0u : 1u);
}

} // namespace
