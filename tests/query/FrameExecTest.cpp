//===- tests/query/FrameExecTest.cpp - Frame interpreter regression -*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// α-equivalence regression for the BindingFrame interpreter: on every
/// example system's decomposition, for every plannable query shape,
/// execPlan must emit the same tuple multiset through the frame sink
/// and the tuple sink, and that set must equal the relational
/// semantics (tuples of α(d) extending the pattern) — Lemma 2 driven
/// across the whole example corpus.
///
//===----------------------------------------------------------------------===//

#include "query/Exec.h"

#include "runtime/SynthesizedRelation.h"
#include "systems/GraphRelational.h"
#include "systems/IpcapRelational.h"
#include "systems/SchedulerRelational.h"
#include "systems/ThttpdRelational.h"
#include "systems/ZtopoRelational.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

using namespace relc;

namespace {

struct Example {
  std::string Name;
  std::unique_ptr<SynthesizedRelation> Rel;
  std::vector<Tuple> Inserted;
};

using TupleGen = std::function<Tuple(const Catalog &, int64_t)>;

Example makeExample(std::string Name, Decomposition D, const TupleGen &Gen,
                    int64_t N) {
  Example E;
  E.Name = std::move(Name);
  E.Rel = std::make_unique<SynthesizedRelation>(std::move(D));
  const Catalog &Cat = E.Rel->catalog();
  for (int64_t I = 0; I != N; ++I) {
    Tuple T = Gen(Cat, I);
    E.Rel->insert(T);
    E.Inserted.push_back(std::move(T));
  }
  return E;
}

std::vector<Example> makeExamples() {
  constexpr int64_t N = 24;
  std::vector<Example> Examples;

  TupleGen SchedGen = [](const Catalog &Cat, int64_t I) {
    return TupleBuilder(Cat)
        .set("ns", I % 4)
        .set("pid", I)
        .set("state", I % 2)
        .set("cpu", I % 7)
        .build();
  };
  RelSpecRef SchedSpec = SchedulerRelational::makeSpec();
  Examples.push_back(makeExample(
      "scheduler",
      SchedulerRelational::makeDefaultDecomposition(SchedSpec), SchedGen, N));

  TupleGen GraphGen = [](const Catalog &Cat, int64_t I) {
    return TupleBuilder(Cat)
        .set("src", I % 5)
        .set("dst", I / 5)
        .set("weight", I % 11)
        .build();
  };
  RelSpecRef GraphSpec = GraphRelational::makeSpec();
  Examples.push_back(makeExample(
      "graph_forward", GraphRelational::makeForwardOnly(GraphSpec), GraphGen,
      N));
  Examples.push_back(makeExample(
      "graph_shared", GraphRelational::makeSharedBidirectional(GraphSpec),
      GraphGen, N));
  Examples.push_back(makeExample(
      "graph_unshared", GraphRelational::makeUnsharedBidirectional(GraphSpec),
      GraphGen, N));

  TupleGen IpcapGen = [](const Catalog &Cat, int64_t I) {
    return TupleBuilder(Cat)
        .set("local", I % 3)
        .set("remote", I)
        .set("bytes_in", I * 3 % 50)
        .set("bytes_out", I * 7 % 50)
        .set("packets", I % 5)
        .build();
  };
  RelSpecRef IpcapSpec = IpcapRelational::makeSpec();
  Examples.push_back(makeExample(
      "ipcap", IpcapRelational::makeDefaultDecomposition(IpcapSpec), IpcapGen,
      N));
  Examples.push_back(makeExample(
      "ipcap_transposed",
      IpcapRelational::makeTransposedDecomposition(IpcapSpec), IpcapGen, N));

  TupleGen ThttpdGen = [](const Catalog &Cat, int64_t I) {
    return TupleBuilder(Cat)
        .set("file", I)
        .set("addr", I * 64)
        .set("size", (I % 6 + 1) * 8)
        .set("refcount", I % 3)
        .set("last_use", I % 10)
        .build();
  };
  RelSpecRef ThttpdSpec = ThttpdRelational::makeSpec();
  Examples.push_back(makeExample(
      "thttpd", ThttpdRelational::makeDefaultDecomposition(ThttpdSpec),
      ThttpdGen, N));

  TupleGen ZtopoGen = [](const Catalog &Cat, int64_t I) {
    return TupleBuilder(Cat)
        .set("tile", I)
        .set("state", I % 3)
        .set("size", (I % 4 + 1) * 16)
        .set("stamp", I % 9)
        .build();
  };
  RelSpecRef ZtopoSpec = ZtopoRelational::makeSpec();
  Examples.push_back(makeExample(
      "ztopo", ZtopoRelational::makeDefaultDecomposition(ZtopoSpec), ZtopoGen,
      N));

  return Examples;
}

/// Sorted full-tuple projections emitted for (pattern → All) through
/// the legacy tuple sink.
std::vector<Tuple> viaTupleSink(const SynthesizedRelation &Rel,
                                const Tuple &Pattern, ColumnSet All) {
  std::vector<Tuple> Out;
  Rel.scan(Pattern, All,
           [&](const Tuple &T) {
             Out.push_back(T.project(All));
             return true;
           });
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// The same emission through the frame sink.
std::vector<Tuple> viaFrameSink(const SynthesizedRelation &Rel,
                                const Tuple &Pattern, ColumnSet All) {
  std::vector<Tuple> Out;
  Rel.scanFrames(Pattern, All,
                 [&](const BindingFrame &F) {
                   Out.push_back(F.toTuple(All));
                   return true;
                 });
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// The relational semantics: tuples of α(d) extending the pattern.
std::vector<Tuple> viaOracle(const Relation &Oracle, const Tuple &Pattern) {
  std::vector<Tuple> Out;
  for (const Tuple &T : Oracle.tuples())
    if (T.extends(Pattern))
      Out.push_back(T);
  std::sort(Out.begin(), Out.end());
  return Out;
}

TEST(FrameExecTest, AlphaEquivalenceOnEveryExampleDecomposition) {
  for (Example &E : makeExamples()) {
    SCOPED_TRACE(E.Name);
    const SynthesizedRelation &Rel = *E.Rel;
    const Catalog &Cat = Rel.catalog();
    ColumnSet All = Cat.allColumns();
    Relation Oracle = Rel.toRelation();
    ASSERT_EQ(Oracle.size(), Rel.size());

    const Tuple &Present = E.Inserted[E.Inserted.size() / 2];
    unsigned PlannedShapes = 0;
    for (uint64_t Mask = 0; Mask < (uint64_t(1) << Cat.size()); ++Mask) {
      ColumnSet S = ColumnSet::fromMask(Mask);
      if (!Rel.planFor(S, All))
        continue;
      ++PlannedShapes;

      // A pattern matching at least one tuple, and one matching none
      // (every value offset past the generator's range).
      Tuple Hit = Present.project(S);
      Tuple Miss;
      Hit.forEach([&](ColumnId Id, const Value &V) {
        Miss.set(Id, Value::ofInt(V.asInt() + 1000));
      });

      for (const Tuple &Pattern : {Hit, Miss}) {
        SCOPED_TRACE("pattern " + Pattern.str(Cat));
        std::vector<Tuple> ViaTuple = viaTupleSink(Rel, Pattern, All);
        std::vector<Tuple> ViaFrame = viaFrameSink(Rel, Pattern, All);
        EXPECT_EQ(ViaTuple, ViaFrame)
            << "frame and tuple sinks emitted different multisets";
        // Key-less scans may emit duplicates (constant-space execution
        // does not deduplicate); compare as sets against the oracle.
        std::vector<Tuple> Unique = ViaFrame;
        Unique.erase(std::unique(Unique.begin(), Unique.end()),
                     Unique.end());
        EXPECT_EQ(Unique, viaOracle(Oracle, Pattern))
            << "emitted set differs from the relational semantics";
      }
    }
    // The empty and all-columns patterns always have valid plans.
    EXPECT_GE(PlannedShapes, 2u);
  }
}

/// The frame interpreter must also agree after mutation churn (the
/// remove/update paths share the same probes and frames).
TEST(FrameExecTest, AlphaEquivalenceSurvivesChurn) {
  for (Example &E : makeExamples()) {
    SCOPED_TRACE(E.Name);
    SynthesizedRelation &Rel = *E.Rel;
    const Catalog &Cat = Rel.catalog();
    ColumnSet All = Cat.allColumns();

    // Remove a third of the tuples, update another third.
    RelSpecRef Spec = Rel.spec();
    ColumnSet Key = Spec->fds().deps().empty()
                        ? All
                        : Spec->fds().deps().front().Lhs;
    for (size_t I = 0; I < E.Inserted.size(); I += 3)
      Rel.remove(E.Inserted[I].project(Key));
    ColumnSet NonKey = All.minus(Key);
    if (!NonKey.empty()) {
      ColumnId C = NonKey.first();
      for (size_t I = 1; I < E.Inserted.size(); I += 3) {
        Tuple Changes;
        Changes.set(C, Value::ofInt(500 + int64_t(I)));
        Rel.update(E.Inserted[I].project(Key), Changes);
      }
    }

    Relation Oracle = Rel.toRelation();
    std::vector<Tuple> ViaTuple = viaTupleSink(Rel, Tuple(), All);
    std::vector<Tuple> ViaFrame = viaFrameSink(Rel, Tuple(), All);
    EXPECT_EQ(ViaTuple, ViaFrame);
    std::vector<Tuple> Unique = ViaFrame;
    Unique.erase(std::unique(Unique.begin(), Unique.end()), Unique.end());
    EXPECT_EQ(Unique, viaOracle(Oracle, Tuple()));
  }
}

} // namespace
