//===- tests/query/ValidityTest.cpp - Fig. 8 validity tests ------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the validity judgment Γ̂,d̂,A ⊢∆ q,B (Fig. 8) on hand-built
/// plans: the paper's valid examples (q_cpu, q1, q2 of Section 4.1) and
/// ill-formed plans each rule must reject.
///
//===----------------------------------------------------------------------===//

#include "query/Validity.h"

#include "decomp/Builder.h"

#include <gtest/gtest.h>

using namespace relc;

namespace {

RelSpecRef schedulerSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

/// Fixture exposing Fig. 2's prim ids for hand-assembled plans.
class ValidityTest : public ::testing::Test {
protected:
  void SetUp() override {
    Spec = schedulerSpec();
    DecompBuilder B(Spec);
    NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
    NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
    NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
    B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
                              B.map("state", DsKind::Vector, Z)));
    D.emplace(B.build());

    // Resolve prim ids: x's prim is the join; its children are the two
    // map prims; y/z each have a map prim; w has the unit.
    const PrimNode &RootPrim = D->prim(D->node(D->root()).Prim);
    ASSERT_EQ(RootPrim.Kind, PrimKind::Join);
    JoinPrim = D->node(D->root()).Prim;
    MapNs = RootPrim.Left;
    MapState = RootPrim.Right;
    MapPid = D->node(D->nodeByName("y")).Prim;
    MapNsPid = D->node(D->nodeByName("z")).Prim;
    UnitCpu = D->node(D->nodeByName("w")).Prim;
  }

  /// Appends a step, returning its id.
  static PlanStepId step(QueryPlan &P, PlanKind K, PrimId Prim,
                         PlanStepId C0 = InvalidIndex,
                         PlanStepId C1 = InvalidIndex, bool Left = true) {
    P.Steps.push_back({K, Prim, C0, C1, Left});
    return static_cast<PlanStepId>(P.Steps.size() - 1);
  }

  QueryPlan makePlan(ColumnSet InputCols) {
    QueryPlan P;
    P.InputCols = InputCols;
    return P;
  }

  RelSpecRef Spec;
  std::optional<Decomposition> D;
  PrimId JoinPrim, MapNs, MapState, MapPid, MapNsPid, UnitCpu;
};

TEST_F(ValidityTest, PaperQcpuIsValid) {
  // q_cpu = qlr(qlookup(qlookup(qunit)), left) with A = {ns, pid}.
  const Catalog &Cat = Spec->catalog();
  QueryPlan P = makePlan(Cat.parseSet("ns, pid"));
  PlanStepId U = step(P, PlanKind::Unit, UnitCpu);
  PlanStepId L2 = step(P, PlanKind::Lookup, MapPid, U);
  PlanStepId L1 = step(P, PlanKind::Lookup, MapNs, L2);
  P.Root = step(P, PlanKind::Lr, JoinPrim, L1, InvalidIndex, /*Left=*/true);

  ValidityResult R = checkPlanValidity(*D, P);
  ASSERT_TRUE(R.ok()) << R.Error;
  // B = both lookup keys, the unit's columns, and — per the extended
  // (QUNIT) rule — w's bound valuation, which adds `state`.
  EXPECT_EQ(*R.OutputCols, Cat.parseSet("ns, pid, state, cpu"));
}

TEST_F(ValidityTest, PaperQ1JoinIsValid) {
  // q1 = qjoin(qlookup(qscan(qunit)), qlookup(qlookup(qunit)), left)
  // with A = {ns, state} (Section 4.1's motivating query).
  const Catalog &Cat = Spec->catalog();
  QueryPlan P = makePlan(Cat.parseSet("ns, state"));
  PlanStepId U1 = step(P, PlanKind::Unit, UnitCpu);
  PlanStepId Scan = step(P, PlanKind::Scan, MapPid, U1);
  PlanStepId Left = step(P, PlanKind::Lookup, MapNs, Scan);
  PlanStepId U2 = step(P, PlanKind::Unit, UnitCpu);
  PlanStepId Lk2 = step(P, PlanKind::Lookup, MapNsPid, U2);
  PlanStepId Right = step(P, PlanKind::Lookup, MapState, Lk2);
  P.Root = step(P, PlanKind::Join, JoinPrim, Left, Right, /*Left=*/true);

  ValidityResult R = checkPlanValidity(*D, P);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(Cat.parseSet("pid").subsetOf(*R.OutputCols));
}

TEST_F(ValidityTest, PaperQ2LrIsValid) {
  // q2 = qlr(qlookup(qscan(qunit)), right): iterate the state side.
  const Catalog &Cat = Spec->catalog();
  QueryPlan P = makePlan(Cat.parseSet("ns, state"));
  PlanStepId U = step(P, PlanKind::Unit, UnitCpu);
  PlanStepId Scan = step(P, PlanKind::Scan, MapNsPid, U);
  PlanStepId Lk = step(P, PlanKind::Lookup, MapState, Scan);
  P.Root = step(P, PlanKind::Lr, JoinPrim, Lk, InvalidIndex, /*Left=*/false);

  ValidityResult R = checkPlanValidity(*D, P);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(Cat.parseSet("ns, pid").subsetOf(*R.OutputCols));
}

TEST_F(ValidityTest, QLookupWithoutBoundKeysRejected) {
  // (QLOOKUP) requires C ⊆ A: looking up ns with nothing bound.
  QueryPlan P = makePlan(ColumnSet());
  PlanStepId U = step(P, PlanKind::Unit, UnitCpu);
  PlanStepId L2 = step(P, PlanKind::Lookup, MapPid, U);
  PlanStepId L1 = step(P, PlanKind::Lookup, MapNs, L2);
  P.Root = step(P, PlanKind::Lr, JoinPrim, L1, InvalidIndex, true);

  ValidityResult R = checkPlanValidity(*D, P);
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(R.Error.empty());
}

TEST_F(ValidityTest, InnerLookupKeysMayComeFromOuterScan) {
  // (QSCAN) binds the scanned keys for the subquery: scanning ns then
  // looking up pid needs pid ∈ A.
  const Catalog &Cat = Spec->catalog();
  QueryPlan P = makePlan(Cat.parseSet("pid"));
  PlanStepId U = step(P, PlanKind::Unit, UnitCpu);
  PlanStepId Lk = step(P, PlanKind::Lookup, MapPid, U);
  PlanStepId Scan = step(P, PlanKind::Scan, MapNs, Lk);
  P.Root = step(P, PlanKind::Lr, JoinPrim, Scan, InvalidIndex, true);

  ValidityResult R = checkPlanValidity(*D, P);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(Cat.parseSet("ns, pid, cpu").subsetOf(*R.OutputCols));
}

TEST_F(ValidityTest, JoinWithUnderdeterminedSidesRejected)
{
  // (QJOIN) demands ∆ ⊢ A∪B1 → B2 and A∪B2 → B1 so results match
  // unambiguously. With A = ∅, scanning ns on the left (B1 = {ns}) and
  // state on the right (B2 = {state, ns, pid}) fails both premises.
  QueryPlan P = makePlan(ColumnSet());
  // Left: qscan over ns map, then nothing deeper — scan y's pid map too
  // to reach the unit.
  PlanStepId U1 = step(P, PlanKind::Unit, UnitCpu);
  PlanStepId ScanPid = step(P, PlanKind::Scan, MapPid, U1);
  PlanStepId Left = step(P, PlanKind::Scan, MapNs, ScanPid);
  PlanStepId U2 = step(P, PlanKind::Unit, UnitCpu);
  PlanStepId ScanNsPid = step(P, PlanKind::Scan, MapNsPid, U2);
  PlanStepId Right = step(P, PlanKind::Scan, MapState, ScanNsPid);
  P.Root = step(P, PlanKind::Join, JoinPrim, Left, Right, true);

  // Here B1 = {ns, pid, cpu} ⊇ a key, so A∪B1 → B2 holds; but
  // A∪B2 → B1 also holds... choose sides that genuinely fail: left
  // binds only ns (no descent possible — qscan must recurse, so instead
  // validate the reverse direction via a right-first join where B2 is
  // just {state}).
  ValidityResult R1 = checkPlanValidity(*D, P);
  EXPECT_TRUE(R1.ok()) << R1.Error; // this one is actually valid

  // Right side binds only {state}+{ns,pid} = key again; to build a
  // genuinely ambiguous join we need a spec without the FD.
  RelSpecRef Spec2 =
      RelSpec::make("r", {"a", "b", "c"}, {{"a", "b"}, {"a", "c"}});
  const Catalog &Cat2 = Spec2->catalog();
  DecompBuilder B2(Spec2);
  NodeId Nb = B2.addNode("nb", "a", B2.unit("b"));
  NodeId Nc = B2.addNode("nc", "a", B2.unit("c"));
  B2.addNode("x", "", B2.join(B2.map("a", DsKind::HashTable, Nb),
                              B2.map("a", DsKind::HashTable, Nc)));
  Decomposition D2 = B2.build();
  PrimId Join2 = D2.node(D2.root()).Prim;
  PrimId MapB = D2.prim(Join2).Left;
  PrimId MapC = D2.prim(Join2).Right;
  PrimId UnitB = D2.node(D2.nodeByName("nb")).Prim;
  PrimId UnitC = D2.node(D2.nodeByName("nc")).Prim;

  // Scan both sides with nothing bound: B1 = {a, b}, B2 = {a, c}; the
  // FDs a→b, a→c give A∪B1 → B2 (a determines c) — valid. Now break
  // it: use a spec where b does not determine a.
  QueryPlan P2;
  P2.InputCols = ColumnSet();
  PlanStepId Ub = step(P2, PlanKind::Unit, UnitB);
  PlanStepId Sb = step(P2, PlanKind::Scan, MapB, Ub);
  PlanStepId Uc = step(P2, PlanKind::Unit, UnitC);
  PlanStepId Sc = step(P2, PlanKind::Scan, MapC, Uc);
  P2.Root = step(P2, PlanKind::Join, Join2, Sb, Sc, true);
  ValidityResult R2 = checkPlanValidity(D2, P2);
  EXPECT_TRUE(R2.ok()) << R2.Error; // a → b,c: both premises hold
  (void)Cat2;

  // Finally the genuinely invalid case: no FDs at all. Note such a
  // decomposition is also inadequate, but validity is checked
  // independently of adequacy.
  RelSpecRef Spec3 = RelSpec::make("r", {"a", "b"}, {});
  DecompBuilder B3(Spec3);
  NodeId Na3 = B3.addNode("na", "a", B3.unit(ColumnSet()));
  NodeId Nb3 = B3.addNode("nb", "b", B3.unit(ColumnSet()));
  B3.addNode("x", "", B3.join(B3.map("a", DsKind::HashTable, Na3),
                              B3.map("b", DsKind::HashTable, Nb3)));
  Decomposition D3 = B3.build();
  PrimId Join3 = D3.node(D3.root()).Prim;
  PrimId MapA3 = D3.prim(Join3).Left;
  PrimId MapB3 = D3.prim(Join3).Right;
  PrimId UnitA3 = D3.node(D3.nodeByName("na")).Prim;
  PrimId UnitB3 = D3.node(D3.nodeByName("nb")).Prim;

  QueryPlan P3;
  P3.InputCols = ColumnSet();
  PlanStepId Ua3 = step(P3, PlanKind::Unit, UnitA3);
  PlanStepId Sa3 = step(P3, PlanKind::Scan, MapA3, Ua3);
  PlanStepId Ub3 = step(P3, PlanKind::Unit, UnitB3);
  PlanStepId Sb3 = step(P3, PlanKind::Scan, MapB3, Ub3);
  P3.Root = step(P3, PlanKind::Join, Join3, Sa3, Sb3, true);
  ValidityResult R3 = checkPlanValidity(D3, P3);
  EXPECT_FALSE(R3.ok());
}

TEST_F(ValidityTest, LrBindsSharedNodeBoundColumns) {
  // qlr ignores the state side of the join entirely, yet the output
  // still binds `state`: the shared unit node w carries it in its
  // bound valuation (the extended (QUNIT) rule), so the left path
  // answers state queries without touching the state lists.
  const Catalog &Cat = Spec->catalog();
  QueryPlan P = makePlan(Cat.parseSet("ns, pid"));
  PlanStepId U = step(P, PlanKind::Unit, UnitCpu);
  PlanStepId L2 = step(P, PlanKind::Lookup, MapPid, U);
  PlanStepId L1 = step(P, PlanKind::Lookup, MapNs, L2);
  P.Root = step(P, PlanKind::Lr, JoinPrim, L1, InvalidIndex, true);
  ValidityResult R = checkPlanValidity(*D, P);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.OutputCols->contains(Cat.get("state")));
}

TEST_F(ValidityTest, MismatchedPrimRejected) {
  // A lookup step pointing at the unit prim is structurally ill-formed.
  const Catalog &Cat = Spec->catalog();
  QueryPlan P = makePlan(Cat.parseSet("ns, pid"));
  PlanStepId U = step(P, PlanKind::Unit, UnitCpu);
  PlanStepId L = step(P, PlanKind::Lookup, UnitCpu, U);
  PlanStepId L1 = step(P, PlanKind::Lookup, MapNs, L);
  P.Root = step(P, PlanKind::Lr, JoinPrim, L1, InvalidIndex, true);
  ValidityResult R = checkPlanValidity(*D, P);
  EXPECT_FALSE(R.ok());
}

} // namespace
