//===- runtime/Cut.h - Decomposition cuts -----------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cuts per Section 4.5 (Fig. 10): for a pattern binding columns C, the
/// nodes of a decomposition partition into X (instances may represent
/// tuples *not* matching the pattern: ∆ ⊬ B → C) and Y (instances are
/// specific to one valuation of C: ∆ ⊢ B → C). Removal breaks exactly
/// the edges crossing from X into Y; update detaches and reattaches
/// across them. Adequacy guarantees no edge points from Y back into X,
/// and that the cut exists and is unique.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_RUNTIME_CUT_H
#define RELC_RUNTIME_CUT_H

#include "decomp/Decomposition.h"

#include <vector>

namespace relc {

/// The cut (X, Y) of a decomposition for one pattern column set.
struct Cut {
  ColumnSet PatternCols;
  std::vector<bool> InY; ///< Indexed by NodeId.
  std::vector<EdgeId> CrossingEdges; ///< Edges with From ∈ X, To ∈ Y.

  bool inY(NodeId Id) const { return InY[Id]; }
  bool crossing(const MapEdge &E) const { return !InY[E.From] && InY[E.To]; }
};

/// Computes the cut for \p PatternCols: Y = { v | ∆ ⊢ B_v → C }.
/// Asserts the no-Y-to-X-edge property that adequacy guarantees.
Cut computeCut(const Decomposition &D, ColumnSet PatternCols);

} // namespace relc

#endif // RELC_RUNTIME_CUT_H
