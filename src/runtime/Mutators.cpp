//===- runtime/Mutators.cpp - dinsert / dremove / dupdate --------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
//
// Containers are probed with borrowed TupleViews of the subject tuple
// (lookup/erase never materialize a key); a key Tuple is built only
// when an entry is actually inserted. Per-node instance tables and the
// match list live in the caller's MutatorScratch, so steady-state
// mutation loops reuse their working storage.
//
//===----------------------------------------------------------------------===//

#include "runtime/Mutators.h"

#include "query/Exec.h"
#include "rel/TupleView.h"
#include "support/Checks.h"

#include <cassert>
#include <vector>

using namespace relc;

namespace {

/// Finds the instance of every X node along full tuple \p T's path,
/// navigating parent containers from the root (parents of X nodes are
/// always X, since no edge crosses Y → X). Results land in \p Inst.
///
/// With \p AllowMissing, unresolvable nodes stay null: while dremove
/// walks its match list, an earlier match that shared path structure
/// with \p T may already have removed parts of T's X path (e.g. two
/// matches differing only below a common crossing entry). Without it,
/// a missing instance is a precondition violation and asserts.
void navigateX(InstanceGraph &G, const Tuple &T, const Cut &C,
               bool AllowMissing, std::vector<NodeInstance *> &Inst) {
  const Decomposition &D = G.decomp();
  Inst.assign(D.numNodes(), nullptr);
  for (NodeId Id : D.topo()) {
    if (C.inY(Id))
      continue;
    if (Id == D.root()) {
      Inst[Id] = G.root();
      continue;
    }
    // Resolve through any incoming edge whose parent survives;
    // adequacy's (AMAP) conditions make all live paths agree.
    for (EdgeId E : D.incoming(Id)) {
      const MapEdge &Edge = D.edge(E);
      NodeInstance *P = Inst[Edge.From];
      if (!P) {
        assert(AllowMissing &&
               "X ancestor instance missing for a represented tuple");
        continue;
      }
      NodeInstance *Child =
          P->edgeMap(Edge.OrdinalInFrom).lookup(TupleView(T, Edge.KeyCols));
      if (!Child) {
        assert(AllowMissing &&
               "X instance missing for a represented tuple");
        continue;
      }
      Inst[Id] = Child;
      break;
    }
  }
}

/// After breaking a tuple's crossing edges, interior X instances may be
/// left representing the empty relation ("devoid of children"); unlink
/// and release them, cascading upward (children come before parents in
/// let order, the root is last and never cleaned).
void cleanupEmptyX(InstanceGraph &G, const Tuple &T, const Cut &C,
                   std::vector<NodeInstance *> &Inst) {
  const Decomposition &D = G.decomp();
  for (NodeId Id = 0; Id + 1 < D.numNodes(); ++Id) {
    if (C.inY(Id))
      continue;
    NodeInstance *N = Inst[Id];
    if (!N || !N->representsEmpty())
      continue;
    for (EdgeId E : D.incoming(Id)) {
      const MapEdge &Edge = D.edge(E);
      if (!Inst[Edge.From])
        continue; // parent branch already removed with an earlier match
      EdgeMap &Map = Inst[Edge.From]->edgeMap(Edge.OrdinalInFrom);
      bool Removed;
      if (dsSupportsEraseByNode(Edge.Ds))
        Removed = Map.eraseNode(N);
      else
        Removed = Map.erase(TupleView(T, Edge.KeyCols)) == N;
      assert(Removed && "parent entry missing during cleanup");
      (void)Removed;
      G.release(N);
    }
    Inst[Id] = nullptr;
  }
}

/// Breaks all edges crossing the cut for one represented tuple \p T,
/// releasing the detached Y-side instances (Fig. 9 right-to-left).
void removeTuple(InstanceGraph &G, const Tuple &T, const Cut &C,
                 MutatorScratch &Scratch) {
  const Decomposition &D = G.decomp();
  navigateX(G, T, C, /*AllowMissing=*/true, Scratch.Inst);

  // Break every crossing edge. The first break per Y node resolves the
  // child by key; later breaks into the same child use the intrusive
  // fast path (no search) when ψ supports it — this is the payoff of
  // sharing with intrusive containers (Section 6.1).
  //
  // A crossing edge may already be broken: one X-side entry (say the
  // root's ns-map entry for a remove-by-ns) covers *all* matching
  // tuples, and an earlier iteration of the per-tuple loop in dremove
  // severed it — releasing the subtree below, so the entry (and
  // possibly the child) is gone. Skipping is sound because the set of
  // matches was collected before any mutation.
  Scratch.YInst.assign(D.numNodes(), nullptr);
  for (EdgeId E : C.CrossingEdges) {
    const MapEdge &Edge = D.edge(E);
    if (!Scratch.Inst[Edge.From])
      continue; // X side already removed along with an earlier match
    EdgeMap &Map = Scratch.Inst[Edge.From]->edgeMap(Edge.OrdinalInFrom);
    NodeInstance *Child = Scratch.YInst[Edge.To];
    if (Child && dsSupportsEraseByNode(Edge.Ds)) {
      if (Map.eraseNode(Child))
        G.release(Child);
    } else if ((Child = Map.erase(TupleView(T, Edge.KeyCols)))) {
      Scratch.YInst[Edge.To] = Child;
      G.release(Child);
    }
  }

  cleanupEmptyX(G, T, C, Scratch.Inst);
}

} // namespace

namespace {

/// The incoming edge of \p Id with the cheapest point lookup (hash and
/// vector over trees over lists). Used as the existence probe below.
EdgeId cheapestIncoming(const Decomposition &D, NodeId Id) {
  EdgeId Best = D.incoming(Id).front();
  auto Rank = [](DsKind K) {
    switch (K) {
    case DsKind::Vector:
    case DsKind::HashTable:
      return 0;
    case DsKind::Btree:
    case DsKind::ITree:
      return 1;
    case DsKind::DList:
    case DsKind::IList:
      return 2;
    }
    return 3;
  };
  for (EdgeId E : D.incoming(Id))
    if (Rank(D.edge(E).Ds) < Rank(D.edge(Best).Ds))
      Best = E;
  return Best;
}

} // namespace

bool relc::dinsert(InstanceGraph &G, const Tuple &T, MutatorScratch &Scratch) {
  const Decomposition &D = G.decomp();
  assert(T.columns() == D.spec()->columns() &&
         "insert requires a full tuple over the relation's columns");

  std::vector<NodeInstance *> &Inst = Scratch.Inst;
  Inst.assign(D.numNodes(), nullptr);
  bool Changed = false;
  for (NodeId Id : D.topo()) {
    if (Id == D.root()) {
      Inst[Id] = G.root();
      continue;
    }
    const DecompNode &Node = D.node(Id);

    // One probe decides existence: in a well-formed instance a node
    // either has an entry in *every* incoming edge instance or in none
    // (WFMAP's exactness + the sharing conditions of (AMAP)), and a
    // freshly created parent has an empty container — which is also a
    // correct verdict, since an existing child implies all its parents
    // existed before this insert. Probe the cheapest edge.
    EdgeId ProbeE = cheapestIncoming(D, Id);
    const MapEdge &Probe = D.edge(ProbeE);
    assert(Inst[Probe.From] && "parent instance missing in topo insert");
    NodeInstance *N = Inst[Probe.From]
                          ->edgeMap(Probe.OrdinalInFrom)
                          .lookup(TupleView(T, Probe.KeyCols));

    if (!N) {
      N = G.create(Id, T.project(Node.Bound));
      for (PrimId U : D.unitsOf(Id))
        N->setUnitValues(U, T.project(D.prim(U).Cols));
      // A fresh node appears in no container yet: link it through
      // every incoming edge, no pre-lookup required.
      for (EdgeId E : D.incoming(Id)) {
        const MapEdge &Edge = D.edge(E);
        EdgeMap &Map = Inst[Edge.From]->edgeMap(Edge.OrdinalInFrom);
        RELC_EXPENSIVE_ASSERT(!Map.lookup(TupleView(T, Edge.KeyCols)) &&
                              "fresh node already linked");
        Map.insert(T.project(Edge.KeyCols), N);
        N->retain();
      }
      Changed = true;
    } else {
#ifndef NDEBUG
      // Lemma 4(a)'s precondition: the insert preserves the FDs, so an
      // existing instance must already carry exactly these values.
      for (PrimId U : D.unitsOf(Id))
        assert(N->unitValues(U) == T.project(D.prim(U).Cols) &&
               "insert violates the relation's functional dependencies");
#endif
    }
    Inst[Id] = N;
  }
  return Changed;
}

bool relc::dinsert(InstanceGraph &G, const Tuple &T) {
  MutatorScratch Scratch;
  return dinsert(G, T, Scratch);
}

size_t relc::dremove(InstanceGraph &G, const Tuple &Pattern, PlanCache &Plans,
                     MutatorScratch &Scratch) {
  const Decomposition &D = G.decomp();
  ColumnSet All = D.spec()->columns();
  assert(Pattern.columns().subsetOf(All) && "pattern has foreign columns");

  // Locate the full matching tuples first (the mutation below cannot
  // run concurrently with the traversal that finds them). Each match
  // is materialized once, straight from the binding frame.
  const QueryPlan *QP = Plans.plan(Pattern.columns(), All);
  assert(QP && "no valid plan to locate tuples for removal");
  std::vector<Tuple> &Matches = Scratch.Matches;
  Matches.clear();
  execPlan(*QP, G, Pattern, Scratch.Frame, [&](const BindingFrame &F) {
    Matches.push_back(F.toTuple(All));
    return true;
  });
  if (Matches.empty())
    return 0;

  if (Pattern.empty()) {
    // Removing with the empty pattern empties the relation.
    G.clear();
    return Matches.size();
  }

  const Cut &C = Plans.cut(Pattern.columns());
  for (const Tuple &T : Matches)
    removeTuple(G, T, C, Scratch);
  return Matches.size();
}

size_t relc::dremove(InstanceGraph &G, const Tuple &Pattern,
                     PlanCache &Plans) {
  MutatorScratch Scratch;
  return dremove(G, Pattern, Plans, Scratch);
}

size_t relc::dupdate(InstanceGraph &G, const Tuple &Pattern,
                     const Tuple &Changes, PlanCache &Plans,
                     MutatorScratch &Scratch) {
  const Decomposition &D = G.decomp();
  const FuncDeps &Fds = D.spec()->fds();
  ColumnSet All = D.spec()->columns();
  assert(Fds.isKey(Pattern.columns(), All) &&
         "update pattern must be a key for the relation");
  assert(!Pattern.columns().intersects(Changes.columns()) &&
         "update changes must not touch pattern columns");
  assert(Changes.columns().subsetOf(All) && "changes have foreign columns");
  (void)Fds;

  // The pattern is a key: at most one tuple matches.
  const QueryPlan *QP = Plans.plan(Pattern.columns(), All);
  assert(QP && "no valid plan to locate the tuple for update");
  Tuple TOld;
  bool Found = false;
  execPlan(*QP, G, Pattern, Scratch.Frame, [&](const BindingFrame &F) {
    TOld = F.toTuple(All);
    Found = true;
    return false;
  });
  if (!Found)
    return 0;
  Tuple TNew = TOld.merge(Changes);
  if (TNew == TOld)
    return 1;

  const Cut &C = Plans.cut(Pattern.columns());
  std::vector<NodeInstance *> &Inst = Scratch.Inst;
  navigateX(G, TOld, C, /*AllowMissing=*/false, Inst);

  // Resolve the (unique, since the pattern is a key) Y instance of
  // every below-cut node along TOld.
  std::vector<NodeInstance *> &YInst = Scratch.YInst;
  YInst.assign(D.numNodes(), nullptr);
  for (NodeId Id : D.topo()) {
    if (!C.inY(Id))
      continue;
    for (EdgeId E : D.incoming(Id)) {
      const MapEdge &Edge = D.edge(E);
      NodeInstance *P = C.inY(Edge.From) ? YInst[Edge.From] : Inst[Edge.From];
      assert(P && "parent instance missing for a represented tuple");
      NodeInstance *Child = P->edgeMap(Edge.OrdinalInFrom)
                                .lookup(TupleView(TOld, Edge.KeyCols));
      assert(Child && "Y instance missing for a represented tuple");
      YInst[Id] = Child;
      break;
    }
  }

  // Detach: unlink the below-cut subgraph from its X parents without
  // releasing references — the same instances are reattached below
  // (this is the in-place reuse of Section 4.5).
  for (EdgeId E : C.CrossingEdges) {
    const MapEdge &Edge = D.edge(E);
    EdgeMap &Map = Inst[Edge.From]->edgeMap(Edge.OrdinalInFrom);
    bool Removed;
    if (dsSupportsEraseByNode(Edge.Ds))
      Removed = Map.eraseNode(YInst[Edge.To]);
    else
      Removed = Map.erase(TupleView(TOld, Edge.KeyCols)) == YInst[Edge.To];
    assert(Removed && "crossing entry missing during update detach");
    (void)Removed;
  }

  // Reposition Y-internal entries whose keys change.
  for (EdgeId E = 0; E != D.numEdges(); ++E) {
    const MapEdge &Edge = D.edge(E);
    if (!C.inY(Edge.From) || !Edge.KeyCols.intersects(Changes.columns()))
      continue;
    EdgeMap &Map = YInst[Edge.From]->edgeMap(Edge.OrdinalInFrom);
    NodeInstance *Child = Map.erase(TupleView(TOld, Edge.KeyCols));
    assert(Child == YInst[Edge.To] && "misaligned Y-internal entry");
    Map.insert(TNew.project(Edge.KeyCols), Child);
  }

  // Rewrite bound valuations and affected unit values in place.
  for (NodeId Id = 0; Id != D.numNodes(); ++Id) {
    NodeInstance *N = C.inY(Id) ? YInst[Id] : Inst[Id];
    if (!N)
      continue;
    if (C.inY(Id)) {
      N->setBound(TNew.project(D.node(Id).Bound));
      for (PrimId U : D.unitsOf(Id))
        if (D.prim(U).Cols.intersects(Changes.columns()))
          N->setUnitValues(U, TNew.project(D.prim(U).Cols));
    } else if (!D.node(Id).Bound.intersects(Changes.columns())) {
      // X instance that keeps representing the updated tuple: its units
      // may carry changed columns (the FD precondition guarantees this
      // stays consistent for every other tuple it represents).
      for (PrimId U : D.unitsOf(Id))
        if (D.prim(U).Cols.intersects(Changes.columns()))
          N->setUnitValues(U, TNew.project(D.prim(U).Cols));
    }
  }

  // Reattach along the new tuple's path, creating X instances as
  // needed (bound columns of X nodes may have changed). The graph now
  // represents r \ {t_old}, so the single-probe existence rule of
  // dinsert applies verbatim.
  std::vector<NodeInstance *> &NewInst = Scratch.NewInst;
  NewInst.assign(D.numNodes(), nullptr);
  for (NodeId Id : D.topo()) {
    if (C.inY(Id))
      continue;
    if (Id == D.root()) {
      NewInst[Id] = G.root();
      continue;
    }
    EdgeId ProbeE = cheapestIncoming(D, Id);
    const MapEdge &Probe = D.edge(ProbeE);
    NodeInstance *N = NewInst[Probe.From]
                          ->edgeMap(Probe.OrdinalInFrom)
                          .lookup(TupleView(TNew, Probe.KeyCols));
    if (!N) {
      N = G.create(Id, TNew.project(D.node(Id).Bound));
      for (PrimId U : D.unitsOf(Id))
        N->setUnitValues(U, TNew.project(D.prim(U).Cols));
      for (EdgeId E : D.incoming(Id)) {
        const MapEdge &Edge = D.edge(E);
        EdgeMap &Map = NewInst[Edge.From]->edgeMap(Edge.OrdinalInFrom);
        Map.insert(TNew.project(Edge.KeyCols), N);
        N->retain();
      }
    }
    NewInst[Id] = N;
  }
  for (EdgeId E : C.CrossingEdges) {
    const MapEdge &Edge = D.edge(E);
    EdgeMap &Map = NewInst[Edge.From]->edgeMap(Edge.OrdinalInFrom);
    RELC_EXPENSIVE_ASSERT(
        Map.lookup(TupleView(TNew, Edge.KeyCols)) == nullptr &&
        "update would merge with an existing tuple");
    Map.insert(TNew.project(Edge.KeyCols), YInst[Edge.To]);
    // Reference transferred from the detached entry; no retain.
  }

  // Old X instances that no longer represent anything.
  cleanupEmptyX(G, TOld, C, Inst);
  return 1;
}

size_t relc::dupdate(InstanceGraph &G, const Tuple &Pattern,
                     const Tuple &Changes, PlanCache &Plans) {
  MutatorScratch Scratch;
  return dupdate(G, Pattern, Changes, Plans, Scratch);
}
