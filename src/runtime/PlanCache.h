//===- runtime/PlanCache.h - Compile-once plan cache ------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In RELC proper, query planning happens at compile time and each
/// relational operation is emitted as specialized code (Section 4.1).
/// The dynamic engine gets the same economics by planning once per
/// (input columns, output columns) shape and caching the plan; steady-
/// state operations never re-plan.
///
/// The cache is the one piece of relation state that mutates under
/// logically-const queries, so it is also the only place the sharded
/// concurrent facade needs internal synchronization: in thread-safe
/// mode (enableThreadSafe) lookups take a reader lock and misses
/// plan outside any lock, then publish under a writer lock. The
/// default mode stays lock-free for the sequential hot path.
///
/// Even a shared_lock is a read-modify-write on the mutex word, which
/// defeats the epoch-based wait-free read path (concurrent/Epoch.h):
/// with it, plan() would be the last shared write left on the read
/// side. Thread-safe mode therefore fronts the locked map with a small
/// lock-free publication table — insert-only open addressing over
/// atomic pointers to immutable entries — so steady-state plan()
/// lookups are pure loads. The locked map remains the source of truth
/// and the slow path for cold shapes and table overflow.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_RUNTIME_PLANCACHE_H
#define RELC_RUNTIME_PLANCACHE_H

#include "query/CostModel.h"
#include "query/Planner.h"
#include "runtime/Cut.h"
#include "support/Hashing.h"

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace relc {

class PlanCache {
public:
  PlanCache(std::shared_ptr<const Decomposition> D, CostParams Params)
      : D(std::move(D)), Params(std::move(Params)) {}

  const CostParams &costParams() const { return Params; }

  /// Switches the cache to internally-synchronized mode, allowing
  /// concurrent plan()/cut() calls from multiple threads. Returned
  /// plan/cut pointers stay valid across later insertions (node-based
  /// map storage); reoptimize still requires external exclusivity.
  /// One-way and not reversible mid-use.
  void enableThreadSafe() { ThreadSafe = true; }

  /// The cheapest valid plan for the query shape, or nullptr if none
  /// exists (cached either way).
  const QueryPlan *plan(ColumnSet InputCols, ColumnSet OutputCols) {
    auto Key = std::make_pair(InputCols.mask(), OutputCols.mask());
    if (!ThreadSafe) {
      auto It = Plans.find(Key);
      if (It == Plans.end()) {
        std::optional<QueryPlan> P =
            planQuery(*D, InputCols, OutputCols, Params);
        It = Plans.emplace(Key, std::move(P)).first;
      }
      return It->second ? &*It->second : nullptr;
    }
    // Wait-free fast path: pure loads over the publication table.
    // Insert-only open addressing, so probing may stop at the first
    // empty slot.
    size_t H = ShapeHash()(Key);
    for (size_t P = 0; P != FastProbes; ++P) {
      const PublishedShape *E =
          Fast[(H + P) & (FastSlots - 1)].load(std::memory_order_acquire);
      if (!E)
        break;
      if (E->InMask == Key.first && E->OutMask == Key.second)
        return E->Plan;
    }
    const QueryPlan *Resolved = nullptr;
    bool Hit = false;
    {
      std::shared_lock<std::shared_mutex> Lock(Mu);
      auto It = Plans.find(Key);
      if (It != Plans.end()) {
        Resolved = It->second ? &*It->second : nullptr;
        Hit = true;
      }
    }
    if (!Hit) {
      // Plan outside the lock (planning is pure over the immutable
      // decomposition and the cost parameters, which only reoptimize —
      // externally exclusive — replaces); racing planners compute the
      // same plan and the first publication wins.
      std::optional<QueryPlan> P = planQuery(*D, InputCols, OutputCols, Params);
      std::unique_lock<std::shared_mutex> Lock(Mu);
      auto It = Plans.find(Key);
      if (It == Plans.end())
        It = Plans.emplace(Key, std::move(P)).first;
      Resolved = It->second ? &*It->second : nullptr;
    }
    publishShape(Key, Resolved);
    return Resolved;
  }

  /// The cut for a pattern column set (cached).
  const Cut &cut(ColumnSet PatternCols) {
    if (!ThreadSafe) {
      auto It = Cuts.find(PatternCols.mask());
      if (It == Cuts.end())
        It = Cuts.emplace(PatternCols.mask(), computeCut(*D, PatternCols))
                 .first;
      return It->second;
    }
    {
      std::shared_lock<std::shared_mutex> Lock(Mu);
      auto It = Cuts.find(PatternCols.mask());
      if (It != Cuts.end())
        return It->second;
    }
    Cut C = computeCut(*D, PatternCols);
    std::unique_lock<std::shared_mutex> Lock(Mu);
    auto It = Cuts.find(PatternCols.mask());
    if (It == Cuts.end())
      It = Cuts.emplace(PatternCols.mask(), std::move(C)).first;
    return It->second;
  }

  /// Replaces the cost parameters and drops every cached plan so the
  /// next query of each shape replans under the new fanouts. Cuts are
  /// cost-independent and stay. Requires external exclusivity even in
  /// thread-safe mode: no concurrent plan() caller may be live (they
  /// could hold pointers into the dropped plans).
  void reoptimize(CostParams NewParams) {
    Params = std::move(NewParams);
    Plans.clear();
    // Published entries point into the dropped plans; reset the table.
    // Safe to delete outright under this method's external-exclusivity
    // contract (no concurrent plan() caller is live).
    for (std::atomic<const PublishedShape *> &Slot : Fast)
      delete Slot.exchange(nullptr, std::memory_order_relaxed);
  }

  ~PlanCache() {
    for (std::atomic<const PublishedShape *> &Slot : Fast)
      delete Slot.load(std::memory_order_relaxed);
  }

private:
  /// Hashes an (input mask, output mask) query shape. Steady-state
  /// operations hit this map once per call, so it is a hash probe, not
  /// a tree walk.
  struct ShapeHash {
    size_t operator()(const std::pair<uint64_t, uint64_t> &P) const {
      return hashCombine(std::hash<uint64_t>()(P.first),
                         std::hash<uint64_t>()(P.second));
    }
  };

  /// One published (shape -> plan) binding. Immutable once linked into
  /// the table; the pointed-to plan lives in Plans (node-based, so
  /// stable across later insertions).
  struct PublishedShape {
    uint64_t InMask;
    uint64_t OutMask;
    const QueryPlan *Plan; // null is a valid cached answer ("no plan")
  };

  static constexpr size_t FastSlots = 64; // power of two
  static constexpr size_t FastProbes = 16;

  /// Best-effort publication: first empty probe slot wins; a full
  /// probe window simply leaves the shape on the locked slow path.
  void publishShape(const std::pair<uint64_t, uint64_t> &Key,
                    const QueryPlan *Plan) {
    size_t H = ShapeHash()(Key);
    for (size_t P = 0; P != FastProbes; ++P) {
      std::atomic<const PublishedShape *> &Slot = Fast[(H + P) & (FastSlots - 1)];
      const PublishedShape *Cur = Slot.load(std::memory_order_acquire);
      if (Cur) {
        if (Cur->InMask == Key.first && Cur->OutMask == Key.second)
          return; // someone already published this shape
        continue;
      }
      auto *E = new PublishedShape{Key.first, Key.second, Plan};
      const PublishedShape *Expected = nullptr;
      if (Slot.compare_exchange_strong(Expected, E, std::memory_order_release,
                                       std::memory_order_acquire))
        return;
      delete E; // lost the race for this slot; retry on the next one
      if (Expected->InMask == Key.first && Expected->OutMask == Key.second)
        return;
    }
  }

  std::shared_ptr<const Decomposition> D;
  CostParams Params;
  std::unordered_map<std::pair<uint64_t, uint64_t>, std::optional<QueryPlan>,
                     ShapeHash>
      Plans;
  std::unordered_map<uint64_t, Cut> Cuts;
  /// Guards Plans and Cuts in thread-safe mode only.
  std::shared_mutex Mu;
  /// Lock-free publication table fronting Plans in thread-safe mode.
  std::array<std::atomic<const PublishedShape *>, FastSlots> Fast{};
  bool ThreadSafe = false;
};

} // namespace relc

#endif // RELC_RUNTIME_PLANCACHE_H
