//===- runtime/PlanCache.h - Compile-once plan cache ------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In RELC proper, query planning happens at compile time and each
/// relational operation is emitted as specialized code (Section 4.1).
/// The dynamic engine gets the same economics by planning once per
/// (input columns, output columns) shape and caching the plan; steady-
/// state operations never re-plan.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_RUNTIME_PLANCACHE_H
#define RELC_RUNTIME_PLANCACHE_H

#include "query/CostModel.h"
#include "query/Planner.h"
#include "runtime/Cut.h"
#include "support/Hashing.h"

#include <memory>
#include <unordered_map>

namespace relc {

class PlanCache {
public:
  PlanCache(std::shared_ptr<const Decomposition> D, CostParams Params)
      : D(std::move(D)), Params(std::move(Params)) {}

  const CostParams &costParams() const { return Params; }

  /// The cheapest valid plan for the query shape, or nullptr if none
  /// exists (cached either way).
  const QueryPlan *plan(ColumnSet InputCols, ColumnSet OutputCols) {
    auto Key = std::make_pair(InputCols.mask(), OutputCols.mask());
    auto It = Plans.find(Key);
    if (It == Plans.end()) {
      std::optional<QueryPlan> P = planQuery(*D, InputCols, OutputCols, Params);
      It = Plans.emplace(Key, std::move(P)).first;
    }
    return It->second ? &*It->second : nullptr;
  }

  /// The cut for a pattern column set (cached).
  const Cut &cut(ColumnSet PatternCols) {
    auto It = Cuts.find(PatternCols.mask());
    if (It == Cuts.end())
      It = Cuts.emplace(PatternCols.mask(), computeCut(*D, PatternCols)).first;
    return It->second;
  }

  /// Replaces the cost parameters and drops every cached plan so the
  /// next query of each shape replans under the new fanouts. Cuts are
  /// cost-independent and stay.
  void reoptimize(CostParams NewParams) {
    Params = std::move(NewParams);
    Plans.clear();
  }

private:
  /// Hashes an (input mask, output mask) query shape. Steady-state
  /// operations hit this map once per call, so it is a hash probe, not
  /// a tree walk.
  struct ShapeHash {
    size_t operator()(const std::pair<uint64_t, uint64_t> &P) const {
      return hashCombine(std::hash<uint64_t>()(P.first),
                         std::hash<uint64_t>()(P.second));
    }
  };

  std::shared_ptr<const Decomposition> D;
  CostParams Params;
  std::unordered_map<std::pair<uint64_t, uint64_t>, std::optional<QueryPlan>,
                     ShapeHash>
      Plans;
  std::unordered_map<uint64_t, Cut> Cuts;
};

} // namespace relc

#endif // RELC_RUNTIME_PLANCACHE_H
