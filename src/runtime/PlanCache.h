//===- runtime/PlanCache.h - Compile-once plan cache ------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In RELC proper, query planning happens at compile time and each
/// relational operation is emitted as specialized code (Section 4.1).
/// The dynamic engine gets the same economics by planning once per
/// (input columns, output columns) shape and caching the plan; steady-
/// state operations never re-plan.
///
/// The cache is the one piece of relation state that mutates under
/// logically-const queries, so it is also the only place the sharded
/// concurrent facade needs internal synchronization: in thread-safe
/// mode (enableThreadSafe) lookups take a reader lock and misses
/// plan outside any lock, then publish under a writer lock. The
/// default mode stays lock-free for the sequential hot path.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_RUNTIME_PLANCACHE_H
#define RELC_RUNTIME_PLANCACHE_H

#include "query/CostModel.h"
#include "query/Planner.h"
#include "runtime/Cut.h"
#include "support/Hashing.h"

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace relc {

class PlanCache {
public:
  PlanCache(std::shared_ptr<const Decomposition> D, CostParams Params)
      : D(std::move(D)), Params(std::move(Params)) {}

  const CostParams &costParams() const { return Params; }

  /// Switches the cache to internally-synchronized mode, allowing
  /// concurrent plan()/cut() calls from multiple threads. Returned
  /// plan/cut pointers stay valid across later insertions (node-based
  /// map storage); reoptimize still requires external exclusivity.
  /// One-way and not reversible mid-use.
  void enableThreadSafe() { ThreadSafe = true; }

  /// The cheapest valid plan for the query shape, or nullptr if none
  /// exists (cached either way).
  const QueryPlan *plan(ColumnSet InputCols, ColumnSet OutputCols) {
    auto Key = std::make_pair(InputCols.mask(), OutputCols.mask());
    if (!ThreadSafe) {
      auto It = Plans.find(Key);
      if (It == Plans.end()) {
        std::optional<QueryPlan> P =
            planQuery(*D, InputCols, OutputCols, Params);
        It = Plans.emplace(Key, std::move(P)).first;
      }
      return It->second ? &*It->second : nullptr;
    }
    {
      std::shared_lock<std::shared_mutex> Lock(Mu);
      auto It = Plans.find(Key);
      if (It != Plans.end())
        return It->second ? &*It->second : nullptr;
    }
    // Plan outside the lock (planning is pure over the immutable
    // decomposition and the cost parameters, which only reoptimize —
    // externally exclusive — replaces); racing planners compute the
    // same plan and the first publication wins.
    std::optional<QueryPlan> P = planQuery(*D, InputCols, OutputCols, Params);
    std::unique_lock<std::shared_mutex> Lock(Mu);
    auto It = Plans.find(Key);
    if (It == Plans.end())
      It = Plans.emplace(Key, std::move(P)).first;
    return It->second ? &*It->second : nullptr;
  }

  /// The cut for a pattern column set (cached).
  const Cut &cut(ColumnSet PatternCols) {
    if (!ThreadSafe) {
      auto It = Cuts.find(PatternCols.mask());
      if (It == Cuts.end())
        It = Cuts.emplace(PatternCols.mask(), computeCut(*D, PatternCols))
                 .first;
      return It->second;
    }
    {
      std::shared_lock<std::shared_mutex> Lock(Mu);
      auto It = Cuts.find(PatternCols.mask());
      if (It != Cuts.end())
        return It->second;
    }
    Cut C = computeCut(*D, PatternCols);
    std::unique_lock<std::shared_mutex> Lock(Mu);
    auto It = Cuts.find(PatternCols.mask());
    if (It == Cuts.end())
      It = Cuts.emplace(PatternCols.mask(), std::move(C)).first;
    return It->second;
  }

  /// Replaces the cost parameters and drops every cached plan so the
  /// next query of each shape replans under the new fanouts. Cuts are
  /// cost-independent and stay. Requires external exclusivity even in
  /// thread-safe mode: no concurrent plan() caller may be live (they
  /// could hold pointers into the dropped plans).
  void reoptimize(CostParams NewParams) {
    Params = std::move(NewParams);
    Plans.clear();
  }

private:
  /// Hashes an (input mask, output mask) query shape. Steady-state
  /// operations hit this map once per call, so it is a hash probe, not
  /// a tree walk.
  struct ShapeHash {
    size_t operator()(const std::pair<uint64_t, uint64_t> &P) const {
      return hashCombine(std::hash<uint64_t>()(P.first),
                         std::hash<uint64_t>()(P.second));
    }
  };

  std::shared_ptr<const Decomposition> D;
  CostParams Params;
  std::unordered_map<std::pair<uint64_t, uint64_t>, std::optional<QueryPlan>,
                     ShapeHash>
      Plans;
  std::unordered_map<uint64_t, Cut> Cuts;
  /// Guards Plans and Cuts in thread-safe mode only.
  std::shared_mutex Mu;
  bool ThreadSafe = false;
};

} // namespace relc

#endif // RELC_RUNTIME_PLANCACHE_H
