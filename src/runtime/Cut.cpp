//===- runtime/Cut.cpp - Decomposition cuts ----------------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "runtime/Cut.h"

#include <cassert>

using namespace relc;

Cut relc::computeCut(const Decomposition &D, ColumnSet PatternCols) {
  Cut Result;
  Result.PatternCols = PatternCols;
  Result.InY.resize(D.numNodes());
  const FuncDeps &Fds = D.spec()->fds();
  for (NodeId Id = 0; Id != D.numNodes(); ++Id)
    Result.InY[Id] = Fds.implies(D.node(Id).Bound, PatternCols);
  for (EdgeId E = 0; E != D.numEdges(); ++E) {
    const MapEdge &Edge = D.edge(E);
    // Adequacy: a child binds at least its parent's columns, so the FD
    // B_child → C follows from B_parent → C; edges never cross Y → X.
    assert(!(Result.InY[Edge.From] && !Result.InY[Edge.To]) &&
           "cut violated: edge from Y into X");
    if (Result.crossing(Edge))
      Result.CrossingEdges.push_back(E);
  }
  return Result;
}
