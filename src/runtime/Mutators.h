//===- runtime/Mutators.h - dinsert / dremove / dupdate ---------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutation operations of Sections 4.4-4.5, implemented over live
/// instance graphs:
///
///  - dinsert: walks nodes in topological order, finding or creating
///    the instance for the tuple's projection at each node and linking
///    it through every incoming edge (Fig. 9).
///  - dremove: queries the full matching tuples, then per tuple breaks
///    the edges crossing the pattern's cut; unreachable instances are
///    reference-counted away, and interior nodes left "devoid of
///    children" are cleaned up.
///  - dupdate: the paper's restricted in-place update (the pattern is a
///    key and the changes are disjoint from it): detaches the below-cut
///    subgraph, rewrites bound valuations/unit values, repositions
///    entries whose keys changed, and reattaches — reusing every node.
///
/// Preconditions mirror Lemma 4: the tuple/pattern shapes are asserted,
/// and FD preservation is the caller's obligation (violations trip
/// asserts in debug builds).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_RUNTIME_MUTATORS_H
#define RELC_RUNTIME_MUTATORS_H

#include "instance/InstanceGraph.h"
#include "rel/BindingFrame.h"
#include "runtime/PlanCache.h"

#include <vector>

namespace relc {

/// Reusable working storage for the mutators. Each operation needs a
/// handful of per-node instance tables and (for remove/update) a match
/// list and an execution frame; a caller holding one scratch across
/// operations (SynthesizedRelation does) makes the steady-state
/// mutation loops allocation-free apart from the structural
/// allocations the mutation itself requires.
struct MutatorScratch {
  BindingFrame Frame;
  std::vector<NodeInstance *> Inst;
  std::vector<NodeInstance *> YInst;
  std::vector<NodeInstance *> NewInst;
  std::vector<Tuple> Matches;
};

/// Inserts full tuple \p T (columns must equal the relation's).
/// \returns true if the relation changed (false: duplicate).
bool dinsert(InstanceGraph &G, const Tuple &T, MutatorScratch &Scratch);
bool dinsert(InstanceGraph &G, const Tuple &T);

/// Removes all tuples extending \p Pattern. \returns how many were
/// removed.
size_t dremove(InstanceGraph &G, const Tuple &Pattern, PlanCache &Plans,
               MutatorScratch &Scratch);
size_t dremove(InstanceGraph &G, const Tuple &Pattern, PlanCache &Plans);

/// Applies \p Changes to the tuple matching \p Pattern. Requires
/// dom(Pattern) to be a key and dom(Changes) ∩ dom(Pattern) = ∅
/// (Section 4.5's restriction guaranteeing no node merging). \returns
/// the number of tuples updated (0 or 1, since the pattern is a key).
size_t dupdate(InstanceGraph &G, const Tuple &Pattern, const Tuple &Changes,
               PlanCache &Plans, MutatorScratch &Scratch);
size_t dupdate(InstanceGraph &G, const Tuple &Pattern, const Tuple &Changes,
               PlanCache &Plans);

} // namespace relc

#endif // RELC_RUNTIME_MUTATORS_H
