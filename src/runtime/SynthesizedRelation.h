//===- runtime/SynthesizedRelation.h - Public relation facade ---*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthesized data representation a client programs against: the
/// five relational operations of Section 2 (empty/insert/remove/update/
/// query) executed over a decomposition instance, with query planning
/// cached per operation shape. This is the dynamic-engine counterpart
/// of the C++ class RELC emits (the code generator in codegen/ produces
/// the static version).
///
/// Correctness contract (Theorem 5): provided each operation satisfies
/// the FD preconditions of Lemma 4, the represented relation equals the
/// one the relational specification prescribes. Tests assert this via
/// the α function after every operation.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_RUNTIME_SYNTHESIZEDRELATION_H
#define RELC_RUNTIME_SYNTHESIZEDRELATION_H

#include "decomp/Adequacy.h"
#include "instance/WellFormed.h"
#include "rel/Relation.h"
#include "runtime/Mutators.h"
#include "runtime/Transaction.h"

#include <memory>
#include <vector>

namespace relc {

class SynthesizedRelation {
public:
  /// Takes ownership of \p D, which must be adequate for its spec —
  /// inadequate decompositions cannot represent all FD-respecting
  /// relations (Lemma 1) and are refused (assert). Use checkAdequacy
  /// beforehand for a recoverable check.
  explicit SynthesizedRelation(Decomposition D,
                               CostParams Params = CostParams());

  const Decomposition &decomp() const { return *D; }
  const RelSpecRef &spec() const { return D->spec(); }
  const Catalog &catalog() const { return D->spec()->catalog(); }

  //===--------------------------------------------------------------------===
  // The relational interface (Section 2).
  //===--------------------------------------------------------------------===

  /// insert r t. \p T must bind every column. \returns true if the
  /// relation changed (false: duplicate). Precondition: r ∪ {t} |= ∆.
  bool insert(const Tuple &T);

  /// remove r s. \returns the number of tuples removed.
  size_t remove(const Tuple &Pattern);

  /// update r s u. \p Pattern must be a key; \p Changes disjoint from
  /// it (Section 4.5's restriction). \returns tuples updated (0 or 1).
  /// Precondition: the updated relation satisfies ∆.
  size_t update(const Tuple &Pattern, const Tuple &Changes);

  /// Atomic read-modify-write: \p Key must be a key pattern (it
  /// functionally determines every column). \p Fn is called exactly
  /// once — with the matching tuple's binding frame if one exists, or
  /// nullptr if not — and fills \p Values with new values for non-key
  /// columns. If no tuple matched, \p Values must bind every non-key
  /// column and Key ∪ Values is inserted; otherwise the matching tuple
  /// is updated with \p Values (which may bind any subset; an empty
  /// \p Values leaves the tuple unchanged). \returns true if a new
  /// tuple was inserted. \p Fn must not operate on this relation.
  ///
  /// This is the one implementation of the upsert primitive: the
  /// sequential engine is trivially atomic, and ConcurrentRelation
  /// exposes the same operation under a single shard writer lock.
  bool upsert(const Tuple &Key,
              function_ref<void(const BindingFrame *, Tuple &)> Fn);

  /// transact: applies \p Ops in order as ONE unit — every op applies
  /// or none does. Structural preconditions (key patterns, disjoint
  /// changes, full insert tuples) are asserted exactly as for the
  /// standalone methods; FD conflicts — which the standalone methods
  /// treat as caller bugs — are *detected* here before any mutation of
  /// the offending op, the already-applied prefix is rolled back via
  /// the recorded inverse ops, and the failing op's index is reported.
  /// An upsert op whose key matches nothing and whose callback binds
  /// fewer than all non-key columns also aborts the batch (the
  /// conditional-abort hook; the standalone upsert asserts instead).
  TxResult transact(const std::vector<TxOp> &Ops);

  /// As above, with the batch assembled by \p Build (see TxBatch).
  TxResult transact(function_ref<void(TxBatch &)> Build);

  /// One op of a transact batch. On success returns true, having
  /// appended to \p Undo the inverse ops that — applied in reverse
  /// order via applyTxUndo — restore the prior state. On FD conflict
  /// (or upsert conditional abort) returns false with the relation
  /// unchanged by this op. Building block for transact, shared with
  /// ConcurrentRelation::transact, whose undo log spans shards.
  bool applyTxOp(const TxOp &Op, std::vector<TxOp> &Undo);

  /// Applies one recorded inverse op (only Insert/Remove/Update kinds
  /// appear in undo logs).
  void applyTxUndo(const TxOp &U);

  /// True if inserting full tuple \p T would violate an FD against a
  /// live tuple other than \p Exclude: some tuple agrees with T on a
  /// dependency's left-hand side but disagrees on its right. An exact
  /// duplicate of \p T is NOT a conflict (insert would no-op). Pass
  /// \p Exclude when validating an update, to ignore the tuple being
  /// rewritten.
  bool insertConflictsFds(const Tuple &T, const Tuple *Exclude = nullptr) const;

  /// query r s C: the projection onto \p OutputCols of tuples extending
  /// \p Pattern, deduplicated (matches the relational semantics).
  std::vector<Tuple> query(const Tuple &Pattern, ColumnSet OutputCols) const;

  /// Streaming query: calls \p Fn per matching tuple with a binding of
  /// at least OutputCols ∪ pattern columns; \p Fn returns false to stop.
  /// Constant space, no deduplication (Section 4.1's iterator
  /// semantics).
  void scan(const Tuple &Pattern, ColumnSet OutputCols,
            function_ref<bool(const Tuple &)> Fn) const;

  /// As scan, but delivers each result as a borrowed BindingFrame —
  /// no tuple is materialized at all; callers read columns straight
  /// from the frame's registers (or project exactly what they keep).
  /// The frame reference is valid only for the duration of each call.
  void scanFrames(const Tuple &Pattern, ColumnSet OutputCols,
                  function_ref<bool(const BindingFrame &)> Fn) const;

  /// True if some tuple extends \p Pattern.
  bool contains(const Tuple &Pattern) const;

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }
  void clear();

  //===--------------------------------------------------------------------===
  // Introspection (tests, benches, the autotuner).
  //===--------------------------------------------------------------------===

  /// The cached plan for a query shape (nullptr if no valid plan).
  const QueryPlan *planFor(ColumnSet InputCols, ColumnSet OutputCols) const;

  /// α(d): the relation currently represented (test-sized relations).
  Relation toRelation() const { return abstractionOf(); }

  /// Dynamic Fig. 5 check; cheap enough for test-sized relations only.
  WfResult checkWellFormed() const { return relc::checkWellFormed(Graph); }

  /// Live NodeInstances (memory accounting / leak checks).
  size_t liveInstances() const { return Graph.liveInstances(); }

  /// Allocator counters of this relation's private slab arena: slab
  /// count and bytes retained, live blocks (nodes + container cells),
  /// cumulative recycles. Server stats and benches read these.
  ArenaStats arenaStats() const { return Arena->stats(); }

  /// Measures per-edge fanout on the live instance and returns cost
  /// parameters seeded with it (profiling mode of Section 4.3).
  CostParams profileCostParams() const;

  /// Profiling-guided replanning: re-measures the live fanouts and
  /// clears the plan cache, so subsequent queries replan against the
  /// relation's actual shape (Section 4.3 suggests counts "recorded as
  /// part of a profiling run" — this is the online version). Call after
  /// the relation reaches a representative size.
  void reoptimize() { Plans.reoptimize(profileCostParams()); }

  /// As above with caller-supplied parameters.
  void reoptimize(CostParams Params) { Plans.reoptimize(std::move(Params)); }

  //===--------------------------------------------------------------------===
  // Concurrent use (src/concurrent/ConcurrentRelation).
  //===--------------------------------------------------------------------===

  /// Prepares this relation for concurrent const reads: queries are
  /// reentrant and touch no relation state except the memoizing plan
  /// cache, which this switches to internally-synchronized mode. After
  /// the call, any number of threads may run scan/scanFrames/query/
  /// contains concurrently with each other (but not with mutations —
  /// writer exclusion stays the caller's job; ConcurrentRelation does
  /// it with one shared_mutex per shard). One-way.
  void enableConcurrentReads() { Plans.enableThreadSafe(); }

  /// Routes freed NodeInstance memory through the global epoch retire
  /// list (concurrent/Epoch.h): mutators destruct unlinked nodes
  /// eagerly but return the memory to the allocator only after every
  /// epoch reader's grace period. Enabled by ConcurrentRelation
  /// alongside enableConcurrentReads(); one-way.
  void enableDeferredReclamation() { Graph.enableDeferredReclamation(); }

  /// The live instance graph (concurrent facade + tests; read-only).
  const InstanceGraph &instanceGraph() const { return Graph; }

  /// Detaches this relation's arena from the epoch hand-back protocol
  /// (SlabArena::freeze). Called by ConcurrentRelation when the
  /// instance is frozen into a COW snapshot: reads continue against
  /// the frozen state, but in-flight deferred hand-backs from earlier
  /// mutations must drop at the generation check instead of landing in
  /// a pending stack no writer will ever drain. Caller holds the shard
  /// stripe exclusively.
  void freezeArena() { Arena->freeze(); }

private:
  Relation abstractionOf() const;

  std::shared_ptr<const Decomposition> D;
  /// Private slab arena backing every NodeInstance and container cell
  /// of this relation. One arena per relation means one arena per
  /// ConcurrentRelation shard: all allocation happens under the shard's
  /// writer stripe, pages are first touched by the threads that use
  /// them, and clear() rewinds in O(slabs). Shared with the instance
  /// graph, which hands it to epoch-deferred free contexts.
  std::shared_ptr<SlabArena> Arena;
  mutable PlanCache Plans;
  InstanceGraph Graph;
  /// Reused by insert/remove/update so steady-state mutation loops do
  /// not re-allocate their per-node working tables. Like the plan
  /// cache, this makes operations non-reentrant and the object not
  /// thread-safe for concurrent mutation (queries use stack frames and
  /// stay reentrant).
  MutatorScratch Scratch;
  size_t Size = 0;
};

} // namespace relc

#endif // RELC_RUNTIME_SYNTHESIZEDRELATION_H
