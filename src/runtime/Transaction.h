//===- runtime/Transaction.h - Multi-op transact batches --------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operation vocabulary of `transact`, the atomic multi-op batch
/// over a synthesized relation: a TxOp is one insert/remove/update/
/// upsert with the same contracts as the standalone methods, a TxBatch
/// assembles a vector of them, and a TxResult reports whether the
/// batch committed (all ops applied, in order) or aborted (no op
/// applied — the engine rolls back via recorded inverse ops).
///
/// The batch either commits whole or leaves the relation untouched:
/// SynthesizedRelation::transact gives the sequential semantics, and
/// ConcurrentRelation::transact runs the same batch under two-phase
/// locking over exactly the touched shard stripes (docs/CONCURRENCY.md
/// has the lock matrix and the serializability argument).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_RUNTIME_TRANSACTION_H
#define RELC_RUNTIME_TRANSACTION_H

#include "rel/BindingFrame.h"
#include "rel/Tuple.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace relc {

/// One operation of a transact batch. Build these through the static
/// factories (or TxBatch); the Kind decides which fields are read.
struct TxOp {
  enum Kind { Insert, Remove, Update, Upsert };

  Kind Op = Insert;
  /// Insert: the full tuple. Remove: the pattern (any columns).
  /// Update/Upsert: the key pattern.
  Tuple A;
  /// Update only: the changes (disjoint from the key).
  Tuple B;
  /// Upsert only: the read-modify-write callback, with the contract of
  /// SynthesizedRelation::upsert. Owning (unlike the standalone
  /// upsert's function_ref) because a batch outlives the expression
  /// that built it. One transact-specific extension: when no tuple
  /// matches and the callback binds fewer than all non-key columns,
  /// the batch ABORTS instead of asserting — the conditional-abort
  /// escape hatch for transfer-style transactions.
  std::function<void(const BindingFrame *, Tuple &)> Fn;
  /// Upsert only, alternative to Fn (exactly one of the two is set): a
  /// CHECKED read-modify-write callback that may veto the whole batch.
  /// Same contract as Fn, plus: returning false aborts the transaction
  /// with nothing applied (the declarative "abort on overdraft" /
  /// guard hook — the server's wire `add` op compiles to this).
  std::function<bool(const BindingFrame *, Tuple &)> FnChecked;

  static TxOp insert(Tuple T) {
    TxOp Op;
    Op.Op = Insert;
    Op.A = std::move(T);
    return Op;
  }
  static TxOp remove(Tuple Pattern) {
    TxOp Op;
    Op.Op = Remove;
    Op.A = std::move(Pattern);
    return Op;
  }
  static TxOp update(Tuple Key, Tuple Changes) {
    TxOp Op;
    Op.Op = Update;
    Op.A = std::move(Key);
    Op.B = std::move(Changes);
    return Op;
  }
  static TxOp upsert(Tuple Key,
                     std::function<void(const BindingFrame *, Tuple &)> Fn) {
    TxOp Op;
    Op.Op = Upsert;
    Op.A = std::move(Key);
    Op.Fn = std::move(Fn);
    return Op;
  }
  static TxOp
  upsertChecked(Tuple Key,
                std::function<bool(const BindingFrame *, Tuple &)> Fn) {
    TxOp Op;
    Op.Op = Upsert;
    Op.A = std::move(Key);
    Op.FnChecked = std::move(Fn);
    return Op;
  }

  /// Runs whichever upsert callback is set; false = abort the batch.
  bool runUpsertFn(const BindingFrame *F, Tuple &V) const {
    assert((Fn || FnChecked) && "upsert op needs a callback");
    if (FnChecked)
      return FnChecked(F, V);
    Fn(F, V);
    return true;
  }
};

/// Outcome of a transact batch.
struct TxResult {
  /// True if every op applied; false if the batch aborted with the
  /// relation rolled back to its pre-transact state.
  bool Committed = false;
  /// Index of the aborting op when !Committed.
  size_t FailedOp = 0;
  /// Commit ticket from ConcurrentRelation::transact, assigned at the
  /// transaction's linearization point (while every touched stripe is
  /// still held): for any two conflicting transactions, ticket order
  /// equals serialization order — sorting committed logs by ticket
  /// yields a legal serial history. 0 from the sequential engine.
  uint64_t Ticket = 0;

  explicit operator bool() const { return Committed; }
};

/// Fluent assembly of a transact batch:
///
///   Rel.transact([&](TxBatch &Tx) {
///     Tx.upsert(From, Debit);
///     Tx.upsert(To, Credit);
///   });
class TxBatch {
public:
  TxBatch &insert(Tuple T) {
    Batch.push_back(TxOp::insert(std::move(T)));
    return *this;
  }
  TxBatch &remove(Tuple Pattern) {
    Batch.push_back(TxOp::remove(std::move(Pattern)));
    return *this;
  }
  TxBatch &update(Tuple Key, Tuple Changes) {
    Batch.push_back(TxOp::update(std::move(Key), std::move(Changes)));
    return *this;
  }
  TxBatch &upsert(Tuple Key,
                  std::function<void(const BindingFrame *, Tuple &)> Fn) {
    Batch.push_back(TxOp::upsert(std::move(Key), std::move(Fn)));
    return *this;
  }
  TxBatch &
  upsertChecked(Tuple Key,
                std::function<bool(const BindingFrame *, Tuple &)> Fn) {
    Batch.push_back(TxOp::upsertChecked(std::move(Key), std::move(Fn)));
    return *this;
  }

  const std::vector<TxOp> &ops() const { return Batch; }
  size_t size() const { return Batch.size(); }
  bool empty() const { return Batch.empty(); }

private:
  std::vector<TxOp> Batch;
};

} // namespace relc

#endif // RELC_RUNTIME_TRANSACTION_H
