//===- runtime/SynthesizedRelation.cpp - Public relation facade --------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "runtime/SynthesizedRelation.h"

#include "instance/Abstraction.h"
#include "query/Exec.h"

#include <unordered_set>

using namespace relc;

SynthesizedRelation::SynthesizedRelation(Decomposition D, CostParams Params)
    : D(std::make_shared<Decomposition>(std::move(D))),
      Plans(this->D, std::move(Params)), Graph(this->D) {
  [[maybe_unused]] AdequacyResult A = checkAdequacy(*this->D);
  assert(A.Ok && "decomposition is not adequate for its specification");
}

bool SynthesizedRelation::insert(const Tuple &T) {
  bool Changed = dinsert(Graph, T, Scratch);
  if (Changed)
    ++Size;
  return Changed;
}

size_t SynthesizedRelation::remove(const Tuple &Pattern) {
  size_t Removed = dremove(Graph, Pattern, Plans, Scratch);
  assert(Removed <= Size && "removed more tuples than were present");
  Size -= Removed;
  return Removed;
}

size_t SynthesizedRelation::update(const Tuple &Pattern,
                                   const Tuple &Changes) {
  return dupdate(Graph, Pattern, Changes, Plans, Scratch);
}

bool SynthesizedRelation::upsert(
    const Tuple &Key, function_ref<void(const BindingFrame *, Tuple &)> Fn) {
  assert(spec()->fds().isKey(Key.columns(), spec()->columns()) &&
         "upsert pattern must be a key");
  ColumnSet Rest = spec()->columns().minus(Key.columns());
  Tuple Values;
  bool Found = false;
  // The pattern is a key: at most one match. Fn runs inside the scan,
  // where the borrowed frame is valid; the mutation itself waits until
  // the scan (and its container iterators) is finished.
  scanFrames(Key, Rest, [&](const BindingFrame &F) {
    Found = true;
    Fn(&F, Values);
    return false;
  });
  if (!Found) {
    Fn(nullptr, Values);
    assert(Values.columns() == Rest &&
           "upsert must bind every non-key column when inserting");
    [[maybe_unused]] bool Changed = insert(Key.merge(Values));
    assert(Changed && "upsert insert collided with an existing tuple");
    return true;
  }
  assert(Values.columns().subsetOf(Rest) &&
         "upsert values must not rebind key columns");
  if (!Values.empty())
    update(Key, Values);
  return false;
}

std::vector<Tuple> SynthesizedRelation::query(const Tuple &Pattern,
                                              ColumnSet OutputCols) const {
  std::vector<Tuple> Result;
  std::unordered_set<Tuple> Seen;
  // Project straight off the binding frame: one tuple per result, no
  // intermediate full-binding materialization.
  scanFrames(Pattern, OutputCols, [&](const BindingFrame &F) {
    Tuple Projected = F.toTuple(OutputCols);
    if (Seen.insert(Projected).second)
      Result.push_back(std::move(Projected));
    return true;
  });
  return Result;
}

void SynthesizedRelation::scan(const Tuple &Pattern, ColumnSet OutputCols,
                               function_ref<bool(const Tuple &)> Fn) const {
  scanFrames(Pattern, OutputCols, [&](const BindingFrame &F) {
    return Fn(F.toTuple(F.bound()));
  });
}

void SynthesizedRelation::scanFrames(
    const Tuple &Pattern, ColumnSet OutputCols,
    function_ref<bool(const BindingFrame &)> Fn) const {
  const QueryPlan *Plan = Plans.plan(Pattern.columns(), OutputCols);
  assert(Plan && "no valid plan for this query shape");
  // The frame is a stack local (no heap traffic for catalogs within
  // BindingFrame::InlineColumns), so scans stay reentrant: a scan
  // callback may issue nested scans on the same relation.
  BindingFrame Frame;
  execPlan(*Plan, Graph, Pattern, Frame, Fn);
}

bool SynthesizedRelation::contains(const Tuple &Pattern) const {
  bool Found = false;
  scanFrames(Pattern, ColumnSet(), [&](const BindingFrame &) {
    Found = true;
    return false;
  });
  return Found;
}

void SynthesizedRelation::clear() {
  Graph.clear();
  Size = 0;
}

const QueryPlan *SynthesizedRelation::planFor(ColumnSet InputCols,
                                              ColumnSet OutputCols) const {
  return Plans.plan(InputCols, OutputCols);
}

Relation SynthesizedRelation::abstractionOf() const {
  return abstractInstance(Graph);
}

CostParams SynthesizedRelation::profileCostParams() const {
  // Average container size per edge = total entries / live parent
  // instances, measured by one walk over the instance graph.
  struct Totals {
    double Entries = 0;
    double Parents = 0;
  };
  std::vector<Totals> PerEdge(D->numEdges());
  std::vector<const NodeInstance *> Work = {Graph.root()};
  std::unordered_set<const NodeInstance *> Seen = {Graph.root()};
  while (!Work.empty()) {
    const NodeInstance *N = Work.back();
    Work.pop_back();
    for (EdgeId E : D->outgoing(N->id())) {
      const MapEdge &Edge = D->edge(E);
      const EdgeMap &Map = N->edgeMap(Edge.OrdinalInFrom);
      PerEdge[E].Entries += static_cast<double>(Map.size());
      PerEdge[E].Parents += 1;
      Map.forEach([&](const Tuple &, NodeInstance *Child) {
        if (Seen.insert(Child).second)
          Work.push_back(Child);
        return true;
      });
    }
  }
  CostParams Params = Plans.costParams();
  for (EdgeId E = 0; E != D->numEdges(); ++E)
    if (PerEdge[E].Parents > 0)
      Params.setFanout(E, PerEdge[E].Entries / PerEdge[E].Parents);
  return Params;
}
