//===- runtime/SynthesizedRelation.cpp - Public relation facade --------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "runtime/SynthesizedRelation.h"

#include "instance/Abstraction.h"
#include "query/Exec.h"

#include <algorithm>
#include <unordered_set>

using namespace relc;

SynthesizedRelation::SynthesizedRelation(Decomposition D, CostParams Params)
    : D(std::make_shared<Decomposition>(std::move(D))),
      Arena(std::make_shared<SlabArena>()), Plans(this->D, std::move(Params)),
      Graph(this->D, Arena) {
  [[maybe_unused]] AdequacyResult A = checkAdequacy(*this->D);
  assert(A.Ok && "decomposition is not adequate for its specification");
}

bool SynthesizedRelation::insert(const Tuple &T) {
  bool Changed = dinsert(Graph, T, Scratch);
  if (Changed)
    ++Size;
  return Changed;
}

size_t SynthesizedRelation::remove(const Tuple &Pattern) {
  size_t Removed = dremove(Graph, Pattern, Plans, Scratch);
  assert(Removed <= Size && "removed more tuples than were present");
  Size -= Removed;
  return Removed;
}

size_t SynthesizedRelation::update(const Tuple &Pattern,
                                   const Tuple &Changes) {
  return dupdate(Graph, Pattern, Changes, Plans, Scratch);
}

bool SynthesizedRelation::upsert(
    const Tuple &Key, function_ref<void(const BindingFrame *, Tuple &)> Fn) {
  assert(spec()->fds().isKey(Key.columns(), spec()->columns()) &&
         "upsert pattern must be a key");
  ColumnSet Rest = spec()->columns().minus(Key.columns());
  Tuple Values;
  bool Found = false;
  // The pattern is a key: at most one match. Fn runs inside the scan,
  // where the borrowed frame is valid; the mutation itself waits until
  // the scan (and its container iterators) is finished.
  scanFrames(Key, Rest, [&](const BindingFrame &F) {
    Found = true;
    Fn(&F, Values);
    return false;
  });
  if (!Found) {
    Fn(nullptr, Values);
    assert(Values.columns() == Rest &&
           "upsert must bind every non-key column when inserting");
    [[maybe_unused]] bool Changed = insert(Key.merge(Values));
    assert(Changed && "upsert insert collided with an existing tuple");
    return true;
  }
  assert(Values.columns().subsetOf(Rest) &&
         "upsert values must not rebind key columns");
  if (!Values.empty())
    update(Key, Values);
  return false;
}

bool SynthesizedRelation::insertConflictsFds(const Tuple &T,
                                             const Tuple *Exclude) const {
  ColumnSet All = spec()->columns();
  assert(T.columns() == All && "conflict check needs a full tuple");
  // A relation satisfies ∆ iff it satisfies each declared dependency,
  // so probing the declared ones (not the entailed closure) is enough:
  // inserting T violates X → Y iff some live tuple agrees with T on X
  // but not on Y.
  for (const FuncDep &Fd : spec()->fds().deps()) {
    Tuple Probe = T.project(Fd.Lhs);
    Tuple Rhs = T.project(Fd.Rhs);
    bool Conflict = false;
    scanFrames(Probe, All, [&](const BindingFrame &F) {
      Tuple Cur = F.toTuple(All);
      if (Exclude && Cur == *Exclude)
        return true;
      if (!Cur.extends(Rhs)) {
        Conflict = true;
        return false;
      }
      return true;
    });
    if (Conflict)
      return true;
  }
  return false;
}

bool SynthesizedRelation::applyTxOp(const TxOp &Op, std::vector<TxOp> &Undo) {
  ColumnSet All = spec()->columns();
  switch (Op.Op) {
  case TxOp::Insert: {
    assert(Op.A.columns() == All && "insert must bind every column");
    if (insertConflictsFds(Op.A))
      return false;
    if (insert(Op.A))
      Undo.push_back(TxOp::remove(Op.A));
    return true; // exact duplicate: a committed no-op
  }
  case TxOp::Remove: {
    // Capture the matching tuples before removal; each becomes an
    // inverse insert. Removal never conflicts. (scanFrames does not
    // deduplicate, so collapse plans that reach a tuple twice.)
    std::vector<Tuple> Victims;
    scanFrames(Op.A, All, [&](const BindingFrame &F) {
      Victims.push_back(F.toTuple(All));
      return true;
    });
    std::sort(Victims.begin(), Victims.end());
    Victims.erase(std::unique(Victims.begin(), Victims.end()),
                  Victims.end());
    if (Victims.empty())
      return true;
    [[maybe_unused]] size_t Removed = remove(Op.A);
    assert(Removed == Victims.size() && "scan and remove disagree");
    for (Tuple &V : Victims)
      Undo.push_back(TxOp::insert(std::move(V)));
    return true;
  }
  case TxOp::Update: {
    assert(spec()->fds().isKey(Op.A.columns(), All) &&
           "update pattern must be a key");
    assert(!Op.A.columns().intersects(Op.B.columns()) &&
           "update changes must be disjoint from the pattern");
    Tuple Old;
    bool Found = false;
    scanFrames(Op.A, All, [&](const BindingFrame &F) {
      Old = F.toTuple(All);
      Found = true;
      return false; // the pattern is a key: at most one match
    });
    if (!Found)
      return true; // no match: a committed no-op, as for update()
    Tuple Merged = Old.merge(Op.B);
    if (Merged == Old)
      return true;
    if (insertConflictsFds(Merged, &Old))
      return false;
    update(Op.A, Op.B);
    Undo.push_back(TxOp::update(Op.A, Old.project(Op.B.columns())));
    return true;
  }
  case TxOp::Upsert: {
    assert(spec()->fds().isKey(Op.A.columns(), All) &&
           "upsert pattern must be a key");
    assert((Op.Fn || Op.FnChecked) && "upsert op needs a callback");
    ColumnSet Rest = All.minus(Op.A.columns());
    Tuple Old, Values;
    bool Found = false, Vetoed = false;
    scanFrames(Op.A, Rest, [&](const BindingFrame &F) {
      Found = true;
      Old = F.toTuple(All);
      Vetoed = !Op.runUpsertFn(&F, Values);
      return false; // the pattern is a key: at most one match
    });
    if (Vetoed)
      return false; // checked callback refused: a defined abort
    if (!Found) {
      if (!Op.runUpsertFn(nullptr, Values))
        return false;
      // Unlike the standalone upsert (which asserts), an incomplete
      // insert is a *defined* abort: the callback's way of saying
      // "only proceed if the tuple exists".
      if (Values.columns() != Rest)
        return false;
      Tuple Full = Op.A.merge(Values);
      if (insertConflictsFds(Full))
        return false;
      [[maybe_unused]] bool Changed = insert(Full);
      assert(Changed && "conflict-free upsert insert must change");
      Undo.push_back(TxOp::remove(std::move(Full)));
      return true;
    }
    assert(Values.columns().subsetOf(Rest) &&
           "upsert values must not rebind key columns");
    if (Values.empty())
      return true;
    Tuple Merged = Old.merge(Values);
    if (Merged == Old)
      return true;
    if (insertConflictsFds(Merged, &Old))
      return false;
    update(Op.A, Values);
    Undo.push_back(TxOp::update(Op.A, Old.project(Values.columns())));
    return true;
  }
  }
  assert(false && "unknown TxOp kind");
  return false;
}

void SynthesizedRelation::applyTxUndo(const TxOp &U) {
  switch (U.Op) {
  case TxOp::Insert: {
    [[maybe_unused]] bool Changed = insert(U.A);
    assert(Changed && "undo insert collided with a live tuple");
    return;
  }
  case TxOp::Remove: {
    // Undo removes are always exact full tuples.
    [[maybe_unused]] size_t Removed = remove(U.A);
    assert(Removed == 1 && "undo remove missed its tuple");
    return;
  }
  case TxOp::Update:
    update(U.A, U.B);
    return;
  case TxOp::Upsert:
    break;
  }
  assert(false && "upserts never appear in undo logs");
}

TxResult SynthesizedRelation::transact(const std::vector<TxOp> &Ops) {
  std::vector<TxOp> Undo;
  for (size_t I = 0; I != Ops.size(); ++I) {
    if (!applyTxOp(Ops[I], Undo)) {
      for (size_t J = Undo.size(); J != 0; --J)
        applyTxUndo(Undo[J - 1]);
      return TxResult{false, I, 0};
    }
  }
  return TxResult{true, 0, 0};
}

TxResult SynthesizedRelation::transact(function_ref<void(TxBatch &)> Build) {
  TxBatch Tx;
  Build(Tx);
  return transact(Tx.ops());
}

std::vector<Tuple> SynthesizedRelation::query(const Tuple &Pattern,
                                              ColumnSet OutputCols) const {
  std::vector<Tuple> Result;
  std::unordered_set<Tuple> Seen;
  // Project straight off the binding frame: one tuple per result, no
  // intermediate full-binding materialization.
  scanFrames(Pattern, OutputCols, [&](const BindingFrame &F) {
    Tuple Projected = F.toTuple(OutputCols);
    if (Seen.insert(Projected).second)
      Result.push_back(std::move(Projected));
    return true;
  });
  return Result;
}

void SynthesizedRelation::scan(const Tuple &Pattern, ColumnSet OutputCols,
                               function_ref<bool(const Tuple &)> Fn) const {
  scanFrames(Pattern, OutputCols, [&](const BindingFrame &F) {
    return Fn(F.toTuple(F.bound()));
  });
}

void SynthesizedRelation::scanFrames(
    const Tuple &Pattern, ColumnSet OutputCols,
    function_ref<bool(const BindingFrame &)> Fn) const {
  const QueryPlan *Plan = Plans.plan(Pattern.columns(), OutputCols);
  assert(Plan && "no valid plan for this query shape");
  // The frame is a stack local (no heap traffic for catalogs within
  // BindingFrame::InlineColumns), so scans stay reentrant: a scan
  // callback may issue nested scans on the same relation.
  BindingFrame Frame;
  execPlan(*Plan, Graph, Pattern, Frame, Fn);
}

bool SynthesizedRelation::contains(const Tuple &Pattern) const {
  bool Found = false;
  scanFrames(Pattern, ColumnSet(), [&](const BindingFrame &) {
    Found = true;
    return false;
  });
  return Found;
}

void SynthesizedRelation::clear() {
  Graph.clear();
  Size = 0;
}

const QueryPlan *SynthesizedRelation::planFor(ColumnSet InputCols,
                                              ColumnSet OutputCols) const {
  return Plans.plan(InputCols, OutputCols);
}

Relation SynthesizedRelation::abstractionOf() const {
  return abstractInstance(Graph);
}

CostParams SynthesizedRelation::profileCostParams() const {
  // Average container size per edge = total entries / live parent
  // instances, measured by one walk over the instance graph.
  struct Totals {
    double Entries = 0;
    double Parents = 0;
  };
  std::vector<Totals> PerEdge(D->numEdges());
  std::vector<const NodeInstance *> Work = {Graph.root()};
  std::unordered_set<const NodeInstance *> Seen = {Graph.root()};
  while (!Work.empty()) {
    const NodeInstance *N = Work.back();
    Work.pop_back();
    for (EdgeId E : D->outgoing(N->id())) {
      const MapEdge &Edge = D->edge(E);
      const EdgeMap &Map = N->edgeMap(Edge.OrdinalInFrom);
      PerEdge[E].Entries += static_cast<double>(Map.size());
      PerEdge[E].Parents += 1;
      Map.forEach([&](const Tuple &, NodeInstance *Child) {
        if (Seen.insert(Child).second)
          Work.push_back(Child);
        return true;
      });
    }
  }
  CostParams Params = Plans.costParams();
  for (EdgeId E = 0; E != D->numEdges(); ++E)
    if (PerEdge[E].Parents > 0)
      Params.setFanout(E, PerEdge[E].Entries / PerEdge[E].Parents);
  return Params;
}
