//===- autotuner/Autotuner.h - Benchmark-driven tuning ----------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The autotuner of Section 5: given a relational specification and a
/// benchmark that maps a decomposition to a cost (elapsed time, memory,
/// any metric), it exhaustively constructs all decompositions up to an
/// edge bound, evaluates the benchmark on each, and returns them sorted
/// by increasing cost. Structures isomorphic up to data structure
/// choice are benchmarked across a caller-supplied palette of ψ and
/// reported once with their best assignment (matching how Fig. 11
/// aggregates).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_AUTOTUNER_AUTOTUNER_H
#define RELC_AUTOTUNER_AUTOTUNER_H

#include "autotuner/Enumerator.h"

#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace relc {

struct AutotunerOptions {
  EnumeratorOptions Enumerate;
  /// Data structures tried per edge (full cross product per structure).
  /// With the default single-element palette each structure is run once.
  std::vector<DsKind> DsPalette = {DsKind::HashTable};
  /// Benchmarks whose cost exceeds this are recorded as timeouts
  /// (Fig. 11 elides decompositions that exceeded its 8s limit).
  double CostLimit = std::numeric_limits<double>::infinity();
};

struct TunedDecomposition {
  Decomposition Decomp; ///< Best ds assignment for this structure.
  double Cost;          ///< Benchmark cost of that assignment.
  bool TimedOut;        ///< True if every assignment exceeded CostLimit.
};

/// The benchmark callback: run the workload against \p D and return its
/// cost; return +inf to report failure/timeout.
using BenchmarkFn = std::function<double(const Decomposition &D)>;

/// Runs the autotuner. \returns one entry per decomposition structure,
/// sorted by increasing cost (timeouts last).
std::vector<TunedDecomposition> autotune(const RelSpecRef &Spec,
                                         BenchmarkFn Benchmark,
                                         const AutotunerOptions &Opts);

} // namespace relc

#endif // RELC_AUTOTUNER_AUTOTUNER_H
