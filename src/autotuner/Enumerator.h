//===- autotuner/Enumerator.h - Decomposition enumeration -------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive enumeration of adequate decompositions up to a bound on
/// the number of map edges (the autotuner's search space, Section 5).
///
/// The enumerator generates, for each node with bound columns A and
/// residual columns R:
///  - a unit holding all of R (when ∆ ⊢ A → R and A ≠ ∅);
///  - joins of up to MaxJoinWidth map primitives whose coverages
///    union to R, each map choosing a non-empty key set K and a
///    recursively enumerated child for its remaining coverage;
/// and then derives *sharing* variants by merging structurally
/// identical subtrees reachable over different paths (bound sets are
/// unioned, Fig. 12's decomposition 5 vs 9). Every candidate is
/// adequacy-checked (Fig. 6) and deduplicated by canonical form, with
/// structures isomorphic up to the choice of data structures counted
/// once (as in Section 6.1).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_AUTOTUNER_ENUMERATOR_H
#define RELC_AUTOTUNER_ENUMERATOR_H

#include "decomp/Decomposition.h"

#include <vector>

namespace relc {

struct EnumeratorOptions {
  /// Maximum number of map edges per decomposition.
  unsigned MaxEdges = 4;
  /// Maximum number of primitives joined at one node.
  unsigned MaxJoinWidth = 3;
  /// Also generate shared-subtree variants.
  bool EnableSharing = true;
  /// Data structure assigned to every edge of the returned structures
  /// (re-assign with withDataStructures for concrete candidates).
  DsKind DefaultDs = DsKind::HashTable;
  /// Hard cap on the result count (safety valve for wide schemas).
  size_t MaxResults = 100000;
};

/// All adequate decomposition structures for \p Spec within the bounds.
std::vector<Decomposition>
enumerateDecompositions(const RelSpecRef &Spec,
                        const EnumeratorOptions &Opts = EnumeratorOptions());

/// Rebuilds \p D with \p Kinds[e] as the data structure of edge e.
/// Edges whose key is not a single integer-like column reject
/// DsKind::Vector — the caller filters with edgeSupportsDs.
Decomposition withDataStructures(const Decomposition &D,
                                 const std::vector<DsKind> &Kinds);

/// True if \p Kind is usable on \p Edge (vectors need single-column
/// keys).
bool edgeSupportsDs(const MapEdge &Edge, DsKind Kind);

} // namespace relc

#endif // RELC_AUTOTUNER_ENUMERATOR_H
