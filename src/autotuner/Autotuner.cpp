//===- autotuner/Autotuner.cpp - Benchmark-driven tuning ---------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "autotuner/Autotuner.h"

#include <algorithm>
#include <cassert>

using namespace relc;

namespace {

/// Enumerates every assignment of palette kinds to edges (skipping
/// kinds an edge cannot support) and keeps the cheapest.
TunedDecomposition tuneStructure(const Decomposition &Structure,
                                 const BenchmarkFn &Benchmark,
                                 const AutotunerOptions &Opts) {
  unsigned NumEdges = Structure.numEdges();
  std::vector<std::vector<DsKind>> Choices(NumEdges);
  for (unsigned E = 0; E != NumEdges; ++E) {
    for (DsKind K : Opts.DsPalette)
      if (edgeSupportsDs(Structure.edge(E), K))
        Choices[E].push_back(K);
    if (Choices[E].empty())
      Choices[E].push_back(DsKind::HashTable);
  }

  TunedDecomposition Best{Structure, std::numeric_limits<double>::infinity(),
                          true};
  std::vector<DsKind> Assignment(NumEdges, DsKind::HashTable);

  // Odometer over the per-edge choice lists.
  std::vector<size_t> Idx(NumEdges, 0);
  while (true) {
    for (unsigned E = 0; E != NumEdges; ++E)
      Assignment[E] = Choices[E][Idx[E]];
    Decomposition Candidate = NumEdges == 0
                                  ? Structure
                                  : withDataStructures(Structure, Assignment);
    double Cost = Benchmark(Candidate);
    if (Cost < Best.Cost) {
      Best.Cost = Cost;
      Best.Decomp = std::move(Candidate);
      Best.TimedOut = Cost > Opts.CostLimit;
    }
    // Advance the odometer.
    unsigned E = 0;
    for (; E != NumEdges; ++E) {
      if (++Idx[E] < Choices[E].size())
        break;
      Idx[E] = 0;
    }
    if (E == NumEdges)
      break;
    if (NumEdges == 0)
      break;
  }
  return Best;
}

} // namespace

std::vector<TunedDecomposition> relc::autotune(const RelSpecRef &Spec,
                                               BenchmarkFn Benchmark,
                                               const AutotunerOptions &Opts) {
  std::vector<Decomposition> Structures =
      enumerateDecompositions(Spec, Opts.Enumerate);

  std::vector<TunedDecomposition> Result;
  Result.reserve(Structures.size());
  for (const Decomposition &S : Structures)
    Result.push_back(tuneStructure(S, Benchmark, Opts));

  std::sort(Result.begin(), Result.end(),
            [](const TunedDecomposition &A, const TunedDecomposition &B) {
              return A.Cost < B.Cost;
            });
  return Result;
}
