//===- autotuner/Enumerator.cpp - Decomposition enumeration ------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "autotuner/Enumerator.h"

#include "decomp/Adequacy.h"
#include "decomp/Builder.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>

using namespace relc;

namespace {

/// Lightweight mutable tree/DAG used during enumeration; converted to a
/// Decomposition at the end. A node's primitive is the left-nested join
/// of (optional unit) + maps.
struct Proto {
  ColumnSet Bound;
  bool HasUnit = false;
  ColumnSet UnitCols;
  std::vector<std::pair<ColumnSet, std::shared_ptr<Proto>>> Maps;
};

using ProtoRef = std::shared_ptr<Proto>;

/// Shape string ignoring bound sets (merge candidates must have equal
/// shapes); pointer-shared subtrees render identically, which is what
/// merging needs.
std::string shapeOf(const Proto *N) {
  std::string Out = "[";
  if (N->HasUnit) {
    Out += "u";
    Out += std::to_string(N->UnitCols.mask());
  }
  for (const auto &[K, Child] : N->Maps) {
    Out += "m";
    Out += std::to_string(K.mask());
    Out += shapeOf(Child.get());
  }
  Out += "]";
  return Out;
}

/// Deep-copies a proto DAG preserving sharing.
ProtoRef cloneProto(const ProtoRef &N,
                    std::map<const Proto *, ProtoRef> &Copies) {
  auto It = Copies.find(N.get());
  if (It != Copies.end())
    return It->second;
  auto Copy = std::make_shared<Proto>();
  Copy->Bound = N->Bound;
  Copy->HasUnit = N->HasUnit;
  Copy->UnitCols = N->UnitCols;
  Copies.emplace(N.get(), Copy);
  for (const auto &[K, Child] : N->Maps)
    Copy->Maps.emplace_back(K, cloneProto(Child, Copies));
  return Copy;
}

/// Recursively merges \p B into \p A (equal shapes assumed): bound
/// sets union at every level. \returns the merged node (\p A mutated).
ProtoRef mergeProto(const ProtoRef &A, const ProtoRef &B) {
  assert(A->Maps.size() == B->Maps.size() && "merge of unequal shapes");
  A->Bound = A->Bound.unionWith(B->Bound);
  for (size_t I = 0; I != A->Maps.size(); ++I) {
    if (A->Maps[I].second == B->Maps[I].second)
      continue; // already shared below
    A->Maps[I].second = mergeProto(A->Maps[I].second, B->Maps[I].second);
  }
  return A;
}

class Enumerator {
public:
  Enumerator(const RelSpecRef &Spec, const EnumeratorOptions &Opts)
      : Spec(Spec), Opts(Opts), Fds(Spec->fds()) {}

  std::vector<Decomposition> run() {
    std::vector<Decomposition> Result;
    std::set<std::string> Seen;

    // Phase 1: tree-shaped decompositions.
    std::vector<ProtoRef> Trees;
    for (auto &[Root, Edges] :
         genNode(ColumnSet(), Spec->columns(), Opts.MaxEdges))
      Trees.push_back(Root);

    // Phase 2: sharing variants, to fixpoint.
    std::vector<ProtoRef> Work = Trees;
    std::set<std::string> WorkSeen;
    for (const ProtoRef &T : Work)
      WorkSeen.insert(shapeAndBounds(T));
    for (size_t I = 0; I != Work.size() && Work.size() < Opts.MaxResults;
         ++I) {
      if (!Opts.EnableSharing)
        break;
      for (ProtoRef &Variant : shareVariants(Work[I]))
        if (WorkSeen.insert(shapeAndBounds(Variant)).second)
          Work.push_back(Variant);
    }

    // Phase 3: convert, adequacy-filter, deduplicate canonically.
    for (const ProtoRef &Root : Work) {
      Decomposition D = toDecomposition(Root);
      if (!checkAdequacy(D).Ok)
        continue;
      if (!Seen.insert(D.canonicalString(/*IncludeDs=*/false)).second)
        continue;
      Result.push_back(std::move(D));
      if (Result.size() >= Opts.MaxResults)
        break;
    }
    return Result;
  }

private:
  /// All subsets of \p S (as masks), including ∅ and S itself.
  static std::vector<ColumnSet> subsetsOf(ColumnSet S) {
    std::vector<ColumnSet> Result;
    uint64_t M = S.mask();
    uint64_t Sub = 0;
    while (true) {
      Result.push_back(ColumnSet::fromMask(Sub));
      if (Sub == M)
        break;
      Sub = (Sub - M) & M; // next subset trick
    }
    return Result;
  }

  /// Enumerates nodes with bound columns \p A representing exactly
  /// \p R using at most \p Budget edges. Returns (node, edges-used).
  std::vector<std::pair<ProtoRef, unsigned>>
  genNode(ColumnSet A, ColumnSet R, unsigned Budget) {
    auto Key = std::make_tuple(A.mask(), R.mask(), Budget);
    auto It = Memo.find(Key);
    if (It != Memo.end())
      return It->second;

    std::vector<std::pair<ProtoRef, unsigned>> Result;

    // Unit node (AUNIT: A ≠ ∅ and A → R). R may be empty (pure set
    // membership, e.g. a nodes(id) relation).
    if (!A.empty() && Fds.implies(A, R)) {
      auto N = std::make_shared<Proto>();
      N->Bound = A;
      N->HasUnit = true;
      N->UnitCols = R;
      Result.emplace_back(std::move(N), 0);
    }

    // Map-join nodes: a multiset of 1..MaxJoinWidth maps whose
    // coverages union to R.
    if (!R.empty() && Budget > 0) {
      // Candidate single maps per coverage S ⊆ R, each paired with its
      // edge count.
      std::vector<std::tuple<ColumnSet, ColumnSet, ProtoRef, unsigned>>
          Cands; // (coverage, key, child, edges)
      for (ColumnSet S : subsetsOf(R)) {
        if (S.empty())
          continue;
        for (ColumnSet K : subsetsOf(S)) {
          if (K.empty())
            continue;
          for (auto &[Child, E] :
               genNode(A.unionWith(K), S.minus(K), Budget - 1))
            Cands.emplace_back(S, K, Child, 1 + E);
        }
      }
      // Choose multisets (indices non-decreasing avoids permutations).
      std::vector<unsigned> Chosen;
      chooseMaps(Cands, 0, A, R, ColumnSet(), 0, Budget, Chosen, Result);
    }

    Memo.emplace(Key, Result);
    return Result;
  }

  void chooseMaps(
      const std::vector<std::tuple<ColumnSet, ColumnSet, ProtoRef, unsigned>>
          &Cands,
      size_t From, ColumnSet A, ColumnSet R, ColumnSet Covered,
      unsigned EdgesUsed, unsigned Budget, std::vector<unsigned> &Chosen,
      std::vector<std::pair<ProtoRef, unsigned>> &Result) {
    if (!Chosen.empty() && Covered == R) {
      // Materialize one node from the chosen maps. Children are cloned
      // so later sharing surgery on one candidate cannot alias another.
      auto N = std::make_shared<Proto>();
      N->Bound = A;
      for (unsigned I : Chosen) {
        std::map<const Proto *, ProtoRef> Copies;
        N->Maps.emplace_back(std::get<1>(Cands[I]),
                             cloneProto(std::get<2>(Cands[I]), Copies));
      }
      Result.emplace_back(std::move(N), EdgesUsed);
    }
    if (Chosen.size() >= Opts.MaxJoinWidth)
      return;
    for (size_t I = From; I != Cands.size(); ++I) {
      unsigned E = std::get<3>(Cands[I]);
      if (EdgesUsed + E > Budget)
        continue;
      // Two literally identical maps in one join duplicate a data
      // structure to no effect; skip.
      bool Duplicate = false;
      for (unsigned C : Chosen)
        if (std::get<0>(Cands[C]) == std::get<0>(Cands[I]) &&
            std::get<1>(Cands[C]) == std::get<1>(Cands[I]) &&
            std::get<2>(Cands[C]) == std::get<2>(Cands[I])) {
          Duplicate = true;
          break;
        }
      if (Duplicate)
        continue;
      Chosen.push_back(static_cast<unsigned>(I));
      chooseMaps(Cands, I + 1, A, R, Covered.unionWith(std::get<0>(Cands[I])),
                 EdgesUsed + E, Budget, Chosen, Result);
      Chosen.pop_back();
    }
  }

  /// All one-step sharing variants of \p Root: for every pair of
  /// distinct equal-shaped subtrees, a copy with the pair merged.
  std::vector<ProtoRef> shareVariants(const ProtoRef &Root) {
    std::vector<ProtoRef> Result;
    // Collect distinct nodes in DFS order.
    std::vector<const Proto *> Nodes;
    collectNodes(Root.get(), Nodes);
    for (size_t I = 0; I != Nodes.size(); ++I)
      for (size_t J = I + 1; J != Nodes.size(); ++J) {
        if (Nodes[I] == Nodes[J])
          continue;
        if (shapeOf(Nodes[I]) != shapeOf(Nodes[J]))
          continue;
        // Clone the whole DAG, then merge the copies of I and J.
        std::map<const Proto *, ProtoRef> Copies;
        ProtoRef NewRoot = cloneProto(Root, Copies);
        ProtoRef CI = Copies[Nodes[I]];
        ProtoRef CJ = Copies[Nodes[J]];
        if (!CI || !CJ || CI == CJ)
          continue;
        ProtoRef Merged = mergeProto(CI, CJ);
        redirect(NewRoot.get(), CJ.get(), Merged);
        Result.push_back(NewRoot);
      }
    return Result;
  }

  static void collectNodes(const Proto *N, std::vector<const Proto *> &Out) {
    if (std::find(Out.begin(), Out.end(), N) != Out.end())
      return;
    Out.push_back(N);
    for (const auto &[K, Child] : N->Maps)
      collectNodes(Child.get(), Out);
  }

  /// Rewrites every edge targeting \p OldChild to target \p NewChild.
  static void redirect(Proto *N, const Proto *OldChild, ProtoRef NewChild) {
    for (auto &[K, Child] : N->Maps) {
      if (Child.get() == OldChild)
        Child = NewChild;
      redirect(Child.get(), OldChild, NewChild);
    }
  }

  /// Identity string incl. bounds, for the worklist dedup.
  static std::string shapeAndBounds(const ProtoRef &Root) {
    std::map<const Proto *, unsigned> Ids;
    std::string Out;
    render(Root.get(), Ids, Out);
    return Out;
  }

  static void render(const Proto *N, std::map<const Proto *, unsigned> &Ids,
                     std::string &Out) {
    auto It = Ids.find(N);
    if (It != Ids.end()) {
      Out += "^" + std::to_string(It->second);
      return;
    }
    unsigned Id = static_cast<unsigned>(Ids.size());
    Ids.emplace(N, Id);
    Out += "(#" + std::to_string(Id) + "b" + std::to_string(N->Bound.mask());
    if (N->HasUnit)
      Out += "u" + std::to_string(N->UnitCols.mask());
    for (const auto &[K, Child] : N->Maps) {
      Out += "m" + std::to_string(K.mask());
      render(Child.get(), Ids, Out);
    }
    Out += ")";
  }

  /// Converts a proto DAG to a Decomposition (children first, root
  /// last, sharing preserved via pointer identity).
  Decomposition toDecomposition(const ProtoRef &Root) {
    DecompBuilder B(Spec);
    std::map<const Proto *, NodeId> Ids;
    NodeId RootId = emit(B, Root, Ids);
    (void)RootId;
    return B.build();
  }

  NodeId emit(DecompBuilder &B, const ProtoRef &N,
              std::map<const Proto *, NodeId> &Ids) {
    auto It = Ids.find(N.get());
    if (It != Ids.end())
      return It->second;
    // Children first (let order).
    std::vector<PrimExpr> Parts;
    if (N->HasUnit)
      Parts.push_back(B.unit(N->UnitCols));
    for (const auto &[K, Child] : N->Maps) {
      NodeId ChildId = emit(B, Child, Ids);
      Parts.push_back(B.map(K, Opts.DefaultDs, ChildId));
    }
    assert(!Parts.empty() && "proto node with no primitive");
    PrimExpr P = Parts[0];
    for (size_t I = 1; I != Parts.size(); ++I)
      P = B.join(P, Parts[I]);
    NodeId Id = B.addNode("n" + std::to_string(Ids.size()), N->Bound,
                          std::move(P));
    Ids.emplace(N.get(), Id);
    return Id;
  }

  RelSpecRef Spec;
  EnumeratorOptions Opts;
  const FuncDeps &Fds;
  std::map<std::tuple<uint64_t, uint64_t, unsigned>,
           std::vector<std::pair<ProtoRef, unsigned>>>
      Memo;
};

} // namespace

std::vector<Decomposition>
relc::enumerateDecompositions(const RelSpecRef &Spec,
                              const EnumeratorOptions &Opts) {
  return Enumerator(Spec, Opts).run();
}

bool relc::edgeSupportsDs(const MapEdge &Edge, DsKind Kind) {
  if (dsRequiresDenseIntKey(Kind))
    return Edge.KeyCols.size() == 1;
  return true;
}

Decomposition relc::withDataStructures(const Decomposition &D,
                                       const std::vector<DsKind> &Kinds) {
  assert(Kinds.size() == D.numEdges() &&
         "one data structure kind per map edge");
  DecompBuilder B(D.spec());

  // Replay nodes in let order; node ids are preserved because builders
  // assign ids densely in insertion order.
  struct Replayer {
    const Decomposition &D;
    const std::vector<DsKind> &Kinds;
    DecompBuilder &B;

    PrimExpr replay(PrimId Id) {
      const PrimNode &P = D.prim(Id);
      switch (P.Kind) {
      case PrimKind::Unit:
        return B.unit(P.Cols);
      case PrimKind::Map:
        return B.map(P.Cols, Kinds[P.Edge], P.Target);
      case PrimKind::Join:
        return B.join(replay(P.Left), replay(P.Right));
      }
      assert(false && "unknown PrimKind");
      return PrimExpr();
    }
  } R{D, Kinds, B};

  for (NodeId Id = 0; Id != D.numNodes(); ++Id) {
    [[maybe_unused]] NodeId NewId =
        B.addNode(D.node(Id).Name, D.node(Id).Bound, R.replay(D.node(Id).Prim));
    assert(NewId == Id && "replayed node ids must be stable");
  }
  return B.build();
}
