//===- server/Server.h - The relserved network server -----------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RelServer exposes one ConcurrentRelation over the wire protocol of
/// server/Wire.h: a loopback TCP listener, one thread per connection
/// reading pipelined request frames, reads (Query/Size) executed
/// inline on the connection thread against the epoch-protected read
/// path, and mutations (Insert/Remove/Update/Transact) funneled
/// through the group-commit queue (server/GroupCommit.h) — the
/// response is written from the committer's completion callback, after
/// the WAL sync covering the transaction, so a client that has seen an
/// Ok owns a durable commit.
///
/// Durability pipeline: setCommitHook serializes each committed
/// batch's redo ops (wire::encodeRedo) and appends them to the Wal in
/// ticket order (the hook contract makes append order == ticket
/// order); the committer syncs once per group. start() recovers before
/// serving: load `<wal>.ckpt` if present (bulk inserts), replay the
/// log's valid prefix through ordinary transacts, truncate the torn
/// tail, and seed the ticket counter past the recovered history.
///
/// Request validation is strict — the sequential engine's contracts
/// (insert binds every column, update/add patterns are keys, ...) are
/// checked here and violations answered with Status::Error, so no wire
/// input can reach an engine assertion. A frame too short for the
/// opcode/reqId header, or an oversized length prefix, closes the
/// connection (the stream cannot be trusted); a decodable frame with a
/// bad payload gets an error reply and the connection lives on.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SERVER_SERVER_H
#define RELC_SERVER_SERVER_H

#include "concurrent/ConcurrentRelation.h"
#include "server/GroupCommit.h"
#include "server/Wal.h"
#include "server/Wire.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace relc {

struct ServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t Port = 0;
  /// Write-ahead log path; empty runs the server without durability.
  std::string WalPath;
  /// Sharding of the underlying ConcurrentRelation.
  ConcurrentOptions Concurrent;
  /// Group-commit fold cap.
  size_t MaxGroup = 64;
  /// Auto-checkpoint after this many committed transactions (0 = only
  /// explicit Checkpoint requests).
  uint64_t CheckpointEvery = 0;
};

class RelServer {
public:
  /// Builds the relation from \p D (adequate, as usual) but does not
  /// recover or listen yet — call start().
  RelServer(const Decomposition &D, ServerOptions Opts);
  ~RelServer();

  RelServer(const RelServer &) = delete;
  RelServer &operator=(const RelServer &) = delete;

  /// Recover (checkpoint + WAL replay), open the log for appending,
  /// start the committer, bind and serve. False with \p Err on any
  /// unrecoverable failure.
  bool start(std::string *Err);

  /// Stops accepting, closes every connection, drains the committer.
  /// Idempotent; the destructor calls it.
  void stop();

  uint16_t port() const { return Port; }
  ConcurrentRelation &relation() { return Rel; }
  const ConcurrentRelation &relation() const { return Rel; }
  GroupCommitStats commitStats() const { return Committer.stats(); }
  /// Direct committer access (tests pause/resume it to force groups).
  GroupCommit &committer() { return Committer; }
  /// Direct WAL access (tests arm fault injection, e.g.
  /// failNextCheckpoints before driving the checkpoint path).
  Wal &wal() { return Log; }
  /// Transactions replayed from the log during start().
  uint64_t recoveredTxns() const { return Recovered; }

  /// Synchronous snapshot checkpoint: a committer barrier grabs the
  /// snapshot handle + tickets (microseconds), then serialization and
  /// the Wal's fsync/rename dance run on the dedicated checkpoint
  /// thread while commits keep flowing; this blocks until that
  /// finishes. False if the server has no WAL or the checkpoint
  /// failed. Must not be called from a committer or checkpoint-thread
  /// callback.
  bool checkpointNow(std::string *Err);

  /// Checkpoints that failed (logged, counted, and backed off — see
  /// maybeAutoCheckpoint). Also reported in the Stats wire reply.
  uint64_t checkpointFailures() const {
    return CheckpointFailures.load(std::memory_order_relaxed);
  }

  /// Snapshot codec (shared with tests): `u32 count | count tuples`.
  static std::vector<uint8_t> encodeSnapshot(const Relation &R);
  static bool decodeSnapshot(const std::vector<uint8_t> &Bytes,
                             unsigned Arity, std::vector<Tuple> &Tuples);

private:
  struct Conn {
    int Fd = -1;
    std::mutex WriteMu;
    /// Set by connLoop as its last act; lets the acceptor reap the
    /// entry (join the thread, drop the Conn) without blocking.
    std::atomic<bool> Done{false};
    ~Conn();
  };
  using ConnPtr = std::shared_ptr<Conn>;
  struct ConnEntry {
    ConnPtr C;
    std::thread T;
  };

  bool recover(std::string *Err);
  void acceptLoop();
  void connLoop(ConnPtr C);
  /// Joins and erases every finished connection entry. ConnMu held.
  void reapFinishedLocked();
  /// One request frame; false closes the connection.
  bool handleFrame(const ConnPtr &C, const std::vector<uint8_t> &Body);
  void reply(const ConnPtr &C, wire::Status St, uint64_t ReqId,
             const std::vector<uint8_t> &Payload);
  void replyError(const ConnPtr &C, uint64_t ReqId, std::string_view Msg);
  /// Submits a mutation batch whose completion answers \p ReqId.
  void submitMutation(const ConnPtr &C, uint64_t ReqId,
                      std::vector<TxOp> Ops);
  /// Wire op -> engine op with full contract validation; on failure
  /// returns false with \p Msg set.
  bool toTxOp(const wire::WireTxOp &W, TxOp &Out, std::string &Msg) const;
  void maybeAutoCheckpoint();

  /// One queued checkpoint: the O(shards) snapshot handle plus the
  /// tickets pinning its place in the log, grabbed inside a committer
  /// barrier; everything O(n) happens on the checkpoint thread.
  struct CkptJob {
    ConcurrentRelation::Snapshot Snap;
    /// Newest logged ticket the snapshot includes (stamps the .ckpt).
    uint64_t Ticket = 0;
    /// Log byte offset covering exactly tickets <= Ticket — the
    /// compaction point handed to Wal::checkpoint.
    size_t SnapEnd = 0;
    /// Optional completion, run on the checkpoint thread after the
    /// outcome is known (ok, error message).
    std::function<void(bool, const std::string &)> Done;
  };
  /// Enqueues a snapshot-grab barrier on the committer; the resulting
  /// job is executed by the checkpoint thread. \p Done always fires —
  /// success, checkpoint failure, and shutdown-drain alike.
  void scheduleCheckpoint(std::function<void(bool, const std::string &)> Done);
  /// Serializes + persists one job; updates SinceCkpt and the failure
  /// counter/backoff. Returns success and fills \p Err on failure.
  bool runCheckpoint(CkptJob &Job, std::string *Err);
  void ckptLoop();

  ServerOptions Opts;
  ConcurrentRelation Rel;
  Wal Log;
  bool HasWal;
  GroupCommit Committer;

  int ListenFd = -1;
  uint16_t Port = 0;
  std::thread Acceptor;
  std::mutex ConnMu;
  std::vector<ConnEntry> Conns;
  std::atomic<bool> Running{false};
  uint64_t Recovered = 0;
  /// Newest commit ticket this server knows of (recovered or logged);
  /// stamps checkpoints.
  std::atomic<uint64_t> LastTicket{0};
  /// Committed txns since the last checkpoint ATTEMPT (auto-checkpoint
  /// pacing). Reset on failure too: a failing checkpoint backs off for
  /// another CheckpointEvery commits instead of hot-retrying.
  std::atomic<uint64_t> SinceCkpt{0};
  std::atomic<bool> CkptQueued{false};
  std::atomic<uint64_t> CheckpointFailures{0};

  /// Dedicated checkpoint pipeline (see scheduleCheckpoint).
  std::thread CkptThread;
  std::mutex CkptMu;
  std::condition_variable CkptCv;
  std::deque<CkptJob> CkptQueue;
  bool CkptStopping = false;
};

} // namespace relc

#endif // RELC_SERVER_SERVER_H
