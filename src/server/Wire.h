//===- server/Wire.h - Binary wire protocol for relserved -------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed binary protocol between RelClient and RelServer
/// (docs/SERVER.md has the normative layout). Everything is
/// little-endian and explicitly serialized byte-by-byte, so the format
/// is identical across hosts.
///
///   frame    := u32 bodyLen | body            (bodyLen <= MaxBody)
///   request  := u8 opcode | u64 reqId | payload
///   response := u8 status | u64 reqId | payload
///
/// Requests on one connection may be pipelined; responses carry the
/// request's id and may interleave with responses to other requests on
/// the same connection (reads complete inline on the connection
/// thread, mutations complete on the group-commit thread). A frame
/// whose length prefix exceeds MaxBody, or a body too short for the
/// opcode/reqId header, poisons the stream and the server closes the
/// connection; a payload that fails to decode is answered with
/// Status::Error and the connection stays usable (frame boundaries are
/// delimited by the prefix, so a bad payload cannot desynchronize the
/// stream).
///
/// Values are `u8 kind` (0 = int, 1 = string) followed by an i64 or a
/// u32-length-prefixed byte string; tuples are `u64 columnMask`
/// followed by the bound values in ascending column order. Transact
/// batches carry WireTxOps — insert/remove/update mirroring TxOp, plus
/// `add`, the checked arithmetic upsert (absent key or floor violation
/// aborts the batch) that transfer-style transactions are built from.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SERVER_WIRE_H
#define RELC_SERVER_WIRE_H

#include "rel/ColumnSet.h"
#include "rel/Tuple.h"
#include "runtime/Transaction.h"
#include "support/Value.h"

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

namespace relc {
namespace wire {

/// Hard cap on frame bodies; a length prefix above this is treated as
/// stream corruption (close, do not allocate).
constexpr uint32_t MaxBody = 1u << 20;

/// Request opcodes.
enum class Op : uint8_t {
  Ping = 0x01,
  /// payload: tuple (full). Mutation; durable-acked.
  Insert = 0x02,
  /// payload: pattern tuple. Mutation; durable-acked.
  Remove = 0x03,
  /// payload: key tuple, changes tuple. Mutation; durable-acked.
  Update = 0x04,
  /// payload: pattern tuple, u64 output column mask.
  /// reply: u32 rowCount, then rowCount tuples.
  Query = 0x05,
  /// payload: u32 opCount, then opCount WireTxOps. reply: commit
  /// reply (see below).
  Transact = 0x06,
  /// reply: u64 size.
  Size = 0x07,
  /// Snapshot + truncate the WAL. reply: empty.
  Checkpoint = 0x08,
  /// reply: u64 groups, u64 txns, u64 multiTxGroups, u64 maxGroupSize,
  /// u64 syncs.
  Stats = 0x09,
};

/// Response status byte.
enum class Status : uint8_t {
  /// Committed / executed. Mutations append: u64 ticket.
  Ok = 0x00,
  /// Transaction aborted cleanly (nothing applied). Appends: u32
  /// failedOpIndex.
  Aborted = 0x01,
  /// Malformed or rejected request. Appends: u32 len, error message.
  Error = 0x02,
};

/// One transact-batch operation on the wire.
struct WireTxOp {
  enum Kind : uint8_t {
    Insert = 0, ///< A = full tuple
    Remove = 1, ///< A = pattern
    Update = 2, ///< A = key, B = changes (disjoint from key)
    /// Checked arithmetic upsert: read the tuple matching key A, add
    /// Delta to column Col, write back. Absent key aborts the batch;
    /// a result below Floor aborts the batch (Floor == INT64_MIN
    /// disables the check). The declarative overdraft guard.
    Add = 3,
  };

  uint8_t K = Insert;
  Tuple A;
  Tuple B;
  ColumnId Col = 0;
  int64_t Delta = 0;
  int64_t Floor = std::numeric_limits<int64_t>::min();

  static WireTxOp insert(Tuple T) {
    WireTxOp O;
    O.K = Insert;
    O.A = std::move(T);
    return O;
  }
  static WireTxOp remove(Tuple Pattern) {
    WireTxOp O;
    O.K = Remove;
    O.A = std::move(Pattern);
    return O;
  }
  static WireTxOp update(Tuple Key, Tuple Changes) {
    WireTxOp O;
    O.K = Update;
    O.A = std::move(Key);
    O.B = std::move(Changes);
    return O;
  }
  static WireTxOp add(Tuple Key, ColumnId Col, int64_t Delta,
                      int64_t Floor = std::numeric_limits<int64_t>::min()) {
    WireTxOp O;
    O.K = Add;
    O.A = std::move(Key);
    O.Col = Col;
    O.Delta = Delta;
    O.Floor = Floor;
    return O;
  }

  bool operator==(const WireTxOp &O) const {
    return K == O.K && A == O.A && B == O.B && Col == O.Col &&
           Delta == O.Delta && Floor == O.Floor;
  }
};

//===----------------------------------------------------------------------===//
// Byte-level codec
//===----------------------------------------------------------------------===//

/// Append-only little-endian encoder.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void bytes(const void *P, size_t N) {
    const uint8_t *B = static_cast<const uint8_t *>(P);
    Buf.insert(Buf.end(), B, B + N);
  }
  void str(std::string_view S) {
    u32(static_cast<uint32_t>(S.size()));
    bytes(S.data(), S.size());
  }

  void value(const Value &V) {
    if (V.isInt()) {
      u8(0);
      i64(V.asInt());
    } else {
      u8(1);
      str(V.asStr());
    }
  }

  void tuple(const Tuple &T) {
    ColumnSet C = T.columns();
    u64(C.mask());
    for (ColumnId Id : C)
      value(T.get(Id));
  }

  void txOp(const WireTxOp &O) {
    u8(O.K);
    switch (O.K) {
    case WireTxOp::Insert:
    case WireTxOp::Remove:
      tuple(O.A);
      return;
    case WireTxOp::Update:
      tuple(O.A);
      tuple(O.B);
      return;
    case WireTxOp::Add:
      tuple(O.A);
      u8(static_cast<uint8_t>(O.Col));
      i64(O.Delta);
      i64(O.Floor);
      return;
    }
  }

  const std::vector<uint8_t> &data() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }
  size_t size() const { return Buf.size(); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian decoder. Every read returns false on
/// underrun (and on any structural violation) without touching the
/// output; once a read fails the reader stays failed.
class ByteReader {
public:
  ByteReader(const uint8_t *P, size_t N) : P(P), End(P + N) {}
  explicit ByteReader(const std::vector<uint8_t> &V)
      : ByteReader(V.data(), V.size()) {}

  bool ok() const { return !Failed; }
  size_t remaining() const { return static_cast<size_t>(End - P); }

  bool u8(uint8_t &V) {
    if (!need(1))
      return false;
    V = *P++;
    return true;
  }
  bool u32(uint32_t &V) {
    if (!need(4))
      return false;
    V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(*P++) << (8 * I);
    return true;
  }
  bool u64(uint64_t &V) {
    if (!need(8))
      return false;
    V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(*P++) << (8 * I);
    return true;
  }
  bool i64(int64_t &V) {
    uint64_t U;
    if (!u64(U))
      return false;
    std::memcpy(&V, &U, 8);
    return true;
  }
  bool str(std::string &S) {
    uint32_t N;
    if (!u32(N) || !need(N))
      return false;
    S.assign(reinterpret_cast<const char *>(P), N);
    P += N;
    return true;
  }

  bool value(Value &V) {
    uint8_t K;
    if (!u8(K))
      return false;
    if (K == 0) {
      int64_t I;
      if (!i64(I))
        return false;
      V = Value::ofInt(I);
      return true;
    }
    if (K == 1) {
      std::string S;
      if (!str(S))
        return false;
      V = Value::ofString(S);
      return true;
    }
    return fail();
  }

  /// Decodes a tuple whose column mask must fit \p Arity columns
  /// (arity 0 skips the check — used by tests round-tripping opaque
  /// tuples).
  bool tuple(Tuple &T, unsigned Arity = 0) {
    uint64_t Mask;
    if (!u64(Mask))
      return false;
    // Any u64 mask addresses at most 64 columns (one bit each), so an
    // arity-less decode accepts every mask; with an arity, bits past
    // it are rejected — for every arity up to the 64-column cap, where
    // all 64 bits are real columns (and `Mask >> 64` would be UB).
    if (Arity != 0 && Arity < 64 && (Mask >> Arity) != 0)
      return fail();
    Tuple Out;
    for (ColumnId Id : ColumnSet::fromMask(Mask)) {
      Value V;
      if (!value(V))
        return false;
      Out.set(Id, V);
    }
    T = std::move(Out);
    return true;
  }

  bool txOp(WireTxOp &O, unsigned Arity = 0) {
    uint8_t K;
    if (!u8(K))
      return false;
    WireTxOp Out;
    Out.K = K;
    switch (K) {
    case WireTxOp::Insert:
    case WireTxOp::Remove:
      if (!tuple(Out.A, Arity))
        return false;
      break;
    case WireTxOp::Update:
      if (!tuple(Out.A, Arity) || !tuple(Out.B, Arity))
        return false;
      break;
    case WireTxOp::Add: {
      uint8_t Col;
      if (!tuple(Out.A, Arity) || !u8(Col) || !i64(Out.Delta) ||
          !i64(Out.Floor))
        return false;
      Out.Col = Col;
      break;
    }
    default:
      return fail();
    }
    O = std::move(Out);
    return true;
  }

private:
  bool need(size_t N) {
    if (Failed || remaining() < N)
      return fail();
    return true;
  }
  bool fail() {
    Failed = true;
    return false;
  }

  const uint8_t *P;
  const uint8_t *End;
  bool Failed = false;
};

//===----------------------------------------------------------------------===//
// Redo codec (WAL payloads)
//===----------------------------------------------------------------------===//

/// Serializes a commit hook's redo batch as a WAL payload: `u32 opCount`
/// then per op `u8 kind | tuple(s)`. Redo ops are concrete effects —
/// insert/remove/update only, never a callback-bearing upsert — so the
/// encoding is total.
inline std::vector<uint8_t> encodeRedo(const std::vector<TxOp> &Ops) {
  ByteWriter W;
  W.u32(static_cast<uint32_t>(Ops.size()));
  for (const TxOp &Op : Ops) {
    switch (Op.Op) {
    case TxOp::Insert:
      W.u8(0);
      W.tuple(Op.A);
      break;
    case TxOp::Remove:
      W.u8(1);
      W.tuple(Op.A);
      break;
    case TxOp::Update:
      W.u8(2);
      W.tuple(Op.A);
      W.tuple(Op.B);
      break;
    case TxOp::Upsert:
      assert(false && "redo batches never carry upserts");
      break;
    }
  }
  return W.take();
}

/// Decodes a WAL redo payload (recovery). False on malformed bytes.
inline bool decodeRedo(const uint8_t *P, size_t N, unsigned Arity,
                       std::vector<TxOp> &Ops) {
  ByteReader R(P, N);
  uint32_t Count;
  if (!R.u32(Count))
    return false;
  Ops.clear();
  Ops.reserve(Count);
  for (uint32_t I = 0; I != Count; ++I) {
    uint8_t K;
    Tuple A, B;
    if (!R.u8(K) || !R.tuple(A, Arity))
      return false;
    switch (K) {
    case 0:
      Ops.push_back(TxOp::insert(std::move(A)));
      break;
    case 1:
      Ops.push_back(TxOp::remove(std::move(A)));
      break;
    case 2:
      if (!R.tuple(B, Arity))
        return false;
      Ops.push_back(TxOp::update(std::move(A), std::move(B)));
      break;
    default:
      return false;
    }
  }
  return R.remaining() == 0;
}

//===----------------------------------------------------------------------===//
// Sockets and frames (loopback TCP)
//===----------------------------------------------------------------------===//

/// Listens on 127.0.0.1:\p Port (0 = ephemeral). Returns the fd, or -1
/// with \p Err set.
int listenTcp(uint16_t Port, std::string *Err);

/// The port a listening fd is bound to (resolves ephemeral binds).
uint16_t boundPort(int Fd);

/// Connects to 127.0.0.1:\p Port. Returns the fd, or -1 with \p Err.
int connectTcp(uint16_t Port, std::string *Err);

/// Reads exactly \p N bytes; false on EOF or error.
bool readFull(int Fd, void *Buf, size_t N);

/// Writes exactly \p N bytes (SIGPIPE-safe); false on error.
bool writeFull(int Fd, const void *Buf, size_t N);

/// Reads one frame body (the length prefix is consumed and checked
/// against MaxBody). False on EOF, error, or oversized prefix — the
/// caller must close the connection in every false case.
bool readFrame(int Fd, std::vector<uint8_t> &Body);

/// Writes `u32 len | body`.
bool writeFrame(int Fd, const uint8_t *Body, size_t N);
inline bool writeFrame(int Fd, const std::vector<uint8_t> &Body) {
  return writeFrame(Fd, Body.data(), Body.size());
}

} // namespace wire
} // namespace relc

#endif // RELC_SERVER_WIRE_H
