//===- server/Wal.h - Write-ahead log with CRC framing ----------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durability log behind relserved. Committed transactions are
/// appended in commit-ticket order (the feeding commit hook guarantees
/// the order; see ConcurrentRelation::setCommitHook) as CRC-framed
/// records and made durable by an explicit sync() — one fsync per
/// commit GROUP, not per transaction (server/GroupCommit.h).
///
/// On-disk layout (little-endian):
///
///   log      := magic "RELCWAL1" | record*
///   record   := u32 payloadLen | u32 crc32(payload) | payload
///   payload  := u64 commitTicket | redo-op bytes (opaque to the Wal)
///
/// Recovery (replay) reads the longest valid prefix: it stops —
/// silently, by design — at the first record whose header or payload
/// is short (a torn tail from a crash mid-write) or whose CRC
/// mismatches. The crash model: everything sync()ed before the crash
/// survives byte-exactly; the unsynced tail may be arbitrarily
/// truncated or corrupted. Because the server acknowledges a mutation
/// only after the sync covering it returns, every acked transaction is
/// inside the valid prefix, so replay never loses an acked commit; a
/// torn tail can only hold unacked transactions.
///
/// Checkpointing writes the full snapshot to `<path>.ckpt` via
/// write-to-temp + fsync + atomic rename + parent-directory fsync,
/// then COMPACTS the log: a fresh log holding only the suffix of
/// records the snapshot does not cover (byte offset >= the caller's
/// SnapEnd) replaces the old one by the same temp + fsync + rename +
/// dir-fsync dance. Appends may run concurrently with the snapshot
/// write — only the brief compaction holds the log lock. The
/// directory fsyncs pin the order: the new snapshot dirent is durable
/// before any log byte is dropped, so a crash anywhere in the
/// sequence leaves either the old pair intact or the new snapshot
/// with a full (or already compacted) log. Snapshot + full log means
/// the log still holds records the snapshot already includes —
/// recovery (see RelServer::recover) must skip every record whose
/// ticket is at or below the checkpoint's LastTicket, or it
/// double-applies history.
///
/// Fault injection for tests: failAfterBytes() makes appends beyond a
/// byte budget write only a prefix (a torn record) and every later
/// sync() fail; the static truncateTo()/flipBitAt() helpers damage a
/// closed log file the way a crash or bad sector would.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SERVER_WAL_H
#define RELC_SERVER_WAL_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace relc {

/// CRC-32 (IEEE 802.3 polynomial, the zlib one) over \p N bytes.
uint32_t crc32(const void *Data, size_t N);

class Wal {
public:
  explicit Wal(std::string Path) : Path(std::move(Path)) {}
  ~Wal();

  Wal(const Wal &) = delete;
  Wal &operator=(const Wal &) = delete;

  /// Opens (creating if absent) the log for appending; writes the
  /// magic into a fresh file. False with \p Err on I/O failure.
  bool open(std::string *Err);
  void close();

  /// Appends one record (not yet durable). \p Payload is the record
  /// body EXCLUDING the ticket, which this prepends. Thread-safe.
  /// False once the fault budget has tripped or on a write error.
  bool append(uint64_t Ticket, const uint8_t *Payload, size_t N);

  /// fsyncs everything appended so far. False if the sync (or any
  /// append since the last sync) failed — the caller must NOT ack the
  /// covered transactions.
  bool sync();

  /// Bytes covered by the last successful sync / total bytes appended.
  size_t durableBytes() const;
  size_t writtenBytes() const;
  /// Largest ticket appended by this instance (0 before any append).
  uint64_t lastTicket() const;

  /// Snapshot checkpoint, safe to run WHILE appends continue: durably
  /// writes `<path>.ckpt` (temp + fsync + rename + dir fsync) with no
  /// log lock held, then — briefly under the log lock — compacts the
  /// log to the records the snapshot does not cover: the suffix
  /// starting at byte \p SnapEnd, captured via writtenBytes() at the
  /// point the snapshot was taken (no append in flight there, so byte
  /// offset <= SnapEnd iff ticket <= LastTicket). \p LastTicket is the
  /// newest commit the snapshot includes. Concurrent checkpoints are
  /// serialized internally; only one should be in flight by design
  /// (the server's dedicated checkpoint thread).
  bool checkpoint(uint64_t LastTicket, const std::vector<uint8_t> &Snapshot,
                  size_t SnapEnd, std::string *Err);

  /// Back-compat form: compacts away the whole log (SnapEnd = end).
  /// Only correct when no append runs concurrently.
  bool checkpoint(uint64_t LastTicket, const std::vector<uint8_t> &Snapshot,
                  std::string *Err) {
    return checkpoint(LastTicket, Snapshot, static_cast<size_t>(-1), Err);
  }

  //===--------------------------------------------------------------------===
  // Recovery (static: operates on closed files)
  //===--------------------------------------------------------------------===

  struct Record {
    uint64_t Ticket;
    std::vector<uint8_t> Payload;
  };

  /// Replays the longest valid record prefix of \p Path into \p Fn, in
  /// file order (== ticket order within one server lifetime). A
  /// missing file is an empty log. Returns false only for a real I/O
  /// error or a wrong magic — never for a torn/corrupt tail. When
  /// \p ValidEnd is non-null it receives the byte offset where the
  /// valid prefix ends; reopening for append must first truncateTo()
  /// that offset so fresh records do not land after torn garbage.
  static bool replay(const std::string &Path,
                     const std::function<void(const Record &)> &Fn,
                     std::string *Err, size_t *ValidEnd = nullptr);

  /// Loads `<path>.ckpt` if present and intact. Returns true and fills
  /// the outputs on success; false (not an error) when no usable
  /// checkpoint exists.
  static bool loadCheckpoint(const std::string &Path, uint64_t &LastTicket,
                             std::vector<uint8_t> &Snapshot);

  //===--------------------------------------------------------------------===
  // Fault injection (tests)
  //===--------------------------------------------------------------------===

  /// After a total of \p N appended bytes, writes are cut short (the
  /// crossing record is written only up to the budget — a torn tail)
  /// and sync() returns false forever.
  void failAfterBytes(size_t N);

  /// Makes the next \p N checkpoint() calls fail (after writing a
  /// partial temp file, like a full disk mid-snapshot) WITHOUT
  /// touching the append path: the log keeps accepting and syncing
  /// records, so tests can drive commits through a failing-checkpoint
  /// window and assert the server's failure handling + backoff.
  void failNextCheckpoints(unsigned N);

  /// Truncates the file at \p Path to \p Size bytes.
  static bool truncateTo(const std::string &Path, size_t Size);
  /// Flips bit \p Bit of byte \p Offset in the file at \p Path.
  static bool flipBitAt(const std::string &Path, size_t Offset, unsigned Bit);
  /// Size of the file at \p Path (0 if missing).
  static size_t fileSize(const std::string &Path);

  static constexpr char Magic[9] = "RELCWAL1";
  static constexpr char CkptMagic[9] = "RELCCKP1";
  static constexpr size_t MagicLen = 8;
  /// Bytes of record header: u32 len + u32 crc.
  static constexpr size_t HeaderLen = 8;

private:
  std::string Path;
  int Fd = -1;
  mutable std::mutex Mu;
  /// Serializes whole checkpoint() calls against each other (Mu only
  /// covers the log fd and counters; the snapshot write runs outside
  /// it so appends keep flowing).
  std::mutex CkptMu;
  size_t Written = 0;
  size_t Durable = 0;
  uint64_t LastTicketSeen = 0;
  /// SIZE_MAX = no fault armed; once tripped, Tripped latches.
  size_t FailAfter = static_cast<size_t>(-1);
  bool Tripped = false;
  /// Checkpoint fault budget (failNextCheckpoints).
  unsigned CkptFailures = 0;
};

} // namespace relc

#endif // RELC_SERVER_WAL_H
