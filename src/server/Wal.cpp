//===- server/Wal.cpp - Write-ahead log implementation --------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "server/Wal.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace relc;

constexpr char Wal::Magic[9];
constexpr char Wal::CkptMagic[9];

//===----------------------------------------------------------------------===//
// CRC-32
//===----------------------------------------------------------------------===//

namespace {
struct Crc32Table {
  uint32_t T[256];
  Crc32Table() {
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
  }
};
} // namespace

uint32_t relc::crc32(const void *Data, size_t N) {
  static const Crc32Table Table;
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint32_t C = 0xFFFFFFFFu;
  for (size_t I = 0; I != N; ++I)
    C = Table.T[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

//===----------------------------------------------------------------------===//
// Small file helpers
//===----------------------------------------------------------------------===//

static void setErr(std::string *Err, const std::string &What) {
  if (Err)
    *Err = What + ": " + std::strerror(errno);
}

static bool writeAll(int Fd, const uint8_t *P, size_t N) {
  while (N != 0) {
    ssize_t W = ::write(Fd, P, N);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += W;
    N -= static_cast<size_t>(W);
  }
  return true;
}

static void putU32(uint8_t *P, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    P[I] = static_cast<uint8_t>(V >> (8 * I));
}
static void putU64(uint8_t *P, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    P[I] = static_cast<uint8_t>(V >> (8 * I));
}
static uint32_t getU32(const uint8_t *P) {
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(P[I]) << (8 * I);
  return V;
}
static uint64_t getU64(const uint8_t *P) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

/// fsyncs the directory holding \p Path. POSIX does not order a
/// rename's (or create's) dirent durability against later data writes
/// to other files — without this, a crash can surface a truncated log
/// next to the OLD checkpoint dirent, losing acknowledged commits.
static bool syncParentDir(const std::string &Path) {
  std::string::size_type Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos
                        ? std::string(".")
                        : Slash == 0 ? std::string("/") : Path.substr(0, Slash);
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return false;
  bool Ok = ::fsync(Fd) == 0;
  ::close(Fd);
  return Ok;
}

/// Reads a whole file into \p Out; false if it cannot be opened.
static bool slurp(const std::string &Path, std::vector<uint8_t> &Out) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return false;
  Out.clear();
  uint8_t Buf[1 << 16];
  for (;;) {
    ssize_t R = ::read(Fd, Buf, sizeof(Buf));
    if (R < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      return false;
    }
    if (R == 0)
      break;
    Out.insert(Out.end(), Buf, Buf + R);
  }
  ::close(Fd);
  return true;
}

//===----------------------------------------------------------------------===//
// Wal
//===----------------------------------------------------------------------===//

Wal::~Wal() { close(); }

bool Wal::open(std::string *Err) {
  std::lock_guard<std::mutex> Lock(Mu);
  Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (Fd < 0) {
    setErr(Err, "open " + Path);
    return false;
  }
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    setErr(Err, "fstat " + Path);
    ::close(Fd);
    Fd = -1;
    return false;
  }
  if (St.st_size == 0) {
    // The dirent of a freshly created file needs its own directory
    // fsync, or a crash can lose the whole file after commits were
    // acked against it.
    if (!writeAll(Fd, reinterpret_cast<const uint8_t *>(Magic), MagicLen) ||
        ::fsync(Fd) != 0 || !syncParentDir(Path)) {
      setErr(Err, "init " + Path);
      ::close(Fd);
      Fd = -1;
      return false;
    }
    Written = Durable = MagicLen;
  } else {
    // Appends land at EOF whatever state the tail is in; replay is the
    // authority on which prefix is valid, but new records must start
    // AFTER any torn tail would corrupt them — so recovery protocol is
    // replay first, truncate the file to the valid prefix, then open.
    Written = Durable = static_cast<size_t>(St.st_size);
  }
  return true;
}

void Wal::close() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}

bool Wal::append(uint64_t Ticket, const uint8_t *Payload, size_t N) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0 || Tripped)
    return false;
  std::vector<uint8_t> Rec(HeaderLen + 8 + N);
  putU32(Rec.data(), static_cast<uint32_t>(8 + N));
  putU64(Rec.data() + HeaderLen, Ticket);
  std::memcpy(Rec.data() + HeaderLen + 8, Payload, N);
  putU32(Rec.data() + 4, crc32(Rec.data() + HeaderLen, 8 + N));

  size_t Len = Rec.size();
  if (Written + Len > FailAfter) {
    // Fault budget crossed: emit only the in-budget prefix — exactly
    // the torn-tail shape a crash mid-write leaves behind.
    size_t Keep = FailAfter > Written ? FailAfter - Written : 0;
    writeAll(Fd, Rec.data(), Keep);
    Written += Keep;
    Tripped = true;
    return false;
  }
  if (!writeAll(Fd, Rec.data(), Len)) {
    Tripped = true;
    return false;
  }
  Written += Len;
  if (Ticket > LastTicketSeen)
    LastTicketSeen = Ticket;
  return true;
}

bool Wal::sync() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0 || Tripped)
    return false;
  if (Durable == Written)
    return true;
  if (::fsync(Fd) != 0) {
    Tripped = true;
    return false;
  }
  Durable = Written;
  return true;
}

size_t Wal::durableBytes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Durable;
}

size_t Wal::writtenBytes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Written;
}

uint64_t Wal::lastTicket() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return LastTicketSeen;
}

void Wal::failAfterBytes(size_t N) {
  std::lock_guard<std::mutex> Lock(Mu);
  FailAfter = N;
}

void Wal::failNextCheckpoints(unsigned N) {
  std::lock_guard<std::mutex> Lock(Mu);
  CkptFailures = N;
}

bool Wal::checkpoint(uint64_t LastTicket, const std::vector<uint8_t> &Snapshot,
                     size_t SnapEnd, std::string *Err) {
  // One checkpoint at a time; appends are NOT excluded — only the
  // compaction below takes the log lock.
  std::lock_guard<std::mutex> CkptLock(CkptMu);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Fd < 0 || Tripped) {
      if (Err)
        *Err = "wal not open or fault-tripped";
      return false;
    }
    if (CkptFailures != 0) {
      --CkptFailures;
      if (Err)
        *Err = "checkpoint fault injected";
      return false;
    }
  }
  // 1. Durable snapshot under a temp name. No log lock held: this is
  //    the O(snapshot) part, and commits keep appending throughout.
  std::string Tmp = Path + ".ckpt.tmp";
  int TFd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (TFd < 0) {
    setErr(Err, "open " + Tmp);
    return false;
  }
  uint8_t Head[MagicLen + 8 + 8];
  std::memcpy(Head, CkptMagic, MagicLen);
  putU64(Head + MagicLen, LastTicket);
  putU32(Head + MagicLen + 8, static_cast<uint32_t>(Snapshot.size()));
  putU32(Head + MagicLen + 12, crc32(Snapshot.data(), Snapshot.size()));
  if (!writeAll(TFd, Head, sizeof(Head)) ||
      !writeAll(TFd, Snapshot.data(), Snapshot.size()) || ::fsync(TFd) != 0) {
    setErr(Err, "write " + Tmp);
    ::close(TFd);
    return false;
  }
  ::close(TFd);
  // 2. Atomic publish. The rename's dirent must be durable BEFORE any
  //    log byte is dropped: nothing orders the rename against the
  //    compaction below except this directory fsync.
  std::string Ckpt = Path + ".ckpt";
  if (::rename(Tmp.c_str(), Ckpt.c_str()) != 0) {
    setErr(Err, "rename " + Tmp);
    return false;
  }
  if (!syncParentDir(Ckpt)) {
    setErr(Err, "fsync parent dir of " + Ckpt);
    return false;
  }
  // 3. Compact: replace the log with magic + the records the snapshot
  //    does not cover — the suffix at byte offsets >= SnapEnd. Records
  //    below SnapEnd carry tickets <= LastTicket (the caller captured
  //    SnapEnd with no append in flight), and are now redundant with
  //    the published snapshot; records above it must survive. Brief:
  //    O(post-snapshot suffix), not O(log). A crash before the log
  //    rename keeps snapshot + full log, which recovery handles by
  //    skipping tickets <= LastTicket.
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0 || Tripped) {
    if (Err)
      *Err = "wal tripped during checkpoint";
    return false;
  }
  if (SnapEnd < MagicLen)
    SnapEnd = MagicLen;
  if (SnapEnd > Written)
    SnapEnd = Written;
  size_t TailLen = Written - SnapEnd;
  std::vector<uint8_t> Tail(TailLen);
  size_t Got = 0;
  while (Got != TailLen) {
    ssize_t R = ::pread(Fd, Tail.data() + Got, TailLen - Got,
                        static_cast<off_t>(SnapEnd + Got));
    if (R < 0 && errno == EINTR)
      continue;
    if (R <= 0) {
      setErr(Err, "read tail of " + Path);
      return false;
    }
    Got += static_cast<size_t>(R);
  }
  std::string LogTmp = Path + ".log.tmp";
  int LFd = ::open(LogTmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (LFd < 0) {
    setErr(Err, "open " + LogTmp);
    return false;
  }
  if (!writeAll(LFd, reinterpret_cast<const uint8_t *>(Magic), MagicLen) ||
      !writeAll(LFd, Tail.data(), TailLen) || ::fsync(LFd) != 0) {
    setErr(Err, "write " + LogTmp);
    ::close(LFd);
    return false;
  }
  ::close(LFd);
  if (::rename(LogTmp.c_str(), Path.c_str()) != 0) {
    setErr(Err, "rename " + LogTmp);
    return false;
  }
  if (!syncParentDir(Path)) {
    setErr(Err, "fsync parent dir of " + Path);
    return false;
  }
  int NewFd = ::open(Path.c_str(), O_RDWR | O_APPEND, 0644);
  if (NewFd < 0) {
    // The old fd now points at the unlinked inode: further appends
    // would be silently lost. Latch the fault so syncs fail loudly.
    setErr(Err, "reopen " + Path);
    Tripped = true;
    return false;
  }
  ::close(Fd);
  Fd = NewFd;
  Written = Durable = MagicLen + TailLen;
  return true;
}

bool Wal::replay(const std::string &Path,
                 const std::function<void(const Record &)> &Fn,
                 std::string *Err, size_t *ValidEnd) {
  if (ValidEnd)
    *ValidEnd = 0;
  std::vector<uint8_t> Bytes;
  if (!slurp(Path, Bytes)) {
    if (errno == ENOENT)
      return true; // no log yet: empty history
    setErr(Err, "read " + Path);
    return false;
  }
  if (Bytes.size() < MagicLen) {
    // A file torn inside the magic can only come from a crash during
    // creation, before any record: an empty history.
    return true;
  }
  if (std::memcmp(Bytes.data(), Magic, MagicLen) != 0) {
    if (Err)
      *Err = Path + ": bad WAL magic";
    return false;
  }
  size_t Off = MagicLen;
  if (ValidEnd)
    *ValidEnd = Off;
  Record R;
  while (Bytes.size() - Off >= HeaderLen) {
    uint32_t Len = getU32(Bytes.data() + Off);
    uint32_t Crc = getU32(Bytes.data() + Off + 4);
    if (Len < 8 || Bytes.size() - Off - HeaderLen < Len)
      return true; // torn tail
    const uint8_t *Payload = Bytes.data() + Off + HeaderLen;
    if (crc32(Payload, Len) != Crc)
      return true; // corrupt tail
    R.Ticket = getU64(Payload);
    R.Payload.assign(Payload + 8, Payload + Len);
    Fn(R);
    Off += HeaderLen + Len;
    if (ValidEnd)
      *ValidEnd = Off;
  }
  return true;
}

bool Wal::loadCheckpoint(const std::string &Path, uint64_t &LastTicket,
                         std::vector<uint8_t> &Snapshot) {
  std::vector<uint8_t> Bytes;
  if (!slurp(Path + ".ckpt", Bytes))
    return false;
  if (Bytes.size() < MagicLen + 16 ||
      std::memcmp(Bytes.data(), CkptMagic, MagicLen) != 0)
    return false;
  uint64_t Ticket = getU64(Bytes.data() + MagicLen);
  uint32_t Len = getU32(Bytes.data() + MagicLen + 8);
  uint32_t Crc = getU32(Bytes.data() + MagicLen + 12);
  if (Bytes.size() - MagicLen - 16 < Len)
    return false;
  if (crc32(Bytes.data() + MagicLen + 16, Len) != Crc)
    return false;
  LastTicket = Ticket;
  Snapshot.assign(Bytes.begin() + static_cast<long>(MagicLen + 16),
                  Bytes.begin() + static_cast<long>(MagicLen + 16 + Len));
  return true;
}

bool Wal::truncateTo(const std::string &Path, size_t Size) {
  return ::truncate(Path.c_str(), static_cast<off_t>(Size)) == 0;
}

bool Wal::flipBitAt(const std::string &Path, size_t Offset, unsigned Bit) {
  int Fd = ::open(Path.c_str(), O_RDWR);
  if (Fd < 0)
    return false;
  uint8_t B;
  if (::pread(Fd, &B, 1, static_cast<off_t>(Offset)) != 1) {
    ::close(Fd);
    return false;
  }
  B ^= static_cast<uint8_t>(1u << (Bit % 8));
  bool Ok = ::pwrite(Fd, &B, 1, static_cast<off_t>(Offset)) == 1;
  ::close(Fd);
  return Ok;
}

size_t Wal::fileSize(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return 0;
  return static_cast<size_t>(St.st_size);
}
