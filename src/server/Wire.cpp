//===- server/Wire.cpp - Socket and frame helpers -------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "server/Wire.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace relc {
namespace wire {

static void setErr(std::string *Err, const char *What) {
  if (Err)
    *Err = std::string(What) + ": " + std::strerror(errno);
}

int listenTcp(uint16_t Port, std::string *Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    setErr(Err, "socket");
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    setErr(Err, "bind");
    ::close(Fd);
    return -1;
  }
  if (::listen(Fd, 64) != 0) {
    setErr(Err, "listen");
    ::close(Fd);
    return -1;
  }
  return Fd;
}

uint16_t boundPort(int Fd) {
  sockaddr_in Addr{};
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0)
    return 0;
  return ntohs(Addr.sin_port);
}

int connectTcp(uint16_t Port, std::string *Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    setErr(Err, "socket");
    return -1;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    setErr(Err, "connect");
    ::close(Fd);
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Fd;
}

bool readFull(int Fd, void *Buf, size_t N) {
  uint8_t *P = static_cast<uint8_t *>(Buf);
  while (N != 0) {
    ssize_t R = ::recv(Fd, P, N, 0);
    if (R == 0)
      return false; // orderly EOF
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += R;
    N -= static_cast<size_t>(R);
  }
  return true;
}

bool writeFull(int Fd, const void *Buf, size_t N) {
  const uint8_t *P = static_cast<const uint8_t *>(Buf);
  while (N != 0) {
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as an
    // error return, not a process-killing SIGPIPE.
    ssize_t R = ::send(Fd, P, N, MSG_NOSIGNAL);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += R;
    N -= static_cast<size_t>(R);
  }
  return true;
}

bool readFrame(int Fd, std::vector<uint8_t> &Body) {
  uint8_t Prefix[4];
  if (!readFull(Fd, Prefix, 4))
    return false;
  uint32_t Len = 0;
  for (int I = 0; I != 4; ++I)
    Len |= static_cast<uint32_t>(Prefix[I]) << (8 * I);
  if (Len > MaxBody)
    return false; // poisoned stream: never allocate attacker-sized buffers
  Body.resize(Len);
  return Len == 0 || readFull(Fd, Body.data(), Len);
}

bool writeFrame(int Fd, const uint8_t *Body, size_t N) {
  if (N > MaxBody)
    return false;
  uint8_t Prefix[4];
  for (int I = 0; I != 4; ++I)
    Prefix[I] = static_cast<uint8_t>(N >> (8 * I));
  // Two writes are fine: the reader reassembles by length prefix and
  // writers on one fd serialize under the connection's write mutex.
  return writeFull(Fd, Prefix, 4) && writeFull(Fd, Body, N);
}

} // namespace wire
} // namespace relc
