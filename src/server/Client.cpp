//===- server/Client.cpp - Blocking + pipelined wire client ---------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include <unistd.h>

using namespace relc;
using wire::ByteReader;
using wire::ByteWriter;
using wire::Status;

bool RelClient::connect(uint16_t Port, std::string *Err) {
  close();
  Fd = wire::connectTcp(Port, Err);
  return Fd >= 0;
}

void RelClient::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}

bool RelClient::sendRaw(const std::vector<uint8_t> &Body) {
  return Fd >= 0 && wire::writeFrame(Fd, Body);
}

bool RelClient::recvRaw(std::vector<uint8_t> &Body) {
  return Fd >= 0 && wire::readFrame(Fd, Body);
}

uint64_t RelClient::sendRequest(wire::Op Op,
                                const std::vector<uint8_t> &Payload) {
  uint64_t ReqId = NextReqId++;
  ByteWriter W;
  W.u8(static_cast<uint8_t>(Op));
  W.u64(ReqId);
  W.bytes(Payload.data(), Payload.size());
  if (!sendRaw(W.data()))
    return 0;
  return ReqId;
}

bool RelClient::recvReply(Reply &R) {
  std::vector<uint8_t> Body;
  if (!recvRaw(Body))
    return false;
  ByteReader Rd(Body);
  uint8_t St;
  if (!Rd.u8(St) || !Rd.u64(R.ReqId))
    return false;
  R.St = static_cast<Status>(St);
  R.Ticket = 0;
  R.FailedOp = 0;
  R.Error.clear();
  R.Extra.clear();
  switch (R.St) {
  case Status::Ok:
    // Mutation acks carry a ticket; reads carry their own payloads.
    // Keep the whole payload in Extra and decode the ticket when the
    // shape matches (8-byte payload) — the typed wrappers know which
    // is which.
    R.Extra.assign(Body.begin() + 9, Body.end());
    if (R.Extra.size() == 8) {
      ByteReader T(R.Extra);
      T.u64(R.Ticket);
    }
    return true;
  case Status::Aborted:
    return Rd.u32(R.FailedOp);
  case Status::Error:
    return Rd.str(R.Error);
  }
  return false;
}

bool RelClient::roundTrip(wire::Op Op, const std::vector<uint8_t> &Payload,
                          Reply &R) {
  uint64_t ReqId = sendRequest(Op, Payload);
  if (ReqId == 0)
    return false;
  if (!recvReply(R))
    return false;
  return R.ReqId == ReqId;
}

bool RelClient::ping() {
  Reply R;
  return roundTrip(wire::Op::Ping, {}, R) && R.ok();
}

bool RelClient::insert(const Tuple &T, Reply *Out) {
  ByteWriter W;
  W.tuple(T);
  Reply R;
  if (!roundTrip(wire::Op::Insert, W.data(), R))
    return false;
  if (Out)
    *Out = R;
  return true;
}

bool RelClient::remove(const Tuple &Pattern, Reply *Out) {
  ByteWriter W;
  W.tuple(Pattern);
  Reply R;
  if (!roundTrip(wire::Op::Remove, W.data(), R))
    return false;
  if (Out)
    *Out = R;
  return true;
}

bool RelClient::update(const Tuple &Key, const Tuple &Changes, Reply *Out) {
  ByteWriter W;
  W.tuple(Key);
  W.tuple(Changes);
  Reply R;
  if (!roundTrip(wire::Op::Update, W.data(), R))
    return false;
  if (Out)
    *Out = R;
  return true;
}

static std::vector<uint8_t>
encodeTransact(const std::vector<wire::WireTxOp> &Ops) {
  ByteWriter W;
  W.u32(static_cast<uint32_t>(Ops.size()));
  for (const wire::WireTxOp &Op : Ops)
    W.txOp(Op);
  return W.take();
}

bool RelClient::transact(const std::vector<wire::WireTxOp> &Ops, Reply *Out) {
  Reply R;
  if (!roundTrip(wire::Op::Transact, encodeTransact(Ops), R))
    return false;
  if (Out)
    *Out = R;
  return true;
}

bool RelClient::query(const Tuple &Pattern, ColumnSet Out,
                      std::vector<Tuple> &Rows) {
  ByteWriter W;
  W.tuple(Pattern);
  W.u64(Out.mask());
  Reply R;
  if (!roundTrip(wire::Op::Query, W.data(), R) || !R.ok())
    return false;
  ByteReader Rd(R.Extra);
  uint32_t N;
  if (!Rd.u32(N))
    return false;
  Rows.clear();
  Rows.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    Tuple T;
    if (!Rd.tuple(T))
      return false;
    Rows.push_back(std::move(T));
  }
  return Rd.remaining() == 0;
}

bool RelClient::size(uint64_t &N) {
  Reply R;
  if (!roundTrip(wire::Op::Size, {}, R) || !R.ok())
    return false;
  ByteReader Rd(R.Extra);
  return Rd.u64(N);
}

bool RelClient::checkpoint(Reply *Out) {
  Reply R;
  if (!roundTrip(wire::Op::Checkpoint, {}, R))
    return false;
  if (Out)
    *Out = R;
  return R.ok();
}

bool RelClient::stats(ServerStats &S) {
  Reply R;
  if (!roundTrip(wire::Op::Stats, {}, R) || !R.ok())
    return false;
  ByteReader Rd(R.Extra);
  return Rd.u64(S.Groups) && Rd.u64(S.Committed) &&
         Rd.u64(S.MultiTxGroups) && Rd.u64(S.MaxGroupSize) &&
         Rd.u64(S.Syncs) && Rd.u64(S.ArenaBytes) && Rd.u64(S.ArenaLive) &&
         Rd.u64(S.CheckpointFailures);
}

uint64_t RelClient::sendInsert(const Tuple &T) {
  ByteWriter W;
  W.tuple(T);
  return sendRequest(wire::Op::Insert, W.data());
}

uint64_t RelClient::sendTransact(const std::vector<wire::WireTxOp> &Ops) {
  return sendRequest(wire::Op::Transact, encodeTransact(Ops));
}
