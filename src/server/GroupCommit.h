//===- server/GroupCommit.h - Batched durable commit ------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The group-commit queue between the server's connection threads and
/// the concurrent relation: mutations are submitted as transact
/// batches with a completion callback, a single committer thread
/// drains the queue in FIFO order, folds *compatible* neighbors into
/// one commit group, applies the whole group under ONE stripe
/// acquisition (ConcurrentRelation::withTxLocks + transactPreLocked),
/// makes the group durable with ONE Wal::sync(), and only then runs
/// the completion callbacks — so an acknowledgement always implies the
/// transaction is on disk, and the fsync cost is amortized over the
/// group.
///
/// Compatibility is a lock-footprint policy, not a correctness
/// condition (any FIFO prefix applied sequentially under the union of
/// its stripes is serializable — the applications *are* a serial
/// order, and the tickets drawn inside agree with it). A group grows
/// from its head transaction while the next queued transaction's lock
/// plan is either a subset of the group's stripe union or disjoint
/// from it; the first incompatible transaction ends the group (FIFO is
/// never reordered), as does a fan-out (all-stripes) plan meeting a
/// routed group, a barrier, or the MaxGroup cap. Subset folding means
/// contended same-stripe transfers batch together; disjoint folding
/// means unrelated shards commit under one fsync without waiting for
/// each other.
///
/// pause()/resume() freeze the committer so tests can pile up a queue
/// and observe a multi-transaction group deterministically; barrier()
/// runs a callback on the committer thread after everything enqueued
/// before it has committed (the checkpoint hook).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SERVER_GROUPCOMMIT_H
#define RELC_SERVER_GROUPCOMMIT_H

#include "concurrent/ConcurrentRelation.h"
#include "server/Wal.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace relc {

struct GroupCommitStats {
  uint64_t Submitted = 0;
  uint64_t Committed = 0;
  uint64_t Aborted = 0;
  /// Commit groups applied (each = one stripe acquisition).
  uint64_t Groups = 0;
  /// Groups that folded more than one transaction.
  uint64_t MultiTxGroups = 0;
  uint64_t MaxGroupSize = 0;
  /// Wal::sync calls (== groups with at least one commit, when a Wal
  /// is attached).
  uint64_t Syncs = 0;
  uint64_t SyncFailures = 0;
};

class GroupCommit {
public:
  /// Completion callback: the transact outcome plus whether the commit
  /// is durable (synced — always true for aborts and for servers
  /// running without a Wal). Runs on the committer thread; must not
  /// submit() synchronously-waiting work.
  using DoneFn = std::function<void(const TxResult &, bool Durable)>;

  struct Options {
    /// Max transactions folded into one group.
    size_t MaxGroup = 64;
  };

  /// \p Log may be null (volatile server: no append, no sync, Durable
  /// always true). The caller owns both and keeps them alive across
  /// stop(). The Wal hookup (ConcurrentRelation::setCommitHook →
  /// Wal::append) is the caller's: this class only paces the syncs.
  GroupCommit(ConcurrentRelation &Rel, Wal *Log, Options Opts);
  GroupCommit(ConcurrentRelation &Rel, Wal *Log)
      : GroupCommit(Rel, Log, Options()) {}
  ~GroupCommit();

  GroupCommit(const GroupCommit &) = delete;
  GroupCommit &operator=(const GroupCommit &) = delete;

  /// Spawns the committer thread. Call once, before the first submit.
  void start();

  /// Drains everything already submitted, then joins the committer.
  /// Idempotent.
  void stop();

  /// Enqueues one transact batch; \p Done fires after the group
  /// containing it has been applied and synced. The lock plan is
  /// computed here, on the submitting thread.
  void submit(std::vector<TxOp> Ops, DoneFn Done);

  /// Runs \p Fn on the committer thread after every earlier submission
  /// has committed and synced; later submissions wait behind it.
  /// Asynchronous — safe to call from a DoneFn.
  void barrier(std::function<void()> Fn);

  /// Test support: freeze/unfreeze the committer (submissions queue up
  /// while paused, so resume() demonstrably forms multi-tx groups).
  void pause();
  void resume();

  GroupCommitStats stats() const;

private:
  struct Item {
    std::vector<TxOp> Ops;
    DoneFn Done;
    ConcurrentRelation::TxLockPlan Plan;
    std::function<void()> BarrierFn; // set => barrier item
  };

  void run();
  void commitGroup(std::vector<Item> &Group);

  ConcurrentRelation &Rel;
  Wal *Log;
  Options Opts;
  /// Every stripe index, for fan-out scopes.
  std::vector<unsigned> AllStripes;

  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::deque<Item> Queue;
  bool Paused = false;
  bool Stopping = false;
  bool Started = false;
  GroupCommitStats Stats;
  std::thread Committer;
};

} // namespace relc

#endif // RELC_SERVER_GROUPCOMMIT_H
