//===- server/GroupCommit.cpp - Batched durable commit --------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "server/GroupCommit.h"

#include <algorithm>
#include <cassert>

using namespace relc;

GroupCommit::GroupCommit(ConcurrentRelation &Rel, Wal *Log, Options Opts)
    : Rel(Rel), Log(Log), Opts(Opts) {
  assert(Opts.MaxGroup > 0 && "a commit group holds at least one txn");
  AllStripes.resize(Rel.numShards());
  for (unsigned I = 0; I != Rel.numShards(); ++I)
    AllStripes[I] = I;
}

GroupCommit::~GroupCommit() { stop(); }

void GroupCommit::start() {
  std::lock_guard<std::mutex> Lock(Mu);
  assert(!Started && "start() is one-shot");
  Started = true;
  Committer = std::thread([this] { run(); });
}

void GroupCommit::stop() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Started || Stopping)
      return;
    Stopping = true;
  }
  Cv.notify_all();
  Committer.join();
}

void GroupCommit::submit(std::vector<TxOp> Ops, DoneFn Done) {
  Item It;
  It.Plan = Rel.transactLockPlan(Ops); // lock-free; off the committer
  It.Ops = std::move(Ops);
  It.Done = std::move(Done);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Stats.Submitted;
    Queue.push_back(std::move(It));
  }
  Cv.notify_all();
}

void GroupCommit::barrier(std::function<void()> Fn) {
  Item It;
  It.BarrierFn = std::move(Fn);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(It));
  }
  Cv.notify_all();
}

void GroupCommit::pause() {
  std::lock_guard<std::mutex> Lock(Mu);
  Paused = true;
}

void GroupCommit::resume() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Paused = false;
  }
  Cv.notify_all();
}

GroupCommitStats GroupCommit::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

/// Whether \p Plan can join a group whose footprint is \p Union
/// (growing \p Union on success). Policy, not correctness — see the
/// header comment.
static bool foldInto(ConcurrentRelation::TxLockPlan &Union,
                     const ConcurrentRelation::TxLockPlan &Plan) {
  if (Union.AllShards)
    return true; // the group already holds everything
  if (Plan.AllShards)
    return false; // don't widen a routed group to a full sweep
  // Plan.Stripes and Union.Stripes are both sorted ascending.
  bool Subset = std::includes(Union.Stripes.begin(), Union.Stripes.end(),
                              Plan.Stripes.begin(), Plan.Stripes.end());
  if (Subset)
    return true;
  std::vector<unsigned> Inter;
  std::set_intersection(Union.Stripes.begin(), Union.Stripes.end(),
                        Plan.Stripes.begin(), Plan.Stripes.end(),
                        std::back_inserter(Inter));
  if (!Inter.empty())
    return false; // partial overlap: end the group, keep FIFO
  std::vector<unsigned> Merged;
  std::merge(Union.Stripes.begin(), Union.Stripes.end(),
             Plan.Stripes.begin(), Plan.Stripes.end(),
             std::back_inserter(Merged));
  Union.Stripes = std::move(Merged);
  return true;
}

void GroupCommit::run() {
  for (;;) {
    std::deque<Item> Local;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      Cv.wait(Lock, [this] {
        return Stopping || (!Paused && !Queue.empty());
      });
      if (Queue.empty() && Stopping)
        return;
      // On stop, drain even while paused — submitted work always
      // completes (and its Done always fires) before join.
      Local.swap(Queue);
    }
    size_t I = 0;
    while (I != Local.size()) {
      if (Local[I].BarrierFn) {
        Local[I].BarrierFn();
        ++I;
        continue;
      }
      std::vector<Item> Group;
      ConcurrentRelation::TxLockPlan Union = Local[I].Plan;
      Group.push_back(std::move(Local[I]));
      ++I;
      while (I != Local.size() && Group.size() < Opts.MaxGroup &&
             !Local[I].BarrierFn && foldInto(Union, Local[I].Plan)) {
        Group.push_back(std::move(Local[I]));
        ++I;
      }
      // Apply under one acquisition of the union footprint. The scope
      // handed to each member is the whole footprint: a superset of
      // the member's own plan, which transactLocked accepts (size
      // accounting spans the scope either way).
      const std::vector<unsigned> &Scope =
          Union.AllShards ? AllStripes : Union.Stripes;
      std::vector<TxResult> Results(Group.size());
      Rel.withTxLocks(Union, [&] {
        for (size_t G = 0; G != Group.size(); ++G)
          Results[G] = Rel.transactPreLocked(Group[G].Ops, Scope);
      });
      // One sync covers every commit in the group.
      size_t NumCommitted = 0;
      for (const TxResult &R : Results)
        NumCommitted += R.Committed;
      bool Durable = true;
      bool Synced = false;
      if (Log && NumCommitted != 0) {
        Durable = Log->sync();
        Synced = true;
      }
      // Stats first, completions second: an observer that has seen a
      // member's ack (sent from its Done) must also see the group in
      // stats(), or a stats read racing the committer reports a state
      // where acked commits belong to no group.
      {
        std::lock_guard<std::mutex> Lock(Mu);
        ++Stats.Groups;
        Stats.Committed += NumCommitted;
        Stats.Aborted += Group.size() - NumCommitted;
        Stats.MultiTxGroups += Group.size() > 1;
        Stats.MaxGroupSize = std::max<uint64_t>(Stats.MaxGroupSize,
                                                Group.size());
        Stats.Syncs += Synced;
        Stats.SyncFailures += Synced && !Durable;
      }
      for (size_t G = 0; G != Group.size(); ++G)
        if (Group[G].Done)
          Group[G].Done(Results[G],
                        Results[G].Committed ? Durable : true);
    }
  }
}
