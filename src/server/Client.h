//===- server/Client.h - Blocking + pipelined wire client -------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RelClient speaks the server/Wire.h protocol from one thread: a
/// blocking convenience API (send one request, wait for its reply) and
/// a pipelined API (sendX() returns the request id immediately;
/// recvReply() delivers replies in server order, tagged with their
/// ids) for driving group commit — a batch of pipelined transacts is
/// what gives the committer something to fold. sendRaw()/recvRaw()
/// expose the frame layer for protocol fuzzing tests.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SERVER_CLIENT_H
#define RELC_SERVER_CLIENT_H

#include "server/Wire.h"

#include <cstdint>
#include <string>
#include <vector>

namespace relc {

class RelClient {
public:
  RelClient() = default;
  ~RelClient() { close(); }

  RelClient(const RelClient &) = delete;
  RelClient &operator=(const RelClient &) = delete;

  bool connect(uint16_t Port, std::string *Err = nullptr);
  void close();
  bool connected() const { return Fd >= 0; }
  /// Raw socket, for tests that want to break the protocol.
  int fd() const { return Fd; }

  /// One decoded response.
  struct Reply {
    wire::Status St = wire::Status::Error;
    uint64_t ReqId = 0;
    /// Ok mutations: the commit ticket.
    uint64_t Ticket = 0;
    /// Aborted: index of the failing op.
    uint32_t FailedOp = 0;
    /// Error: the server's message.
    std::string Error;
    /// Ok payload past the fixed fields (queries, stats).
    std::vector<uint8_t> Extra;

    bool ok() const { return St == wire::Status::Ok; }
    bool aborted() const { return St == wire::Status::Aborted; }
  };

  //===--------------------------------------------------------------------===
  // Blocking API (no pipelined requests may be outstanding)
  //===--------------------------------------------------------------------===

  bool ping();
  /// Mutations: false on transport failure; otherwise \p R (optional)
  /// holds the outcome. A true return with R.ok() is a durable ack.
  bool insert(const Tuple &T, Reply *R = nullptr);
  bool remove(const Tuple &Pattern, Reply *R = nullptr);
  bool update(const Tuple &Key, const Tuple &Changes, Reply *R = nullptr);
  bool transact(const std::vector<wire::WireTxOp> &Ops, Reply *R = nullptr);
  bool query(const Tuple &Pattern, ColumnSet Out, std::vector<Tuple> &Rows);
  bool size(uint64_t &N);
  bool checkpoint(Reply *R = nullptr);
  struct ServerStats {
    uint64_t Groups = 0;
    uint64_t Committed = 0;
    uint64_t MultiTxGroups = 0;
    uint64_t MaxGroupSize = 0;
    uint64_t Syncs = 0;
    /// Slab-arena memory of the served relation, summed over shards:
    /// bytes reserved and blocks (nodes + container cells) live.
    uint64_t ArenaBytes = 0;
    uint64_t ArenaLive = 0;
    /// Checkpoints that failed on the server (logged + backed off).
    uint64_t CheckpointFailures = 0;
  };
  bool stats(ServerStats &S);

  //===--------------------------------------------------------------------===
  // Pipelined API
  //===--------------------------------------------------------------------===

  /// Sends without waiting; returns the request id (0 on transport
  /// failure — ids start at 1).
  uint64_t sendInsert(const Tuple &T);
  uint64_t sendTransact(const std::vector<wire::WireTxOp> &Ops);
  /// Next reply in server order; false on transport failure.
  bool recvReply(Reply &R);

  //===--------------------------------------------------------------------===
  // Raw frames (protocol fuzzing)
  //===--------------------------------------------------------------------===

  bool sendRaw(const std::vector<uint8_t> &Body);
  bool recvRaw(std::vector<uint8_t> &Body);

private:
  uint64_t sendRequest(wire::Op Op,
                       const std::vector<uint8_t> &Payload);
  bool roundTrip(wire::Op Op, const std::vector<uint8_t> &Payload,
                 Reply &R);

  int Fd = -1;
  uint64_t NextReqId = 1;
};

} // namespace relc

#endif // RELC_SERVER_CLIENT_H
