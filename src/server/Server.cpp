//===- server/Server.cpp - The relserved network server -------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <future>
#include <sys/socket.h>
#include <unistd.h>

using namespace relc;
using wire::Status;

RelServer::Conn::~Conn() {
  if (Fd >= 0)
    ::close(Fd);
}

RelServer::RelServer(const Decomposition &D, ServerOptions Opts)
    : Opts(std::move(Opts)), Rel(D, this->Opts.Concurrent),
      Log(this->Opts.WalPath), HasWal(!this->Opts.WalPath.empty()),
      Committer(Rel, HasWal ? &Log : nullptr,
                GroupCommit::Options{this->Opts.MaxGroup}) {}

RelServer::~RelServer() { stop(); }

//===----------------------------------------------------------------------===//
// Snapshot codec
//===----------------------------------------------------------------------===//

std::vector<uint8_t> RelServer::encodeSnapshot(const Relation &R) {
  wire::ByteWriter W;
  std::vector<Tuple> Ts = R.tuples();
  W.u32(static_cast<uint32_t>(Ts.size()));
  for (const Tuple &T : Ts)
    W.tuple(T);
  return W.take();
}

bool RelServer::decodeSnapshot(const std::vector<uint8_t> &Bytes,
                               unsigned Arity, std::vector<Tuple> &Tuples) {
  wire::ByteReader R(Bytes);
  uint32_t N;
  if (!R.u32(N))
    return false;
  Tuples.clear();
  Tuples.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    Tuple T;
    if (!R.tuple(T, Arity))
      return false;
    Tuples.push_back(std::move(T));
  }
  return R.remaining() == 0;
}

//===----------------------------------------------------------------------===//
// Recovery and lifecycle
//===----------------------------------------------------------------------===//

bool RelServer::recover(std::string *Err) {
  unsigned Arity = Rel.catalog().size();
  uint64_t CkptTicket = 0;
  std::vector<uint8_t> Snap;
  if (Wal::loadCheckpoint(Opts.WalPath, CkptTicket, Snap)) {
    std::vector<Tuple> Tuples;
    if (!decodeSnapshot(Snap, Arity, Tuples)) {
      if (Err)
        *Err = Opts.WalPath + ".ckpt: corrupt snapshot body";
      return false;
    }
    for (const Tuple &T : Tuples)
      Rel.insert(T);
  }
  uint64_t MaxTicket = CkptTicket;
  std::string ReplayErr;
  size_t ValidEnd = 0;
  bool Ok = Wal::replay(
      Opts.WalPath,
      [&](const Wal::Record &R) {
        if (!ReplayErr.empty())
          return;
        // A crash between the checkpoint's rename and its log
        // truncation leaves snapshot + full log: records at or below
        // the snapshot's ticket are already inside it, and re-applying
        // them would conflict (a logged insert of a since-updated key).
        if (R.Ticket <= CkptTicket)
          return;
        std::vector<TxOp> Ops;
        if (!wire::decodeRedo(R.Payload.data(), R.Payload.size(), Arity,
                              Ops)) {
          // CRC passed, so this is an encoder bug, not disk damage —
          // skipping it would silently diverge the recovered state.
          ReplayErr = Opts.WalPath + ": undecodable redo payload behind a "
                      "valid CRC at ticket " + std::to_string(R.Ticket);
          return;
        }
        // Redo ops are the exact committed effects in ticket order:
        // replaying them through a fresh relation reproduces every
        // intermediate state, so no FD conflict or abort is possible.
        TxResult Res = Rel.transact(Ops);
        if (!Res.Committed) {
          ReplayErr = Opts.WalPath + ": redo replay aborted at ticket " +
                      std::to_string(R.Ticket);
          return;
        }
        ++Recovered;
        if (R.Ticket > MaxTicket)
          MaxTicket = R.Ticket;
      },
      Err, &ValidEnd);
  if (!Ok)
    return false;
  if (!ReplayErr.empty()) {
    if (Err)
      *Err = ReplayErr;
    return false;
  }
  // Drop any torn tail so fresh appends never land after garbage. A
  // non-empty file with ValidEnd == 0 was torn inside the magic (a
  // crash during creation): truncate it to nothing so open()
  // re-initializes the magic instead of appending after garbage.
  size_t OnDisk = Wal::fileSize(Opts.WalPath);
  if (OnDisk > ValidEnd)
    Wal::truncateTo(Opts.WalPath, ValidEnd);
  Rel.seedTickets(MaxTicket + 1);
  LastTicket.store(MaxTicket, std::memory_order_relaxed);
  return true;
}

bool RelServer::start(std::string *Err) {
  if (HasWal) {
    if (!recover(Err))
      return false;
    if (!Log.open(Err))
      return false;
    // Hook order == ticket order (ConcurrentRelation guarantees it),
    // so the log is ticket-ordered by construction. Installed before
    // any connection exists, per the hook contract.
    Rel.setCommitHook([this](uint64_t Ticket, const std::vector<TxOp> &Redo) {
      std::vector<uint8_t> Payload = wire::encodeRedo(Redo);
      Log.append(Ticket, Payload.data(), Payload.size());
      LastTicket.store(Ticket, std::memory_order_relaxed);
    });
  }
  Committer.start();
  if (HasWal)
    CkptThread = std::thread([this] { ckptLoop(); });
  ListenFd = wire::listenTcp(Opts.Port, Err);
  if (ListenFd < 0)
    return false;
  Port = wire::boundPort(ListenFd);
  Running.store(true);
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void RelServer::stop() {
  Running.store(false);
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR); // wakes the blocked accept
  if (Acceptor.joinable())
    Acceptor.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  std::vector<ConnEntry> Entries;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (const ConnEntry &E : Conns)
      ::shutdown(E.C->Fd, SHUT_RDWR); // wakes blocked connection reads
    Entries.swap(Conns);
  }
  for (ConnEntry &E : Entries)
    E.T.join();
  // Committer before the checkpoint thread: its drain may still run
  // snapshot-grab barriers that enqueue checkpoint jobs. The
  // checkpoint thread then drains its own queue — every pending job's
  // completion fires — before the WAL closes.
  Committer.stop();
  {
    std::lock_guard<std::mutex> Lock(CkptMu);
    CkptStopping = true;
  }
  CkptCv.notify_all();
  if (CkptThread.joinable())
    CkptThread.join();
  Entries.clear();
  if (HasWal)
    Log.close();
}

//===----------------------------------------------------------------------===//
// The checkpoint pipeline
//===----------------------------------------------------------------------===//

void RelServer::scheduleCheckpoint(
    std::function<void(bool, const std::string &)> Done) {
  // The barrier runs on the committer with no commit group in flight,
  // so the snapshot handle, the newest logged ticket, and the log's
  // byte offset are one consistent cut: a log record sits at byte
  // offset < SnapEnd exactly when its ticket is <= Ticket, which is
  // what lets Wal::checkpoint compact the covered prefix away while
  // new appends land behind SnapEnd. Everything here is O(shards);
  // serialization and fsyncs happen on the checkpoint thread.
  Committer.barrier([this, Done = std::move(Done)]() mutable {
    CkptJob Job;
    Job.Snap = Rel.snapshot();
    Job.Ticket = LastTicket.load(std::memory_order_relaxed);
    Job.SnapEnd = Log.writtenBytes();
    Job.Done = std::move(Done);
    {
      std::lock_guard<std::mutex> Lock(CkptMu);
      CkptQueue.push_back(std::move(Job));
    }
    CkptCv.notify_all();
  });
}

bool RelServer::runCheckpoint(CkptJob &Job, std::string *Err) {
  std::string E;
  bool Ok =
      Log.checkpoint(Job.Ticket, encodeSnapshot(Job.Snap.toRelation()),
                     Job.SnapEnd, &E);
  // Reset the pacing counter on BOTH outcomes: success starts the next
  // interval; failure backs off for another CheckpointEvery commits
  // instead of letting every subsequent commit re-queue a checkpoint
  // that will fail the same way (a hot-retry storm against e.g. a full
  // disk).
  SinceCkpt.store(0, std::memory_order_relaxed);
  if (!Ok) {
    CheckpointFailures.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr,
                 "relserved: checkpoint at ticket %" PRIu64 " failed: %s\n",
                 Job.Ticket, E.c_str());
  }
  if (Err)
    *Err = E;
  return Ok;
}

void RelServer::ckptLoop() {
  for (;;) {
    CkptJob Job;
    {
      std::unique_lock<std::mutex> Lock(CkptMu);
      CkptCv.wait(Lock,
                  [this] { return CkptStopping || !CkptQueue.empty(); });
      if (CkptQueue.empty()) {
        if (CkptStopping)
          return; // drained: every enqueued job has completed
        continue;
      }
      Job = std::move(CkptQueue.front());
      CkptQueue.pop_front();
    }
    std::string E;
    bool Ok = runCheckpoint(Job, &E);
    if (Job.Done)
      Job.Done(Ok, E);
  }
}

void RelServer::acceptLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // listener shut down
    }
    if (!Running.load()) {
      ::close(Fd);
      return;
    }
    auto C = std::make_shared<Conn>();
    C->Fd = Fd;
    std::lock_guard<std::mutex> Lock(ConnMu);
    // Reap what finished since the last accept, so a long-running
    // daemon holds threads only for live connections (plus finished
    // ones not yet swept — bounded by the accept rate, joined by
    // stop() regardless).
    reapFinishedLocked();
    Conns.push_back(ConnEntry{C, std::thread([this, C] { connLoop(C); })});
  }
}

void RelServer::reapFinishedLocked() {
  for (size_t I = 0; I != Conns.size();) {
    if (Conns[I].C->Done.load(std::memory_order_acquire)) {
      Conns[I].T.join();
      Conns.erase(Conns.begin() + static_cast<long>(I));
    } else {
      ++I;
    }
  }
}

void RelServer::connLoop(ConnPtr C) {
  std::vector<uint8_t> Body;
  while (Running.load(std::memory_order_relaxed)) {
    if (!wire::readFrame(C->Fd, Body))
      break; // EOF, error, or oversized prefix: the stream is done
    if (!handleFrame(C, Body))
      break;
  }
  // The fd itself is closed by the last ConnPtr owner — a pending
  // group-commit completion may still be about to write its reply.
  ::shutdown(C->Fd, SHUT_RDWR);
  C->Done.store(true, std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

void RelServer::reply(const ConnPtr &C, Status St, uint64_t ReqId,
                      const std::vector<uint8_t> &Payload) {
  wire::ByteWriter W;
  W.u8(static_cast<uint8_t>(St));
  W.u64(ReqId);
  W.bytes(Payload.data(), Payload.size());
  std::lock_guard<std::mutex> Lock(C->WriteMu);
  wire::writeFrame(C->Fd, W.data()); // failure = peer gone; nothing to do
}

void RelServer::replyError(const ConnPtr &C, uint64_t ReqId,
                           std::string_view Msg) {
  wire::ByteWriter W;
  W.str(Msg);
  reply(C, Status::Error, ReqId, W.data());
}

void RelServer::submitMutation(const ConnPtr &C, uint64_t ReqId,
                               std::vector<TxOp> Ops) {
  Committer.submit(
      std::move(Ops), [this, C, ReqId](const TxResult &R, bool Durable) {
        if (R.Committed && Durable) {
          wire::ByteWriter W;
          W.u64(R.Ticket);
          reply(C, Status::Ok, ReqId, W.data());
          SinceCkpt.fetch_add(1, std::memory_order_relaxed);
          maybeAutoCheckpoint();
        } else if (R.Committed) {
          // Applied in memory but the sync failed: the one reply that
          // must NOT read as a durable ack.
          replyError(C, ReqId, "commit not durable: wal sync failed");
        } else {
          wire::ByteWriter W;
          W.u32(static_cast<uint32_t>(R.FailedOp));
          reply(C, Status::Aborted, ReqId, W.data());
        }
      });
}

bool RelServer::toTxOp(const wire::WireTxOp &W, TxOp &Out,
                       std::string &Msg) const {
  ColumnSet All = Rel.spec()->columns();
  switch (W.K) {
  case wire::WireTxOp::Insert:
    if (W.A.columns() != All) {
      Msg = "insert must bind every column";
      return false;
    }
    Out = TxOp::insert(W.A);
    return true;
  case wire::WireTxOp::Remove:
    Out = TxOp::remove(W.A);
    return true;
  case wire::WireTxOp::Update:
    if (!Rel.spec()->fds().isKey(W.A.columns(), All)) {
      Msg = "update pattern must be a key";
      return false;
    }
    if (W.A.columns().intersects(W.B.columns())) {
      Msg = "update changes must not rebind the key";
      return false;
    }
    Out = TxOp::update(W.A, W.B);
    return true;
  case wire::WireTxOp::Add: {
    if (!Rel.spec()->fds().isKey(W.A.columns(), All)) {
      Msg = "add pattern must be a key";
      return false;
    }
    if (W.Col >= Rel.catalog().size() || W.A.columns().contains(W.Col)) {
      Msg = "add column must be a non-key column";
      return false;
    }
    ColumnId Col = W.Col;
    int64_t Delta = W.Delta, Floor = W.Floor;
    // The guarded read-modify-write: absent key, non-integer cell, or
    // floor violation abort the whole batch with nothing applied.
    Out = TxOp::upsertChecked(
        W.A, [Col, Delta, Floor](const BindingFrame *F, Tuple &V) {
          if (!F)
            return false;
          const Value &Cur = F->get(Col);
          if (!Cur.isInt())
            return false;
          int64_t Next = Cur.asInt() + Delta;
          if (Floor != std::numeric_limits<int64_t>::min() && Next < Floor)
            return false;
          V.set(Col, Value::ofInt(Next));
          return true;
        });
    return true;
  }
  }
  Msg = "unknown transact op kind";
  return false;
}

bool RelServer::handleFrame(const ConnPtr &C,
                            const std::vector<uint8_t> &Body) {
  wire::ByteReader R(Body);
  uint8_t OpByte;
  uint64_t ReqId;
  if (!R.u8(OpByte) || !R.u64(ReqId))
    return false; // no header to answer to: close
  unsigned Arity = Rel.catalog().size();
  ColumnSet All = Rel.spec()->columns();

  switch (static_cast<wire::Op>(OpByte)) {
  case wire::Op::Ping:
    reply(C, Status::Ok, ReqId, {});
    return true;

  case wire::Op::Insert: {
    Tuple T;
    if (!R.tuple(T, Arity) || R.remaining() != 0) {
      replyError(C, ReqId, "malformed insert payload");
      return true;
    }
    if (T.columns() != All) {
      replyError(C, ReqId, "insert must bind every column");
      return true;
    }
    std::vector<TxOp> Ops;
    Ops.push_back(TxOp::insert(std::move(T)));
    submitMutation(C, ReqId, std::move(Ops));
    return true;
  }

  case wire::Op::Remove: {
    Tuple T;
    if (!R.tuple(T, Arity) || R.remaining() != 0) {
      replyError(C, ReqId, "malformed remove payload");
      return true;
    }
    std::vector<TxOp> Ops;
    Ops.push_back(TxOp::remove(std::move(T)));
    submitMutation(C, ReqId, std::move(Ops));
    return true;
  }

  case wire::Op::Update: {
    Tuple Key, Changes;
    if (!R.tuple(Key, Arity) || !R.tuple(Changes, Arity) ||
        R.remaining() != 0) {
      replyError(C, ReqId, "malformed update payload");
      return true;
    }
    wire::WireTxOp W = wire::WireTxOp::update(std::move(Key),
                                              std::move(Changes));
    TxOp Op;
    std::string Msg;
    if (!toTxOp(W, Op, Msg)) {
      replyError(C, ReqId, Msg);
      return true;
    }
    std::vector<TxOp> Ops;
    Ops.push_back(std::move(Op));
    submitMutation(C, ReqId, std::move(Ops));
    return true;
  }

  case wire::Op::Transact: {
    uint32_t N;
    if (!R.u32(N)) {
      replyError(C, ReqId, "malformed transact payload");
      return true;
    }
    if (N == 0) {
      replyError(C, ReqId, "empty transact batch");
      return true;
    }
    if (N > 65536) {
      replyError(C, ReqId, "transact batch too large");
      return true;
    }
    std::vector<TxOp> Ops;
    Ops.reserve(N);
    for (uint32_t I = 0; I != N; ++I) {
      wire::WireTxOp W;
      if (!R.txOp(W, Arity)) {
        replyError(C, ReqId, "malformed transact op");
        return true;
      }
      TxOp Op;
      std::string Msg;
      if (!toTxOp(W, Op, Msg)) {
        replyError(C, ReqId, Msg);
        return true;
      }
      Ops.push_back(std::move(Op));
    }
    if (R.remaining() != 0) {
      replyError(C, ReqId, "trailing bytes after transact batch");
      return true;
    }
    submitMutation(C, ReqId, std::move(Ops));
    return true;
  }

  case wire::Op::Query: {
    Tuple Pattern;
    uint64_t OutMask;
    if (!R.tuple(Pattern, Arity) || !R.u64(OutMask) || R.remaining() != 0) {
      replyError(C, ReqId, "malformed query payload");
      return true;
    }
    // Wire masks are 64-bit, so arities above 64 have unaddressable
    // columns; at exactly 64 every mask bit is a real column (and
    // `OutMask >> 64` would be UB, hence the explicit split).
    if (Arity > 64) {
      replyError(C, ReqId, "arity exceeds the 64-column wire mask");
      return true;
    }
    if (Arity < 64 && (OutMask >> Arity) != 0) {
      replyError(C, ReqId, "output columns outside the relation");
      return true;
    }
    ColumnSet Out = ColumnSet::fromMask(OutMask);
    if (!Rel.shard(0).planFor(Pattern.columns(), Out)) {
      replyError(C, ReqId, "no plan for this query shape");
      return true;
    }
    std::vector<Tuple> Rows = Rel.query(Pattern, Out);
    wire::ByteWriter W;
    W.u32(static_cast<uint32_t>(Rows.size()));
    for (const Tuple &T : Rows)
      W.tuple(T);
    reply(C, Status::Ok, ReqId, W.data());
    return true;
  }

  case wire::Op::Size: {
    wire::ByteWriter W;
    W.u64(Rel.size());
    reply(C, Status::Ok, ReqId, W.data());
    return true;
  }

  case wire::Op::Checkpoint: {
    if (!HasWal) {
      replyError(C, ReqId, "server runs without a wal");
      return true;
    }
    // The reply fires from the checkpoint thread once the outcome —
    // success OR failure — is known, so a client always hears back.
    // The captured ConnPtr keeps the Conn alive even if the peer
    // disconnects before the checkpoint finishes; reply() then fails
    // harmlessly against the shut-down fd.
    scheduleCheckpoint([this, C, ReqId](bool Ok, const std::string &E) {
      if (Ok)
        reply(C, Status::Ok, ReqId, {});
      else
        replyError(C, ReqId, "checkpoint failed: " + E);
    });
    return true;
  }

  case wire::Op::Stats: {
    GroupCommitStats S = Committer.stats();
    ArenaStats A = Rel.arenaStats();
    wire::ByteWriter W;
    W.u64(S.Groups);
    W.u64(S.Committed);
    W.u64(S.MultiTxGroups);
    W.u64(S.MaxGroupSize);
    W.u64(S.Syncs);
    W.u64(A.Bytes);
    W.u64(A.Live);
    W.u64(CheckpointFailures.load(std::memory_order_relaxed));
    reply(C, Status::Ok, ReqId, W.data());
    return true;
  }
  }
  replyError(C, ReqId, "unknown opcode");
  return true;
}

bool RelServer::checkpointNow(std::string *Err) {
  if (!HasWal) {
    if (Err)
      *Err = "server runs without a wal";
    return false;
  }
  // Blocks on the checkpoint thread's completion. Do not call from a
  // commit completion callback (that thread IS the committer, which
  // must run the snapshot barrier) or from the checkpoint thread.
  std::promise<bool> Done;
  std::string E;
  scheduleCheckpoint([&Done, &E](bool Ok, const std::string &Msg) {
    E = Msg;
    Done.set_value(Ok);
  });
  bool Ok = Done.get_future().get();
  if (!Ok && Err)
    *Err = E;
  return Ok;
}

void RelServer::maybeAutoCheckpoint() {
  if (!HasWal || Opts.CheckpointEvery == 0)
    return;
  if (SinceCkpt.load(std::memory_order_relaxed) < Opts.CheckpointEvery)
    return;
  if (CkptQueued.exchange(true))
    return;
  // Called from a completion callback — i.e. ON the committer thread —
  // so the barrier must be asynchronous (it is). Failures are not
  // dropped: runCheckpoint logs them, bumps CheckpointFailures, and
  // resets the pacing counter so the server backs off for another
  // CheckpointEvery commits instead of hot-retrying a checkpoint that
  // keeps failing.
  scheduleCheckpoint(
      [this](bool, const std::string &) { CkptQueued.store(false); });
}
