//===- instance/WellFormed.h - Well-formedness of instances -----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The well-formedness judgment Γ,d |= Γ̂,d̂ of Section 3.3 (Fig. 5),
/// checked dynamically over a live instance graph, plus the physical
/// invariants the dynamic engine adds on top of the paper's rules
/// (canonical sharing and accurate reference counts). Tests run this
/// after every mutation to validate Lemmas 3-4 / Theorem 5.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_INSTANCE_WELLFORMED_H
#define RELC_INSTANCE_WELLFORMED_H

#include "instance/InstanceGraph.h"

#include <string>

namespace relc {

struct WfResult {
  bool Ok = false;
  std::string Error;

  static WfResult success() { return {true, ""}; }
  static WfResult failure(std::string Msg) { return {false, std::move(Msg)}; }
};

/// Checks, over the whole reachable instance graph:
///  - (WFUNIT): unit tuples cover exactly their declared columns;
///  - (WFMAP):  entry keys cover exactly the edge's key columns, match
///              every tuple of the child's α-image, and the child's
///              bound valuation extends parent-bound ∪ key;
///  - (WFJOIN): both sides of each join agree on their α projections
///              (no dangling tuples);
///  - sharing is canonical: at most one instance per (node, bound
///    valuation);
///  - reference counts equal the number of incoming container entries.
WfResult checkWellFormed(const InstanceGraph &G);

} // namespace relc

#endif // RELC_INSTANCE_WELLFORMED_H
