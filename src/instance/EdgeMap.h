//===- instance/EdgeMap.h - Type-erased edge containers ---------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic engine's view of one map-edge container. Decompositions
/// choose ψ per edge at run time, so the six ds/ container templates are
/// instantiated with tuple keys and NodeInstance children and wrapped
/// behind this small virtual interface. (RELC-generated C++ code uses
/// the templates directly, with no virtual dispatch.)
///
//===----------------------------------------------------------------------===//

#ifndef RELC_INSTANCE_EDGEMAP_H
#define RELC_INSTANCE_EDGEMAP_H

#include "decomp/Decomposition.h"
#include "rel/Tuple.h"
#include "rel/TupleView.h"
#include "support/Arena.h"
#include "support/FunctionRef.h"

#include <memory>

namespace relc {

class NodeInstance;

/// Abstract key→child associative container backing one map edge.
/// Keys are tuples over the edge's key columns.
class EdgeMap {
public:
  virtual ~EdgeMap() = default;

  DsKind kind() const { return Kind; }

  virtual size_t size() const = 0;
  bool empty() const { return size() == 0; }

  /// \returns the child for \p Key, or nullptr.
  virtual NodeInstance *lookup(const Tuple &Key) const = 0;

  /// Borrowed-key probe: same contract, but the key is a view into an
  /// existing tuple or binding frame — no key materialization. This is
  /// the mutation/query hot path.
  virtual NodeInstance *lookup(const TupleView &Key) const = 0;

  /// Inserts a fresh entry; \p Key must not be present. Insertion is
  /// the one place a key tuple is actually materialized and stored.
  virtual void insert(const Tuple &Key, NodeInstance *Child) = 0;

  /// Erases by key. \returns the unlinked child, or nullptr.
  virtual NodeInstance *erase(const Tuple &Key) = 0;

  /// Borrowed-key erase.
  virtual NodeInstance *erase(const TupleView &Key) = 0;

  /// Erases the entry pointing at \p Child. O(1)/O(log n) for intrusive
  /// kinds, a scan otherwise. \returns false if not present.
  virtual bool eraseNode(NodeInstance *Child) = 0;

  /// Iterates entries; \p Fn returns false to stop early.
  /// \returns false if stopped. \p Fn must not mutate the container:
  /// tree-backed maps rebalance on erase, which invalidates the
  /// traversal. (The mutators therefore collect matches before erasing.)
  virtual bool
  forEach(function_ref<bool(const Tuple &, NodeInstance *)> Fn) const = 0;

  /// Instantiates the container for \p Edge (ψ and, for intrusive
  /// kinds, the hook slot in the target node). Cell-based kinds
  /// allocate their cells through \p Arena (global heap when unbound).
  static std::unique_ptr<EdgeMap> create(const MapEdge &Edge,
                                         ArenaRef Arena = ArenaRef());

protected:
  explicit EdgeMap(DsKind Kind) : Kind(Kind) {}

private:
  DsKind Kind;
};

} // namespace relc

#endif // RELC_INSTANCE_EDGEMAP_H
