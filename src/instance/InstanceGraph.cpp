//===- instance/InstanceGraph.cpp - Owning instance graph -------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "instance/InstanceGraph.h"

#include "concurrent/Epoch.h"

#include <new>
#include <vector>

using namespace relc;

// Hook storage trails the NodeInstance in the same allocation block;
// sizeof(NodeInstance) is a multiple of its alignment, so the trailing
// slots are aligned as long as hooks don't demand more.
static_assert(alignof(NodeInstance::Hook) <= alignof(NodeInstance),
              "trailing hook storage would be misaligned");

namespace {

/// Retire-list context for epoch-deferred arena frees. Holds the arena
/// alive (the owning relation may die before the grace period ends) and
/// the reset generation at unlink time: recycleDeferred drops the block
/// on the floor if the arena was bulk-reset meanwhile, because the
/// reset already reclaimed the whole slab.
struct DeferredFree {
  std::shared_ptr<SlabArena> A;
  void *P;
  uint64_t Gen;
};

} // namespace

InstanceGraph::InstanceGraph(std::shared_ptr<const Decomposition> D,
                             std::shared_ptr<SlabArena> Arena)
    : D(std::move(D)), Arena(std::move(Arena)) {
  assert(this->D && "instance graph needs a decomposition");
  Root = create(this->D->root(), Tuple());
  Root->retain(); // The graph itself holds the root reference.
}

InstanceGraph::~InstanceGraph() {
  if (Arena) {
    // Sweep every live node in one pass while the decomposition is
    // still alive (node destructors consult it). Retired DeferredFree
    // entries may outlive the graph; they hold the arena alive and are
    // generation-checked against this reset.
    Arena->reset();
    Root = nullptr;
    return;
  }
  if (Root && Root->releaseRef() == 0)
    destroy(Root);
}

NodeInstance *InstanceGraph::create(NodeId Node, Tuple Bound) {
  const DecompNode &DN = D->node(Node);
  const size_t Bytes =
      sizeof(NodeInstance) + size_t(DN.HookSlots) * sizeof(NodeInstance::Hook);
  void *Mem =
      Arena ? Arena->allocateTracked(
                  Bytes,
                  [](void *P) { static_cast<NodeInstance *>(P)->~NodeInstance(); })
            : ::operator new(Bytes);
  auto *Hooks = DN.HookSlots != 0
                    ? reinterpret_cast<NodeInstance::Hook *>(
                          static_cast<char *>(Mem) + sizeof(NodeInstance))
                    : nullptr;
  ++Live;
  return new (Mem) NodeInstance(*D, Node, std::move(Bound),
                                ArenaRef(Arena.get()), Hooks);
}

void InstanceGraph::release(NodeInstance *N) {
  if (N->releaseRef() == 0)
    destroy(N);
}

void InstanceGraph::destroy(NodeInstance *N) {
  assert(N->refCount() == 0 && "destroying a referenced instance");
  // Collect children before the containers die, then release them after
  // N is gone (container destructors unlink intrusive hooks, which must
  // happen while the children are still alive).
  std::vector<NodeInstance *> Children;
  for (unsigned I = 0; I != N->numEdgeMaps(); ++I)
    N->edgeMap(I).forEach([&](const Tuple &, NodeInstance *Child) {
      Children.push_back(Child);
      return true;
    });
  if (DeferredReclaim) {
    // Destruct now, free later. The destructor must run eagerly: it
    // unlinks surviving children's intrusive hooks, and a deferred
    // unlink could corrupt a container the child is re-linked into
    // meanwhile. Only the allocator free rides the retire list, past
    // the epoch grace period — so the memory of a node a stale reader
    // could still be traversing stays mapped, and the free itself
    // happens outside the writer's fenced critical section.
    if (Arena) {
      const uint64_t Gen = Arena->resetGeneration();
      Arena->untrack(N);
      N->~NodeInstance();
      auto *Ctx = new DeferredFree{Arena, static_cast<void *>(N), Gen};
      EpochManager::global().retire(static_cast<void *>(Ctx), [](void *P) {
        auto *C = static_cast<DeferredFree *>(P);
        C->A->recycleDeferred(C->P, C->Gen);
        delete C;
      });
    } else {
      N->~NodeInstance();
      EpochManager::global().retire(
          static_cast<void *>(N), [](void *P) { ::operator delete(P); });
    }
  } else if (Arena) {
    Arena->destroyTracked(N);
  } else {
    N->~NodeInstance();
    ::operator delete(N);
  }
  --Live;
  for (NodeInstance *Child : Children)
    release(Child);
}

void InstanceGraph::clear() {
  if (Arena) {
    // O(slabs) bulk clear: one sweep over the arena's live list runs
    // every node destructor (returning container cells as it goes),
    // then the slabs rewind wholesale. Refcount-driven cascading
    // teardown is skipped entirely. Callers must exclude concurrent
    // readers and writers (ConcurrentRelation::clear holds all stripes
    // and fences all epochs); in-flight deferred frees are defused by
    // the generation bump inside reset().
    Arena->reset();
    Live = 0;
  } else if (Root->releaseRef() == 0) {
    destroy(Root);
  }
  Root = create(D->root(), Tuple());
  Root->retain();
}
