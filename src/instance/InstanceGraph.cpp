//===- instance/InstanceGraph.cpp - Owning instance graph -------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "instance/InstanceGraph.h"

#include "concurrent/Epoch.h"

#include <vector>

using namespace relc;

InstanceGraph::InstanceGraph(std::shared_ptr<const Decomposition> D)
    : D(std::move(D)) {
  assert(this->D && "instance graph needs a decomposition");
  Root = create(this->D->root(), Tuple());
  Root->retain(); // The graph itself holds the root reference.
}

InstanceGraph::~InstanceGraph() {
  if (Root && Root->releaseRef() == 0)
    destroy(Root);
}

NodeInstance *InstanceGraph::create(NodeId Node, Tuple Bound) {
  ++Live;
  return new NodeInstance(*D, Node, std::move(Bound));
}

void InstanceGraph::release(NodeInstance *N) {
  if (N->releaseRef() == 0)
    destroy(N);
}

void InstanceGraph::destroy(NodeInstance *N) {
  assert(N->refCount() == 0 && "destroying a referenced instance");
  // Collect children before the containers die, then release them after
  // N is gone (container destructors unlink intrusive hooks, which must
  // happen while the children are still alive).
  std::vector<NodeInstance *> Children;
  for (unsigned I = 0; I != N->numEdgeMaps(); ++I)
    N->edgeMap(I).forEach([&](const Tuple &, NodeInstance *Child) {
      Children.push_back(Child);
      return true;
    });
  if (DeferredReclaim) {
    // Destruct now, free later. The destructor must run eagerly: it
    // unlinks surviving children's intrusive hooks, and a deferred
    // unlink could corrupt a container the child is re-linked into
    // meanwhile. Only the allocator free rides the retire list, past
    // the epoch grace period — so the memory of a node a stale reader
    // could still be traversing stays mapped, and the free itself
    // happens outside the writer's fenced critical section.
    N->~NodeInstance();
    EpochManager::global().retire(
        static_cast<void *>(N), [](void *P) { ::operator delete(P); });
  } else {
    delete N;
  }
  --Live;
  for (NodeInstance *Child : Children)
    release(Child);
}

void InstanceGraph::clear() {
  if (Root->releaseRef() == 0)
    destroy(Root);
  Root = create(D->root(), Tuple());
  Root->retain();
}
