//===- instance/NodeInstance.cpp - Decomposition instance nodes -------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "instance/NodeInstance.h"

#include <new>

using namespace relc;

NodeInstance::NodeInstance(const Decomposition &D, NodeId Id, Tuple Bound,
                           ArenaRef Arena, Hook *HookStorage)
    : D(&D), Id(Id), Bound(std::move(Bound)), Hooks(HookStorage) {
  const DecompNode &Node = D.node(Id);
  assert(this->Bound.columns() == Node.Bound &&
         "bound valuation must cover exactly the node's bound columns");
  assert((Node.HookSlots == 0 || HookStorage) &&
         "hooked nodes need trailing hook storage");

  for (PrimId U : D.unitsOf(Id))
    Units.emplace_back(U, Tuple());

  for (EdgeId E : D.outgoing(Id))
    Edges.push_back(EdgeMap::create(D.edge(E), Arena));

  for (unsigned I = 0; I != Node.HookSlots; ++I)
    new (&Hooks[I]) Hook();
}

NodeInstance::~NodeInstance() {
  // Reset (not destroy) the hooks: clears any heap-spilled keys while
  // leaving valid empty hooks behind, so an arena-reset sweep that
  // destroys this node before its parent can still run the parent's
  // container destructor (which unlinks through these hooks) safely.
  // An empty Hook owns no resources, so skipping its destructor leaks
  // nothing. The edge containers (destroyed next, as members) unlink
  // children's hooks the same way, live or already-swept.
  for (unsigned I = 0, E = node().HookSlots; I != E; ++I)
    Hooks[I] = Hook();
}

const Tuple &NodeInstance::unitValues(PrimId U) const {
  for (const auto &[Prim, Values] : Units)
    if (Prim == U)
      return Values;
  assert(false && "primitive is not a unit of this node");
  static const Tuple Empty = Tuple();
  return Empty;
}

void NodeInstance::setUnitValues(PrimId U, Tuple Values) {
  assert(Values.columns() == D->prim(U).Cols &&
         "unit values must cover exactly the unit's columns");
  for (auto &[Prim, Existing] : Units)
    if (Prim == U) {
      Existing = std::move(Values);
      return;
    }
  assert(false && "primitive is not a unit of this node");
}

bool NodeInstance::representsEmpty() const {
  if (Edges.empty())
    return false;
  for (const auto &Map : Edges)
    if (Map->empty())
      return true;
  return false;
}
