//===- instance/NodeInstance.cpp - Decomposition instance nodes -------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "instance/NodeInstance.h"

using namespace relc;

NodeInstance::NodeInstance(const Decomposition &D, NodeId Id, Tuple Bound)
    : D(&D), Id(Id), Bound(std::move(Bound)) {
  const DecompNode &Node = D.node(Id);
  assert(this->Bound.columns() == Node.Bound &&
         "bound valuation must cover exactly the node's bound columns");

  for (PrimId U : D.unitsOf(Id))
    Units.emplace_back(U, Tuple());

  for (EdgeId E : D.outgoing(Id))
    Edges.push_back(EdgeMap::create(D.edge(E)));

  if (Node.HookSlots > 0)
    Hooks = std::make_unique<Hook[]>(Node.HookSlots);
}

const Tuple &NodeInstance::unitValues(PrimId U) const {
  for (const auto &[Prim, Values] : Units)
    if (Prim == U)
      return Values;
  assert(false && "primitive is not a unit of this node");
  static const Tuple Empty = Tuple();
  return Empty;
}

void NodeInstance::setUnitValues(PrimId U, Tuple Values) {
  assert(Values.columns() == D->prim(U).Cols &&
         "unit values must cover exactly the unit's columns");
  for (auto &[Prim, Existing] : Units)
    if (Prim == U) {
      Existing = std::move(Values);
      return;
    }
  assert(false && "primitive is not a unit of this node");
}

bool NodeInstance::representsEmpty() const {
  if (Edges.empty())
    return false;
  for (const auto &Map : Edges)
    if (Map->empty())
      return true;
  return false;
}
