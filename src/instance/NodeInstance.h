//===- instance/NodeInstance.h - Decomposition instance nodes ---*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Run-time instances of decomposition nodes (Section 3.1, Fig. 4):
/// one NodeInstance exists per decomposition node v and valuation of its
/// bound columns B. An instance owns one container per outgoing map
/// edge, stores the tuples of its unit primitives, embeds one intrusive
/// hook per incoming intrusive edge, and carries a reference count equal
/// to the number of container entries pointing at it — this is how
/// decomposition sharing (the same w reachable from y and z in Fig. 2)
/// is realized physically.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_INSTANCE_NODEINSTANCE_H
#define RELC_INSTANCE_NODEINSTANCE_H

#include "ds/MapHook.h"
#include "instance/EdgeMap.h"
#include "rel/Tuple.h"
#include "support/Arena.h"
#include "support/SmallVector.h"

#include <memory>

namespace relc {

class NodeInstance {
public:
  using Hook = MapHook<NodeInstance, Tuple>;

  /// Creates an instance of node \p Id with bound valuation \p Bound.
  /// Edge containers allocate their cells through \p Arena (global
  /// heap when unbound); \p HookStorage must point at
  /// node().HookSlots uninitialized Hook slots (the trailing storage
  /// of the instance's allocation block — InstanceGraph::create sizes
  /// the block) and may be null only when the node has no hook slots.
  /// Unit values start unset.
  NodeInstance(const Decomposition &D, NodeId Id, Tuple Bound, ArenaRef Arena,
               Hook *HookStorage);

  /// Leaves this instance's hooks in a valid default-constructed state
  /// rather than destroying them: during a bulk arena reset a parent's
  /// intrusive container may unlink a child that was already swept,
  /// and the unlink must land on a valid (empty) hook.
  ~NodeInstance();

  NodeId id() const { return Id; }
  const DecompNode &node() const { return D->node(Id); }
  const Decomposition &decomp() const { return *D; }

  const Tuple &bound() const { return Bound; }
  /// dupdate rewrites bound valuations in place (Section 4.5).
  void setBound(Tuple NewBound) { Bound = std::move(NewBound); }

  /// The stored tuple of unit primitive \p U (a PrimId of this node).
  const Tuple &unitValues(PrimId U) const;
  void setUnitValues(PrimId U, Tuple Values);

  /// The container of the outgoing edge with the given per-node ordinal.
  EdgeMap &edgeMap(unsigned Ordinal) {
    assert(Ordinal < Edges.size() && "edge ordinal out of range");
    return *Edges[Ordinal];
  }
  const EdgeMap &edgeMap(unsigned Ordinal) const {
    assert(Ordinal < Edges.size() && "edge ordinal out of range");
    return *Edges[Ordinal];
  }
  unsigned numEdgeMaps() const { return static_cast<unsigned>(Edges.size()); }

  /// Intrusive hook storage; \p Slot < node().HookSlots.
  Hook &hook(unsigned Slot) {
    assert(Slot < node().HookSlots && "hook slot out of range");
    return Hooks[Slot];
  }

  unsigned refCount() const { return RefCount; }
  void retain() { ++RefCount; }
  /// \returns the new count; the caller destroys the instance at zero.
  unsigned releaseRef() {
    assert(RefCount > 0 && "release of unreferenced instance");
    return --RefCount;
  }

  /// True if this instance represents the empty relation: it has map
  /// edges and at least one of its containers is empty (a join is empty
  /// when either side is; well-formedness keeps parallel maps
  /// consistent, see Section 4.5 "devoid of children").
  bool representsEmpty() const;

private:
  const Decomposition *D;
  NodeId Id;
  Tuple Bound;
  SmallVector<std::pair<PrimId, Tuple>, 1> Units;
  SmallVector<std::unique_ptr<EdgeMap>, 2> Edges;
  /// Borrowed trailing storage of this instance's allocation block
  /// (hooks live in the same cache-line-aligned arena block as the
  /// node, so instance creation is one allocation).
  Hook *Hooks = nullptr;
  unsigned RefCount = 0;
};

} // namespace relc

#endif // RELC_INSTANCE_NODEINSTANCE_H
