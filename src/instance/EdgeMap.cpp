//===- instance/EdgeMap.cpp - Type-erased edge containers -------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "instance/EdgeMap.h"

#include "ds/AvlMap.h"
#include "ds/DListMap.h"
#include "ds/HashMap.h"
#include "ds/IntrusiveAvl.h"
#include "ds/IntrusiveList.h"
#include "ds/VectorMap.h"
#include "instance/NodeInstance.h"

using namespace relc;

namespace {

/// Traits binding the ds/ container templates to the dynamic engine's
/// tuple keys and NodeInstance children. Stored keys are Tuples;
/// probes may additionally be borrowed TupleViews (hash- and order-
/// compatible by construction), which is what makes the hot paths
/// allocation-free.
struct InterpTraits {
  using KeyT = Tuple;
  using NodeT = NodeInstance;

  static bool less(const Tuple &A, const Tuple &B) { return A < B; }
  static bool less(const Tuple &A, const TupleView &B) { return A < B; }
  static bool less(const TupleView &A, const Tuple &B) { return A < B; }
  static bool equal(const Tuple &A, const Tuple &B) { return A == B; }
  static bool equal(const Tuple &A, const TupleView &B) { return A == B; }
  static size_t hash(const Tuple &K) { return K.hash(); }
  static size_t hash(const TupleView &K) { return K.hash(); }
  static MapHook<NodeInstance, Tuple> &hook(NodeInstance *N, unsigned Slot) {
    return N->hook(Slot);
  }
};

/// Adapter gluing a concrete container to the EdgeMap interface.
template <typename ContainerT> class EdgeMapImpl final : public EdgeMap {
public:
  template <typename... ArgTs>
  explicit EdgeMapImpl(DsKind Kind, ArgTs &&...Args)
      : EdgeMap(Kind), Container(std::forward<ArgTs>(Args)...) {}

  size_t size() const override { return Container.size(); }

  NodeInstance *lookup(const Tuple &Key) const override {
    return Container.lookup(Key);
  }

  NodeInstance *lookup(const TupleView &Key) const override {
    return Container.lookup(Key);
  }

  void insert(const Tuple &Key, NodeInstance *Child) override {
    Container.insert(Key, Child);
  }

  NodeInstance *erase(const Tuple &Key) override {
    return Container.erase(Key);
  }

  NodeInstance *erase(const TupleView &Key) override {
    return Container.erase(Key);
  }

  bool eraseNode(NodeInstance *Child) override {
    return Container.eraseNode(Child);
  }

  bool forEach(
      function_ref<bool(const Tuple &, NodeInstance *)> Fn) const override {
    return Container.forEach(
        [&](const Tuple &K, NodeInstance *N) { return Fn(K, N); });
  }

  ContainerT &container() { return Container; }

private:
  ContainerT Container;
};

/// Vector maps store raw indices; this adapter converts the edge's
/// single-column integer keys to/from indices.
class VectorEdgeMap final : public EdgeMap {
public:
  explicit VectorEdgeMap(ColumnId KeyCol)
      : EdgeMap(DsKind::Vector), KeyCol(KeyCol) {}

  size_t size() const override { return Container.size(); }

  NodeInstance *lookup(const Tuple &Key) const override {
    return Container.lookup(toIndex(Key));
  }

  NodeInstance *lookup(const TupleView &Key) const override {
    return Container.lookup(toIndex(Key));
  }

  void insert(const Tuple &Key, NodeInstance *Child) override {
    Container.insert(toIndex(Key), Child);
  }

  NodeInstance *erase(const Tuple &Key) override {
    return Container.erase(toIndex(Key));
  }

  NodeInstance *erase(const TupleView &Key) override {
    return Container.erase(toIndex(Key));
  }

  bool eraseNode(NodeInstance *Child) override {
    return Container.eraseNode(Child);
  }

  bool forEach(
      function_ref<bool(const Tuple &, NodeInstance *)> Fn) const override {
    return Container.forEach([&](size_t I, NodeInstance *N) {
      Tuple Key;
      Key.set(KeyCol, Value::ofInt(static_cast<int64_t>(I)));
      return Fn(Key, N);
    });
  }

private:
  template <typename KeyLikeT> size_t toIndex(const KeyLikeT &Key) const {
    const Value &V = Key.get(KeyCol);
    assert(V.isInt() && "vector-map keys must be integers");
    assert(V.asInt() >= 0 && "vector-map keys must be non-negative");
    return static_cast<size_t>(V.asInt());
  }

  VectorMap<NodeInstance> Container;
  ColumnId KeyCol;
};

} // namespace

std::unique_ptr<EdgeMap> EdgeMap::create(const MapEdge &Edge, ArenaRef Arena) {
  switch (Edge.Ds) {
  case DsKind::DList: {
    auto M = std::make_unique<EdgeMapImpl<DListMap<InterpTraits>>>(Edge.Ds);
    M->container().setArena(Arena);
    return M;
  }
  case DsKind::HashTable: {
    auto M = std::make_unique<EdgeMapImpl<HashMap<InterpTraits>>>(Edge.Ds);
    M->container().setArena(Arena);
    return M;
  }
  case DsKind::Btree: {
    auto M = std::make_unique<EdgeMapImpl<AvlMap<InterpTraits>>>(Edge.Ds);
    M->container().setArena(Arena);
    return M;
  }
  case DsKind::Vector:
    assert(Edge.KeyCols.size() == 1 &&
           "vector maps require a single key column");
    return std::make_unique<VectorEdgeMap>(Edge.KeyCols.first());
  case DsKind::IList:
    return std::make_unique<EdgeMapImpl<IntrusiveList<InterpTraits>>>(
        Edge.Ds, Edge.HookSlot);
  case DsKind::ITree:
    return std::make_unique<EdgeMapImpl<IntrusiveAvl<InterpTraits>>>(
        Edge.Ds, Edge.HookSlot);
  }
  assert(false && "unknown DsKind");
  return nullptr;
}
