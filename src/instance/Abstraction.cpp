//===- instance/Abstraction.cpp - The abstraction function α ----------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "instance/Abstraction.h"

#include <unordered_map>

using namespace relc;

namespace {

/// Memoizes per-instance results: shared nodes (the whole point of the
/// decomposition language) would otherwise be recomputed once per path.
class Abstractor {
public:
  Relation alphaNode(const NodeInstance *N) {
    auto It = Memo.find(N);
    if (It != Memo.end())
      return It->second;
    Relation R = alphaPrim(N, N->node().Prim);
    Memo.emplace(N, R);
    return R;
  }

private:
  Relation alphaPrim(const NodeInstance *N, PrimId Id) {
    const Decomposition &D = N->decomp();
    const PrimNode &P = D.prim(Id);
    switch (P.Kind) {
    case PrimKind::Unit: {
      // α(t, Γ) = {t}.
      Relation R(P.Cols);
      R.insert(N->unitValues(Id));
      return R;
    }
    case PrimKind::Map: {
      // α({t ↦ v_t'}) = ⋃ {t} ⋈ α(v_t').
      const MapEdge &Edge = D.edge(P.Edge);
      Relation Result(P.Cols.unionWith(D.node(P.Target).Defines));
      const EdgeMap &Map = N->edgeMap(Edge.OrdinalInFrom);
      Map.forEach([&](const Tuple &Key, NodeInstance *Child) {
        Relation KeyRel(Key.columns());
        KeyRel.insert(Key);
        Result = Relation::unionWith(Result,
                                     Relation::join(KeyRel, alphaNode(Child)));
        return true;
      });
      return Result;
    }
    case PrimKind::Join:
      // α(p1 ⋈ p2) = α(p1) ⋈ α(p2).
      return Relation::join(alphaPrim(N, P.Left), alphaPrim(N, P.Right));
    }
    assert(false && "unknown PrimKind");
    return Relation();
  }

  std::unordered_map<const NodeInstance *, Relation> Memo;
};

} // namespace

Relation relc::abstractNode(const NodeInstance *N) {
  return Abstractor().alphaNode(N);
}

Relation relc::abstractInstance(const InstanceGraph &G) {
  return Abstractor().alphaNode(G.root());
}
