//===- instance/InstanceGraph.h - Owning instance graph ---------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns a decomposition instance: the root NodeInstance plus reference-
/// counted interior instances. Destruction of an instance cascades to
/// children whose counts reach zero, mirroring the paper's "instances
/// of nodes in Y become unreachable ... and can be deallocated"
/// (Section 4.5).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_INSTANCE_INSTANCEGRAPH_H
#define RELC_INSTANCE_INSTANCEGRAPH_H

#include "instance/NodeInstance.h"
#include "support/Arena.h"

#include <memory>

namespace relc {

class InstanceGraph {
public:
  /// Creates dempty d̂: a sole root instance with no map entries
  /// (Section 4.4). When \p Arena is non-null, every NodeInstance (with
  /// its trailing hook storage) and every edge-container cell is
  /// carved from it instead of the global heap, and clear() becomes an
  /// O(slabs) arena reset. The graph shares ownership of the arena so
  /// epoch-deferred frees can outlive it safely.
  explicit InstanceGraph(std::shared_ptr<const Decomposition> D,
                         std::shared_ptr<SlabArena> Arena = nullptr);

  ~InstanceGraph();

  InstanceGraph(const InstanceGraph &) = delete;
  InstanceGraph &operator=(const InstanceGraph &) = delete;

  const Decomposition &decomp() const { return *D; }
  const std::shared_ptr<const Decomposition> &decompRef() const { return D; }

  NodeInstance *root() const { return Root; }

  /// Allocates an instance of \p Node with refcount 0; the caller links
  /// it into parent containers and retains it per link.
  NodeInstance *create(NodeId Node, Tuple Bound);

  /// Drops one reference; destroys the instance (recursively releasing
  /// its children) when the count reaches zero.
  void release(NodeInstance *N);

  /// Resets to the empty instance.
  void clear();

  /// Number of live NodeInstances, including the root (leak checking
  /// and memory accounting in tests/benches).
  size_t liveInstances() const { return Live; }

  /// Route the final `delete` of destroyed instances through the
  /// epoch retire list (concurrent/Epoch.h) instead of freeing
  /// inline. Enabled by ConcurrentRelation on its shards: a writer
  /// that unlinks nodes under its stripe lock defers the actual
  /// deallocation past the readers' grace period, keeping frees out
  /// of the fenced critical section. Unlinking semantics (refcounts,
  /// Live accounting, edge-map teardown) are unchanged — only the
  /// point in time memory is returned to the allocator moves.
  void enableDeferredReclamation() { DeferredReclaim = true; }
  bool deferredReclamation() const { return DeferredReclaim; }

  /// The backing arena, or null when instances live on the global heap.
  SlabArena *arena() const { return Arena.get(); }

private:
  void destroy(NodeInstance *N);

  std::shared_ptr<const Decomposition> D;
  std::shared_ptr<SlabArena> Arena;
  NodeInstance *Root = nullptr;
  size_t Live = 0;
  bool DeferredReclaim = false;
};

} // namespace relc

#endif // RELC_INSTANCE_INSTANCEGRAPH_H
