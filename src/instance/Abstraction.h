//===- instance/Abstraction.h - The abstraction function α ------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstraction function α of Section 3.2: maps a decomposition
/// instance to the relation it represents. This is the semantic anchor
/// for every soundness statement (Lemmas 2-4, Theorem 5); tests compare
/// α-images of synthesized representations against the Relation oracle.
/// Exponential in principle, fine on test-sized instances.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_INSTANCE_ABSTRACTION_H
#define RELC_INSTANCE_ABSTRACTION_H

#include "instance/InstanceGraph.h"
#include "rel/Relation.h"

namespace relc {

/// α(d, ·): the relation represented by the whole instance graph.
Relation abstractInstance(const InstanceGraph &G);

/// α of a single node instance: the relation (with the node's Defines
/// columns) represented by the subgraph rooted at \p N.
Relation abstractNode(const NodeInstance *N);

} // namespace relc

#endif // RELC_INSTANCE_ABSTRACTION_H
