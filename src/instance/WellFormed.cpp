//===- instance/WellFormed.cpp - Well-formedness of instances ---------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "instance/WellFormed.h"

#include "instance/Abstraction.h"

#include <map>
#include <unordered_map>
#include <unordered_set>

using namespace relc;

namespace {

class WfChecker {
public:
  explicit WfChecker(const InstanceGraph &G) : G(G), D(G.decomp()) {}

  WfResult run() {
    NodeInstance *Root = G.root();
    if (Root->id() != D.root())
      return WfResult::failure("root instance is not of the root node");
    if (!Root->bound().empty())
      return WfResult::failure("root instance binds columns");

    WfResult R = visit(Root);
    if (!R.Ok)
      return R;

    // Reference counts: the graph holds one reference on the root, each
    // container entry holds one on its child.
    for (const auto &[N, Count] : IncomingRefs) {
      unsigned Expected = Count + (N == Root ? 1 : 0);
      if (N->refCount() != Expected)
        return WfResult::failure(
            "refcount mismatch on node '" + N->node().Name + "': have " +
            std::to_string(N->refCount()) + ", expected " +
            std::to_string(Expected));
    }
    return WfResult::success();
  }

private:
  WfResult visit(NodeInstance *N) {
    IncomingRefs.try_emplace(N, 0);
    if (!Visited.insert(N).second)
      return WfResult::success();

    const DecompNode &Node = D.node(N->id());

    // (WFLET): the bound valuation covers exactly B.
    if (N->bound().columns() != Node.Bound)
      return WfResult::failure(
          "instance of '" + Node.Name + "' binds " +
          D.catalog().setToString(N->bound().columns()) + ", declared " +
          D.catalog().setToString(Node.Bound));

    // Canonical sharing: one instance per (node, valuation).
    auto [It, Fresh] =
        Canonical.try_emplace(std::make_pair(N->id(), N->bound()), N);
    if (!Fresh && It->second != N)
      return WfResult::failure("duplicate instance of node '" + Node.Name +
                               "' for valuation " +
                               N->bound().str(D.catalog()));

    // (WFUNIT): stored unit tuples cover exactly their columns.
    for (PrimId U : D.unitsOf(N->id()))
      if (N->unitValues(U).columns() != D.prim(U).Cols)
        return WfResult::failure(
            "unit of node '" + Node.Name + "' stores " +
            N->unitValues(U).str(D.catalog()) + ", declared columns " +
            D.catalog().setToString(D.prim(U).Cols));

    // (WFMAP) per outgoing edge.
    for (EdgeId E : D.outgoing(N->id())) {
      const MapEdge &Edge = D.edge(E);
      const EdgeMap &Map = N->edgeMap(Edge.OrdinalInFrom);
      WfResult R = WfResult::success();
      Map.forEach([&](const Tuple &Key, NodeInstance *Child) {
        R = checkEntry(N, Edge, Key, Child);
        return R.Ok;
      });
      if (!R.Ok)
        return R;
    }

    // (WFJOIN) for every join in the primitive tree.
    WfResult R = checkJoins(N, Node.Prim);
    if (!R.Ok)
      return R;

    // Recurse.
    for (EdgeId E : D.outgoing(N->id())) {
      const MapEdge &Edge = D.edge(E);
      WfResult Sub = WfResult::success();
      N->edgeMap(Edge.OrdinalInFrom)
          .forEach([&](const Tuple &, NodeInstance *Child) {
            Sub = visit(Child);
            return Sub.Ok;
          });
      if (!Sub.Ok)
        return Sub;
    }
    return WfResult::success();
  }

  WfResult checkEntry(NodeInstance *Parent, const MapEdge &Edge,
                      const Tuple &Key, NodeInstance *Child) {
    ++IncomingRefs[Child];

    if (Key.columns() != Edge.KeyCols)
      return WfResult::failure(
          "entry key " + Key.str(D.catalog()) + " does not cover edge key "
          "columns " + D.catalog().setToString(Edge.KeyCols));

    if (Child->id() != Edge.To)
      return WfResult::failure("edge entry points at an instance of the "
                               "wrong node");

    // The child's valuation must agree with the path that reached it.
    Tuple PathBound = Parent->bound().merge(Key);
    if (!Child->bound().extends(PathBound))
      return WfResult::failure(
          "child of '" + Parent->node().Name + "' bound " +
          Child->bound().str(D.catalog()) + " does not extend path "
          "valuation " + PathBound.str(D.catalog()));

    // (WFMAP): t ∼ α(v_t').
    Relation ChildRel = abstractNode(Child);
    for (const Tuple &T : ChildRel.tuples())
      if (!T.matches(Key))
        return WfResult::failure(
            "entry key " + Key.str(D.catalog()) + " conflicts with child "
            "tuple " + T.str(D.catalog()));
    return WfResult::success();
  }

  WfResult checkJoins(NodeInstance *N, PrimId Id) {
    const PrimNode &P = D.prim(Id);
    if (P.Kind != PrimKind::Join)
      return WfResult::success();
    WfResult L = checkJoins(N, P.Left);
    if (!L.Ok)
      return L;
    WfResult R = checkJoins(N, P.Right);
    if (!R.Ok)
      return R;

    // (WFJOIN): no dangling tuples on either side.
    Relation R1 = alphaPrim(N, P.Left);
    Relation R2 = alphaPrim(N, P.Right);
    ColumnSet Common = R1.columns().intersect(R2.columns());
    if (R1.project(Common) != R2.project(Common))
      return WfResult::failure(
          "join sides of node '" + N->node().Name + "' disagree: " +
          R1.str(D.catalog()) + " vs " + R2.str(D.catalog()));
    return WfResult::success();
  }

  /// α of one primitive subtree of a node (the Abstraction module only
  /// exposes whole nodes).
  Relation alphaPrim(NodeInstance *N, PrimId Id) {
    const PrimNode &P = D.prim(Id);
    switch (P.Kind) {
    case PrimKind::Unit: {
      Relation R(P.Cols);
      R.insert(N->unitValues(Id));
      return R;
    }
    case PrimKind::Map: {
      const MapEdge &Edge = D.edge(P.Edge);
      Relation Result(P.Cols.unionWith(D.node(P.Target).Defines));
      N->edgeMap(Edge.OrdinalInFrom)
          .forEach([&](const Tuple &Key, NodeInstance *Child) {
            Relation KeyRel(Key.columns());
            KeyRel.insert(Key);
            Result = Relation::unionWith(
                Result, Relation::join(KeyRel, abstractNode(Child)));
            return true;
          });
      return Result;
    }
    case PrimKind::Join:
      return Relation::join(alphaPrim(N, P.Left), alphaPrim(N, P.Right));
    }
    assert(false && "unknown PrimKind");
    return Relation();
  }

  const InstanceGraph &G;
  const Decomposition &D;
  std::unordered_set<const NodeInstance *> Visited;
  std::map<std::pair<NodeId, Tuple>, NodeInstance *> Canonical;
  std::unordered_map<NodeInstance *, unsigned> IncomingRefs;
};

} // namespace

WfResult relc::checkWellFormed(const InstanceGraph &G) {
  return WfChecker(G).run();
}
