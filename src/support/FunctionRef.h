//===- support/FunctionRef.h - Non-owning callable reference ----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight non-owning reference to a callable, in the spirit of
/// llvm::function_ref. Used for scan callbacks on the hot query path
/// where std::function's allocation and indirection would be wasteful.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_FUNCTIONREF_H
#define RELC_SUPPORT_FUNCTIONREF_H

#include <cstdint>
#include <type_traits>
#include <utility>

namespace relc {

template <typename FnT> class function_ref;

/// Non-owning reference to a callable with signature Ret(Params...).
/// The referenced callable must outlive the function_ref.
template <typename Ret, typename... Params> class function_ref<Ret(Params...)> {
public:
  function_ref() = default;

  template <typename CallableT,
            typename = std::enable_if_t<!std::is_same_v<
                std::remove_cv_t<std::remove_reference_t<CallableT>>,
                function_ref>>>
  function_ref(CallableT &&Callable)
      : Callback(&callFn<std::remove_reference_t<CallableT>>),
        Callable(reinterpret_cast<intptr_t>(&Callable)) {}

  Ret operator()(Params... Args) const {
    return Callback(Callable, std::forward<Params>(Args)...);
  }

  explicit operator bool() const { return Callback != nullptr; }

private:
  template <typename CallableT>
  static Ret callFn(intptr_t Fn, Params... Args) {
    return (*reinterpret_cast<CallableT *>(Fn))(std::forward<Params>(Args)...);
  }

  Ret (*Callback)(intptr_t, Params...) = nullptr;
  intptr_t Callable = 0;
};

} // namespace relc

#endif // RELC_SUPPORT_FUNCTIONREF_H
