//===- support/Bits.h - Portable bit operations ------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// C++17-compatible popcount/countr_zero over 64-bit masks. The library
/// builds as C++17, where <bit> is unavailable; generated headers may be
/// compiled at C++20, so these stay valid under both.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_BITS_H
#define RELC_SUPPORT_BITS_H

#include <cstdint>

namespace relc {
namespace bits {

inline unsigned popcount(uint64_t Mask) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<unsigned>(__builtin_popcountll(Mask));
#else
  unsigned Count = 0;
  while (Mask) {
    Mask &= Mask - 1;
    ++Count;
  }
  return Count;
#endif
}

/// Number of trailing zero bits; 64 when \p Mask is zero.
inline unsigned countrZero(uint64_t Mask) {
  if (Mask == 0)
    return 64;
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<unsigned>(__builtin_ctzll(Mask));
#else
  unsigned Count = 0;
  while ((Mask & 1) == 0) {
    Mask >>= 1;
    ++Count;
  }
  return Count;
#endif
}

} // namespace bits
} // namespace relc

#endif // RELC_SUPPORT_BITS_H
