//===- support/Arena.h - Slab arena allocator -------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A slab arena for node and container-cell storage. One SlabArena is
/// owned per SynthesizedRelation (so per shard of a ConcurrentRelation):
/// every fresh insert carves node/cell blocks out of slabs that only
/// that shard's writer touches, instead of contending on the global
/// `operator new` from every shard. First-touch placement gives the
/// slabs best-effort NUMA locality with the shard's dominant writers.
///
///  - Slabs grow geometrically (16 KiB doubling to 1 MiB) and are
///    retained across reset(): a warmed arena serves the steady state
///    from its free lists and bump pointers with no global allocation.
///  - Blocks are carved in cache-line (64 B) units, each starting on a
///    64 B boundary, so blocks never share a cache line across shards.
///  - Freed blocks go to per-size-class free lists for exact-fit reuse.
///  - reset() destroys all live tracked blocks and rewinds every slab
///    in one pass: O(live tracked blocks) destructor calls + O(slabs)
///    memory work, not a per-node graph teardown.
///
/// Two block kinds:
///
///  - *Raw* blocks (`allocate`/`deallocate`): headerless; the caller
///    (a ds/ container) destroys contents and returns the block with
///    its size. Containers reach the arena through an ArenaRef and
///    fall back to the global heap when unbound.
///  - *Tracked* blocks (`allocateTracked`/`create<T>`): carry a 32 B
///    header linking them into the arena's live list with a destructor
///    pointer, so reset() can destroy whatever is still live. Node
///    storage uses this kind.
///
/// Thread contract (see docs/CONCURRENCY.md): all operations except
/// recycleDeferred are owner-side — they must be serialized by whatever
/// lock guards the owning relation's mutations (the shard stripe).
/// recycleDeferred is the epoch-reclamation hand-back: any thread may
/// push a previously untracked block while the owner allocates (a
/// lock-free pending stack the owner drains), but never concurrently
/// with reset()/destruction — reset runs only with every stripe held,
/// which excludes the writers that drive epoch reclamation. Stale
/// hand-backs that straddle a reset are dropped by generation check:
/// their memory was already reclaimed wholesale by the slab rewind.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_ARENA_H
#define RELC_SUPPORT_ARENA_H

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace relc {

/// Counter block returned by SlabArena::stats().
struct ArenaStats {
  /// Slabs currently allocated.
  size_t Slabs = 0;
  /// Bytes currently reserved (slab bytes + outstanding oversize).
  size_t Bytes = 0;
  /// Blocks handed out and not yet destroyed/deallocated. A destructed
  /// block whose memory hand-back is epoch-deferred is no longer live.
  size_t Live = 0;
  /// Cumulative blocks returned for reuse (free-list pushes, deferred
  /// hand-backs, oversize frees). reset() reclaims wholesale and does
  /// not count here.
  size_t Recycled = 0;
};

class SlabArena {
public:
  /// Carving unit and block alignment: one cache line.
  static constexpr size_t BlockAlign = 64;
  /// Tracked/oversize block header size; tracked payloads sit at this
  /// offset inside their 64 B-aligned block.
  static constexpr size_t HeaderBytes = 32;
  /// Geometric slab sizes: FirstSlabBytes doubling up to MaxSlabBytes.
  static constexpr size_t FirstSlabBytes = size_t(16) << 10;
  static constexpr size_t MaxSlabBytes = size_t(1) << 20;
  /// Largest slab-carved block; bigger requests take the oversize path
  /// (individually heap-allocated, still tracked and reset-freed).
  static constexpr size_t MaxSmallBytes = 4096;
  static constexpr size_t NumClasses = MaxSmallBytes / BlockAlign;

  SlabArena() = default;
  ~SlabArena();
  SlabArena(const SlabArena &) = delete;
  SlabArena &operator=(const SlabArena &) = delete;

  /// Raw block of at least \p Size bytes, BlockAlign-aligned.
  void *allocate(size_t Size) {
    assert(Size > 0 && "zero-size arena allocation");
    if (Size > MaxSmallBytes)
      return oversizeAlloc(Size, nullptr);
    Stats.Live.fetch_add(1, std::memory_order_relaxed);
    return carve(unitsFor(Size));
  }

  /// Returns a raw block; \p Size must match the allocate() request.
  void deallocate(void *P, size_t Size) noexcept {
    assert(P && "deallocating null");
    if (Size > MaxSmallBytes) {
      oversizeFree(headerOf(P));
      Stats.Live.fetch_sub(1, std::memory_order_relaxed);
      Stats.Recycled.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    pushFree(P, unitsFor(Size));
    Stats.Live.fetch_sub(1, std::memory_order_relaxed);
    Stats.Recycled.fetch_add(1, std::memory_order_relaxed);
  }

  /// Tracked block: reset() runs \p Dtor on the payload of every block
  /// still live. \p Dtor must not destroy *other* tracked blocks of
  /// this arena (node destructors satisfy this: releasing children is
  /// graph logic, not destructor logic).
  void *allocateTracked(size_t Size, void (*Dtor)(void *));

  /// Runs the stored destructor and recycles the block.
  void destroyTracked(void *Payload) noexcept;

  /// Unlinks a tracked block from the live list without running its
  /// destructor or recycling its memory; the caller destructs eagerly
  /// and hands the memory back later via recycleDeferred (the
  /// epoch-deferred reclamation path). Decrements Live: the payload
  /// object is dead from here on.
  void untrack(void *Payload) noexcept;

  /// Returns an untracked block's memory to the free lists. Callable
  /// from any thread concurrently with the owner allocating; never
  /// concurrently with reset() (see the file comment). \p Gen must be
  /// the resetGeneration() captured at untrack time: a stale
  /// generation means an intervening reset already reclaimed the
  /// memory wholesale and the hand-back is dropped.
  void recycleDeferred(void *Payload, uint64_t Gen) noexcept;

  /// Arena-constructed object (tracked block), destroyed by destroy()
  /// or at reset().
  template <typename T, typename... ArgTs> T *create(ArgTs &&...Args) {
    static_assert(alignof(T) <= HeaderBytes,
                  "tracked payloads are HeaderBytes-aligned");
    void *P = allocateTracked(
        sizeof(T), [](void *Q) { static_cast<T *>(Q)->~T(); });
    return new (P) T(std::forward<ArgTs>(Args)...);
  }

  template <typename T> void destroy(T *P) noexcept { destroyTracked(P); }

  /// Destroys every live tracked block, rewinds every slab's bump
  /// pointer, clears the free lists, and frees oversize blocks. Slabs
  /// are retained: the arena is warm for the next fill. Bumps the
  /// reset generation so in-flight deferred hand-backs are dropped.
  void reset();

  /// Detaches the arena from the epoch hand-back protocol: drains the
  /// pending stack into the free lists and bumps the reset generation,
  /// so any recycleDeferred still in flight (a reader retired before
  /// the freeze whose reclamation fires after it) is dropped by the
  /// generation check instead of landing in a stack nobody will drain.
  /// Called when a shard instance is frozen into a snapshot: the arena
  /// keeps serving reads, but no new blocks are carved and no deferred
  /// memory may be handed back. Owner-side (caller holds the stripe).
  void freeze() noexcept {
    drainPending();
    Generation.fetch_add(1, std::memory_order_release);
    // Late pushes that raced the drain are slab memory still owned by
    // the (now read-only) arena; dropping the cells leaks nothing.
    Pending.exchange(nullptr, std::memory_order_acquire);
  }

  uint64_t resetGeneration() const {
    return Generation.load(std::memory_order_acquire);
  }

  ArenaStats stats() const {
    ArenaStats S;
    S.Slabs = Stats.Slabs.load(std::memory_order_relaxed);
    S.Bytes = Stats.Bytes.load(std::memory_order_relaxed);
    S.Live = Stats.Live.load(std::memory_order_relaxed);
    S.Recycled = Stats.Recycled.load(std::memory_order_relaxed);
    return S;
  }

private:
  enum : uint32_t { FlagOversize = 1 };

  /// Header preceding tracked and oversize payloads. For tracked
  /// blocks Prev/Next link the live list; for raw oversize blocks they
  /// link the oversize list (Dtor null).
  struct Header {
    void (*Dtor)(void *);
    Header *Prev;
    Header *Next;
    uint32_t Units; ///< Block size in BlockAlign units (0: oversize).
    uint32_t Flags;
  };
  static_assert(sizeof(Header) <= HeaderBytes, "header must fit 32 bytes");

  /// Free-list node, stored in the freed block itself.
  struct FreeCell {
    FreeCell *Next;
  };

  /// Deferred hand-back node, stored in the freed block itself.
  struct PendingCell {
    PendingCell *Next;
    uint32_t Units;
  };

  struct Slab {
    char *Base;
    size_t Size;
    size_t Used;
  };

  static uint32_t unitsFor(size_t Bytes) {
    return static_cast<uint32_t>((Bytes + BlockAlign - 1) / BlockAlign);
  }

  static Header *headerOf(void *Payload) {
    return reinterpret_cast<Header *>(static_cast<char *>(Payload) -
                                      HeaderBytes);
  }
  static void *payloadOf(Header *H) {
    return reinterpret_cast<char *>(H) + HeaderBytes;
  }
  /// Oversize blocks pad the front so the payload (not the header) sits
  /// on a BlockAlign boundary; this recovers the allocation base.
  static void *oversizeBase(Header *H) {
    return reinterpret_cast<char *>(H) - (BlockAlign - HeaderBytes);
  }

  void *carve(uint32_t Units) {
    size_t Cls = Units - 1;
    assert(Cls < NumClasses && "oversize request on the carve path");
    if (!FreeLists[Cls] &&
        Pending.load(std::memory_order_relaxed) != nullptr)
      drainPending();
    if (FreeCell *C = FreeLists[Cls]) {
      FreeLists[Cls] = C->Next;
      return C;
    }
    return bump(Units);
  }

  void pushFree(void *Block, uint32_t Units) noexcept {
    size_t Cls = Units - 1;
    assert(Cls < NumClasses && "oversize block on a free list");
    FreeCell *C = static_cast<FreeCell *>(Block);
    C->Next = FreeLists[Cls];
    FreeLists[Cls] = C;
  }

  void linkHeader(Header *&ListHead, Header *H) noexcept {
    H->Prev = nullptr;
    H->Next = ListHead;
    if (ListHead)
      ListHead->Prev = H;
    ListHead = H;
  }

  void unlinkHeader(Header *&ListHead, Header *H) noexcept {
    if (H->Prev)
      H->Prev->Next = H->Next;
    else {
      assert(ListHead == H && "unlinking a header not on its list");
      ListHead = H->Next;
    }
    if (H->Next)
      H->Next->Prev = H->Prev;
  }

  void *bump(uint32_t Units);
  void *oversizeAlloc(size_t Size, void (*Dtor)(void *));
  void oversizeFree(Header *H) noexcept;
  void drainPending() noexcept;

  std::vector<Slab> Slabs;
  size_t CurSlab = 0;
  size_t NextSlabBytes = FirstSlabBytes;
  FreeCell *FreeLists[NumClasses] = {};
  /// Lock-free stack of epoch-deferred hand-backs from other shards'
  /// reclamation; drained by the owner on free-list miss and at reset.
  std::atomic<PendingCell *> Pending{nullptr};
  /// Live tracked blocks (reset destroys these).
  Header *LiveHead = nullptr;
  /// Raw oversize blocks (reset frees these; no destructor).
  Header *OversizeRawHead = nullptr;
  std::atomic<uint64_t> Generation{0};

  struct {
    std::atomic<size_t> Slabs{0};
    std::atomic<size_t> Bytes{0};
    std::atomic<size_t> Live{0};
    std::atomic<size_t> Recycled{0};
  } Stats;
};

/// Nullable handle the ds/ containers allocate their cells through:
/// bound to a SlabArena by the owning relation, or unbound (default)
/// with global-heap fallback — standalone container use is unchanged.
class ArenaRef {
public:
  ArenaRef() = default;
  explicit ArenaRef(SlabArena *A) : A(A) {}

  explicit operator bool() const { return A != nullptr; }
  SlabArena *arena() const { return A; }

  void *allocate(size_t Size) {
    return A ? A->allocate(Size) : ::operator new(Size);
  }
  void deallocate(void *P, size_t Size) noexcept {
    if (A)
      A->deallocate(P, Size);
    else
      ::operator delete(P);
  }

private:
  SlabArena *A = nullptr;
};

//===----------------------------------------------------------------------===//
// Implementation. Header-only: RELC-generated headers include this (via
// the ds/ containers and their own arena member) and must compile
// standalone against the src/ include directory, with no library to
// link.
//===----------------------------------------------------------------------===//

inline SlabArena::~SlabArena() {
  reset();
  for (Slab &S : Slabs)
    ::operator delete(S.Base, std::align_val_t(BlockAlign));
}

inline void *SlabArena::bump(uint32_t Units) {
  size_t Bytes = size_t(Units) * BlockAlign;
  while (CurSlab < Slabs.size() &&
         Slabs[CurSlab].Size - Slabs[CurSlab].Used < Bytes)
    ++CurSlab; // the tail remainder is waste until the next reset
  if (CurSlab == Slabs.size()) {
    size_t SlabBytes = std::max(NextSlabBytes, Bytes);
    NextSlabBytes = std::min(NextSlabBytes * 2, MaxSlabBytes);
    char *Base = static_cast<char *>(
        ::operator new(SlabBytes, std::align_val_t(BlockAlign)));
    Slabs.push_back(Slab{Base, SlabBytes, 0});
    Stats.Slabs.fetch_add(1, std::memory_order_relaxed);
    Stats.Bytes.fetch_add(SlabBytes, std::memory_order_relaxed);
  }
  Slab &S = Slabs[CurSlab];
  void *P = S.Base + S.Used;
  S.Used += Bytes;
  return P;
}

inline void *SlabArena::oversizeAlloc(size_t Size, void (*Dtor)(void *)) {
  size_t Total = BlockAlign + Size; // front pad + header, payload aligned
  assert(Total <= UINT32_MAX && "oversize block exceeds the header field");
  char *Base = static_cast<char *>(
      ::operator new(Total, std::align_val_t(BlockAlign)));
  Header *H = reinterpret_cast<Header *>(Base + (BlockAlign - HeaderBytes));
  H->Dtor = Dtor;
  // Oversize blocks repurpose Units for total bytes (stats bookkeeping).
  H->Units = static_cast<uint32_t>(Total);
  H->Flags = FlagOversize;
  linkHeader(Dtor ? LiveHead : OversizeRawHead, H);
  Stats.Bytes.fetch_add(Total, std::memory_order_relaxed);
  Stats.Live.fetch_add(1, std::memory_order_relaxed);
  return payloadOf(H);
}

inline void SlabArena::oversizeFree(Header *H) noexcept {
  unlinkHeader(H->Dtor ? LiveHead : OversizeRawHead, H);
  Stats.Bytes.fetch_sub(H->Units, std::memory_order_relaxed);
  ::operator delete(oversizeBase(H), std::align_val_t(BlockAlign));
}

inline void *SlabArena::allocateTracked(size_t Size, void (*Dtor)(void *)) {
  assert(Size > 0 && "zero-size arena allocation");
  assert(Dtor && "tracked blocks need a destructor");
  if (HeaderBytes + Size > MaxSmallBytes)
    return oversizeAlloc(Size, Dtor);
  uint32_t Units = unitsFor(HeaderBytes + Size);
  Header *H = static_cast<Header *>(carve(Units));
  H->Dtor = Dtor;
  H->Units = Units;
  H->Flags = 0;
  linkHeader(LiveHead, H);
  Stats.Live.fetch_add(1, std::memory_order_relaxed);
  return payloadOf(H);
}

inline void SlabArena::destroyTracked(void *Payload) noexcept {
  Header *H = headerOf(Payload);
  H->Dtor(Payload);
  if (H->Flags & FlagOversize) {
    unlinkHeader(LiveHead, H);
    Stats.Bytes.fetch_sub(H->Units, std::memory_order_relaxed);
    ::operator delete(oversizeBase(H), std::align_val_t(BlockAlign));
  } else {
    unlinkHeader(LiveHead, H);
    pushFree(H, H->Units);
  }
  Stats.Live.fetch_sub(1, std::memory_order_relaxed);
  Stats.Recycled.fetch_add(1, std::memory_order_relaxed);
}

inline void SlabArena::untrack(void *Payload) noexcept {
  Header *H = headerOf(Payload);
  unlinkHeader(LiveHead, H);
  Stats.Live.fetch_sub(1, std::memory_order_relaxed);
}

inline void SlabArena::recycleDeferred(void *Payload, uint64_t Gen) noexcept {
  Header *H = headerOf(Payload);
  if (H->Flags & FlagOversize) {
    // Untracked oversize blocks were unlinked from the live list and
    // are invisible to reset(): always free them here.
    Stats.Bytes.fetch_sub(H->Units, std::memory_order_relaxed);
    ::operator delete(oversizeBase(H), std::align_val_t(BlockAlign));
    Stats.Recycled.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (Gen != resetGeneration())
    return; // a reset reclaimed this block's slab memory wholesale
  PendingCell *C = reinterpret_cast<PendingCell *>(H);
  C->Units = H->Units; // aliases H->Dtor's bytes; Units read first
  PendingCell *Head = Pending.load(std::memory_order_relaxed);
  do {
    C->Next = Head;
  } while (!Pending.compare_exchange_weak(Head, C, std::memory_order_release,
                                          std::memory_order_relaxed));
  Stats.Recycled.fetch_add(1, std::memory_order_relaxed);
}

inline void SlabArena::drainPending() noexcept {
  PendingCell *C = Pending.exchange(nullptr, std::memory_order_acquire);
  while (C) {
    PendingCell *Next = C->Next;
    pushFree(C, C->Units);
    C = Next;
  }
}

inline void SlabArena::reset() {
  // 1. Destroy live tracked blocks (payload destructors may hand cells
  //    back via deallocate(); that only touches the free lists cleared
  //    below, and oversize raw frees, which unlink safely from a list
  //    this walk does not hold). Oversize tracked blocks are freed on
  //    the spot; small ones are reclaimed by the slab rewind.
  Header *H = LiveHead;
  while (H) {
    Header *Next = H->Next;
    H->Dtor(payloadOf(H));
    if (H->Flags & FlagOversize) {
      Stats.Bytes.fetch_sub(H->Units, std::memory_order_relaxed);
      ::operator delete(oversizeBase(H), std::align_val_t(BlockAlign));
    }
    H = Next;
  }
  LiveHead = nullptr;
  // 2. Free raw oversize blocks that survived the destructors.
  H = OversizeRawHead;
  while (H) {
    Header *Next = H->Next;
    Stats.Bytes.fetch_sub(H->Units, std::memory_order_relaxed);
    ::operator delete(oversizeBase(H), std::align_val_t(BlockAlign));
    H = Next;
  }
  OversizeRawHead = nullptr;
  // 3. Invalidate in-flight deferred hand-backs, then discard any that
  //    landed before the bump — their memory is slab memory rewound
  //    below. (No hand-back can race this: reset runs with every
  //    stripe held, which excludes the writers that drive epoch
  //    reclamation.)
  Generation.fetch_add(1, std::memory_order_release);
  Pending.exchange(nullptr, std::memory_order_acquire);
  // 4. Clear free lists and rewind the slabs — O(slabs); the slabs
  //    themselves are retained warm.
  std::fill(std::begin(FreeLists), std::end(FreeLists), nullptr);
  for (Slab &S : Slabs)
    S.Used = 0;
  CurSlab = 0;
  Stats.Live.store(0, std::memory_order_relaxed);
}

} // namespace relc

#endif // RELC_SUPPORT_ARENA_H
