//===- support/Value.cpp - Untyped relational values ----------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "support/Value.h"

#include <cassert>
#include <deque>
#include <mutex>
#include <unordered_map>

using namespace relc;

namespace {
/// Process-wide string intern pool. Strings are never evicted; ids are
/// stable for the lifetime of the process.
class StringPool {
public:
  static StringPool &instance() {
    static StringPool Pool;
    return Pool;
  }

  int64_t intern(std::string_view S) {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Index.find(std::string(S));
    if (It != Index.end())
      return It->second;
    Strings.emplace_back(S);
    int64_t Id = static_cast<int64_t>(Strings.size()) - 1;
    Index.emplace(Strings.back(), Id);
    return Id;
  }

  std::string_view text(int64_t Id) const {
    std::lock_guard<std::mutex> Lock(Mu);
    assert(Id >= 0 && static_cast<size_t>(Id) < Strings.size() &&
           "invalid interned string id");
    return Strings[static_cast<size_t>(Id)];
  }

private:
  // deque: stable addresses so Index keys (string copies) stay valid.
  std::deque<std::string> Strings;
  std::unordered_map<std::string, int64_t> Index;
  mutable std::mutex Mu;
};
} // namespace

Value Value::ofString(std::string_view S) {
  Value Result;
  Result.K = Kind::Str;
  Result.Payload = StringPool::instance().intern(S);
  return Result;
}

int64_t Value::asInt() const {
  assert(isInt() && "Value is not an integer");
  return Payload;
}

std::string_view Value::asStr() const {
  assert(isStr() && "Value is not a string");
  return StringPool::instance().text(Payload);
}

bool Value::operator<(const Value &Other) const {
  if (K != Other.K)
    return K < Other.K;
  if (K == Kind::Int)
    return Payload < Other.Payload;
  if (Payload == Other.Payload)
    return false;
  return asStr() < Other.asStr();
}

std::string Value::str() const {
  if (isInt())
    return std::to_string(Payload);
  return "\"" + std::string(asStr()) + "\"";
}
