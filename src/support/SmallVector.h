//===- support/SmallVector.h - Vector with inline storage -------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simplified SmallVector in the spirit of llvm::SmallVector: a vector
/// optimized for the case when the array is small, keeping the first N
/// elements in inline storage and only heap-allocating beyond that.
/// Tuples and container keys in RelC hold a handful of values, so this
/// avoids an allocation on nearly every tuple operation.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_SMALLVECTOR_H
#define RELC_SUPPORT_SMALLVECTOR_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace relc {

/// A vector with inline storage for the first \p N elements.
///
/// Supports the subset of the std::vector interface RelC needs. Elements
/// must be movable. Iterators are invalidated by any mutation that grows
/// the vector past its capacity.
template <typename T, unsigned N = 4> class SmallVector {
public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> Init) {
    reserve(Init.size());
    for (const T &V : Init)
      push_back(V);
  }

  SmallVector(const SmallVector &Other) { append(Other.begin(), Other.end()); }

  SmallVector(SmallVector &&Other) noexcept { moveFrom(std::move(Other)); }

  SmallVector &operator=(const SmallVector &Other) {
    if (this == &Other)
      return *this;
    clear();
    append(Other.begin(), Other.end());
    return *this;
  }

  SmallVector &operator=(SmallVector &&Other) noexcept {
    if (this == &Other)
      return *this;
    destroyAll();
    freeHeap();
    Begin = inlineData();
    Size = 0;
    Capacity = N;
    moveFrom(std::move(Other));
    return *this;
  }

  ~SmallVector() {
    destroyAll();
    freeHeap();
  }

  iterator begin() { return Begin; }
  iterator end() { return Begin + Size; }
  const_iterator begin() const { return Begin; }
  const_iterator end() const { return Begin + Size; }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }
  size_t capacity() const { return Capacity; }

  T &operator[](size_t I) {
    assert(I < Size && "SmallVector index out of range");
    return Begin[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Size && "SmallVector index out of range");
    return Begin[I];
  }

  T &front() { return (*this)[0]; }
  const T &front() const { return (*this)[0]; }
  T &back() { return (*this)[Size - 1]; }
  const T &back() const { return (*this)[Size - 1]; }

  void push_back(const T &V) {
    grow(Size + 1);
    new (Begin + Size) T(V);
    ++Size;
  }

  void push_back(T &&V) {
    grow(Size + 1);
    new (Begin + Size) T(std::move(V));
    ++Size;
  }

  template <typename... ArgTs> T &emplace_back(ArgTs &&...Args) {
    grow(Size + 1);
    new (Begin + Size) T(std::forward<ArgTs>(Args)...);
    ++Size;
    return back();
  }

  void pop_back() {
    assert(Size > 0 && "pop_back on empty SmallVector");
    --Size;
    Begin[Size].~T();
  }

  void clear() {
    destroyAll();
    Size = 0;
  }

  void reserve(size_t NewCap) { grow(NewCap); }

  void resize(size_t NewSize) {
    if (NewSize < Size) {
      while (Size > NewSize)
        pop_back();
      return;
    }
    grow(NewSize);
    while (Size < NewSize)
      emplace_back();
  }

  /// Inserts \p V before position \p Pos, shifting later elements right.
  iterator insert(iterator Pos, T V) {
    size_t Idx = Pos - Begin;
    assert(Idx <= Size && "insert position out of range");
    grow(Size + 1);
    new (Begin + Size) T(std::move(V));
    ++Size;
    std::rotate(Begin + Idx, Begin + Size - 1, Begin + Size);
    return Begin + Idx;
  }

  /// Erases the element at \p Pos, shifting later elements left.
  iterator erase(iterator Pos) {
    size_t Idx = Pos - Begin;
    assert(Idx < Size && "erase position out of range");
    std::move(Begin + Idx + 1, Begin + Size, Begin + Idx);
    pop_back();
    return Begin + Idx;
  }

  template <typename ItT> void append(ItT First, ItT Last) {
    for (; First != Last; ++First)
      push_back(*First);
  }

  bool operator==(const SmallVector &Other) const {
    return Size == Other.Size && std::equal(begin(), end(), Other.begin());
  }
  bool operator!=(const SmallVector &Other) const { return !(*this == Other); }

  bool operator<(const SmallVector &Other) const {
    return std::lexicographical_compare(begin(), end(), Other.begin(),
                                        Other.end());
  }

private:
  T *inlineData() { return reinterpret_cast<T *>(InlineStorage); }

  bool isInline() const {
    return Begin == reinterpret_cast<const T *>(InlineStorage);
  }

  void destroyAll() {
    for (size_t I = 0; I != Size; ++I)
      Begin[I].~T();
  }

  void freeHeap() {
    if (!isInline())
      ::operator delete(Begin);
  }

  void grow(size_t MinCap) {
    if (MinCap <= Capacity)
      return;
    size_t NewCap = std::max(MinCap, Capacity * 2);
    T *NewData = static_cast<T *>(::operator new(NewCap * sizeof(T)));
    for (size_t I = 0; I != Size; ++I) {
      new (NewData + I) T(std::move(Begin[I]));
      Begin[I].~T();
    }
    freeHeap();
    Begin = NewData;
    Capacity = NewCap;
  }

  void moveFrom(SmallVector &&Other) {
    if (Other.isInline()) {
      for (size_t I = 0; I != Other.Size; ++I)
        new (Begin + I) T(std::move(Other.Begin[I]));
      Size = Other.Size;
      Other.destroyAll();
      Other.Size = 0;
      return;
    }
    // Steal the heap allocation.
    Begin = Other.Begin;
    Size = Other.Size;
    Capacity = Other.Capacity;
    Other.Begin = Other.inlineData();
    Other.Size = 0;
    Other.Capacity = N;
  }

  alignas(T) unsigned char InlineStorage[sizeof(T) * N];
  T *Begin = inlineData();
  size_t Size = 0;
  size_t Capacity = N;
};

} // namespace relc

#endif // RELC_SUPPORT_SMALLVECTOR_H
