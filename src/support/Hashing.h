//===- support/Hashing.h - Hash combination utilities -----------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hash-combination helpers used by tuples, values and container
/// keys throughout RelC.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_HASHING_H
#define RELC_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace relc {

/// Mixes \p Value into \p Seed (boost::hash_combine-style, 64-bit variant).
inline size_t hashCombine(size_t Seed, size_t Value) {
  // Constant from the splitmix64 finalizer; spreads entropy across bits.
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 12) + (Seed >> 4);
  return Seed;
}

/// Hashes \p V with std::hash and mixes it into \p Seed.
template <typename T> size_t hashCombineValue(size_t Seed, const T &V) {
  return hashCombine(Seed, std::hash<T>()(V));
}

/// Finalizer that forces avalanche on a raw 64-bit value.
inline uint64_t hashMix64(uint64_t X) {
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdULL;
  X ^= X >> 33;
  X *= 0xc4ceb9fe1a85ec53ULL;
  X ^= X >> 33;
  return X;
}

} // namespace relc

#endif // RELC_SUPPORT_HASHING_H
