//===- support/Checks.h - Expensive invariant checks -------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RELC_EXPENSIVE_ASSERT: assertions whose *evaluation* changes the
/// complexity class of the operation they guard (duplicate-key scans in
/// O(n) containers, membership probes before inserts the caller already
/// proved fresh). They stay off unless RELC_ENABLE_EXPENSIVE_CHECKS is
/// defined — cheap assertions use plain assert and are always on in
/// this project's builds (see the top-level CMakeLists).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_CHECKS_H
#define RELC_SUPPORT_CHECKS_H

#include <cassert>

#ifdef RELC_ENABLE_EXPENSIVE_CHECKS
#define RELC_EXPENSIVE_ASSERT(...) assert(__VA_ARGS__)
#else
#define RELC_EXPENSIVE_ASSERT(...) ((void)0)
#endif

#endif // RELC_SUPPORT_CHECKS_H
