//===- support/Value.h - Untyped relational values --------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Values of the relational universe V (Section 2 of the paper). A Value
/// is a tagged 64-bit cell holding either an integer or an interned
/// string. Interning keeps comparison and hashing O(1)-ish while still
/// supporting string-valued columns (tile URLs, host names, ...).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SUPPORT_VALUE_H
#define RELC_SUPPORT_VALUE_H

#include "support/Hashing.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace relc {

/// A single value drawn from the relational universe: an integer or an
/// interned string. Default-constructed Values are the integer 0.
class Value {
public:
  enum class Kind : uint8_t { Int, Str };

  Value() : K(Kind::Int), Payload(0) {}

  /// Creates an integer value.
  static Value ofInt(int64_t V) {
    Value Result;
    Result.K = Kind::Int;
    Result.Payload = V;
    return Result;
  }

  /// Creates a string value, interning \p S in the global pool.
  static Value ofString(std::string_view S);

  Kind kind() const { return K; }
  bool isInt() const { return K == Kind::Int; }
  bool isStr() const { return K == Kind::Str; }

  int64_t asInt() const;
  std::string_view asStr() const;

  bool operator==(const Value &Other) const {
    return K == Other.K && Payload == Other.Payload;
  }
  bool operator!=(const Value &Other) const { return !(*this == Other); }

  /// Total order: all integers before all strings; integers by value,
  /// strings lexicographically by content (so ordered containers iterate
  /// in a human-meaningful order).
  bool operator<(const Value &Other) const;

  size_t hash() const {
    return hashMix64((static_cast<uint64_t>(K) << 62) ^
                     static_cast<uint64_t>(Payload));
  }

  /// Renders the value for diagnostics ("42" or "\"foo\"").
  std::string str() const;

private:
  Kind K;
  int64_t Payload; // Int: the value. Str: index into the intern pool.
};

} // namespace relc

template <> struct std::hash<relc::Value> {
  size_t operator()(const relc::Value &V) const { return V.hash(); }
};

#endif // RELC_SUPPORT_VALUE_H
