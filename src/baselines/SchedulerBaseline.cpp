//===- baselines/SchedulerBaseline.cpp - Hand-coded scheduler ----------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "baselines/SchedulerBaseline.h"

#include "support/Hashing.h"

#include <cassert>

using namespace relc;

struct SchedulerBaseline::Proc {
  int64_t Ns;
  int64_t Pid;
  ProcState State;
  int64_t Cpu;
  Proc *HashNext; // hash chain
  Proc *ListPrev; // state list links (intrusive)
  Proc *ListNext;
};

SchedulerBaseline::SchedulerBaseline() : Buckets(64, nullptr) {}

SchedulerBaseline::~SchedulerBaseline() {
  for (Proc *Head : Buckets)
    while (Head) {
      Proc *Next = Head->HashNext;
      delete Head;
      Head = Next;
    }
}

static size_t bucketHash(int64_t Ns, int64_t Pid) {
  return hashMix64(static_cast<uint64_t>(Ns) * 0x9e3779b97f4a7c15ULL +
                   static_cast<uint64_t>(Pid));
}

SchedulerBaseline::Proc *SchedulerBaseline::find(int64_t Ns,
                                                 int64_t Pid) const {
  size_t B = bucketHash(Ns, Pid) & (Buckets.size() - 1);
  for (Proc *P = Buckets[B]; P; P = P->HashNext)
    if (P->Ns == Ns && P->Pid == Pid)
      return P;
  return nullptr;
}

void SchedulerBaseline::rehashIfNeeded() {
  if (Count <= Buckets.size())
    return;
  std::vector<Proc *> Old = std::move(Buckets);
  Buckets.assign(Old.size() * 2, nullptr);
  for (Proc *Head : Old)
    while (Head) {
      Proc *Next = Head->HashNext;
      size_t B = bucketHash(Head->Ns, Head->Pid) & (Buckets.size() - 1);
      Head->HashNext = Buckets[B];
      Buckets[B] = Head;
      Head = Next;
    }
}

void SchedulerBaseline::listInsert(Proc *P) {
  Proc *&Head = StateHead[static_cast<int>(P->State)];
  P->ListPrev = nullptr;
  P->ListNext = Head;
  if (Head)
    Head->ListPrev = P;
  Head = P;
}

void SchedulerBaseline::listRemove(Proc *P) {
  if (P->ListPrev)
    P->ListPrev->ListNext = P->ListNext;
  else {
    assert(StateHead[static_cast<int>(P->State)] == P &&
           "state list corrupted");
    StateHead[static_cast<int>(P->State)] = P->ListNext;
  }
  if (P->ListNext)
    P->ListNext->ListPrev = P->ListPrev;
  P->ListPrev = P->ListNext = nullptr;
}

bool SchedulerBaseline::addProcess(int64_t Ns, int64_t Pid, ProcState State,
                                   int64_t Cpu) {
  if (find(Ns, Pid))
    return false;
  ++Count;
  rehashIfNeeded();
  Proc *P = new Proc{Ns, Pid, State, Cpu, nullptr, nullptr, nullptr};
  size_t B = bucketHash(Ns, Pid) & (Buckets.size() - 1);
  P->HashNext = Buckets[B];
  Buckets[B] = P;
  // The invariant the paper calls out: every process must also appear
  // on exactly one state list. Forgetting this line is the classic bug.
  listInsert(P);
  return true;
}

bool SchedulerBaseline::removeProcess(int64_t Ns, int64_t Pid) {
  size_t B = bucketHash(Ns, Pid) & (Buckets.size() - 1);
  for (Proc **Link = &Buckets[B]; *Link; Link = &(*Link)->HashNext) {
    Proc *P = *Link;
    if (P->Ns != Ns || P->Pid != Pid)
      continue;
    *Link = P->HashNext;
    listRemove(P); // ...and must leave its state list, too.
    delete P;
    --Count;
    return true;
  }
  return false;
}

bool SchedulerBaseline::setState(int64_t Ns, int64_t Pid, ProcState State) {
  Proc *P = find(Ns, Pid);
  if (!P)
    return false;
  if (P->State == State)
    return true;
  listRemove(P);
  P->State = State;
  listInsert(P);
  return true;
}

bool SchedulerBaseline::chargeCpu(int64_t Ns, int64_t Pid, int64_t Delta) {
  Proc *P = find(Ns, Pid);
  if (!P)
    return false;
  P->Cpu += Delta;
  return true;
}

int64_t SchedulerBaseline::cpuOf(int64_t Ns, int64_t Pid) const {
  Proc *P = find(Ns, Pid);
  return P ? P->Cpu : -1;
}

std::vector<std::pair<int64_t, int64_t>>
SchedulerBaseline::processesIn(ProcState State) const {
  std::vector<std::pair<int64_t, int64_t>> Result;
  for (Proc *P = StateHead[static_cast<int>(State)]; P; P = P->ListNext)
    Result.emplace_back(P->Ns, P->Pid);
  return Result;
}

std::vector<int64_t> SchedulerBaseline::pidsInNamespace(int64_t Ns) const {
  std::vector<int64_t> Result;
  for (Proc *Head : Buckets)
    for (Proc *P = Head; P; P = P->HashNext)
      if (P->Ns == Ns)
        Result.push_back(P->Pid);
  return Result;
}
