//===- baselines/IpcapBaseline.cpp - Hand-coded flow accounting --------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "baselines/IpcapBaseline.h"

using namespace relc;

void IpcapBaseline::accountPacket(int64_t Local, int64_t Remote,
                                  int64_t Bytes, bool Outgoing) {
  auto &PerRemote = Flows[Local];
  auto [It, Fresh] = PerRemote.try_emplace(Remote);
  if (Fresh)
    ++Count;
  FlowStats &S = It->second;
  if (Outgoing)
    S.BytesOut += Bytes;
  else
    S.BytesIn += Bytes;
  ++S.Packets;
}

const FlowStats *IpcapBaseline::flowOf(int64_t Local, int64_t Remote) const {
  auto It = Flows.find(Local);
  if (It == Flows.end())
    return nullptr;
  auto Ft = It->second.find(Remote);
  return Ft == It->second.end() ? nullptr : &Ft->second;
}

std::vector<FlowRecord> IpcapBaseline::flush() {
  std::vector<FlowRecord> Result;
  Result.reserve(Count);
  for (const auto &[Local, PerRemote] : Flows)
    for (const auto &[Remote, Stats] : PerRemote)
      Result.push_back({Local, Remote, Stats});
  Flows.clear();
  Count = 0;
  return Result;
}
