//===- baselines/GraphBaseline.h - Hand-coded edge relation -----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-coded directed weighted graph for the Section 6.1 benchmark:
/// forward and backward adjacency hash maps, kept consistent manually.
/// This is the comparison point for the autotuned edge relation.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_BASELINES_GRAPHBASELINE_H
#define RELC_BASELINES_GRAPHBASELINE_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace relc {

class GraphBaseline {
public:
  /// Adds edge (src, dst, weight); returns false if it already exists.
  bool addEdge(int64_t Src, int64_t Dst, int64_t Weight);

  /// Removes the edge; returns false if absent.
  bool removeEdge(int64_t Src, int64_t Dst);

  /// \returns the weight or -1 if absent.
  int64_t weightOf(int64_t Src, int64_t Dst) const;

  const std::vector<std::pair<int64_t, int64_t>> *
  successors(int64_t Src) const;
  const std::vector<std::pair<int64_t, int64_t>> *
  predecessors(int64_t Dst) const;

  size_t numEdges() const { return Count; }

private:
  // node -> list of (neighbor, weight). Removal compacts by swap-pop.
  std::unordered_map<int64_t, std::vector<std::pair<int64_t, int64_t>>> Fwd;
  std::unordered_map<int64_t, std::vector<std::pair<int64_t, int64_t>>> Bwd;
  size_t Count = 0;
};

} // namespace relc

#endif // RELC_BASELINES_GRAPHBASELINE_H
