//===- baselines/ZtopoBaseline.h - Hand-coded tile cache --------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-coded equivalent of ZTopo's tile cache (Section 6.2): a hash
/// table over tile ids plus one intrusive LRU list *per tile state*
/// (memory / disk / loading). The original kept "fairly subtle dynamic
/// assertions" that the two representations of a tile's state agree —
/// exactly the overlapping-structure invariant RelC discharges by
/// construction in ZtopoRelational.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_BASELINES_ZTOPOBASELINE_H
#define RELC_BASELINES_ZTOPOBASELINE_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace relc {

enum class TileState : int64_t { Loading = 0, InMemory = 1, OnDisk = 2 };

class ZtopoBaseline {
public:
  ZtopoBaseline();
  ~ZtopoBaseline();
  ZtopoBaseline(const ZtopoBaseline &) = delete;
  ZtopoBaseline &operator=(const ZtopoBaseline &) = delete;

  /// Looks a tile up; if present, refreshes its LRU position and
  /// returns its state. Returns false if unknown.
  bool touchTile(int64_t TileId, TileState &StateOut);

  /// Inserts a tile (must be absent) in \p State.
  void addTile(int64_t TileId, TileState State, int64_t Size);

  /// Moves a tile to \p State (e.g. Loading -> InMemory).
  bool setState(int64_t TileId, TileState State);

  /// Evicts least-recently-used tiles in \p State until the state's
  /// total size is at most \p Budget; returns evicted tile ids.
  std::vector<int64_t> evictToBudget(TileState State, int64_t Budget);

  size_t numTiles() const { return Index.size(); }
  int64_t bytesIn(TileState State) const {
    return StateBytes[static_cast<int>(State)];
  }

private:
  struct Tile {
    int64_t Id;
    TileState State;
    int64_t Size;
    Tile *Prev;
    Tile *Next;
  };

  void listPushFront(Tile *T);
  void listUnlink(Tile *T);

  std::unordered_map<int64_t, Tile *> Index;
  Tile *Head[3] = {nullptr, nullptr, nullptr};
  Tile *Tail[3] = {nullptr, nullptr, nullptr};
  int64_t StateBytes[3] = {0, 0, 0};
};

} // namespace relc

#endif // RELC_BASELINES_ZTOPOBASELINE_H
