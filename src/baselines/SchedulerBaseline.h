//===- baselines/SchedulerBaseline.h - Hand-coded scheduler -----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hand-coded process scheduler data structure from the paper's
/// introduction: processes live in a hash table indexed by (ns, pid)
/// *and* on exactly one of two doubly-linked state lists (running /
/// sleeping), with the links embedded in the process record — the
/// overlapping-structure invariants the paper motivates are maintained
/// manually here, by every operation. Compare SchedulerRelational,
/// where RelC maintains them by construction.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_BASELINES_SCHEDULERBASELINE_H
#define RELC_BASELINES_SCHEDULERBASELINE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace relc {

enum class ProcState : int64_t { Sleeping = 0, Running = 1 };

class SchedulerBaseline {
public:
  SchedulerBaseline();
  ~SchedulerBaseline();
  SchedulerBaseline(const SchedulerBaseline &) = delete;
  SchedulerBaseline &operator=(const SchedulerBaseline &) = delete;

  /// Creates the process; returns false if (ns, pid) already exists.
  bool addProcess(int64_t Ns, int64_t Pid, ProcState State, int64_t Cpu);

  /// Removes the process; returns false if absent.
  bool removeProcess(int64_t Ns, int64_t Pid);

  /// Moves the process between state lists; returns false if absent.
  bool setState(int64_t Ns, int64_t Pid, ProcState State);

  /// Adds to the process's cpu counter; returns false if absent.
  bool chargeCpu(int64_t Ns, int64_t Pid, int64_t Delta);

  /// \returns the cpu counter, or -1 if absent.
  int64_t cpuOf(int64_t Ns, int64_t Pid) const;

  /// All (ns, pid) pairs in \p State, in list order.
  std::vector<std::pair<int64_t, int64_t>> processesIn(ProcState State) const;

  /// All pids in namespace \p Ns (scans the hash table).
  std::vector<int64_t> pidsInNamespace(int64_t Ns) const;

  size_t size() const { return Count; }

private:
  struct Proc;

  void listInsert(Proc *P);
  void listRemove(Proc *P);
  Proc *find(int64_t Ns, int64_t Pid) const;
  void rehashIfNeeded();

  std::vector<Proc *> Buckets;
  Proc *StateHead[2] = {nullptr, nullptr};
  size_t Count = 0;
};

} // namespace relc

#endif // RELC_BASELINES_SCHEDULERBASELINE_H
