//===- baselines/ZtopoBaseline.cpp - Hand-coded tile cache --------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "baselines/ZtopoBaseline.h"

#include <cassert>

using namespace relc;

ZtopoBaseline::ZtopoBaseline() = default;

ZtopoBaseline::~ZtopoBaseline() {
  for (auto &[Id, T] : Index)
    delete T;
}

void ZtopoBaseline::listPushFront(Tile *T) {
  int S = static_cast<int>(T->State);
  T->Prev = nullptr;
  T->Next = Head[S];
  if (Head[S])
    Head[S]->Prev = T;
  Head[S] = T;
  if (!Tail[S])
    Tail[S] = T;
  StateBytes[S] += T->Size;
}

void ZtopoBaseline::listUnlink(Tile *T) {
  int S = static_cast<int>(T->State);
  if (T->Prev)
    T->Prev->Next = T->Next;
  else {
    assert(Head[S] == T && "LRU list corrupted");
    Head[S] = T->Next;
  }
  if (T->Next)
    T->Next->Prev = T->Prev;
  else
    Tail[S] = T->Prev;
  T->Prev = T->Next = nullptr;
  StateBytes[S] -= T->Size;
}

bool ZtopoBaseline::touchTile(int64_t TileId, TileState &StateOut) {
  auto It = Index.find(TileId);
  if (It == Index.end())
    return false;
  Tile *T = It->second;
  // Refresh LRU position.
  listUnlink(T);
  listPushFront(T);
  StateOut = T->State;
  return true;
}

void ZtopoBaseline::addTile(int64_t TileId, TileState State, int64_t Size) {
  assert(!Index.count(TileId) && "tile already cached");
  Tile *T = new Tile{TileId, State, Size, nullptr, nullptr};
  Index.emplace(TileId, T);
  listPushFront(T);
}

bool ZtopoBaseline::setState(int64_t TileId, TileState State) {
  auto It = Index.find(TileId);
  if (It == Index.end())
    return false;
  Tile *T = It->second;
  if (T->State == State)
    return true;
  listUnlink(T);
  T->State = State;
  listPushFront(T);
  return true;
}

std::vector<int64_t> ZtopoBaseline::evictToBudget(TileState State,
                                                  int64_t Budget) {
  int S = static_cast<int>(State);
  std::vector<int64_t> Evicted;
  while (StateBytes[S] > Budget && Tail[S]) {
    Tile *T = Tail[S];
    listUnlink(T);
    Index.erase(T->Id);
    Evicted.push_back(T->Id);
    delete T;
  }
  return Evicted;
}
