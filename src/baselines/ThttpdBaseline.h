//===- baselines/ThttpdBaseline.h - Hand-coded mmap cache -------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-coded equivalent of thttpd's mmc module (Section 6.2): a cache
/// of mmap()ed files keyed by file id, with reference counts and a
/// periodic cleanup pass that unmaps entries unreferenced and idle past
/// a TTL. The real module's hash table + freelist bookkeeping is
/// reproduced; the mmap() itself is simulated by a byte count.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_BASELINES_THTTPDBASELINE_H
#define RELC_BASELINES_THTTPDBASELINE_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace relc {

class ThttpdBaseline {
public:
  /// Maps the file for a request (reusing a cached mapping when
  /// possible) and returns its simulated address; bumps the refcount.
  int64_t mapFile(int64_t FileId, int64_t Size, int64_t Now);

  /// Releases one reference (the request finished).
  void unmapFile(int64_t FileId, int64_t Now);

  /// Unmaps entries with refcount 0 idle longer than \p TtlSeconds;
  /// returns how many were evicted.
  size_t cleanup(int64_t Now, int64_t TtlSeconds);

  size_t numMapped() const { return Entries.size(); }
  int64_t mappedBytes() const { return TotalBytes; }

private:
  struct Entry {
    int64_t Addr;
    int64_t Size;
    int64_t RefCount;
    int64_t LastUse;
  };

  std::unordered_map<int64_t, Entry> Entries;
  int64_t TotalBytes = 0;
  int64_t NextAddr = 0x10000;
};

} // namespace relc

#endif // RELC_BASELINES_THTTPDBASELINE_H
