//===- baselines/GraphBaseline.cpp - Hand-coded edge relation ----------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "baselines/GraphBaseline.h"

#include <algorithm>

using namespace relc;

bool GraphBaseline::addEdge(int64_t Src, int64_t Dst, int64_t Weight) {
  auto &Out = Fwd[Src];
  for (const auto &[N, W] : Out)
    if (N == Dst)
      return false;
  Out.emplace_back(Dst, Weight);
  Bwd[Dst].emplace_back(Src, Weight);
  ++Count;
  return true;
}

static bool eraseFrom(std::vector<std::pair<int64_t, int64_t>> &List,
                      int64_t Node) {
  for (auto &Entry : List) {
    if (Entry.first != Node)
      continue;
    Entry = List.back();
    List.pop_back();
    return true;
  }
  return false;
}

bool GraphBaseline::removeEdge(int64_t Src, int64_t Dst) {
  auto It = Fwd.find(Src);
  if (It == Fwd.end() || !eraseFrom(It->second, Dst))
    return false;
  if (It->second.empty())
    Fwd.erase(It);
  auto Bt = Bwd.find(Dst);
  if (Bt != Bwd.end()) {
    eraseFrom(Bt->second, Src);
    if (Bt->second.empty())
      Bwd.erase(Bt);
  }
  --Count;
  return true;
}

int64_t GraphBaseline::weightOf(int64_t Src, int64_t Dst) const {
  auto It = Fwd.find(Src);
  if (It == Fwd.end())
    return -1;
  for (const auto &[N, W] : It->second)
    if (N == Dst)
      return W;
  return -1;
}

const std::vector<std::pair<int64_t, int64_t>> *
GraphBaseline::successors(int64_t Src) const {
  auto It = Fwd.find(Src);
  return It == Fwd.end() ? nullptr : &It->second;
}

const std::vector<std::pair<int64_t, int64_t>> *
GraphBaseline::predecessors(int64_t Dst) const {
  auto It = Bwd.find(Dst);
  return It == Bwd.end() ? nullptr : &It->second;
}
