//===- baselines/ThttpdBaseline.cpp - Hand-coded mmap cache ------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "baselines/ThttpdBaseline.h"

using namespace relc;

int64_t ThttpdBaseline::mapFile(int64_t FileId, int64_t Size, int64_t Now) {
  auto [It, Fresh] = Entries.try_emplace(FileId);
  Entry &E = It->second;
  if (Fresh) {
    E.Addr = NextAddr;
    NextAddr += Size;
    E.Size = Size;
    E.RefCount = 0;
    TotalBytes += Size;
  }
  ++E.RefCount;
  E.LastUse = Now;
  return E.Addr;
}

void ThttpdBaseline::unmapFile(int64_t FileId, int64_t Now) {
  auto It = Entries.find(FileId);
  if (It == Entries.end())
    return;
  if (It->second.RefCount > 0)
    --It->second.RefCount;
  It->second.LastUse = Now;
}

size_t ThttpdBaseline::cleanup(int64_t Now, int64_t TtlSeconds) {
  size_t Evicted = 0;
  for (auto It = Entries.begin(); It != Entries.end();) {
    const Entry &E = It->second;
    if (E.RefCount == 0 && Now - E.LastUse > TtlSeconds) {
      TotalBytes -= E.Size;
      It = Entries.erase(It);
      ++Evicted;
    } else {
      ++It;
    }
  }
  return Evicted;
}
