//===- baselines/IpcapBaseline.h - Hand-coded flow accounting ---*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-coded IpCap flow table (Section 6.2): per (local, remote) flow
/// the byte/packet counters, stored — like the paper's best autotuned
/// decomposition — as an ordered map of local hosts to hash tables of
/// remote hosts. Periodic flushes iterate everything and clear.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_BASELINES_IPCAPBASELINE_H
#define RELC_BASELINES_IPCAPBASELINE_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace relc {

struct FlowStats {
  int64_t BytesIn = 0;
  int64_t BytesOut = 0;
  int64_t Packets = 0;
};

struct FlowRecord {
  int64_t LocalHost;
  int64_t RemoteHost;
  FlowStats Stats;
};

class IpcapBaseline {
public:
  /// Accounts one packet (creating the flow on first sight).
  void accountPacket(int64_t Local, int64_t Remote, int64_t Bytes,
                     bool Outgoing);

  /// \returns the stats or nullptr if the flow is unknown.
  const FlowStats *flowOf(int64_t Local, int64_t Remote) const;

  /// Drains all flows (the periodic log-to-disk pass): returns every
  /// record and clears the table.
  std::vector<FlowRecord> flush();

  size_t numFlows() const { return Count; }

private:
  std::map<int64_t, std::unordered_map<int64_t, FlowStats>> Flows;
  size_t Count = 0;
};

} // namespace relc

#endif // RELC_BASELINES_IPCAPBASELINE_H
