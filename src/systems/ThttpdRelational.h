//===- systems/ThttpdRelational.h - Synthesized mmap cache ------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// thttpd's mmc cache as a relation (Section 6.2):
/// 〈file, addr, size, refcount, last_use〉 with file → the rest.
/// Lookup by file id is the hot path; the cleanup pass scans
/// everything (the paper's module walks the mappings removing stale
/// ones).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SYSTEMS_THTTPDRELATIONAL_H
#define RELC_SYSTEMS_THTTPDRELATIONAL_H

#include <cstddef>
#include "runtime/SynthesizedRelation.h"

namespace relc {

class ThttpdRelational {
public:
  static RelSpecRef makeSpec();
  static Decomposition makeDefaultDecomposition(const RelSpecRef &Spec);

  ThttpdRelational();
  explicit ThttpdRelational(Decomposition D);

  int64_t mapFile(int64_t FileId, int64_t Size, int64_t Now);
  void unmapFile(int64_t FileId, int64_t Now);
  size_t cleanup(int64_t Now, int64_t TtlSeconds);

  size_t numMapped() const { return Rel.size(); }
  int64_t mappedBytes() const { return TotalBytes; }

  const SynthesizedRelation &relation() const { return Rel; }

private:
  SynthesizedRelation Rel;
  ColumnId ColFile, ColAddr, ColSize, ColRef, ColLastUse;
  int64_t TotalBytes = 0;
  int64_t NextAddr = 0x10000;
};

} // namespace relc

#endif // RELC_SYSTEMS_THTTPDRELATIONAL_H
