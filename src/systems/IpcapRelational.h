//===- systems/IpcapRelational.h - Synthesized flow accounting --*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IpCap's packet statistics as a relation (Section 6.2):
/// 〈local, remote, bytes_in, bytes_out, packets〉 with
/// local,remote → bytes_in,bytes_out,packets. The default decomposition
/// is the autotuner's winner from Fig. 13 — an ordered map of local
/// hosts over hash tables of remote hosts; the constructor accepts any
/// adequate alternative (that is what bench_fig13_ipcap sweeps).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SYSTEMS_IPCAPRELATIONAL_H
#define RELC_SYSTEMS_IPCAPRELATIONAL_H

#include <cstddef>
#include "baselines/IpcapBaseline.h" // for FlowRecord/FlowStats
#include "runtime/SynthesizedRelation.h"

namespace relc {

class IpcapRelational {
public:
  static RelSpecRef makeSpec();
  /// Fig. 13's best: btree(local) -> htable(remote) -> counters.
  static Decomposition makeDefaultDecomposition(const RelSpecRef &Spec);
  /// Fig. 13's rank-18 transposed variant (remote outer, local inner).
  static Decomposition makeTransposedDecomposition(const RelSpecRef &Spec);

  IpcapRelational();
  explicit IpcapRelational(Decomposition D);

  void accountPacket(int64_t Local, int64_t Remote, int64_t Bytes,
                     bool Outgoing);
  const FlowStats *flowOf(int64_t Local, int64_t Remote) const;
  std::vector<FlowRecord> flush();
  size_t numFlows() const { return Rel.size(); }

  const SynthesizedRelation &relation() const { return Rel; }

private:
  SynthesizedRelation Rel;
  ColumnId ColLocal, ColRemote, ColIn, ColOut, ColPackets;
  mutable FlowStats LastStats; // backing storage for flowOf
};

} // namespace relc

#endif // RELC_SYSTEMS_IPCAPRELATIONAL_H
