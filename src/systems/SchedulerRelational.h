//===- systems/SchedulerRelational.h - Synthesized scheduler ----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process scheduler of the paper's running example, written
/// against the relational interface: relation 〈ns, pid, state, cpu〉
/// with FD ns,pid → state,cpu, represented by the decomposition of
/// Fig. 2(a) (hash of namespaces over hash of pids, joined with a
/// per-state structure over shared per-process nodes). All the
/// overlapping-structure invariants SchedulerBaseline maintains by hand
/// hold here by construction (Theorem 5).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SYSTEMS_SCHEDULERRELATIONAL_H
#define RELC_SYSTEMS_SCHEDULERRELATIONAL_H

#include <cstddef>
#include "baselines/SchedulerBaseline.h" // for ProcState
#include "runtime/SynthesizedRelation.h"

#include <optional>

namespace relc {

class SchedulerRelational {
public:
  /// Uses the Fig. 2(a) decomposition by default; pass a parsed
  /// decomposition to experiment (see makeSpec / the autotune example).
  SchedulerRelational();
  explicit SchedulerRelational(Decomposition D);

  /// The relational specification 〈{ns,pid,state,cpu}, ns,pid→state,cpu〉.
  static RelSpecRef makeSpec();
  /// The decomposition of Fig. 2(a).
  static Decomposition makeDefaultDecomposition(const RelSpecRef &Spec);

  bool addProcess(int64_t Ns, int64_t Pid, ProcState State, int64_t Cpu);
  bool removeProcess(int64_t Ns, int64_t Pid);
  bool setState(int64_t Ns, int64_t Pid, ProcState State);
  bool chargeCpu(int64_t Ns, int64_t Pid, int64_t Delta);
  int64_t cpuOf(int64_t Ns, int64_t Pid) const;
  std::vector<std::pair<int64_t, int64_t>> processesIn(ProcState State) const;
  std::vector<int64_t> pidsInNamespace(int64_t Ns) const;
  size_t size() const { return Rel.size(); }

  const SynthesizedRelation &relation() const { return Rel; }

  /// The full tuple of one process, or nullopt if absent.
  std::optional<Tuple> lookup(int64_t Ns, int64_t Pid) const;

private:
  SynthesizedRelation Rel;
  ColumnId ColNs, ColPid, ColState, ColCpu;
};

} // namespace relc

#endif // RELC_SYSTEMS_SCHEDULERRELATIONAL_H
