//===- systems/IpcapRelational.cpp - Synthesized flow accounting -------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "systems/IpcapRelational.h"

#include "decomp/Builder.h"

using namespace relc;

RelSpecRef IpcapRelational::makeSpec() {
  return RelSpec::make(
      "flows", {"local", "remote", "bytes_in", "bytes_out", "packets"},
      {{"local, remote", "bytes_in, bytes_out, packets"}});
}

Decomposition
IpcapRelational::makeDefaultDecomposition(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "local, remote",
                       B.unit("bytes_in, bytes_out, packets"));
  NodeId Y = B.addNode("y", "local", B.map("remote", DsKind::HashTable, W));
  B.addNode("x", "", B.map("local", DsKind::Btree, Y));
  return B.build();
}

Decomposition
IpcapRelational::makeTransposedDecomposition(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "local, remote",
                       B.unit("bytes_in, bytes_out, packets"));
  NodeId Y = B.addNode("y", "remote", B.map("local", DsKind::HashTable, W));
  B.addNode("x", "", B.map("remote", DsKind::Btree, Y));
  return B.build();
}

IpcapRelational::IpcapRelational()
    : IpcapRelational(makeDefaultDecomposition(makeSpec())) {}

IpcapRelational::IpcapRelational(Decomposition D) : Rel(std::move(D)) {
  const Catalog &Cat = Rel.catalog();
  ColLocal = Cat.get("local");
  ColRemote = Cat.get("remote");
  ColIn = Cat.get("bytes_in");
  ColOut = Cat.get("bytes_out");
  ColPackets = Cat.get("packets");
}

void IpcapRelational::accountPacket(int64_t Local, int64_t Remote,
                                    int64_t Bytes, bool Outgoing) {
  Tuple Pattern;
  Pattern.set(ColLocal, Value::ofInt(Local));
  Pattern.set(ColRemote, Value::ofInt(Remote));

  const FlowStats *Existing = flowOf(Local, Remote);
  if (!Existing) {
    Tuple T = Pattern;
    T.set(ColIn, Value::ofInt(Outgoing ? 0 : Bytes));
    T.set(ColOut, Value::ofInt(Outgoing ? Bytes : 0));
    T.set(ColPackets, Value::ofInt(1));
    Rel.insert(T);
    return;
  }
  Tuple Changes;
  Changes.set(ColIn, Value::ofInt(Existing->BytesIn + (Outgoing ? 0 : Bytes)));
  Changes.set(ColOut,
              Value::ofInt(Existing->BytesOut + (Outgoing ? Bytes : 0)));
  Changes.set(ColPackets, Value::ofInt(Existing->Packets + 1));
  Rel.update(Pattern, Changes);
}

const FlowStats *IpcapRelational::flowOf(int64_t Local,
                                         int64_t Remote) const {
  Tuple Pattern;
  Pattern.set(ColLocal, Value::ofInt(Local));
  Pattern.set(ColRemote, Value::ofInt(Remote));
  bool Found = false;
  Rel.scan(Pattern, ColumnSet({ColIn, ColOut, ColPackets}),
           [&](const Tuple &T) {
             LastStats.BytesIn = T.get(ColIn).asInt();
             LastStats.BytesOut = T.get(ColOut).asInt();
             LastStats.Packets = T.get(ColPackets).asInt();
             Found = true;
             return false;
           });
  return Found ? &LastStats : nullptr;
}

std::vector<FlowRecord> IpcapRelational::flush() {
  std::vector<FlowRecord> Result;
  Result.reserve(Rel.size());
  Tuple Everything;
  Rel.scan(Everything, Rel.spec()->columns(), [&](const Tuple &T) {
    FlowRecord R;
    R.LocalHost = T.get(ColLocal).asInt();
    R.RemoteHost = T.get(ColRemote).asInt();
    R.Stats.BytesIn = T.get(ColIn).asInt();
    R.Stats.BytesOut = T.get(ColOut).asInt();
    R.Stats.Packets = T.get(ColPackets).asInt();
    Result.push_back(R);
    return true;
  });
  Rel.clear();
  return Result;
}
