//===- systems/ZtopoRelational.h - Synthesized tile cache -------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ZTopo's tile cache as a relation (Section 6.2):
/// 〈tile, state, size, stamp〉 with tile → state,size,stamp. The
/// decomposition mirrors the original structure — a hash table over
/// tiles joined with per-state intrusive lists — but the agreement
/// between the two views, which the original asserted dynamically, is
/// guaranteed by construction here (the paper notes those assertions
/// were simply deleted in the synthesized version). LRU recency is the
/// `stamp` column; eviction scans the state's list for the minimum.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SYSTEMS_ZTOPORELATIONAL_H
#define RELC_SYSTEMS_ZTOPORELATIONAL_H

#include <cstddef>
#include "baselines/ZtopoBaseline.h" // for TileState
#include "runtime/SynthesizedRelation.h"

namespace relc {

class ZtopoRelational {
public:
  static RelSpecRef makeSpec();
  static Decomposition makeDefaultDecomposition(const RelSpecRef &Spec);

  ZtopoRelational();
  explicit ZtopoRelational(Decomposition D);

  bool touchTile(int64_t TileId, TileState &StateOut);
  void addTile(int64_t TileId, TileState State, int64_t Size);
  bool setState(int64_t TileId, TileState State);
  std::vector<int64_t> evictToBudget(TileState State, int64_t Budget);

  size_t numTiles() const { return Rel.size(); }
  int64_t bytesIn(TileState State) const {
    return StateBytes[static_cast<int>(State)];
  }

  const SynthesizedRelation &relation() const { return Rel; }

private:
  SynthesizedRelation Rel;
  ColumnId ColTile, ColState, ColSize, ColStamp;
  int64_t StateBytes[3] = {0, 0, 0};
  int64_t Clock = 0;
};

} // namespace relc

#endif // RELC_SYSTEMS_ZTOPORELATIONAL_H
