//===- systems/GraphRelational.cpp - Synthesized edge relation ---------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "systems/GraphRelational.h"

#include "decomp/Builder.h"

#include <unordered_set>

using namespace relc;

RelSpecRef GraphRelational::makeSpec() {
  return RelSpec::make("edges", {"src", "dst", "weight"},
                       {{"src, dst", "weight"}});
}

Decomposition GraphRelational::makeForwardOnly(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId Z = B.addNode("z", "src, dst", B.unit("weight"));
  NodeId Y = B.addNode("y", "src", B.map("dst", DsKind::HashTable, Z));
  B.addNode("x", "", B.map("src", DsKind::HashTable, Y));
  return B.build();
}

Decomposition
GraphRelational::makeSharedBidirectional(const RelSpecRef &Spec) {
  // Fig. 12(5): both index paths share the weight node; the per-edge
  // containers are intrusive so removal through either path unlinks
  // the other in O(1)/O(log n) without extra lookups.
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "src, dst", B.unit("weight"));
  NodeId Y = B.addNode("y", "src", B.map("dst", DsKind::ITree, W));
  NodeId Z = B.addNode("z", "dst", B.map("src", DsKind::ITree, W));
  B.addNode("x", "",
            B.join(B.map("src", DsKind::HashTable, Y),
                   B.map("dst", DsKind::HashTable, Z)));
  return B.build();
}

Decomposition
GraphRelational::makeUnsharedBidirectional(const RelSpecRef &Spec) {
  // Fig. 12(9): same shape, but each path has its own weight leaf.
  DecompBuilder B(Spec);
  NodeId L = B.addNode("l", "src, dst", B.unit("weight"));
  NodeId R = B.addNode("r", "src, dst", B.unit("weight"));
  NodeId Y = B.addNode("y", "src", B.map("dst", DsKind::Btree, L));
  NodeId Z = B.addNode("z", "dst", B.map("src", DsKind::Btree, R));
  B.addNode("x", "",
            B.join(B.map("src", DsKind::HashTable, Y),
                   B.map("dst", DsKind::HashTable, Z)));
  return B.build();
}

GraphRelational::GraphRelational(Decomposition D) : Rel(std::move(D)) {
  const Catalog &Cat = Rel.catalog();
  ColSrc = Cat.get("src");
  ColDst = Cat.get("dst");
  ColWeight = Cat.get("weight");
}

bool GraphRelational::addEdge(int64_t Src, int64_t Dst, int64_t Weight) {
  Tuple Pattern;
  Pattern.set(ColSrc, Value::ofInt(Src));
  Pattern.set(ColDst, Value::ofInt(Dst));
  if (Rel.contains(Pattern))
    return false;
  Tuple T = Pattern;
  T.set(ColWeight, Value::ofInt(Weight));
  return Rel.insert(T);
}

bool GraphRelational::removeEdge(int64_t Src, int64_t Dst) {
  Tuple Pattern;
  Pattern.set(ColSrc, Value::ofInt(Src));
  Pattern.set(ColDst, Value::ofInt(Dst));
  return Rel.remove(Pattern) > 0;
}

int64_t GraphRelational::weightOf(int64_t Src, int64_t Dst) const {
  Tuple Pattern;
  Pattern.set(ColSrc, Value::ofInt(Src));
  Pattern.set(ColDst, Value::ofInt(Dst));
  int64_t Result = -1;
  Rel.scan(Pattern, ColumnSet({ColWeight}), [&](const Tuple &T) {
    Result = T.get(ColWeight).asInt();
    return false;
  });
  return Result;
}

void GraphRelational::forEachSuccessor(
    int64_t Src, function_ref<bool(int64_t, int64_t)> Fn) const {
  Tuple Pattern;
  Pattern.set(ColSrc, Value::ofInt(Src));
  Rel.scan(Pattern, ColumnSet({ColDst, ColWeight}), [&](const Tuple &T) {
    return Fn(T.get(ColDst).asInt(), T.get(ColWeight).asInt());
  });
}

void GraphRelational::forEachPredecessor(
    int64_t Dst, function_ref<bool(int64_t, int64_t)> Fn) const {
  Tuple Pattern;
  Pattern.set(ColDst, Value::ofInt(Dst));
  Rel.scan(Pattern, ColumnSet({ColSrc, ColWeight}), [&](const Tuple &T) {
    return Fn(T.get(ColSrc).asInt(), T.get(ColWeight).asInt());
  });
}

size_t GraphRelational::depthFirstSearch(int64_t Start,
                                         bool Backward) const {
  // The visited set is the paper's nodes relation; a flat set is the
  // same structure the generated code would pick for a single-column
  // relation keyed by id.
  std::unordered_set<int64_t> Visited;
  std::vector<int64_t> Stack = {Start};
  while (!Stack.empty()) {
    int64_t V = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(V).second)
      continue;
    auto Push = [&](int64_t Next, int64_t) {
      Stack.push_back(Next);
      return true;
    };
    if (Backward)
      forEachPredecessor(V, Push);
    else
      forEachSuccessor(V, Push);
  }
  return Visited.size();
}
