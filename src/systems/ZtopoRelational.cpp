//===- systems/ZtopoRelational.cpp - Synthesized tile cache ------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "systems/ZtopoRelational.h"

#include "decomp/Builder.h"

#include <limits>

using namespace relc;

RelSpecRef ZtopoRelational::makeSpec() {
  return RelSpec::make("tiles", {"tile", "state", "size", "stamp"},
                       {{"tile", "state, size, stamp"}});
}

Decomposition
ZtopoRelational::makeDefaultDecomposition(const RelSpecRef &Spec) {
  // Hash over tiles joined with per-state intrusive lists over shared
  // per-tile nodes — the original's hash-table-plus-state-lists layout.
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "tile, state", B.unit("size, stamp"));
  NodeId Y = B.addNode("y", "tile", B.map("state", DsKind::DList, W));
  NodeId Z = B.addNode("z", "state", B.map("tile", DsKind::IList, W));
  B.addNode("x", "",
            B.join(B.map("tile", DsKind::HashTable, Y),
                   B.map("state", DsKind::Vector, Z)));
  return B.build();
}

ZtopoRelational::ZtopoRelational()
    : ZtopoRelational(makeDefaultDecomposition(makeSpec())) {}

ZtopoRelational::ZtopoRelational(Decomposition D) : Rel(std::move(D)) {
  const Catalog &Cat = Rel.catalog();
  ColTile = Cat.get("tile");
  ColState = Cat.get("state");
  ColSize = Cat.get("size");
  ColStamp = Cat.get("stamp");
}

bool ZtopoRelational::touchTile(int64_t TileId, TileState &StateOut) {
  Tuple Pattern;
  Pattern.set(ColTile, Value::ofInt(TileId));
  bool Found = false;
  Rel.scan(Pattern, ColumnSet({ColState}), [&](const Tuple &T) {
    StateOut = static_cast<TileState>(T.get(ColState).asInt());
    Found = true;
    return false;
  });
  if (!Found)
    return false;
  Tuple Changes;
  Changes.set(ColStamp, Value::ofInt(++Clock));
  Rel.update(Pattern, Changes);
  return true;
}

void ZtopoRelational::addTile(int64_t TileId, TileState State,
                              int64_t Size) {
  Tuple T;
  T.set(ColTile, Value::ofInt(TileId));
  T.set(ColState, Value::ofInt(static_cast<int64_t>(State)));
  T.set(ColSize, Value::ofInt(Size));
  T.set(ColStamp, Value::ofInt(++Clock));
  if (Rel.insert(T))
    StateBytes[static_cast<int>(State)] += Size;
}

bool ZtopoRelational::setState(int64_t TileId, TileState State) {
  Tuple Pattern;
  Pattern.set(ColTile, Value::ofInt(TileId));
  TileState Old;
  int64_t Size = -1;
  Rel.scan(Pattern, ColumnSet({ColState, ColSize}), [&](const Tuple &T) {
    Old = static_cast<TileState>(T.get(ColState).asInt());
    Size = T.get(ColSize).asInt();
    return false;
  });
  if (Size < 0)
    return false;
  if (Old == State)
    return true;
  Tuple Changes;
  Changes.set(ColState, Value::ofInt(static_cast<int64_t>(State)));
  Rel.update(Pattern, Changes);
  StateBytes[static_cast<int>(Old)] -= Size;
  StateBytes[static_cast<int>(State)] += Size;
  return true;
}

std::vector<int64_t> ZtopoRelational::evictToBudget(TileState State,
                                                    int64_t Budget) {
  std::vector<int64_t> Evicted;
  int S = static_cast<int>(State);
  while (StateBytes[S] > Budget) {
    // Scan this state's list for the least-recently-stamped tile.
    Tuple Pattern;
    Pattern.set(ColState, Value::ofInt(static_cast<int64_t>(State)));
    int64_t BestTile = -1;
    int64_t BestStamp = std::numeric_limits<int64_t>::max();
    int64_t BestSize = 0;
    Rel.scan(Pattern, ColumnSet({ColTile, ColSize, ColStamp}),
             [&](const Tuple &T) {
               int64_t Stamp = T.get(ColStamp).asInt();
               if (Stamp < BestStamp) {
                 BestStamp = Stamp;
                 BestTile = T.get(ColTile).asInt();
                 BestSize = T.get(ColSize).asInt();
               }
               return true;
             });
    if (BestTile < 0)
      break;
    Tuple Key;
    Key.set(ColTile, Value::ofInt(BestTile));
    Rel.remove(Key);
    StateBytes[S] -= BestSize;
    Evicted.push_back(BestTile);
  }
  return Evicted;
}
