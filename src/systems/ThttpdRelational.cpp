//===- systems/ThttpdRelational.cpp - Synthesized mmap cache -----------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "systems/ThttpdRelational.h"

#include "decomp/Builder.h"

using namespace relc;

RelSpecRef ThttpdRelational::makeSpec() {
  return RelSpec::make(
      "mmc", {"file", "addr", "size", "refcount", "last_use"},
      {{"file", "addr, size, refcount, last_use"}});
}

Decomposition
ThttpdRelational::makeDefaultDecomposition(const RelSpecRef &Spec) {
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "file",
                       B.unit("addr, size, refcount, last_use"));
  B.addNode("x", "", B.map("file", DsKind::HashTable, W));
  return B.build();
}

ThttpdRelational::ThttpdRelational()
    : ThttpdRelational(makeDefaultDecomposition(makeSpec())) {}

ThttpdRelational::ThttpdRelational(Decomposition D) : Rel(std::move(D)) {
  const Catalog &Cat = Rel.catalog();
  ColFile = Cat.get("file");
  ColAddr = Cat.get("addr");
  ColSize = Cat.get("size");
  ColRef = Cat.get("refcount");
  ColLastUse = Cat.get("last_use");
}

int64_t ThttpdRelational::mapFile(int64_t FileId, int64_t Size,
                                  int64_t Now) {
  Tuple Pattern;
  Pattern.set(ColFile, Value::ofInt(FileId));

  int64_t Addr = -1;
  int64_t Ref = 0;
  bool Found = false;
  Rel.scan(Pattern, ColumnSet({ColAddr, ColRef}), [&](const Tuple &T) {
    Addr = T.get(ColAddr).asInt();
    Ref = T.get(ColRef).asInt();
    Found = true;
    return false;
  });

  if (!Found) {
    Addr = NextAddr;
    NextAddr += Size;
    Tuple T = Pattern;
    T.set(ColAddr, Value::ofInt(Addr));
    T.set(ColSize, Value::ofInt(Size));
    T.set(ColRef, Value::ofInt(1));
    T.set(ColLastUse, Value::ofInt(Now));
    Rel.insert(T);
    TotalBytes += Size;
    return Addr;
  }
  Tuple Changes;
  Changes.set(ColRef, Value::ofInt(Ref + 1));
  Changes.set(ColLastUse, Value::ofInt(Now));
  Rel.update(Pattern, Changes);
  return Addr;
}

void ThttpdRelational::unmapFile(int64_t FileId, int64_t Now) {
  Tuple Pattern;
  Pattern.set(ColFile, Value::ofInt(FileId));
  int64_t Ref = -1;
  Rel.scan(Pattern, ColumnSet({ColRef}), [&](const Tuple &T) {
    Ref = T.get(ColRef).asInt();
    return false;
  });
  if (Ref < 0)
    return;
  Tuple Changes;
  Changes.set(ColRef, Value::ofInt(Ref > 0 ? Ref - 1 : 0));
  Changes.set(ColLastUse, Value::ofInt(Now));
  Rel.update(Pattern, Changes);
}

size_t ThttpdRelational::cleanup(int64_t Now, int64_t TtlSeconds) {
  // Scan for stale mappings, then remove them by key.
  std::vector<std::pair<int64_t, int64_t>> Stale; // (file, size)
  Tuple Everything;
  Rel.scan(Everything, ColumnSet({ColFile, ColSize, ColRef, ColLastUse}),
           [&](const Tuple &T) {
             if (T.get(ColRef).asInt() == 0 &&
                 Now - T.get(ColLastUse).asInt() > TtlSeconds)
               Stale.emplace_back(T.get(ColFile).asInt(),
                                  T.get(ColSize).asInt());
             return true;
           });
  for (auto [File, Size] : Stale) {
    Tuple Pattern;
    Pattern.set(ColFile, Value::ofInt(File));
    Rel.remove(Pattern);
    TotalBytes -= Size;
  }
  return Stale.size();
}
