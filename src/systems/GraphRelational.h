//===- systems/GraphRelational.h - Synthesized edge relation ----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The graph benchmark's edge relation (Section 6.1): columns
/// {src, dst, weight} with FD src,dst → weight, plus the single-column
/// nodes relation used as the DFS visited set. The decomposition is a
/// constructor parameter — this is the client the autotuner runs for
/// Fig. 11, and Fig. 12's decompositions 1/5/9 are provided as named
/// constructors.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_SYSTEMS_GRAPHRELATIONAL_H
#define RELC_SYSTEMS_GRAPHRELATIONAL_H

#include <cstddef>
#include "runtime/SynthesizedRelation.h"

#include <vector>

namespace relc {

class GraphRelational {
public:
  /// edges(src, dst, weight) with src,dst → weight.
  static RelSpecRef makeSpec();

  /// Fig. 12 decomposition 1: src → (dst → unit{weight}); fast forward
  /// traversal, quadratic backward.
  static Decomposition makeForwardOnly(const RelSpecRef &Spec);
  /// Fig. 12 decomposition 5: forward and backward indexes sharing the
  /// weight node (intrusive containers).
  static Decomposition makeSharedBidirectional(const RelSpecRef &Spec);
  /// Fig. 12 decomposition 9: forward and backward indexes with
  /// duplicated weight leaves (no sharing).
  static Decomposition makeUnsharedBidirectional(const RelSpecRef &Spec);

  explicit GraphRelational(Decomposition D);

  bool addEdge(int64_t Src, int64_t Dst, int64_t Weight);
  bool removeEdge(int64_t Src, int64_t Dst);
  int64_t weightOf(int64_t Src, int64_t Dst) const;

  /// Calls \p Fn(dst, weight) per outgoing edge of \p Src.
  void forEachSuccessor(int64_t Src,
                        function_ref<bool(int64_t, int64_t)> Fn) const;
  /// Calls \p Fn(src, weight) per incoming edge of \p Dst.
  void forEachPredecessor(int64_t Dst,
                          function_ref<bool(int64_t, int64_t)> Fn) const;

  /// Depth-first search from \p Start following edges forward
  /// (Backward=false) or backward; returns number of nodes visited.
  /// This is the client loop printed in Section 6.1.
  size_t depthFirstSearch(int64_t Start, bool Backward) const;

  size_t numEdges() const { return Rel.size(); }
  const SynthesizedRelation &relation() const { return Rel; }

private:
  SynthesizedRelation Rel;
  ColumnId ColSrc, ColDst, ColWeight;
};

} // namespace relc

#endif // RELC_SYSTEMS_GRAPHRELATIONAL_H
