//===- systems/SchedulerRelational.cpp - Synthesized scheduler ---------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "systems/SchedulerRelational.h"

#include "decomp/Builder.h"

using namespace relc;

RelSpecRef SchedulerRelational::makeSpec() {
  return RelSpec::make("scheduler", {"ns", "pid", "state", "cpu"},
                       {{"ns, pid", "state, cpu"}});
}

Decomposition
SchedulerRelational::makeDefaultDecomposition(const RelSpecRef &Spec) {
  // Fig. 2(a): x -ns(htable)-> y -pid(htable)-> w{cpu}
  //            x -state(vector)-> z -ns,pid(ilist)-> w   (w shared)
  DecompBuilder B(Spec);
  NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
  NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
  NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::IList, W));
  B.addNode("x", "",
            B.join(B.map("ns", DsKind::HashTable, Y),
                   B.map("state", DsKind::Vector, Z)));
  return B.build();
}

SchedulerRelational::SchedulerRelational()
    : SchedulerRelational(makeDefaultDecomposition(makeSpec())) {}

SchedulerRelational::SchedulerRelational(Decomposition D)
    : Rel(std::move(D)) {
  const Catalog &Cat = Rel.catalog();
  ColNs = Cat.get("ns");
  ColPid = Cat.get("pid");
  ColState = Cat.get("state");
  ColCpu = Cat.get("cpu");
}

std::optional<Tuple> SchedulerRelational::lookup(int64_t Ns,
                                                 int64_t Pid) const {
  Tuple Pattern;
  Pattern.set(ColNs, Value::ofInt(Ns));
  Pattern.set(ColPid, Value::ofInt(Pid));
  std::vector<Tuple> Rows =
      Rel.query(Pattern, ColumnSet({ColState, ColCpu}));
  if (Rows.empty())
    return std::nullopt;
  return Rows.front();
}

bool SchedulerRelational::addProcess(int64_t Ns, int64_t Pid,
                                     ProcState State, int64_t Cpu) {
  if (lookup(Ns, Pid))
    return false;
  Tuple T;
  T.set(ColNs, Value::ofInt(Ns));
  T.set(ColPid, Value::ofInt(Pid));
  T.set(ColState, Value::ofInt(static_cast<int64_t>(State)));
  T.set(ColCpu, Value::ofInt(Cpu));
  return Rel.insert(T);
}

bool SchedulerRelational::removeProcess(int64_t Ns, int64_t Pid) {
  Tuple Pattern;
  Pattern.set(ColNs, Value::ofInt(Ns));
  Pattern.set(ColPid, Value::ofInt(Pid));
  return Rel.remove(Pattern) > 0;
}

bool SchedulerRelational::setState(int64_t Ns, int64_t Pid,
                                   ProcState State) {
  Tuple Pattern;
  Pattern.set(ColNs, Value::ofInt(Ns));
  Pattern.set(ColPid, Value::ofInt(Pid));
  Tuple Changes;
  Changes.set(ColState, Value::ofInt(static_cast<int64_t>(State)));
  return Rel.update(Pattern, Changes) > 0;
}

bool SchedulerRelational::chargeCpu(int64_t Ns, int64_t Pid, int64_t Delta) {
  std::optional<Tuple> Row = lookup(Ns, Pid);
  if (!Row)
    return false;
  Tuple Pattern;
  Pattern.set(ColNs, Value::ofInt(Ns));
  Pattern.set(ColPid, Value::ofInt(Pid));
  Tuple Changes;
  Changes.set(ColCpu,
              Value::ofInt(Row->get(ColCpu).asInt() + Delta));
  return Rel.update(Pattern, Changes) > 0;
}

int64_t SchedulerRelational::cpuOf(int64_t Ns, int64_t Pid) const {
  std::optional<Tuple> Row = lookup(Ns, Pid);
  return Row ? Row->get(ColCpu).asInt() : -1;
}

std::vector<std::pair<int64_t, int64_t>>
SchedulerRelational::processesIn(ProcState State) const {
  Tuple Pattern;
  Pattern.set(ColState, Value::ofInt(static_cast<int64_t>(State)));
  std::vector<std::pair<int64_t, int64_t>> Result;
  Rel.scan(Pattern, ColumnSet({ColNs, ColPid}), [&](const Tuple &T) {
    Result.emplace_back(T.get(ColNs).asInt(), T.get(ColPid).asInt());
    return true;
  });
  return Result;
}

std::vector<int64_t>
SchedulerRelational::pidsInNamespace(int64_t Ns) const {
  Tuple Pattern;
  Pattern.set(ColNs, Value::ofInt(Ns));
  std::vector<int64_t> Result;
  Rel.scan(Pattern, ColumnSet({ColPid}), [&](const Tuple &T) {
    Result.push_back(T.get(ColPid).asInt());
    return true;
  });
  return Result;
}
