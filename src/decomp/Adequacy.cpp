//===- decomp/Adequacy.cpp - Adequacy judgment ------------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "decomp/Adequacy.h"

#include <cassert>

using namespace relc;

namespace {

/// Walks one node's primitive expression, implementing the premises of
/// (AUNIT), (AMAP) and (AJOIN). \p A is the node's bound column set
/// (the context of Fig. 6); \p Out receives the columns the primitive
/// represents.
class AdequacyChecker {
public:
  explicit AdequacyChecker(const Decomposition &D)
      : D(D), Fds(D.spec()->fds()), Cat(D.catalog()) {}

  AdequacyResult run() {
    const DecompNode &Root = D.node(D.root());
    // (AVAR): the judgment starts with the empty context, so the root
    // variable must be typed ∅ . C.
    if (!Root.Bound.empty())
      return AdequacyResult::failure(
          "(AVAR) root node '" + Root.Name + "' binds columns " +
          Cat.setToString(Root.Bound) + "; the root must bind none");

    // (ALET): check each binding's primitive under its declared context.
    for (NodeId Id = 0; Id != D.numNodes(); ++Id) {
      const DecompNode &N = D.node(Id);
      ColumnSet Represented;
      AdequacyResult R = checkPrim(N.Prim, N.Bound, N.Name, Represented);
      if (!R.Ok)
        return R;
      assert(Represented == N.Defines &&
             "builder-computed Defines disagrees with adequacy walk");
    }

    // Top level: the decomposition must represent all relation columns.
    ColumnSet All = D.spec()->columns();
    if (Root.Defines != All)
      return AdequacyResult::failure(
          "decomposition represents " + Cat.setToString(Root.Defines) +
          " but the relation has columns " + Cat.setToString(All));
    return AdequacyResult::success();
  }

private:
  AdequacyResult checkPrim(PrimId Id, ColumnSet A, const std::string &Where,
                           ColumnSet &Out) {
    const PrimNode &P = D.prim(Id);
    switch (P.Kind) {
    case PrimKind::Unit: {
      // (AUNIT): A ≠ ∅ and ∆ ⊢ A → C. A unit at the root would make the
      // empty relation unrepresentable.
      if (A.empty())
        return AdequacyResult::failure(
            "(AUNIT) unit " + Cat.setToString(P.Cols) + " in node '" +
            Where + "' occurs with no bound columns; the empty relation "
            "would be unrepresentable");
      if (!Fds.implies(A, P.Cols))
        return AdequacyResult::failure(
            "(AUNIT) in node '" + Where + "': bound columns " +
            Cat.setToString(A) + " do not determine unit columns " +
            Cat.setToString(P.Cols));
      Out = P.Cols;
      return AdequacyResult::success();
    }
    case PrimKind::Map: {
      // (AMAP): for target v:Av.Dv with context B=A and keys C=P.Cols,
      // require ∆ ⊢ B∪C → Av and Av ⊇ B∪C. Together these guarantee
      // that every path sharing v reaches the same sub-relation.
      const DecompNode &Target = D.node(P.Target);
      ColumnSet Reached = A.unionWith(P.Cols);
      if (!Fds.implies(Reached, Target.Bound))
        return AdequacyResult::failure(
            "(AMAP) in node '" + Where + "': path columns " +
            Cat.setToString(Reached) + " do not determine target '" +
            Target.Name + "' bound columns " +
            Cat.setToString(Target.Bound));
      if (!Reached.subsetOf(Target.Bound))
        return AdequacyResult::failure(
            "(AMAP) in node '" + Where + "': target '" + Target.Name +
            "' bound columns " + Cat.setToString(Target.Bound) +
            " must include the path columns " + Cat.setToString(Reached));
      Out = P.Cols.unionWith(Target.Defines);
      return AdequacyResult::success();
    }
    case PrimKind::Join: {
      ColumnSet B, C;
      AdequacyResult L = checkPrim(P.Left, A, Where, B);
      if (!L.Ok)
        return L;
      AdequacyResult R = checkPrim(P.Right, A, Where, C);
      if (!R.Ok)
        return R;
      // (AJOIN): ∆ ⊢ A ∪ (B∩C) → B⊖C, so the two sides can be matched
      // without missing or spurious tuples.
      ColumnSet Shared = A.unionWith(B.intersect(C));
      ColumnSet Diff = B.symmetricDifference(C);
      if (!Fds.implies(Shared, Diff))
        return AdequacyResult::failure(
            "(AJOIN) in node '" + Where + "': shared columns " +
            Cat.setToString(Shared) + " do not determine " +
            Cat.setToString(Diff) + "; the join could have dangling "
            "tuples");
      Out = B.unionWith(C);
      return AdequacyResult::success();
    }
    }
    assert(false && "unknown PrimKind");
    return AdequacyResult::failure("unknown primitive kind");
  }

  const Decomposition &D;
  const FuncDeps &Fds;
  const Catalog &Cat;
};

} // namespace

AdequacyResult relc::checkAdequacy(const Decomposition &D) {
  return AdequacyChecker(D).run();
}
