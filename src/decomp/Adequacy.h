//===- decomp/Adequacy.h - Adequacy judgment --------------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adequacy judgment Σ;A ⊢∆ d̂;B of Section 3.4 (Fig. 6): a
/// decomposition d̂ is adequate for relations with columns C satisfying
/// FDs ∆ iff ·;∅ ⊢∆ d̂;C. Adequate decompositions can represent *every*
/// relation over C satisfying ∆ (Lemma 1), and adequacy is a
/// precondition of every soundness result in the paper, so the runtime
/// refuses to instantiate inadequate decompositions.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_DECOMP_ADEQUACY_H
#define RELC_DECOMP_ADEQUACY_H

#include "decomp/Decomposition.h"

#include <string>

namespace relc {

/// Outcome of the adequacy check; on failure, Error pinpoints the rule
/// that was violated.
struct AdequacyResult {
  bool Ok = false;
  std::string Error;

  static AdequacyResult success() { return {true, ""}; }
  static AdequacyResult failure(std::string Msg) {
    return {false, std::move(Msg)};
  }
};

/// Decides ·;∅ ⊢∆ d̂;C for \p D against its specification's columns and
/// FDs, checking every rule of Fig. 6:
///  - (AVAR):  the root binds no columns and the decomposition
///             represents exactly the relation's columns;
///  - (AUNIT): units only occur below at least one bound column and
///             their contents are determined by the bound columns;
///  - (AMAP):  for every map edge into v:A.D with context B and keys C:
///             ∆ ⊢ B∪C → A and A ⊇ B∪C (the sharing conditions);
///  - (AJOIN): ∆ ⊢ A∪(B∩C) → B⊖C for every join.
AdequacyResult checkAdequacy(const Decomposition &D);

} // namespace relc

#endif // RELC_DECOMP_ADEQUACY_H
