//===- decomp/Decomposition.h - The decomposition language ------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decompositions per Section 3.1 (Fig. 3): a rooted DAG of let-bound
/// nodes describing how a relation is laid out in memory. Each node is
/// annotated with a pair of column sets B . C (columns bound on paths
/// from the root, and columns represented by the subgraph), and carries
/// a primitive expression whose leaves are units (single tuples) or map
/// edges (associative containers keyed by columns), with natural joins
/// above.
///
/// Nodes are stored in let order (a node is defined before any node
/// that references it), so reverse order is a parents-first topological
/// order. Primitives live in one index-based pool so decompositions are
/// cheap to copy — the autotuner copies and mutates them freely.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_DECOMP_DECOMPOSITION_H
#define RELC_DECOMP_DECOMPOSITION_H

#include "ds/DsKind.h"
#include "rel/RelSpec.h"

#include <limits>
#include <string>
#include <vector>

namespace relc {

using NodeId = unsigned;
using EdgeId = unsigned;
using PrimId = unsigned;

inline constexpr unsigned InvalidIndex = std::numeric_limits<unsigned>::max();

enum class PrimKind {
  Unit, ///< C — a single tuple with columns C.
  Map,  ///< C —ψ→ v — an associative container keyed by C.
  Join, ///< p1 ⋈ p2 — natural join of two sub-decompositions.
};

/// One vertex of a primitive expression tree. Which fields are
/// meaningful depends on Kind.
struct PrimNode {
  PrimKind Kind;

  /// Unit: the tuple's columns (may be empty for pure set membership).
  /// Map: the key columns (non-empty).
  ColumnSet Cols;

  /// Map: the backing data structure ψ.
  DsKind Ds = DsKind::HashTable;
  /// Map: the target decomposition node v.
  NodeId Target = InvalidIndex;
  /// Map: dense edge id (index into Decomposition::edges()).
  EdgeId Edge = InvalidIndex;

  /// Join: children in the primitive pool.
  PrimId Left = InvalidIndex;
  PrimId Right = InvalidIndex;
};

/// One let-bound node "let v : B . C = prim".
struct DecompNode {
  std::string Name;
  ColumnSet Bound;    ///< B: one instance exists per valuation of B.
  ColumnSet Defines;  ///< C: columns represented by the subgraph (computed).
  PrimId Prim;        ///< Root of the primitive expression.
  unsigned HookSlots = 0; ///< Number of incoming intrusive edges.
};

/// Derived, flattened view of one map edge for fast access by the
/// planner, mutators and instance layer.
struct MapEdge {
  NodeId From;
  NodeId To;
  ColumnSet KeyCols;
  DsKind Ds;
  PrimId Prim;            ///< The PrimNode this edge came from.
  unsigned OrdinalInFrom; ///< Index among From's outgoing edges.
  unsigned HookSlot;      ///< Slot in To's hooks if intrusive, else InvalidIndex.
};

/// An immutable decomposition for one relational specification.
/// Construct through DecompBuilder or parseDecomposition.
class Decomposition {
public:
  const RelSpecRef &spec() const { return Spec; }
  const Catalog &catalog() const { return Spec->catalog(); }

  NodeId root() const { return static_cast<NodeId>(Nodes.size() - 1); }

  unsigned numNodes() const { return static_cast<unsigned>(Nodes.size()); }
  const DecompNode &node(NodeId Id) const { return Nodes[Id]; }
  const std::vector<DecompNode> &nodes() const { return Nodes; }

  const PrimNode &prim(PrimId Id) const { return Prims[Id]; }

  unsigned numEdges() const { return static_cast<unsigned>(Edges.size()); }
  const MapEdge &edge(EdgeId Id) const { return Edges[Id]; }
  const std::vector<MapEdge> &edges() const { return Edges; }

  /// Edge ids leaving node \p Id, in ordinal order.
  const std::vector<EdgeId> &outgoing(NodeId Id) const {
    return Outgoing[Id];
  }
  /// Edge ids entering node \p Id.
  const std::vector<EdgeId> &incoming(NodeId Id) const {
    return Incoming[Id];
  }

  /// Unit PrimIds appearing in node \p Id's primitive, in tree order.
  const std::vector<PrimId> &unitsOf(NodeId Id) const { return Units[Id]; }

  /// Node ids parents-first (reverse let order, starting at the root).
  std::vector<NodeId> topoOrder() const;

  /// Allocation-free topological iteration: nodes are stored in let
  /// order, so parents-first is simply descending ids. The mutation
  /// hot paths iterate this instead of materializing topoOrder().
  class TopoRange {
  public:
    class iterator {
    public:
      explicit iterator(unsigned Next) : Next(Next) {}
      NodeId operator*() const { return static_cast<NodeId>(Next - 1); }
      iterator &operator++() {
        --Next;
        return *this;
      }
      bool operator!=(const iterator &O) const { return Next != O.Next; }

    private:
      unsigned Next; ///< One past the id to yield (counts down to 0).
    };

    explicit TopoRange(unsigned NumNodes) : NumNodes(NumNodes) {}
    iterator begin() const { return iterator(NumNodes); }
    iterator end() const { return iterator(0); }

  private:
    unsigned NumNodes;
  };

  TopoRange topo() const { return TopoRange(numNodes()); }

  /// Looks up a node by name.
  NodeId nodeByName(std::string_view Name) const;

  /// Structural identity ignoring node names (used by the autotuner to
  /// deduplicate enumerated decompositions). Includes data structures;
  /// pass IncludeDs=false to compare shapes only.
  std::string canonicalString(bool IncludeDs = true) const;

private:
  friend class DecompBuilder;

  RelSpecRef Spec;
  std::vector<DecompNode> Nodes;
  std::vector<PrimNode> Prims;
  std::vector<MapEdge> Edges;
  std::vector<std::vector<EdgeId>> Outgoing;
  std::vector<std::vector<EdgeId>> Incoming;
  std::vector<std::vector<PrimId>> Units;
};

} // namespace relc

#endif // RELC_DECOMP_DECOMPOSITION_H
