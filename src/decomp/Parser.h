//===- decomp/Parser.h - Decomposition text format --------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual let-notation for decompositions (the same format
/// printDecomposition emits):
///
///   # the scheduler decomposition of Fig. 2(a)
///   let w : {ns, pid, state} = unit {cpu}
///   let y : {ns} = map({pid}, htable, w)
///   let z : {state} = map({ns, pid}, dlist, w)
///   let x : {} = join(map({ns}, htable, y), map({state}, vector, z))
///
/// The last binding is the root. '#' starts a line comment.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_DECOMP_PARSER_H
#define RELC_DECOMP_PARSER_H

#include "decomp/Decomposition.h"

#include <optional>
#include <string>

namespace relc {

/// Result of a parse: either a decomposition or an error message with a
/// line number.
struct ParseResult {
  std::optional<Decomposition> Decomp;
  std::string Error;

  bool ok() const { return Decomp.has_value(); }
};

/// Parses \p Text against \p Spec. Never asserts on malformed input;
/// errors are reported in the result.
ParseResult parseDecomposition(const RelSpecRef &Spec, std::string_view Text);

} // namespace relc

#endif // RELC_DECOMP_PARSER_H
