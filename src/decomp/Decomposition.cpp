//===- decomp/Decomposition.cpp - The decomposition language ---------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "decomp/Decomposition.h"

#include <algorithm>
#include <cassert>

using namespace relc;

std::vector<NodeId> Decomposition::topoOrder() const {
  // Defined via topo() so the parents-first invariant has one source
  // of truth (see TopoRange).
  std::vector<NodeId> Order;
  Order.reserve(Nodes.size());
  for (NodeId Id : topo())
    Order.push_back(Id);
  return Order;
}

NodeId Decomposition::nodeByName(std::string_view Name) const {
  for (NodeId Id = 0; Id != numNodes(); ++Id)
    if (Nodes[Id].Name == Name)
      return Id;
  assert(false && "unknown decomposition node name");
  return InvalidIndex;
}

namespace {

/// Canonicalizer: renders a decomposition up to node naming, let order
/// and join nesting/operand order. Joins are associative and
/// commutative both semantically and physically (a node's storage is
/// its set of units and map containers, however the join tree groups
/// them), so a node's primitive is treated as a multiset of leaves.
/// Sharing is preserved through canonical node ids assigned by a DFS
/// that visits each node's leaves in sorted order.
class Canonicalizer {
public:
  Canonicalizer(const Decomposition &D, bool IncludeDs)
      : D(D), IncludeDs(IncludeDs), InlineKeys(D.numNodes()),
        Ids(D.numNodes(), InvalidIndex) {}

  std::string run() {
    assignIds(D.root());
    // Render in canonical-id order.
    std::vector<std::string> Rows(Order.size());
    for (NodeId Node : Order) {
      std::string Row = std::to_string(Ids[Node]) + ":b" +
                        std::to_string(D.node(Node).Bound.mask()) + "=";
      std::vector<std::string> Rendered;
      for (PrimId Leaf : sortedLeaves(Node))
        Rendered.push_back(renderLeaf(Leaf));
      std::sort(Rendered.begin(), Rendered.end());
      for (size_t I = 0; I != Rendered.size(); ++I)
        Row += (I ? "*" : "") + Rendered[I];
      Rows[Ids[Node]] = std::move(Row);
    }
    std::string Out;
    for (const std::string &Row : Rows) {
      Out += Row;
      Out += ";";
    }
    return Out;
  }

private:
  /// Structural key of a node with children fully inlined (ignores
  /// sharing; used only to order siblings deterministically).
  const std::string &inlineKey(NodeId Node) {
    std::string &Key = InlineKeys[Node];
    if (!Key.empty())
      return Key;
    std::vector<std::string> Parts;
    for (PrimId Leaf : leavesOf(Node)) {
      const PrimNode &P = D.prim(Leaf);
      if (P.Kind == PrimKind::Unit) {
        Parts.push_back("u" + std::to_string(P.Cols.mask()));
        continue;
      }
      std::string S = "m" + std::to_string(P.Cols.mask());
      if (IncludeDs)
        S += std::string("/") + dsKindName(P.Ds);
      S += "{" + inlineKey(P.Target) + "}";
      Parts.push_back(std::move(S));
    }
    std::sort(Parts.begin(), Parts.end());
    Key = "b" + std::to_string(D.node(Node).Bound.mask()) + ":";
    for (const std::string &S : Parts)
      Key += S;
    return Key;
  }

  /// Leaves (units and maps) of a node's join tree, in tree order.
  std::vector<PrimId> leavesOf(NodeId Node) {
    std::vector<PrimId> Leaves;
    collect(D.node(Node).Prim, Leaves);
    return Leaves;
  }

  void collect(PrimId P, std::vector<PrimId> &Leaves) {
    const PrimNode &Prim = D.prim(P);
    if (Prim.Kind == PrimKind::Join) {
      collect(Prim.Left, Leaves);
      collect(Prim.Right, Leaves);
      return;
    }
    Leaves.push_back(P);
  }

  /// Leaves ordered by their structural key (stable for ties).
  std::vector<PrimId> sortedLeaves(NodeId Node) {
    std::vector<PrimId> Leaves = leavesOf(Node);
    std::stable_sort(Leaves.begin(), Leaves.end(),
                     [&](PrimId A, PrimId B) {
                       return leafKey(A) < leafKey(B);
                     });
    return Leaves;
  }

  std::string leafKey(PrimId P) {
    const PrimNode &Prim = D.prim(P);
    if (Prim.Kind == PrimKind::Unit)
      return "u" + std::to_string(Prim.Cols.mask());
    std::string S = "m" + std::to_string(Prim.Cols.mask());
    if (IncludeDs)
      S += std::string("/") + dsKindName(Prim.Ds);
    return S + "{" + inlineKey(Prim.Target) + "}";
  }

  void assignIds(NodeId Node) {
    if (Ids[Node] != InvalidIndex)
      return;
    Ids[Node] = static_cast<NodeId>(Order.size());
    Order.push_back(Node);
    for (PrimId Leaf : sortedLeaves(Node)) {
      const PrimNode &P = D.prim(Leaf);
      if (P.Kind == PrimKind::Map)
        assignIds(P.Target);
    }
  }

  std::string renderLeaf(PrimId P) {
    const PrimNode &Prim = D.prim(P);
    if (Prim.Kind == PrimKind::Unit)
      return "u" + std::to_string(Prim.Cols.mask());
    std::string S = "m" + std::to_string(Prim.Cols.mask());
    if (IncludeDs)
      S += std::string("/") + dsKindName(Prim.Ds);
    return S + ">" + std::to_string(Ids[Prim.Target]);
  }

  const Decomposition &D;
  bool IncludeDs;
  std::vector<std::string> InlineKeys;
  std::vector<NodeId> Ids;
  std::vector<NodeId> Order;
};

} // namespace

std::string Decomposition::canonicalString(bool IncludeDs) const {
  return Canonicalizer(*this, IncludeDs).run();
}
