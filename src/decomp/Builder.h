//===- decomp/Builder.h - Programmatic decomposition construction -*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fluent construction of decompositions. The scheduler decomposition
/// of Fig. 2(a) is written:
///
///   DecompBuilder B(Spec);
///   NodeId W = B.addNode("w", "ns, pid, state", B.unit("cpu"));
///   NodeId Y = B.addNode("y", "ns", B.map("pid", DsKind::HashTable, W));
///   NodeId Z = B.addNode("z", "state", B.map("ns, pid", DsKind::DList, W));
///   B.addNode("x", "", B.join(B.map("ns", DsKind::HashTable, Y),
///                             B.map("state", DsKind::Vector, Z)));
///   Decomposition D = B.build();
///
/// The last node added is the root. build() performs structural
/// validation only; semantic validity is the Adequacy judgment.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_DECOMP_BUILDER_H
#define RELC_DECOMP_BUILDER_H

#include "decomp/Decomposition.h"

#include <memory>

namespace relc {

/// A value-type primitive expression under construction.
class PrimExpr {
public:
  PrimExpr() = default;
  bool valid() const { return Impl != nullptr; }

private:
  friend class DecompBuilder;

  struct Node {
    PrimKind Kind;
    ColumnSet Cols;
    DsKind Ds = DsKind::HashTable;
    NodeId Target = InvalidIndex;
    std::shared_ptr<const Node> Left, Right;
  };

  explicit PrimExpr(std::shared_ptr<const Node> Impl)
      : Impl(std::move(Impl)) {}

  std::shared_ptr<const Node> Impl;
};

/// Builds a Decomposition node by node, in let order.
class DecompBuilder {
public:
  explicit DecompBuilder(RelSpecRef Spec);

  /// A unit primitive with columns \p Cols (may be empty).
  PrimExpr unit(ColumnSet Cols) const;
  PrimExpr unit(std::string_view Cols) const;

  /// A map primitive keyed by \p Keys (non-empty) targeting \p Target,
  /// which must already have been added.
  PrimExpr map(ColumnSet Keys, DsKind Ds, NodeId Target) const;
  PrimExpr map(std::string_view Keys, DsKind Ds, NodeId Target) const;

  /// A join of two primitives.
  PrimExpr join(PrimExpr L, PrimExpr R) const;

  /// Adds "let Name : Bound = P". \returns the new node's id.
  NodeId addNode(std::string Name, ColumnSet Bound, PrimExpr P);
  NodeId addNode(std::string Name, std::string_view BoundCols, PrimExpr P);

  unsigned numNodes() const { return NextNode; }

  /// Finalizes the decomposition: flattens primitives, derives Defines,
  /// edges, ordinals, hook slots and adjacency. Asserts on structural
  /// errors (unused nodes, empty map keys, forward references).
  Decomposition build();

private:
  PrimId flattenPrim(Decomposition &D,
                     const std::shared_ptr<const PrimExpr::Node> &E,
                     NodeId From);
  ColumnSet definesOf(const Decomposition &D, PrimId P) const;

  RelSpecRef Spec;
  std::vector<std::pair<DecompNode, PrimExpr>> Pending;
  unsigned NextNode = 0;
};

} // namespace relc

#endif // RELC_DECOMP_BUILDER_H
