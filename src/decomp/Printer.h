//===- decomp/Printer.h - Decomposition rendering ---------------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders decompositions in the textual let-notation accepted by the
/// parser (round-trippable) and as Graphviz dot for figures like the
/// paper's Fig. 2(a) and Fig. 12.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_DECOMP_PRINTER_H
#define RELC_DECOMP_PRINTER_H

#include "decomp/Decomposition.h"

#include <string>

namespace relc {

/// Renders the let-notation, one binding per line:
///   let w : {ns, pid, state} = unit {cpu}
///   let y : {ns} = map({pid}, htable, w)
///   ...
std::string printDecomposition(const Decomposition &D);

/// Renders a Graphviz digraph. Solid edges are trees/hashes, dashed are
/// lists, dotted are vectors (matching the paper's figure conventions).
std::string printDecompositionDot(const Decomposition &D);

} // namespace relc

#endif // RELC_DECOMP_PRINTER_H
