//===- decomp/Builder.cpp - Programmatic decomposition construction --------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "decomp/Builder.h"

#include <cassert>

using namespace relc;

DecompBuilder::DecompBuilder(RelSpecRef Spec) : Spec(std::move(Spec)) {
  assert(this->Spec && "builder needs a relational specification");
}

PrimExpr DecompBuilder::unit(ColumnSet Cols) const {
  auto N = std::make_shared<PrimExpr::Node>();
  N->Kind = PrimKind::Unit;
  N->Cols = Cols;
  return PrimExpr(std::move(N));
}

PrimExpr DecompBuilder::unit(std::string_view Cols) const {
  return unit(Spec->catalog().parseSet(Cols));
}

PrimExpr DecompBuilder::map(ColumnSet Keys, DsKind Ds, NodeId Target) const {
  assert(!Keys.empty() && "map primitives need at least one key column");
  assert(Target < NextNode && "map target must be a previously added node");
  auto N = std::make_shared<PrimExpr::Node>();
  N->Kind = PrimKind::Map;
  N->Cols = Keys;
  N->Ds = Ds;
  N->Target = Target;
  return PrimExpr(std::move(N));
}

PrimExpr DecompBuilder::map(std::string_view Keys, DsKind Ds,
                            NodeId Target) const {
  return map(Spec->catalog().parseSet(Keys), Ds, Target);
}

PrimExpr DecompBuilder::join(PrimExpr L, PrimExpr R) const {
  assert(L.valid() && R.valid() && "join of invalid primitives");
  auto N = std::make_shared<PrimExpr::Node>();
  N->Kind = PrimKind::Join;
  N->Left = L.Impl;
  N->Right = R.Impl;
  return PrimExpr(std::move(N));
}

NodeId DecompBuilder::addNode(std::string Name, ColumnSet Bound, PrimExpr P) {
  assert(P.valid() && "node needs a primitive");
  DecompNode N;
  N.Name = std::move(Name);
  N.Bound = Bound;
  N.Prim = InvalidIndex;
  Pending.emplace_back(std::move(N), std::move(P));
  return NextNode++;
}

NodeId DecompBuilder::addNode(std::string Name, std::string_view BoundCols,
                              PrimExpr P) {
  return addNode(std::move(Name), Spec->catalog().parseSet(BoundCols),
                 std::move(P));
}

PrimId DecompBuilder::flattenPrim(
    Decomposition &D, const std::shared_ptr<const PrimExpr::Node> &E,
    NodeId From) {
  PrimNode P;
  P.Kind = E->Kind;
  switch (E->Kind) {
  case PrimKind::Unit:
    P.Cols = E->Cols;
    break;
  case PrimKind::Map: {
    P.Cols = E->Cols;
    P.Ds = E->Ds;
    P.Target = E->Target;
    P.Edge = static_cast<EdgeId>(D.Edges.size());
    MapEdge Edge;
    Edge.From = From;
    Edge.To = E->Target;
    Edge.KeyCols = E->Cols;
    Edge.Ds = E->Ds;
    Edge.Prim = InvalidIndex; // patched below once P is in the pool
    Edge.OrdinalInFrom = static_cast<unsigned>(D.Outgoing[From].size());
    if (dsSupportsEraseByNode(E->Ds))
      Edge.HookSlot = D.Nodes[E->Target].HookSlots++;
    else
      Edge.HookSlot = InvalidIndex;
    D.Edges.push_back(Edge);
    D.Outgoing[From].push_back(P.Edge);
    D.Incoming[E->Target].push_back(P.Edge);
    break;
  }
  case PrimKind::Join: {
    // Flatten children first so edge ordinals follow tree order.
    P.Left = flattenPrim(D, E->Left, From);
    P.Right = flattenPrim(D, E->Right, From);
    break;
  }
  }
  PrimId Id = static_cast<PrimId>(D.Prims.size());
  D.Prims.push_back(P);
  if (P.Kind == PrimKind::Map)
    D.Edges[P.Edge].Prim = Id;
  if (P.Kind == PrimKind::Unit)
    D.Units[From].push_back(Id);
  return Id;
}

ColumnSet DecompBuilder::definesOf(const Decomposition &D, PrimId Id) const {
  const PrimNode &P = D.prim(Id);
  switch (P.Kind) {
  case PrimKind::Unit:
    return P.Cols;
  case PrimKind::Map:
    return P.Cols.unionWith(D.node(P.Target).Defines);
  case PrimKind::Join:
    return definesOf(D, P.Left).unionWith(definesOf(D, P.Right));
  }
  assert(false && "unknown PrimKind");
  return ColumnSet();
}

Decomposition DecompBuilder::build() {
  assert(!Pending.empty() && "decomposition needs at least one node");
  Decomposition D;
  D.Spec = Spec;
  unsigned N = static_cast<unsigned>(Pending.size());
  D.Outgoing.resize(N);
  D.Incoming.resize(N);
  D.Units.resize(N);
  D.Nodes.reserve(N);

  for (NodeId Id = 0; Id != N; ++Id) {
    // Names must be unique.
    for (NodeId Prev = 0; Prev != Id; ++Prev) {
      assert(D.Nodes[Prev].Name != Pending[Id].first.Name &&
             "duplicate node name in decomposition");
      (void)Prev;
    }
    D.Nodes.push_back(Pending[Id].first);
    DecompNode &Node = D.Nodes.back();
    Node.Prim = flattenPrim(D, Pending[Id].second.Impl, Id);
    Node.Defines = definesOf(D, Node.Prim);
  }

  // Connectivity: every non-root node must be referenced.
  for (NodeId Id = 0; Id + 1 < N; ++Id) {
    assert(!D.Incoming[Id].empty() &&
           "unreferenced decomposition node (disconnected graph)");
    (void)Id;
  }
  return D;
}
