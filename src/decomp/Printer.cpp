//===- decomp/Printer.cpp - Decomposition rendering ------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "decomp/Printer.h"

#include <cassert>

using namespace relc;

namespace {
std::string renderPrim(const Decomposition &D, PrimId Id) {
  const Catalog &Cat = D.catalog();
  const PrimNode &P = D.prim(Id);
  switch (P.Kind) {
  case PrimKind::Unit:
    return "unit " + Cat.setToString(P.Cols);
  case PrimKind::Map:
    return "map(" + Cat.setToString(P.Cols) + ", " + dsKindName(P.Ds) +
           ", " + D.node(P.Target).Name + ")";
  case PrimKind::Join:
    return "join(" + renderPrim(D, P.Left) + ", " + renderPrim(D, P.Right) +
           ")";
  }
  assert(false && "unknown PrimKind");
  return "";
}
} // namespace

std::string relc::printDecomposition(const Decomposition &D) {
  const Catalog &Cat = D.catalog();
  std::string Out;
  for (NodeId Id = 0; Id != D.numNodes(); ++Id) {
    const DecompNode &N = D.node(Id);
    Out += "let " + N.Name + " : " + Cat.setToString(N.Bound) + " = " +
           renderPrim(D, N.Prim) + "\n";
  }
  return Out;
}

std::string relc::printDecompositionDot(const Decomposition &D) {
  const Catalog &Cat = D.catalog();
  std::string Out = "digraph decomposition {\n  rankdir=TB;\n";
  for (NodeId Id = 0; Id != D.numNodes(); ++Id) {
    const DecompNode &N = D.node(Id);
    std::string Label = N.Name;
    if (!D.unitsOf(Id).empty()) {
      Label += "\\n";
      for (PrimId U : D.unitsOf(Id))
        Label += Cat.setToString(D.prim(U).Cols);
    }
    Out += "  n" + std::to_string(Id) + " [label=\"" + Label + "\"];\n";
  }
  for (const MapEdge &E : D.edges()) {
    const char *Style = "solid";
    if (E.Ds == DsKind::DList || E.Ds == DsKind::IList)
      Style = "dashed";
    else if (E.Ds == DsKind::Vector)
      Style = "dotted";
    Out += "  n" + std::to_string(E.From) + " -> n" + std::to_string(E.To) +
           " [label=\"" + Cat.setToString(E.KeyCols) + " (" +
           dsKindName(E.Ds) + ")\", style=" + Style + "];\n";
  }
  Out += "}\n";
  return Out;
}
