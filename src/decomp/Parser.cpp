//===- decomp/Parser.cpp - Decomposition text format ------------------------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "decomp/Parser.h"

#include "decomp/Builder.h"

#include <cctype>
#include <map>

using namespace relc;

namespace {

enum class TokKind { Ident, LBrace, RBrace, LParen, RParen, Comma, Colon,
                     Equals, End };

struct Token {
  TokKind Kind;
  std::string Text;
  unsigned Line;
};

class Lexer {
public:
  Lexer(std::string_view Text) : Text(Text) {}

  Token next() {
    skipTrivia();
    if (Pos >= Text.size())
      return {TokKind::End, "", Line};
    char C = Text[Pos];
    switch (C) {
    case '{':
      ++Pos;
      return {TokKind::LBrace, "{", Line};
    case '}':
      ++Pos;
      return {TokKind::RBrace, "}", Line};
    case '(':
      ++Pos;
      return {TokKind::LParen, "(", Line};
    case ')':
      ++Pos;
      return {TokKind::RParen, ")", Line};
    case ',':
      ++Pos;
      return {TokKind::Comma, ",", Line};
    case ':':
      ++Pos;
      return {TokKind::Colon, ":", Line};
    case '=':
      ++Pos;
      return {TokKind::Equals, "=", Line};
    default:
      break;
    }
    if (std::isalnum(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '_'))
        ++Pos;
      return {TokKind::Ident, std::string(Text.substr(Start, Pos - Start)),
              Line};
    }
    // Unknown character: emit it as a bogus ident so the parser reports
    // a sensible error.
    ++Pos;
    return {TokKind::Ident, std::string(1, C), Line};
  }

private:
  void skipTrivia() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '#') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  std::string_view Text;
  size_t Pos = 0;
  unsigned Line = 1;
};

class Parser {
public:
  Parser(const RelSpecRef &Spec, std::string_view Text)
      : Spec(Spec), Builder(Spec), Lex(Text) {
    advance();
  }

  ParseResult run() {
    while (Tok.Kind != TokKind::End && Error.empty()) {
      if (!expectIdent("let"))
        break;
      parseBinding();
    }
    if (!Error.empty())
      return {std::nullopt, Error};
    if (Builder.numNodes() == 0)
      return {std::nullopt, "no bindings found"};
    // The builder asserts on disconnected graphs; report malformed user
    // input as a parse error instead.
    for (unsigned Id = 0; Id + 1 < Builder.numNodes(); ++Id)
      if (Id >= Referenced.size() || !Referenced[Id])
        return {std::nullopt, "node defined but never referenced (only the "
                              "last binding may be the root)"};
    return {Builder.build(), ""};
  }

private:
  void advance() { Tok = Lex.next(); }

  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = "line " + std::to_string(Tok.Line) + ": " + Msg;
  }

  bool expect(TokKind K, const char *What) {
    if (Tok.Kind != K) {
      fail(std::string("expected ") + What + ", got '" + Tok.Text + "'");
      return false;
    }
    advance();
    return true;
  }

  bool expectIdent(std::string_view Word) {
    if (Tok.Kind != TokKind::Ident || Tok.Text != Word) {
      fail("expected '" + std::string(Word) + "', got '" + Tok.Text + "'");
      return false;
    }
    advance();
    return true;
  }

  /// colset := "{" [ident ("," ident)*] "}"
  bool parseColumnSet(ColumnSet &Out) {
    if (!expect(TokKind::LBrace, "'{'"))
      return false;
    Out = ColumnSet();
    if (Tok.Kind == TokKind::RBrace) {
      advance();
      return true;
    }
    while (true) {
      if (Tok.Kind != TokKind::Ident) {
        fail("expected column name, got '" + Tok.Text + "'");
        return false;
      }
      std::optional<ColumnId> Id = Spec->catalog().find(Tok.Text);
      if (!Id) {
        fail("unknown column '" + Tok.Text + "'");
        return false;
      }
      Out.insert(*Id);
      advance();
      if (Tok.Kind == TokKind::Comma) {
        advance();
        continue;
      }
      return expect(TokKind::RBrace, "'}'");
    }
  }

  /// prim := "unit" colset
  ///       | "map" "(" colset "," dskind "," nodename ")"
  ///       | "join" "(" prim "," prim ")"
  PrimExpr parsePrim() {
    if (Tok.Kind != TokKind::Ident) {
      fail("expected primitive, got '" + Tok.Text + "'");
      return PrimExpr();
    }
    std::string Head = Tok.Text;
    advance();
    if (Head == "unit") {
      ColumnSet Cols;
      if (!parseColumnSet(Cols))
        return PrimExpr();
      return Builder.unit(Cols);
    }
    if (Head == "map") {
      if (!expect(TokKind::LParen, "'('"))
        return PrimExpr();
      ColumnSet Keys;
      if (!parseColumnSet(Keys))
        return PrimExpr();
      if (Keys.empty()) {
        fail("map key set must be non-empty");
        return PrimExpr();
      }
      if (!expect(TokKind::Comma, "','"))
        return PrimExpr();
      if (Tok.Kind != TokKind::Ident) {
        fail("expected data structure name, got '" + Tok.Text + "'");
        return PrimExpr();
      }
      std::optional<DsKind> Ds = parseDsKind(Tok.Text);
      if (!Ds) {
        fail("unknown data structure '" + Tok.Text + "'");
        return PrimExpr();
      }
      advance();
      if (!expect(TokKind::Comma, "','"))
        return PrimExpr();
      if (Tok.Kind != TokKind::Ident) {
        fail("expected node name, got '" + Tok.Text + "'");
        return PrimExpr();
      }
      auto It = NodesByName.find(Tok.Text);
      if (It == NodesByName.end()) {
        fail("reference to undefined node '" + Tok.Text + "'");
        return PrimExpr();
      }
      advance();
      if (!expect(TokKind::RParen, "')'"))
        return PrimExpr();
      if (Referenced.size() <= It->second)
        Referenced.resize(It->second + 1, false);
      Referenced[It->second] = true;
      return Builder.map(Keys, *Ds, It->second);
    }
    if (Head == "join") {
      if (!expect(TokKind::LParen, "'('"))
        return PrimExpr();
      PrimExpr L = parsePrim();
      if (!L.valid())
        return PrimExpr();
      if (!expect(TokKind::Comma, "','"))
        return PrimExpr();
      PrimExpr R = parsePrim();
      if (!R.valid())
        return PrimExpr();
      if (!expect(TokKind::RParen, "')'"))
        return PrimExpr();
      return Builder.join(L, R);
    }
    fail("expected 'unit', 'map' or 'join', got '" + Head + "'");
    return PrimExpr();
  }

  /// binding := "let" name ":" colset "=" prim   ("let" consumed by run)
  void parseBinding() {
    if (Tok.Kind != TokKind::Ident) {
      fail("expected node name, got '" + Tok.Text + "'");
      return;
    }
    std::string Name = Tok.Text;
    if (NodesByName.count(Name)) {
      fail("duplicate node name '" + Name + "'");
      return;
    }
    advance();
    if (!expect(TokKind::Colon, "':'"))
      return;
    ColumnSet Bound;
    if (!parseColumnSet(Bound))
      return;
    if (!expect(TokKind::Equals, "'='"))
      return;
    PrimExpr P = parsePrim();
    if (!P.valid())
      return;
    NodesByName[Name] = Builder.addNode(Name, Bound, std::move(P));
  }

  RelSpecRef Spec;
  DecompBuilder Builder;
  Lexer Lex;
  Token Tok;
  std::string Error;
  std::map<std::string, NodeId> NodesByName;
  std::vector<bool> Referenced;
};

} // namespace

ParseResult relc::parseDecomposition(const RelSpecRef &Spec,
                                     std::string_view Text) {
  return Parser(Spec, Text).run();
}
