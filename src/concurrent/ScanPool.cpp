//===- concurrent/ScanPool.cpp - Persistent scan worker pool --------------===//

#include "concurrent/ScanPool.h"

#include <cassert>

using namespace relc;

ScanPool::ScanPool(unsigned MaxWorkers) : Max(MaxWorkers) {
  if (Max == 0) {
    Max = std::thread::hardware_concurrency();
    if (Max == 0)
      Max = 4;
  }
}

ScanPool::~ScanPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  HasWork.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

ScanPool &ScanPool::global() {
  static ScanPool Pool;
  return Pool;
}

void ScanPool::submit(std::function<void()> Task) {
  bool Spawn = false;
  {
    std::lock_guard<std::mutex> Lock(M);
    assert(!Stopping && "submit() after shutdown");
    Tasks.push_back(std::move(Task));
    // Spawn only when no idle worker can pick this up: steady-state
    // scans reuse the existing threads.
    if (Idle == 0 && Workers.size() < Max) {
      Workers.emplace_back(); // slot first; thread start outside lock
      Spawn = true;
    }
  }
  if (Spawn) {
    std::thread T([this] { workerLoop(); });
    {
      std::lock_guard<std::mutex> Lock(M);
      // The slot reserved above is the last default-constructed one.
      for (std::thread &W : Workers)
        if (!W.joinable()) {
          W = std::move(T);
          break;
        }
    }
    Spawned.fetch_add(1, std::memory_order_acq_rel);
  }
  HasWork.notify_one();
}

void ScanPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(M);
  for (;;) {
    while (Tasks.empty() && !Stopping) {
      ++Idle;
      HasWork.wait(Lock);
      --Idle;
    }
    if (Tasks.empty() && Stopping)
      return;
    std::function<void()> Task = std::move(Tasks.front());
    Tasks.pop_front();
    Lock.unlock();
    Task();
    Lock.lock();
  }
}

void ScanPool::TaskGroup::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(M);
    ++Outstanding;
  }
  // Wrap so completion is signalled even if the task throws would be
  // nice, but tasks are noexcept by convention in this codebase (the
  // engine aborts on contract violations), so a plain wrapper does.
  Pool.submit([this, T = std::move(Task)]() mutable {
    T();
    finishOne();
  });
}

void ScanPool::TaskGroup::finishOne() {
  std::lock_guard<std::mutex> Lock(M);
  assert(Outstanding != 0);
  if (--Outstanding == 0)
    Done.notify_all();
}

void ScanPool::TaskGroup::wait() {
  std::unique_lock<std::mutex> Lock(M);
  Done.wait(Lock, [this] { return Outstanding == 0; });
}
