//===- concurrent/ScanPool.h - Persistent scan worker pool --------*- C++ -*-=//
//
// A lazily-started, process-wide pool of long-lived worker threads for
// fan-out scans. Thread-per-call parallel scans pay a thread spawn per
// shard per scan (~100us each), which is why BENCH_concurrent.json
// showed parallel scans collapsing to ~0.1x; the pool amortizes thread
// creation across the process lifetime.
//
// Shape: fire-and-forget `submit()` plus a per-scan `TaskGroup` whose
// `wait()` blocks until every task submitted through the group has
// finished. The scanning caller must submit all shard tasks, then
// drain the merge queue, and only then wait on the group — waiting
// before draining would deadlock once the bounded queue fills.
//
// Pool tasks may block (on stripe locks or queue backpressure); they
// must NOT be inside an EpochGuard section while doing so (a blocked
// section stalls writer fences — see Epoch.h).
//
//===----------------------------------------------------------------------===//

#ifndef RELC_CONCURRENT_SCANPOOL_H
#define RELC_CONCURRENT_SCANPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace relc {

class ScanPool {
public:
  /// MaxWorkers == 0 uses std::thread::hardware_concurrency().
  explicit ScanPool(unsigned MaxWorkers = 0);
  ~ScanPool();
  ScanPool(const ScanPool &) = delete;
  ScanPool &operator=(const ScanPool &) = delete;

  /// The process-wide pool shared by every ConcurrentRelation and
  /// generated facade.
  static ScanPool &global();

  /// Enqueue a task. Workers are spawned lazily, one per submit that
  /// finds no idle worker, up to the cap — a process that never scans
  /// in parallel never starts a thread.
  void submit(std::function<void()> Task);

  /// Workers spawned so far (test hook).
  unsigned workerCount() const {
    return Spawned.load(std::memory_order_acquire);
  }

  unsigned maxWorkers() const { return Max; }

  /// Tracks completion of the tasks one scan submits. Destruction
  /// waits, so a TaskGroup must never outlive the data its tasks
  /// capture by reference.
  class TaskGroup {
  public:
    explicit TaskGroup(ScanPool &P) : Pool(P) {}
    ~TaskGroup() { wait(); }
    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    void submit(std::function<void()> Task);
    /// Block until every task submitted through this group completed.
    void wait();

  private:
    ScanPool &Pool;
    std::mutex M;
    std::condition_variable Done;
    size_t Outstanding = 0;

    void finishOne();
  };

private:
  void workerLoop();

  unsigned Max;
  std::atomic<unsigned> Spawned{0};

  std::mutex M;
  std::condition_variable HasWork;
  std::deque<std::function<void()>> Tasks;
  unsigned Idle = 0;
  bool Stopping = false;
  std::vector<std::thread> Workers;
};

} // namespace relc

#endif // RELC_CONCURRENT_SCANPOOL_H
