//===- concurrent/ConcurrentRelation.h - Sharded thread-safe facade -*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe facade over the synthesized relations of the paper:
/// the relation is hash-partitioned across N independent
/// SynthesizedRelation sub-instances by one shard column, with one
/// reader-writer lock per shard (StripedLock.h). Readers of any shards
/// run concurrently; writers serialize only within the shard they
/// touch. Operations whose pattern binds the shard column route to
/// exactly one shard; the rest fan out — reads shard-by-shard,
/// mutations atomically under all writer locks in ascending order
/// (docs/CONCURRENCY.md has the full design, lock order, and
/// visibility guarantees).
///
/// The read path is epoch-protected and wait-free in the common case
/// (concurrent/Epoch.h): a reader enters an epoch section tagged with
/// the shard's gate and, finding no writer active on that gate, scans
/// without touching the stripe lock at all — no shared read-modify-
/// write, so read throughput scales with cores. When a writer holds
/// the shard (its gate is raised for the duration of the mutation,
/// and the raising fence waits out in-flight reader sections), the
/// reader falls back to the shard's reader lock, which is exactly the
/// pre-epoch behavior. Writers are unchanged: exclusive stripe locks,
/// two-phase locking for transact, commit tickets.
///
/// Correctness: every full tuple is owned by exactly one shard (the
/// hash of its shard-column value), so the represented relation is the
/// disjoint union of the shard relations and every Section 2 operation
/// decomposes into per-shard operations on it. The one non-local case
/// is an update that rewrites the shard column itself, which migrates
/// the tuple between shards (remove + reinsert) under all writer
/// locks. The per-shard zero-allocation query invariants of the
/// sequential engine survive unchanged: scanFrames lends each shard's
/// stack frame to the callback exactly as the sequential engine does.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_CONCURRENT_CONCURRENTRELATION_H
#define RELC_CONCURRENT_CONCURRENTRELATION_H

#include "concurrent/Epoch.h"
#include "concurrent/ShardRouter.h"
#include "concurrent/StripedLock.h"
#include "runtime/SynthesizedRelation.h"

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace relc {

struct ConcurrentOptions {
  /// Number of sub-relations. More shards = more writer parallelism
  /// and more fan-out work for non-routed operations; powers of two
  /// around 2x the expected writer count work well.
  unsigned NumShards = 8;
  /// Column to partition by; defaults to the first column of the
  /// decomposition root's key (ShardRouter::defaultShardColumn).
  std::optional<ColumnId> ShardColumn;
  /// Slots in the bounded merge queue of parallel fan-out scans; the
  /// bound backpressures shard workers against a slow consumer.
  size_t ScanQueueCapacity = 1024;
};

class ConcurrentRelation {
public:
  /// Builds \p Opts.NumShards copies of the decomposition, one
  /// SynthesizedRelation per shard (each with concurrent reads
  /// enabled). \p D must be adequate, as for SynthesizedRelation.
  explicit ConcurrentRelation(const Decomposition &D,
                              ConcurrentOptions Opts = ConcurrentOptions());

  // Read the facade's own immutable copy of the decomposition, not
  // Shards.front(): shard pointers are COW-swapped by writers holding
  // only their own stripe, so an unlocked read of a shard slot races.
  const RelSpecRef &spec() const { return Proto.spec(); }
  const Catalog &catalog() const { return Proto.catalog(); }
  const Decomposition &decomp() const { return Proto; }

  unsigned numShards() const { return Router.numShards(); }
  ColumnId shardColumn() const { return Router.shardColumn(); }

  //===--------------------------------------------------------------------===
  // The relational interface (Section 2), thread-safe.
  //===--------------------------------------------------------------------===

  /// insert r t. Routes to the owning shard (full tuples always bind
  /// the shard column) under its writer lock.
  bool insert(const Tuple &T);

  /// remove r s. One shard if the pattern binds the shard column;
  /// otherwise all shards under all writer locks (atomic fan-out).
  size_t remove(const Tuple &Pattern);

  /// update r s u, with the sequential engine's preconditions (the
  /// pattern is a key, changes disjoint from it). If the changes
  /// rewrite the shard column the tuple migrates shards under all
  /// writer locks; otherwise the update stays inside one shard.
  size_t update(const Tuple &Pattern, const Tuple &Changes);

  /// Atomic read-modify-write (see SynthesizedRelation::upsert for the
  /// callback contract). When \p Key binds the shard column this takes
  /// exactly ONE shard writer lock — the whole point of the primitive:
  /// concurrent writers to different keys of one shard linearize their
  /// read-modify-write cycles without external ownership partitioning.
  /// Otherwise every writer lock is taken and, if the new values
  /// rewrite the shard column, the tuple migrates shards. \p Fn must
  /// not operate on this relation. \returns true if a tuple was newly
  /// inserted.
  bool upsert(const Tuple &Key,
              function_ref<void(const BindingFrame *, Tuple &)> Fn);

  /// transact: the batch \p Ops as one atomic, serializable unit under
  /// two-phase locking. The touched shard set is computed from the
  /// ops' shard-column bindings (transactLockPlan); when every op
  /// routes, exactly those stripes are acquired in ascending index
  /// order — a transfer between two routed keys locks two stripes,
  /// never all — and the batch degrades to all stripes only when some
  /// op cannot be confined to one shard (its pattern misses the shard
  /// column, it may rewrite the shard column, or an FD probe spans
  /// shards). All locks precede the first mutation and are released
  /// together after the last, so every execution is conflict-
  /// serializable; the returned Ticket orders conflicting commits.
  /// Aborts (FD conflict, upsert conditional abort) roll the touched
  /// shards back via inverse ops — all-or-nothing, exactly as the
  /// sequential SynthesizedRelation::transact.
  TxResult transact(const std::vector<TxOp> &Ops);

  /// As above, with the batch assembled by \p Build (see TxBatch).
  TxResult transact(function_ref<void(TxBatch &)> Build);

  /// One key's slice of a transactKeys batch: what the callback reads
  /// and writes.
  struct TxKeyView {
    /// In: did a tuple matching the key exist?
    bool Found = false;
    /// In: the existing tuple's non-key values (empty when !Found).
    /// Out: the values to write back. Leaving a Found view's values
    /// unchanged writes nothing for that key; an absent key must come
    /// back with every non-key column bound, or the batch aborts (the
    /// same conditional-abort convention as TxOp::upsert).
    Tuple Values;
  };

  /// The interpreted mirror of the generated facades' `transaction
  /// cols x N` form (relc `transactN_by_<key>` methods): an atomic
  /// read-modify-write over \p Keys, all bound over the same key
  /// columns (which must form a key of the relation). Under the same
  /// two-phase locking as transact — exactly the owning stripes,
  /// ascending, when the key columns route; every stripe otherwise —
  /// the current values of every key are read, \p Fn mutates the views
  /// (returning false aborts with nothing applied), and the write-back
  /// runs as one batch: updates for found keys whose values changed,
  /// inserts for absent keys. FD conflicts roll back all-or-nothing
  /// exactly as transact. On a callback abort the returned FailedOp is
  /// Keys.size(); on an FD abort it is the index of the offending
  /// write-back op.
  TxResult transactKeys(const std::vector<Tuple> &Keys,
                        function_ref<bool(std::vector<TxKeyView> &)> Fn);

  /// The stripes transact(\p Ops) would lock: either the exact
  /// ascending routed set, or every stripe (AllShards). Exposed so
  /// tests and capacity planning can see the lock footprint without
  /// running the batch.
  struct TxLockPlan {
    /// True when some op forces the all-stripes fan-out.
    bool AllShards = false;
    /// Ascending, deduplicated stripe indices when !AllShards.
    std::vector<unsigned> Stripes;
  };
  TxLockPlan transactLockPlan(const std::vector<TxOp> &Ops) const;

  //===--------------------------------------------------------------------===
  // Durability and group commit (src/server/).
  //===--------------------------------------------------------------------===

  /// Ticket-ordered commit hook for durability layers (the server's
  /// write-ahead log): called once per committed transact batch, at
  /// the linearization point — every touched stripe is still held —
  /// with the commit ticket and the batch's REDO ops. Redo ops are the
  /// concrete effects of the batch (upsert callbacks resolved to the
  /// exact insert/remove/update they performed), so they serialize
  /// without code and replaying committed batches in ticket order
  /// through a fresh relation reproduces the represented relation
  /// exactly. Ticket draw and hook invocation are atomic under one
  /// mutex, so the hook observes strictly increasing tickets: an
  /// append-only log fed by this hook is in ticket order by
  /// construction. The hook must not call back into this relation and
  /// should be fast (an in-memory append; defer fsync to group
  /// commit). Install before any concurrent use; installing while
  /// writers run is a race. Batches whose net effect is empty are not
  /// reported.
  using CommitHook =
      std::function<void(uint64_t Ticket, const std::vector<TxOp> &Redo)>;
  void setCommitHook(CommitHook H) { Hook = std::move(H); }

  /// Recovery support: restarts the commit-ticket counter at \p Next,
  /// so tickets stay monotone across a WAL replay (replayed history
  /// consumed tickets up to Next-1). Call before any concurrent use.
  void seedTickets(uint64_t Next) {
    TxTickets.store(Next, std::memory_order_relaxed);
  }

  /// Group-commit support: acquires exactly the stripes of \p Plan
  /// (exclusive, ascending, with the epoch writer fence raised on the
  /// matching gates), runs \p Body, then releases. \p Body typically
  /// applies several compatible transactions via transactPreLocked —
  /// one stripe acquisition amortized over the group.
  void withTxLocks(const TxLockPlan &Plan, function_ref<void()> Body);

  /// Applies \p Ops as one transaction with locking delegated to the
  /// caller: every stripe in \p Scope — which must cover
  /// transactLockPlan(Ops) — is already held exclusively (see
  /// withTxLocks). Same semantics and results as transact, including
  /// the commit hook.
  TxResult transactPreLocked(const std::vector<TxOp> &Ops,
                             const std::vector<unsigned> &Scope) {
    return transactLocked(Ops, Scope);
  }

  /// query r s C, deduplicated across shards.
  std::vector<Tuple> query(const Tuple &Pattern, ColumnSet OutputCols) const;

  /// Streaming scan; like the sequential engine, no deduplication.
  /// Fan-out scans visit shards in index order under successive reader
  /// locks: each shard's results are a consistent snapshot, but a
  /// writer may commit between shards (see docs/CONCURRENCY.md).
  void scan(const Tuple &Pattern, ColumnSet OutputCols,
            function_ref<bool(const Tuple &)> Fn) const;

  /// As scan, delivering borrowed BindingFrames (zero-allocation path;
  /// the frame is the visited shard's stack frame).
  void scanFrames(const Tuple &Pattern, ColumnSet OutputCols,
                  function_ref<bool(const BindingFrame &)> Fn) const;

  /// Parallel fan-out scan: one task per shard runs on the persistent
  /// scan worker pool (concurrent/ScanPool.h — no per-call thread
  /// spawn), scans under its shard's reader lock, and feeds row chunks
  /// into a bounded merge queue (ConcurrentOptions::ScanQueueCapacity
  /// rows); \p Fn runs on the calling thread and sees the same
  /// multiset of frames as the sequential fan-out, in arbitrary
  /// per-shard-chunked order. Routed patterns (which touch one shard)
  /// degrade to the sequential path. Like scanFrames, \p Fn must not
  /// call back into this relation — a mutation would deadlock against
  /// a queue-blocked shard task.
  void scanFramesParallel(const Tuple &Pattern, ColumnSet OutputCols,
                          function_ref<bool(const BindingFrame &)> Fn) const;

  /// As scanFramesParallel, delivering materialized tuples.
  void scanParallel(const Tuple &Pattern, ColumnSet OutputCols,
                    function_ref<bool(const Tuple &)> Fn) const;

  /// True if some tuple extends \p Pattern.
  bool contains(const Tuple &Pattern) const;

  /// Lock-free; exact whenever it does not race a mutation.
  size_t size() const { return Count.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }

  /// Empties every shard (all writer locks).
  void clear();

  //===--------------------------------------------------------------------===
  // Consistent snapshots (COW shard state + RCU reclamation).
  //===--------------------------------------------------------------------===

  /// A refcounted, immutable, globally consistent view of the whole
  /// relation, acquired by snapshot() in O(shards) with no data copy.
  /// The handle pins the shard instances (and their slab arenas) that
  /// were live at acquisition: writers that later touch a pinned shard
  /// clone it copy-on-write and swap in the clone, so the handle keeps
  /// reading frozen state, lock-free, for as long as it lives. Dropping
  /// the last reference releases the frozen instances — the write side
  /// retired its own references through EpochManager at clone time, so
  /// the state is reclaimed once both the grace period and the last
  /// handle are gone. Copyable and movable; a default-constructed
  /// handle is empty (valid() == false).
  class Snapshot {
  public:
    Snapshot() = default;
    /// The handle participates in the pin-count protocol writable()
    /// relies on: construction/copy increment each pinned shard's pin
    /// counter (the 0->1 transition only ever happens inside
    /// snapshot(), under the all-stripe SHARED guard; copies start
    /// from a count the source handle already holds above zero), and
    /// destruction decrements with RELEASE order — the edge that
    /// makes a writer's later acquire-load-of-zero happen-after every
    /// read this handle performed.
    Snapshot(const Snapshot &O)
        : Shards(O.Shards), Pins(O.Pins), Ticket(O.Ticket), Count(O.Count) {
      for (const std::shared_ptr<std::atomic<size_t>> &P : Pins)
        P->fetch_add(1, std::memory_order_relaxed);
    }
    Snapshot &operator=(const Snapshot &O) {
      if (this != &O) {
        Snapshot Tmp(O);
        *this = std::move(Tmp);
      }
      return *this;
    }
    /// Vector moves leave the source empty, so a moved-from handle
    /// holds no pins and its destructor is a no-op.
    Snapshot(Snapshot &&O) noexcept = default;
    Snapshot &operator=(Snapshot &&O) noexcept {
      if (this != &O) {
        unpinAll();
        Shards = std::move(O.Shards);
        Pins = std::move(O.Pins);
        Ticket = O.Ticket;
        Count = O.Count;
        O.Shards.clear();
        O.Pins.clear();
      }
      return *this;
    }
    ~Snapshot() { unpinAll(); }

    bool valid() const { return !Shards.empty(); }
    unsigned numShards() const {
      return static_cast<unsigned>(Shards.size());
    }
    /// Newest commit ticket included in this snapshot: every commit
    /// with ticket <= ticket() is visible, none above it.
    uint64_t ticket() const { return Ticket; }
    /// Tuples across all pinned shards (exact: counted under the same
    /// acquisition that pinned them).
    size_t size() const { return Count; }
    bool empty() const { return Count == 0; }

    /// Direct access to pinned shard \p I (immutable; reads are
    /// reentrant and thread-safe, no locks involved).
    const SynthesizedRelation &shard(unsigned I) const {
      assert(I < Shards.size() && "shard index out of range");
      return *Shards[I];
    }

    /// Streaming scan over the snapshot — the sequential fan-out shape
    /// of ConcurrentRelation::scanFrames, but lock-free and immune to
    /// concurrent writers.
    void scanFrames(const Tuple &Pattern, ColumnSet OutputCols,
                    function_ref<bool(const BindingFrame &)> Fn) const;

    /// α of the snapshot: the union of the pinned shard relations.
    Relation toRelation() const;

    /// Live NodeInstances across the pinned shards.
    size_t liveInstances() const;

  private:
    friend class ConcurrentRelation;
    void unpinAll() {
      for (const std::shared_ptr<std::atomic<size_t>> &P : Pins)
        P->fetch_sub(1, std::memory_order_release);
    }
    std::vector<std::shared_ptr<const SynthesizedRelation>> Shards;
    /// Per-shard pin counters, paired with Shards entry for entry (the
    /// counter travels with the state generation it pins — a COW swap
    /// installs a fresh counter with the fresh state).
    std::vector<std::shared_ptr<std::atomic<size_t>>> Pins;
    uint64_t Ticket = 0;
    size_t Count = 0;
  };

  /// Acquires a consistent snapshot: one brief all-stripe SHARED
  /// acquisition (writers excluded, readers admitted) covers reading
  /// the N shard pointers, the commit ticket, and the size — O(shards)
  /// work, no per-tuple work under any lock. The returned handle is
  /// self-contained; serialization/extraction happens against it with
  /// no facade locks held, while commits keep flowing (the first write
  /// to each pinned shard pays a one-time COW clone of that shard).
  Snapshot snapshot() const;

  //===--------------------------------------------------------------------===
  // Introspection (tests, benches).
  //===--------------------------------------------------------------------===

  /// α(d): the union of the shard relations — a globally consistent
  /// snapshot even while writers run. Implemented as snapshot()
  /// followed by lock-free extraction from the pinned handle, so the
  /// stripes are held only for the O(shards) pointer grab, not the
  /// O(n) extraction.
  Relation toRelation() const;

  /// Live NodeInstances across shards (leak checks).
  size_t liveInstances() const;

  /// Allocator counters of shard \p I's private slab arena, read under
  /// the shard's reader lock (the shard pointer itself is COW-swapped
  /// by writers). ArenaStats fields are relaxed atomics underneath, so
  /// the numbers are a moving target; quiesce for exactness.
  ArenaStats shardArenaStats(unsigned I) const {
    assert(I < Shards.size() && "shard index out of range");
    auto Lock = Locks.shared(I);
    return Shards[I]->arenaStats();
  }

  /// Sum of every shard's arena counters (server stats / memory
  /// accounting). Same consistency caveat as shardArenaStats.
  ArenaStats arenaStats() const {
    ArenaStats Total;
    for (unsigned I = 0; I != Shards.size(); ++I) {
      ArenaStats A = shardArenaStats(I);
      Total.Slabs += A.Slabs;
      Total.Bytes += A.Bytes;
      Total.Live += A.Live;
      Total.Recycled += A.Recycled;
    }
    return Total;
  }

  /// Profiling-guided replanning of every shard against its own live
  /// fanouts, under all writer locks (no reader may hold a plan).
  void reoptimize();

  /// Direct shard access for tests and benches. The caller is
  /// responsible for exclusion (e.g. after joining all worker
  /// threads); the facade's locks are not taken.
  const SynthesizedRelation &shard(unsigned I) const { return *Shards[I]; }

private:
  size_t removeAllShards(const Tuple &Pattern);
  size_t updateRehoming(const Tuple &Pattern, const Tuple &Changes);

  /// Copy-on-write gate every mutation runs through: with shard \p S's
  /// stripe held exclusively (and its fence raised), returns the shard
  /// instance to mutate. When no snapshot pins the instance
  /// (Pins[S] == 0) that is the live instance itself; otherwise the
  /// instance is cloned (O(shard) — the one-time cost of the first
  /// write after a snapshot), the frozen original's arena is detached
  /// from the epoch hand-back protocol, the facade's reference to it
  /// is retired through EpochManager, and the clone (with a fresh pin
  /// counter) is swapped in.
  /// The pin probe is sound AND racefree: the 0->1 transition only
  /// happens under the all-stripes SHARED acquisition of snapshot()
  /// (excluded by our exclusive stripe) — handle copies increment a
  /// count their source handle already holds above zero — and handle
  /// drops decrement with RELEASE order, so the acquire-load reading
  /// zero happens-after every read the dropped handles made (an edge
  /// a relaxed shared_ptr::use_count probe would not provide). A drop
  /// racing the load at worst leaves the count inflated and costs a
  /// spurious clone.
  SynthesizedRelation &writable(unsigned S);

  /// A fresh, empty shard instance (concurrent reads + deferred
  /// reclamation enabled, like the constructor's).
  std::shared_ptr<SynthesizedRelation> freshShard() const;

  /// Hands the facade's reference to a frozen shard instance to the
  /// epoch retire list; the instance is destroyed after the grace
  /// period AND the last snapshot handle drop.
  static void retireShardRef(std::shared_ptr<SynthesizedRelation> Old);

  /// Runs \p Body with read access to shard \p S: wait-free inside an
  /// epoch section tagged with the shard's gate when no writer is
  /// active on it, else under the shard's reader lock. \p Body may run
  /// twice only in the sense that the epoch attempt is abandoned
  /// *before* Body starts — Body itself always runs exactly once.
  template <typename BodyT> void readShard(unsigned S, BodyT &&Body) const {
    {
      EpochGuard Guard(&Gates[S]);
      if (!Gates[S].writerActive()) {
        Body();
        return;
      }
    }
    auto Lock = Locks.shared(S);
    Body();
  }

  /// Fence covering every shard's gate (fan-out mutations).
  EpochWriterFence fenceAll() {
    return EpochWriterFence(Gates.get(), AllShardIdx.data(),
                            AllShardIdx.size());
  }

  /// The single shard a transact op touches, or nullopt when it must
  /// run under every stripe: its pattern misses the shard column, it
  /// may rewrite the shard column (migration), or — for insert-like
  /// ops — an FD's left-hand side misses the shard column, so the
  /// conflict probe itself cannot be confined to one shard.
  std::optional<unsigned> txRoutedShard(const TxOp &Op) const;

  /// Applies the batch with every stripe in \p Scope already held
  /// exclusively by the caller (Scope lists all stripes for fan-out
  /// batches); maintains Count from the scope's size delta and stamps
  /// the commit ticket.
  TxResult transactLocked(const std::vector<TxOp> &Ops,
                          const std::vector<unsigned> &Scope);

  ShardRouter Router;
  StripedLockSet Locks;
  /// One writer gate per shard for the epoch read path (cache-line
  /// padded, like the stripes).
  std::unique_ptr<EpochGate[]> Gates;
  /// 0..NumShards-1, for all-gate fences.
  std::vector<unsigned> AllShardIdx;
  /// The facade's own immutable copy of the decomposition: the source
  /// for spec()/catalog()/decomp() and for COW shard clones, readable
  /// without any lock.
  Decomposition Proto;
  /// The live shard instances. shared_ptr: snapshot() pins the current
  /// instances by reference and writers COW-swap pinned ones (see
  /// writable()); each slot is only ever read or written under its
  /// stripe / gate discipline, never concurrently with the swap.
  std::vector<std::shared_ptr<SynthesizedRelation>> Shards;
  /// Pin counter per shard slot, paired with Shards[S]: how many live
  /// Snapshot handles pin that state generation. Lifetime rides a
  /// shared_ptr because handles may outlive the relation; see
  /// writable() for the acquire/release protocol.
  std::vector<std::shared_ptr<std::atomic<size_t>>> Pins;
  std::atomic<size_t> Count{0};
  /// Monotone commit tickets for transact (see TxResult::Ticket).
  std::atomic<uint64_t> TxTickets{1};
  /// Durability hook (setCommitHook) and the mutex making ticket draw
  /// + hook call one atomic step, so hook order == ticket order.
  CommitHook Hook;
  std::mutex HookMu;
  size_t ScanQueueCap;
  /// True if every FD's left-hand side contains the shard column, so
  /// every conflict probe for a tuple lands in that tuple's own shard
  /// and routed transact ops can validate FDs shard-locally.
  bool FdProbesRoute;
};

} // namespace relc

#endif // RELC_CONCURRENT_CONCURRENTRELATION_H
