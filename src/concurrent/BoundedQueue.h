//===- concurrent/BoundedQueue.h - Bounded merge queue ----------*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bounded multi-producer merge queue behind parallel fan-out
/// scans: one worker per shard pushes result rows, the calling thread
/// pops them and feeds the user's sink callback. The bound provides
/// backpressure — a slow consumer stalls the shard workers instead of
/// buffering the whole relation — and the ring reuses its slots, so a
/// steady-state scan moves rows without per-row allocation once every
/// slot has been written once (element types with inline storage, like
/// BindingFrame over small catalogs, never allocate at all).
///
/// Shutdown protocol: the queue is constructed with the producer
/// count; each producer calls producerDone() exactly once when its
/// shard is exhausted, and pop() returns false once the queue is empty
/// and no producers remain. The consumer may abandon the scan early
/// with close(), after which push() returns false — producers treat
/// that as "stop scanning".
///
//===----------------------------------------------------------------------===//

#ifndef RELC_CONCURRENT_BOUNDEDQUEUE_H
#define RELC_CONCURRENT_BOUNDEDQUEUE_H

#include <cassert>
#include <condition_variable>
#include <mutex>
#include <utility>
#include <vector>

namespace relc {

/// A bounded FIFO of \p T with blocking push/pop and cooperative
/// shutdown. \p T must be default-constructible and assignable.
template <typename T> class BoundedQueue {
public:
  BoundedQueue(size_t Capacity, unsigned NumProducers)
      : Ring(Capacity), Producers(NumProducers) {
    assert(Capacity > 0 && "queue needs at least one slot");
    assert(NumProducers > 0 && "queue needs at least one producer");
  }

  BoundedQueue(const BoundedQueue &) = delete;
  BoundedQueue &operator=(const BoundedQueue &) = delete;

  /// Enqueues \p V, blocking while the queue is full. \returns false
  /// (without enqueueing) if the consumer closed the queue — the
  /// producer should stop producing.
  bool push(const T &V) { return pushImpl(V); }

  /// Move overload: element types with owned storage (e.g. the row
  /// chunks of pooled parallel scans) enqueue without a deep copy.
  bool push(T &&V) { return pushImpl(std::move(V)); }

  /// Dequeues into \p Out, blocking while the queue is empty and
  /// producers remain. \returns false when the queue is drained: empty
  /// with every producer finished (or closed).
  bool pop(T &Out) {
    std::unique_lock<std::mutex> L(Mu);
    NotEmpty.wait(L, [&] { return Count != 0 || Producers == 0 || Closed; });
    if (Count == 0)
      return false;
    Out = std::move(Ring[Head]);
    Head = (Head + 1) % Ring.size();
    --Count;
    L.unlock();
    NotFull.notify_one();
    return true;
  }

  /// Signals that one producer has finished. The last call wakes a
  /// consumer blocked on an empty queue.
  void producerDone() {
    std::unique_lock<std::mutex> L(Mu);
    assert(Producers > 0 && "more producerDone calls than producers");
    if (--Producers == 0) {
      L.unlock();
      NotEmpty.notify_all();
    }
  }

  /// Consumer-side cancellation: subsequent (and blocked) push calls
  /// return false. Queued rows are discarded.
  void close() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Closed = true;
      Count = 0;
    }
    NotFull.notify_all();
    NotEmpty.notify_all();
  }

private:
  template <typename U> bool pushImpl(U &&V) {
    std::unique_lock<std::mutex> L(Mu);
    NotFull.wait(L, [&] { return Count != Ring.size() || Closed; });
    if (Closed)
      return false;
    Ring[(Head + Count) % Ring.size()] = std::forward<U>(V);
    ++Count;
    L.unlock();
    NotEmpty.notify_one();
    return true;
  }

  std::mutex Mu;
  std::condition_variable NotFull, NotEmpty;
  std::vector<T> Ring;
  size_t Head = 0;
  size_t Count = 0;
  unsigned Producers;
  bool Closed = false;
};

} // namespace relc

#endif // RELC_CONCURRENT_BOUNDEDQUEUE_H
