//===- concurrent/Epoch.cpp - Epoch-based read-side protection ------------===//

#include "concurrent/Epoch.h"

#include <cassert>
#include <mutex>
#include <thread>
#include <vector>

using namespace relc;

const char EpochManager::WildcardByte = 0;
const unsigned EpochWriterFence::OneIdx[1] = {0};

namespace {

/// Retire lists of threads that exited with entries still pending
/// their grace period; any thread's reclaim() adopts and drains them.
struct OrphanStore {
  std::mutex M;
  std::vector<void *> Heads; // EpochManager::Retired chains
  std::vector<size_t> Counts;
};

OrphanStore &orphans(void *Opaque) {
  return *static_cast<OrphanStore *>(Opaque);
}

} // namespace

/// Maximum read-side nesting depth per thread. Facade reads nest at
/// most two deep (a guarded read issuing another guarded read is
/// already forbidden for lock-discipline reasons); eight is headroom.
static constexpr uint32_t MaxNest = 8;

struct EpochManager::Handle {
  EpochManager *Mgr = nullptr;
  uint32_t SlotIndex = UINT32_MAX;
  uint32_t Depth = 0;
  const void *TagStack[MaxNest] = {};
  RetireList Retired;
  uint64_t RetireTicks = 0;

  ~Handle() {
    assert(Depth == 0 && "thread exited inside an epoch section");
    if (!Mgr)
      return;
    if (SlotIndex != UINT32_MAX)
      Mgr->releaseSlot(*this);
    if (Retired.Count != 0)
      Mgr->adoptOrphan(std::move(Retired));
  }
};

static thread_local EpochManager::Handle TLHandle;

EpochManager &EpochManager::global() {
  static EpochManager Mgr;
  return Mgr;
}

EpochManager::EpochManager() : OrphansOpaque(new OrphanStore) {}

EpochManager::~EpochManager() {
  // Static destruction: every well-behaved thread has exited (their
  // handles orphaned any pending entries), so grace periods no longer
  // apply — free everything outright.
  OrphanStore &O = orphans(OrphansOpaque);
  for (void *HeadOpaque : O.Heads) {
    Retired *R = static_cast<Retired *>(HeadOpaque);
    while (R) {
      Retired *Next = R->Next;
      R->Del(R->Ptr);
      delete R;
      R = Next;
    }
  }
  delete &O;
}

EpochManager::Handle &EpochManager::handle() {
  Handle &H = TLHandle;
  assert((!H.Mgr || H.Mgr == this) && "one EpochManager per process");
  H.Mgr = this;
  return H;
}

EpochManager::Slot &EpochManager::claimSlot(Handle &H) {
  if (H.SlotIndex != UINT32_MAX)
    return Slots[H.SlotIndex];
  for (size_t I = 0; I != MaxParticipants; ++I) {
    uint32_t Expected = 0;
    if (Slots[I].Claimed.compare_exchange_strong(Expected, 1,
                                                 std::memory_order_acq_rel)) {
      H.SlotIndex = static_cast<uint32_t>(I);
      // Grow the high-water mark so fences scan this slot.
      size_t HW = HighWater.load(std::memory_order_relaxed);
      while (HW < I + 1 && !HighWater.compare_exchange_weak(
                               HW, I + 1, std::memory_order_acq_rel)) {
      }
      return Slots[I];
    }
  }
  assert(false && "more than MaxParticipants concurrent epoch threads");
  // Unreachable with assertions on (this repo keeps them on in every
  // build type); fall back to sharing slot 0, which is conservative
  // for fences but racy for the sequence wait — still better than UB.
  H.SlotIndex = 0;
  return Slots[0];
}

void EpochManager::releaseSlot(Handle &H) {
  Slot &S = Slots[H.SlotIndex];
  assert((S.State.load(std::memory_order_relaxed) & 1) == 0 &&
         "releasing an active slot");
  S.Tag.store(nullptr, std::memory_order_relaxed);
  S.Claimed.store(0, std::memory_order_release);
  H.SlotIndex = UINT32_MAX;
}

void EpochManager::enter(const void *Tag) {
  Handle &H = handle();
  Slot &S = claimSlot(H);
  const void *T = Tag ? Tag : wildcardTag();
  assert(H.Depth < MaxNest && "epoch sections nested too deep");
  H.TagStack[H.Depth] = T;
  if (H.Depth++ != 0) {
    // Nested section: widen the published tag to the wildcard when it
    // differs, so fences on the inner tag wait for this thread too.
    // seq_cst store: pairs with the fence's gate-store/tag-load the
    // same way the outer State store pairs with gate-store/State-load.
    if (S.Tag.load(std::memory_order_relaxed) != T)
      S.Tag.store(wildcardTag(), std::memory_order_seq_cst);
    return;
  }
  S.Epoch.store(GlobalEpoch.load(std::memory_order_acquire),
                std::memory_order_relaxed);
  S.Tag.store(T, std::memory_order_relaxed);
  // Publish "active": odd state. seq_cst is the reader half of the
  // Dekker handshake — the subsequent EpochGate load (at the call
  // site) must not be reordered before this store.
  uint64_t St = S.State.load(std::memory_order_relaxed);
  S.State.store(St + 1, std::memory_order_seq_cst);
}

void EpochManager::exit() {
  Handle &H = handle();
  assert(H.Depth != 0 && "exit() without enter()");
  Slot &S = Slots[H.SlotIndex];
  if (--H.Depth != 0) {
    // Restore the outer tag (narrowing is safe: the inner data is no
    // longer being read, so fences may skip this slot again).
    S.Tag.store(H.TagStack[H.Depth - 1], std::memory_order_seq_cst);
    return;
  }
  uint64_t St = S.State.load(std::memory_order_relaxed);
  assert((St & 1) == 1 && "slot not active on final exit");
  // Release pairs with the fence's acquire wait: everything this
  // section read happened-before the writer's mutation.
  S.State.store(St + 1, std::memory_order_release);
}

bool EpochManager::inSection() const {
  return TLHandle.Mgr == this && TLHandle.Depth != 0;
}

void EpochManager::synchronize(const void *const *Tags, size_t NumTags) {
  size_t HW = HighWater.load(std::memory_order_acquire);
  for (size_t I = 0; I != HW; ++I) {
    Slot &S = Slots[I];
    // seq_cst: the writer half of the Dekker handshake (see Epoch.h).
    uint64_t St = S.State.load(std::memory_order_seq_cst);
    if ((St & 1) == 0)
      continue;
    const void *T = S.Tag.load(std::memory_order_seq_cst);
    bool Match = NumTags == 0 || T == wildcardTag();
    for (size_t J = 0; !Match && J != NumTags; ++J)
      Match = T == Tags[J];
    if (!Match)
      continue;
    // Wait for *this* section to end. A later section on the same slot
    // bumps State past St; it either saw the raised gate (and fell
    // back to the stripe lock) or reads an unrelated tag.
    unsigned Spins = 0;
    while (S.State.load(std::memory_order_acquire) == St) {
      if (++Spins > 64)
        std::this_thread::yield();
    }
  }
}

void EpochManager::retire(void *P, void (*Del)(void *)) {
  Handle &H = handle();
  Retired *R = new Retired{P, Del, globalEpoch(), nullptr};
  *H.Retired.Tail = R;
  H.Retired.Tail = &R->Next;
  ++H.Retired.Count;
  // Amortized housekeeping: advance and reclaim every 64 retires, but
  // never while this thread sits inside a section (its pinned epoch
  // may not reflect what it still references).
  if (H.Depth == 0 && (++H.RetireTicks & 63) == 0) {
    tryAdvance();
    tryAdvance();
    reclaim();
  }
}

bool EpochManager::tryAdvance() {
  uint64_t E = GlobalEpoch.load(std::memory_order_acquire);
  size_t HW = HighWater.load(std::memory_order_acquire);
  for (size_t I = 0; I != HW; ++I) {
    Slot &S = Slots[I];
    if ((S.State.load(std::memory_order_acquire) & 1) == 0)
      continue;
    if (S.Epoch.load(std::memory_order_acquire) < E)
      return false; // a straggler still pins the previous epoch
  }
  return GlobalEpoch.compare_exchange_strong(E, E + 1,
                                             std::memory_order_acq_rel);
}

size_t EpochManager::reclaimList(RetireList &L, uint64_t SafeEpoch) {
  // FIFO walk from the head: entries are in retire order, and epochs
  // along the list are monotone, so stop at the first unsafe entry.
  // Freeing in retire order preserves parent-before-child destruction
  // (see the RetireList comment in Epoch.h).
  size_t Freed = 0;
  Retired *R = L.Head;
  while (R && R->Epoch <= SafeEpoch) {
    Retired *Next = R->Next;
    R->Del(R->Ptr);
    delete R;
    R = Next;
    ++Freed;
  }
  L.Head = R;
  if (!R)
    L.Tail = &L.Head;
  L.Count -= Freed;
  return Freed;
}

size_t EpochManager::reclaim() {
  uint64_t G = globalEpoch();
  if (G < 2)
    return 0;
  uint64_t Safe = G - 2;
  Handle &H = handle();
  size_t Freed = reclaimList(H.Retired, Safe);

  // Adopt orphaned lists from exited threads; put back what is still
  // in its grace period.
  OrphanStore &O = orphans(OrphansOpaque);
  std::vector<void *> Taken;
  {
    std::lock_guard<std::mutex> Lock(O.M);
    Taken.swap(O.Heads);
    O.Counts.clear();
  }
  for (void *HeadOpaque : Taken) {
    RetireList L;
    L.Head = static_cast<Retired *>(HeadOpaque);
    L.Tail = &L.Head; // tail unused for adopted lists
    L.Count = 0;
    for (Retired *R = L.Head; R; R = R->Next)
      ++L.Count;
    Freed += reclaimList(L, Safe);
    if (L.Head) {
      std::lock_guard<std::mutex> Lock(O.M);
      O.Heads.push_back(L.Head);
      O.Counts.push_back(L.Count);
    }
  }
  return Freed;
}

void EpochManager::flush() {
  // Two advances age every retired entry past its grace period when no
  // reader pins an older epoch; loop in case concurrent retires land.
  for (int Round = 0; Round != 4; ++Round) {
    tryAdvance();
    tryAdvance();
    if (reclaim() == 0 && pendingRetired() == 0)
      return;
  }
}

size_t EpochManager::pendingRetired() const {
  size_t N = TLHandle.Mgr == this ? TLHandle.Retired.Count : 0;
  OrphanStore &O = orphans(OrphansOpaque);
  std::lock_guard<std::mutex> Lock(O.M);
  for (size_t C : O.Counts)
    N += C;
  return N;
}

void EpochManager::adoptOrphan(RetireList &&L) {
  if (!L.Head)
    return;
  OrphanStore &O = orphans(OrphansOpaque);
  std::lock_guard<std::mutex> Lock(O.M);
  O.Heads.push_back(L.Head);
  O.Counts.push_back(L.Count);
}

//===--------------------------------------------------------------------===//
// EpochWriterFence
//===--------------------------------------------------------------------===//

EpochWriterFence::EpochWriterFence(EpochGate *Gates, const unsigned *Idx,
                                   size_t N)
    : NumRaised(N) {
  assert(N <= MaxGates && "fence over too many gates");
  const void *Tags[MaxGates];
  for (size_t I = 0; I != N; ++I) {
    EpochGate *G = &Gates[Idx[I]];
    Raised[I] = G;
    Tags[I] = G;
    // seq_cst store: the writer half of the Dekker handshake. The
    // exclusive stripe lock (held by contract) serializes fences on
    // the same gate, so a plain store of 1 cannot clobber a peer.
    G->Writer.store(1, std::memory_order_seq_cst);
  }
  EpochManager::global().synchronize(Tags, N);
}

EpochWriterFence::~EpochWriterFence() {
  for (size_t I = NumRaised; I != 0; --I)
    // Release: the next wait-free reader's gate load (seq_cst implies
    // acquire) observes every write of the fenced mutation.
    Raised[I - 1]->Writer.store(0, std::memory_order_release);
}
