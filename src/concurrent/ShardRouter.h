//===- concurrent/ShardRouter.h - Hash routing across shards ----*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides which shard of a ConcurrentRelation owns a tuple: one
/// designated shard column is hashed to a shard index, so every full
/// tuple has exactly one home and any operation whose pattern binds
/// the shard column touches exactly one shard. The default shard
/// column is the first column of the decomposition root's key — the
/// key columns of the root's first outgoing map edge — which is the
/// column the representation itself partitions by first, so routed
/// operations land on the shard whose containers they would have
/// probed anyway.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_CONCURRENT_SHARDROUTER_H
#define RELC_CONCURRENT_SHARDROUTER_H

#include "decomp/Decomposition.h"
#include "rel/Tuple.h"

namespace relc {

class ShardRouter {
public:
  ShardRouter(ColumnId ShardCol, unsigned NumShards)
      : Col(ShardCol), Count(NumShards) {
    assert(NumShards > 0 && "router needs at least one shard");
  }

  /// The first column of \p D's root key: the key columns of the
  /// root's first outgoing map edge. Falls back to column 0 for
  /// decompositions whose root is a bare unit (no outgoing edges).
  static ColumnId defaultShardColumn(const Decomposition &D);

  ColumnId shardColumn() const { return Col; }
  unsigned numShards() const { return Count; }

  /// True if an operation with pattern columns \p Pattern routes to a
  /// single shard (the pattern binds the shard column).
  bool routes(ColumnSet Pattern) const { return Pattern.contains(Col); }

  /// The shard owning shard-column value \p V. Value::hash already
  /// avalanches (hashMix64), so reduction by modulo is unbiased even
  /// for sequential integer keys.
  unsigned shardOf(const Value &V) const {
    return static_cast<unsigned>(V.hash() % Count);
  }

  /// The shard owning \p T; requires the shard column bound.
  unsigned shardOf(const Tuple &T) const {
    assert(T.has(Col) && "tuple does not bind the shard column");
    return shardOf(T.get(Col));
  }

private:
  ColumnId Col;
  unsigned Count;
};

} // namespace relc

#endif // RELC_CONCURRENT_SHARDROUTER_H
