//===- concurrent/StripedLock.h - Striped reader-writer locks ---*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lock striping underneath ConcurrentRelation: one cache-line-
/// padded std::shared_mutex per shard, so readers of different shards
/// never touch the same line and writers serialize only within a
/// shard. The discipline (documented in docs/CONCURRENCY.md) follows
/// the classic partitioned-lock recipe: single-shard operations take
/// exactly one stripe; operations that must see or mutate every shard
/// acquire stripes in ascending index order, which makes deadlock
/// impossible because every multi-stripe acquisition respects the same
/// total order.
///
//===----------------------------------------------------------------------===//

#ifndef RELC_CONCURRENT_STRIPEDLOCK_H
#define RELC_CONCURRENT_STRIPEDLOCK_H

#include <algorithm>
#include <cassert>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

namespace relc {

/// A set of shared_mutexes, one per stripe, each on its own cache line.
class StripedLockSet {
public:
  explicit StripedLockSet(unsigned NumStripes)
      : Stripes(std::make_unique<PaddedMutex[]>(NumStripes)),
        Count(NumStripes) {
    assert(NumStripes > 0 && "lock set needs at least one stripe");
  }

  StripedLockSet(const StripedLockSet &) = delete;
  StripedLockSet &operator=(const StripedLockSet &) = delete;

  unsigned numStripes() const { return Count; }

  std::shared_mutex &stripe(unsigned I) const {
    assert(I < Count && "stripe index out of range");
    return Stripes[I].Mu;
  }

  /// Reader lock on one stripe.
  std::shared_lock<std::shared_mutex> shared(unsigned I) const {
    return std::shared_lock<std::shared_mutex>(stripe(I));
  }

  /// Writer lock on one stripe.
  std::unique_lock<std::shared_mutex> exclusive(unsigned I) const {
    return std::unique_lock<std::shared_mutex>(stripe(I));
  }

private:
  /// Padded to a cache line so contended stripes do not false-share.
  /// (std::hardware_destructive_interference_size is not implemented
  /// by every standard library this builds against; 64 is right for
  /// the x86-64/AArch64 machines the benches run on.)
  struct alignas(64) PaddedMutex {
    mutable std::shared_mutex Mu;
  };

  std::unique_ptr<PaddedMutex[]> Stripes;
  unsigned Count;
};

/// RAII acquisition of EVERY stripe of a StripedLockSet, in ascending
/// index order (the global lock order) and released in reverse. The
/// exclusive mode backs the fan-out mutations, which must be atomic
/// across shards; the shared mode gives whole-relation reads (e.g.
/// snapshot extraction) a globally consistent view while still
/// admitting concurrent readers. Both modes respect the same total
/// acquisition order, so they cannot deadlock against each other or
/// against single-stripe operations.
class AllShardsGuard {
public:
  enum Mode { Exclusive, Shared };

  explicit AllShardsGuard(const StripedLockSet &Locks, Mode M = Exclusive)
      : Locks(Locks), M(M) {
    for (unsigned I = 0; I != Locks.numStripes(); ++I) {
      if (M == Exclusive)
        Locks.stripe(I).lock();
      else
        Locks.stripe(I).lock_shared();
    }
  }
  ~AllShardsGuard() {
    for (unsigned I = Locks.numStripes(); I != 0; --I) {
      if (M == Exclusive)
        Locks.stripe(I - 1).unlock();
      else
        Locks.stripe(I - 1).unlock_shared();
    }
  }

  AllShardsGuard(const AllShardsGuard &) = delete;
  AllShardsGuard &operator=(const AllShardsGuard &) = delete;

private:
  const StripedLockSet &Locks;
  Mode M;
};

/// RAII writer acquisition of an ARBITRARY SUBSET of stripes — the
/// growing phase of the two-phase locking behind multi-key
/// transactions: every stripe a transaction touches is taken before
/// its first mutation, and all are released together at the end
/// (destruction, in reverse). The requested indices are sorted and
/// deduplicated on construction, so any two overlapping acquisitions
/// respect the same ascending total order as AllShardsGuard and the
/// single-stripe operations — deadlock-free by the usual
/// ordered-acquisition argument, whatever subsets concurrent
/// transactions pick.
class ShardSetGuard {
public:
  ShardSetGuard(const StripedLockSet &Locks, std::vector<unsigned> Stripes)
      : Locks(Locks), Indices(std::move(Stripes)) {
    std::sort(Indices.begin(), Indices.end());
    Indices.erase(std::unique(Indices.begin(), Indices.end()),
                  Indices.end());
    for (unsigned I : Indices) {
      assert(I < Locks.numStripes() && "stripe index out of range");
      Locks.stripe(I).lock();
    }
  }
  ~ShardSetGuard() {
    for (size_t I = Indices.size(); I != 0; --I)
      Locks.stripe(Indices[I - 1]).unlock();
  }

  ShardSetGuard(const ShardSetGuard &) = delete;
  ShardSetGuard &operator=(const ShardSetGuard &) = delete;

  /// The stripes actually held: sorted ascending, deduplicated (the
  /// acquisition order — tests assert the discipline through this).
  const std::vector<unsigned> &stripes() const { return Indices; }

private:
  const StripedLockSet &Locks;
  std::vector<unsigned> Indices;
};

} // namespace relc

#endif // RELC_CONCURRENT_STRIPEDLOCK_H
