//===- concurrent/StripedLock.h - Striped reader-writer locks ---*- C++ -*-===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lock striping underneath ConcurrentRelation: one cache-line-
/// padded std::shared_mutex per shard, so readers of different shards
/// never touch the same line and writers serialize only within a
/// shard. The discipline (documented in docs/CONCURRENCY.md) follows
/// the classic partitioned-lock recipe: single-shard operations take
/// exactly one stripe; operations that must see or mutate every shard
/// acquire stripes in ascending index order, which makes deadlock
/// impossible because every multi-stripe acquisition respects the same
/// total order.
///
/// Fairness. std::shared_mutex promises no acquisition order, so under
/// contention two starvation patterns appear: a stream of back-to-back
/// fan-out transactions (AllShardsGuard) can shut routed single-stripe
/// writers out of the stripes it keeps re-acquiring, and conversely a
/// hammering routed writer can keep winning the one stripe a fan-out
/// acquisition is still missing, parking the fan-out forever mid-
/// climb. The remedy is a wound-wait-flavored ticket protocol layered
/// over the mutexes: every exclusive acquisition draws a monotone
/// seniority ticket and advertises it on the stripes it is about to
/// take (a per-stripe "claim" slot holding the most senior waiter's
/// ticket); before touching any mutex — and only while holding none,
/// which keeps the ascending-order deadlock argument intact — an
/// acquirer politely yields to claims older than its own. Claims are
/// advisory (correctness never depends on them): a claim is cleared
/// the moment its owner acquires that stripe's mutex, and a younger
/// claim may be displaced by a more senior one. The effect is FIFO-ish
/// seniority ordering in both directions: routed writers queue behind
/// an older fan-out's claim instead of stealing its missing stripe,
/// and a fresh fan-out queues behind older routed claims instead of
/// locking them out for another full sweep.
///
/// The deferral phase runs strictly before the first mutex
/// acquisition, so it cannot introduce lock-order inversions; the
/// oldest active ticket never defers, so by induction on ticket order
/// every waiter's deferral terminates. Callers must not take a stripe
/// while already holding another one except through the multi-stripe
/// guards (ConcurrentRelation's discipline already guarantees this).
///
//===----------------------------------------------------------------------===//

#ifndef RELC_CONCURRENT_STRIPEDLOCK_H
#define RELC_CONCURRENT_STRIPEDLOCK_H

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

namespace relc {

/// A set of shared_mutexes, one per stripe, each on its own cache line,
/// plus the seniority-ticket fairness machinery described above.
class StripedLockSet {
public:
  explicit StripedLockSet(unsigned NumStripes)
      : Stripes(std::make_unique<PaddedStripe[]>(NumStripes)),
        Count(NumStripes) {
    assert(NumStripes > 0 && "lock set needs at least one stripe");
  }

  StripedLockSet(const StripedLockSet &) = delete;
  StripedLockSet &operator=(const StripedLockSet &) = delete;

  unsigned numStripes() const { return Count; }

  std::shared_mutex &stripe(unsigned I) const {
    assert(I < Count && "stripe index out of range");
    return Stripes[I].Mu;
  }

  /// Reader lock on one stripe. Readers draw no ticket and register no
  /// claim, but they do yield to pending exclusive claims so a reader
  /// stream cannot starve a claimed writer out of its stripe.
  std::shared_lock<std::shared_mutex> shared(unsigned I) const {
    deferToOlder(I, UINT64_MAX);
    return std::shared_lock<std::shared_mutex>(stripe(I));
  }

  /// Writer lock on one stripe: draw a ticket, advertise the claim,
  /// defer to more senior claimants, then lock. Must not be called
  /// while holding any other stripe (use ShardSetGuard for sets).
  std::unique_lock<std::shared_mutex> exclusive(unsigned I) const {
    uint64_t T = drawTicket();
    claimStripe(I, T);
    deferToOlder(I, T);
    std::unique_lock<std::shared_mutex> L(stripe(I));
    clearClaim(I, T);
    return L;
  }

  //===--------------------------------------------------------------------===
  // Ticket/claim protocol (used by the guards below; exposed so tests
  // can observe the fairness mechanism directly).
  //===--------------------------------------------------------------------===

  /// Monotone seniority ticket; smaller = more senior.
  uint64_t drawTicket() const {
    return Tickets.fetch_add(1, std::memory_order_relaxed);
  }

  /// Advertises \p Ticket as a waiter on stripe \p I. The slot keeps
  /// the most senior claim: a younger claim never displaces an older
  /// one (it would hide the senior waiter from newcomers).
  void claimStripe(unsigned I, uint64_t Ticket) const {
    std::atomic<uint64_t> &C = Stripes[I].Claim;
    uint64_t Cur = C.load(std::memory_order_relaxed);
    while ((Cur == 0 || Ticket < Cur) &&
           !C.compare_exchange_weak(Cur, Ticket, std::memory_order_relaxed)) {
    }
  }

  /// Withdraws \p Ticket's claim on stripe \p I (no-op if a more
  /// senior claim displaced it).
  void clearClaim(unsigned I, uint64_t Ticket) const {
    std::atomic<uint64_t> &C = Stripes[I].Claim;
    uint64_t Cur = Ticket;
    C.compare_exchange_strong(Cur, 0, std::memory_order_relaxed);
  }

  /// Spins (yielding) while a claim more senior than \p Ticket is
  /// advertised on stripe \p I. Must only be called while holding NO
  /// stripe mutex; claims are always cleared by their owners'
  /// acquisitions, so termination follows from ticket induction.
  void deferToOlder(unsigned I, uint64_t Ticket) const {
    for (;;) {
      uint64_t C = Stripes[I].Claim.load(std::memory_order_relaxed);
      if (C == 0 || C >= Ticket)
        return;
      std::this_thread::yield();
    }
  }

  /// The currently advertised claim ticket on \p I (0 = none); for
  /// tests asserting the fairness protocol.
  uint64_t claimOf(unsigned I) const {
    return Stripes[I].Claim.load(std::memory_order_relaxed);
  }

private:
  /// Padded to a cache line so contended stripes do not false-share.
  /// (std::hardware_destructive_interference_size is not implemented
  /// by every standard library this builds against; 64 is right for
  /// the x86-64/AArch64 machines the benches run on.)
  struct alignas(64) PaddedStripe {
    mutable std::shared_mutex Mu;
    /// Most senior waiting exclusive ticket, 0 when unclaimed.
    mutable std::atomic<uint64_t> Claim{0};
  };

  std::unique_ptr<PaddedStripe[]> Stripes;
  unsigned Count;
  /// Seniority tickets start at 1 (0 means "no claim").
  mutable std::atomic<uint64_t> Tickets{1};
};

/// RAII acquisition of EVERY stripe of a StripedLockSet, in ascending
/// index order (the global lock order) and released in reverse. The
/// exclusive mode backs the fan-out mutations, which must be atomic
/// across shards; the shared mode gives whole-relation reads (e.g.
/// snapshot extraction) a globally consistent view while still
/// admitting concurrent readers. Both modes respect the same total
/// acquisition order, so they cannot deadlock against each other or
/// against single-stripe operations. Exclusive acquisitions run the
/// ticket protocol: claims on every stripe, deferral to seniors before
/// the first lock, each claim cleared as its stripe is won — so routed
/// writers cannot park the sweep on its last missing stripe forever,
/// and back-to-back sweeps cannot lock routed writers out.
class AllShardsGuard {
public:
  enum Mode { Exclusive, Shared };

  explicit AllShardsGuard(const StripedLockSet &Locks, Mode M = Exclusive)
      : Locks(Locks), M(M) {
    if (M == Exclusive) {
      uint64_t T = Locks.drawTicket();
      for (unsigned I = 0; I != Locks.numStripes(); ++I)
        Locks.claimStripe(I, T);
      for (unsigned I = 0; I != Locks.numStripes(); ++I)
        Locks.deferToOlder(I, T);
      for (unsigned I = 0; I != Locks.numStripes(); ++I) {
        Locks.stripe(I).lock();
        Locks.clearClaim(I, T);
      }
      return;
    }
    // Deferral strictly precedes the first acquisition (deferring
    // mid-climb while holding earlier stripes could park this guard
    // behind a claimant that is itself blocked on a stripe we hold).
    for (unsigned I = 0; I != Locks.numStripes(); ++I)
      Locks.deferToOlder(I, UINT64_MAX);
    for (unsigned I = 0; I != Locks.numStripes(); ++I)
      Locks.stripe(I).lock_shared();
  }
  ~AllShardsGuard() {
    for (unsigned I = Locks.numStripes(); I != 0; --I) {
      if (M == Exclusive)
        Locks.stripe(I - 1).unlock();
      else
        Locks.stripe(I - 1).unlock_shared();
    }
  }

  AllShardsGuard(const AllShardsGuard &) = delete;
  AllShardsGuard &operator=(const AllShardsGuard &) = delete;

private:
  const StripedLockSet &Locks;
  Mode M;
};

/// RAII writer acquisition of an ARBITRARY SUBSET of stripes — the
/// growing phase of the two-phase locking behind multi-key
/// transactions: every stripe a transaction touches is taken before
/// its first mutation, and all are released together at the end
/// (destruction, in reverse). The requested indices are sorted and
/// deduplicated on construction, so any two overlapping acquisitions
/// respect the same ascending total order as AllShardsGuard and the
/// single-stripe operations — deadlock-free by the usual
/// ordered-acquisition argument, whatever subsets concurrent
/// transactions pick. Acquisition runs the seniority-ticket protocol
/// (see StripedLockSet): claims first, deferral to older claimants
/// while holding nothing, then the ascending climb, clearing each
/// claim as its stripe is won.
class ShardSetGuard {
public:
  ShardSetGuard(const StripedLockSet &Locks, std::vector<unsigned> Stripes)
      : Locks(Locks), Indices(std::move(Stripes)) {
    std::sort(Indices.begin(), Indices.end());
    Indices.erase(std::unique(Indices.begin(), Indices.end()),
                  Indices.end());
    uint64_t T = Locks.drawTicket();
    for (unsigned I : Indices) {
      assert(I < Locks.numStripes() && "stripe index out of range");
      Locks.claimStripe(I, T);
    }
    for (unsigned I : Indices)
      Locks.deferToOlder(I, T);
    for (unsigned I : Indices) {
      Locks.stripe(I).lock();
      Locks.clearClaim(I, T);
    }
  }
  ~ShardSetGuard() {
    for (size_t I = Indices.size(); I != 0; --I)
      Locks.stripe(Indices[I - 1]).unlock();
  }

  ShardSetGuard(const ShardSetGuard &) = delete;
  ShardSetGuard &operator=(const ShardSetGuard &) = delete;

  /// The stripes actually held: sorted ascending, deduplicated (the
  /// acquisition order — tests assert the discipline through this).
  const std::vector<unsigned> &stripes() const { return Indices; }

private:
  const StripedLockSet &Locks;
  std::vector<unsigned> Indices;
};

} // namespace relc

#endif // RELC_CONCURRENT_STRIPEDLOCK_H
