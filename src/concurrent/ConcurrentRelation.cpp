//===- concurrent/ConcurrentRelation.cpp - Sharded thread-safe facade --------===//
//
// Part of the RelC data representation synthesis library.
//
//===----------------------------------------------------------------------===//

#include "concurrent/ConcurrentRelation.h"

#include "concurrent/BoundedQueue.h"

#include <thread>
#include <unordered_set>

using namespace relc;

ConcurrentRelation::ConcurrentRelation(const Decomposition &D,
                                       ConcurrentOptions Opts)
    : Router(Opts.ShardColumn ? *Opts.ShardColumn
                              : ShardRouter::defaultShardColumn(D),
             Opts.NumShards),
      Locks(Opts.NumShards),
      // Clamp: capacity 0 would be modulo-by-zero UB inside the
      // queue's ring in release builds (its own check is assert-only).
      ScanQueueCap(Opts.ScanQueueCapacity > 0 ? Opts.ScanQueueCapacity
                                              : 1) {
  assert(Router.shardColumn() < D.catalog().size() &&
         "shard column is not a column of the relation");
  Shards.reserve(Opts.NumShards);
  for (unsigned I = 0; I != Opts.NumShards; ++I) {
    Shards.push_back(std::make_unique<SynthesizedRelation>(Decomposition(D)));
    Shards.back()->enableConcurrentReads();
  }
}

bool ConcurrentRelation::insert(const Tuple &T) {
  unsigned S = Router.shardOf(T);
  auto Lock = Locks.exclusive(S);
  bool Changed = Shards[S]->insert(T);
  if (Changed)
    Count.fetch_add(1, std::memory_order_relaxed);
  return Changed;
}

size_t ConcurrentRelation::remove(const Tuple &Pattern) {
  size_t Removed;
  if (Router.routes(Pattern.columns())) {
    unsigned S = Router.shardOf(Pattern);
    auto Lock = Locks.exclusive(S);
    Removed = Shards[S]->remove(Pattern);
  } else {
    Removed = removeAllShards(Pattern);
  }
  Count.fetch_sub(Removed, std::memory_order_relaxed);
  return Removed;
}

size_t ConcurrentRelation::removeAllShards(const Tuple &Pattern) {
  AllShardsGuard Guard(Locks);
  size_t Removed = 0;
  for (std::unique_ptr<SynthesizedRelation> &S : Shards)
    Removed += S->remove(Pattern);
  return Removed;
}

size_t ConcurrentRelation::update(const Tuple &Pattern, const Tuple &Changes) {
  assert(!Pattern.columns().intersects(Changes.columns()) &&
         "update changes must be disjoint from the pattern");
  if (Changes.has(Router.shardColumn()))
    return updateRehoming(Pattern, Changes);
  if (Router.routes(Pattern.columns())) {
    unsigned S = Router.shardOf(Pattern);
    auto Lock = Locks.exclusive(S);
    return Shards[S]->update(Pattern, Changes);
  }
  // The pattern is a key, so at most one shard holds a match — but
  // without the shard column which one is unknown: take every writer
  // lock (ascending, per the lock order) and try each shard in turn.
  AllShardsGuard Guard(Locks);
  for (std::unique_ptr<SynthesizedRelation> &S : Shards)
    if (size_t Updated = S->update(Pattern, Changes))
      return Updated;
  return 0;
}

size_t ConcurrentRelation::updateRehoming(const Tuple &Pattern,
                                          const Tuple &Changes) {
  // The changes rewrite the shard column (so, by disjointness, the
  // pattern does not bind it) and the tuple may change owners: locate
  // the matching tuple, then either update in place (same owner) or
  // migrate it (remove + reinsert), all under every writer lock.
  AllShardsGuard Guard(Locks);
  ColumnSet All = catalog().allColumns();
  for (unsigned I = 0; I != Shards.size(); ++I) {
    Tuple Old;
    bool Found = false;
    Shards[I]->scanFrames(Pattern, All, [&](const BindingFrame &F) {
      Old = F.toTuple(All);
      Found = true;
      return false; // the pattern is a key: at most one match
    });
    if (!Found)
      continue;
    Tuple Merged = Old.merge(Changes);
    unsigned Target = Router.shardOf(Merged);
    if (Target == I)
      return Shards[I]->update(Pattern, Changes);
    [[maybe_unused]] size_t Removed = Shards[I]->remove(Old);
    assert(Removed == 1 && "matched tuple vanished during migration");
    if (!Shards[Target]->insert(Merged))
      // The merged tuple already existed in the target shard — an
      // FD-violating input the sequential engine would also mishandle;
      // keep the size counter consistent with the shards regardless.
      Count.fetch_sub(1, std::memory_order_relaxed);
    return 1;
  }
  return 0;
}

bool ConcurrentRelation::upsert(
    const Tuple &Key, function_ref<void(const BindingFrame *, Tuple &)> Fn) {
  // The routed path re-checks this inside SynthesizedRelation::upsert;
  // assert here too so the fan-out path catches non-key patterns.
  assert(spec()->fds().isKey(Key.columns(), spec()->columns()) &&
         "upsert pattern must be a key");
  if (Router.routes(Key.columns())) {
    // The common case the primitive exists for: the key owns its shard
    // (and, being disjoint from the key, the new values cannot rewrite
    // the shard column), so one writer lock linearizes the whole
    // read-modify-write cycle.
    unsigned S = Router.shardOf(Key);
    auto Lock = Locks.exclusive(S);
    // Follow the shard's size delta rather than the return value: an
    // FD-violating collision with another key can make the reinsert
    // no-op in release builds, and the counter must track the shards
    // regardless (as the fan-out path and the emitted facade do).
    size_t Before = Shards[S]->size();
    bool Inserted = Shards[S]->upsert(Key, Fn);
    size_t After = Shards[S]->size();
    if (After > Before)
      Count.fetch_add(1, std::memory_order_relaxed);
    else if (After < Before)
      Count.fetch_sub(1, std::memory_order_relaxed);
    return Inserted;
  }
  // The key misses the shard column: the owner is unknown and the new
  // values may rewrite the shard column, migrating the tuple — the
  // same all-writer-locks discipline as updateRehoming.
  AllShardsGuard Guard(Locks);
  ColumnSet All = catalog().allColumns();
  ColumnSet Rest = All.minus(Key.columns());
  for (unsigned I = 0; I != Shards.size(); ++I) {
    Tuple Old, Values;
    bool Found = false;
    Shards[I]->scanFrames(Key, Rest, [&](const BindingFrame &F) {
      Found = true;
      Old = F.toTuple(All);
      Fn(&F, Values);
      return false; // the pattern is a key: at most one match
    });
    if (!Found)
      continue;
    assert(Values.columns().subsetOf(Rest) &&
           "upsert values must not rebind key columns");
    if (Values.empty())
      return false;
    Tuple Merged = Old.merge(Values);
    unsigned Target = Router.shardOf(Merged);
    if (Target == I) {
      Shards[I]->update(Key, Values);
      return false;
    }
    [[maybe_unused]] size_t Removed = Shards[I]->remove(Old);
    assert(Removed == 1 && "matched tuple vanished during upsert");
    if (!Shards[Target]->insert(Merged))
      // FD-violating collision in the target shard; keep the counter
      // consistent with the shards (see updateRehoming).
      Count.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  Tuple Values;
  Fn(nullptr, Values);
  assert(Values.columns() == Rest &&
         "upsert must bind every non-key column when inserting");
  Tuple Full = Key.merge(Values);
  if (Shards[Router.shardOf(Full)]->insert(Full))
    Count.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<Tuple> ConcurrentRelation::query(const Tuple &Pattern,
                                             ColumnSet OutputCols) const {
  std::vector<Tuple> Result;
  std::unordered_set<Tuple> Seen;
  // One Seen set across every shard: a projection that drops the shard
  // column can surface the same result tuple from several shards, and
  // query's contract is set semantics.
  scanFrames(Pattern, OutputCols, [&](const BindingFrame &F) {
    Tuple Projected = F.toTuple(OutputCols);
    if (Seen.insert(Projected).second)
      Result.push_back(std::move(Projected));
    return true;
  });
  return Result;
}

void ConcurrentRelation::scan(const Tuple &Pattern, ColumnSet OutputCols,
                              function_ref<bool(const Tuple &)> Fn) const {
  scanFrames(Pattern, OutputCols, [&](const BindingFrame &F) {
    return Fn(F.toTuple(F.bound()));
  });
}

void ConcurrentRelation::scanFrames(
    const Tuple &Pattern, ColumnSet OutputCols,
    function_ref<bool(const BindingFrame &)> Fn) const {
  // NOTE: the callback runs under a shard's reader lock, so unlike the
  // sequential engine's reentrant scans it must not issue operations
  // on this ConcurrentRelation (a nested mutation deadlocks; a nested
  // read re-acquires a held shared_mutex, which is undefined).
  if (Router.routes(Pattern.columns())) {
    unsigned S = Router.shardOf(Pattern);
    auto Lock = Locks.shared(S);
    Shards[S]->scanFrames(Pattern, OutputCols, Fn);
    return;
  }
  bool Stopped = false;
  for (unsigned I = 0; I != Shards.size() && !Stopped; ++I) {
    auto Lock = Locks.shared(I);
    Shards[I]->scanFrames(Pattern, OutputCols, [&](const BindingFrame &F) {
      if (!Fn(F)) {
        Stopped = true;
        return false;
      }
      return true;
    });
  }
}

void ConcurrentRelation::scanFramesParallel(
    const Tuple &Pattern, ColumnSet OutputCols,
    function_ref<bool(const BindingFrame &)> Fn) const {
  // Routed patterns touch one shard: nothing to fan out.
  if (Router.routes(Pattern.columns())) {
    scanFrames(Pattern, OutputCols, Fn);
    return;
  }
  // One worker per shard scans under that shard's reader lock and
  // pushes copies of its frames into the bounded merge queue; the
  // calling thread drains it and runs the sink. The copy is the price
  // of crossing threads — the borrowed-frame zero-allocation contract
  // still holds per shard, and frames over catalogs within
  // BindingFrame::InlineColumns copy without heap traffic.
  BoundedQueue<BindingFrame> Queue(ScanQueueCap,
                                   static_cast<unsigned>(Shards.size()));
  std::vector<std::thread> Workers;
  Workers.reserve(Shards.size());
  for (unsigned I = 0; I != Shards.size(); ++I)
    Workers.emplace_back([&, I] {
      auto Lock = Locks.shared(I);
      Shards[I]->scanFrames(Pattern, OutputCols,
                            [&](const BindingFrame &F) {
                              // push fails only after close(): the
                              // consumer stopped, so stop scanning.
                              return Queue.push(F);
                            });
      Queue.producerDone();
    });
  BindingFrame Row;
  while (Queue.pop(Row)) {
    if (!Fn(Row)) {
      Queue.close();
      break;
    }
  }
  for (std::thread &W : Workers)
    W.join();
}

void ConcurrentRelation::scanParallel(const Tuple &Pattern,
                                      ColumnSet OutputCols,
                                      function_ref<bool(const Tuple &)> Fn) const {
  scanFramesParallel(Pattern, OutputCols, [&](const BindingFrame &F) {
    return Fn(F.toTuple(F.bound()));
  });
}

bool ConcurrentRelation::contains(const Tuple &Pattern) const {
  bool Found = false;
  scanFrames(Pattern, ColumnSet(), [&](const BindingFrame &) {
    Found = true;
    return false;
  });
  return Found;
}

void ConcurrentRelation::clear() {
  AllShardsGuard Guard(Locks);
  for (std::unique_ptr<SynthesizedRelation> &S : Shards)
    S->clear();
  Count.store(0, std::memory_order_relaxed);
}

Relation ConcurrentRelation::toRelation() const {
  // Reader locks on every shard at once: a consistent global snapshot
  // (writers are fully excluded for the duration), while other readers
  // still proceed.
  AllShardsGuard Guard(Locks, AllShardsGuard::Shared);
  Relation Result(catalog().allColumns());
  for (const std::unique_ptr<SynthesizedRelation> &S : Shards)
    Result = Relation::unionWith(Result, S->toRelation());
  return Result;
}

size_t ConcurrentRelation::liveInstances() const {
  AllShardsGuard Guard(Locks, AllShardsGuard::Shared);
  size_t Live = 0;
  for (const std::unique_ptr<SynthesizedRelation> &S : Shards)
    Live += S->liveInstances();
  return Live;
}

void ConcurrentRelation::reoptimize() {
  AllShardsGuard Guard(Locks);
  for (std::unique_ptr<SynthesizedRelation> &S : Shards)
    S->reoptimize();
}
